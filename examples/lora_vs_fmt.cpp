// When should a user pick LoRA vs full-model tuning + ΔCompress? (paper §6.4)
//
// Trains both kinds of variant on an easy task and on a hard task, registers both with
// one DeltaZipService (the system co-serves PEFT and FMT artifacts), and prints the
// accuracy / artifact-size / serving-cost trade-off the paper's guidance is based on.
#include <cstdio>

#include "src/core/deltazip.h"
#include "src/train/finetune.h"
#include "src/util/table.h"

int main() {
  using namespace dz;
  const uint64_t seed = 31337;
  const ModelConfig config = ModelConfig::Small();
  Rng rng(seed);

  Transformer base(ModelWeights::RandomInit(config, rng));
  PretrainConfig pre;
  pre.steps = 150;
  pre.batch = 8;
  pre.seq_len = 20;
  std::printf("pre-training shared base...\n");
  Pretrain(base, pre, rng);

  DeltaZipOptions options;
  options.compress.bits = 2;
  DeltaZipService service(Transformer(base.weights()), options);

  Table table({"task", "variant", "accuracy%", "artifact bytes"});
  for (TaskKind kind : {TaskKind::kSentiment, TaskKind::kArithmetic}) {
    const auto task = MakeTask(kind, config, seed);
    FineTuneConfig ft;
    ft.steps = 220;
    ft.batch = 8;
    ft.lr = 2e-3f;

    // FMT + ΔCompress.
    Transformer fmt(base.weights());
    Rng fmt_rng = rng.Fork();
    FineTuneFmt(fmt, *task, ft, fmt_rng);
    std::vector<std::vector<int>> calib;
    Rng calib_rng = rng.Fork();
    for (int i = 0; i < 12; ++i) {
      calib.push_back(task->Sample(calib_rng).tokens);
    }
    const int fmt_id =
        service.RegisterFmtModel(fmt.weights(), calib, std::string(task->name()) + "-fmt");

    // LoRA.
    Rng lora_rng = rng.Fork();
    LoraAdapter adapter = FineTuneLora(base, *task, /*rank=*/4, 8.0f, ft, lora_rng);
    const int lora_id =
        service.RegisterLora(std::move(adapter), std::string(task->name()) + "-lora");

    // Score both through the service's decoupled execution path.
    auto accuracy = [&](int vid) {
      const auto eval = task->MakeEvalSet(200, 555);
      int correct = 0;
      for (const auto& ex : eval) {
        const Matrix logits = service.Forward(vid, ex.tokens);
        const float* row = logits.row(logits.rows() - 1);
        int best = task->label_tokens().front();
        for (int t : task->label_tokens()) {
          if (row[t] > row[best]) {
            best = t;
          }
        }
        correct += best == ex.target ? 1 : 0;
      }
      return correct / 2.0;
    };
    table.AddRow({task->name(), "ΔCompress FMT", Table::Num(accuracy(fmt_id), 1),
                  std::to_string(service.variant_info(fmt_id).artifact_bytes)});
    table.AddRow({task->name(), "LoRA r=4", Table::Num(accuracy(lora_id), 1),
                  std::to_string(service.variant_info(lora_id).artifact_bytes)});
  }
  std::printf("\n%s\n", table.ToAscii().c_str());
  std::printf("Guidance (paper §6.4): pick LoRA when its accuracy suffices (simpler\n"
              "tasks, smallest artifacts); pick FMT + ΔCompress when accuracy on\n"
              "complex tasks is critical — DeltaZip serves both side by side.\n");
  return 0;
}
