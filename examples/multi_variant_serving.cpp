// Multi-variant serving scenario: an LLM provider hosts 24 fine-tuned variants of one
// 13B-class base model on a 4-GPU node and replays a bursty production-style trace.
// The example contrasts the vLLM+SCB baseline (full-model swapping) with DeltaZip
// (compressed-delta serving) and prints the operator-facing metrics: throughput, mean
// and tail latency, TTFT, and SLO attainment.
#include <cstdio>

#include "src/serving/engine.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/trace.h"

int main() {
  using namespace dz;
  std::printf("multi-variant serving: 24 variants of llama-13b, 4x A800, azure-like "
              "bursty trace\n\n");

  TraceConfig tc;
  tc.n_models = 24;
  tc.arrival_rate = 1.0;
  tc.duration_s = 240.0;
  tc.dist = PopularityDist::kAzure;
  tc.seed = 2025;
  const Trace trace = GenerateTrace(tc);
  std::printf("trace: %zu requests over %.0f s\n\n", trace.requests.size(),
              trace.duration_s);

  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama13B();
  cfg.exec.gpu = GpuSpec::A800();
  cfg.exec.tp = 4;
  cfg.max_concurrent_deltas = 8;

  EngineConfig baseline = cfg;
  baseline.artifact = ArtifactKind::kFullModel;
  const ServeReport r_scb = MakeVllmScbEngine(baseline)->Serve(trace);
  const ServeReport r_dz = MakeDeltaZipEngine(cfg)->Serve(trace);

  Table table({"metric", "vLLM+SCB", "DeltaZip", "improvement"});
  auto add = [&table](const char* metric, double scb, double dz, bool lower_better) {
    const double ratio = lower_better ? scb / dz : dz / scb;
    table.AddRow({metric, Table::Num(scb, 2), Table::Num(dz, 2),
                  Table::Num(ratio, 1) + "x"});
  };
  add("throughput (req/s)", r_scb.ThroughputRps(), r_dz.ThroughputRps(), false);
  add("mean E2E latency (s)", r_scb.MeanE2e(), r_dz.MeanE2e(), true);
  add("P90 E2E latency (s)", Percentile(r_scb.E2es(), 90), Percentile(r_dz.E2es(), 90),
      true);
  add("mean TTFT (s)", r_scb.MeanTtft(), r_dz.MeanTtft(), true);
  add("P90 TTFT (s)", Percentile(r_scb.Ttfts(), 90), Percentile(r_dz.Ttfts(), 90), true);
  add("SLO@30s E2E (%)", r_scb.SloAttainmentE2e(30) * 100, r_dz.SloAttainmentE2e(30) * 100,
      false);
  std::printf("%s\n", table.ToAscii().c_str());

  std::printf("why: the baseline moves %.1f GB per model swap through the checkpoint\n"
              "loader, while DeltaZip swaps %.2f GB compressed deltas and batches all\n"
              "variants' requests against one resident base model.\n",
              ModelShape::Llama13B().Fp16Bytes() / 1e9,
              ModelShape::Llama13B().DeltaBytes(4, true, 128) / 1e9);
  return 0;
}
