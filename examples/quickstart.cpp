// Quickstart: the full DeltaZip life-of-a-model in ~80 lines.
//
//  1. pre-train a small base model,
//  2. full-model fine-tune a variant on a downstream task,
//  3. register the variant with DeltaZipService → ΔCompress runs, producing a compact
//     2-bit + 2:4-sparse delta artifact,
//  4. serve requests against the variant through the decoupled base+delta path,
//  5. compare accuracy and artifact size against the uncompressed fine-tuned model.
#include <cstdio>

#include "src/core/deltazip.h"
#include "src/train/finetune.h"

int main() {
  using namespace dz;
  const uint64_t seed = 7;
  const ModelConfig config = ModelConfig::Small();

  // 1. Pre-train a base model on the synthetic corpus.
  Rng rng(seed);
  Transformer base(ModelWeights::RandomInit(config, rng));
  PretrainConfig pre;
  pre.steps = 150;
  pre.batch = 8;
  pre.seq_len = 20;
  std::printf("pre-training base model (%zu params)...\n", base.weights().ParamCount());
  Pretrain(base, pre, rng);

  // 2. Fine-tune a variant on the sentiment task (full-model tuning).
  const auto task = MakeTask(TaskKind::kSentiment, config, seed);
  Transformer finetuned(base.weights());
  FineTuneConfig ft;
  ft.steps = 200;
  ft.batch = 8;
  ft.lr = 2e-3f;
  std::printf("fine-tuning variant on %s...\n", task->name().c_str());
  FineTuneFmt(finetuned, *task, ft, rng);

  // 3. Register with the service: ΔCompress to 2-bit + 2:4 sparsity.
  DeltaZipOptions options;
  options.compress.bits = 2;
  options.compress.sparse24 = true;
  DeltaZipService service(Transformer(base.weights()), options);
  std::vector<std::vector<int>> calibration;
  for (int i = 0; i < 12; ++i) {
    calibration.push_back(task->Sample(rng).tokens);
  }
  const int vid = service.RegisterFmtModel(finetuned.weights(), calibration, "sentiment");
  const VariantInfo info = service.variant_info(vid);
  std::printf("registered '%s': artifact %zu B, compression ratio %.2fx\n",
              info.name.c_str(), info.artifact_bytes, info.compression_ratio);

  // 4. Serve a prompt through the decoupled base + compressed-delta path.
  const Example ex = task->Sample(rng);
  const auto generated = service.Generate(vid, ex.tokens, 1);
  std::printf("prompt answered with token %d (expected label %d)\n", generated.front(),
              ex.target);

  // 5. Quality check: compressed variant vs the original fine-tuned model.
  const double acc_fmt = EvaluateAccuracy(finetuned, *task, 200, 99);
  int correct = 0;
  const auto eval_set = task->MakeEvalSet(200, 99);
  for (const auto& e : eval_set) {
    const Matrix logits = service.Forward(vid, e.tokens);
    const float* row = logits.row(logits.rows() - 1);
    int best = task->label_tokens().front();
    for (int t : task->label_tokens()) {
      if (row[t] > row[best]) {
        best = t;
      }
    }
    correct += best == e.target ? 1 : 0;
  }
  std::printf("accuracy: FMT fp16 %.1f%% vs ΔCompressed %.1f%% at %.1fx compression\n",
              acc_fmt * 100.0, correct / 2.0, info.compression_ratio);
  return 0;
}
