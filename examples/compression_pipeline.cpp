// Walks one weight matrix through every stage of the ΔCompress pipeline (paper Fig. 5)
// and prints what each step does to size and fidelity:
//   step 1: delta extraction (w_ft − w_base)
//   step 2: structured 2:4 pruning (OBS mask)
//   step 3: group quantization + packing (4-bit and 2-bit)
//   step 4: optional lossless compression
// ...and contrasts compressing the delta vs compressing the fine-tuned weights
// directly, the paper's key insight.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "src/compress/delta.h"
#include "src/compress/lossless.h"
#include "src/compress/obs.h"
#include "src/train/finetune.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

int main() {
  using namespace dz;
  const uint64_t seed = 42;
  const ModelConfig config = ModelConfig::Small();
  Rng rng(seed);

  std::printf("preparing a genuinely fine-tuned layer (pretrain + FMT)...\n\n");
  Transformer base(ModelWeights::RandomInit(config, rng));
  PretrainConfig pre;
  pre.steps = 120;
  pre.batch = 8;
  pre.seq_len = 20;
  Pretrain(base, pre, rng);
  const auto task = MakeTask(TaskKind::kNli, config, seed);
  Transformer finetuned(base.weights());
  FineTuneConfig ft;
  ft.steps = 150;
  ft.batch = 8;
  FineTuneFmt(finetuned, *task, ft, rng);

  const int layer = config.n_layers / 2;
  const Matrix& w_base = base.weights().layers[layer].wq;
  const Matrix& w_ft = finetuned.weights().layers[layer].wq;

  // Calibration activations for the OBS solver.
  std::vector<std::vector<int>> calib;
  for (int i = 0; i < 12; ++i) {
    calib.push_back(task->Sample(rng).tokens);
  }
  Rng xr(seed + 1);
  const Matrix x = Matrix::Random(256, w_base.cols(), xr, 1.0f);

  // Step 1: extract the delta.
  const Matrix delta = Sub(w_ft, w_base);
  std::printf("step 1 (extract): mean|base|=%.4f  mean|delta|=%.4f  (ratio %.2f)\n",
              w_base.MeanAbs(), delta.MeanAbs(), delta.MeanAbs() / w_base.MeanAbs());

  const size_t fp16_bytes = delta.size() * 2;
  Table table({"stage", "bytes", "vs fp16", "rel. weight error"});
  table.AddRow({"fp16 delta", std::to_string(fp16_bytes), "1.00x", "0"});

  for (int bits : {4, 2}) {
    // Steps 2+3: OBS 2:4 pruning + quantization, packed.
    ObsConfig oc;
    oc.bits = bits;
    oc.group_size = 64;
    const Matrix compressed = ObsCompress(delta, x, oc);
    const auto packed = Sparse24Matrix::Pack(compressed, bits, 64);
    const double err = RelativeError(packed.Dequantize(), delta);
    table.AddRow({"2:4 + int" + std::to_string(bits) + " packed",
                  std::to_string(packed.ByteSize()),
                  Table::Num(static_cast<double>(fp16_bytes) / packed.ByteSize(), 2) + "x",
                  Table::Num(err, 3)});
  }
  std::printf("\nsteps 2+3 (prune + quantize + pack), one %dx%d layer:\n\n%s\n",
              delta.rows(), delta.cols(), table.ToAscii().c_str());

  // Step 4: lossless pass over a full-model artifact.
  DeltaCompressConfig cfg;
  cfg.bits = 2;
  const CompressedDelta artifact =
      DeltaCompress(base.weights(), finetuned.weights(), calib, cfg);
  const ByteBuffer raw = artifact.Serialize();
  const ByteBuffer gz = GdeflateCompress(raw);
  std::printf("step 4 (lossless, whole artifact): %zu B -> %zu B (%.2fx, gdeflate-like)\n\n",
              raw.size(), gz.size(), CompressionRatio(raw.size(), gz.size()));

  // The punchline: same recipe applied directly to the fine-tuned weights is worse.
  ObsConfig oc;
  oc.bits = 2;
  const double direct_err =
      std::sqrt(LayerOutputError(w_ft, ObsCompress(w_ft, x, oc), x)) /
      w_ft.FrobeniusNorm() * std::sqrt(static_cast<double>(x.rows()));
  Matrix delta_c = ObsCompress(delta, x, oc);
  delta_c.AddInPlace(w_base);  // reconstruct w̃ = Δ̃ + w_base
  const double delta_err =
      std::sqrt(LayerOutputError(w_ft, delta_c, x)) / w_ft.FrobeniusNorm() *
      std::sqrt(static_cast<double>(x.rows()));
  std::printf("2-bit 2:4 output error vs fine-tuned layer:\n"
              "  compress weights directly : %.4f\n"
              "  compress the delta        : %.4f   <-- the paper's key insight\n",
              direct_err, delta_err);

  // Registration hot path: full-model ΔCompress fans per-group layers and
  // calibration capture out across a thread pool; the artifact is required to be
  // bit-identical for any thread count.
  const auto time_compress = [&](ThreadPool& pool) {
    const auto t0 = std::chrono::steady_clock::now();
    const CompressedDelta d =
        DeltaCompress(base.weights(), finetuned.weights(), calib, cfg, &pool);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return std::make_pair(ms, d.Serialize());
  };
  ThreadPool serial(1);
  ThreadPool threaded;  // default: DZ_THREADS or capped hardware_concurrency
  const auto [ms_1, bytes_1] = time_compress(serial);
  const auto [ms_n, bytes_n] = time_compress(threaded);
  std::printf("\nregistration (full-model \xce\x94""Compress, %d calib seqs):\n"
              "  1 thread  : %8.1f ms\n"
              "  %zu threads: %8.1f ms  (%.2fx)  artifacts %s\n",
              static_cast<int>(calib.size()), ms_1, threaded.thread_count(), ms_n,
              ms_1 / ms_n, bytes_1 == bytes_n ? "bit-identical" : "DIFFER (BUG)");
  return 0;
}
