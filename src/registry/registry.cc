#include "src/registry/registry.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace dz {

namespace {

// splitmix64 finalizer: the avalanche quality is what makes rendezvous ranks
// statistically independent across artifacts.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int RedundancyPolicy::FragmentCount() const {
  switch (mode) {
    case RedundancyMode::kNone:
      return 1;
    case RedundancyMode::kReplicate:
      return replicas;
    case RedundancyMode::kErasure:
      return k + m;
  }
  return 1;
}

bool ParseRedundancyPolicy(const std::string& spec, RedundancyPolicy& out) {
  RedundancyPolicy p;
  if (spec == "none") {
    p.mode = RedundancyMode::kNone;
    out = p;
    return true;
  }
  int a = 0;
  int b = 0;
  int used = -1;  // %n: whole-string match required (no trailing garbage)
  if (std::sscanf(spec.c_str(), "replicate(%d)%n", &a, &used) == 1 &&
      used == static_cast<int>(spec.size())) {
    if (a < 1) {
      return false;
    }
    p.mode = RedundancyMode::kReplicate;
    p.replicas = a;
    out = p;
    return true;
  }
  used = -1;
  if (std::sscanf(spec.c_str(), "erasure(%d,%d)%n", &a, &b, &used) == 2 &&
      used == static_cast<int>(spec.size())) {
    if (a < 1 || b < 0) {
      return false;
    }
    p.mode = RedundancyMode::kErasure;
    p.k = a;
    p.m = b;
    out = p;
    return true;
  }
  return false;
}

std::string RedundancyPolicyToSpec(const RedundancyPolicy& policy) {
  char buf[64];
  switch (policy.mode) {
    case RedundancyMode::kNone:
      return "none";
    case RedundancyMode::kReplicate:
      std::snprintf(buf, sizeof(buf), "replicate(%d)", policy.replicas);
      return buf;
    case RedundancyMode::kErasure:
      std::snprintf(buf, sizeof(buf), "erasure(%d,%d)", policy.k, policy.m);
      return buf;
  }
  return "none";
}

ArtifactRegistry::ArtifactRegistry(const RegistryConfig& config, int n_artifacts,
                                   int n_nodes)
    : config_(config), n_artifacts_(n_artifacts), n_nodes_(n_nodes),
      down_(static_cast<size_t>(n_nodes), 0) {
  DZ_CHECK_GT(n_artifacts, 0);
  DZ_CHECK_GT(n_nodes, 0);
  DZ_CHECK_GT(config_.net_gbps, 0.0);
  DZ_CHECK_GT(config_.decode_gbps, 0.0);
  // Placement must fit the initial node set: a fragment has exactly one
  // primary home.
  DZ_CHECK_LE(config_.redundancy.FragmentCount(), n_nodes);
}

uint64_t ArtifactRegistry::Score(int artifact, int node) const {
  return Mix64(config_.seed ^ Mix64(static_cast<uint64_t>(artifact) * 0x9e3779b1ull ^
                                    Mix64(static_cast<uint64_t>(node))));
}

std::vector<int> ArtifactRegistry::RankedNodes(int artifact) const {
  std::vector<int> nodes(static_cast<size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    nodes[static_cast<size_t>(i)] = i;
  }
  std::sort(nodes.begin(), nodes.end(), [&](int a, int b) {
    const uint64_t sa = Score(artifact, a);
    const uint64_t sb = Score(artifact, b);
    return sa != sb ? sa > sb : a < b;
  });
  return nodes;
}

int ArtifactRegistry::PrimaryHolder(int artifact, int frag) const {
  DZ_CHECK_GE(frag, 0);
  DZ_CHECK_LT(frag, config_.redundancy.FragmentCount());
  return RankedNodes(artifact)[static_cast<size_t>(frag)];
}

bool ArtifactRegistry::NodeHoldsFragment(int artifact, int frag, int node) const {
  if (PrimaryHolder(artifact, frag) == node) {
    return true;
  }
  const auto it = extras_.find({artifact, frag});
  if (it == extras_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), node) != it->second.end();
}

bool ArtifactRegistry::NodeHoldsFullCopy(int artifact, int node) const {
  if (config_.redundancy.mode == RedundancyMode::kErasure) {
    return false;  // erasure nodes hold fragments, never the assembled artifact
  }
  const int copies = config_.redundancy.FragmentCount();
  for (int f = 0; f < copies; ++f) {
    if (NodeHoldsFragment(artifact, f, node)) {
      return true;
    }
  }
  return false;
}

void ArtifactRegistry::SetNodeLive(int node, bool live) {
  DZ_CHECK_GE(node, 0);
  if (node >= static_cast<int>(down_.size())) {
    down_.resize(static_cast<size_t>(node) + 1, 0);
  }
  down_[static_cast<size_t>(node)] = live ? 0 : 1;
}

bool ArtifactRegistry::IsNodeLive(int node) const {
  if (node < 0) {
    return false;
  }
  if (node >= static_cast<int>(down_.size())) {
    return true;  // nodes beyond the tracked set (late scale-ups) are live
  }
  return down_[static_cast<size_t>(node)] == 0;
}

void ArtifactRegistry::AddHolder(int artifact, int frag, int node) {
  DZ_CHECK_GE(node, 0);
  if (PrimaryHolder(artifact, frag) == node) {
    return;
  }
  std::vector<int>& nodes = extras_[{artifact, frag}];
  if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
    nodes.push_back(node);
    std::sort(nodes.begin(), nodes.end());
  }
}

int ArtifactRegistry::BestLiveSource(int artifact, int frag, int self) const {
  const int primary = PrimaryHolder(artifact, frag);
  if (primary != self && IsNodeLive(primary)) {
    return primary;
  }
  const auto it = extras_.find({artifact, frag});
  if (it != extras_.end()) {
    for (int node : it->second) {
      if (node != self && IsNodeLive(node)) {
        return node;
      }
    }
  }
  return -1;
}

bool ArtifactRegistry::CanRepair(int artifact, int frag, int exclude) const {
  const RedundancyPolicy& r = config_.redundancy;
  if (r.mode == RedundancyMode::kErasure) {
    // Rebuilding any one fragment needs any k live fragments.
    int live_frags = 0;
    for (int f = 0; f < r.FragmentCount(); ++f) {
      if (BestLiveSource(artifact, f, exclude) >= 0) {
        ++live_frags;
      }
    }
    return live_frags >= r.k;
  }
  // none/replicate: any surviving full copy can source a re-replication. With
  // mode none there is no second copy, so a dead primary is unrepairable.
  for (int f = 0; f < r.FragmentCount(); ++f) {
    if (f == frag) {
      continue;
    }
    if (BestLiveSource(artifact, f, exclude) >= 0) {
      return true;
    }
  }
  // A repair-installed extra of the lost fragment itself also works.
  return BestLiveSource(artifact, frag, exclude) >= 0;
}

FetchPlan ArtifactRegistry::PlanFetch(int artifact, int node,
                                      double artifact_bytes) const {
  FetchPlan plan;
  const RedundancyPolicy& r = config_.redundancy;
  if (r.mode != RedundancyMode::kErasure) {
    // Full copies (1 or N). Local copy wins outright.
    if (NodeHoldsFullCopy(artifact, node)) {
      plan.available = true;
      plan.local_full = true;
      return plan;
    }
    // Remote: walk copies in rendezvous rank order — rank 0 is "nearest".
    for (int f = 0; f < r.FragmentCount(); ++f) {
      if (BestLiveSource(artifact, f, node) >= 0) {
        plan.available = true;
        plan.remote_bytes = artifact_bytes;
        // Falling past the rank-0 copy means the primary is gone: a failover.
        plan.degraded = f > 0;
        return plan;
      }
    }
    return plan;  // no copy survives → unavailable
  }

  // Erasure: gather any k of k+m fragments. Data fragments always come first
  // (local, then remote) and parity is strictly a last resort — decoding the
  // full artifact costs more than pulling one extra B/k data fragment over
  // the wire, and `degraded` should mean a loss actually forced parity in,
  // not that the reader happened to hold a parity fragment.
  const double frag_bytes = artifact_bytes / static_cast<double>(r.k);
  int taken = 0;
  bool used_parity = false;
  for (int pass = 0; pass < 4 && taken < r.k; ++pass) {
    const bool parity_pass = pass >= 2;       // passes 0/1 data, 2/3 parity
    const bool local_pass = pass % 2 == 0;    // even passes are free local hits
    const int lo = parity_pass ? r.k : 0;
    const int hi = parity_pass ? r.FragmentCount() : r.k;
    for (int f = lo; f < hi && taken < r.k; ++f) {
      const bool local = NodeHoldsFragment(artifact, f, node);
      if (local_pass ? !local
                     : (local || BestLiveSource(artifact, f, node) < 0)) {
        continue;
      }
      ++taken;
      plan.remote_bytes += local_pass ? 0.0 : frag_bytes;
      used_parity = used_parity || parity_pass;
    }
  }
  if (taken < r.k) {
    return plan;  // fewer than k reachable fragments → unavailable
  }
  plan.available = true;
  plan.degraded = used_parity;
  plan.decode_s = used_parity ? DecodeSeconds(artifact_bytes) : 0.0;
  plan.local_full = plan.remote_bytes == 0.0 && !used_parity;
  return plan;
}

double ArtifactRegistry::NetSeconds(double bytes) const {
  return bytes * 8.0 / (config_.net_gbps * 1e9);
}

double ArtifactRegistry::DecodeSeconds(double artifact_bytes) const {
  return artifact_bytes * 8.0 / (config_.decode_gbps * 1e9);
}

}  // namespace dz
