// Cluster-shared artifact registry: replication / erasure-coded placement of
// artifact bytes across worker nodes, with degraded reads and repair hooks
// (ROADMAP "distributed, fault-tolerant artifact store"; ytsaurus-style chunk
// placement is the exemplar).
//
// The registry answers two questions deterministically:
//   * WHERE does each artifact live? Fragment placement is rendezvous (HRW)
//     hashing over the initial node set — every node ranks all nodes by a
//     seeded hash of (artifact, node); fragment f lives on the rank-f node —
//     so placement needs no coordination state and survives membership churn
//     without remapping surviving fragments.
//   * HOW can node N read artifact A right now? `PlanFetch` resolves the tier
//     chain: node-local copy → remote fetch from the nearest (best-ranked)
//     live holder → degraded read (failover replica, or any k of k+m erasure
//     fragments plus a decode cost) → typed `unavailable` when fewer than the
//     required sources survive.
//
// Liveness and repair-installed extra holders are the only mutable state.
// Cluster workers run in parallel share-nothing epochs, so the elastic loop
// mutates the registry ONLY between epochs (fault boundaries / post-commit
// repair credit); during a Serve() call every view below is const.
//
// All sizes are bytes; all times simulated seconds. The module depends only on
// dz_util so every layer (serving, cluster, bench) can link it freely.
#ifndef SRC_REGISTRY_REGISTRY_H_
#define SRC_REGISTRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dz {

// Redundancy policy for artifact bytes across nodes.
//   none          — a single full copy on the rendezvous-primary node.
//   replicate(N)  — N full copies on the top-N rendezvous nodes.
//   erasure(k,m)  — k data + m parity fragments of size B/k on the top-(k+m)
//                   nodes; any k fragments reconstruct the artifact (parity
//                   participation pays a decode cost). erasure(k,0) degrades
//                   to plain striping: every data fragment is irreplaceable.
enum class RedundancyMode { kNone, kReplicate, kErasure };

struct RedundancyPolicy {
  RedundancyMode mode = RedundancyMode::kNone;
  int replicas = 1;  // kReplicate: total copies (>= 1)
  int k = 4;         // kErasure: data fragments (>= 1)
  int m = 2;         // kErasure: parity fragments (>= 0)

  // Placement slots the policy occupies (1, N, or k+m).
  int FragmentCount() const;
};

// Parses "none" | "replicate(N)" | "erasure(k,m)" (e.g. "replicate(3)",
// "erasure(4,2)"). Returns false on malformed specs or out-of-range counts.
bool ParseRedundancyPolicy(const std::string& spec, RedundancyPolicy& out);

// Canonical spec string (round-trips through ParseRedundancyPolicy).
std::string RedundancyPolicyToSpec(const RedundancyPolicy& policy);

struct RegistryConfig {
  // Off (the default) means no registry is constructed anywhere and every
  // store keeps its PR 8 infinite-local-disk model (golden-enforced).
  bool enabled = false;
  RedundancyPolicy redundancy;
  // Per-node NIC bandwidth for remote fetches and repair traffic (gigabits/s,
  // the networking convention: 25 Gb/s ≈ 3.1 GB/s).
  double net_gbps = 25.0;
  // Erasure decode throughput when a read reconstructs through parity
  // (gigabits/s over the full artifact).
  double decode_gbps = 40.0;
  // Placement hash seed (same seed + node set ⇒ same placement everywhere).
  uint64_t seed = 0x5eedc0de;
};

// Resolution of one read attempt (node-local view at plan time).
struct FetchPlan {
  bool available = false;   // false ⇒ typed unavailable (too few live sources)
  bool local_full = false;  // node already holds every byte it needs locally
  bool degraded = false;    // failover replica or parity-assisted reconstruct
  double remote_bytes = 0.0;  // bytes to pull over the net channel
  double decode_s = 0.0;      // erasure decode cost (0 unless parity used)
};

class ArtifactRegistry {
 public:
  // `n_artifacts` distinct artifact ids; `n_nodes` initial placement nodes
  // (fragments only ever land on these; nodes added later — autoscaling — are
  // live non-holders until repair installs copies on them).
  ArtifactRegistry(const RegistryConfig& config, int n_artifacts, int n_nodes);

  const RegistryConfig& config() const { return config_; }
  int n_artifacts() const { return n_artifacts_; }
  int n_nodes() const { return n_nodes_; }

  // All initial nodes ranked by rendezvous score for `artifact` (best first).
  // The first FragmentCount() entries are the primary holders; fragment f
  // lives on rank f.
  std::vector<int> RankedNodes(int artifact) const;

  // Primary holder of fragment `frag` (rank-frag rendezvous node).
  int PrimaryHolder(int artifact, int frag) const;

  // True when `node` holds `frag` (primary placement or repair-installed).
  bool NodeHoldsFragment(int artifact, int frag, int node) const;

  // True when `node` locally holds the artifact's full bytes: any full copy
  // under none/replicate; erasure nodes hold at most fragments, never all.
  bool NodeHoldsFullCopy(int artifact, int node) const;

  // Liveness as a fetch source. Nodes beyond the initial set default to live.
  // Mutate ONLY between epochs (the elastic boundary) — never mid-Serve.
  void SetNodeLive(int node, bool live);
  bool IsNodeLive(int node) const;

  // Installs a repair-built extra holder for (artifact, frag). Idempotent.
  // Mutate ONLY between epochs.
  void AddHolder(int artifact, int frag, int node);

  // Best live source for `frag` (primary first, then repair-installed extras
  // in node order), or -1 when none survives. `self` is excluded (a node is
  // not a remote source for itself).
  int BestLiveSource(int artifact, int frag, int self) const;

  // True when (artifact, frag) can still be rebuilt with `exclude` treated as
  // dead: replicate/none need one live copy, erasure needs any k live
  // fragments.
  bool CanRepair(int artifact, int frag, int exclude) const;

  // Resolves the tier chain for node `node` reading `artifact` of
  // `artifact_bytes` bytes. Pure (const) — every worker in an epoch sees the
  // same answer.
  FetchPlan PlanFetch(int artifact, int node, double artifact_bytes) const;

  // Transfer time of `bytes` over one node's NIC.
  double NetSeconds(double bytes) const;
  // Decode time for reconstructing one full artifact through parity.
  double DecodeSeconds(double artifact_bytes) const;

 private:
  uint64_t Score(int artifact, int node) const;

  RegistryConfig config_;
  int n_artifacts_ = 0;
  int n_nodes_ = 0;
  std::vector<char> down_;  // indexed by node; absent/false = live
  // Repair-installed extra holders: (artifact, frag) -> sorted node list.
  std::map<std::pair<int, int>, std::vector<int>> extras_;
};

}  // namespace dz

#endif  // SRC_REGISTRY_REGISTRY_H_
