// Fixed-size thread pool with a ParallelFor helper.
//
// Used by the compressor (per-layer jobs) and by GEMM sharding in the tensor library.
// Work items must not throw; failures should be reported through captured state.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dz {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until all submitted tasks have completed.
  void Wait();

  // Splits [0, n) into contiguous chunks and runs body(begin, end) across the pool,
  // blocking until completion. Falls back to inline execution for tiny n.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  size_t thread_count() const { return workers_.size(); }

  // Process-wide shared pool (sized to hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dz

#endif  // SRC_UTIL_THREAD_POOL_H_
