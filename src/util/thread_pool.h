// Fixed-size thread pool with a ParallelFor helper.
//
// Used by the compressor (per-layer jobs) and by GEMM sharding in the tensor library.
// Work items must not throw; failures should be reported through captured state.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dz {

class ThreadPool {
 public:
  // threads == 0 picks a default: the DZ_THREADS environment variable when set
  // to a positive integer, otherwise hardware_concurrency() capped to a sane
  // bound (containers report 0 or the host's full core count).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until ALL submitted tasks have completed. The waiting thread helps
  // drain the queue. Must not be called from inside a pool task: the caller's
  // own task counts as in-flight and can never retire while it waits. Inside a
  // task, use ParallelFor/ForEachTask, which wait only on their own work.
  void Wait();

  // Splits [0, n) into contiguous chunks and runs body(begin, end) across the pool,
  // blocking until completion. Falls back to inline execution for tiny n. Waits
  // only on its own chunks (helping with queued work meanwhile), so it is safe
  // to call from inside a pool task.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  // Runs fn(i) for each i in [0, n) as one task per index, blocking until all
  // complete. Unlike ParallelFor there is no inline fallback for small n — this
  // is for a handful of heavy, independent jobs that must actually overlap.
  // Safe to call from inside a pool task (same helping wait as ParallelFor).
  void ForEachTask(size_t n, const std::function<void(size_t)>& fn);

  // Tiles [0, rows) x [0, cols) into rectangular blocks of at least
  // (grain_rows x grain_cols) elements and runs body(r0, r1, c0, c1) for each
  // tile across the pool, blocking until completion. The grain is a lower
  // bound, not an exact tile size: when the grid would produce far more tiles
  // than workers can usefully chew (task overhead would dominate), tiles are
  // coarsened until the count is a small multiple of the worker count. A
  // single-tile or single-worker problem runs inline on the caller. Safe to
  // call from inside a pool task (same helping wait as ParallelFor).
  void ParallelFor2D(size_t rows, size_t cols, size_t grain_rows, size_t grain_cols,
                     const std::function<void(size_t, size_t, size_t, size_t)>& body);

  size_t thread_count() const { return workers_.size(); }

  // Tile-coarsening target for ParallelFor2D: aim for at most this many tiles
  // per executor (pool workers plus the helping caller). Small enough that
  // per-task queue overhead stays negligible next to the grain, large enough
  // to absorb load imbalance from uneven tiles. The SIMD kernel backends lean
  // on this: their per-tile work shrank by the vector width, so tile count —
  // not tile size — is what keeps task overhead amortized.
  static constexpr size_t kMaxTilesPerExecutor = 8;

  // Process-wide shared pool (default-sized: DZ_THREADS when set, otherwise
  // hardware_concurrency() capped to a sane bound — see the constructor).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  // Runs queued tasks until *pending drops to 0 (pending is decremented by the
  // submitted tasks themselves, under mu_). Blocks when the queue is empty.
  void HelpUntil(const size_t* pending);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dz

#endif  // SRC_UTIL_THREAD_POOL_H_
