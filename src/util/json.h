// Small shared JSON serialization helpers. Every hand-rolled JSON emitter in
// the repo (metrics JSONL, the Chrome trace exporter, bench summaries) must
// escape strings through JsonEscape — RFC 8259 requires `"`, `\`, and ALL
// control characters below 0x20 to be escaped, and a single raw control byte
// (a `\r` in a tenant label, say) makes the whole line unparseable.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <string>

namespace dz {

// Returns `s` with JSON string escaping applied: `"` and `\` are backslash-
// escaped, the common control characters get their short forms (\n, \t, \r,
// \b, \f), and every other byte < 0x20 becomes a \u00XX escape. The result is
// safe to place between double quotes in a JSON document. Bytes >= 0x20 pass
// through untouched (UTF-8 sequences are valid JSON as-is).
std::string JsonEscape(const std::string& s);

// Formats a double as a JSON number: round-trippable %.17g for finite values.
// JSON has no inf/nan, so non-finite values serialize as 0 (metric and trace
// values should never be non-finite in the first place).
std::string JsonNum(double v);

}  // namespace dz

#endif  // SRC_UTIL_JSON_H_
