#include "src/util/json.h"

#include <cmath>
#include <cstdio>

namespace dz {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dz
