// Minimal leveled logger used across the library.
//
// Usage:  DZ_LOG(kInfo) << "loaded delta " << id << " in " << ms << " ms";
// The global threshold is settable via SetLogLevel(); default prints kInfo and above.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace dz {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Returns the mutable global log threshold.
LogLevel& GlobalLogLevel();

inline void SetLogLevel(LogLevel level) { GlobalLogLevel() = level; }

const char* LogLevelName(LogLevel level);

// RAII line logger: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace dz

#define DZ_LOG(severity) \
  ::dz::LogMessage(::dz::LogLevel::severity, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
