#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace dz {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  DZ_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double rate) {
  DZ_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  DZ_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for trace generation.
    const double sample = Normal(mean, std::sqrt(mean));
    return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  int count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

int Rng::Zipf(int n, double alpha) {
  DZ_CHECK_GT(n, 0);
  // Direct inversion on the (small) normalized CDF; n is the number of model
  // variants (tens to hundreds), so O(n) is fine.
  double norm = 0.0;
  for (int i = 1; i <= n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i), alpha);
  }
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), alpha);
    if (u <= acc) {
      return i - 1;
    }
  }
  return n - 1;
}

int Rng::Categorical(const std::vector<double>& weights) {
  DZ_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DZ_CHECK_GE(w, 0.0);
    total += w;
  }
  DZ_CHECK_GT(total, 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace dz
