// Lightweight assertion macros, active in all build types.
//
// DZ_CHECK(cond)            — abort with message if cond is false.
// DZ_CHECK_{EQ,NE,LT,LE,GT,GE}(a, b) — comparison forms that print both operands.
//
// These are for programmer errors (violated invariants / preconditions); recoverable
// runtime failures should be reported through return values instead.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dz {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& detail) {
  std::fprintf(stderr, "DZ_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               detail.empty() ? "" : " — ", detail.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace dz

#define DZ_CHECK(cond)                                       \
  do {                                                       \
    if (!(cond)) {                                           \
      ::dz::CheckFailed(__FILE__, __LINE__, #cond, "");      \
    }                                                        \
  } while (0)

#define DZ_CHECK_OP(op, a, b)                                                        \
  do {                                                                               \
    if (!((a)op(b))) {                                                               \
      ::dz::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b,                       \
                        ::dz::FormatOperands((a), (b)));                             \
    }                                                                                \
  } while (0)

#define DZ_CHECK_EQ(a, b) DZ_CHECK_OP(==, a, b)
#define DZ_CHECK_NE(a, b) DZ_CHECK_OP(!=, a, b)
#define DZ_CHECK_LT(a, b) DZ_CHECK_OP(<, a, b)
#define DZ_CHECK_LE(a, b) DZ_CHECK_OP(<=, a, b)
#define DZ_CHECK_GT(a, b) DZ_CHECK_OP(>, a, b)
#define DZ_CHECK_GE(a, b) DZ_CHECK_OP(>=, a, b)

#endif  // SRC_UTIL_CHECK_H_
