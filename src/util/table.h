// Aligned ASCII table + CSV writer used by every bench binary so the regenerated
// paper tables/figures print in a uniform, diffable format.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dz {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  // Renders with column alignment and a header separator.
  std::string ToAscii() const;
  std::string ToCsv() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dz

#endif  // SRC_UTIL_TABLE_H_
