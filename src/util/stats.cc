#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace dz {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  DZ_CHECK_GE(p, 0.0);
  DZ_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double FractionWithin(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t ok = 0;
  for (double v : values) {
    if (v <= threshold) {
      ++ok;
    }
  }
  return static_cast<double>(ok) / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  DZ_CHECK_GT(bins, 0);
  DZ_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  const int n = static_cast<int>(counts_.size());
  int bin = static_cast<int>((x - lo_) / (hi_ - lo_) * n);
  bin = std::clamp(bin, 0, n - 1);
  ++counts_[bin];
  ++total_;
}

int Histogram::bin_count(int i) const {
  DZ_CHECK_GE(i, 0);
  DZ_CHECK_LT(i, bins());
  return counts_[i];
}

double Histogram::bin_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / bins();
}

double Histogram::bin_hi(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / bins();
}

std::string Histogram::ToAscii(int width) const {
  int max_count = 1;
  for (int c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::ostringstream os;
  for (int i = 0; i < bins(); ++i) {
    const int bar = counts_[i] * width / max_count;
    os << "[";
    os.precision(4);
    os << bin_lo(i) << ", " << bin_hi(i) << ") ";
    for (int j = 0; j < bar; ++j) {
      os << '#';
    }
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace dz
