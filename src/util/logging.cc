#include "src/util/logging.h"

#include <cstring>

namespace dz {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel() && level != LogLevel::kOff), level_(level) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level_) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace dz
