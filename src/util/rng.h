// Deterministic random number generation for the whole library.
//
// Rng wraps xoshiro256** (public-domain algorithm by Blackman & Vigna) and layers the
// distributions the workload generators and trainers need: uniform, normal, exponential,
// Poisson, Zipf, categorical, permutation. Every component takes an explicit seed so all
// experiments are reproducible bit-for-bit across runs.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dz {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Standard normal via Box-Muller (cached second sample).
  double Normal();
  double Normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small mean,
  // normal approximation above 64).
  int Poisson(double mean);

  // Samples index in [0, n) with probability proportional to 1/(i+1)^alpha.
  // Used for skewed model-popularity distributions.
  int Zipf(int n, double alpha);

  // Samples index with probability proportional to weights[i]. Weights must be
  // non-negative and not all zero.
  int Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator (for per-model / per-layer streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dz

#endif  // SRC_UTIL_RNG_H_
