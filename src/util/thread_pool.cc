#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/check.h"

namespace dz {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DZ_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  const size_t workers = thread_count();
  if (n < 2 * workers || workers == 1) {
    body(0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace dz
