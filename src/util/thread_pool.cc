#include "src/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "src/util/check.h"

namespace dz {

namespace {

// Container CI runners routinely report either 0 (unknown) or the host's full
// core count while the cgroup only grants a couple of cores; an uncapped
// default then oversubscribes badly. The cap applies only to the inferred
// default — an explicit constructor argument or DZ_THREADS is honored as-is
// (modulo a sanity clamp).
constexpr size_t kMaxDefaultThreads = 16;
constexpr size_t kMaxEnvThreads = 256;

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("DZ_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::min(static_cast<size_t>(parsed), kMaxEnvThreads);
    }
  }
  const size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return 1;
  }
  return std::min(hw, kMaxDefaultThreads);
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = DefaultThreadCount();
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DZ_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  // Wake helping waiters too: a thread blocked in Wait() must see new work,
  // otherwise a task submitted from inside a pool task can strand a nested Wait.
  all_done_.notify_all();
}

void ThreadPool::Wait() {
  // Waiting for everything is the pending-counter wait applied to the global
  // in-flight count (helping included).
  HelpUntil(&in_flight_);
}

void ThreadPool::HelpUntil(const size_t* pending) {
  std::unique_lock<std::mutex> lock(mu_);
  while (*pending > 0) {
    if (!tasks_.empty()) {
      // Execute queued work (ours or anyone's) while our jobs are outstanding.
      // Waiting only on *pending — never the global in-flight count — is what
      // makes nested use safe: a pool task's own in-flight entry can't retire
      // until this returns, so it must not be part of the wait condition.
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop();
      lock.unlock();
      task();
      lock.lock();
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
      continue;
    }
    all_done_.wait(lock, [this, pending] { return *pending == 0 || !tasks_.empty(); });
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  const size_t workers = thread_count();
  if (n < 2 * workers || workers == 1) {
    body(0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  size_t pending = (n + chunk - 1) / chunk;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([this, &body, &pending, begin, end] {
      body(begin, end);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending == 0) {
        all_done_.notify_all();
      }
    });
  }
  HelpUntil(&pending);
}

void ThreadPool::ForEachTask(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  size_t pending = n;
  for (size_t i = 0; i < n; ++i) {
    Submit([this, &fn, &pending, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending == 0) {
        all_done_.notify_all();
      }
    });
  }
  HelpUntil(&pending);
}

void ThreadPool::ParallelFor2D(
    size_t rows, size_t cols, size_t grain_rows, size_t grain_cols,
    const std::function<void(size_t, size_t, size_t, size_t)>& body) {
  if (rows == 0 || cols == 0) {
    return;
  }
  grain_rows = std::max<size_t>(grain_rows, 1);
  grain_cols = std::max<size_t>(grain_cols, 1);
  size_t tile_r = std::min(rows, grain_rows);
  size_t tile_c = std::min(cols, grain_cols);
  const size_t workers = thread_count();
  size_t nr = (rows + tile_r - 1) / tile_r;
  size_t nc = (cols + tile_c - 1) / tile_c;
  // Coarsen toward kMaxTilesPerExecutor tiles per executor. The caller helps
  // drain the queue (HelpUntil), so it counts as an executor alongside the
  // pool workers.
  const size_t executors = std::max<size_t>(workers, 1) + 1;
  const size_t max_tiles = kMaxTilesPerExecutor * executors;
  while (nr * nc > max_tiles && (nr > 1 || nc > 1)) {
    if (nr >= nc) {
      tile_r *= 2;
      nr = (rows + tile_r - 1) / tile_r;
    } else {
      tile_c *= 2;
      nc = (cols + tile_c - 1) / tile_c;
    }
  }
  if (workers <= 1 || nr * nc <= 1) {
    body(0, rows, 0, cols);
    return;
  }
  size_t pending = nr * nc;
  for (size_t r0 = 0; r0 < rows; r0 += tile_r) {
    const size_t r1 = std::min(rows, r0 + tile_r);
    for (size_t c0 = 0; c0 < cols; c0 += tile_c) {
      const size_t c1 = std::min(cols, c0 + tile_c);
      Submit([this, &body, &pending, r0, r1, c0, c1] {
        body(r0, r1, c0, c1);
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending == 0) {
          all_done_.notify_all();
        }
      });
    }
  }
  HelpUntil(&pending);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace dz
