// Descriptive statistics helpers shared by the evaluation harness and benches.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dz {

// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (linear interpolation). p in [0, 100].
double Percentile(std::vector<double> values, double p);

// Fraction of values <= threshold; used for SLO attainment curves.
double FractionWithin(const std::vector<double>& values, double threshold);

// Fixed-bin histogram over [lo, hi]; values outside are clamped into edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);
  int bin_count(int i) const;
  int bins() const { return static_cast<int>(counts_.size()); }
  double bin_lo(int i) const;
  double bin_hi(int i) const;
  size_t total() const { return total_; }

  // Renders a compact ASCII bar chart (for bench output).
  std::string ToAscii(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int> counts_;
  size_t total_ = 0;
};

}  // namespace dz

#endif  // SRC_UTIL_STATS_H_
