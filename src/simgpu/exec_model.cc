#include "src/simgpu/exec_model.h"

#include <algorithm>

#include "src/util/check.h"

namespace dz {

ExecModel::ExecModel(const ExecModelConfig& config)
    : config_(config), kernels_(config.gpu) {
  DZ_CHECK_GE(config_.tp, 1);
}

namespace {

// Launches per transformer block in an unfused engine: 7 projections + ~3 attention /
// norm kernels.
constexpr double kLaunchesPerLayer = 10.0;

}  // namespace

double ExecModel::PerLayerAllReduce(int batch) const {
  if (config_.tp <= 1) {
    return 0.0;
  }
  // Two all-reduces per block (attention output + MLP output) of [batch, d_model] fp16.
  const size_t bytes = static_cast<size_t>(batch) * config_.shape.d_model * 2;
  return 2.0 * kernels_.AllReduceTime(bytes, config_.tp);
}

double ExecModel::PrefillTime(long long tokens) const {
  if (tokens <= 0) {
    return 0.0;
  }
  const ModelShape& s = config_.shape;
  // All linear layers as one aggregate GEMM of m=tokens rows, divided across tp.
  const long long k = s.d_model;
  const long long n = static_cast<long long>(s.LinearParams() / s.d_model) / config_.tp;
  double t = kernels_.GemmTime(tokens, n, k, WeightFormat::kFp16);
  // Attention score/value math: 2 · tokens² · d per layer (causal half), usually minor
  // for our prompt lengths; modeled compute-only.
  const double attn_flops = 2.0 * static_cast<double>(tokens) * tokens * s.d_model *
                            s.n_layers / config_.tp;
  t += attn_flops / (config_.gpu.peak_fp16_tflops * 1e12);
  t += kernels_.LaunchOverhead(static_cast<int>(
      s.n_layers * kLaunchesPerLayer * config_.launch_fusion));
  t += s.n_layers * PerLayerAllReduce(static_cast<int>(std::min<long long>(tokens, 512)));
  return t;
}

double ExecModel::DecodeIterTime(int batch, double avg_ctx) const {
  if (batch <= 0) {
    return 0.0;
  }
  const ModelShape& s = config_.shape;
  const long long k = s.d_model;
  const long long n = static_cast<long long>(s.LinearParams() / s.d_model) / config_.tp;
  // Weight-read-bound GEMM over all linear layers (decode is memory-bound, §2.1).
  double t = kernels_.GemmTime(batch, n, k, WeightFormat::kFp16);
  // KV-cache reads: every request streams its context's K/V once per iteration.
  const double kv_bytes = static_cast<double>(batch) * avg_ctx *
                          static_cast<double>(s.KvBytesPerToken()) / config_.tp;
  t += kv_bytes / (config_.gpu.hbm_gbps * 1e9);
  t += kernels_.LaunchOverhead(static_cast<int>(
      s.n_layers * kLaunchesPerLayer * config_.launch_fusion));
  t += s.n_layers * PerLayerAllReduce(batch);
  return t;
}

double ExecModel::DeltaDecodeIterTime(const std::vector<int>& reqs_per_delta) const {
  int total = 0;
  int active = 0;
  for (int m : reqs_per_delta) {
    total += m;
    if (m > 0) {
      ++active;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  const ModelShape& s = config_.shape;
  const GpuSpec& gpu = config_.gpu;
  // Memory: every active delta's packed weights stream through once per iteration.
  const double delta_bytes = static_cast<double>(active) * DeltaBytesPerGpu();
  const double mem_s = delta_bytes / (gpu.hbm_gbps * 1e9);
  // Compute: 2·P·m FLOPs per request, on sparse tensor cores.
  const double flops =
      static_cast<double>(total) * s.LinearFlopsPerToken() / config_.tp;
  const double rate = gpu.peak_fp16_tflops * 1e12 * 0.92 *
                      (IsSparseFormat(config_.delta_format) ? gpu.sparse_speedup : 1.0);
  const double compute_s = flops / rate;
  // SBMM launches: one host launch pair per projection per layer; per-delta blocked
  // matmuls are device-side dynamic-parallelism launches (paper §5.2).
  const double sbmm_sites = s.n_layers * 7.0 * config_.launch_fusion;
  const double overhead_s =
      sbmm_sites * (2.0 * gpu.kernel_launch_us + active * gpu.dyn_parallel_launch_us) *
      1e-6;
  return std::max(mem_s, compute_s) + overhead_s;
}

double ExecModel::DeltaPrefillTime(long long tokens) const {
  if (tokens <= 0) {
    return 0.0;
  }
  const ModelShape& s = config_.shape;
  const long long k = s.d_model;
  const long long n = static_cast<long long>(s.LinearParams() / s.d_model) / config_.tp;
  return kernels_.GemmTime(tokens, n, k, config_.delta_format);
}

double ExecModel::LoraDecodeIterTime(const std::vector<int>& reqs_per_adapter,
                                     int rank) const {
  int total = 0;
  int active = 0;
  for (int m : reqs_per_adapter) {
    total += m;
    if (m > 0) {
      ++active;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  const ModelShape& s = config_.shape;
  const GpuSpec& gpu = config_.gpu;
  const double adapter_bytes = static_cast<double>(active) * LoraBytesPerGpu(rank);
  const double mem_s = adapter_bytes / (gpu.hbm_gbps * 1e9);
  // Per token: 2 GEMVs per projection, FLOPs = 2 · 2 · rank · (in + out) summed.
  const double flops = static_cast<double>(total) * 2.0 *
                       static_cast<double>(s.LoraBytes(rank) / 2) / config_.tp;
  const double compute_s = flops / (gpu.peak_fp16_tflops * 1e12 * 0.5);
  const double sgmv_sites = s.n_layers * 7.0 * config_.launch_fusion;
  const double overhead_s = sgmv_sites * 2.0 * gpu.kernel_launch_us * 1e-6;
  return std::max(mem_s, compute_s) + overhead_s;
}

double ExecModel::LoraPrefillTime(long long tokens, int rank) const {
  if (tokens <= 0) {
    return 0.0;
  }
  const double flops = static_cast<double>(tokens) * 2.0 *
                       static_cast<double>(config_.shape.LoraBytes(rank) / 2) /
                       config_.tp;
  return flops / (config_.gpu.peak_fp16_tflops * 1e12 * 0.5);
}

double ExecModel::LoadFullModelFromHost() const {
  return kernels_.H2DTime(BaseWeightBytesPerGpu());
}

double ExecModel::LoadFullModelFromDisk() const {
  // Full checkpoints go through the serving stack's load path (read + deserialize +
  // allocate), which is far slower than raw disk; see GpuSpec::checkpoint_load_gbps.
  return config_.gpu.disk_latency_us * 1e-6 +
         static_cast<double>(config_.shape.Fp16Bytes()) /
             (config_.gpu.checkpoint_load_gbps * 1e9);
}

double ExecModel::LoadDeltaFromHost() const {
  return kernels_.H2DTime(DeltaBytesPerGpu());
}

double ExecModel::LoadDeltaFromDisk() const {
  const int bits = config_.delta_format == WeightFormat::kSparseInt2 ? 2 : 4;
  return kernels_.DiskReadTime(
      config_.shape.DeltaBytes(bits, IsSparseFormat(config_.delta_format), 128));
}

double ExecModel::LoadLoraFromHost(int rank) const {
  return kernels_.H2DTime(LoraBytesPerGpu(rank));
}

double ExecModel::KvSwapTime(long long ctx_tokens) const {
  const size_t bytes =
      static_cast<size_t>(ctx_tokens) * KvBytesPerTokenPerGpu();
  return kernels_.H2DTime(bytes);
}

size_t ExecModel::BaseWeightBytesPerGpu() const {
  return config_.shape.Fp16Bytes() / config_.tp;
}

size_t ExecModel::DeltaBytesPerGpu() const {
  const int bits = config_.delta_format == WeightFormat::kSparseInt2 ? 2 : 4;
  return config_.shape.DeltaBytes(bits, IsSparseFormat(config_.delta_format), 128) /
         config_.tp;
}

size_t ExecModel::LoraBytesPerGpu(int rank) const {
  return config_.shape.LoraBytes(rank) / config_.tp;
}

size_t ExecModel::KvBytesPerTokenPerGpu() const {
  return config_.shape.KvBytesPerToken() / config_.tp;
}

}  // namespace dz
