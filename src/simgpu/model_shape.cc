#include "src/simgpu/model_shape.h"

namespace dz {

ModelShape ModelShape::Llama7B() {
  ModelShape s;
  s.name = "llama-7b";
  s.n_layers = 32;
  s.d_model = 4096;
  s.d_ff = 11008;
  s.n_heads = 32;
  s.n_kv_heads = 32;
  s.vocab = 32000;
  return s;
}

ModelShape ModelShape::Llama13B() {
  ModelShape s;
  s.name = "llama-13b";
  s.n_layers = 40;
  s.d_model = 5120;
  s.d_ff = 13824;
  s.n_heads = 40;
  s.n_kv_heads = 40;
  s.vocab = 32000;
  return s;
}

ModelShape ModelShape::Llama70B() {
  ModelShape s;
  s.name = "llama-70b";
  s.n_layers = 80;
  s.d_model = 8192;
  s.d_ff = 28672;
  s.n_heads = 64;
  s.n_kv_heads = 8;  // GQA
  s.vocab = 32000;
  return s;
}

ModelShape ModelShape::Pythia2p8B() {
  ModelShape s;
  s.name = "pythia-2.8b";
  s.n_layers = 32;
  s.d_model = 2560;
  s.d_ff = 10240;
  s.n_heads = 32;
  s.n_kv_heads = 32;
  s.vocab = 50304;
  return s;
}

size_t ModelShape::LinearParams() const {
  const size_t d = static_cast<size_t>(d_model);
  const size_t ff = static_cast<size_t>(d_ff);
  const size_t kv_dim = d * n_kv_heads / n_heads;
  const size_t attn = d * d /*q*/ + 2 * d * kv_dim /*k,v*/ + d * d /*o*/;
  const size_t mlp = 3 * d * ff;  // gate, up, down
  return static_cast<size_t>(n_layers) * (attn + mlp);
}

size_t ModelShape::TotalParams() const {
  const size_t emb = 2 * static_cast<size_t>(vocab) * d_model;  // embedding + LM head
  return LinearParams() + emb;
}

size_t ModelShape::KvBytesPerToken() const {
  const size_t kv_dim = static_cast<size_t>(d_model) * n_kv_heads / n_heads;
  return 2 /*K,V*/ * static_cast<size_t>(n_layers) * kv_dim * 2 /*fp16*/;
}

size_t ModelShape::DeltaBytes(int bits, bool sparse24, int group_size,
                              bool include_embeddings) const {
  const size_t params = LinearParams();
  size_t bytes = 0;
  if (sparse24) {
    const size_t kept = params / 2;
    bytes += kept * bits / 8;       // packed codes
    bytes += kept * 2 / 8;          // 2-bit indices
    const size_t groups = (kept + group_size - 1) / group_size;
    bytes += groups * 3;            // fp16 scale + uint8 zero per group
  } else {
    bytes += params * bits / 8;
    const size_t groups = (params + group_size - 1) / group_size;
    bytes += groups * 3;
  }
  if (include_embeddings) {
    bytes += 2 * static_cast<size_t>(vocab) * d_model * 2;
  }
  return bytes;
}

size_t ModelShape::LoraBytes(int rank) const {
  // Factors A [r, in] and B [out, r] for each of the 7 projections per layer.
  const size_t d = static_cast<size_t>(d_model);
  const size_t ff = static_cast<size_t>(d_ff);
  const size_t kv_dim = d * n_kv_heads / n_heads;
  size_t per_layer = 0;
  per_layer += static_cast<size_t>(rank) * (d + d);        // q
  per_layer += 2 * static_cast<size_t>(rank) * (d + kv_dim);  // k, v
  per_layer += static_cast<size_t>(rank) * (d + d);        // o
  per_layer += 2 * static_cast<size_t>(rank) * (d + ff);   // gate, up
  per_layer += static_cast<size_t>(rank) * (ff + d);       // down
  return static_cast<size_t>(n_layers) * per_layer * 2;    // fp16
}

}  // namespace dz
