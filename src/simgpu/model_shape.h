// Paper-scale transformer dimensions used by the serving-side cost model. These carry
// the real Llama-2 / Pythia parameter counts so swap sizes, memory footprints, and
// iteration times match the regimes the paper evaluates, independent of the tiny
// trainable models in src/nn.
#ifndef SRC_SIMGPU_MODEL_SHAPE_H_
#define SRC_SIMGPU_MODEL_SHAPE_H_

#include <cstddef>
#include <string>

namespace dz {

struct ModelShape {
  std::string name;
  int n_layers = 32;
  int d_model = 4096;
  int d_ff = 11008;
  int n_heads = 32;
  int n_kv_heads = 32;
  int vocab = 32000;

  static ModelShape Llama7B();
  static ModelShape Llama13B();
  static ModelShape Llama70B();
  static ModelShape Pythia2p8B();

  // Parameters in the delta-compressible linear layers (attention + MLP projections).
  size_t LinearParams() const;
  // All parameters (adds embedding + LM head; norms are negligible and ignored).
  size_t TotalParams() const;

  size_t Fp16Bytes() const { return TotalParams() * 2; }
  size_t LinearFp16Bytes() const { return LinearParams() * 2; }

  // KV-cache bytes per token (fp16 K and V across layers).
  size_t KvBytesPerToken() const;

  // Compressed-delta artifact size for the given configuration, mirroring the packing
  // arithmetic of Sparse24Matrix/PackedQuantMatrix (values + 2-bit indices + group
  // parameters) plus fp16 embeddings when embeddings are part of the delta.
  size_t DeltaBytes(int bits, bool sparse24, int group_size,
                    bool include_embeddings = false) const;

  // LoRA adapter bytes at rank r over all linear layers.
  size_t LoraBytes(int rank) const;

  // FLOPs for one token through all linear layers (2 · params).
  double LinearFlopsPerToken() const { return 2.0 * static_cast<double>(LinearParams()); }
};

}  // namespace dz

#endif  // SRC_SIMGPU_MODEL_SHAPE_H_
