// GPU hardware model: published specification constants for the devices the paper
// evaluates on (A800, RTX 3090). This is the substitution for real CUDA hardware —
// see DESIGN.md §2. All serving-side timing flows through these parameters.
#ifndef SRC_SIMGPU_GPU_SPEC_H_
#define SRC_SIMGPU_GPU_SPEC_H_

#include <cstddef>
#include <string>

namespace dz {

struct GpuSpec {
  std::string name;
  double peak_fp16_tflops = 312.0;  // dense fp16 tensor-core throughput
  double sparse_speedup = 1.6;      // 2:4 sparse tensor-core multiplier (paper Fig. 6)
  double hbm_gbps = 2039.0;         // device memory bandwidth
  double mem_gb = 80.0;             // device memory capacity
  double kernel_launch_us = 5.0;    // per kernel-launch overhead
  double dyn_parallel_launch_us = 1.0;  // device-side launch (CUDA dynamic parallelism)
  double pcie_gbps = 25.0;          // host-to-device transfer
  double pcie_latency_us = 10.0;
  double nvlink_gbps = 200.0;       // inter-GPU bandwidth within a node
  double allreduce_latency_us = 8.0;
  double disk_gbps = 3.0;           // NVMe / parallel-FS read bandwidth (raw)
  double disk_latency_us = 100.0;
  // Effective bandwidth of a full-checkpoint load through a serving stack (safetensors
  // read + deserialization + per-tensor allocation). Much lower than raw disk — e.g.
  // ServerlessLLM [32] and the paper's own Fig. 16 show 7B/13B vLLM loads taking tens
  // of seconds. Compressed deltas bypass this path (packed binary + GPU decompression),
  // so they load at raw disk bandwidth.
  double checkpoint_load_gbps = 0.8;

  // NVIDIA A800 (A100-class, NVLink/NVSwitch) — the paper's main testbed (§6.1).
  static GpuSpec A800();
  // RTX 3090 — the paper's small-scale/micro-benchmark device.
  static GpuSpec Rtx3090();

  size_t mem_bytes() const { return static_cast<size_t>(mem_gb * 1e9); }
};

}  // namespace dz

#endif  // SRC_SIMGPU_GPU_SPEC_H_
