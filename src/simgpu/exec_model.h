// Iteration-level execution-time model for transformer serving, binding a paper-scale
// ModelShape to a GpuSpec (and a tensor-parallel degree). The serving engines call
// these entry points once per continuous-batching iteration.
#ifndef SRC_SIMGPU_EXEC_MODEL_H_
#define SRC_SIMGPU_EXEC_MODEL_H_

#include <vector>

#include "src/simgpu/kernel_model.h"
#include "src/simgpu/model_shape.h"

namespace dz {

struct ExecModelConfig {
  ModelShape shape;
  GpuSpec gpu;
  int tp = 1;  // tensor-parallel degree (Megatron-style, §5.3)
  WeightFormat delta_format = WeightFormat::kSparseInt4;
  // Fraction of theoretical per-layer kernel launches that survive fusion/CUDA-graph
  // capture in a production engine.
  double launch_fusion = 0.25;
};

class ExecModel {
 public:
  explicit ExecModel(const ExecModelConfig& config);

  const ExecModelConfig& config() const { return config_; }
  const KernelModel& kernels() const { return kernels_; }

  // --- base-model path (dense fp16, shared across variants) ---

  // Prefill `tokens` prompt tokens (summed over the batch).
  double PrefillTime(long long tokens) const;

  // One decode iteration for `batch` requests with mean context length `avg_ctx`.
  double DecodeIterTime(int batch, double avg_ctx) const;

  // --- delta path (ΔCompress artifacts, SBMM execution, §5.2) ---

  // One decode iteration of the delta computation: reqs_per_delta[i] requests ride
  // delta i. Uses the SBMM launch model across every linear layer.
  double DeltaDecodeIterTime(const std::vector<int>& reqs_per_delta) const;

  // Delta-path prefill for `tokens` tokens of one variant (sparse low-precision GEMM).
  double DeltaPrefillTime(long long tokens) const;

  // --- LoRA path (Punica/S-LoRA-style SGMV, §6.4) ---
  double LoraDecodeIterTime(const std::vector<int>& reqs_per_adapter, int rank) const;
  double LoraPrefillTime(long long tokens, int rank) const;

  // --- weights movement ---
  double LoadFullModelFromHost() const;   // swap a full fp16 model H2D
  double LoadFullModelFromDisk() const;   // disk → host
  double LoadDeltaFromHost() const;
  double LoadDeltaFromDisk() const;
  double LoadLoraFromHost(int rank) const;
  // KV state swap for preempted requests (bytes of ctx tokens), one direction.
  double KvSwapTime(long long ctx_tokens) const;

  // --- sizes (per GPU, i.e., already divided by tp) ---
  size_t BaseWeightBytesPerGpu() const;
  size_t DeltaBytesPerGpu() const;
  size_t LoraBytesPerGpu(int rank) const;
  size_t KvBytesPerTokenPerGpu() const;

 private:
  double PerLayerAllReduce(int batch) const;

  ExecModelConfig config_;
  KernelModel kernels_;
};

}  // namespace dz

#endif  // SRC_SIMGPU_EXEC_MODEL_H_
