#include "src/simgpu/gpu_spec.h"

namespace dz {

GpuSpec GpuSpec::A800() {
  GpuSpec spec;
  spec.name = "A800-80GB";
  spec.peak_fp16_tflops = 312.0;
  spec.sparse_speedup = 1.6;
  spec.hbm_gbps = 2039.0;
  spec.mem_gb = 80.0;
  spec.kernel_launch_us = 5.0;
  spec.dyn_parallel_launch_us = 1.0;
  spec.pcie_gbps = 25.0;
  spec.pcie_latency_us = 10.0;
  spec.nvlink_gbps = 200.0;  // A800 NVLink (reduced vs A100's 300)
  spec.allreduce_latency_us = 8.0;
  spec.disk_gbps = 3.0;
  spec.disk_latency_us = 100.0;
  spec.checkpoint_load_gbps = 0.8;
  return spec;
}

GpuSpec GpuSpec::Rtx3090() {
  GpuSpec spec;
  spec.name = "RTX3090-24GB";
  spec.peak_fp16_tflops = 71.0;
  spec.sparse_speedup = 1.6;
  spec.hbm_gbps = 936.0;
  spec.mem_gb = 24.0;
  spec.kernel_launch_us = 6.0;
  spec.dyn_parallel_launch_us = 1.2;
  spec.pcie_gbps = 12.0;
  spec.pcie_latency_us = 12.0;
  spec.nvlink_gbps = 12.0;  // no NVLink: peer transfers ride PCIe
  spec.allreduce_latency_us = 25.0;
  spec.disk_gbps = 3.0;
  spec.disk_latency_us = 100.0;
  spec.checkpoint_load_gbps = 0.5;  // workstation-class load path
  return spec;
}

}  // namespace dz
