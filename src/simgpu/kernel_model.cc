#include "src/simgpu/kernel_model.h"

#include <algorithm>

#include "src/util/check.h"

namespace dz {

const char* WeightFormatName(WeightFormat format) {
  switch (format) {
    case WeightFormat::kFp16:
      return "fp16";
    case WeightFormat::kInt8:
      return "int8";
    case WeightFormat::kInt4:
      return "int4";
    case WeightFormat::kInt2:
      return "int2";
    case WeightFormat::kInt1:
      return "int1";
    case WeightFormat::kSparseInt4:
      return "sparse24-int4";
    case WeightFormat::kSparseInt2:
      return "sparse24-int2";
  }
  return "?";
}

double WeightBytesPerParam(WeightFormat format) {
  switch (format) {
    case WeightFormat::kFp16:
      return 2.0;
    case WeightFormat::kInt8:
      return 1.0;
    case WeightFormat::kInt4:
      return 0.5;
    case WeightFormat::kInt2:
      return 0.25;
    case WeightFormat::kInt1:
      return 0.125;
    case WeightFormat::kSparseInt4:
      // Half the values at 4 bits + 2-bit index per kept value: (4+2)/8 per kept,
      // 0.5 kept per parameter → 0.375 B/param.
      return 0.375;
    case WeightFormat::kSparseInt2:
      return 0.25 * 0.5 + 0.125;  // 2-bit codes on half the values + indices
  }
  return 2.0;
}

bool IsSparseFormat(WeightFormat format) {
  return format == WeightFormat::kSparseInt4 || format == WeightFormat::kSparseInt2;
}

namespace {

// Dequantization and index-decoding cost a little tensor-core efficiency.
double ComputeEfficiency(WeightFormat format) {
  switch (format) {
    case WeightFormat::kFp16:
      return 1.0;
    case WeightFormat::kInt8:
    case WeightFormat::kInt4:
      return 0.92;
    case WeightFormat::kInt2:
    case WeightFormat::kInt1:
      return 0.88;
    case WeightFormat::kSparseInt4:
    case WeightFormat::kSparseInt2:
      return 0.92;
  }
  return 1.0;
}

}  // namespace

double KernelModel::GemmTime(long long m, long long n, long long k,
                             WeightFormat format) const {
  DZ_CHECK_GT(m, 0);
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  double rate = spec_.peak_fp16_tflops * 1e12 * ComputeEfficiency(format);
  if (IsSparseFormat(format)) {
    // Sparse tensor cores skip the zero half: counted at dense FLOPs, they exceed
    // dense peak (paper Fig. 6's 1.6× line).
    rate *= spec_.sparse_speedup;
  }
  const double compute_s = flops / rate;

  const double weight_bytes = static_cast<double>(n) * k * WeightBytesPerParam(format);
  const double act_bytes = 2.0 * static_cast<double>(m) * (k + n);
  const double mem_s = (weight_bytes + act_bytes) / (spec_.hbm_gbps * 1e9);

  return std::max(compute_s, mem_s);
}

double KernelModel::AchievedFlops(long long m, long long n, long long k,
                                  WeightFormat format) const {
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  return flops / GemmTime(m, n, k, format);
}

SbmmBreakdown KernelModel::BatchedMatmul(const std::vector<int>& reqs_per_model,
                                         long long n, long long k, WeightFormat format,
                                         BatchedImpl impl) const {
  SbmmBreakdown out;
  const int models = static_cast<int>(reqs_per_model.size());
  DZ_CHECK_GT(models, 0);
  int max_m = 0;
  for (int m : reqs_per_model) {
    DZ_CHECK_GE(m, 0);
    max_m = std::max(max_m, m);
  }
  if (max_m == 0) {
    return out;
  }
  // Per-request scattered gather/scatter cost for implementations that do not reorder
  // requests: each row read/written individually instead of coalesced.
  constexpr double kScatterUsPerRequest = 1.5;

  switch (impl) {
    case BatchedImpl::kFp16ForLoop: {
      for (int m : reqs_per_model) {
        if (m == 0) {
          continue;
        }
        out.compute_s += GemmTime(m, n, k, WeightFormat::kFp16);
        out.total_s += LaunchOverhead(1) + kScatterUsPerRequest * 1e-6 * m;
      }
      out.total_s += out.compute_s;
      break;
    }
    case BatchedImpl::kFp16Bmm: {
      // Stack all weights into a contiguous batch buffer (device copy: read + write),
      // then one padded batched kernel over max_m rows per model.
      const double stack_bytes = 2.0 * static_cast<double>(models) * n * k * 2.0;
      const double stack_s = stack_bytes / (spec_.hbm_gbps * 1e9);
      const double padded_m = static_cast<double>(models) * max_m;
      out.compute_s = GemmTime(static_cast<long long>(padded_m), n, k, WeightFormat::kFp16);
      out.total_s = LaunchOverhead(1) + stack_s + out.compute_s;
      break;
    }
    case BatchedImpl::kNaiveForLoop: {
      for (int m : reqs_per_model) {
        if (m == 0) {
          continue;
        }
        out.compute_s += GemmTime(m, n, k, format);
        out.total_s += LaunchOverhead(1) + kScatterUsPerRequest * 1e-6 * m;
      }
      out.total_s += out.compute_s;
      break;
    }
    case BatchedImpl::kSbmmReorder: {
      // Reordering removes scattered access; still one launch per delta.
      for (int m : reqs_per_model) {
        if (m == 0) {
          continue;
        }
        out.compute_s += GemmTime(m, n, k, format);
        out.total_s += LaunchOverhead(1);
      }
      out.total_s += out.compute_s;
      break;
    }
    case BatchedImpl::kSbmm: {
      // One host launch prepares per-delta configs; device-side dynamic parallelism
      // launches the blocked matmuls (paper Fig. 8). Per-delta device launches are an
      // order of magnitude cheaper than host launches and overlap with execution.
      int active = 0;
      for (int m : reqs_per_model) {
        if (m == 0) {
          continue;
        }
        ++active;
        out.compute_s += GemmTime(m, n, k, format);
      }
      out.total_s = LaunchOverhead(2) + active * spec_.dyn_parallel_launch_us * 1e-6 +
                    out.compute_s;
      break;
    }
  }
  return out;
}

double KernelModel::H2DTime(size_t bytes) const {
  return spec_.pcie_latency_us * 1e-6 +
         static_cast<double>(bytes) / (spec_.pcie_gbps * 1e9);
}

double KernelModel::DiskReadTime(size_t bytes) const {
  return spec_.disk_latency_us * 1e-6 +
         static_cast<double>(bytes) / (spec_.disk_gbps * 1e9);
}

double KernelModel::AllReduceTime(size_t bytes, int n_gpus) const {
  if (n_gpus <= 1) {
    return 0.0;
  }
  const double ring_factor = 2.0 * (n_gpus - 1) / n_gpus;
  return spec_.allreduce_latency_us * 1e-6 +
         ring_factor * static_cast<double>(bytes) / (spec_.nvlink_gbps * 1e9);
}

}  // namespace dz
