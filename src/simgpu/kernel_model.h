// Roofline + overhead timing model for GPU kernels and transfers.
//
// Each operation's duration is max(compute time, memory time) plus explicit launch
// overheads. This reproduces the serving-relevant regimes: memory-bound decode (where
// compressed weights win by moving fewer bytes — paper Fig. 6 left), compute-bound
// prefill (where 2:4 sparse tensor cores win — Fig. 6 right), and the kernel-launch
// dominated batched-matmul implementations that motivate SBMM (Figs. 7, 8, 17).
#ifndef SRC_SIMGPU_KERNEL_MODEL_H_
#define SRC_SIMGPU_KERNEL_MODEL_H_

#include <cstddef>
#include <vector>

#include "src/simgpu/gpu_spec.h"

namespace dz {

enum class WeightFormat {
  kFp16,
  kInt8,
  kInt4,
  kInt2,
  kInt1,
  kSparseInt4,  // 2:4 sparsity + 4-bit values (ΔCompress serving format)
  kSparseInt2,
};

const char* WeightFormatName(WeightFormat format);

// Stored bytes per parameter (including 2-bit index metadata for sparse formats).
double WeightBytesPerParam(WeightFormat format);

// True when the format engages sparse tensor cores.
bool IsSparseFormat(WeightFormat format);

// Batched-matmul implementations compared in paper Figs. 7 and 17.
enum class BatchedImpl {
  kFp16ForLoop,   // dense per-model loop (the fused "add delta back" strawman)
  kFp16Bmm,       // torch.bmm-style: stack weights then one batched kernel
  kNaiveForLoop,  // low-precision per-model loop with scattered request I/O
  kSbmmReorder,   // + request reordering by delta ("Ours" in Fig. 17)
  kSbmm,          // + single dynamic-parallelism launch ("Ours+", §5.2)
};

struct SbmmBreakdown {
  double compute_s = 0.0;  // time doing useful math (dark bars in Fig. 7)
  double total_s = 0.0;    // including launches, stacking, scattered access
};

class KernelModel {
 public:
  explicit KernelModel(const GpuSpec& spec) : spec_(spec) {}

  const GpuSpec& spec() const { return spec_; }

  // Y[m, n] = X[m, k] · Wᵀ with W stored in `format`. Excludes launch overhead.
  double GemmTime(long long m, long long n, long long k, WeightFormat format) const;

  // Achieved FLOP/s for the GEMM (counted at dense 2mnk), for Fig. 6.
  double AchievedFlops(long long m, long long n, long long k, WeightFormat format) const;

  double LaunchOverhead(int launches) const {
    return launches * spec_.kernel_launch_us * 1e-6;
  }

  // Grouped delta matmul: model i has reqs_per_model[i] requests; every delta is
  // [n, k] in `format`. Returns compute/total breakdown for the chosen implementation.
  SbmmBreakdown BatchedMatmul(const std::vector<int>& reqs_per_model, long long n,
                              long long k, WeightFormat format, BatchedImpl impl) const;

  // Transfers.
  double H2DTime(size_t bytes) const;
  double DiskReadTime(size_t bytes) const;
  // Ring all-reduce of `bytes` across n GPUs.
  double AllReduceTime(size_t bytes, int n_gpus) const;

 private:
  GpuSpec spec_;
};

}  // namespace dz

#endif  // SRC_SIMGPU_KERNEL_MODEL_H_
