// NEON kernel backend for arm64. Compiled only when the target has NEON
// (baseline on aarch64), with -ffp-contract=off.
//
// vmlaq_f32 is deliberately avoided: compilers may lower it to fused fmla,
// which rounds once and would break bit-identity with the scalar backend.
// Every multiply-accumulate is an explicit vmulq + vaddq pair, one independent
// output element per lane, k-terms in ascending order.
#include "src/tensor/kernels_generic.h"

#if !defined(__ARM_NEON) && !defined(__ARM_NEON__)
#error "kernels_neon.cc must be compiled for a NEON-capable target"
#endif

#include <arm_neon.h>

namespace dz {
namespace kernels {
namespace {

struct NeonOps {
  static constexpr int kWidth = 4;
  static constexpr size_t kQuantJr = 4;
  static constexpr size_t kSparseRows = 4;
  static constexpr size_t kSparseCols = 1;  // no NEON gather: column path off

  // 4x16 NT micro-kernel: 4 q-register accumulators per output row.
  static void NTMicro4(const float* arow0, const float* arow1,
                       const float* arow2, const float* arow3,
                       const float* panel, int k, float* out) {
    float32x4_t acc[kMicroRows][4];
    for (size_t t = 0; t < kMicroRows; ++t) {
      for (size_t q = 0; q < 4; ++q) {
        acc[t][q] = vdupq_n_f32(0.0f);
      }
    }
    const float* arows[kMicroRows] = {arow0, arow1, arow2, arow3};
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      float32x4_t bv[4];
      for (size_t q = 0; q < 4; ++q) {
        bv[q] = vld1q_f32(brow + q * 4);
      }
      for (size_t t = 0; t < kMicroRows; ++t) {
        const float32x4_t av = vdupq_n_f32(arows[t][p]);
        for (size_t q = 0; q < 4; ++q) {
          acc[t][q] = vaddq_f32(acc[t][q], vmulq_f32(av, bv[q]));
        }
      }
    }
    for (size_t t = 0; t < kMicroRows; ++t) {
      for (size_t q = 0; q < 4; ++q) {
        vst1q_f32(out + t * kMicroCols + q * 4, acc[t][q]);
      }
    }
  }

  static void NTMicro1(const float* arow, const float* panel, int k,
                       float* out) {
    float32x4_t acc[4];
    for (size_t q = 0; q < 4; ++q) {
      acc[q] = vdupq_n_f32(0.0f);
    }
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      const float32x4_t av = vdupq_n_f32(arow[p]);
      for (size_t q = 0; q < 4; ++q) {
        acc[q] = vaddq_f32(acc[q], vmulq_f32(av, vld1q_f32(brow + q * 4)));
      }
    }
    for (size_t q = 0; q < 4; ++q) {
      vst1q_f32(out + q * 4, acc[q]);
    }
  }

  static void Axpy(float v, const float* x, float* y, size_t n) {
    const float32x4_t vv = vdupq_n_f32(v);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(y + i,
                vaddq_f32(vld1q_f32(y + i), vmulq_f32(vv, vld1q_f32(x + i))));
    }
    for (; i < n; ++i) {
      y[i] += v * x[i];
    }
  }

  static void Rank1x4(float v0, float v1, float v2, float v3, const float* b,
                      float* c0, float* c1, float* c2, float* c3, size_t n) {
    const float32x4_t w0 = vdupq_n_f32(v0);
    const float32x4_t w1 = vdupq_n_f32(v1);
    const float32x4_t w2 = vdupq_n_f32(v2);
    const float32x4_t w3 = vdupq_n_f32(v3);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float32x4_t bv = vld1q_f32(b + j);
      vst1q_f32(c0 + j, vaddq_f32(vld1q_f32(c0 + j), vmulq_f32(w0, bv)));
      vst1q_f32(c1 + j, vaddq_f32(vld1q_f32(c1 + j), vmulq_f32(w1, bv)));
      vst1q_f32(c2 + j, vaddq_f32(vld1q_f32(c2 + j), vmulq_f32(w2, bv)));
      vst1q_f32(c3 + j, vaddq_f32(vld1q_f32(c3 + j), vmulq_f32(w3, bv)));
    }
    for (; j < n; ++j) {
      const float bv = b[j];
      c0[j] += v0 * bv;
      c1[j] += v1 * bv;
      c2[j] += v2 * bv;
      c3[j] += v3 * bv;
    }
  }

  static void Add(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
    }
    for (; i < n; ++i) {
      y[i] += x[i];
    }
  }

  static void Sub(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(y + i, vsubq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
    }
    for (; i < n; ++i) {
      y[i] -= x[i];
    }
  }

  static void Scale(float* y, float s, size_t n) {
    const float32x4_t sv = vdupq_n_f32(s);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), sv));
    }
    for (; i < n; ++i) {
      y[i] *= s;
    }
  }

  // Vector affine decode: int subtract and int->float convert are exact, so
  // the one mul rounds identically to the scalar expression.
  static void DequantAffine(const int* codes, size_t len, int zero, float scale,
                            float* out) {
    const int32x4_t zv = vdupq_n_s32(zero);
    const float32x4_t sv = vdupq_n_f32(scale);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const int32x4_t c = vld1q_s32(codes + i);
      const float32x4_t f = vcvtq_f32_s32(vsubq_s32(c, zv));
      vst1q_f32(out + i, vmulq_f32(f, sv));
    }
    for (; i < len; ++i) {
      out[i] = static_cast<float>(codes[i] - zero) * scale;
    }
  }

  static void InterleaveQuant(const float* rowbuf, size_t stride, size_t len,
                              float* panel) {
    ScalarOps::InterleaveQuant(rowbuf, stride, len, panel);
  }

  static void QuantInner(const float* x, const float* panel, size_t len,
                         float* acc) {
    float32x4_t accv = vld1q_f32(acc);
    for (size_t c = 0; c < len; ++c) {
      const float32x4_t xv = vdupq_n_f32(x[c]);
      accv = vaddq_f32(accv, vmulq_f32(xv, vld1q_f32(panel + c * kQuantJr)));
    }
    vst1q_f32(acc, accv);
  }

  // No NEON gather: 4 interleaved scalar chains (same shape as ScalarOps).
  static void SparseInner(const float* x0, size_t stride, const int* cols,
                          const float* vals, size_t len, float* acc) {
    ScalarOps::SparseInner(x0, stride, cols, vals, len, acc);
  }

  static void SparseInnerT(const float* xrow, const int* colsT,
                           const float* valsT, size_t len, float* acc) {
    ScalarOps::SparseInnerT(xrow, colsT, valsT, len, acc);  // unreachable
  }

  static void PackStrip16(const float* b0, size_t ldb, int k, float* panel) {
    ScalarOps::PackStrip16(b0, ldb, k, panel);  // pure data movement
  }

  static size_t MatchLen(const uint8_t* a, const uint8_t* b, size_t max) {
    return ScalarOps::MatchLen(a, b, max);  // 8-byte word probes
  }

  static void CopyMatch(uint8_t* dst, size_t dist, size_t len) {
    if (dist >= 16) {
      const uint8_t* src = dst - dist;
      size_t i = 0;
      for (; i + 16 <= len; i += 16) {
        vst1q_u8(dst + i, vld1q_u8(src + i));
      }
      for (; i < len; ++i) {
        dst[i] = src[i];
      }
      return;
    }
    ScalarOps::CopyMatch(dst, dist, len);
  }
};

}  // namespace

const Backend* GetNeonBackend() {
  return MakeBackendTable<NeonOps>("neon", "NEON (4-wide fp32)");
}

}  // namespace kernels
}  // namespace dz
