// Shared blocked-kernel drivers for the per-ISA backend translation units.
//
// This header is included ONLY by kernels_scalar.cc / kernels_avx2.cc /
// kernels_avx512.cc / kernels_neon.cc. Everything lives in an anonymous
// namespace on purpose: each backend TU gets its own internal-linkage copy of
// the drivers, compiled under that TU's -m flags, so no symbol can collide
// across TUs and no ISA instruction can leak into another backend through a
// shared instantiation. The only exported symbol per TU is its Get*Backend()
// factory (declared in kernels_dispatch.cc).
//
// The drivers are templated on an Arch policy providing the innermost loops:
//
//   struct Arch {
//     static constexpr int kWidth;          // fp32 lanes per vector
//     static constexpr size_t kQuantJr;     // quant panel interleave width
//     static constexpr size_t kSparseRows;  // sparse rows chained per pass
//     static constexpr size_t kSparseCols;  // sparse cols gathered per pass
//     static void NTMicro4(a0,a1,a2,a3, panel, k, out);   // 4x16 NT micro
//     static void NTMicro1(a, panel, k, out);             // 1x16 NT micro
//     static void Axpy(v, x, y, n);                       // y[j] += v*x[j]
//     static void Rank1x4(v0..v3, b, c0..c3, n);          // 4 fused axpys
//     static void Add/Sub(y, x, n); static void Scale(y, s, n);
//     static void QuantInner(x, panel, len, acc);         // kQuantJr chains
//     static void SparseInner(x0, stride, cols, vals, len, acc);
//     static void SparseInnerT(xrow, colsT, valsT, len, acc);  // kSparseCols
//     static size_t MatchLen(a, b, max);
//     static void CopyMatch(dst, dist, len);
//   };
//
// Bit-identity rule for every Arch: vectorize ONLY across independent output
// elements. Each output element's k-terms are accumulated one at a time in
// ascending order (with the naive kernels' zero-skips preserved), so all
// backends produce byte-identical results to kernels::ref. The per-ISA TUs
// are compiled with -ffp-contract=off, so mul+add never fuses into an FMA.
#ifndef SRC_TENSOR_KERNELS_GENERIC_H_
#define SRC_TENSOR_KERNELS_GENERIC_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/tensor/backend.h"
#include "src/tensor/matrix.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace dz {
namespace kernels {
namespace {

// Problems below this many flops run serially: task overhead would dominate.
constexpr size_t kParallelFlopThreshold = 1u << 22;

// Per-task flop target for the 2D tile grain; ParallelFor2D coarsens further
// if the grid still has more tiles than the pool can usefully chew.
constexpr size_t kTaskFlopTarget = 1u << 21;

// Micro-kernel register blocking: MR output rows x NR output columns. NR=16 is
// two AVX2 vectors, one AVX-512 vector, four NEON vectors — every backend
// tiles the same 4x16 block, so panel packing is identical across ISAs.
constexpr size_t kMicroRows = 4;
constexpr size_t kMicroCols = 16;

size_t GrainCols(size_t grain_rows, size_t k) {
  const size_t denom = std::max<size_t>(2 * k * grain_rows, 1);
  return std::max<size_t>(kMicroCols * 8, kTaskFlopTarget / denom);
}

template <typename Body>
void Launch2D(size_t m, size_t n, size_t k, size_t flops, const Body& body) {
  if (m == 0 || n == 0) {
    return;
  }
  if (flops < kParallelFlopThreshold) {
    body(0, m, 0, n);
    return;
  }
  const size_t grain_rows = 64;
  ThreadPool::Global().ParallelFor2D(m, n, grain_rows, GrainCols(grain_rows, k),
                                     body);
}

// ---------------------------------------------------------------------------
// NT form: C = A * B^T, per-element reduction over p ascending, no zero-skip
// (the naive kernel never skipped here).
// ---------------------------------------------------------------------------

// Pointer variant for short i-ranges where panel packing would not amortize.
// Each accumulator chain reads a different B row, so the p-loop cannot
// vectorize without reordering the reduction — it stays scalar in every
// backend (wide shapes take the packed-panel path below instead).
void GemmNTPointerStrip(const Matrix& a, const Matrix& b, Matrix& c, size_t i,
                        size_t j0, size_t j1) {
  const int k = a.cols();
  const float* arow = a.row(static_cast<int>(i));
  float* crow = c.row(static_cast<int>(i));
  size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    const float* b0 = b.row(static_cast<int>(j));
    const float* b1 = b.row(static_cast<int>(j + 1));
    const float* b2 = b.row(static_cast<int>(j + 2));
    const float* b3 = b.row(static_cast<int>(j + 3));
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      acc0 += av * b0[p];
      acc1 += av * b1[p];
      acc2 += av * b2[p];
      acc3 += av * b3[p];
    }
    crow[j] = acc0;
    crow[j + 1] = acc1;
    crow[j + 2] = acc2;
    crow[j + 3] = acc3;
  }
  for (; j < j1; ++j) {
    const float* brow = b.row(static_cast<int>(j));
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc += arow[p] * brow[p];
    }
    crow[j] = acc;
  }
}

template <typename Arch>
void GemmNTTile(const Matrix& a, const Matrix& b, Matrix& c, size_t i0,
                size_t i1, size_t j0, size_t j1) {
  const int k = a.cols();
  if (i1 - i0 < kMicroRows) {
    // Too few rows to amortize panel packing; multi-accumulator pointer strips.
    for (size_t i = i0; i < i1; ++i) {
      GemmNTPointerStrip(a, b, c, i, j0, j1);
    }
    return;
  }
  std::vector<float> panel(static_cast<size_t>(k) * kMicroCols);
  float out[kMicroRows * kMicroCols];
  const float* brows[kMicroCols];
  for (size_t jb = j0; jb < j1; jb += kMicroCols) {
    const size_t width = std::min(kMicroCols, j1 - jb);
    if (width == kMicroCols) {
      // Full stripe: B's rows are evenly strided, so the transpose pack is a
      // per-backend vector op (in-register 8x8 transposes on x86). At small m
      // the pack dominates the whole GEMM, so this path is hot.
      Arch::PackStrip16(b.row(static_cast<int>(jb)),
                        static_cast<size_t>(b.cols()), k, panel.data());
    } else {
      // Remainder stripe: pack scalar; pad dead lanes with zeros.
      for (size_t t = 0; t < kMicroCols; ++t) {
        brows[t] = b.row(static_cast<int>(jb + (t < width ? t : 0)));
      }
      for (int p = 0; p < k; ++p) {
        float* dst = panel.data() + static_cast<size_t>(p) * kMicroCols;
        for (size_t t = 0; t < kMicroCols; ++t) {
          dst[t] = t < width ? brows[t][p] : 0.0f;
        }
      }
    }
    size_t i = i0;
    for (; i + kMicroRows <= i1; i += kMicroRows) {
      Arch::NTMicro4(a.row(static_cast<int>(i)), a.row(static_cast<int>(i + 1)),
                     a.row(static_cast<int>(i + 2)),
                     a.row(static_cast<int>(i + 3)), panel.data(), k, out);
      for (size_t t = 0; t < kMicroRows; ++t) {
        float* crow = c.row(static_cast<int>(i + t));
        for (size_t jj = 0; jj < width; ++jj) {
          crow[jb + jj] = out[t * kMicroCols + jj];
        }
      }
    }
    for (; i < i1; ++i) {
      Arch::NTMicro1(a.row(static_cast<int>(i)), panel.data(), k, out);
      float* crow = c.row(static_cast<int>(i));
      for (size_t jj = 0; jj < width; ++jj) {
        crow[jb + jj] = out[jj];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NN/TN shared inner: C[i0..i1) rows accumulate rank-1 updates over p
// ascending with the naive kernel's per-(i,p) zero-skip. `a_base` rows must be
// contiguous k-vectors (A itself for NN, a packed transpose panel for TN).
// ---------------------------------------------------------------------------

template <typename Arch>
void RankOneAccumTile(const float* a_base, size_t a_stride, size_t rows,
                      const Matrix& b, Matrix& c, size_t c_row0, size_t j0,
                      size_t j1) {
  const int k = b.rows();
  constexpr size_t kJTile = 512;  // keeps the active C segment L1-resident
  for (size_t jt = j0; jt < j1; jt += kJTile) {
    const size_t jt1 = std::min(j1, jt + kJTile);
    size_t i = 0;
    for (; i + 4 <= rows; i += 4) {
      const float* a0 = a_base + (i + 0) * a_stride;
      const float* a1 = a_base + (i + 1) * a_stride;
      const float* a2 = a_base + (i + 2) * a_stride;
      const float* a3 = a_base + (i + 3) * a_stride;
      float* c0 = c.row(static_cast<int>(c_row0 + i + 0));
      float* c1 = c.row(static_cast<int>(c_row0 + i + 1));
      float* c2 = c.row(static_cast<int>(c_row0 + i + 2));
      float* c3 = c.row(static_cast<int>(c_row0 + i + 3));
      for (int p = 0; p < k; ++p) {
        const float* brow = b.row(p);
        const float v0 = a0[p];
        const float v1 = a1[p];
        const float v2 = a2[p];
        const float v3 = a3[p];
        if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
          // Fused fast path: one pass over the B row updates 4 C rows.
          Arch::Rank1x4(v0, v1, v2, v3, brow + jt, c0 + jt, c1 + jt, c2 + jt,
                        c3 + jt, jt1 - jt);
        } else {
          // Preserve the naive kernel's per-row zero-skip exactly.
          if (v0 != 0.0f) Arch::Axpy(v0, brow + jt, c0 + jt, jt1 - jt);
          if (v1 != 0.0f) Arch::Axpy(v1, brow + jt, c1 + jt, jt1 - jt);
          if (v2 != 0.0f) Arch::Axpy(v2, brow + jt, c2 + jt, jt1 - jt);
          if (v3 != 0.0f) Arch::Axpy(v3, brow + jt, c3 + jt, jt1 - jt);
        }
      }
    }
    for (; i < rows; ++i) {
      const float* arow = a_base + i * a_stride;
      float* crow = c.row(static_cast<int>(c_row0 + i));
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) {
          continue;
        }
        Arch::Axpy(av, b.row(p) + jt, crow + jt, jt1 - jt);
      }
    }
  }
}

template <typename Arch>
Matrix GemmNNImpl(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.rows());
  const size_t m = static_cast<size_t>(a.rows());
  const size_t k = static_cast<size_t>(a.cols());
  const size_t n = static_cast<size_t>(b.cols());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    RankOneAccumTile<Arch>(a.row(static_cast<int>(i0)), k, i1 - i0, b, c, i0,
                           j0, j1);
  });
  return c;
}

template <typename Arch>
Matrix GemmNTImpl(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.cols());
  const size_t m = static_cast<size_t>(a.rows());
  const size_t k = static_cast<size_t>(a.cols());
  const size_t n = static_cast<size_t>(b.rows());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    GemmNTTile<Arch>(a, b, c, i0, i1, j0, j1);
  });
  return c;
}

template <typename Arch>
Matrix GemmTNImpl(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.rows(), b.rows());
  const size_t m = static_cast<size_t>(a.cols());
  const size_t k = static_cast<size_t>(a.rows());
  const size_t n = static_cast<size_t>(b.cols());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    // Pack the A columns of this tile into contiguous k-vectors once, then
    // reuse the NN inner kernel. Copying changes no arithmetic.
    const size_t rows = i1 - i0;
    std::vector<float> panel(rows * k);
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.row(static_cast<int>(p));
      for (size_t ii = 0; ii < rows; ++ii) {
        panel[ii * k + p] = arow[i0 + ii];
      }
    }
    RankOneAccumTile<Arch>(panel.data(), k, rows, b, c, i0, j0, j1);
  });
  return c;
}

// ---------------------------------------------------------------------------
// Fused group-dequant GEMM.
// ---------------------------------------------------------------------------

// Columns decoded per pass; panel (Jr rows interleaved) stays L1-resident.
constexpr size_t kQuantBlockCols = 256;

// Decodes w rows [j, j+jw) columns [c0, c1) into `panel` interleaved as
// panel[(c - c0) * Jr + t]; dead lanes (t >= jw) are zero-padded. Values are
// computed with exactly the ValueAt()/Dequantize() expression — the int
// subtract and int->float convert are exact, so the single float multiply is
// the only rounding step and every backend produces identical bits. The
// interleave width Jr is a per-backend layout choice — each output element's
// chain is unaffected by how many neighbors decode alongside it.
//
// Pipeline: per row, unpack codes (scalar bit twiddling), per-group affine
// into a contiguous row buffer (Arch::DequantAffine, vectorized), then one
// Jr-wide transpose into the interleaved panel (Arch::InterleaveQuant). The
// strided scatter this replaces dominated decode time at small m.
template <typename Arch>
void DecodeQuantPanel(const PackedQuantMatrix& w, size_t j, size_t jw,
                      size_t c0, size_t c1, int* codes, float* rowbuf,
                      float* panel) {
  constexpr size_t Jr = Arch::kQuantJr;
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const size_t cols = static_cast<size_t>(w.cols());
  const size_t words_per_row = (cols + codes_per_word - 1) / codes_per_word;
  const int group_size = w.group_size();
  const size_t groups_per_row =
      (cols + static_cast<size_t>(group_size) - 1) / group_size;
  const size_t len = c1 - c0;
  for (size_t t = 0; t < Jr; ++t) {
    float* out = rowbuf + t * kQuantBlockCols;
    if (t >= jw) {
      std::fill(out, out + len, 0.0f);
      continue;
    }
    const size_t row = j + t;
    const uint32_t* words = w.packed().data() + row * words_per_row;
    // Step 1: unpack raw codes word-at-a-time into a register-friendly array.
    {
      size_t c = c0;
      size_t wi = c0 / static_cast<size_t>(codes_per_word);
      int idx = static_cast<int>(c0 % static_cast<size_t>(codes_per_word));
      uint32_t word = words[wi] >> (idx * bits);
      while (c < c1) {
        if (idx == codes_per_word) {
          ++wi;
          word = words[wi];
          idx = 0;
        }
        codes[c - c0] = static_cast<int>(word & mask);
        word >>= bits;
        ++idx;
        ++c;
      }
    }
    // Step 2: per-group affine, identical expression to ValueAt().
    const float* scales = w.scales().data() + row * groups_per_row;
    const uint8_t* zeros = w.zeros().data() + row * groups_per_row;
    size_t g = c0 / static_cast<size_t>(group_size);
    size_t c = c0;
    while (c < c1) {
      const size_t gend =
          std::min(c1, (g + 1) * static_cast<size_t>(group_size));
      Arch::DequantAffine(codes + (c - c0), gend - c,
                          static_cast<int>(zeros[g]), scales[g],
                          out + (c - c0));
      c = gend;
      ++g;
    }
  }
  // Step 3: transpose the Jr contiguous rows into the interleaved panel.
  Arch::InterleaveQuant(rowbuf, kQuantBlockCols, len, panel);
}

template <typename Arch>
Matrix QuantGemmNTImpl(const Matrix& x, const PackedQuantMatrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  constexpr size_t Jr = Arch::kQuantJr;
  const size_t m = static_cast<size_t>(x.rows());
  const size_t n = static_cast<size_t>(w.rows());
  const size_t k = static_cast<size_t>(w.cols());
  Matrix y(static_cast<int>(m), static_cast<int>(n));
  if (m == 0 || n == 0 || k == 0) {
    return y;
  }
  const auto body = [&](size_t j0, size_t j1, size_t, size_t) {
    std::vector<int> codes(kQuantBlockCols);
    std::vector<float> rowbuf(kQuantBlockCols * Jr);
    std::vector<float> panel(kQuantBlockCols * Jr);
    for (size_t j = j0; j < j1; j += Jr) {
      const size_t jw = std::min(Jr, j1 - j);
      for (size_t c0 = 0; c0 < k; c0 += kQuantBlockCols) {
        const size_t c1 = std::min(k, c0 + kQuantBlockCols);
        DecodeQuantPanel<Arch>(w, j, jw, c0, c1, codes.data(), rowbuf.data(),
                               panel.data());
        for (size_t i = 0; i < m; ++i) {
          const float* xrow = x.row(static_cast<int>(i));
          float* yrow = y.row(static_cast<int>(i));
          // Left-fold continuation: each (i, j+t) chain extends across column
          // blocks in ascending c, exactly the naive single-chain order.
          float acc[Jr];
          for (size_t t = 0; t < Jr; ++t) {
            acc[t] = t < jw ? yrow[j + t] : 0.0f;
          }
          Arch::QuantInner(xrow + c0, panel.data(), c1 - c0, acc);
          for (size_t t = 0; t < jw; ++t) {
            yrow[j + t] = acc[t];
          }
        }
      }
    }
  };
  const size_t flops = m * n * k;
  if (flops < kParallelFlopThreshold) {
    body(0, n, 0, 1);
  } else {
    const size_t grain = std::max<size_t>(
        Jr * 4, kTaskFlopTarget / std::max<size_t>(2 * m * k, 1));
    ThreadPool::Global().ParallelFor2D(n, 1, grain, 1, body);
  }
  return y;
}

// ---------------------------------------------------------------------------
// 2:4 sparse gather GEMM.
// ---------------------------------------------------------------------------

template <typename Arch>
Matrix Sparse24GemmNTImpl(const Matrix& x, const Sparse24Matrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  constexpr size_t R = Arch::kSparseRows;
  constexpr size_t Jc = Arch::kSparseCols;
  const size_t m = static_cast<size_t>(x.rows());
  const size_t n = static_cast<size_t>(w.rows());
  const size_t kept = static_cast<size_t>(w.cols()) / 2;
  Matrix y(static_cast<int>(m), static_cast<int>(n));
  if (m == 0 || n == 0 || kept == 0) {
    return y;
  }
  const size_t xstride = static_cast<size_t>(x.cols());
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const size_t words_per_row = (kept + codes_per_word - 1) / codes_per_word;
  const size_t index_words_per_row = (kept + 15) / 16;
  const size_t group_size = static_cast<size_t>(w.group_size());
  const size_t groups_per_row = (kept + group_size - 1) / group_size;
  constexpr size_t kBlock = 256;  // kept slots decoded per pass

  // Decodes kept-slot block [k0, k1) of weight row j into gather columns and
  // dequantized values, `stride` floats apart (1 for the row path, kSparseCols
  // for the column path's interleaved panel). Scalar on every backend, so the
  // dequant affine rounds identically everywhere.
  const auto decode_block = [&](size_t j, size_t k0, size_t k1, size_t stride,
                                int* cols_out, float* vals_out) {
    const uint32_t* vwords = w.packed_values().data() + j * words_per_row;
    const uint32_t* iwords = w.packed_indices().data() + j * index_words_per_row;
    const float* scales = w.scales().data() + j * groups_per_row;
    const uint8_t* zeros = w.zeros().data() + j * groups_per_row;
    for (size_t kk = k0; kk < k1; ++kk) {
      const uint32_t iword = iwords[kk / 16];
      const int in_group = static_cast<int>((iword >> ((kk % 16) * 2)) & 0x3u);
      cols_out[(kk - k0) * stride] = static_cast<int>((kk / 2) * 4) + in_group;
      const uint32_t vword = vwords[kk / codes_per_word];
      const int q =
          static_cast<int>((vword >> ((kk % codes_per_word) * bits)) & mask);
      const size_t gi = kk / group_size;
      vals_out[(kk - k0) * stride] =
          static_cast<float>(q - static_cast<int>(zeros[gi])) * scales[gi];
    }
  };

  // When m < R the row path degenerates to scalar chains, so flip the
  // vectorization axis: process kSparseCols weight rows per pass, one
  // accumulator lane per output column, x values fetched by vector gather.
  // 2:4 sparsity gives every weight row exactly kept slots, so the slot loop
  // is uniform across lanes and each lane's chain stays ascending-k.
  const bool column_path = Jc > 1 && m < R;

  const auto body = [&](size_t j0, size_t j1, size_t, size_t) {
    std::vector<int> cols(kBlock * (column_path ? Jc : 1));
    std::vector<float> vals(kBlock * (column_path ? Jc : 1));
    size_t j = j0;
    if (column_path) {
      for (; j + Jc <= j1; j += Jc) {
        for (size_t k0 = 0; k0 < kept; k0 += kBlock) {
          const size_t k1 = std::min(kept, k0 + kBlock);
          const size_t len = k1 - k0;
          for (size_t t = 0; t < Jc; ++t) {
            decode_block(j + t, k0, k1, Jc, cols.data() + t, vals.data() + t);
          }
          for (size_t i = 0; i < m; ++i) {
            float acc[Jc];
            for (size_t t = 0; t < Jc; ++t) {
              acc[t] = y.at(static_cast<int>(i), static_cast<int>(j + t));
            }
            Arch::SparseInnerT(x.row(static_cast<int>(i)), cols.data(),
                               vals.data(), len, acc);
            for (size_t t = 0; t < Jc; ++t) {
              y.at(static_cast<int>(i), static_cast<int>(j + t)) = acc[t];
            }
          }
        }
      }
    }
    for (; j < j1; ++j) {
      for (size_t k0 = 0; k0 < kept; k0 += kBlock) {
        const size_t k1 = std::min(kept, k0 + kBlock);
        decode_block(j, k0, k1, 1, cols.data(), vals.data());
        const size_t len = k1 - k0;
        // R activation rows at a time: R independent chains share one pass
        // over cols/vals (gathered in the vector backends), each chain still
        // ascending kept-slot order with left-fold continuation across blocks.
        size_t i = 0;
        for (; i + R <= m; i += R) {
          float acc[R];
          for (size_t r = 0; r < R; ++r) {
            acc[r] = y.at(static_cast<int>(i + r), static_cast<int>(j));
          }
          Arch::SparseInner(x.row(static_cast<int>(i)), xstride, cols.data(),
                            vals.data(), len, acc);
          for (size_t r = 0; r < R; ++r) {
            y.at(static_cast<int>(i + r), static_cast<int>(j)) = acc[r];
          }
        }
        // Sub-R tail in interleaved groups of 4: four independent chains share
        // one pass over cols/vals (each still ascending kept-slot order), so a
        // wide backend's m < R case is never slower than the scalar backend.
        for (; i + 4 <= m; i += 4) {
          const float* x0 = x.row(static_cast<int>(i));
          const float* x1 = x0 + xstride;
          const float* x2 = x1 + xstride;
          const float* x3 = x2 + xstride;
          float a0 = y.at(static_cast<int>(i + 0), static_cast<int>(j));
          float a1 = y.at(static_cast<int>(i + 1), static_cast<int>(j));
          float a2 = y.at(static_cast<int>(i + 2), static_cast<int>(j));
          float a3 = y.at(static_cast<int>(i + 3), static_cast<int>(j));
          for (size_t kk = 0; kk < len; ++kk) {
            const int c = cols[kk];
            const float v = vals[kk];
            a0 += x0[c] * v;
            a1 += x1[c] * v;
            a2 += x2[c] * v;
            a3 += x3[c] * v;
          }
          y.at(static_cast<int>(i + 0), static_cast<int>(j)) = a0;
          y.at(static_cast<int>(i + 1), static_cast<int>(j)) = a1;
          y.at(static_cast<int>(i + 2), static_cast<int>(j)) = a2;
          y.at(static_cast<int>(i + 3), static_cast<int>(j)) = a3;
        }
        for (; i < m; ++i) {
          const float* xrow = x.row(static_cast<int>(i));
          float acc = y.at(static_cast<int>(i), static_cast<int>(j));
          for (size_t kk = 0; kk < len; ++kk) {
            acc += xrow[cols[kk]] * vals[kk];
          }
          y.at(static_cast<int>(i), static_cast<int>(j)) = acc;
        }
      }
    }
  };
  const size_t flops = m * n * kept;
  if (flops < kParallelFlopThreshold) {
    body(0, n, 0, 1);
  } else {
    size_t grain = std::max<size_t>(
        16, kTaskFlopTarget / std::max<size_t>(2 * m * kept, 1));
    if (column_path) {
      grain = (grain + Jc - 1) / Jc * Jc;  // keep partitions lane-aligned
    }
    ThreadPool::Global().ParallelFor2D(n, 1, grain, 1, body);
  }
  return y;
}

// ---------------------------------------------------------------------------
// Blocked transpose (pure data movement — shared by every backend).
// ---------------------------------------------------------------------------

template <typename Arch>
Matrix TransposeImpl(const Matrix& m) {
  const int rows = m.rows();
  const int cols = m.cols();
  Matrix t(cols, rows);
  constexpr int kTile = 32;
  for (int rb = 0; rb < rows; rb += kTile) {
    const int re = std::min(rows, rb + kTile);
    for (int cb = 0; cb < cols; cb += kTile) {
      const int ce = std::min(cols, cb + kTile);
      for (int c = cb; c < ce; ++c) {
        float* trow = t.row(c);
        for (int r = rb; r < re; ++r) {
          trow[r] = m.row(r)[c];
        }
      }
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Backend table assembly.
// ---------------------------------------------------------------------------

template <typename Arch>
void AddSpanImpl(float* y, const float* x, size_t n) {
  Arch::Add(y, x, n);
}
template <typename Arch>
void SubSpanImpl(float* y, const float* x, size_t n) {
  Arch::Sub(y, x, n);
}
template <typename Arch>
void ScaleSpanImpl(float* y, float s, size_t n) {
  Arch::Scale(y, s, n);
}
template <typename Arch>
void AxpySpanImpl(float alpha, const float* x, float* y, size_t n) {
  Arch::Axpy(alpha, x, y, n);
}
template <typename Arch>
size_t MatchLenImpl(const uint8_t* a, const uint8_t* b, size_t max) {
  return Arch::MatchLen(a, b, max);
}
template <typename Arch>
void CopyMatchImpl(uint8_t* dst, size_t dist, size_t len) {
  Arch::CopyMatch(dst, dist, len);
}

template <typename Arch>
const Backend* MakeBackendTable(const char* name, const char* isa) {
  static const Backend table = {
      kBackendAbiVersion,
      name,
      isa,
      Arch::kWidth,
      &GemmNNImpl<Arch>,
      &GemmNTImpl<Arch>,
      &GemmTNImpl<Arch>,
      &QuantGemmNTImpl<Arch>,
      &Sparse24GemmNTImpl<Arch>,
      &TransposeImpl<Arch>,
      &AddSpanImpl<Arch>,
      &SubSpanImpl<Arch>,
      &ScaleSpanImpl<Arch>,
      &AxpySpanImpl<Arch>,
      &MatchLenImpl<Arch>,
      &CopyMatchImpl<Arch>,
  };
  return &table;
}

// Portable scalar inner loops — the exact pre-dispatch arithmetic. The scalar
// backend uses these wholesale; vector backends reuse the byte helpers they
// don't specialize.
struct ScalarOps {
  static constexpr int kWidth = 1;
  static constexpr size_t kQuantJr = 4;
  static constexpr size_t kSparseRows = 4;
  static constexpr size_t kSparseCols = 1;  // no gather: column path disabled

  static void NTMicro4(const float* arow0, const float* arow1,
                       const float* arow2, const float* arow3,
                       const float* panel, int k, float* out) {
    float acc[kMicroRows][kMicroCols] = {};
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      const float a0 = arow0[p];
      const float a1 = arow1[p];
      const float a2 = arow2[p];
      const float a3 = arow3[p];
      for (size_t jj = 0; jj < kMicroCols; ++jj) {
        const float bv = brow[jj];
        acc[0][jj] += a0 * bv;
        acc[1][jj] += a1 * bv;
        acc[2][jj] += a2 * bv;
        acc[3][jj] += a3 * bv;
      }
    }
    for (size_t t = 0; t < kMicroRows; ++t) {
      for (size_t jj = 0; jj < kMicroCols; ++jj) {
        out[t * kMicroCols + jj] = acc[t][jj];
      }
    }
  }

  static void NTMicro1(const float* arow, const float* panel, int k,
                       float* out) {
    float acc[kMicroCols] = {};
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      const float av = arow[p];
      for (size_t jj = 0; jj < kMicroCols; ++jj) {
        acc[jj] += av * brow[jj];
      }
    }
    for (size_t jj = 0; jj < kMicroCols; ++jj) {
      out[jj] = acc[jj];
    }
  }

  static void Axpy(float v, const float* x, float* y, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      y[i] += v * x[i];
    }
  }

  // Transposes a full 16-column stripe of B (rows ldb floats apart) into the
  // k-major micro panel: panel[p * kMicroCols + t] = b0[t * ldb + p]. Pure
  // data movement — no arithmetic, so packing can never affect bit-identity.
  static void PackStrip16(const float* b0, size_t ldb, int k, float* panel) {
    for (int p = 0; p < k; ++p) {
      float* dst = panel + static_cast<size_t>(p) * kMicroCols;
      for (size_t t = 0; t < kMicroCols; ++t) {
        dst[t] = b0[t * ldb + p];
      }
    }
  }

  static void Rank1x4(float v0, float v1, float v2, float v3, const float* b,
                      float* c0, float* c1, float* c2, float* c3, size_t n) {
    for (size_t j = 0; j < n; ++j) {
      const float bv = b[j];
      c0[j] += v0 * bv;
      c1[j] += v1 * bv;
      c2[j] += v2 * bv;
      c3[j] += v3 * bv;
    }
  }

  static void Add(float* y, const float* x, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      y[i] += x[i];
    }
  }
  static void Sub(float* y, const float* x, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      y[i] -= x[i];
    }
  }
  static void Scale(float* y, float s, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      y[i] *= s;
    }
  }

  // out[i] = (float)(codes[i] - zero) * scale — the exact ValueAt() affine.
  static void DequantAffine(const int* codes, size_t len, int zero, float scale,
                            float* out) {
    for (size_t i = 0; i < len; ++i) {
      out[i] = static_cast<float>(codes[i] - zero) * scale;
    }
  }

  // panel[c * kQuantJr + t] = rowbuf[t * stride + c]: the decode transpose
  // feeding QuantInner's interleaved loads. Pure data movement.
  static void InterleaveQuant(const float* rowbuf, size_t stride, size_t len,
                              float* panel) {
    for (size_t c = 0; c < len; ++c) {
      for (size_t t = 0; t < kQuantJr; ++t) {
        panel[c * kQuantJr + t] = rowbuf[t * stride + c];
      }
    }
  }

  static void QuantInner(const float* x, const float* panel, size_t len,
                         float* acc) {
    float a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
    const float* wp = panel;
    for (size_t c = 0; c < len; ++c, wp += kQuantJr) {
      const float xv = x[c];
      a0 += xv * wp[0];
      a1 += xv * wp[1];
      a2 += xv * wp[2];
      a3 += xv * wp[3];
    }
    acc[0] = a0;
    acc[1] = a1;
    acc[2] = a2;
    acc[3] = a3;
  }

  // Column-path inner loop: kSparseCols independent chains, one output column
  // per lane, reading colsT/valsT interleaved kSparseCols apart. Width 1 here —
  // defined so the driver instantiates, but the scalar backend never takes the
  // column path.
  static void SparseInnerT(const float* xrow, const int* colsT,
                           const float* valsT, size_t len, float* acc) {
    float a = acc[0];
    for (size_t s = 0; s < len; ++s) {
      a += xrow[colsT[s]] * valsT[s];
    }
    acc[0] = a;
  }

  static void SparseInner(const float* x0, size_t stride, const int* cols,
                          const float* vals, size_t len, float* acc) {
    const float* x1 = x0 + stride;
    const float* x2 = x1 + stride;
    const float* x3 = x2 + stride;
    float a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
    for (size_t kk = 0; kk < len; ++kk) {
      const int c = cols[kk];
      const float v = vals[kk];
      a0 += x0[c] * v;
      a1 += x1[c] * v;
      a2 += x2[c] * v;
      a3 += x3[c] * v;
    }
    acc[0] = a0;
    acc[1] = a1;
    acc[2] = a2;
    acc[3] = a3;
  }

  static size_t MatchLen(const uint8_t* a, const uint8_t* b, size_t max) {
    size_t len = 0;
    // 8-byte probes (portable loads via memcpy) with an exact byte answer.
    while (len + 8 <= max) {
      uint64_t wa, wb;
      std::memcpy(&wa, a + len, 8);
      std::memcpy(&wb, b + len, 8);
      const uint64_t diff = wa ^ wb;
      if (diff != 0) {
        return len + static_cast<size_t>(CtzByte(diff));
      }
      len += 8;
    }
    while (len < max && a[len] == b[len]) {
      ++len;
    }
    return len;
  }

  static void CopyMatch(uint8_t* dst, size_t dist, size_t len) {
    const uint8_t* src = dst - dist;
    if (dist >= 8) {
      // Chunked copy: every 8-byte read lands on bytes finalized before this
      // chunk (dist >= chunk width), so the result equals the byte loop.
      size_t i = 0;
      for (; i + 8 <= len; i += 8) {
        std::memcpy(dst + i, src + i, 8);
      }
      for (; i < len; ++i) {
        dst[i] = src[i];
      }
      return;
    }
    for (size_t i = 0; i < len; ++i) {
      dst[i] = src[i];  // may self-overlap: replicates the dist-period pattern
    }
  }

 private:
  // Index of the first differing byte in a little-endian xor word.
  static int CtzByte(uint64_t diff) {
    int byte = 0;
    while ((diff & 0xFFu) == 0) {
      diff >>= 8;
      ++byte;
    }
    return byte;
  }
};

}  // namespace
}  // namespace kernels
}  // namespace dz

#endif  // SRC_TENSOR_KERNELS_GENERIC_H_
