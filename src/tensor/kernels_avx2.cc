// AVX2 kernel backend. Compiled only on x86-64, with `-mavx2 -ffp-contract=off`
// (see src/tensor/CMakeLists.txt); entered only after a runtime
// __builtin_cpu_supports("avx2") probe, so no AVX instruction can fault on an
// older CPU.
//
// Bit-identity: every vector lane carries one independent output element's
// accumulator chain; k-terms are added one per iteration in ascending order,
// exactly like the scalar backend. No FMA intrinsics are used and contraction
// is disabled, so mul+add rounds twice, same as scalar.
#include "src/tensor/kernels_generic.h"

#if !defined(__AVX2__)
#error "kernels_avx2.cc must be compiled with -mavx2"
#endif

#include <immintrin.h>

namespace dz {
namespace kernels {
namespace {

struct Avx2Ops {
  static constexpr int kWidth = 8;
  static constexpr size_t kQuantJr = 8;
  static constexpr size_t kSparseRows = 8;
  static constexpr size_t kSparseCols = 8;

  // 4x16 NT micro-kernel: 8 ymm accumulators, one per (row, 8-col half); each
  // output column is a single lane accumulating a0[p]*b[p] in ascending p.
  static void NTMicro4(const float* arow0, const float* arow1,
                       const float* arow2, const float* arow3,
                       const float* panel, int k, float* out) {
    __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
    __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
    __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
    __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      __m256 av = _mm256_set1_ps(arow0[p]);
      acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av, b0));
      acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(arow1[p]);
      acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av, b0));
      acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(arow2[p]);
      acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(av, b0));
      acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(arow3[p]);
      acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(av, b0));
      acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(av, b1));
    }
    _mm256_storeu_ps(out + 0 * kMicroCols, acc00);
    _mm256_storeu_ps(out + 0 * kMicroCols + 8, acc01);
    _mm256_storeu_ps(out + 1 * kMicroCols, acc10);
    _mm256_storeu_ps(out + 1 * kMicroCols + 8, acc11);
    _mm256_storeu_ps(out + 2 * kMicroCols, acc20);
    _mm256_storeu_ps(out + 2 * kMicroCols + 8, acc21);
    _mm256_storeu_ps(out + 3 * kMicroCols, acc30);
    _mm256_storeu_ps(out + 3 * kMicroCols + 8, acc31);
  }

  static void NTMicro1(const float* arow, const float* panel, int k,
                       float* out) {
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
      const __m256 av = _mm256_set1_ps(arow[p]);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
    }
    _mm256_storeu_ps(out, acc0);
    _mm256_storeu_ps(out + 8, acc1);
  }

  static void Axpy(float v, const float* x, float* y, size_t n) {
    const __m256 vv = _mm256_set1_ps(v);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 yv = _mm256_loadu_ps(y + i);
      _mm256_storeu_ps(
          y + i, _mm256_add_ps(yv, _mm256_mul_ps(vv, _mm256_loadu_ps(x + i))));
    }
    for (; i < n; ++i) {
      y[i] += v * x[i];
    }
  }

  // Classic in-register 8x8 transpose (unpack -> shuffle -> permute2f128).
  static void Transpose8x8(__m256& r0, __m256& r1, __m256& r2, __m256& r3,
                           __m256& r4, __m256& r5, __m256& r6, __m256& r7) {
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r0 = _mm256_permute2f128_ps(s0, s4, 0x20);
    r1 = _mm256_permute2f128_ps(s1, s5, 0x20);
    r2 = _mm256_permute2f128_ps(s2, s6, 0x20);
    r3 = _mm256_permute2f128_ps(s3, s7, 0x20);
    r4 = _mm256_permute2f128_ps(s0, s4, 0x31);
    r5 = _mm256_permute2f128_ps(s1, s5, 0x31);
    r6 = _mm256_permute2f128_ps(s2, s6, 0x31);
    r7 = _mm256_permute2f128_ps(s3, s7, 0x31);
  }

  // Full-stripe transpose pack as four 8x8 in-register transposes per 8 k
  // columns. Pure data movement (kernel_parity_test would catch any lane
  // landing in the wrong panel slot bit-for-bit). At small m the pack is the
  // dominant cost of GemmNT, so this is load-bearing for the m=4 bench rows.
  static void PackStrip16(const float* b0, size_t ldb, int k, float* panel) {
    const int k8 = k & ~7;
    for (int p = 0; p < k8; p += 8) {
      for (int rb = 0; rb < static_cast<int>(kMicroCols); rb += 8) {
        const float* src = b0 + static_cast<size_t>(rb) * ldb + p;
        __m256 r0 = _mm256_loadu_ps(src);
        __m256 r1 = _mm256_loadu_ps(src + ldb);
        __m256 r2 = _mm256_loadu_ps(src + 2 * ldb);
        __m256 r3 = _mm256_loadu_ps(src + 3 * ldb);
        __m256 r4 = _mm256_loadu_ps(src + 4 * ldb);
        __m256 r5 = _mm256_loadu_ps(src + 5 * ldb);
        __m256 r6 = _mm256_loadu_ps(src + 6 * ldb);
        __m256 r7 = _mm256_loadu_ps(src + 7 * ldb);
        Transpose8x8(r0, r1, r2, r3, r4, r5, r6, r7);
        float* dst = panel + static_cast<size_t>(p) * kMicroCols + rb;
        _mm256_storeu_ps(dst + 0 * kMicroCols, r0);
        _mm256_storeu_ps(dst + 1 * kMicroCols, r1);
        _mm256_storeu_ps(dst + 2 * kMicroCols, r2);
        _mm256_storeu_ps(dst + 3 * kMicroCols, r3);
        _mm256_storeu_ps(dst + 4 * kMicroCols, r4);
        _mm256_storeu_ps(dst + 5 * kMicroCols, r5);
        _mm256_storeu_ps(dst + 6 * kMicroCols, r6);
        _mm256_storeu_ps(dst + 7 * kMicroCols, r7);
      }
    }
    for (int p = k8; p < k; ++p) {
      float* dst = panel + static_cast<size_t>(p) * kMicroCols;
      for (size_t t = 0; t < kMicroCols; ++t) {
        dst[t] = b0[t * ldb + p];
      }
    }
  }

  static void Rank1x4(float v0, float v1, float v2, float v3, const float* b,
                      float* c0, float* c1, float* c2, float* c3, size_t n) {
    const __m256 w0 = _mm256_set1_ps(v0);
    const __m256 w1 = _mm256_set1_ps(v1);
    const __m256 w2 = _mm256_set1_ps(v2);
    const __m256 w3 = _mm256_set1_ps(v3);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 bv = _mm256_loadu_ps(b + j);
      _mm256_storeu_ps(c0 + j, _mm256_add_ps(_mm256_loadu_ps(c0 + j),
                                             _mm256_mul_ps(w0, bv)));
      _mm256_storeu_ps(c1 + j, _mm256_add_ps(_mm256_loadu_ps(c1 + j),
                                             _mm256_mul_ps(w1, bv)));
      _mm256_storeu_ps(c2 + j, _mm256_add_ps(_mm256_loadu_ps(c2 + j),
                                             _mm256_mul_ps(w2, bv)));
      _mm256_storeu_ps(c3 + j, _mm256_add_ps(_mm256_loadu_ps(c3 + j),
                                             _mm256_mul_ps(w3, bv)));
    }
    for (; j < n; ++j) {
      const float bv = b[j];
      c0[j] += v0 * bv;
      c1[j] += v1 * bv;
      c2[j] += v2 * bv;
      c3[j] += v3 * bv;
    }
  }

  static void Add(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(
          y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
    }
    for (; i < n; ++i) {
      y[i] += x[i];
    }
  }

  static void Sub(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(
          y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
    }
    for (; i < n; ++i) {
      y[i] -= x[i];
    }
  }

  static void Scale(float* y, float s, size_t n) {
    const __m256 sv = _mm256_set1_ps(s);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), sv));
    }
    for (; i < n; ++i) {
      y[i] *= s;
    }
  }

  // 8 weight-row chains (lanes) share each broadcast x[c]; panel rows are
  // contiguous 8-lane groups, so this is one load + one mul-add per c.
  // Vector affine decode: int subtract and int->float convert are exact, so
  // the one mul rounds identically to the scalar expression.
  static void DequantAffine(const int* codes, size_t len, int zero, float scale,
                            float* out) {
    const __m256i zv = _mm256_set1_epi32(zero);
    const __m256 sv = _mm256_set1_ps(scale);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + i));
      const __m256 f = _mm256_cvtepi32_ps(_mm256_sub_epi32(c, zv));
      _mm256_storeu_ps(out + i, _mm256_mul_ps(f, sv));
    }
    for (; i < len; ++i) {
      out[i] = static_cast<float>(codes[i] - zero) * scale;
    }
  }

  // Jr = 8 interleave as 8x8 in-register transposes; remainder scalar.
  static void InterleaveQuant(const float* rowbuf, size_t stride, size_t len,
                              float* panel) {
    const size_t len8 = len & ~size_t{7};
    for (size_t c = 0; c < len8; c += 8) {
      __m256 r0 = _mm256_loadu_ps(rowbuf + c);
      __m256 r1 = _mm256_loadu_ps(rowbuf + stride + c);
      __m256 r2 = _mm256_loadu_ps(rowbuf + 2 * stride + c);
      __m256 r3 = _mm256_loadu_ps(rowbuf + 3 * stride + c);
      __m256 r4 = _mm256_loadu_ps(rowbuf + 4 * stride + c);
      __m256 r5 = _mm256_loadu_ps(rowbuf + 5 * stride + c);
      __m256 r6 = _mm256_loadu_ps(rowbuf + 6 * stride + c);
      __m256 r7 = _mm256_loadu_ps(rowbuf + 7 * stride + c);
      Transpose8x8(r0, r1, r2, r3, r4, r5, r6, r7);
      float* dst = panel + c * kQuantJr;
      _mm256_storeu_ps(dst + 0 * kQuantJr, r0);
      _mm256_storeu_ps(dst + 1 * kQuantJr, r1);
      _mm256_storeu_ps(dst + 2 * kQuantJr, r2);
      _mm256_storeu_ps(dst + 3 * kQuantJr, r3);
      _mm256_storeu_ps(dst + 4 * kQuantJr, r4);
      _mm256_storeu_ps(dst + 5 * kQuantJr, r5);
      _mm256_storeu_ps(dst + 6 * kQuantJr, r6);
      _mm256_storeu_ps(dst + 7 * kQuantJr, r7);
    }
    for (size_t c = len8; c < len; ++c) {
      for (size_t t = 0; t < kQuantJr; ++t) {
        panel[c * kQuantJr + t] = rowbuf[t * stride + c];
      }
    }
  }

  static void QuantInner(const float* x, const float* panel, size_t len,
                         float* acc) {
    __m256 accv = _mm256_loadu_ps(acc);
    for (size_t c = 0; c < len; ++c) {
      const __m256 xv = _mm256_set1_ps(x[c]);
      accv = _mm256_add_ps(
          accv, _mm256_mul_ps(xv, _mm256_loadu_ps(panel + c * kQuantJr)));
    }
    _mm256_storeu_ps(acc, accv);
  }

  // 8 activation-row chains (lanes); per kept slot, gather the 8 rows' x
  // values at column cols[kk] and broadcast the dequantized weight.
  static void SparseInner(const float* x0, size_t stride, const int* cols,
                          const float* vals, size_t len, float* acc) {
    const __m256i roff =
        _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                           _mm256_set1_epi32(static_cast<int>(stride)));
    __m256 accv = _mm256_loadu_ps(acc);
    for (size_t kk = 0; kk < len; ++kk) {
      const __m256i idx = _mm256_add_epi32(roff, _mm256_set1_epi32(cols[kk]));
      const __m256 xv = _mm256_i32gather_ps(x0, idx, 4);
      accv = _mm256_add_ps(accv, _mm256_mul_ps(xv, _mm256_set1_ps(vals[kk])));
    }
    _mm256_storeu_ps(acc, accv);
  }

  // Column-path inner loop: 8 weight-row chains (lanes) over one activation
  // row; per kept slot, gather x at the 8 rows' column indices and multiply by
  // their interleaved dequantized values.
  static void SparseInnerT(const float* xrow, const int* colsT,
                           const float* valsT, size_t len, float* acc) {
    __m256 accv = _mm256_loadu_ps(acc);
    for (size_t s = 0; s < len; ++s) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(colsT + s * kSparseCols));
      const __m256 xv = _mm256_i32gather_ps(xrow, idx, 4);
      accv = _mm256_add_ps(
          accv, _mm256_mul_ps(xv, _mm256_loadu_ps(valsT + s * kSparseCols)));
    }
    _mm256_storeu_ps(acc, accv);
  }

  static size_t MatchLen(const uint8_t* a, const uint8_t* b, size_t max) {
    size_t i = 0;
    while (i + 32 <= max) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const uint32_t eq = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
      if (eq != 0xFFFFFFFFu) {
        return i + static_cast<size_t>(__builtin_ctz(~eq));
      }
      i += 32;
    }
    while (i < max && a[i] == b[i]) {
      ++i;
    }
    return i;
  }

  static void CopyMatch(uint8_t* dst, size_t dist, size_t len) {
    if (dist >= 32) {
      // Every 32-byte source chunk was finalized before this copy started.
      const uint8_t* src = dst - dist;
      size_t i = 0;
      for (; i + 32 <= len; i += 32) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
      }
      for (; i < len; ++i) {
        dst[i] = src[i];
      }
      return;
    }
    ScalarOps::CopyMatch(dst, dist, len);  // overlapped: byte-exact 8B/1B path
  }
};

}  // namespace

const Backend* GetAvx2Backend() {
  return MakeBackendTable<Avx2Ops>("avx2", "AVX2 (8-wide fp32)");
}

}  // namespace kernels
}  // namespace dz
