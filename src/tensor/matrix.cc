#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/tensor/half.h"
#include "src/util/thread_pool.h"

namespace dz {

Matrix Matrix::Random(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.at(i, i) = 1.0f;
  }
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const float* src = row(r);
    for (int c = 0; c < cols_; ++c) {
      t.data_[static_cast<size_t>(c) * rows_ + r] = src[c];
    }
  }
  return t;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  DZ_CHECK_EQ(rows_, other.rows_);
  DZ_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  DZ_CHECK_EQ(rows_, other.rows_);
  DZ_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Matrix& Matrix::ScaleInPlace(float s) {
  for (auto& v : data_) {
    v *= s;
  }
  return *this;
}

Matrix& Matrix::RoundToHalfInPlace() {
  for (auto& v : data_) {
    v = RoundToHalf(v);
  }
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (float v : data_) {
    m = std::max(m, std::abs(static_cast<double>(v)));
  }
  return m;
}

double Matrix::MeanAbs() const {
  if (data_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (float v : data_) {
    sum += std::abs(static_cast<double>(v));
  }
  return sum / static_cast<double>(data_.size());
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

namespace {

// Parallelizes over output rows when the problem is big enough to amortize it.
void ForRows(int m, const std::function<void(size_t, size_t)>& body, size_t flops) {
  constexpr size_t kParallelFlopThreshold = 1u << 22;
  if (flops >= kParallelFlopThreshold) {
    ThreadPool::Global().ParallelFor(static_cast<size_t>(m), body);
  } else {
    body(0, static_cast<size_t>(m));
  }
}

}  // namespace

Matrix Matmul(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  Matrix c(m, n);
  ForRows(
      m,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const float* arow = a.row(static_cast<int>(i));
          float* crow = c.row(static_cast<int>(i));
          for (int p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b.row(p);
            for (int j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      },
      static_cast<size_t>(m) * k * n);
  return c;
}

Matrix MatmulNT(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  Matrix c(m, n);
  ForRows(
      m,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const float* arow = a.row(static_cast<int>(i));
          float* crow = c.row(static_cast<int>(i));
          for (int j = 0; j < n; ++j) {
            const float* brow = b.row(j);
            float acc = 0.0f;
            for (int p = 0; p < k; ++p) {
              acc += arow[p] * brow[p];
            }
            crow[j] = acc;
          }
        }
      },
      static_cast<size_t>(m) * k * n);
  return c;
}

Matrix MatmulTN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  Matrix c(m, n);
  // Accumulate rank-1 updates row-by-row of the shared k dimension; serial in k,
  // parallel over output rows would race, so parallelize over m via transpose trick.
  ForRows(
      m,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          float* crow = c.row(static_cast<int>(i));
          for (int p = 0; p < k; ++p) {
            const float av = a.at(p, static_cast<int>(i));
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b.row(p);
            for (int j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      },
      static_cast<size_t>(m) * k * n);
  return c;
}

void Axpy(float alpha, const Matrix& x, Matrix& y) {
  DZ_CHECK_EQ(x.rows(), y.rows());
  DZ_CHECK_EQ(x.cols(), y.cols());
  for (size_t i = 0; i < x.data().size(); ++i) {
    y.data()[i] += alpha * x.data()[i];
  }
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

double RelativeError(const Matrix& a, const Matrix& b) {
  const double denom = std::max(b.FrobeniusNorm(), 1e-12);
  return Sub(a, b).FrobeniusNorm() / denom;
}

}  // namespace dz
