#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/tensor/half.h"
#include "src/tensor/kernels.h"

namespace dz {

Matrix Matrix::Random(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) {
    m.at(i, i) = 1.0f;
  }
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::Transposed() const { return kernels::Transpose(*this); }

Matrix& Matrix::AddInPlace(const Matrix& other) {
  DZ_CHECK_EQ(rows_, other.rows_);
  DZ_CHECK_EQ(cols_, other.cols_);
  kernels::AddSpan(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  DZ_CHECK_EQ(rows_, other.rows_);
  DZ_CHECK_EQ(cols_, other.cols_);
  kernels::SubSpan(data_.data(), other.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::ScaleInPlace(float s) {
  kernels::ScaleSpan(data_.data(), s, data_.size());
  return *this;
}

Matrix& Matrix::RoundToHalfInPlace() {
  for (auto& v : data_) {
    v = RoundToHalf(v);
  }
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (float v : data_) {
    m = std::max(m, std::abs(static_cast<double>(v)));
  }
  return m;
}

double Matrix::MeanAbs() const {
  if (data_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (float v : data_) {
    sum += std::abs(static_cast<double>(v));
  }
  return sum / static_cast<double>(data_.size());
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

Matrix Matmul(const Matrix& a, const Matrix& b) { return kernels::GemmNN(a, b); }

Matrix MatmulNT(const Matrix& a, const Matrix& b) { return kernels::GemmNT(a, b); }

Matrix MatmulTN(const Matrix& a, const Matrix& b) { return kernels::GemmTN(a, b); }

void Axpy(float alpha, const Matrix& x, Matrix& y) {
  DZ_CHECK_EQ(x.rows(), y.rows());
  DZ_CHECK_EQ(x.cols(), y.cols());
  kernels::AxpySpan(alpha, x.data().data(), y.data().data(), x.data().size());
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

double RelativeError(const Matrix& a, const Matrix& b) {
  const double denom = std::max(b.FrobeniusNorm(), 1e-12);
  return Sub(a, b).FrobeniusNorm() / denom;
}

}  // namespace dz
