#include "src/tensor/sparse24.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/kernels.h"
#include "src/tensor/packed_quant.h"

namespace dz {

bool Is24Sparse(const Matrix& w) {
  if (w.cols() % 4 != 0) {
    return false;
  }
  for (int r = 0; r < w.rows(); ++r) {
    const float* row = w.row(r);
    for (int g = 0; g < w.cols() / 4; ++g) {
      int nonzero = 0;
      for (int i = 0; i < 4; ++i) {
        if (row[g * 4 + i] != 0.0f) {
          ++nonzero;
        }
      }
      if (nonzero > 2) {
        return false;
      }
    }
  }
  return true;
}

Matrix MagnitudePrune24(const Matrix& w) {
  DZ_CHECK_EQ(w.cols() % 4, 0);
  Matrix out = w;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (int g = 0; g < out.cols() / 4; ++g) {
      float* grp = row + g * 4;
      // Find the two smallest |v| and zero them.
      int order[4] = {0, 1, 2, 3};
      std::sort(order, order + 4,
                [&](int a, int b) { return std::abs(grp[a]) < std::abs(grp[b]); });
      grp[order[0]] = 0.0f;
      grp[order[1]] = 0.0f;
    }
  }
  return out;
}

Sparse24Matrix Sparse24Matrix::Pack(const Matrix& w, int bits, int group_size) {
  DZ_CHECK(Is24Sparse(w));
  DZ_CHECK(bits == 2 || bits == 4 || bits == 8);
  DZ_CHECK_GT(group_size, 0);

  Sparse24Matrix out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.bits_ = bits;
  out.kept_per_row_ = w.cols() / 2;
  out.group_size_ = std::min(group_size, std::max(out.kept_per_row_, 1));
  out.groups_per_row_ = (out.kept_per_row_ + out.group_size_ - 1) / out.group_size_;
  out.codes_per_word_ = 32 / bits;
  out.words_per_row_ = (out.kept_per_row_ + out.codes_per_word_ - 1) / out.codes_per_word_;
  out.packed_.assign(static_cast<size_t>(out.rows_) * out.words_per_row_, 0u);
  const int index_words_per_row = (out.kept_per_row_ + 15) / 16;  // 2 bits each
  out.indices_.assign(static_cast<size_t>(out.rows_) * index_words_per_row, 0u);
  out.scales_.assign(static_cast<size_t>(out.rows_) * out.groups_per_row_, 1.0f);
  out.zeros_.assign(static_cast<size_t>(out.rows_) * out.groups_per_row_, 0);

  std::vector<float> kept(static_cast<size_t>(out.kept_per_row_));
  std::vector<int> pos(static_cast<size_t>(out.kept_per_row_));

  for (int r = 0; r < out.rows_; ++r) {
    const float* row = w.row(r);
    // Gather exactly 2 kept slots per group of 4 (pad with zeros at explicit positions
    // when a group has fewer than 2 non-zeros — hardware does the same).
    int k = 0;
    for (int g = 0; g < out.cols_ / 4; ++g) {
      int taken = 0;
      for (int i = 0; i < 4 && taken < 2; ++i) {
        const float v = row[g * 4 + i];
        if (v != 0.0f) {
          kept[static_cast<size_t>(k)] = v;
          pos[static_cast<size_t>(k)] = i;
          ++k;
          ++taken;
        }
      }
      // Pad remaining kept slots with zero values at unused positions.
      for (int i = 0; taken < 2; ++i) {
        DZ_CHECK_LT(i, 4);
        bool used = false;
        for (int kk = k - taken; kk < k; ++kk) {
          if (pos[static_cast<size_t>(kk)] == i) {
            used = true;
          }
        }
        if (!used) {
          kept[static_cast<size_t>(k)] = 0.0f;
          pos[static_cast<size_t>(k)] = i;
          ++k;
          ++taken;
        }
      }
    }
    DZ_CHECK_EQ(k, out.kept_per_row_);

    // Quantize kept values per group and pack.
    for (int g = 0; g < out.groups_per_row_; ++g) {
      const int k0 = g * out.group_size_;
      const int k1 = std::min(out.kept_per_row_, k0 + out.group_size_);
      float lo = kept[static_cast<size_t>(k0)];
      float hi = lo;
      for (int kk = k0; kk < k1; ++kk) {
        lo = std::min(lo, kept[static_cast<size_t>(kk)]);
        hi = std::max(hi, kept[static_cast<size_t>(kk)]);
      }
      const QuantParams p = ComputeQuantParams(lo, hi, bits);
      const size_t gi = static_cast<size_t>(r) * out.groups_per_row_ + g;
      out.scales_[gi] = p.scale;
      out.zeros_[gi] = static_cast<uint8_t>(p.zero);
      for (int kk = k0; kk < k1; ++kk) {
        const int q = std::clamp(
            static_cast<int>(std::lround(kept[static_cast<size_t>(kk)] / p.scale)) + p.zero,
            0, p.qmax);
        const size_t word =
            static_cast<size_t>(r) * out.words_per_row_ + kk / out.codes_per_word_;
        const int shift = (kk % out.codes_per_word_) * bits;
        out.packed_[word] |= static_cast<uint32_t>(q) << shift;
      }
    }
    // Pack 2-bit indices.
    for (int kk = 0; kk < out.kept_per_row_; ++kk) {
      const size_t word = static_cast<size_t>(r) * index_words_per_row + kk / 16;
      const int shift = (kk % 16) * 2;
      out.indices_[word] |= static_cast<uint32_t>(pos[static_cast<size_t>(kk)]) << shift;
    }
  }
  return out;
}

float Sparse24Matrix::KeptValueAt(int r, int k) const {
  const size_t word = static_cast<size_t>(r) * words_per_row_ + k / codes_per_word_;
  const int shift = (k % codes_per_word_) * bits_;
  const uint32_t mask = (1u << bits_) - 1u;
  const int q = static_cast<int>((packed_[word] >> shift) & mask);
  const size_t gi = static_cast<size_t>(r) * groups_per_row_ + k / group_size_;
  return static_cast<float>(q - static_cast<int>(zeros_[gi])) * scales_[gi];
}

Matrix Sparse24Matrix::Dequantize() const {
  Matrix out(rows_, cols_);
  const int index_words_per_row = (kept_per_row_ + 15) / 16;
  for (int r = 0; r < rows_; ++r) {
    float* dst = out.row(r);
    for (int k = 0; k < kept_per_row_; ++k) {
      const size_t word = static_cast<size_t>(r) * index_words_per_row + k / 16;
      const int shift = (k % 16) * 2;
      const int in_group = static_cast<int>((indices_[word] >> shift) & 0x3u);
      const int group = k / 2;
      dst[group * 4 + in_group] = KeptValueAt(r, k);
    }
  }
  return out;
}

Matrix Sparse24Matrix::MatmulNT(const Matrix& x) const {
  return kernels::Sparse24GemmNT(x, *this);
}

Sparse24Matrix Sparse24Matrix::FromStorage(int rows, int cols, int bits, int group_size,
                                           std::vector<uint32_t> packed,
                                           std::vector<uint32_t> indices,
                                           std::vector<float> scales,
                                           std::vector<uint8_t> zeros) {
  DZ_CHECK_GT(rows, 0);
  DZ_CHECK_EQ(cols % 4, 0);
  DZ_CHECK(bits == 2 || bits == 4 || bits == 8);
  Sparse24Matrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.bits_ = bits;
  out.kept_per_row_ = cols / 2;
  out.group_size_ = std::min(group_size, std::max(out.kept_per_row_, 1));
  out.groups_per_row_ = (out.kept_per_row_ + out.group_size_ - 1) / out.group_size_;
  out.codes_per_word_ = 32 / bits;
  out.words_per_row_ = (out.kept_per_row_ + out.codes_per_word_ - 1) / out.codes_per_word_;
  DZ_CHECK_EQ(packed.size(), static_cast<size_t>(rows) * out.words_per_row_);
  DZ_CHECK_EQ(indices.size(), static_cast<size_t>(rows) * ((out.kept_per_row_ + 15) / 16));
  DZ_CHECK_EQ(scales.size(), static_cast<size_t>(rows) * out.groups_per_row_);
  DZ_CHECK_EQ(zeros.size(), scales.size());
  out.packed_ = std::move(packed);
  out.indices_ = std::move(indices);
  out.scales_ = std::move(scales);
  out.zeros_ = std::move(zeros);
  return out;
}

size_t Sparse24Matrix::ByteSize() const {
  const size_t packed_bytes = packed_.size() * sizeof(uint32_t);
  const size_t index_bytes = indices_.size() * sizeof(uint32_t);
  const size_t scale_bytes = scales_.size() * 2;  // fp16
  const size_t zero_bytes = zeros_.size();
  return packed_bytes + index_bytes + scale_bytes + zero_bytes;
}

}  // namespace dz
