// 2:4 structured-sparse + quantized matrix — the ΔCompress storage format
// (paper Fig. 5, steps 2+3).
//
// In every group of 4 contiguous columns at most 2 values are non-zero. Storage keeps
// exactly 2 quantized codes per group plus their 2-bit in-group positions, matching
// NVIDIA sparse-tensor-core metadata layout: for an R×C matrix the footprint is
//   R * C/2 * bits        (packed codes)
// + R * C/2 * 2 bits      (indices)
// + per-group quant params.
//
// Construction takes an already 2:4-pruned dense matrix (the mask search lives in
// src/compress — magnitude- or Hessian-aware); this class is the packing/layout layer.
#ifndef SRC_TENSOR_SPARSE24_H_
#define SRC_TENSOR_SPARSE24_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace dz {

// Returns true iff every aligned group of 4 columns has at most 2 non-zeros.
bool Is24Sparse(const Matrix& w);

// Zeroes the 2 smallest-magnitude entries in every group of 4 (baseline mask search).
Matrix MagnitudePrune24(const Matrix& w);

class Sparse24Matrix {
 public:
  Sparse24Matrix() = default;

  // Packs a 2:4-sparse matrix, quantizing kept values to `bits` with per-row groups of
  // `group_size` *kept* values. Requires Is24Sparse(w) and cols % 4 == 0.
  static Sparse24Matrix Pack(const Matrix& w, int bits, int group_size);

  Matrix Dequantize() const;

  // Y = X * W'^T with on-the-fly dequantization, touching only stored non-zeros
  // (software analogue of a sparse-tensor-core kernel).
  Matrix MatmulNT(const Matrix& x) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int bits() const { return bits_; }
  int group_size() const { return group_size_; }
  bool empty() const { return rows_ == 0; }

  size_t ByteSize() const;

  // Fraction of stored slots (0.5 for 2:4).
  double density() const { return 0.5; }

  // Raw storage accessors (serialization).
  const std::vector<uint32_t>& packed_values() const { return packed_; }
  const std::vector<uint32_t>& packed_indices() const { return indices_; }
  const std::vector<float>& scales() const { return scales_; }
  const std::vector<uint8_t>& zeros() const { return zeros_; }

  // Rebuilds a matrix from raw storage (deserialization). Sizes must be consistent
  // with the dimensions; check-fails otherwise.
  static Sparse24Matrix FromStorage(int rows, int cols, int bits, int group_size,
                                    std::vector<uint32_t> packed,
                                    std::vector<uint32_t> indices,
                                    std::vector<float> scales,
                                    std::vector<uint8_t> zeros);

 private:
  float KeptValueAt(int r, int k) const;  // k-th kept value in row r

  int rows_ = 0;
  int cols_ = 0;
  int bits_ = 0;
  int group_size_ = 0;      // group of *kept* values sharing quant params
  int kept_per_row_ = 0;    // cols_ / 2
  int groups_per_row_ = 0;
  int codes_per_word_ = 0;
  int words_per_row_ = 0;
  std::vector<uint32_t> packed_;    // quantized kept values
  std::vector<uint32_t> indices_;   // 2-bit positions, 16 per word
  std::vector<float> scales_;
  std::vector<uint8_t> zeros_;
};

}  // namespace dz

#endif  // SRC_TENSOR_SPARSE24_H_
