// Backend registry + runtime selection (see backend.h for the contract).
//
// Which Get*Backend() factories exist is decided at configure time: CMake
// defines DZ_KERNELS_HAVE_AVX2/AVX512/NEON only when the toolchain can build
// the matching TU for the target architecture. Whether a compiled backend is
// *entered* is decided here at runtime via CPU probes, so a binary carrying
// AVX-512 code still runs (on the next-widest backend) on a CPU without it.
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/tensor/backend.h"
#include "src/util/check.h"

namespace dz {
namespace kernels {

// Per-ISA factories, each defined in its own translation unit.
const Backend* GetScalarBackend();
#if defined(DZ_KERNELS_HAVE_AVX2)
const Backend* GetAvx2Backend();
#endif
#if defined(DZ_KERNELS_HAVE_AVX512)
const Backend* GetAvx512Backend();
#endif
#if defined(DZ_KERNELS_HAVE_NEON)
const Backend* GetNeonBackend();
#endif

namespace {

#if defined(DZ_KERNELS_HAVE_AVX2) || defined(DZ_KERNELS_HAVE_AVX512)
bool CpuSupports(const char* feature) {
  __builtin_cpu_init();
  if (__builtin_strcmp(feature, "avx2") == 0) {
    return __builtin_cpu_supports("avx2");
  }
  return __builtin_cpu_supports("avx512f");
}
#endif

struct Entry {
  const char* name;
  const Backend* (*get)();
  bool supported;  // probed once at first touch; CPU features don't change
};

const std::vector<Entry>& Registry() {
  // Probe order: widest first, scalar always last (and always supported).
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> e;
#if defined(DZ_KERNELS_HAVE_AVX512)
    e.push_back({"avx512", &GetAvx512Backend, CpuSupports("avx512f")});
#endif
#if defined(DZ_KERNELS_HAVE_AVX2)
    e.push_back({"avx2", &GetAvx2Backend, CpuSupports("avx2")});
#endif
#if defined(DZ_KERNELS_HAVE_NEON)
    // NEON is architecturally baseline on aarch64; the TU is only compiled
    // when the target has it, so no runtime probe is needed.
    e.push_back({"neon", &GetNeonBackend, true});
#endif
    e.push_back({"scalar", &GetScalarBackend, true});
    return e;
  }();
  return entries;
}

const Backend* Materialize(const Entry& entry) {
  const Backend* b = entry.get();
  DZ_CHECK(b != nullptr);
  DZ_CHECK_EQ(b->abi_version, kBackendAbiVersion);
  return b;
}

// Runs the DZ_ISA / probe selection. Warns (once) on stderr when DZ_ISA names
// a backend that is not compiled in or not supported by this CPU.
const Backend* ProbeSelect() {
  std::vector<BackendChoice> choices;
  choices.reserve(Registry().size());
  for (const Entry& e : Registry()) {
    choices.push_back({e.name, e.supported});
  }
  const char* env = std::getenv("DZ_ISA");
  const std::string chosen = SelectBackendName(choices, env);
  if (env != nullptr && *env != '\0' && chosen != env) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "dz: DZ_ISA=%s is not compiled in or not supported by this "
                   "CPU; falling back to '%s'\n",
                   env, chosen.c_str());
    }
  }
  for (const Entry& e : Registry()) {
    if (chosen == e.name) {
      return Materialize(e);
    }
  }
  DZ_CHECK(false);  // SelectBackendName only returns names from the list
  return nullptr;
}

std::atomic<const Backend*> g_active{nullptr};

}  // namespace

std::string SelectBackendName(const std::vector<BackendChoice>& compiled,
                              const char* env_override) {
  if (env_override != nullptr && *env_override != '\0') {
    for (const BackendChoice& c : compiled) {
      if (c.supported && c.name == env_override) {
        return c.name;
      }
    }
  }
  for (const BackendChoice& c : compiled) {
    if (c.supported) {
      return c.name;
    }
  }
  return "scalar";  // unreachable with a well-formed list; safe default
}

const Backend& ActiveBackend() {
  const Backend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    const Backend* fresh = ProbeSelect();
    const Backend* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel)) {
      fresh = expected;  // another thread won the race; both are valid
    }
    b = fresh;
  }
  return *b;
}

bool ForceBackend(const std::string& name) {
  for (const Entry& e : Registry()) {
    if (name == e.name && e.supported) {
      g_active.store(Materialize(e), std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ResetBackend() {
  g_active.store(ProbeSelect(), std::memory_order_release);
}

std::vector<std::string> CompiledBackends() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const Entry& e : Registry()) {
    names.emplace_back(e.name);
  }
  return names;
}

bool BackendSupported(const std::string& name) {
  for (const Entry& e : Registry()) {
    if (name == e.name) {
      return e.supported;
    }
  }
  return false;
}

}  // namespace kernels
}  // namespace dz
