// Naive reference kernels. The blocked/vectorized implementations moved to
// per-ISA translation units (kernels_scalar/avx2/avx512/neon.cc, all built
// from kernels_generic.h) behind the runtime dispatcher in
// kernels_dispatch.cc; the public free functions in kernels.h are inline
// forwarders through kernels::ActiveBackend().
//
// What remains here is kernels::ref — the exact pre-kernel-layer loops, kept
// serial and scalar forever. They are the ground truth for the bit-identity
// contract: every backend must match them byte-for-byte
// (tests/tensor/kernel_parity_test.cc).
#include "src/tensor/kernels.h"

#include <vector>

namespace dz {
namespace kernels {
namespace ref {

Matrix GemmNN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix GemmNT(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      crow[j] = acc;
    }
  }
  return c;
}

Matrix GemmTN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = a.at(p, i);
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const int m = x.rows();
  const int cols = w.cols();
  Matrix y(m, w.rows());
  std::vector<float> wrow(static_cast<size_t>(cols));
  for (int j = 0; j < w.rows(); ++j) {
    for (int c = 0; c < cols; ++c) {
      wrow[static_cast<size_t>(c)] = w.ValueAt(j, c);
    }
    for (int i = 0; i < m; ++i) {
      const float* xrow = x.row(i);
      float acc = 0.0f;
      for (int c = 0; c < cols; ++c) {
        acc += xrow[c] * wrow[static_cast<size_t>(c)];
      }
      y.at(i, j) = acc;
    }
  }
  return y;
}

Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const int m = x.rows();
  const int kept = w.cols() / 2;
  Matrix y(m, w.rows());
  if (m == 0 || w.rows() == 0 || kept == 0) {
    return y;
  }
  const int index_words_per_row = (kept + 15) / 16;
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const int words_per_row = (kept + codes_per_word - 1) / codes_per_word;
  const size_t group_size = static_cast<size_t>(w.group_size());
  const size_t groups_per_row =
      (static_cast<size_t>(kept) + group_size - 1) / group_size;
  std::vector<int> col_of(static_cast<size_t>(kept));
  std::vector<float> val_of(static_cast<size_t>(kept));
  for (int j = 0; j < w.rows(); ++j) {
    for (int k = 0; k < kept; ++k) {
      const size_t word = static_cast<size_t>(j) * index_words_per_row + k / 16;
      const int shift = (k % 16) * 2;
      const int in_group = static_cast<int>((w.packed_indices()[word] >> shift) & 0x3u);
      col_of[static_cast<size_t>(k)] = (k / 2) * 4 + in_group;
      const size_t vword = static_cast<size_t>(j) * words_per_row + k / codes_per_word;
      const int q = static_cast<int>(
          (w.packed_values()[vword] >> ((k % codes_per_word) * bits)) & mask);
      const size_t gi =
          static_cast<size_t>(j) * groups_per_row + static_cast<size_t>(k) / group_size;
      val_of[static_cast<size_t>(k)] =
          static_cast<float>(q - static_cast<int>(w.zeros()[gi])) * w.scales()[gi];
    }
    for (int i = 0; i < m; ++i) {
      const float* xrow = x.row(i);
      float acc = 0.0f;
      for (int k = 0; k < kept; ++k) {
        acc += xrow[col_of[static_cast<size_t>(k)]] * val_of[static_cast<size_t>(k)];
      }
      y.at(i, j) = acc;
    }
  }
  return y;
}

Matrix Transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    const float* src = m.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      t.data()[static_cast<size_t>(c) * m.rows() + r] = src[c];
    }
  }
  return t;
}

}  // namespace ref
}  // namespace kernels
}  // namespace dz
