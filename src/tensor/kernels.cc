#include "src/tensor/kernels.h"

#include <algorithm>
#include <vector>

#include "src/util/thread_pool.h"

namespace dz {
namespace kernels {

namespace {

// Problems below this many flops run serially: task overhead would dominate.
// (Same threshold the pre-kernel-layer ForRows helper used.)
constexpr size_t kParallelFlopThreshold = 1u << 22;

// Per-task flop target for the 2D tile grain; ParallelFor2D coarsens further
// if the grid still has more tiles than the pool can usefully chew.
constexpr size_t kTaskFlopTarget = 1u << 21;

// Micro-kernel register blocking: MR output rows x NR output columns. 4x16
// measured ~5x faster than 4x8 with GCC's SLP vectorizer on SSE2 (the wider
// strip gives the scheduler four full-width independent chains per row).
constexpr size_t kMicroRows = 4;
constexpr size_t kMicroCols = 16;

size_t GrainCols(size_t grain_rows, size_t k) {
  const size_t denom = std::max<size_t>(2 * k * grain_rows, 1);
  return std::max<size_t>(kMicroCols * 8, kTaskFlopTarget / denom);
}

// ---------------------------------------------------------------------------
// NT form: C = A * B^T, per-element reduction over p ascending, no zero-skip
// (the naive kernel never skipped here).
// ---------------------------------------------------------------------------

// Pointer variant for short i-ranges where panel packing would not amortize:
// NR independent accumulator chains, one per output column.
void GemmNTPointerStrip(const Matrix& a, const Matrix& b, Matrix& c, size_t i,
                        size_t j0, size_t j1) {
  const int k = a.cols();
  const float* arow = a.row(static_cast<int>(i));
  float* crow = c.row(static_cast<int>(i));
  size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    const float* b0 = b.row(static_cast<int>(j));
    const float* b1 = b.row(static_cast<int>(j + 1));
    const float* b2 = b.row(static_cast<int>(j + 2));
    const float* b3 = b.row(static_cast<int>(j + 3));
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      acc0 += av * b0[p];
      acc1 += av * b1[p];
      acc2 += av * b2[p];
      acc3 += av * b3[p];
    }
    crow[j] = acc0;
    crow[j + 1] = acc1;
    crow[j + 2] = acc2;
    crow[j + 3] = acc3;
  }
  for (; j < j1; ++j) {
    const float* brow = b.row(static_cast<int>(j));
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc += arow[p] * brow[p];
    }
    crow[j] = acc;
  }
}

// Packed-panel micro-kernel: `panel` holds an NR-wide strip of B transposed to
// [k][NR] so the NR accumulator lanes read contiguous memory (SIMD across
// lanes; each lane keeps its own ascending-p chain).
void GemmNTMicro(const float* arow0, const float* arow1, const float* arow2,
                 const float* arow3, const float* panel, int k, float* out) {
  float acc[kMicroRows][kMicroCols] = {};
  for (int p = 0; p < k; ++p) {
    const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
    const float a0 = arow0[p];
    const float a1 = arow1[p];
    const float a2 = arow2[p];
    const float a3 = arow3[p];
    for (size_t jj = 0; jj < kMicroCols; ++jj) {
      const float bv = brow[jj];
      acc[0][jj] += a0 * bv;
      acc[1][jj] += a1 * bv;
      acc[2][jj] += a2 * bv;
      acc[3][jj] += a3 * bv;
    }
  }
  for (size_t t = 0; t < kMicroRows; ++t) {
    for (size_t jj = 0; jj < kMicroCols; ++jj) {
      out[t * kMicroCols + jj] = acc[t][jj];
    }
  }
}

void GemmNTMicro1(const float* arow, const float* panel, int k, float* out) {
  float acc[kMicroCols] = {};
  for (int p = 0; p < k; ++p) {
    const float* brow = panel + static_cast<size_t>(p) * kMicroCols;
    const float av = arow[p];
    for (size_t jj = 0; jj < kMicroCols; ++jj) {
      acc[jj] += av * brow[jj];
    }
  }
  for (size_t jj = 0; jj < kMicroCols; ++jj) {
    out[jj] = acc[jj];
  }
}

void GemmNTTile(const Matrix& a, const Matrix& b, Matrix& c, size_t i0, size_t i1,
                size_t j0, size_t j1) {
  const int k = a.cols();
  if (i1 - i0 < kMicroRows) {
    // Too few rows to amortize panel packing; multi-accumulator pointer strips.
    for (size_t i = i0; i < i1; ++i) {
      GemmNTPointerStrip(a, b, c, i, j0, j1);
    }
    return;
  }
  std::vector<float> panel(static_cast<size_t>(k) * kMicroCols);
  float out[kMicroRows * kMicroCols];
  const float* brows[kMicroCols];
  for (size_t jb = j0; jb < j1; jb += kMicroCols) {
    const size_t width = std::min(kMicroCols, j1 - jb);
    for (size_t t = 0; t < kMicroCols; ++t) {
      brows[t] = b.row(static_cast<int>(jb + (t < width ? t : 0)));
    }
    // Pack the strip B[jb..jb+width) transposed; pad dead lanes with zeros.
    for (int p = 0; p < k; ++p) {
      float* dst = panel.data() + static_cast<size_t>(p) * kMicroCols;
      for (size_t t = 0; t < kMicroCols; ++t) {
        dst[t] = t < width ? brows[t][p] : 0.0f;
      }
    }
    size_t i = i0;
    for (; i + kMicroRows <= i1; i += kMicroRows) {
      GemmNTMicro(a.row(static_cast<int>(i)), a.row(static_cast<int>(i + 1)),
                  a.row(static_cast<int>(i + 2)), a.row(static_cast<int>(i + 3)),
                  panel.data(), k, out);
      for (size_t t = 0; t < kMicroRows; ++t) {
        float* crow = c.row(static_cast<int>(i + t));
        for (size_t jj = 0; jj < width; ++jj) {
          crow[jb + jj] = out[t * kMicroCols + jj];
        }
      }
    }
    for (; i < i1; ++i) {
      GemmNTMicro1(a.row(static_cast<int>(i)), panel.data(), k, out);
      float* crow = c.row(static_cast<int>(i));
      for (size_t jj = 0; jj < width; ++jj) {
        crow[jb + jj] = out[jj];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NN/TN shared inner: C[i0..i1) rows accumulate rank-1 updates over p
// ascending with the naive kernel's per-(i,p) zero-skip. `a_base` rows must be
// contiguous k-vectors (A itself for NN, a packed transpose panel for TN).
// ---------------------------------------------------------------------------

void RankOneAccumTile(const float* a_base, size_t a_stride, size_t rows,
                      const Matrix& b, Matrix& c, size_t c_row0, size_t j0,
                      size_t j1) {
  const int k = b.rows();
  constexpr size_t kJTile = 512;  // keeps the active C segment L1-resident
  for (size_t jt = j0; jt < j1; jt += kJTile) {
    const size_t jt1 = std::min(j1, jt + kJTile);
    size_t i = 0;
    for (; i + 4 <= rows; i += 4) {
      const float* a0 = a_base + (i + 0) * a_stride;
      const float* a1 = a_base + (i + 1) * a_stride;
      const float* a2 = a_base + (i + 2) * a_stride;
      const float* a3 = a_base + (i + 3) * a_stride;
      float* c0 = c.row(static_cast<int>(c_row0 + i + 0));
      float* c1 = c.row(static_cast<int>(c_row0 + i + 1));
      float* c2 = c.row(static_cast<int>(c_row0 + i + 2));
      float* c3 = c.row(static_cast<int>(c_row0 + i + 3));
      for (int p = 0; p < k; ++p) {
        const float* brow = b.row(p);
        const float v0 = a0[p];
        const float v1 = a1[p];
        const float v2 = a2[p];
        const float v3 = a3[p];
        if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
          // Fused fast path: one pass over the B row updates 4 C rows.
          for (size_t j = jt; j < jt1; ++j) {
            const float bv = brow[j];
            c0[j] += v0 * bv;
            c1[j] += v1 * bv;
            c2[j] += v2 * bv;
            c3[j] += v3 * bv;
          }
        } else {
          // Preserve the naive kernel's per-row zero-skip exactly.
          if (v0 != 0.0f) AxpySpan(v0, brow + jt, c0 + jt, jt1 - jt);
          if (v1 != 0.0f) AxpySpan(v1, brow + jt, c1 + jt, jt1 - jt);
          if (v2 != 0.0f) AxpySpan(v2, brow + jt, c2 + jt, jt1 - jt);
          if (v3 != 0.0f) AxpySpan(v3, brow + jt, c3 + jt, jt1 - jt);
        }
      }
    }
    for (; i < rows; ++i) {
      const float* arow = a_base + i * a_stride;
      float* crow = c.row(static_cast<int>(c_row0 + i));
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) {
          continue;
        }
        AxpySpan(av, b.row(p) + jt, crow + jt, jt1 - jt);
      }
    }
  }
}

void Launch2D(size_t m, size_t n, size_t k, size_t flops,
              const std::function<void(size_t, size_t, size_t, size_t)>& body) {
  if (m == 0 || n == 0) {
    return;
  }
  if (flops < kParallelFlopThreshold) {
    body(0, m, 0, n);
    return;
  }
  const size_t grain_rows = 64;
  ThreadPool::Global().ParallelFor2D(m, n, grain_rows, GrainCols(grain_rows, k), body);
}

}  // namespace

Matrix GemmNN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.rows());
  const size_t m = static_cast<size_t>(a.rows());
  const size_t k = static_cast<size_t>(a.cols());
  const size_t n = static_cast<size_t>(b.cols());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    RankOneAccumTile(a.row(static_cast<int>(i0)), k, i1 - i0, b, c, i0, j0, j1);
  });
  return c;
}

Matrix GemmNT(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.cols());
  const size_t m = static_cast<size_t>(a.rows());
  const size_t k = static_cast<size_t>(a.cols());
  const size_t n = static_cast<size_t>(b.rows());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    GemmNTTile(a, b, c, i0, i1, j0, j1);
  });
  return c;
}

Matrix GemmTN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.rows(), b.rows());
  const size_t m = static_cast<size_t>(a.cols());
  const size_t k = static_cast<size_t>(a.rows());
  const size_t n = static_cast<size_t>(b.cols());
  Matrix c(static_cast<int>(m), static_cast<int>(n));
  Launch2D(m, n, k, m * k * n, [&](size_t i0, size_t i1, size_t j0, size_t j1) {
    // Pack the A columns of this tile into contiguous k-vectors once, then
    // reuse the NN inner kernel. Copying changes no arithmetic.
    const size_t rows = i1 - i0;
    std::vector<float> panel(rows * k);
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.row(static_cast<int>(p));
      for (size_t ii = 0; ii < rows; ++ii) {
        panel[ii * k + p] = arow[i0 + ii];
      }
    }
    RankOneAccumTile(panel.data(), k, rows, b, c, i0, j0, j1);
  });
  return c;
}

// ---------------------------------------------------------------------------
// Fused group-dequant GEMM.
// ---------------------------------------------------------------------------

namespace {

// Columns decoded per pass; panel (kQuantJr rows interleaved) stays L1-resident.
constexpr size_t kQuantBlockCols = 256;
constexpr size_t kQuantJr = 4;  // weight rows decoded/accumulated together

// Decodes w rows [j, j+jw) columns [c0, c1) into `panel` interleaved as
// panel[(c - c0) * kQuantJr + t]; dead lanes (t >= jw) are zero-padded.
// Values are computed with exactly the ValueAt()/Dequantize() expression.
void DecodeQuantPanel(const PackedQuantMatrix& w, size_t j, size_t jw, size_t c0,
                      size_t c1, int* codes, float* panel) {
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const size_t cols = static_cast<size_t>(w.cols());
  const size_t words_per_row = (cols + codes_per_word - 1) / codes_per_word;
  const int group_size = w.group_size();
  const size_t groups_per_row =
      (cols + static_cast<size_t>(group_size) - 1) / group_size;
  for (size_t t = 0; t < kQuantJr; ++t) {
    if (t >= jw) {
      for (size_t c = c0; c < c1; ++c) {
        panel[(c - c0) * kQuantJr + t] = 0.0f;
      }
      continue;
    }
    const size_t row = j + t;
    const uint32_t* words = w.packed().data() + row * words_per_row;
    // Step 1: unpack raw codes word-at-a-time into a register-friendly panel.
    {
      size_t c = c0;
      size_t wi = c0 / static_cast<size_t>(codes_per_word);
      int idx = static_cast<int>(c0 % static_cast<size_t>(codes_per_word));
      uint32_t word = words[wi] >> (idx * bits);
      while (c < c1) {
        if (idx == codes_per_word) {
          ++wi;
          word = words[wi];
          idx = 0;
        }
        codes[c - c0] = static_cast<int>(word & mask);
        word >>= bits;
        ++idx;
        ++c;
      }
    }
    // Step 2: per-group affine, identical expression to ValueAt().
    const float* scales = w.scales().data() + row * groups_per_row;
    const uint8_t* zeros = w.zeros().data() + row * groups_per_row;
    size_t g = c0 / static_cast<size_t>(group_size);
    size_t c = c0;
    while (c < c1) {
      const size_t gend = std::min(c1, (g + 1) * static_cast<size_t>(group_size));
      const float scale = scales[g];
      const int zero = static_cast<int>(zeros[g]);
      for (; c < gend; ++c) {
        panel[(c - c0) * kQuantJr + t] =
            static_cast<float>(codes[c - c0] - zero) * scale;
      }
      ++g;
    }
  }
}

}  // namespace

Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const size_t m = static_cast<size_t>(x.rows());
  const size_t n = static_cast<size_t>(w.rows());
  const size_t k = static_cast<size_t>(w.cols());
  Matrix y(static_cast<int>(m), static_cast<int>(n));
  if (m == 0 || n == 0 || k == 0) {
    return y;
  }
  const auto body = [&](size_t j0, size_t j1, size_t, size_t) {
    std::vector<int> codes(kQuantBlockCols);
    std::vector<float> panel(kQuantBlockCols * kQuantJr);
    for (size_t j = j0; j < j1; j += kQuantJr) {
      const size_t jw = std::min(kQuantJr, j1 - j);
      for (size_t c0 = 0; c0 < k; c0 += kQuantBlockCols) {
        const size_t c1 = std::min(k, c0 + kQuantBlockCols);
        DecodeQuantPanel(w, j, jw, c0, c1, codes.data(), panel.data());
        for (size_t i = 0; i < m; ++i) {
          const float* xrow = x.row(static_cast<int>(i));
          float* yrow = y.row(static_cast<int>(i));
          // Left-fold continuation: each (i, j+t) chain extends across column
          // blocks in ascending c, exactly the naive single-chain order.
          float acc0 = yrow[j + 0];
          float acc1 = jw > 1 ? yrow[j + 1] : 0.0f;
          float acc2 = jw > 2 ? yrow[j + 2] : 0.0f;
          float acc3 = jw > 3 ? yrow[j + 3] : 0.0f;
          const float* wp = panel.data();
          for (size_t c = c0; c < c1; ++c, wp += kQuantJr) {
            const float xv = xrow[c];
            acc0 += xv * wp[0];
            acc1 += xv * wp[1];
            acc2 += xv * wp[2];
            acc3 += xv * wp[3];
          }
          yrow[j + 0] = acc0;
          if (jw > 1) yrow[j + 1] = acc1;
          if (jw > 2) yrow[j + 2] = acc2;
          if (jw > 3) yrow[j + 3] = acc3;
        }
      }
    }
  };
  const size_t flops = m * n * k;
  if (flops < kParallelFlopThreshold) {
    body(0, n, 0, 1);
  } else {
    const size_t grain = std::max<size_t>(kQuantJr * 4, kTaskFlopTarget / std::max<size_t>(2 * m * k, 1));
    ThreadPool::Global().ParallelFor2D(n, 1, grain, 1, body);
  }
  return y;
}

// ---------------------------------------------------------------------------
// 2:4 sparse gather GEMM.
// ---------------------------------------------------------------------------

Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const size_t m = static_cast<size_t>(x.rows());
  const size_t n = static_cast<size_t>(w.rows());
  const size_t kept = static_cast<size_t>(w.cols()) / 2;
  Matrix y(static_cast<int>(m), static_cast<int>(n));
  if (m == 0 || n == 0 || kept == 0) {
    return y;
  }
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const size_t words_per_row = (kept + codes_per_word - 1) / codes_per_word;
  const size_t index_words_per_row = (kept + 15) / 16;
  const size_t group_size = static_cast<size_t>(w.group_size());
  const size_t groups_per_row = (kept + group_size - 1) / group_size;
  constexpr size_t kBlock = 256;  // kept slots decoded per pass

  const auto body = [&](size_t j0, size_t j1, size_t, size_t) {
    std::vector<int> cols(kBlock);
    std::vector<float> vals(kBlock);
    for (size_t j = j0; j < j1; ++j) {
      const uint32_t* vwords = w.packed_values().data() + j * words_per_row;
      const uint32_t* iwords = w.packed_indices().data() + j * index_words_per_row;
      const float* scales = w.scales().data() + j * groups_per_row;
      const uint8_t* zeros = w.zeros().data() + j * groups_per_row;
      for (size_t k0 = 0; k0 < kept; k0 += kBlock) {
        const size_t k1 = std::min(kept, k0 + kBlock);
        // Precompute this block's gather columns and dequantized values.
        for (size_t kk = k0; kk < k1; ++kk) {
          const uint32_t iword = iwords[kk / 16];
          const int in_group = static_cast<int>((iword >> ((kk % 16) * 2)) & 0x3u);
          cols[kk - k0] = static_cast<int>((kk / 2) * 4) + in_group;
          const uint32_t vword = vwords[kk / codes_per_word];
          const int q = static_cast<int>(
              (vword >> ((kk % codes_per_word) * bits)) & mask);
          const size_t gi = kk / group_size;
          vals[kk - k0] =
              static_cast<float>(q - static_cast<int>(zeros[gi])) * scales[gi];
        }
        for (size_t i = 0; i < m; ++i) {
          const float* xrow = x.row(static_cast<int>(i));
          // Left-fold continuation across blocks, ascending kept-slot order.
          float acc = y.at(static_cast<int>(i), static_cast<int>(j));
          for (size_t kk = 0; kk < k1 - k0; ++kk) {
            acc += xrow[cols[kk]] * vals[kk];
          }
          y.at(static_cast<int>(i), static_cast<int>(j)) = acc;
        }
      }
    }
  };
  const size_t flops = m * n * kept;
  if (flops < kParallelFlopThreshold) {
    body(0, n, 0, 1);
  } else {
    const size_t grain =
        std::max<size_t>(16, kTaskFlopTarget / std::max<size_t>(2 * m * kept, 1));
    ThreadPool::Global().ParallelFor2D(n, 1, grain, 1, body);
  }
  return y;
}

// ---------------------------------------------------------------------------
// Blocked transpose.
// ---------------------------------------------------------------------------

Matrix Transpose(const Matrix& m) {
  const int rows = m.rows();
  const int cols = m.cols();
  Matrix t(cols, rows);
  constexpr int kTile = 32;
  for (int rb = 0; rb < rows; rb += kTile) {
    const int re = std::min(rows, rb + kTile);
    for (int cb = 0; cb < cols; cb += kTile) {
      const int ce = std::min(cols, cb + kTile);
      for (int c = cb; c < ce; ++c) {
        float* trow = t.row(c);
        for (int r = rb; r < re; ++r) {
          trow[r] = m.row(r)[c];
        }
      }
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Naive reference kernels: the exact pre-kernel-layer loops, kept serial.
// ---------------------------------------------------------------------------

namespace ref {

Matrix GemmNN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix GemmNT(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      crow[j] = acc;
    }
  }
  return c;
}

Matrix GemmTN(const Matrix& a, const Matrix& b) {
  DZ_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  Matrix c(m, n);
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = a.at(p, i);
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const int m = x.rows();
  const int cols = w.cols();
  Matrix y(m, w.rows());
  std::vector<float> wrow(static_cast<size_t>(cols));
  for (int j = 0; j < w.rows(); ++j) {
    for (int c = 0; c < cols; ++c) {
      wrow[static_cast<size_t>(c)] = w.ValueAt(j, c);
    }
    for (int i = 0; i < m; ++i) {
      const float* xrow = x.row(i);
      float acc = 0.0f;
      for (int c = 0; c < cols; ++c) {
        acc += xrow[c] * wrow[static_cast<size_t>(c)];
      }
      y.at(i, j) = acc;
    }
  }
  return y;
}

Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w) {
  DZ_CHECK_EQ(x.cols(), w.cols());
  const int m = x.rows();
  const int kept = w.cols() / 2;
  Matrix y(m, w.rows());
  if (m == 0 || w.rows() == 0 || kept == 0) {
    return y;
  }
  const int index_words_per_row = (kept + 15) / 16;
  const int bits = w.bits();
  const int codes_per_word = 32 / bits;
  const uint32_t mask = (1u << bits) - 1u;
  const int words_per_row = (kept + codes_per_word - 1) / codes_per_word;
  const size_t group_size = static_cast<size_t>(w.group_size());
  const size_t groups_per_row =
      (static_cast<size_t>(kept) + group_size - 1) / group_size;
  std::vector<int> col_of(static_cast<size_t>(kept));
  std::vector<float> val_of(static_cast<size_t>(kept));
  for (int j = 0; j < w.rows(); ++j) {
    for (int k = 0; k < kept; ++k) {
      const size_t word = static_cast<size_t>(j) * index_words_per_row + k / 16;
      const int shift = (k % 16) * 2;
      const int in_group = static_cast<int>((w.packed_indices()[word] >> shift) & 0x3u);
      col_of[static_cast<size_t>(k)] = (k / 2) * 4 + in_group;
      const size_t vword = static_cast<size_t>(j) * words_per_row + k / codes_per_word;
      const int q = static_cast<int>(
          (w.packed_values()[vword] >> ((k % codes_per_word) * bits)) & mask);
      const size_t gi =
          static_cast<size_t>(j) * groups_per_row + static_cast<size_t>(k) / group_size;
      val_of[static_cast<size_t>(k)] =
          static_cast<float>(q - static_cast<int>(w.zeros()[gi])) * w.scales()[gi];
    }
    for (int i = 0; i < m; ++i) {
      const float* xrow = x.row(i);
      float acc = 0.0f;
      for (int k = 0; k < kept; ++k) {
        acc += xrow[col_of[static_cast<size_t>(k)]] * val_of[static_cast<size_t>(k)];
      }
      y.at(i, j) = acc;
    }
  }
  return y;
}

Matrix Transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    const float* src = m.row(r);
    for (int c = 0; c < m.cols(); ++c) {
      t.data()[static_cast<size_t>(c) * m.rows() + r] = src[c];
    }
  }
  return t;
}

}  // namespace ref

}  // namespace kernels
}  // namespace dz
