// Group-wise affine-quantized matrix with bit-packed storage (paper Fig. 5, step 3).
//
// Weights are quantized per row-group of `group_size` contiguous columns:
//     q = clamp(round(w / scale) + zero, 0, 2^bits - 1)
//     w' = (q - zero) * scale
// For the near-symmetric deltas ΔCompress produces, zero ≈ 2^(bits-1). Values are packed
// (32 / bits) per uint32 word, which is exactly the "packed int2/int4 weight" layout the
// paper stores; ByteSize() reports the true serialized footprint used for compression
// ratios and for the serving-side transfer model.
#ifndef SRC_TENSOR_PACKED_QUANT_H_
#define SRC_TENSOR_PACKED_QUANT_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace dz {

class PackedQuantMatrix {
 public:
  PackedQuantMatrix() = default;

  // Quantizes `w` with the given bit width (2, 4, or 8) and group size.
  // group_size must divide into cols or be larger (single group per row).
  static PackedQuantMatrix Quantize(const Matrix& w, int bits, int group_size);

  // Reconstructs the dense float matrix.
  Matrix Dequantize() const;

  // Y = X * W'^T where W' is the dequantized matrix; fuses dequantization into the
  // product (the software analogue of a dequant-GEMM kernel).
  Matrix MatmulNT(const Matrix& x) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int bits() const { return bits_; }
  int group_size() const { return group_size_; }
  bool empty() const { return rows_ == 0; }

  // Serialized footprint: packed words + per-group scale (fp16) + zero (uint8).
  size_t ByteSize() const;

  // Raw quantized code at (r, c), in [0, 2^bits).
  uint32_t CodeAt(int r, int c) const;
  float ValueAt(int r, int c) const;

  const std::vector<uint32_t>& packed() const { return packed_; }
  const std::vector<float>& scales() const { return scales_; }
  const std::vector<uint8_t>& zeros() const { return zeros_; }

  // Rebuilds a matrix from raw storage (deserialization).
  static PackedQuantMatrix FromStorage(int rows, int cols, int bits, int group_size,
                                       std::vector<uint32_t> packed,
                                       std::vector<float> scales,
                                       std::vector<uint8_t> zeros);

 private:
  int rows_ = 0;
  int cols_ = 0;
  int bits_ = 0;
  int group_size_ = 0;
  int groups_per_row_ = 0;
  int codes_per_word_ = 0;
  int words_per_row_ = 0;
  std::vector<uint32_t> packed_;   // rows_ * words_per_row_
  std::vector<float> scales_;      // rows_ * groups_per_row_ (stored at fp16 precision)
  std::vector<uint8_t> zeros_;     // rows_ * groups_per_row_
};

// Quantizes a single group of values in-place into codes; returns (scale, zero).
// Exposed for reuse by the OBS solver, which quantizes column-by-column.
struct QuantParams {
  float scale = 0.0f;
  int zero = 0;
  int qmax = 0;
};

// Computes affine quantization parameters for the value range [min_v, max_v].
QuantParams ComputeQuantParams(float min_v, float max_v, int bits);

// Quantize/dequantize one value with the given parameters.
float QuantizeValue(float v, const QuantParams& p);

}  // namespace dz

#endif  // SRC_TENSOR_PACKED_QUANT_H_
