// Runtime-dispatched SIMD kernel backends (ISSUE 10).
//
// The kernel layer compiles one translation unit per ISA (scalar always;
// AVX2/AVX-512 on x86-64, NEON on arm) with that ISA's -m flags, each
// instantiating the same blocked drivers from kernels_generic.h around its own
// vector micro-kernels. At first use the dispatcher probes the CPU
// (__builtin_cpu_supports on x86) and selects the widest compiled-and-supported
// backend; every public kernel entry point in kernels.h then forwards through
// the selected table, so call sites never name an ISA.
//
// Selection order (first hit wins):
//   1. ForceBackend(name)       — programmatic, used by tests/benches/CLI --isa
//   2. DZ_ISA=<name> env var    — unknown/unsupported values warn and fall through
//   3. CPU probe, widest first  — avx512 > avx2 > neon > scalar
//
// Bit-identity contract: every backend's micro-kernels vectorize ONLY across
// independent output elements (one accumulator chain per output column); each
// element's k-terms accumulate in exactly the naive kernels::ref order, and the
// per-ISA TUs compile with -ffp-contract=off so no mul+add pair is fused into
// an FMA. Switching backends therefore never changes a single output bit —
// enforced bitwise by tests/tensor/kernel_parity_test.cc for every compiled
// backend.
#ifndef SRC_TENSOR_BACKEND_H_
#define SRC_TENSOR_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dz {

class Matrix;
class PackedQuantMatrix;
class Sparse24Matrix;

namespace kernels {

// Bumped whenever a pointer is added/removed/retyped; the dispatcher refuses a
// table whose version does not match, so a stale out-of-tree backend can never
// be entered through a misshapen struct.
inline constexpr int kBackendAbiVersion = 1;

// One ISA's kernel implementations as a flat dispatch table. Instances are
// immutable statics owned by their translation unit; callers hold `const
// Backend&` from ActiveBackend() and never copy or mutate.
struct Backend {
  int abi_version;
  const char* name;  // dispatch key: "scalar" | "avx2" | "avx512" | "neon"
  const char* isa;   // human-readable ISA description for report headers
  int vector_width;  // fp32 lanes per vector register (1 for scalar)

  // Dense GEMM family (shapes as in kernels.h).
  Matrix (*gemm_nn)(const Matrix&, const Matrix&);
  Matrix (*gemm_nt)(const Matrix&, const Matrix&);
  Matrix (*gemm_tn)(const Matrix&, const Matrix&);

  // Compressed-format GEMMs.
  Matrix (*quant_gemm_nt)(const Matrix&, const PackedQuantMatrix&);
  Matrix (*sparse24_gemm_nt)(const Matrix&, const Sparse24Matrix&);

  Matrix (*transpose)(const Matrix&);

  // Elementwise spans (independent elements; trivially order-preserving).
  void (*add_span)(float*, const float*, size_t);
  void (*sub_span)(float*, const float*, size_t);
  void (*scale_span)(float*, float, size_t);
  void (*axpy_span)(float, const float*, float*, size_t);

  // Byte spans for the lossless codec. match_len returns the length of the
  // common prefix of a and b (both valid for `max` bytes). copy_match performs
  // the LZ77 overlapped copy dst[i] = dst[i - dist] for i in [0, len) with
  // byte-sequential semantics (dist < width replicates, exactly like the
  // byte-at-a-time loop).
  size_t (*match_len)(const uint8_t* a, const uint8_t* b, size_t max);
  void (*copy_match)(uint8_t* dst, size_t dist, size_t len);
};

// The currently selected backend. First call performs the probe (cheap,
// lock-free afterwards). Thread-safe to call concurrently.
const Backend& ActiveBackend();

// Selects a backend by name. Returns false (selection unchanged) when the name
// is not compiled in or the CPU does not support it. Not meant to be raced
// against in-flight kernel calls — flip it at startup or between phases, as the
// tests/benches/CLI do.
bool ForceBackend(const std::string& name);

// Drops any ForceBackend choice and re-runs the DZ_ISA/probe selection.
void ResetBackend();

// Names of every backend compiled into this binary, probe order (widest
// first, "scalar" always last). Independent of what the CPU supports.
std::vector<std::string> CompiledBackends();

// True when `name` is compiled in AND the running CPU supports it.
bool BackendSupported(const std::string& name);

// Pure selection logic, exposed so the dispatch unit test can exercise it
// without patching the process environment: `compiled` is the probe-ordered
// candidate list with per-CPU support flags, `env_override` mirrors DZ_ISA
// (nullptr/empty = unset). Returns the chosen name: the override when it names
// a compiled-and-supported candidate, otherwise the first supported one.
struct BackendChoice {
  std::string name;
  bool supported;
};
std::string SelectBackendName(const std::vector<BackendChoice>& compiled,
                              const char* env_override);

}  // namespace kernels
}  // namespace dz

#endif  // SRC_TENSOR_BACKEND_H_
