// AVX-512 kernel backend. Compiled only on x86-64, with
// `-mavx512f -ffp-contract=off`; entered only after a runtime
// __builtin_cpu_supports("avx512f") probe. GCC's -mavx512f implies -mavx2, so
// the byte-span helpers reuse 256-bit code (every AVX-512 CPU has AVX2).
//
// Bit-identity: one independent output element per zmm lane, k-terms added in
// ascending order, no FMA, contraction off — byte-identical to scalar.
#include "src/tensor/kernels_generic.h"

#if !defined(__AVX512F__)
#error "kernels_avx512.cc must be compiled with -mavx512f"
#endif

#include <immintrin.h>

namespace dz {
namespace kernels {
namespace {

struct Avx512Ops {
  static constexpr int kWidth = 16;
  static constexpr size_t kQuantJr = 16;
  static constexpr size_t kSparseRows = 16;
  static constexpr size_t kSparseCols = 16;

  // 4x16 NT micro-kernel: one zmm accumulator per output row.
  static void NTMicro4(const float* arow0, const float* arow1,
                       const float* arow2, const float* arow3,
                       const float* panel, int k, float* out) {
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    __m512 acc2 = _mm512_setzero_ps();
    __m512 acc3 = _mm512_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m512 bv =
          _mm512_loadu_ps(panel + static_cast<size_t>(p) * kMicroCols);
      acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(arow0[p]), bv));
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(arow1[p]), bv));
      acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(arow2[p]), bv));
      acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(arow3[p]), bv));
    }
    _mm512_storeu_ps(out + 0 * kMicroCols, acc0);
    _mm512_storeu_ps(out + 1 * kMicroCols, acc1);
    _mm512_storeu_ps(out + 2 * kMicroCols, acc2);
    _mm512_storeu_ps(out + 3 * kMicroCols, acc3);
  }

  static void NTMicro1(const float* arow, const float* panel, int k,
                       float* out) {
    __m512 acc = _mm512_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m512 bv =
          _mm512_loadu_ps(panel + static_cast<size_t>(p) * kMicroCols);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(arow[p]), bv));
    }
    _mm512_storeu_ps(out, acc);
  }

  static void Axpy(float v, const float* x, float* y, size_t n) {
    const __m512 vv = _mm512_set1_ps(v);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m512 yv = _mm512_loadu_ps(y + i);
      _mm512_storeu_ps(
          y + i, _mm512_add_ps(yv, _mm512_mul_ps(vv, _mm512_loadu_ps(x + i))));
    }
    for (; i < n; ++i) {
      y[i] += v * x[i];
    }
  }

  // Classic in-register 8x8 transpose on 256-bit registers (implied AVX2);
  // avoids the cross-128-lane permute zoo a full 16x16 zmm transpose needs.
  static void Transpose8x8(__m256& r0, __m256& r1, __m256& r2, __m256& r3,
                           __m256& r4, __m256& r5, __m256& r6, __m256& r7) {
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r0 = _mm256_permute2f128_ps(s0, s4, 0x20);
    r1 = _mm256_permute2f128_ps(s1, s5, 0x20);
    r2 = _mm256_permute2f128_ps(s2, s6, 0x20);
    r3 = _mm256_permute2f128_ps(s3, s7, 0x20);
    r4 = _mm256_permute2f128_ps(s0, s4, 0x31);
    r5 = _mm256_permute2f128_ps(s1, s5, 0x31);
    r6 = _mm256_permute2f128_ps(s2, s6, 0x31);
    r7 = _mm256_permute2f128_ps(s3, s7, 0x31);
  }

  // Full-stripe transpose pack as four 8x8 in-register transposes per 8 k
  // columns. Pure data movement; at small m the pack dominates GemmNT.
  static void PackStrip16(const float* b0, size_t ldb, int k, float* panel) {
    const int k8 = k & ~7;
    for (int p = 0; p < k8; p += 8) {
      for (int rb = 0; rb < static_cast<int>(kMicroCols); rb += 8) {
        const float* src = b0 + static_cast<size_t>(rb) * ldb + p;
        __m256 r0 = _mm256_loadu_ps(src);
        __m256 r1 = _mm256_loadu_ps(src + ldb);
        __m256 r2 = _mm256_loadu_ps(src + 2 * ldb);
        __m256 r3 = _mm256_loadu_ps(src + 3 * ldb);
        __m256 r4 = _mm256_loadu_ps(src + 4 * ldb);
        __m256 r5 = _mm256_loadu_ps(src + 5 * ldb);
        __m256 r6 = _mm256_loadu_ps(src + 6 * ldb);
        __m256 r7 = _mm256_loadu_ps(src + 7 * ldb);
        Transpose8x8(r0, r1, r2, r3, r4, r5, r6, r7);
        float* dst = panel + static_cast<size_t>(p) * kMicroCols + rb;
        _mm256_storeu_ps(dst + 0 * kMicroCols, r0);
        _mm256_storeu_ps(dst + 1 * kMicroCols, r1);
        _mm256_storeu_ps(dst + 2 * kMicroCols, r2);
        _mm256_storeu_ps(dst + 3 * kMicroCols, r3);
        _mm256_storeu_ps(dst + 4 * kMicroCols, r4);
        _mm256_storeu_ps(dst + 5 * kMicroCols, r5);
        _mm256_storeu_ps(dst + 6 * kMicroCols, r6);
        _mm256_storeu_ps(dst + 7 * kMicroCols, r7);
      }
    }
    for (int p = k8; p < k; ++p) {
      float* dst = panel + static_cast<size_t>(p) * kMicroCols;
      for (size_t t = 0; t < kMicroCols; ++t) {
        dst[t] = b0[t * ldb + p];
      }
    }
  }

  static void Rank1x4(float v0, float v1, float v2, float v3, const float* b,
                      float* c0, float* c1, float* c2, float* c3, size_t n) {
    const __m512 w0 = _mm512_set1_ps(v0);
    const __m512 w1 = _mm512_set1_ps(v1);
    const __m512 w2 = _mm512_set1_ps(v2);
    const __m512 w3 = _mm512_set1_ps(v3);
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m512 bv = _mm512_loadu_ps(b + j);
      _mm512_storeu_ps(c0 + j, _mm512_add_ps(_mm512_loadu_ps(c0 + j),
                                             _mm512_mul_ps(w0, bv)));
      _mm512_storeu_ps(c1 + j, _mm512_add_ps(_mm512_loadu_ps(c1 + j),
                                             _mm512_mul_ps(w1, bv)));
      _mm512_storeu_ps(c2 + j, _mm512_add_ps(_mm512_loadu_ps(c2 + j),
                                             _mm512_mul_ps(w2, bv)));
      _mm512_storeu_ps(c3 + j, _mm512_add_ps(_mm512_loadu_ps(c3 + j),
                                             _mm512_mul_ps(w3, bv)));
    }
    for (; j < n; ++j) {
      const float bv = b[j];
      c0[j] += v0 * bv;
      c1[j] += v1 * bv;
      c2[j] += v2 * bv;
      c3[j] += v3 * bv;
    }
  }

  static void Add(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      _mm512_storeu_ps(
          y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
    }
    for (; i < n; ++i) {
      y[i] += x[i];
    }
  }

  static void Sub(float* y, const float* x, size_t n) {
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      _mm512_storeu_ps(
          y + i, _mm512_sub_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
    }
    for (; i < n; ++i) {
      y[i] -= x[i];
    }
  }

  static void Scale(float* y, float s, size_t n) {
    const __m512 sv = _mm512_set1_ps(s);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      _mm512_storeu_ps(y + i, _mm512_mul_ps(_mm512_loadu_ps(y + i), sv));
    }
    for (; i < n; ++i) {
      y[i] *= s;
    }
  }

  // 16 weight-row chains per pass over the decoded panel.
  // Vector affine decode: int subtract and int->float convert are exact, so
  // the one mul rounds identically to the scalar expression.
  static void DequantAffine(const int* codes, size_t len, int zero, float scale,
                            float* out) {
    const __m512i zv = _mm512_set1_epi32(zero);
    const __m512 sv = _mm512_set1_ps(scale);
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      const __m512i c = _mm512_loadu_si512(codes + i);
      const __m512 f = _mm512_cvtepi32_ps(_mm512_sub_epi32(c, zv));
      _mm512_storeu_ps(out + i, _mm512_mul_ps(f, sv));
    }
    for (; i < len; ++i) {
      out[i] = static_cast<float>(codes[i] - zero) * scale;
    }
  }

  // Jr = 16 = kMicroCols, so the interleave IS the GEMM panel pack shape.
  static void InterleaveQuant(const float* rowbuf, size_t stride, size_t len,
                              float* panel) {
    static_assert(kQuantJr == kMicroCols, "interleave reuses the strip pack");
    PackStrip16(rowbuf, stride, static_cast<int>(len), panel);
  }

  static void QuantInner(const float* x, const float* panel, size_t len,
                         float* acc) {
    __m512 accv = _mm512_loadu_ps(acc);
    for (size_t c = 0; c < len; ++c) {
      accv = _mm512_add_ps(
          accv, _mm512_mul_ps(_mm512_set1_ps(x[c]),
                              _mm512_loadu_ps(panel + c * kQuantJr)));
    }
    _mm512_storeu_ps(acc, accv);
  }

  // 16 activation-row chains; per kept slot, gather rows' x[cols[kk]].
  static void SparseInner(const float* x0, size_t stride, const int* cols,
                          const float* vals, size_t len, float* acc) {
    const __m512i roff = _mm512_mullo_epi32(
        _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                          15),
        _mm512_set1_epi32(static_cast<int>(stride)));
    __m512 accv = _mm512_loadu_ps(acc);
    for (size_t kk = 0; kk < len; ++kk) {
      const __m512i idx = _mm512_add_epi32(roff, _mm512_set1_epi32(cols[kk]));
      // Full-mask gather with an explicit zero merge source: the plain
      // _mm512_i32gather_ps leaves its merge register undefined, which GCC
      // flags with -Wmaybe-uninitialized.
      const __m512 xv = _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                                 static_cast<__mmask16>(0xFFFF),
                                                 idx, x0, 4);
      accv = _mm512_add_ps(accv, _mm512_mul_ps(xv, _mm512_set1_ps(vals[kk])));
    }
    _mm512_storeu_ps(acc, accv);
  }

  // Column-path inner loop: 16 weight-row chains (lanes) over one activation
  // row; per kept slot, gather x at the 16 rows' column indices and multiply
  // by their interleaved dequantized values.
  static void SparseInnerT(const float* xrow, const int* colsT,
                           const float* valsT, size_t len, float* acc) {
    __m512 accv = _mm512_loadu_ps(acc);
    for (size_t s = 0; s < len; ++s) {
      const __m512i idx = _mm512_loadu_si512(colsT + s * kSparseCols);
      const __m512 xv = _mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                                 static_cast<__mmask16>(0xFFFF),
                                                 idx, xrow, 4);
      accv = _mm512_add_ps(
          accv, _mm512_mul_ps(xv, _mm512_loadu_ps(valsT + s * kSparseCols)));
    }
    _mm512_storeu_ps(acc, accv);
  }

  // Byte helpers use 256-bit ops (implied AVX2): cmpeq+movemask needs AVX512BW
  // for 64-byte vectors, which -mavx512f alone does not enable.
  static size_t MatchLen(const uint8_t* a, const uint8_t* b, size_t max) {
    size_t i = 0;
    while (i + 32 <= max) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const uint32_t eq = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
      if (eq != 0xFFFFFFFFu) {
        return i + static_cast<size_t>(__builtin_ctz(~eq));
      }
      i += 32;
    }
    while (i < max && a[i] == b[i]) {
      ++i;
    }
    return i;
  }

  static void CopyMatch(uint8_t* dst, size_t dist, size_t len) {
    if (dist >= 32) {
      const uint8_t* src = dst - dist;
      size_t i = 0;
      for (; i + 32 <= len; i += 32) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
      }
      for (; i < len; ++i) {
        dst[i] = src[i];
      }
      return;
    }
    ScalarOps::CopyMatch(dst, dist, len);
  }
};

}  // namespace

const Backend* GetAvx512Backend() {
  return MakeBackendTable<Avx512Ops>("avx512", "AVX-512F (16-wide fp32)");
}

}  // namespace kernels
}  // namespace dz
