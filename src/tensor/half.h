// Software IEEE-754 binary16 ("half") conversion.
//
// The serving stack stores base-model weights in fp16 (like the paper's FP16 baseline);
// we implement the conversion in software since this reproduction targets CPUs. Round to
// nearest-even; overflow saturates to +/-inf; subnormals are handled exactly.
#ifndef SRC_TENSOR_HALF_H_
#define SRC_TENSOR_HALF_H_

#include <cstdint>
#include <cstring>

namespace dz {

// Converts a float to the nearest binary16 bit pattern.
uint16_t FloatToHalfBits(float f);

// Converts a binary16 bit pattern to float (exact).
float HalfBitsToFloat(uint16_t h);

// Value type wrapper. Arithmetic happens in float; storage is 16 bits.
class Half {
 public:
  Half() = default;
  explicit Half(float f) : bits_(FloatToHalfBits(f)) {}

  static Half FromBits(uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  float ToFloat() const { return HalfBitsToFloat(bits_); }
  uint16_t bits() const { return bits_; }

  friend bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }

 private:
  uint16_t bits_ = 0;
};

// Rounds a float through fp16 precision (the common "store in half" operation).
inline float RoundToHalf(float f) { return HalfBitsToFloat(FloatToHalfBits(f)); }

}  // namespace dz

#endif  // SRC_TENSOR_HALF_H_
