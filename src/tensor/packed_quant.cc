#include "src/tensor/packed_quant.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/half.h"
#include "src/tensor/kernels.h"

namespace dz {

QuantParams ComputeQuantParams(float min_v, float max_v, int bits) {
  DZ_CHECK(bits == 2 || bits == 4 || bits == 8);
  QuantParams p;
  p.qmax = (1 << bits) - 1;
  min_v = std::min(min_v, 0.0f);  // ensure zero is representable
  max_v = std::max(max_v, 0.0f);
  const float range = max_v - min_v;
  if (range <= 0.0f) {
    p.scale = 1.0f;
    p.zero = 0;
    return p;
  }
  p.scale = RoundToHalf(range / static_cast<float>(p.qmax));
  if (p.scale <= 0.0f) {
    p.scale = 1e-8f;
  }
  p.zero = std::clamp(static_cast<int>(std::lround(-min_v / p.scale)), 0, p.qmax);
  return p;
}

float QuantizeValue(float v, const QuantParams& p) {
  const int q =
      std::clamp(static_cast<int>(std::lround(v / p.scale)) + p.zero, 0, p.qmax);
  return static_cast<float>(q - p.zero) * p.scale;
}

PackedQuantMatrix PackedQuantMatrix::Quantize(const Matrix& w, int bits, int group_size) {
  DZ_CHECK(bits == 2 || bits == 4 || bits == 8);
  DZ_CHECK_GT(group_size, 0);
  PackedQuantMatrix out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.bits_ = bits;
  out.group_size_ = std::min(group_size, std::max(w.cols(), 1));
  out.groups_per_row_ = (w.cols() + out.group_size_ - 1) / out.group_size_;
  out.codes_per_word_ = 32 / bits;
  out.words_per_row_ = (w.cols() + out.codes_per_word_ - 1) / out.codes_per_word_;
  out.packed_.assign(static_cast<size_t>(out.rows_) * out.words_per_row_, 0u);
  out.scales_.assign(static_cast<size_t>(out.rows_) * out.groups_per_row_, 1.0f);
  out.zeros_.assign(static_cast<size_t>(out.rows_) * out.groups_per_row_, 0);

  for (int r = 0; r < out.rows_; ++r) {
    const float* row = w.row(r);
    for (int g = 0; g < out.groups_per_row_; ++g) {
      const int c0 = g * out.group_size_;
      const int c1 = std::min(out.cols_, c0 + out.group_size_);
      float lo = row[c0];
      float hi = row[c0];
      for (int c = c0; c < c1; ++c) {
        lo = std::min(lo, row[c]);
        hi = std::max(hi, row[c]);
      }
      const QuantParams p = ComputeQuantParams(lo, hi, bits);
      const size_t gi = static_cast<size_t>(r) * out.groups_per_row_ + g;
      out.scales_[gi] = p.scale;
      out.zeros_[gi] = static_cast<uint8_t>(p.zero);
      for (int c = c0; c < c1; ++c) {
        const int q =
            std::clamp(static_cast<int>(std::lround(row[c] / p.scale)) + p.zero, 0, p.qmax);
        const size_t word =
            static_cast<size_t>(r) * out.words_per_row_ + c / out.codes_per_word_;
        const int shift = (c % out.codes_per_word_) * bits;
        out.packed_[word] |= static_cast<uint32_t>(q) << shift;
      }
    }
  }
  return out;
}

uint32_t PackedQuantMatrix::CodeAt(int r, int c) const {
  DZ_CHECK_GE(r, 0);
  DZ_CHECK_LT(r, rows_);
  DZ_CHECK_GE(c, 0);
  DZ_CHECK_LT(c, cols_);
  const size_t word = static_cast<size_t>(r) * words_per_row_ + c / codes_per_word_;
  const int shift = (c % codes_per_word_) * bits_;
  const uint32_t mask = (bits_ == 32) ? ~0u : ((1u << bits_) - 1u);
  return (packed_[word] >> shift) & mask;
}

float PackedQuantMatrix::ValueAt(int r, int c) const {
  const size_t gi = static_cast<size_t>(r) * groups_per_row_ + c / group_size_;
  const int q = static_cast<int>(CodeAt(r, c));
  return static_cast<float>(q - static_cast<int>(zeros_[gi])) * scales_[gi];
}

Matrix PackedQuantMatrix::Dequantize() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    float* dst = out.row(r);
    for (int c = 0; c < cols_; ++c) {
      dst[c] = ValueAt(r, c);
    }
  }
  return out;
}

Matrix PackedQuantMatrix::MatmulNT(const Matrix& x) const {
  return kernels::QuantGemmNT(x, *this);
}

PackedQuantMatrix PackedQuantMatrix::FromStorage(int rows, int cols, int bits,
                                                 int group_size,
                                                 std::vector<uint32_t> packed,
                                                 std::vector<float> scales,
                                                 std::vector<uint8_t> zeros) {
  DZ_CHECK_GT(rows, 0);
  DZ_CHECK_GT(cols, 0);
  DZ_CHECK(bits == 2 || bits == 4 || bits == 8);
  PackedQuantMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.bits_ = bits;
  out.group_size_ = std::min(group_size, std::max(cols, 1));
  out.groups_per_row_ = (cols + out.group_size_ - 1) / out.group_size_;
  out.codes_per_word_ = 32 / bits;
  out.words_per_row_ = (cols + out.codes_per_word_ - 1) / out.codes_per_word_;
  DZ_CHECK_EQ(packed.size(), static_cast<size_t>(rows) * out.words_per_row_);
  DZ_CHECK_EQ(scales.size(), static_cast<size_t>(rows) * out.groups_per_row_);
  DZ_CHECK_EQ(zeros.size(), scales.size());
  out.packed_ = std::move(packed);
  out.scales_ = std::move(scales);
  out.zeros_ = std::move(zeros);
  return out;
}

size_t PackedQuantMatrix::ByteSize() const {
  const size_t packed_bytes = packed_.size() * sizeof(uint32_t);
  const size_t scale_bytes = scales_.size() * 2;  // stored as fp16
  const size_t zero_bytes = zeros_.size();
  return packed_bytes + scale_bytes + zero_bytes;
}

}  // namespace dz
