// Dense row-major float matrix plus the GEMM entry points the transformer and
// the compression solvers are built on. The implementations route through the
// blocked kernel layer in kernels.h (bit-identical to the naive loops by the
// parity contract documented there).
#ifndef SRC_TENSOR_MATRIX_H_
#define SRC_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace dz {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(ElemCount(rows, cols), 0.0f) {}
  Matrix(int rows, int cols, float fill)
      : rows_(rows), cols_(cols), data_(ElemCount(rows, cols), fill) {}

  static Matrix Random(int rows, int cols, Rng& rng, float stddev);
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    DZ_CHECK_GE(r, 0);
    DZ_CHECK_LT(r, rows_);
    DZ_CHECK_GE(c, 0);
    DZ_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    DZ_CHECK_GE(r, 0);
    DZ_CHECK_LT(r, rows_);
    DZ_CHECK_GE(c, 0);
    DZ_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // Unchecked row pointer for hot loops.
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const { return data_.data() + static_cast<size_t>(r) * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float v);
  Matrix Transposed() const;

  // Element-wise helpers.
  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& ScaleInPlace(float s);

  // Rounds every element through fp16 storage precision.
  Matrix& RoundToHalfInPlace();

  double FrobeniusNorm() const;
  double MaxAbs() const;
  double MeanAbs() const;

  std::string ShapeString() const;

 private:
  static size_t ElemCount(int rows, int cols) {
    DZ_CHECK_GE(rows, 0);
    DZ_CHECK_GE(cols, 0);
    return static_cast<size_t>(rows) * static_cast<size_t>(cols);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// C = A * B. A is [m,k], B is [k,n].
Matrix Matmul(const Matrix& a, const Matrix& b);

// C = A * B^T. A is [m,k], B is [n,k]. This is the linear-layer form Y = X W^T.
Matrix MatmulNT(const Matrix& a, const Matrix& b);

// C = A^T * B. A is [k,m], B is [k,n]. Used in backprop and Hessian accumulation.
Matrix MatmulTN(const Matrix& a, const Matrix& b);

// y += alpha * x (flattened).
void Axpy(float alpha, const Matrix& x, Matrix& y);

// Returns a - b.
Matrix Sub(const Matrix& a, const Matrix& b);
// Returns a + b.
Matrix Add(const Matrix& a, const Matrix& b);

// Relative Frobenius error ||a-b|| / max(||b||, eps).
double RelativeError(const Matrix& a, const Matrix& b);

}  // namespace dz

#endif  // SRC_TENSOR_MATRIX_H_
