#include "src/tensor/half.h"

namespace dz {

uint16_t FloatToHalfBits(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  uint32_t exp = (x >> 23) & 0xFFu;
  uint32_t mant = x & 0x7FFFFFu;

  if (exp == 0xFF) {  // inf / NaN
    const uint32_t nan_payload = mant != 0 ? 0x200u : 0u;
    return static_cast<uint16_t>(sign | 0x7C00u | nan_payload);
  }

  // Re-bias exponent: float bias 127 → half bias 15.
  const int32_t unbiased = static_cast<int32_t>(exp) - 127;
  int32_t half_exp = unbiased + 15;

  if (half_exp >= 0x1F) {  // overflow → inf
    return static_cast<uint16_t>(sign | 0x7C00u);
  }

  if (half_exp <= 0) {
    // Subnormal half (or zero). Shift mantissa (with implicit leading 1) right.
    if (half_exp < -10) {
      return static_cast<uint16_t>(sign);  // rounds to zero
    }
    mant |= 0x800000u;  // implicit bit
    const int shift = 14 - half_exp;       // 14..24
    const uint32_t sub = mant >> shift;
    // Round to nearest even on the dropped bits.
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    uint32_t rounded = sub;
    if (rem > halfway || (rem == halfway && (sub & 1u))) {
      ++rounded;
    }
    return static_cast<uint16_t>(sign | rounded);
  }

  // Normal number: keep top 10 mantissa bits, round to nearest even.
  uint32_t half_mant = mant >> 13;
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow bumps exponent
      half_mant = 0;
      ++half_exp;
      if (half_exp >= 0x1F) {
        return static_cast<uint16_t>(sign | 0x7C00u);
      }
    }
  }
  return static_cast<uint16_t>(sign | (static_cast<uint32_t>(half_exp) << 10) | half_mant);
}

float HalfBitsToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t out;

  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- 0
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const uint32_t f_exp = static_cast<uint32_t>(127 - 15 - e);
      const uint32_t f_mant = (m & 0x3FFu) << 13;
      out = sign | (f_exp << 23) | f_mant;
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    const uint32_t f_exp = exp - 15 + 127;
    out = sign | (f_exp << 23) | (mant << 13);
  }

  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

}  // namespace dz
