// Blocked, vectorizable CPU kernel layer for the compression/serving hot paths.
//
// Every dense, packed-quant, and 2:4-sparse matmul in the library routes through
// here. The kernels are cache-blocked over the output (i/j) dimensions with
// multi-accumulator inner loops, but NEVER reorder the per-element reduction:
// each output element accumulates its k-terms in exactly the same (ascending,
// zero-skipping where the naive kernel skipped) order as the retained naive
// reference in kernels::ref. That makes every result bit-identical to the
// pre-kernel-layer implementation — enforced by tests/tensor/kernel_parity_test.
//
// Parallelism uses ThreadPool::ParallelFor2D over output tiles; the partition
// never affects results because output elements are independent.
#ifndef SRC_TENSOR_KERNELS_H_
#define SRC_TENSOR_KERNELS_H_

#include <cstddef>

#include "src/tensor/matrix.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"

namespace dz {
namespace kernels {

// ---------------------------------------------------------------------------
// Elementwise span helpers — the one home for the scattered elementwise loops
// (Matrix::AddInPlace / SubInPlace / ScaleInPlace, Axpy, transformer norm
// vectors). Plain independent-element loops; compilers vectorize them.
// ---------------------------------------------------------------------------

inline void AddSpan(float* y, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += x[i];
  }
}

inline void SubSpan(float* y, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] -= x[i];
  }
}

inline void ScaleSpan(float* y, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] *= s;
  }
}

// y += alpha * x.
inline void AxpySpan(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

// ---------------------------------------------------------------------------
// Dense GEMM family. Shapes follow the free functions in matrix.h.
// ---------------------------------------------------------------------------

// C = A * B. A is [m,k], B is [k,n].
Matrix GemmNN(const Matrix& a, const Matrix& b);

// C = A * B^T. A is [m,k], B is [n,k] (linear-layer form Y = X W^T).
Matrix GemmNT(const Matrix& a, const Matrix& b);

// C = A^T * B. A is [k,m], B is [k,n].
Matrix GemmTN(const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Compressed-format GEMMs (both are the NT linear-layer form Y = X W'^T).
// ---------------------------------------------------------------------------

// Fused group-wise-dequant GEMM: decodes packed codes a register panel at a
// time instead of materializing a dense weight row. Bit-identical to
// MatmulNT(x, w.Dequantize()).
Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w);

// Blocked gather GEMM over the 2:4 stored slots with per-block precomputed
// column indices. Bit-identical to the historical row-at-a-time kernel (which
// walks kept slots in storage order).
Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w);

// Blocked (32x32 tile) transpose.
Matrix Transpose(const Matrix& m);

// ---------------------------------------------------------------------------
// Retained naive reference kernels (the exact pre-kernel-layer loops). Slow;
// exist so the parity tests can prove bit-identity of the blocked kernels.
// ---------------------------------------------------------------------------
namespace ref {

Matrix GemmNN(const Matrix& a, const Matrix& b);
Matrix GemmNT(const Matrix& a, const Matrix& b);
Matrix GemmTN(const Matrix& a, const Matrix& b);
Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w);
Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w);
Matrix Transpose(const Matrix& m);

}  // namespace ref

}  // namespace kernels
}  // namespace dz

#endif  // SRC_TENSOR_KERNELS_H_
