// Public kernel API: thin forwarders through the runtime-dispatched SIMD
// backend (see backend.h).
//
// Every dense, packed-quant, and 2:4-sparse matmul in the library routes
// through here. Since ISSUE 10 the actual implementations live in per-ISA
// translation units (kernels_scalar/avx2/avx512/neon.cc), all instantiating
// the same cache-blocked drivers from kernels_generic.h; the free functions
// below just forward through kernels::ActiveBackend(), so call sites never
// changed and never name an ISA.
//
// Bit-identity contract (unchanged from the scalar kernel layer): no backend
// ever reorders a per-element reduction. Each output element accumulates its
// k-terms in exactly the same (ascending, zero-skipping where the naive kernel
// skipped) order as the retained naive reference in kernels::ref; SIMD lanes
// only span independent output elements, and the ISA TUs build with
// -ffp-contract=off so nothing fuses into an FMA. Every compiled backend is
// enforced bitwise against kernels::ref by tests/tensor/kernel_parity_test.
//
// Parallelism uses ThreadPool::ParallelFor2D over output tiles; the partition
// never affects results because output elements are independent.
#ifndef SRC_TENSOR_KERNELS_H_
#define SRC_TENSOR_KERNELS_H_

#include <cstddef>

#include "src/tensor/backend.h"
#include "src/tensor/matrix.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"

namespace dz {
namespace kernels {

// ---------------------------------------------------------------------------
// Elementwise span helpers — the one home for the scattered elementwise loops
// (Matrix::AddInPlace / SubInPlace / ScaleInPlace, Axpy, transformer norm
// vectors). Dispatched: vector backends process a full register per step.
// ---------------------------------------------------------------------------

inline void AddSpan(float* y, const float* x, size_t n) {
  ActiveBackend().add_span(y, x, n);
}

inline void SubSpan(float* y, const float* x, size_t n) {
  ActiveBackend().sub_span(y, x, n);
}

inline void ScaleSpan(float* y, float s, size_t n) {
  ActiveBackend().scale_span(y, s, n);
}

// y += alpha * x.
inline void AxpySpan(float alpha, const float* x, float* y, size_t n) {
  ActiveBackend().axpy_span(alpha, x, y, n);
}

// ---------------------------------------------------------------------------
// Byte span helpers for the lossless codec (LZ77 match search / match copy).
// ---------------------------------------------------------------------------

// Length of the common prefix of a and b; both must be readable for `max`
// bytes.
inline size_t MatchLenSpan(const uint8_t* a, const uint8_t* b, size_t max) {
  return ActiveBackend().match_len(a, b, max);
}

// LZ77 overlapped copy dst[i] = dst[i - dist] for i in [0, len), with
// byte-sequential semantics (dist shorter than the copy replicates).
inline void CopyMatchSpan(uint8_t* dst, size_t dist, size_t len) {
  ActiveBackend().copy_match(dst, dist, len);
}

// ---------------------------------------------------------------------------
// Dense GEMM family. Shapes follow the free functions in matrix.h.
// ---------------------------------------------------------------------------

// C = A * B. A is [m,k], B is [k,n].
inline Matrix GemmNN(const Matrix& a, const Matrix& b) {
  return ActiveBackend().gemm_nn(a, b);
}

// C = A * B^T. A is [m,k], B is [n,k] (linear-layer form Y = X W^T).
inline Matrix GemmNT(const Matrix& a, const Matrix& b) {
  return ActiveBackend().gemm_nt(a, b);
}

// C = A^T * B. A is [k,m], B is [k,n].
inline Matrix GemmTN(const Matrix& a, const Matrix& b) {
  return ActiveBackend().gemm_tn(a, b);
}

// ---------------------------------------------------------------------------
// Compressed-format GEMMs (both are the NT linear-layer form Y = X W'^T).
// ---------------------------------------------------------------------------

// Fused group-wise-dequant GEMM: decodes packed codes a register panel at a
// time instead of materializing a dense weight row. Bit-identical to
// MatmulNT(x, w.Dequantize()).
inline Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w) {
  return ActiveBackend().quant_gemm_nt(x, w);
}

// Blocked gather GEMM over the 2:4 stored slots with per-block precomputed
// column indices. Bit-identical to the historical row-at-a-time kernel (which
// walks kept slots in storage order).
inline Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w) {
  return ActiveBackend().sparse24_gemm_nt(x, w);
}

// Blocked (32x32 tile) transpose.
inline Matrix Transpose(const Matrix& m) {
  return ActiveBackend().transpose(m);
}

// ---------------------------------------------------------------------------
// Retained naive reference kernels (the exact pre-kernel-layer loops). Slow;
// exist so the parity tests can prove bit-identity of every backend.
// ---------------------------------------------------------------------------
namespace ref {

Matrix GemmNN(const Matrix& a, const Matrix& b);
Matrix GemmNT(const Matrix& a, const Matrix& b);
Matrix GemmTN(const Matrix& a, const Matrix& b);
Matrix QuantGemmNT(const Matrix& x, const PackedQuantMatrix& w);
Matrix Sparse24GemmNT(const Matrix& x, const Sparse24Matrix& w);
Matrix Transpose(const Matrix& m);

}  // namespace ref

}  // namespace kernels
}  // namespace dz

#endif  // SRC_TENSOR_KERNELS_H_
