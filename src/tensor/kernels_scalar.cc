// Scalar (portable C++) kernel backend — always compiled, last in probe
// order, and the reference point for the bit-identity contract: every other
// backend must produce byte-identical results to this one (which in turn
// matches kernels::ref by the parity tests).
//
// Built WITHOUT any -m flags so the binary runs on any CPU the toolchain
// targets. Inner loops are the ScalarOps defaults from kernels_generic.h:
// plain loops with multi-accumulator interleaving (pure ILP, no reordering of
// any per-element reduction chain).
#include "src/tensor/kernels_generic.h"

namespace dz {
namespace kernels {

const Backend* GetScalarBackend() {
  return MakeBackendTable<ScalarOps>("scalar", "portable C++ (no SIMD)");
}

}  // namespace kernels
}  // namespace dz
