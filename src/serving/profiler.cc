#include "src/serving/profiler.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace dz {

NProfileResult ProfileConcurrentDeltas(const EngineConfig& config, const Trace& trace,
                                       const std::vector<int>& candidates,
                                       double profile_seconds) {
  DZ_CHECK(!candidates.empty());
  DZ_CHECK_GT(profile_seconds, 0.0);

  Trace prefix;
  prefix.n_models = trace.n_models;
  prefix.duration_s = std::min(trace.duration_s, profile_seconds);
  for (const auto& r : trace.requests) {
    if (r.arrival_s < profile_seconds) {
      prefix.requests.push_back(r);
    }
  }
  DZ_CHECK(!prefix.requests.empty());

  NProfileResult result;
  double best = std::numeric_limits<double>::infinity();
  for (int n : candidates) {
    EngineConfig cfg = config;
    cfg.max_concurrent_deltas = n;
    const ServeReport report = MakeDeltaZipEngine(cfg)->Serve(prefix);
    const double tpt = report.MeanTimePerToken();
    result.samples.emplace_back(n, tpt);
    if (tpt < best) {
      best = tpt;
      result.best_n = n;
    }
  }
  return result;
}

std::vector<int> PartitionGpus(int total_gpus, const std::vector<double>& load,
                               const std::vector<int>& min_gpus) {
  DZ_CHECK_EQ(load.size(), min_gpus.size());
  DZ_CHECK(!load.empty());
  int min_total = 0;
  double load_total = 0.0;
  for (size_t i = 0; i < load.size(); ++i) {
    DZ_CHECK_GE(load[i], 0.0);
    DZ_CHECK_GE(min_gpus[i], 1);
    min_total += min_gpus[i];
    load_total += load[i];
  }
  DZ_CHECK_LE(min_total, total_gpus);

  std::vector<int> alloc(min_gpus.begin(), min_gpus.end());
  int spare = total_gpus - min_total;
  // Hand out spare GPUs one at a time to the group with the highest load per GPU —
  // a greedy proportional-fairness rule.
  while (spare > 0) {
    size_t best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < load.size(); ++i) {
      const double score =
          (load_total > 0.0 ? load[i] : 1.0) / static_cast<double>(alloc[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    ++alloc[best];
    --spare;
  }
  return alloc;
}

}  // namespace dz
