#include "src/serving/report.h"

#include "src/util/stats.h"

namespace dz {

double ServeReport::ThroughputRps() const {
  if (records.empty() || makespan_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(records.size()) / makespan_s;
}

double ServeReport::TokenThroughput() const {
  if (records.empty() || makespan_s <= 0.0) {
    return 0.0;
  }
  double tokens = 0.0;
  for (const auto& r : records) {
    tokens += r.output_tokens;
  }
  return tokens / makespan_s;
}

double ServeReport::MeanE2e() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.E2eLatency());
  }
  return s.mean();
}

double ServeReport::MeanTtft() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.Ttft());
  }
  return s.mean();
}

double ServeReport::TotalLoadingTime() const {
  double total = 0.0;
  for (const auto& r : records) {
    total += r.LoadingTime();
  }
  return total;
}

double ServeReport::MeanTimePerToken() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.TimePerToken());
  }
  return s.mean();
}

std::vector<double> ServeReport::E2es() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(r.E2eLatency());
  }
  return out;
}

std::vector<double> ServeReport::Ttfts() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(r.Ttft());
  }
  return out;
}

double ServeReport::SloAttainmentE2e(double slo_s) const {
  return FractionWithin(E2es(), slo_s);
}

double ServeReport::SloAttainmentTtft(double slo_s) const {
  return FractionWithin(Ttfts(), slo_s);
}

}  // namespace dz
