#include "src/serving/report.h"

#include "src/util/stats.h"
#include "src/util/table.h"

namespace dz {

double ServeReport::ThroughputRps() const {
  if (records.empty() || makespan_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(records.size()) / makespan_s;
}

double ServeReport::TokenThroughput() const {
  if (records.empty() || makespan_s <= 0.0) {
    return 0.0;
  }
  double tokens = 0.0;
  for (const auto& r : records) {
    tokens += r.output_tokens;
  }
  return tokens / makespan_s;
}

double ServeReport::MeanE2e() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.E2eLatency());
  }
  return s.mean();
}

double ServeReport::MeanTtft() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.Ttft());
  }
  return s.mean();
}

double ServeReport::TotalLoadingTime() const {
  double total = 0.0;
  for (const auto& r : records) {
    total += r.LoadingTime();
  }
  return total;
}

double ServeReport::MeanTimePerToken() const {
  RunningStats s;
  for (const auto& r : records) {
    s.Add(r.TimePerToken());
  }
  return s.mean();
}

std::vector<double> ServeReport::E2es() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(r.E2eLatency());
  }
  return out;
}

std::vector<double> ServeReport::Ttfts() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(r.Ttft());
  }
  return out;
}

double ServeReport::SloAttainmentE2e(double slo_s) const {
  return FractionWithin(E2es(), slo_s);
}

double ServeReport::SloAttainmentTtft(double slo_s) const {
  return FractionWithin(Ttfts(), slo_s);
}

int ServeReport::TotalShed() const {
  int total = 0;
  for (int c : shed_by_class) {
    total += c;
  }
  return total;
}

size_t ServeReport::ClassCompleted(SloClass slo) const {
  size_t count = 0;
  for (const auto& r : records) {
    if (r.slo == slo) {
      ++count;
    }
  }
  return count;
}

double ServeReport::ClassAttainment(SloClass slo) const {
  const SloSpec& spec = slo_spec.Of(slo);
  size_t met = 0;
  size_t total = static_cast<size_t>(shed_by_class[static_cast<int>(slo)]);
  for (const auto& r : records) {
    if (r.slo != slo) {
      continue;
    }
    ++total;
    if (r.Ttft() <= spec.ttft_s && r.E2eLatency() <= spec.e2e_s) {
      ++met;
    }
  }
  // A class nobody used has nothing to miss: vacuous attainment, never 0/0.
  if (total == 0) {
    return 1.0;
  }
  return static_cast<double>(met) / static_cast<double>(total);
}

std::vector<double> ServeReport::TenantOutputTokens() const {
  std::vector<double> tokens(static_cast<size_t>(n_tenants > 0 ? n_tenants : 1), 0.0);
  for (const auto& r : records) {
    if (r.tenant_id >= 0 && static_cast<size_t>(r.tenant_id) < tokens.size()) {
      tokens[static_cast<size_t>(r.tenant_id)] += static_cast<double>(r.output_tokens);
    }
  }
  return tokens;
}

double ServeReport::JainFairnessIndex() const {
  const std::vector<double> tokens = TenantOutputTokens();
  if (tokens.size() <= 1) {
    return 1.0;  // a single tenant (or none) is trivially fair
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : tokens) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) {
    return 1.0;  // nothing served: equally (un)fair to everyone
  }
  return sum * sum / (static_cast<double>(tokens.size()) * sum_sq);
}

bool ServeReport::HasPathAttribution() const {
  for (const PathAttribution& a : path_by_class) {
    if (a.n > 0) {
      return true;
    }
  }
  return false;
}

std::vector<RequestPathBreakdown> ComputeCriticalPaths(const ServeReport& report) {
  std::vector<RequestTimes> times;
  times.reserve(report.records.size());
  for (const RequestRecord& r : report.records) {
    RequestTimes t;
    t.id = r.id;
    t.slo = r.slo;
    t.arrival_s = r.arrival_s;
    t.sched_attempt_s = r.sched_attempt_s;
    t.start_s = r.start_s;
    t.first_token_s = r.first_token_s;
    t.finish_s = r.finish_s;
    t.preemptions = r.preemptions;
    times.push_back(t);
  }
  return AttributeRequests(times, report.trace_events);
}

void MaterializeReportFromSnapshot(ServeReport& report) {
  const MetricsSnapshot& m = report.metrics;
  report.total_loads = static_cast<int>(m.Value("store.loads.total"));
  report.disk_loads = static_cast<int>(m.Value("store.loads.disk"));
  report.prefetch_issued = static_cast<int>(m.Value("store.prefetch.issued"));
  report.prefetch_hits = static_cast<int>(m.Value("store.prefetch.hits"));
  report.prefetch_wasted = static_cast<int>(m.Value("store.prefetch.wasted"));
  report.stall_hidden_s = m.Value("store.prefetch.stall_hidden_s");
  report.disk_busy_s = m.Value("store.channel.busy_s", {{"channel", "disk"}});
  report.pcie_busy_s = m.Value("store.channel.busy_s", {{"channel", "pcie"}});
  for (int c = 0; c < kNumSloClasses; ++c) {
    report.shed_by_class[static_cast<size_t>(c)] = static_cast<int>(
        m.Value("sched.shed", {{"class", SloClassName(static_cast<SloClass>(c))}}));
  }
}

void FinalizeServeMetrics(MetricsRegistry& registry, ServeReport& report) {
  report.metrics = registry.Snapshot(report.makespan_s);
  MaterializeReportFromSnapshot(report);
}

void AppendTenantRows(Table& table, const ServeReport& report) {
  if (report.n_tenants <= 1 && report.TotalShed() == 0) {
    return;  // single-tenant output matches the pre-tenant rendering
  }
  table.AddRow({"tenants", std::to_string(report.n_tenants)});
  for (int c = 0; c < kNumSloClasses; ++c) {
    const SloClass slo = static_cast<SloClass>(c);
    table.AddRow({std::string("SLO attain ") + SloClassName(slo) + " (class deadlines)",
                  Table::Num(report.ClassAttainment(slo), 3)});
  }
  table.AddRow({"Jain fairness (tenant tokens)",
                Table::Num(report.JainFairnessIndex(), 3)});
  std::string shed;
  std::string shed_label = "shed (";
  for (int c = 0; c < kNumSloClasses; ++c) {
    if (c > 0) {
      shed += "/";
      shed_label += "/";
    }
    shed += std::to_string(report.shed_by_class[static_cast<size_t>(c)]);
    shed_label += SloClassName(static_cast<SloClass>(c));
  }
  table.AddRow({shed_label + ")", shed});
}

void AppendAttributionRows(Table& table, const ServeReport& report) {
  if (!report.HasPathAttribution()) {
    return;  // untraced runs render exactly as before
  }
  for (int c = 0; c < kNumSloClasses; ++c) {
    const PathAttribution& a = report.path_by_class[static_cast<size_t>(c)];
    if (a.n == 0) {
      continue;
    }
    const double n = static_cast<double>(a.n);
    const std::string cls = SloClassName(static_cast<SloClass>(c));
    table.AddRow({"E2E breakdown " + cls + " q/l/c/p (s)",
                  Table::Num(a.e2e.queue_s / n, 2) + "/" +
                      Table::Num(a.e2e.load_s / n, 2) + "/" +
                      Table::Num(a.e2e.compute_s / n, 2) + "/" +
                      Table::Num(a.e2e.preempt_s / n, 2)});
    table.AddRow({"TTFT breakdown " + cls + " q/l/c/p (s)",
                  Table::Num(a.ttft.queue_s / n, 2) + "/" +
                      Table::Num(a.ttft.load_s / n, 2) + "/" +
                      Table::Num(a.ttft.compute_s / n, 2) + "/" +
                      Table::Num(a.ttft.preempt_s / n, 2)});
    if (a.incomplete > 0) {
      table.AddRow({"attribution incomplete " + cls,
                    std::to_string(a.incomplete) + "/" + std::to_string(a.n)});
    }
  }
}

}  // namespace dz
