#include "src/serving/artifact_store.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace dz {

ArtifactStore::ArtifactStore(const ArtifactStoreConfig& config, int n_artifacts)
    : config_(config), entries_(static_cast<size_t>(n_artifacts)) {
  DZ_CHECK_GT(config_.artifact_bytes, 0u);
}

bool ArtifactStore::IsResident(int id, double now) const {
  const Entry& e = entries_[static_cast<size_t>(id)];
  return e.tier == Tier::kGpu && e.ready_at <= now;
}

bool ArtifactStore::IsLoading(int id, double now) const {
  const Entry& e = entries_[static_cast<size_t>(id)];
  return e.in_flight && e.ready_at > now;
}

int ArtifactStore::GpuCapacity() const {
  return static_cast<int>(config_.gpu_budget_bytes / config_.artifact_bytes);
}

int ArtifactStore::GpuCount(double now) const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.tier == Tier::kGpu) {
      ++n;
    }
  }
  return n;
}

bool ArtifactStore::EvictOne(double now, const std::vector<int>& pinned) {
  int victim = -1;
  double oldest = std::numeric_limits<double>::infinity();
  for (int id = 0; id < static_cast<int>(entries_.size()); ++id) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    if (e.tier != Tier::kGpu || (e.in_flight && e.ready_at > now)) {
      continue;
    }
    if (std::find(pinned.begin(), pinned.end(), id) != pinned.end()) {
      continue;
    }
    if (e.last_use < oldest) {
      oldest = e.last_use;
      victim = id;
    }
  }
  if (victim < 0) {
    return false;
  }
  Entry& e = entries_[static_cast<size_t>(victim)];
  // Demote to host if the host cache can plausibly hold it, else to disk. Host
  // occupancy is approximated by capacity count (artifacts are uniform-sized).
  const size_t cpu_slots = config_.cpu_budget_bytes / config_.artifact_bytes;
  size_t on_cpu = 0;
  for (const Entry& other : entries_) {
    if (other.tier == Tier::kCpu) {
      ++on_cpu;
    }
  }
  e.tier = on_cpu < cpu_slots ? Tier::kCpu : Tier::kDisk;
  e.in_flight = false;
  return true;
}

ArtifactStore::LoadResult ArtifactStore::RequestLoad(int id, double now,
                                                     const std::vector<int>& pinned) {
  Entry& e = entries_[static_cast<size_t>(id)];
  if (e.tier == Tier::kGpu) {
    return {true, e.ready_at};  // resident or already arriving
  }
  if (e.in_flight) {
    return {true, e.ready_at};
  }
  // Make room.
  while (GpuCount(now) >= GpuCapacity()) {
    if (!EvictOne(now, pinned)) {
      return {false, 0.0};
    }
  }
  double ready = now;
  if (e.tier == Tier::kDisk) {
    const double start = std::max(now, disk_free_at_);
    ready = start + config_.disk_read_s;
    disk_free_at_ = ready;
    ++disk_loads_;
  }
  const double h2d_start = std::max(ready, pcie_free_at_);
  ready = h2d_start + config_.h2d_s;
  pcie_free_at_ = ready;

  e.tier = Tier::kGpu;
  e.in_flight = true;
  e.ready_at = ready;
  e.last_use = now;
  ++total_loads_;
  return {true, ready};
}

void ArtifactStore::Touch(int id, double now) {
  Entry& e = entries_[static_cast<size_t>(id)];
  e.last_use = now;
  if (e.in_flight && e.ready_at <= now) {
    e.in_flight = false;
  }
}

double ArtifactStore::NextLoadReady(double now) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    if (e.in_flight && e.ready_at > now) {
      best = std::min(best, e.ready_at);
    }
  }
  return best;
}

}  // namespace dz
