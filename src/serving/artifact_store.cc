#include "src/serving/artifact_store.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace dz {

ArtifactStore::ArtifactStore(const ArtifactStoreConfig& config, int n_artifacts,
                             MetricsRegistry* registry, TraceRecorder* recorder)
    : config_(config), entries_(static_cast<size_t>(n_artifacts)),
      recorder_(recorder) {
  DZ_CHECK_GT(config_.artifact_bytes, 0u);
  // Validate + normalize the outage windows once: inverted windows are caller
  // bugs, zero-length windows cover no instant (the window test is
  // start <= t < end), and overlapping/abutting windows per channel merge so
  // DeferPastOutages walks a minimal deterministic list. Merging is a semantic
  // no-op (the defer loop already iterates to a fixpoint), so default and
  // fault-injected runs stay bit-identical.
  for (const ChannelOutage& o : config_.outages) {
    DZ_CHECK_LE(o.start_s, o.end_s);
  }
  std::stable_sort(config_.outages.begin(), config_.outages.end(),
                   [](const ChannelOutage& a, const ChannelOutage& b) {
                     if (a.channel != b.channel) {
                       return static_cast<int>(a.channel) < static_cast<int>(b.channel);
                     }
                     return a.start_s != b.start_s ? a.start_s < b.start_s
                                                   : a.end_s < b.end_s;
                   });
  std::vector<ChannelOutage> merged;
  for (const ChannelOutage& o : config_.outages) {
    if (o.end_s <= o.start_s) {
      continue;  // zero-length window: unsatisfiable, drop
    }
    if (!merged.empty() && merged.back().channel == o.channel &&
        o.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, o.end_s);
    } else {
      merged.push_back(o);
    }
  }
  config_.outages = std::move(merged);
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = owned_registry_.get();
  }
  loads_total_ = registry->GetCounter("store.loads.total");
  loads_disk_ = registry->GetCounter("store.loads.disk");
  prefetch_issued_ = registry->GetCounter("store.prefetch.issued");
  prefetch_hits_ = registry->GetCounter("store.prefetch.hits");
  prefetch_wasted_ = registry->GetCounter("store.prefetch.wasted");
  stall_hidden_s_ = registry->GetCounter("store.prefetch.stall_hidden_s");
  disk_busy_s_ = registry->GetCounter("store.channel.busy_s", {{"channel", "disk"}});
  pcie_busy_s_ = registry->GetCounter("store.channel.busy_s", {{"channel", "pcie"}});
  gpu_resident_ = registry->GetGauge("store.gpu.resident");
  if (config_.registry != nullptr) {
    // Registry instruments exist only in registry mode, so registry-off
    // snapshots (and JSONL exports) carry no new keys.
    reads_local_ = registry->GetCounter("registry.reads.local");
    reads_remote_ = registry->GetCounter("registry.reads.remote");
    reads_degraded_ = registry->GetCounter("registry.reads.degraded");
    unavailable_ = registry->GetCounter("registry.unavailable");
    net_busy_s_ = registry->GetCounter("registry.net.busy_s");
    net_bytes_ = registry->GetCounter("registry.net.bytes");
    // The local tier starts with what this node durably holds (full copies it
    // is a registry holder of) plus the carried cache contents.
    local_.assign(static_cast<size_t>(n_artifacts), 0);
    for (int id = 0; id < n_artifacts; ++id) {
      if (config_.registry->NodeHoldsFullCopy(id, config_.registry_node)) {
        local_[static_cast<size_t>(id)] = 1;
      }
    }
    for (int id : config_.registry_warm) {
      DZ_CHECK_GE(id, 0);
      DZ_CHECK_LT(id, n_artifacts);
      local_[static_cast<size_t>(id)] = 1;
    }
  }
}

bool ArtifactStore::IsResident(int id, double now) const {
  const Entry& e = entries_[static_cast<size_t>(id)];
  return e.tier == Tier::kGpu && e.ready_at <= now;
}

bool ArtifactStore::IsLoading(int id, double now) const {
  const Entry& e = entries_[static_cast<size_t>(id)];
  return e.in_flight && e.ready_at > now;
}

int ArtifactStore::GpuCapacity() const {
  return static_cast<int>(config_.gpu_budget_bytes / config_.artifact_bytes);
}

int ArtifactStore::GpuCount(double now) const {
  int n = 0;
  for (const Entry& e : entries_) {
    if (e.tier == Tier::kGpu) {
      ++n;
    }
  }
  return n;
}

bool ArtifactStore::EvictOne(double now, const std::vector<int>& pinned,
                             bool spare_prefetched) {
  int victim = -1;
  double oldest = std::numeric_limits<double>::infinity();
  for (int id = 0; id < static_cast<int>(entries_.size()); ++id) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    if (e.tier != Tier::kGpu || (e.in_flight && e.ready_at > now)) {
      continue;
    }
    if (spare_prefetched && e.prefetched) {
      continue;  // one speculation never cannibalizes another (anti-thrash)
    }
    if (std::find(pinned.begin(), pinned.end(), id) != pinned.end()) {
      continue;
    }
    if (e.last_use < oldest) {
      oldest = e.last_use;
      victim = id;
    }
  }
  if (victim < 0) {
    return false;
  }
  Entry& e = entries_[static_cast<size_t>(victim)];
  if (e.prefetched) {
    // Warmed speculatively, evicted before any demand use: the prefetch was wasted.
    prefetch_wasted_->Inc();
    e.prefetched = false;
  }
  // Demote to host if the host cache can plausibly hold it, else to disk. Host
  // occupancy is approximated by capacity count (artifacts are uniform-sized).
  const size_t cpu_slots = config_.cpu_budget_bytes / config_.artifact_bytes;
  size_t on_cpu = 0;
  for (const Entry& other : entries_) {
    if (other.tier == Tier::kCpu) {
      ++on_cpu;
    }
  }
  e.tier = on_cpu < cpu_slots ? Tier::kCpu : Tier::kDisk;
  e.in_flight = false;
  gpu_resident_->Set(static_cast<double>(GpuCount(now)));
  return true;
}

double ArtifactStore::DeferPastOutages(TraceChannel channel, double t) const {
  // Windows may abut or overlap (e.g. repeated partitions), so keep deferring
  // until a full pass over the list moves the start no further.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const ChannelOutage& o : config_.outages) {
      if (o.channel == channel && t >= o.start_s && t < o.end_s) {
        t = o.end_s;
        moved = true;
      }
    }
  }
  return t;
}

void ArtifactStore::ResolvePrefetchHit(Entry& e, double now) {
  // A demand request found the artifact warmed: the wait it skipped is the transfer
  // the prefetch paid, minus whatever is still in flight at `now`.
  const double remaining = std::max(0.0, e.ready_at - now);
  stall_hidden_s_->Inc(std::max(0.0, e.prefetch_cost_s - remaining));
  prefetch_hits_->Inc();
  e.prefetched = false;
}

ArtifactStore::LoadResult ArtifactStore::IssueLoad(int id, double now,
                                                   const std::vector<int>& pinned,
                                                   bool is_prefetch) {
  Entry& e = entries_[static_cast<size_t>(id)];
  if (e.tier == Tier::kGpu) {
    if (!is_prefetch && e.prefetched) {
      ResolvePrefetchHit(e, now);
    }
    return {true, e.ready_at};  // resident or already arriving
  }
  if (e.in_flight) {
    return {true, e.ready_at};
  }
  // Registry tier chain: a disk-tier artifact this node does not hold locally
  // must come over the network from the registry's live holders. Resolve the
  // plan BEFORE evicting anything — an unavailable artifact must not cost a
  // resident one its slot.
  FetchPlan plan;
  bool remote = false;
  if (e.tier == Tier::kDisk && config_.registry != nullptr &&
      local_[static_cast<size_t>(id)] == 0) {
    plan = config_.registry->PlanFetch(id, config_.registry_node,
                                       static_cast<double>(config_.artifact_bytes));
    if (!plan.available) {
      if (!is_prefetch) {
        unavailable_->Inc();
      }
      return {false, 0.0, /*unavailable=*/true};
    }
    if (plan.local_full) {
      // Enough fragments live here to assemble without the network (e.g. a
      // repair-installed full copy): promote to the local tier outright.
      local_[static_cast<size_t>(id)] = 1;
    } else {
      remote = true;
    }
  }
  // Prefetches are low-priority: they only claim a channel that is idle right
  // now, so a speculative transfer can delay a demand load by at most the one
  // transfer already in progress (real prefetchers exploit spare bandwidth, they
  // do not queue ahead of demand). Callers simply retry next scheduling round.
  if (is_prefetch) {
    if (remote) {
      if (net_free_at_ > now) {
        return {false, 0.0};
      }
    } else if (e.tier == Tier::kDisk && disk_free_at_ > now) {
      return {false, 0.0};
    }
    if (pcie_free_at_ > now) {
      return {false, 0.0};
    }
  }
  // Make room. A prefetch may evict idle demand-loaded artifacts (a queued
  // request is more certain than speculative reuse) but never another unused
  // prefetched entry — otherwise a wide lookahead rotates speculations through
  // the staging headroom, re-paying the same transfers every round.
  while (GpuCount(now) >= GpuCapacity()) {
    if (!EvictOne(now, pinned, /*spare_prefetched=*/is_prefetch)) {
      return {false, 0.0};
    }
  }
  // One channel-occupancy span per transfer segment: when the artifact starts
  // on disk, a disk-read span followed by the (possibly later, the PCIe
  // channel may be busy) H2D span.
  const TraceEventType span_type = is_prefetch ? TraceEventType::kStorePrefetch
                                               : TraceEventType::kStoreLoad;
  double ready = now;
  double cost = 0.0;
  if (remote) {
    // Remote fetch: registry holder(s) → this node's host memory over the
    // bounded-bandwidth net channel (plus erasure decode when parity had to
    // participate). The bytes land in the local cache tier, so every later
    // load of this artifact pays disk/PCIe only.
    const double net_s =
        config_.registry->NetSeconds(plan.remote_bytes) + plan.decode_s;
    const double start =
        DeferPastOutages(TraceChannel::kNet, std::max(now, net_free_at_));
    ready = start + net_s;
    net_free_at_ = ready;
    net_busy_s_->Inc(net_s);
    net_bytes_->Inc(plan.remote_bytes);
    reads_remote_->Inc();
    if (plan.degraded) {
      reads_degraded_->Inc();
    }
    cost += net_s;
    local_[static_cast<size_t>(id)] = 1;
    if (recorder_ != nullptr) {
      TraceEvent ev;
      ev.type = TraceEventType::kStoreRemote;
      ev.ts_s = start;
      ev.dur_s = net_s;
      ev.model_id = id;
      ev.channel = TraceChannel::kNet;
      ev.bytes = plan.remote_bytes;
      ev.aux = plan.degraded ? 1 : 0;
      recorder_->Emit(ev);
    }
  } else if (e.tier == Tier::kDisk) {
    const double start =
        DeferPastOutages(TraceChannel::kDisk, std::max(now, disk_free_at_));
    ready = start + config_.disk_read_s;
    disk_free_at_ = ready;
    disk_busy_s_->Inc(config_.disk_read_s);
    cost += config_.disk_read_s;
    loads_disk_->Inc();
    if (reads_local_ != nullptr) {
      reads_local_->Inc();
    }
    if (recorder_ != nullptr) {
      TraceEvent ev;
      ev.type = span_type;
      ev.ts_s = start;
      ev.dur_s = config_.disk_read_s;
      ev.model_id = id;
      ev.channel = TraceChannel::kDisk;
      ev.bytes = static_cast<double>(config_.artifact_bytes);
      recorder_->Emit(ev);
    }
  }
  const double h2d_start =
      DeferPastOutages(TraceChannel::kPcie, std::max(ready, pcie_free_at_));
  ready = h2d_start + config_.h2d_s;
  pcie_free_at_ = ready;
  pcie_busy_s_->Inc(config_.h2d_s);
  cost += config_.h2d_s;
  if (recorder_ != nullptr) {
    TraceEvent ev;
    ev.type = span_type;
    ev.ts_s = h2d_start;
    ev.dur_s = config_.h2d_s;
    ev.model_id = id;
    ev.channel = TraceChannel::kPcie;
    ev.bytes = static_cast<double>(config_.artifact_bytes);
    recorder_->Emit(ev);
  }

  e.tier = Tier::kGpu;
  e.in_flight = true;
  e.ready_at = ready;
  e.last_use = now;
  e.prefetched = is_prefetch;
  e.prefetch_cost_s = is_prefetch ? cost : 0.0;
  loads_total_->Inc();
  if (is_prefetch) {
    prefetch_issued_->Inc();
  }
  gpu_resident_->Set(static_cast<double>(GpuCount(now)));
  return {true, ready};
}

ArtifactStore::LoadResult ArtifactStore::RequestLoad(int id, double now,
                                                     const std::vector<int>& pinned) {
  return IssueLoad(id, now, pinned, /*is_prefetch=*/false);
}

ArtifactStore::LoadResult ArtifactStore::Prefetch(int id, double now,
                                                  const std::vector<int>& pinned) {
  return IssueLoad(id, now, pinned, /*is_prefetch=*/true);
}

void ArtifactStore::Touch(int id, double now) {
  Entry& e = entries_[static_cast<size_t>(id)];
  if (e.prefetched && e.tier == Tier::kGpu) {
    ResolvePrefetchHit(e, now);
  }
  e.last_use = now;
  if (e.in_flight && e.ready_at <= now) {
    e.in_flight = false;
  }
}

std::vector<int> ArtifactStore::LocallyCached() const {
  std::vector<int> out;
  for (size_t id = 0; id < local_.size(); ++id) {
    if (local_[id] != 0) {
      out.push_back(static_cast<int>(id));
    }
  }
  return out;
}

double ArtifactStore::NextLoadReady(double now) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    if (e.in_flight && e.ready_at > now) {
      best = std::min(best, e.ready_at);
    }
  }
  return best;
}

}  // namespace dz
