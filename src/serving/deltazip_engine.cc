// DeltaZip serving engine (paper §5): keeps the base model resident, swaps compact
// per-variant artifacts (compressed deltas or LoRA adapters), batches requests across
// variants for the shared base-model GEMMs, and runs the variant-specific computation
// through the SBMM execution model. Scheduling is iteration-level FCFS with
// skip-the-line admission and parent-finish preemption (§5.4).
#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "src/metrics/metrics.h"
#include "src/serving/artifact_store.h"
#include "src/serving/engine.h"
#include "src/serving/prefetcher.h"
#include "src/serving/scheduler.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace dz {

namespace {

struct PendingReq {
  TraceRequest req;
  double sched_attempt_s = -1.0;  // first time the scheduler considered it
  double fair_tag = -1.0;         // DWFQ virtual finish tag (kept across preemption)
  double min_service_s = -1.0;    // cached optimistic service estimate (admission)
  int decoded = 0;                // > 0 for resumed (preempted) requests
  bool has_first_token = false;
  double first_token_s = 0.0;
  double start_s = -1.0;
  int preemptions = 0;
};

struct RunningReq {
  PendingReq state;
  bool prefilled = false;   // resumed requests skip prefill (KV restored instead)
  bool needs_kv_restore = false;
  bool is_skipper = false;
  int parent_id = -1;  // request id of the parent (for preemption)
};

class DeltaZipEngine : public ServingEngine {
 public:
  explicit DeltaZipEngine(const EngineConfig& config)
      : config_(config), exec_(config.exec) {
    DZ_CHECK_NE(static_cast<int>(config.artifact),
                static_cast<int>(ArtifactKind::kFullModel));
  }

  const char* name() const override {
    return config_.artifact == ArtifactKind::kLoraAdapter ? "deltazip-lora" : "deltazip";
  }

  ServeReport Serve(const Trace& trace) override;

 private:
  size_t ArtifactBytes() const {
    return config_.artifact == ArtifactKind::kLoraAdapter
               ? exec_.LoraBytesPerGpu(config_.lora_rank)
               : exec_.DeltaBytesPerGpu();
  }

  double ArtifactDecodeIter(const std::vector<int>& reqs_per_variant) const {
    return config_.artifact == ArtifactKind::kLoraAdapter
               ? exec_.LoraDecodeIterTime(reqs_per_variant, config_.lora_rank)
               : exec_.DeltaDecodeIterTime(reqs_per_variant);
  }

  double ArtifactPrefill(long long tokens) const {
    return config_.artifact == ArtifactKind::kLoraAdapter
               ? exec_.LoraPrefillTime(tokens, config_.lora_rank)
               : exec_.DeltaPrefillTime(tokens);
  }

  EngineConfig config_;
  ExecModel exec_;
};

ServeReport DeltaZipEngine::Serve(const Trace& trace) {
  ServeReport report;
  report.engine_name = name();

  // One registry per engine run (share-nothing: cluster workers run Serve on
  // parallel threads, and snapshots merge at the cluster layer instead). Every
  // stat of this run lives here; the ServeReport scalar fields are materialized
  // from the final snapshot by FinalizeServeMetrics.
  MetricsRegistry registry;
  Counter* shed_count[kNumSloClasses];
  Counter* completed_count[kNumSloClasses];
  LogHistogram* e2e_hist[kNumSloClasses];
  LogHistogram* ttft_hist[kNumSloClasses];
  for (int c = 0; c < kNumSloClasses; ++c) {
    const MetricLabels by_class = {
        {"class", SloClassName(static_cast<SloClass>(c))}};
    shed_count[c] = registry.GetCounter("sched.shed", by_class);
    completed_count[c] = registry.GetCounter("engine.requests.completed", by_class);
    e2e_hist[c] = registry.GetHistogram("latency.e2e_s", by_class);
    ttft_hist[c] = registry.GetHistogram("latency.ttft_s", by_class);
  }
  LogHistogram* queue_hist = registry.GetHistogram("latency.queue_s");
  LogHistogram* load_hist = registry.GetHistogram("latency.load_s");
  Counter* tokens_out = registry.GetCounter("engine.tokens.output");
  Counter* tokens_prompt = registry.GetCounter("engine.tokens.prompt");
  Counter* preempt_count = registry.GetCounter("engine.preemptions");
  Counter* rounds_count = registry.GetCounter("engine.rounds");

  const size_t artifact_bytes = ArtifactBytes();
  const size_t total_mem =
      static_cast<size_t>(config_.exec.tp) * config_.exec.gpu.mem_bytes();
  const size_t reserve =
      static_cast<size_t>(total_mem * config_.kv_reserve_fraction);
  const size_t base_bytes = exec_.BaseWeightBytesPerGpu() * config_.exec.tp;
  DZ_CHECK_GT(total_mem, base_bytes + reserve);
  const size_t after_base = total_mem - base_bytes - reserve;
  // Artifact budget: up to N slots, but always leave a KV floor. On small GPUs the
  // effective number of co-resident deltas is therefore capacity-clamped below the
  // configured N (the same pressure paper Fig. 10 explores). Prefetch staging slots
  // add headroom on top of N — double-buffering space so speculative loads never
  // compete with the running batch's pinned artifacts — paid for out of the KV pool.
  // When the 0.9 cap already clamps the budget, the staging request is (partially)
  // denied, and only the granted slots are later excluded from scheduling.
  const int staging_slots =
      config_.prefetch.enabled ? std::max(0, config_.prefetch.staging_slots) : 0;
  const size_t slot_bytes = artifact_bytes * config_.exec.tp;
  const size_t demand_budget =
      std::min(static_cast<size_t>(after_base * 0.9),
               static_cast<size_t>(config_.max_concurrent_deltas) * slot_bytes);
  const size_t staging_cap =
      std::min(static_cast<size_t>(after_base * 0.9),
               static_cast<size_t>(config_.max_concurrent_deltas + staging_slots) *
                   slot_bytes);
  const int granted_staging = static_cast<int>((staging_cap - demand_budget) / slot_bytes);
  // Whole slots only: a fractional staging remainder would shrink the KV pool
  // without ever fitting an artifact.
  const size_t artifact_budget =
      demand_budget + static_cast<size_t>(granted_staging) * slot_bytes;
  const size_t kv_pool = after_base - artifact_budget;
  const long long kv_capacity_tokens = static_cast<long long>(
      kv_pool / std::max<size_t>(1, exec_.KvBytesPerTokenPerGpu() * config_.exec.tp));

  ArtifactStoreConfig store_config;
  store_config.artifact_bytes = artifact_bytes * config_.exec.tp;
  store_config.gpu_budget_bytes = artifact_budget;
  store_config.cpu_budget_bytes = static_cast<size_t>(config_.cpu_cache_gb * 1e9);
  store_config.disk_read_s = config_.artifact == ArtifactKind::kLoraAdapter
                                 ? exec_.kernels().DiskReadTime(
                                       config_.exec.shape.LoraBytes(config_.lora_rank))
                                 : exec_.LoadDeltaFromDisk();
  store_config.h2d_s = config_.artifact == ArtifactKind::kLoraAdapter
                           ? exec_.LoadLoraFromHost(config_.lora_rank)
                           : exec_.LoadDeltaFromHost();
  store_config.outages = config_.outages;
  store_config.registry = config_.registry;
  store_config.registry_node = config_.registry_node;
  store_config.registry_warm = config_.registry_warm;
  // Recorder before store: the store emits per-channel transfer spans into it.
  // Pure observation — no emission below feeds back into scheduling, so traced
  // runs stay bit-identical to untraced ones (golden-enforced).
  TraceRecorder recorder(config_.tracing);
  ArtifactStore store(store_config, trace.n_models, &registry, &recorder);
  DZ_CHECK_GE(store.GpuCapacity(), 1);
  // Scheduling concurrency excludes only the staging headroom the budget actually
  // granted: the batch still spans at most N variants, the spare slots stay
  // available for in-flight prefetches, and a memory-clamped budget (no extra
  // slots granted) never costs the scheduler a demand slot.
  const int effective_n = std::min(config_.max_concurrent_deltas,
                                   std::max(1, store.GpuCapacity() - granted_staging));

  // Placement-aware warm-up: the router's predicted tenants, drained one low-
  // priority transfer at a time (as channels go idle) starting at t = 0, so the
  // worker's expected deltas are warm by the time their requests arrive.
  std::deque<int> pending_hints =
      PendingWarmHints(config_.prefetch, trace.n_models, store.GpuCapacity());
  // Without granted staging headroom (memory-clamped budget), speculation has no
  // memory of its own to live in — every prefetch (lookahead or hint) would have
  // to evict working-set artifacts. Disable it entirely rather than thrash.
  PrefetchConfig effective_prefetch = config_.prefetch;
  if (granted_staging == 0) {
    effective_prefetch.enabled = false;
    pending_hints.clear();
  }

  std::deque<PendingReq> queue;
  std::vector<RunningReq> running;
  // Requests parked on a typed-unavailable artifact (every registry holder
  // dead). Registry liveness is constant within one Serve call, so retrying
  // would spin; they re-enter play only across epochs (halted runs) or fail
  // typed (natural runs).
  std::vector<PendingReq> blocked_unavailable;
  size_t next_arrival = 0;
  double now = config_.start_s;
  double pending_swap_s = 0.0;  // accumulated KV swap work for the next iteration
  FairQueue fair_queue(config_.scheduler);
  size_t shed_total = 0;  // loop control only; per-class counts live in the registry
  double next_snapshot_s = config_.start_s + config_.metrics.interval_s;

  // Request-attributed trace emission (one branch when tracing is off). kv.swap
  // is the only request event that occupies a channel (KV pages over PCIe).
  auto emit_req = [&](TraceEventType type, double ts, const TraceRequest& req,
                      double dur = 0.0, int aux = 0) {
    if (!recorder.enabled()) {
      return;
    }
    TraceEvent ev;
    ev.type = type;
    ev.ts_s = ts;
    ev.dur_s = dur;
    ev.request_id = req.id;
    ev.model_id = req.model_id;
    ev.tenant_id = req.tenant_id;
    ev.slo = req.slo;
    ev.aux = aux;
    if (type == TraceEventType::kKvSwap) {
      ev.channel = TraceChannel::kPcie;
    }
    recorder.Emit(ev);
  };

  auto ingest = [&](double t) {
    while (next_arrival < trace.requests.size() &&
           trace.requests[next_arrival].arrival_s <= t) {
      PendingReq p;
      p.req = trace.requests[next_arrival++];
      emit_req(TraceEventType::kRequestQueued, p.req.arrival_s, p.req);
      queue.push_back(p);
    }
    // Policy order doubles as the re-sort of preempted re-queued requests
    // (kFcfs is exactly the pre-scheduler stable sort by arrival).
    OrderQueueForPolicy(config_.scheduler, fair_queue, queue);
  };

  // Optimistic (lower-bound) service time for admission control: immediate
  // prefill plus every decode step at batch-1 iteration latency. Anything the
  // real schedule adds (queueing, loads, batching) only pushes the finish later,
  // so a deadline this estimate cannot meet is truly unmeetable. Resumed
  // (preempted) requests owe only their remaining tokens — their cache is
  // invalidated at preemption, so banked progress is never double-charged.
  auto min_service_s = [&](PendingReq& p) {
    if (p.min_service_s < 0.0) {
      const double ctx = static_cast<double>(p.req.prompt_tokens + p.decoded);
      if (p.decoded > 0) {
        // Resumed: KV restore instead of prefill, remaining decode steps only.
        p.min_service_s =
            static_cast<double>(std::max(0, p.req.output_tokens - p.decoded)) *
            exec_.DecodeIterTime(1, ctx);
      } else {
        p.min_service_s = exec_.PrefillTime(p.req.prompt_tokens) +
                          ArtifactPrefill(p.req.prompt_tokens) +
                          static_cast<double>(std::max(0, p.req.output_tokens - 1)) *
                              exec_.DecodeIterTime(1, ctx);
      }
    }
    return p.min_service_s;
  };

  auto kv_tokens_in_use = [&]() {
    long long total = 0;
    for (const auto& r : running) {
      total += r.state.req.prompt_tokens + r.state.req.output_tokens;
    }
    return total;
  };

  while (report.records.size() + shed_total + blocked_unavailable.size() <
         trace.requests.size()) {
    // Hard halt (elastic cluster epoch boundary / crash): stop scheduling.
    // Checked only here, so completions of the iteration in flight when the
    // clock crossed halt_s have already landed (documented approximation).
    if (now >= config_.halt_s) {
      break;
    }
    // In-run timeline: sample the registry on the simulated clock. Pure reads —
    // scheduling below is untouched, so any interval stays bit-identical.
    while (config_.metrics.interval_s > 0.0 && now >= next_snapshot_s) {
      report.timeline.push_back(registry.Snapshot(next_snapshot_s));
      next_snapshot_s += config_.metrics.interval_s;
    }
    rounds_count->Inc();
    ingest(now);

    // ---- admission control: shed requests whose deadline is already lost ----
    ShedUnmeetable(
        config_.scheduler, fair_queue, queue, now, min_service_s,
        [](const PendingReq& p) {
          // A resumed request already received prefill + `decoded` tokens.
          return p.decoded > 0 ? p.req.output_tokens - p.decoded
                               : p.req.prompt_tokens + p.req.output_tokens;
        },
        [&](const TraceRequest& req) {
          shed_count[static_cast<int>(req.slo)]->Inc();
          ++shed_total;
          emit_req(TraceEventType::kAdmissionShed, now, req);
        });
    if (report.records.size() + shed_total + blocked_unavailable.size() ==
        trace.requests.size()) {
      break;  // shedding retired the last outstanding requests: nothing left to
              // simulate, and the idle fast-forward below would have no event
    }

    // ---- scheduling: policy order + skip-the-line over at most N variants ----
    std::set<int> selected;  // variants used by running requests
    std::map<int, int> parent_of_variant;  // variant → running parent request id
    for (const auto& r : running) {
      selected.insert(r.state.req.model_id);
      if (!r.is_skipper) {
        auto it = parent_of_variant.find(r.state.req.model_id);
        if (it == parent_of_variant.end()) {
          parent_of_variant[r.state.req.model_id] = r.state.req.id;
        }
      }
    }
    std::vector<int> pinned(selected.begin(), selected.end());

    long long kv_used = kv_tokens_in_use();
    for (auto it = queue.begin();
         it != queue.end() && static_cast<int>(running.size()) < config_.max_batch;) {
      const int variant = it->req.model_id;
      const bool variant_selected = selected.count(variant) > 0;
      if (!variant_selected && static_cast<int>(selected.size()) >= effective_n) {
        if (!config_.skip_the_line) {
          break;  // strict FCFS: head-of-line blocks
        }
        ++it;
        continue;
      }
      const long long need = it->req.prompt_tokens + it->req.output_tokens;
      if (kv_used + need > kv_capacity_tokens) {
        // No KV space: strict FCFS would also block here.
        if (!config_.skip_the_line) {
          break;
        }
        ++it;
        continue;
      }
      if (it->sched_attempt_s < 0.0) {
        it->sched_attempt_s = now;
      }
      if (!store.IsResident(variant, now)) {
        const ArtifactStore::LoadResult load = store.RequestLoad(variant, now, pinned);
        if (load.ok) {
          selected.insert(variant);  // the slot is claimed while loading
          pinned.push_back(variant);
        } else if (load.unavailable) {
          // Typed registry failure: no live holder can source this artifact.
          // Park the request — spinning on it every round would starve the
          // idle fast-forward (no future event could ever admit it).
          blocked_unavailable.push_back(*it);
          it = queue.erase(it);
          continue;
        }
        // else: no evictable slot right now; retry next scheduling round.
        ++it;
        continue;  // admitted once the artifact lands
      }
      // Admit.
      store.Touch(variant, now);
      emit_req(TraceEventType::kSchedDispatch, now, it->req);
      if (config_.scheduler.policy == SchedPolicy::kDwfq) {
        fair_queue.OnAdmit(it->fair_tag);
      }
      RunningReq r;
      r.state = *it;
      r.state.start_s = r.state.start_s < 0.0 ? now : r.state.start_s;
      r.prefilled = r.state.decoded > 0;  // resumed requests keep their progress
      r.needs_kv_restore = r.state.decoded > 0;
      const bool first_for_variant = parent_of_variant.count(variant) == 0;
      if (first_for_variant) {
        parent_of_variant[variant] = r.state.req.id;
      } else {
        r.is_skipper = true;
        r.parent_id = parent_of_variant[variant];
      }
      selected.insert(variant);
      kv_used += need;
      running.push_back(std::move(r));
      it = queue.erase(it);
    }

    // ---- class preemption: interactive requests evict batch skippers ----
    // Reuses the parent-finish preemption machinery (KV swap to host, re-queue,
    // resume with restored progress): when interactive requests were considered
    // but left waiting this round, up to that many running batch-class skippers
    // yield their slots. Parents are never preempted — they anchor their
    // variant's batching, and evicting one would orphan its skippers.
    // Class preemption needs a class-aware queue order to make progress: under
    // FCFS the evicted batch skipper (earlier arrival) re-sorts ahead of the
    // blocked interactive request and reclaims the freed slot next round — an
    // admit/evict livelock that burns KV swaps. So the flag is honored only
    // for kPriority/kDwfq (documented in SchedulerConfig).
    if (config_.scheduler.class_preemption &&
        config_.scheduler.policy != SchedPolicy::kFcfs) {
      // Count only interactive requests a skipper eviction can actually help:
      // those blocked on KV space or batch slots (their variant already holds a
      // slot, or the batch is full). A request blocked on the N-variant cap
      // gains nothing from evicting a skipper — the skipper's variant slot
      // stays pinned by its parent — and preempting for it would just churn
      // admit/evict cycles of KV swaps with no forward progress.
      // A queued interactive request counts as blocked simply by still being
      // queued after the admission loop (under a class-aware order it would
      // have been admitted otherwise) — sched_attempt_s is NOT required, since
      // batch-full rounds skip the admission loop entirely and KV-blocked
      // requests bail before the stamp.
      const bool batch_full = static_cast<int>(running.size()) >= config_.max_batch;
      int blocked_interactive = 0;
      double min_blocked_tag = std::numeric_limits<double>::infinity();
      for (const auto& p : queue) {
        if (p.req.slo == SloClass::kInteractive &&
            (batch_full || selected.count(p.req.model_id) > 0)) {
          ++blocked_interactive;
          min_blocked_tag = std::min(min_blocked_tag, p.fair_tag);
        }
      }
      for (auto it = running.begin(); blocked_interactive > 0 && it != running.end();) {
        const int remaining = it->state.req.output_tokens - it->state.decoded;
        // Under kDwfq the evicted skipper keeps its fair tag, so only evict
        // skippers that will re-sort *behind* the blocked interactive request —
        // otherwise the tag-ordered queue hands the freed slot right back to
        // the skipper next round (the same churn the kFcfs gate prevents).
        const bool yields_to_interactive =
            config_.scheduler.policy != SchedPolicy::kDwfq ||
            it->state.fair_tag > min_blocked_tag;
        if (it->is_skipper && it->state.req.slo == SloClass::kBatch &&
            yields_to_interactive &&
            remaining > config_.preempt_min_remaining_tokens) {
          PendingReq back = it->state;
          ++back.preemptions;
          preempt_count->Inc();
          emit_req(TraceEventType::kKvPreempt, now, back.req);
          back.min_service_s = -1.0;  // re-estimate from the banked progress
          if (it->prefilled && !it->needs_kv_restore) {
            // Only KV actually materialized on the GPU costs a swap-out: a
            // skipper admitted this round has produced none, and a resumed one
            // whose restore has not run yet still has its state on the host.
            const double swap_s =
                exec_.KvSwapTime(back.req.prompt_tokens + back.decoded);
            pending_swap_s += swap_s;
            emit_req(TraceEventType::kKvSwap, now, back.req, swap_s, /*aux=*/0);
          }
          queue.push_back(back);  // keeps its fair_tag; re-ordered next ingest
          it = running.erase(it);
          --blocked_interactive;
        } else {
          ++it;
        }
      }
    }

    // ---- lookahead prefetch: warm the next W distinct waiting variants (§8) ----
    // Overlaps disk→CPU→GPU artifact movement with the iteration below. The pin
    // set is rebuilt from `selected` (running, claimed, and just-admitted
    // variants), so a prefetch can never evict an artifact the batch references.
    if (effective_prefetch.enabled) {
      RunPrefetchPass(store, effective_prefetch, now, queue, selected,
                      std::vector<int>(selected.begin(), selected.end()),
                      pending_hints);
    }

    if (running.empty()) {
      // The scheduling pass above may have parked the last outstanding
      // requests as unavailable: nothing is left to simulate, and the idle
      // fast-forward below would have no future event to jump to.
      if (report.records.size() + shed_total + blocked_unavailable.size() ==
          trace.requests.size()) {
        break;
      }
      // Idle: jump to the next arrival or load completion.
      double next_t = std::numeric_limits<double>::infinity();
      if (next_arrival < trace.requests.size()) {
        next_t = trace.requests[next_arrival].arrival_s;
      }
      next_t = std::min(next_t, store.NextLoadReady(now));
      DZ_CHECK(next_t < std::numeric_limits<double>::infinity());
      now = std::max(now, next_t);
      continue;
    }

    // ---- one continuous-batching iteration ----
    long long prefill_tokens = 0;
    std::vector<RunningReq*> prefilling;
    for (auto& r : running) {
      if (!r.prefilled && prefill_tokens + r.state.req.prompt_tokens <=
                              config_.max_prefill_tokens) {
        prefill_tokens += r.state.req.prompt_tokens;
        prefilling.push_back(&r);
      }
      if (r.needs_kv_restore) {
        const double swap_s =
            exec_.KvSwapTime(r.state.req.prompt_tokens + r.state.decoded);
        pending_swap_s += swap_s;
        emit_req(TraceEventType::kKvSwap, now, r.state.req, swap_s, /*aux=*/1);
        r.needs_kv_restore = false;
      }
    }

    int decode_batch = 0;
    double ctx_sum = 0.0;
    std::vector<int> reqs_per_variant(static_cast<size_t>(trace.n_models), 0);
    for (const auto& r : running) {
      if (r.prefilled) {
        ++decode_batch;
        ctx_sum += r.state.req.prompt_tokens + r.state.decoded;
        ++reqs_per_variant[static_cast<size_t>(r.state.req.model_id)];
      }
    }
    // Prefill tokens also ride the variant path.
    std::vector<int> prefill_per_variant(static_cast<size_t>(trace.n_models), 0);
    for (const auto* r : prefilling) {
      ++prefill_per_variant[static_cast<size_t>(r->state.req.model_id)];
    }

    double iter = config_.sched_overhead_s + pending_swap_s;
    pending_swap_s = 0.0;
    iter += exec_.PrefillTime(prefill_tokens) + ArtifactPrefill(prefill_tokens);
    if (decode_batch > 0) {
      iter += exec_.DecodeIterTime(decode_batch, ctx_sum / decode_batch);
      iter += ArtifactDecodeIter(reqs_per_variant);
    }
    if (config_.speed_factor != 1.0) {
      iter /= config_.speed_factor;  // slow-node fault: everything stretches
    }
    if (recorder.enabled()) {
      TraceEvent round;
      round.type = TraceEventType::kBatchRound;
      round.ts_s = now;
      round.dur_s = iter;
      round.aux = static_cast<int>(running.size());
      recorder.Emit(round);
    }
    now += iter;

    // ---- apply iteration results ----
    for (auto* r : prefilling) {
      r->prefilled = true;
      r->state.decoded = 1;  // prefill emits the first output token
      if (!r->state.has_first_token) {
        r->state.has_first_token = true;
        r->state.first_token_s = now;
        emit_req(TraceEventType::kRequestFirstToken, now, r->state.req);
      }
    }
    std::vector<int> finished_parents;
    for (auto& r : running) {
      if (!r.prefilled || (!prefilling.empty() &&
                           std::find(prefilling.begin(), prefilling.end(), &r) !=
                               prefilling.end())) {
        continue;  // prefilled this very iteration: first token already counted
      }
      r.state.decoded += 1;
    }
    for (auto it = running.begin(); it != running.end();) {
      if (it->prefilled && it->state.decoded >= it->state.req.output_tokens) {
        RequestRecord rec;
        rec.id = it->state.req.id;
        rec.model_id = it->state.req.model_id;
        rec.tenant_id = it->state.req.tenant_id;
        rec.slo = it->state.req.slo;
        rec.prompt_tokens = it->state.req.prompt_tokens;
        rec.output_tokens = it->state.req.output_tokens;
        // Latency/SLO clocks run from the original arrival for re-enqueued
        // (crash-rerouted) requests; identical to arrival_s on plain traces.
        rec.arrival_s = it->state.req.SloArrival();
        rec.sched_attempt_s =
            it->state.sched_attempt_s < 0 ? it->state.req.arrival_s
                                          : it->state.sched_attempt_s;
        rec.start_s = it->state.start_s;
        rec.first_token_s = it->state.first_token_s;
        rec.finish_s = now;
        rec.preemptions = it->state.preemptions;
        const int cls = static_cast<int>(rec.slo);
        completed_count[cls]->Inc();
        e2e_hist[cls]->Record(rec.E2eLatency());
        ttft_hist[cls]->Record(rec.Ttft());
        queue_hist->Record(rec.QueueingTime());
        load_hist->Record(rec.LoadingTime());
        tokens_out->Inc(static_cast<double>(rec.output_tokens));
        tokens_prompt->Inc(static_cast<double>(rec.prompt_tokens));
        report.records.push_back(rec);
        emit_req(TraceEventType::kRequestDone, now, it->state.req);
        if (!it->is_skipper) {
          finished_parents.push_back(it->state.req.id);
        }
        it = running.erase(it);
      } else {
        ++it;
      }
    }

    // ---- starvation control: preempt skippers whose parent finished (§5.4) ----
    if (config_.preemption && !finished_parents.empty()) {
      for (auto it = running.begin(); it != running.end();) {
        const bool orphaned =
            it->is_skipper &&
            std::find(finished_parents.begin(), finished_parents.end(),
                      it->parent_id) != finished_parents.end();
        const int remaining = it->state.req.output_tokens - it->state.decoded;
        if (orphaned && remaining > config_.preempt_min_remaining_tokens) {
          PendingReq back = it->state;
          ++back.preemptions;
          preempt_count->Inc();
          emit_req(TraceEventType::kKvPreempt, now, back.req);
          back.min_service_s = -1.0;  // re-estimate from the banked progress
          // Swap intermediate state (KV) to host; cost lands on the next iteration.
          const double swap_s =
              exec_.KvSwapTime(back.req.prompt_tokens + back.decoded);
          pending_swap_s += swap_s;
          emit_req(TraceEventType::kKvSwap, now, back.req, swap_s, /*aux=*/0);
          queue.push_back(back);  // re-sorted by arrival on next ingest
          it = running.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // Requests the halt cut off: still queued, still running (their partial
  // progress is lost — the elastic layer re-serves them from scratch), and
  // never-arrived trace requests. All three sets are empty on a natural run.
  for (const auto& p : queue) {
    report.unfinished.push_back(p.req);
  }
  for (const auto& r : running) {
    report.unfinished.push_back(r.state.req);
  }
  for (size_t i = next_arrival; i < trace.requests.size(); ++i) {
    report.unfinished.push_back(trace.requests[i]);
  }
  // Parked unavailable requests: on a halted (epoch) run the next epoch may
  // see recovered holders or completed repairs, so they carry as unfinished;
  // a natural run declares them terminally unavailable (typed, never silent).
  const bool halted = config_.halt_s < std::numeric_limits<double>::infinity();
  for (const auto& p : blocked_unavailable) {
    (halted ? report.unfinished : report.unavailable).push_back(p.req);
  }
  if (config_.registry != nullptr) {
    report.cached_artifacts = store.LocallyCached();
  }

  for (const auto& r : report.records) {
    report.makespan_s = std::max(report.makespan_s, r.finish_s);
  }
  report.n_tenants = std::max(1, trace.n_tenants);
  report.slo_spec = config_.scheduler.slo;
  FinalizeServeMetrics(registry, report);
  if (recorder.enabled()) {
    report.trace_events = recorder.Drain();
    report.trace_events_dropped = recorder.dropped();
    report.path_by_class = BuildClassAttribution(ComputeCriticalPaths(report));
  }
  return report;
}

}  // namespace

std::unique_ptr<ServingEngine> MakeDeltaZipEngine(const EngineConfig& config) {
  return std::make_unique<DeltaZipEngine>(config);
}

}  // namespace dz
