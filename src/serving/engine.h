// Serving-engine interface and shared configuration.
//
// Engines execute a Trace in simulated time against an ExecModel (iteration-level GPU
// cost model) and an ArtifactStore (GPU/CPU/disk placement), producing a ServeReport.
// Two engines implement the paper's comparison (§6.3):
//   * DeltaZipEngine — decoupled base+delta serving with SBMM, skip-the-line
//     continuous batching, and parent-finish preemption (§5). Also serves LoRA
//     adapters (Punica-style) for the §6.4 experiments.
//   * VllmScbEngine — the vLLM+SCB baseline: full-model swapping with per-model
//     continuous batching.
// The cluster layer (src/cluster/) composes N such engines behind a router; an
// EngineConfig therefore describes ONE worker, which may itself span multiple GPUs
// via `exec.tp` (paper Fig. 18).
#ifndef SRC_SERVING_ENGINE_H_
#define SRC_SERVING_ENGINE_H_

#include <limits>
#include <memory>
#include <vector>

#include "src/obs/trace_recorder.h"
#include "src/serving/artifact_store.h"
#include "src/serving/report.h"
#include "src/serving/scheduler.h"
#include "src/simgpu/exec_model.h"
#include "src/workload/trace.h"

namespace dz {

// What the per-variant artifact is — decides its byte size, its load times, and
// which ExecModel code path serves it.
enum class ArtifactKind {
  kCompressedDelta,  // ΔCompress artifact (§4)
  kLoraAdapter,      // low-rank adapter, Punica-style SGMV (§6.4)
  kFullModel,        // baseline: swap entire fp16 fine-tuned models (§6.1)
};

// Asynchronous artifact prefetch (beyond the paper, §8 future work; MetaSys-style
// cross-layer pipelining): each scheduling round the engine scans its waiting queue
// and warms the artifacts of the next `lookahead` distinct variants on the
// ArtifactStore's transfer channels, so a cold tenant's delta travels
// disk→CPU→GPU while the current batch computes instead of stalling admission.
struct PrefetchConfig {
  // Off by default; when false the engine issues no prefetches and its behavior is
  // bit-identical to the pre-prefetch engines (test-enforced).
  bool enabled = false;
  // W: how many distinct waiting variants (beyond the running batch) to warm ahead
  // of admission each scheduling round.
  int lookahead = 4;
  // Extra ArtifactStore slots reserved for in-flight prefetches, carved out of the
  // KV pool (double-buffering costs real GPU memory). Without headroom a prefetch
  // could never proceed: all N artifact slots are pinned by the running batch.
  // DeltaZipEngine only — the vLLM baseline's full-model slots are far too large
  // to double-buffer, so it prefetches into whatever slots are free or evictable.
  int staging_slots = 1;
  // Placement-aware warm hints, typically injected by the cluster Router (variant
  // ids, most likely first): starting at t = 0, the engine drains them one
  // low-priority transfer at a time as the channels go idle, so a worker warms
  // the artifacts the placement policy will route to it before their requests
  // land. Capped at the store's GPU capacity; out-of-range ids are ignored, as is
  // the whole list when `enabled` is false.
  std::vector<int> warm_hints;
};

// In-run metrics export (the unified metrics layer). Every engine run always
// keeps a registry and returns its final snapshot in ServeReport::metrics;
// this config additionally samples the registry DURING the run on the
// simulated clock, producing the ServeReport::timeline JSONL time series
// (`dzip_cli --metrics-out/--metrics-interval`, bench_soak).
struct MetricsExportConfig {
  // Simulated seconds between in-run snapshots; 0 (default) disables the
  // timeline (final snapshot only). Snapshots never perturb scheduling, so any
  // interval is bit-identical to interval 0 (golden-enforced).
  double interval_s = 0.0;
};

// One worker's configuration. Units: times in (simulated) seconds, sizes in GB
// where named so, token budgets in tokens.
struct EngineConfig {
  ExecModelConfig exec;           // model shape × GPU spec × tensor-parallel degree
  int max_batch = 32;             // K concurrently served requests (§5.4)
  int max_concurrent_deltas = 8;  // N artifacts co-resident per batch (§5.4, Fig. 10)
  bool skip_the_line = true;      // admit later requests of resident variants (§5.4)
  bool preemption = true;  // preempt skippers when their parent finishes (§5.4)
  // Length-aware preemption (paper §8 future work): do not preempt a skipper that is
  // within this many tokens of finishing — preempting nearly-done requests wastes the
  // work and the KV swap. 0 preempts unconditionally (the paper's §5.4 mechanism).
  int preempt_min_remaining_tokens = 0;
  ArtifactKind artifact = ArtifactKind::kCompressedDelta;
  int lora_rank = 16;               // LoRA rank when artifact == kLoraAdapter
  double cpu_cache_gb = 256.0;      // host cache for artifacts (GB; §5.4 hierarchy)
  double sched_overhead_s = 0.002;  // per-iteration scheduler/runner overhead (s)
  long long max_prefill_tokens = 2048;  // per-iteration prompt-token budget
  double kv_reserve_fraction = 0.05;    // GPU memory fraction reserved for activations
  PrefetchConfig prefetch;              // async artifact prefetch (off by default)
  MetricsExportConfig metrics;          // in-run snapshot timeline (off by default)
  // Per-request tracing (src/obs/): off by default and bit-identical to the
  // untraced engines; on, it is pure observation — no report scalar changes
  // (both golden-enforced). ring_capacity > 0 selects flight-recorder mode.
  TracingConfig tracing;
  // Multi-tenant scheduling policy + admission control. Defaults (FCFS, no
  // shedding, no class preemption) are bit-identical to the pre-scheduler
  // engines (golden-enforced).
  SchedulerConfig scheduler;
  // --- Fault/elasticity hooks (src/cluster/elastic.cc). Defaults are
  // bit-identical to the pre-fault engines (golden-enforced). ---
  // Simulated time the engine's clock starts at. An elastic cluster runs each
  // worker epoch-by-epoch with start_s = the epoch boundary, so channel
  // availability, snapshots, and idle-advance all begin at the right instant.
  double start_s = 0.0;
  // Hard stop: once the clock reaches halt_s the engine stops scheduling and
  // returns, reporting still-queued / running / unarrived requests in
  // ServeReport::unfinished. Completions of the iteration in flight when the
  // clock crosses halt_s still land (the halt check runs at loop top only) —
  // a uniform, documented approximation that keeps registry counters append-only.
  double halt_s = std::numeric_limits<double>::infinity();
  // Throughput multiplier for slow-node faults: iteration times are divided by
  // this, so 0.5 means every iteration takes twice as long. 1.0 = healthy.
  double speed_factor = 1.0;
  // Transfer-channel blackout windows forwarded to the ArtifactStore
  // (transient disk/PCIe/net partition faults).
  std::vector<ChannelOutage> outages;
  // --- Artifact-registry attachment (src/registry/). Null (the default) keeps
  // the PR 8 infinite-local-disk store and is bit-identical (golden-enforced).
  // When set, the worker's ArtifactStore sources non-local artifacts from the
  // registry's live holders over the net channel; `registry_node` is this
  // worker's node id, `registry_warm` the artifacts already in its local cache
  // tier at start_s (epoch carry). ---
  const ArtifactRegistry* registry = nullptr;
  int registry_node = 0;
  std::vector<int> registry_warm;
};

// Replays a Trace in simulated time and returns per-request records + aggregates.
class ServingEngine {
 public:
  virtual ~ServingEngine() = default;
  virtual ServeReport Serve(const Trace& trace) = 0;
  // Stable engine identifier ("deltazip", "deltazip-lora", "vllm-scb").
  virtual const char* name() const = 0;
};

std::unique_ptr<ServingEngine> MakeDeltaZipEngine(const EngineConfig& config);
std::unique_ptr<ServingEngine> MakeVllmScbEngine(const EngineConfig& config);

}  // namespace dz

#endif  // SRC_SERVING_ENGINE_H_
