// Serving-engine interface and shared configuration.
//
// Engines execute a Trace in simulated time against an ExecModel (iteration-level GPU
// cost model) and an ArtifactStore (GPU/CPU/disk placement), producing a ServeReport.
// Two engines implement the paper's comparison (§6.3):
//   * DeltaZipEngine — decoupled base+delta serving with SBMM, skip-the-line
//     continuous batching, and parent-finish preemption (§5). Also serves LoRA
//     adapters (Punica-style) for the §6.4 experiments.
//   * VllmScbEngine — the vLLM+SCB baseline: full-model swapping with per-model
//     continuous batching.
#ifndef SRC_SERVING_ENGINE_H_
#define SRC_SERVING_ENGINE_H_

#include <memory>

#include "src/serving/report.h"
#include "src/simgpu/exec_model.h"
#include "src/workload/trace.h"

namespace dz {

enum class ArtifactKind {
  kCompressedDelta,  // ΔCompress artifact
  kLoraAdapter,
  kFullModel,  // baseline: swap entire fp16 fine-tuned models
};

struct EngineConfig {
  ExecModelConfig exec;
  int max_batch = 32;             // K concurrently served requests (§5.4)
  int max_concurrent_deltas = 8;  // N artifacts co-resident per batch (§5.4)
  bool skip_the_line = true;
  bool preemption = true;  // preempt skippers when their parent finishes
  // Length-aware preemption (paper §8 future work): do not preempt a skipper that is
  // within this many tokens of finishing — preempting nearly-done requests wastes the
  // work and the KV swap. 0 preempts unconditionally (the paper's §5.4 mechanism).
  int preempt_min_remaining_tokens = 0;
  ArtifactKind artifact = ArtifactKind::kCompressedDelta;
  int lora_rank = 16;
  double cpu_cache_gb = 256.0;     // host cache for artifacts
  double sched_overhead_s = 0.002;  // per-iteration scheduler/runner overhead
  long long max_prefill_tokens = 2048;  // per-iteration prompt-token budget
  double kv_reserve_fraction = 0.05;    // GPU memory fraction reserved for activations
};

class ServingEngine {
 public:
  virtual ~ServingEngine() = default;
  virtual ServeReport Serve(const Trace& trace) = 0;
  virtual const char* name() const = 0;
};

std::unique_ptr<ServingEngine> MakeDeltaZipEngine(const EngineConfig& config);
std::unique_ptr<ServingEngine> MakeVllmScbEngine(const EngineConfig& config);

}  // namespace dz

#endif  // SRC_SERVING_ENGINE_H_
