// Per-request records and aggregate serving metrics (paper §6.1 "Metrics": E2E latency,
// TTFT, throughput, SLO attainment). All times are simulated seconds.
#ifndef SRC_SERVING_REPORT_H_
#define SRC_SERVING_REPORT_H_

#include <array>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/obs/critical_path.h"
#include "src/obs/trace_recorder.h"
#include "src/workload/trace.h"

namespace dz {

// Lifecycle timestamps of one served request (all in simulated seconds on the
// trace's global clock) plus its token counts.
struct RequestRecord {
  int id = 0;
  int model_id = 0;        // fine-tuned variant the request targets
  int tenant_id = 0;       // tenant the request belongs to
  SloClass slo = SloClass::kStandard;  // SLO class it was promised
  int prompt_tokens = 0;   // prompt length (tokens)
  int output_tokens = 0;   // generated length (tokens)
  double arrival_s = 0.0;
  double sched_attempt_s = 0.0;  // reached the scheduler (queue head / skip-the-line)
  double start_s = 0.0;          // admitted to the running batch (artifact resident)
  double first_token_s = 0.0;    // end of prefill iteration
  double finish_s = 0.0;
  int preemptions = 0;  // times this request was parent-finish preempted (§5.4)

  double E2eLatency() const { return finish_s - arrival_s; }
  double Ttft() const { return first_token_s - arrival_s; }
  double QueueingTime() const { return sched_attempt_s - arrival_s; }
  // Cold-start stall: time between first scheduler consideration and admission,
  // dominated by waiting for the variant's artifact to reach the GPU.
  double LoadingTime() const { return start_s - sched_attempt_s; }
  double InferenceTime() const { return finish_s - start_s; }
  double TimePerToken() const {
    return output_tokens > 0 ? E2eLatency() / output_tokens : E2eLatency();
  }
};

// One engine run over one trace: per-request records plus the run's metrics
// registry snapshot. The scalar stat fields below are thin views materialized
// from that snapshot at the end of Serve (FinalizeServeMetrics) — no engine or
// store keeps hand-maintained counters anymore — and stay bit-identical to the
// pre-registry fields (golden-enforced).
struct ServeReport {
  std::string engine_name;
  std::vector<RequestRecord> records;
  // Final registry snapshot of the run ("store.*", "sched.*", "engine.*",
  // "latency.*" instruments), tagged with the run's makespan. Cluster merges
  // combine these snapshots worker-by-worker (MetricsSnapshot::MergeFrom).
  MetricsSnapshot metrics;
  // Periodic in-run snapshots on the simulated clock, captured every
  // EngineConfig::metrics.interval_s seconds (empty when the interval is 0).
  // `dzip_cli --metrics-out` serializes these as a JSONL time series.
  std::vector<MetricsSnapshot> timeline;
  double makespan_s = 0.0;  // time when the last request finished (s)
  // Artifact-movement totals from the engine's ArtifactStore: every load crosses
  // PCIe (host → device); `disk_loads` additionally paid the disk → host read.
  // Prefetched transfers are included (they move real bytes).
  int total_loads = 0;  // PCIe (H2D) transfers
  int disk_loads = 0;   // loads that started from disk
  // Prefetch effectiveness (all 0 when prefetch is disabled): speculative loads
  // issued, those used by a demand request (hits), those evicted unused (wasted),
  // and the artifact-wait seconds demand requests skipped thanks to prefetch.
  int prefetch_issued = 0;
  int prefetch_hits = 0;
  int prefetch_wasted = 0;
  double stall_hidden_s = 0.0;
  // Cumulative busy seconds per transfer channel (utilization = busy / makespan).
  double disk_busy_s = 0.0;
  double pcie_busy_s = 0.0;
  // Multi-tenant context: tenant count of the served trace and the per-class
  // deadlines the scheduler ran with (used by the attainment metrics below).
  int n_tenants = 1;
  SloSpecs slo_spec;
  // Admission-control sheds per SLO class (all 0 when shedding is disabled).
  // Shed requests have no RequestRecord; attainment counts them as misses.
  std::array<int, kNumSloClasses> shed_by_class = {0, 0, 0};
  // Per-request trace events of the run (empty unless EngineConfig::tracing is
  // enabled), timestamp-ordered as TraceRecorder::Drain returns them, plus the
  // events a flight-recorder ring overwrote. Feeds the Chrome-trace exporter
  // and the critical-path attribution below; never influences any scalar
  // above (pure observation, golden-enforced).
  std::vector<TraceEvent> trace_events;
  long long trace_events_dropped = 0;
  // Requests the run did NOT complete because the clock hit
  // EngineConfig::halt_s first: still-queued, running (their partial progress
  // is lost — re-serving re-pays prefill and decode, the re-warm cost a crash
  // really incurs), and not-yet-arrived trace requests. Always empty on a
  // natural (halt_s = inf) run. The elastic cluster layer re-routes these into
  // the next epoch; they never appear in `records`.
  std::vector<TraceRequest> unfinished;
  // Requests whose artifact the registry could not source at all (every
  // holder dead/partitioned — the store's typed `unavailable` result). On a
  // halted (epoch) run these land in `unfinished` instead, because the next
  // epoch may see recovered holders or completed repairs; only a natural
  // (halt_s = inf) run declares them terminally unavailable here. Always empty
  // without a registry. The elastic ledger counts them under `failed`.
  std::vector<TraceRequest> unavailable;
  // Artifact ids in the store's node-local cache tier at the end of the run
  // (registry runs only; empty otherwise). Epoch carry for `registry_warm`.
  std::vector<int> cached_artifacts;
  // Critical-path attribution per SLO class (all zero when tracing is off):
  // each completed request's E2E and TTFT split into queue / load / compute /
  // preempt segments that sum back to the measured latency within 1e-9
  // (test-enforced). Cluster merges add these in GPU order like snapshots.
  ClassPathAttribution path_by_class = {};

  // True when the attribution table has content (some request was attributed).
  bool HasPathAttribution() const;

  size_t completed() const { return records.size(); }
  double ThroughputRps() const;    // completed requests / makespan
  double TokenThroughput() const;  // output tokens / s
  double MeanE2e() const;
  double MeanTtft() const;
  double MeanTimePerToken() const;
  // Summed per-request LoadingTime(): total cold-start stall seconds spent waiting
  // for artifacts after a request reached the scheduler. This is the quantity the
  // prefetch pipeline exists to shrink.
  double TotalLoadingTime() const;
  std::vector<double> E2es() const;
  std::vector<double> Ttfts() const;
  // Fraction of requests with metric <= slo_s.
  double SloAttainmentE2e(double slo_s) const;
  double SloAttainmentTtft(double slo_s) const;

  // --- multi-tenant / per-class metrics -------------------------------------
  // All are total functions: 0 tenants, 1 tenant, or a class with no requests
  // yield well-defined values (never NaN/inf) — the CompressionRatio lesson.

  int TotalShed() const;
  // Completed requests of the class (shed ones have no record).
  size_t ClassCompleted(SloClass slo) const;
  // Fraction of the class's requests (completed + shed) that met BOTH their
  // class deadlines (TTFT and E2E from slo_spec). A class that saw no requests
  // at all vacuously attains 1.0.
  double ClassAttainment(SloClass slo) const;
  // Output tokens served per tenant, indexed by tenant id (size max(1, n_tenants)).
  std::vector<double> TenantOutputTokens() const;
  // Jain fairness index over per-tenant served output tokens:
  // (Σx)² / (n·Σx²) ∈ [1/n, 1]. Defined as 1.0 (perfectly fair) for a single
  // tenant, zero tenants, or when nothing was served.
  double JainFairnessIndex() const;
};

class Table;

// Appends the tenant/class rows (tenant count, per-class attainment against
// the class deadlines, Jain fairness, per-class sheds) to a metric/value
// table — but only when the report is multi-tenant or actually shed something,
// so single-tenant renderings stay unchanged. Shared by `dzip_cli simulate`
// and ClusterReport::Summary.
void AppendTenantRows(Table& table, const ServeReport& report);

// Takes the run's final registry snapshot (tagged with the report's makespan)
// and materializes the legacy scalar stat fields from it: artifact/prefetch/
// channel totals from the "store.*" instruments and shed_by_class from the
// "sched.shed" counters. Both engines call this once at the end of Serve;
// BuildClusterReport applies the same materialization to the merged snapshot.
void FinalizeServeMetrics(MetricsRegistry& registry, ServeReport& report);

// The snapshot → scalar-fields half of FinalizeServeMetrics, reused for merged
// cluster snapshots (report.metrics must already be populated).
void MaterializeReportFromSnapshot(ServeReport& report);

// Per-request critical-path breakdowns of the report's records against its
// trace_events (record-only fallback when events are missing/ring-dropped).
// Engines call this at the end of a traced Serve() to fill path_by_class;
// tests call it directly to check the 1e-9 segment-sum contract.
std::vector<RequestPathBreakdown> ComputeCriticalPaths(const ServeReport& report);

// Appends the per-class critical-path attribution rows (mean seconds in
// queue / load / compute / preempt for E2E, plus the TTFT split) to a
// metric/value table — only when the report actually carries an attribution,
// so untraced renderings stay unchanged. Shared by `dzip_cli simulate` and
// ClusterReport::Summary.
void AppendAttributionRows(Table& table, const ServeReport& report);

}  // namespace dz

#endif  // SRC_SERVING_REPORT_H_
