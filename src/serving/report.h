// Per-request records and aggregate serving metrics (paper §6.1 "Metrics": E2E latency,
// TTFT, throughput, SLO attainment).
#ifndef SRC_SERVING_REPORT_H_
#define SRC_SERVING_REPORT_H_

#include <string>
#include <vector>

namespace dz {

struct RequestRecord {
  int id = 0;
  int model_id = 0;
  int prompt_tokens = 0;
  int output_tokens = 0;
  double arrival_s = 0.0;
  double sched_attempt_s = 0.0;  // reached the scheduler (queue head / skip-the-line)
  double start_s = 0.0;          // admitted to the running batch (artifact resident)
  double first_token_s = 0.0;    // end of prefill iteration
  double finish_s = 0.0;
  int preemptions = 0;

  double E2eLatency() const { return finish_s - arrival_s; }
  double Ttft() const { return first_token_s - arrival_s; }
  double QueueingTime() const { return sched_attempt_s - arrival_s; }
  double LoadingTime() const { return start_s - sched_attempt_s; }
  double InferenceTime() const { return finish_s - start_s; }
  double TimePerToken() const {
    return output_tokens > 0 ? E2eLatency() / output_tokens : E2eLatency();
  }
};

struct ServeReport {
  std::string engine_name;
  std::vector<RequestRecord> records;
  double makespan_s = 0.0;  // time when the last request finished
  // Artifact-movement totals from the engine's ArtifactStore: every load crosses
  // PCIe (host → device); `disk_loads` additionally paid the disk → host read.
  int total_loads = 0;  // PCIe (H2D) transfers
  int disk_loads = 0;   // loads that started from disk

  size_t completed() const { return records.size(); }
  double ThroughputRps() const;
  double TokenThroughput() const;  // output tokens / s
  double MeanE2e() const;
  double MeanTtft() const;
  double MeanTimePerToken() const;
  std::vector<double> E2es() const;
  std::vector<double> Ttfts() const;
  // Fraction of requests with metric <= slo_s.
  double SloAttainmentE2e(double slo_s) const;
  double SloAttainmentTtft(double slo_s) const;
};

}  // namespace dz

#endif  // SRC_SERVING_REPORT_H_
