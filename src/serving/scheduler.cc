#include "src/serving/scheduler.h"

namespace dz {

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFcfs:
      return "fcfs";
    case SchedPolicy::kPriority:
      return "priority";
    case SchedPolicy::kDwfq:
      return "dwfq";
  }
  return "?";
}

bool ParseSchedPolicy(const std::string& name, SchedPolicy& out) {
  for (SchedPolicy p : {SchedPolicy::kFcfs, SchedPolicy::kPriority, SchedPolicy::kDwfq}) {
    if (name == SchedPolicyName(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace dz
