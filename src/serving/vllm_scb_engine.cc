// vLLM+SCB baseline (paper §6.1 "Baselines"): serves each fine-tuned model as an
// independent full-precision model. Supports (S)wapping whole models in and out of GPU
// memory, (C)ontinuous batching across the models resident in memory by looping through
// them each iteration, and (B)atching available requests for the same model. It cannot
// batch across variants and must move full fp16 checkpoints on every swap — the two
// costs DeltaZip removes.
#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "src/metrics/metrics.h"
#include "src/serving/artifact_store.h"
#include "src/serving/engine.h"
#include "src/serving/prefetcher.h"
#include "src/serving/scheduler.h"
#include "src/util/check.h"

namespace dz {

namespace {

struct PendingReq {
  TraceRequest req;
  double sched_attempt_s = -1.0;
  double fair_tag = -1.0;       // DWFQ virtual finish tag
  double min_service_s = -1.0;  // cached optimistic service estimate (admission)
};

struct RunningReq {
  PendingReq state;
  bool prefilled = false;
  int decoded = 0;
  double start_s = 0.0;
  double first_token_s = 0.0;
  bool has_first_token = false;
};

class VllmScbEngine : public ServingEngine {
 public:
  explicit VllmScbEngine(const EngineConfig& config) : config_(config), exec_(config.exec) {}

  const char* name() const override { return "vllm-scb"; }

  ServeReport Serve(const Trace& trace) override;

 private:
  EngineConfig config_;
  ExecModel exec_;
};

ServeReport VllmScbEngine::Serve(const Trace& trace) {
  ServeReport report;
  report.engine_name = name();

  // Per-run registry, mirroring DeltaZipEngine (share-nothing across cluster
  // worker threads; ServeReport scalars materialize from the final snapshot).
  MetricsRegistry registry;
  Counter* shed_count[kNumSloClasses];
  Counter* completed_count[kNumSloClasses];
  LogHistogram* e2e_hist[kNumSloClasses];
  LogHistogram* ttft_hist[kNumSloClasses];
  for (int c = 0; c < kNumSloClasses; ++c) {
    const MetricLabels by_class = {
        {"class", SloClassName(static_cast<SloClass>(c))}};
    shed_count[c] = registry.GetCounter("sched.shed", by_class);
    completed_count[c] = registry.GetCounter("engine.requests.completed", by_class);
    e2e_hist[c] = registry.GetHistogram("latency.e2e_s", by_class);
    ttft_hist[c] = registry.GetHistogram("latency.ttft_s", by_class);
  }
  LogHistogram* queue_hist = registry.GetHistogram("latency.queue_s");
  LogHistogram* load_hist = registry.GetHistogram("latency.load_s");
  Counter* tokens_out = registry.GetCounter("engine.tokens.output");
  Counter* tokens_prompt = registry.GetCounter("engine.tokens.prompt");
  Counter* rounds_count = registry.GetCounter("engine.rounds");

  const size_t total_mem =
      static_cast<size_t>(config_.exec.tp) * config_.exec.gpu.mem_bytes();
  const size_t model_bytes = exec_.BaseWeightBytesPerGpu() * config_.exec.tp;
  // Reserve a KV pool (roughly one model's worth or 15%, whichever is larger).
  const size_t kv_pool =
      std::max(model_bytes / 2, static_cast<size_t>(total_mem * 0.15));
  DZ_CHECK_GT(total_mem, kv_pool + model_bytes);
  const size_t model_budget = total_mem - kv_pool;
  const long long kv_capacity_tokens = static_cast<long long>(
      kv_pool / std::max<size_t>(1, exec_.KvBytesPerTokenPerGpu() * config_.exec.tp));

  ArtifactStoreConfig store_config;
  store_config.artifact_bytes = model_bytes;
  store_config.gpu_budget_bytes = model_budget;
  // vLLM keeps no host-side weight cache: every swap re-runs the checkpoint load path.
  store_config.cpu_budget_bytes = 0;
  store_config.disk_read_s = exec_.LoadFullModelFromDisk();
  store_config.h2d_s = exec_.LoadFullModelFromHost();
  store_config.outages = config_.outages;
  store_config.registry = config_.registry;
  store_config.registry_node = config_.registry_node;
  store_config.registry_warm = config_.registry_warm;
  // Recorder before store: the store emits per-channel transfer spans into it.
  // Pure observation, bit-identical when disabled (golden-enforced).
  TraceRecorder recorder(config_.tracing);
  ArtifactStore store(store_config, trace.n_models, &registry, &recorder);
  DZ_CHECK_GE(store.GpuCapacity(), 1);

  // Placement-aware warm-up (prefetch only): the router's predicted models,
  // drained one low-priority transfer at a time as the channels go idle. These
  // transfers are asynchronous, so they do not trigger the blocking-swap path
  // below — only demand swaps stall generation.
  std::deque<int> pending_hints =
      PendingWarmHints(config_.prefetch, trace.n_models, store.GpuCapacity());

  std::deque<PendingReq> queue;
  std::vector<RunningReq> running;
  // Requests parked on a typed-unavailable artifact (every registry holder
  // dead); liveness is constant within one Serve call, so retrying would spin.
  std::vector<PendingReq> blocked_unavailable;
  size_t next_arrival = 0;
  double now = config_.start_s;
  // Completion time of the in-flight *demand* swap (-inf when none). Demand swaps
  // sit on the worker's critical path; prefetch transfers do not.
  double demand_ready = -std::numeric_limits<double>::infinity();

  FairQueue fair_queue(config_.scheduler);
  size_t shed_total = 0;  // loop control only; per-class counts live in the registry
  double next_snapshot_s = config_.start_s + config_.metrics.interval_s;

  // Request-attributed trace emission (one branch when tracing is off). This
  // engine has no preemption, so kv.preempt / kv.swap are never emitted here.
  auto emit_req = [&](TraceEventType type, double ts, const TraceRequest& req) {
    if (!recorder.enabled()) {
      return;
    }
    TraceEvent ev;
    ev.type = type;
    ev.ts_s = ts;
    ev.request_id = req.id;
    ev.model_id = req.model_id;
    ev.tenant_id = req.tenant_id;
    ev.slo = req.slo;
    recorder.Emit(ev);
  };

  auto ingest = [&](double t) {
    while (next_arrival < trace.requests.size() &&
           trace.requests[next_arrival].arrival_s <= t) {
      PendingReq p;
      p.req = trace.requests[next_arrival++];
      emit_req(TraceEventType::kRequestQueued, p.req.arrival_s, p.req);
      queue.push_back(p);
    }
    // This engine never re-queues (no preemption), so the queue is permanently
    // arrival-ordered and the kFcfs stable sort would always be the identity —
    // skip it (bit-identical by construction) rather than pay O(Q log Q) per
    // round on a backed-up queue.
    if (config_.scheduler.policy != SchedPolicy::kFcfs) {
      OrderQueueForPolicy(config_.scheduler, fair_queue, queue);
    }
  };

  auto kv_tokens_in_use = [&]() {
    long long total = 0;
    for (const auto& r : running) {
      total += r.state.req.prompt_tokens + r.state.req.output_tokens;
    }
    return total;
  };

  // Optimistic service lower bound for admission control (batch-1 decode after
  // an immediate prefill; real scheduling and swaps only add to it).
  auto min_service_s = [&](PendingReq& p) {
    if (p.min_service_s < 0.0) {
      p.min_service_s = exec_.PrefillTime(p.req.prompt_tokens) +
                        static_cast<double>(std::max(0, p.req.output_tokens - 1)) *
                            exec_.DecodeIterTime(1, static_cast<double>(p.req.prompt_tokens));
    }
    return p.min_service_s;
  };

  while (report.records.size() + shed_total + blocked_unavailable.size() <
         trace.requests.size()) {
    // Hard halt (elastic cluster epoch boundary / crash): stop scheduling.
    // Checked only here, so completions of the iteration in flight when the
    // clock crossed halt_s have already landed (documented approximation).
    if (now >= config_.halt_s) {
      break;
    }
    // In-run timeline: sample the registry on the simulated clock (pure reads,
    // bit-identical to interval 0).
    while (config_.metrics.interval_s > 0.0 && now >= next_snapshot_s) {
      report.timeline.push_back(registry.Snapshot(next_snapshot_s));
      next_snapshot_s += config_.metrics.interval_s;
    }
    rounds_count->Inc();
    ingest(now);

    // ---- admission control: shed requests whose deadline is already lost ----
    ShedUnmeetable(
        config_.scheduler, fair_queue, queue, now, min_service_s,
        [](const PendingReq& p) {
          // No preemption here: a queued request has received nothing.
          return p.req.prompt_tokens + p.req.output_tokens;
        },
        [&](const TraceRequest& req) {
          shed_count[static_cast<int>(req.slo)]->Inc();
          ++shed_total;
          emit_req(TraceEventType::kAdmissionShed, now, req);
        });
    if (report.records.size() + shed_total + blocked_unavailable.size() ==
        trace.requests.size()) {
      break;  // shedding retired the last outstanding requests: nothing left to
              // simulate, and the idle fast-forward below would have no event
    }

    // ---- scheduling: policy order; a request runs only when its model is resident ----
    std::set<int> models_in_use;
    for (const auto& r : running) {
      models_in_use.insert(r.state.req.model_id);
    }
    std::vector<int> pinned(models_in_use.begin(), models_in_use.end());

    long long kv_used = kv_tokens_in_use();
    bool load_in_flight = demand_ready > now;
    for (auto it = queue.begin();
         it != queue.end() && static_cast<int>(running.size()) < config_.max_batch;) {
      const int model = it->req.model_id;
      const long long need = it->req.prompt_tokens + it->req.output_tokens;
      if (kv_used + need > kv_capacity_tokens) {
        break;  // head-of-line blocks on KV space
      }
      if (it->sched_attempt_s < 0.0) {
        it->sched_attempt_s = now;
      }
      if (!store.IsResident(model, now)) {
        // Trigger the swap. The engine worker performs weight loading synchronously
        // (vLLM loads checkpoints in the serving process), so at most one demand swap
        // is in flight and — crucially — that swap sits on the critical path of every
        // running request (paper §2.2 "Swapping incurs high latency"). A model already
        // arriving via prefetch needs no swap: RequestLoad just registers the hit.
        if (store.IsLoading(model, now)) {
          store.RequestLoad(model, now, pinned);
        } else if (!load_in_flight) {
          if (store.GpuCount(now) >= store.GpuCapacity() &&
              static_cast<int>(models_in_use.size()) >= store.GpuCapacity()) {
            ++it;  // every slot is actively serving; wait for one to drain
            continue;
          }
          const ArtifactStore::LoadResult load = store.RequestLoad(model, now, pinned);
          if (load.ok) {
            demand_ready = load.ready_at;
            load_in_flight = true;
          } else if (load.unavailable) {
            // Typed registry failure: no live holder can source this model.
            // Park the request rather than spin on an unsatisfiable swap.
            blocked_unavailable.push_back(*it);
            it = queue.erase(it);
            continue;
          }
        }
        ++it;
        continue;
      }
      store.Touch(model, now);
      emit_req(TraceEventType::kSchedDispatch, now, it->req);
      if (config_.scheduler.policy == SchedPolicy::kDwfq) {
        fair_queue.OnAdmit(it->fair_tag);
      }
      RunningReq r;
      r.state = *it;
      r.start_s = now;
      models_in_use.insert(model);
      pinned.push_back(model);
      kv_used += need;
      running.push_back(std::move(r));
      it = queue.erase(it);
    }

    // ---- lookahead prefetch: warm the next W distinct waiting models (§8) ----
    // Unlike the demand swap below these transfers are asynchronous, so the worker
    // keeps generating for the models already resident while the next checkpoint
    // travels disk→host→GPU. `pinned` carries every model the running batch uses,
    // so a prefetch can never evict a running model.
    if (config_.prefetch.enabled) {
      RunPrefetchPass(store, config_.prefetch, now, queue, models_in_use, pinned,
                      pending_hints);
    }

    // Blocking demand swap: while a model is being copied in on the critical path,
    // the worker generates nothing. (Prefetch transfers land in the background.)
    if (demand_ready > now) {
      now = demand_ready;
      continue;
    }
    if (running.empty()) {
      // The scheduling pass above may have parked the last outstanding
      // requests as unavailable: nothing is left to simulate, and the idle
      // fast-forward below would have no future event to jump to.
      if (report.records.size() + shed_total + blocked_unavailable.size() ==
          trace.requests.size()) {
        break;
      }
      double next_t = std::numeric_limits<double>::infinity();
      if (next_arrival < trace.requests.size()) {
        next_t = trace.requests[next_arrival].arrival_s;
      }
      // With prefetch on, a queued request may be waiting for a background
      // prefetch to land rather than for a new arrival.
      next_t = std::min(next_t, store.NextLoadReady(now));
      DZ_CHECK(next_t < std::numeric_limits<double>::infinity());
      now = std::max(now, next_t);
      continue;
    }

    // ---- iteration: loop over resident models, each a separate full-precision pass ----
    long long prefill_budget = config_.max_prefill_tokens;
    std::vector<RunningReq*> prefilling;
    std::map<int, long long> prefill_tokens_per_model;
    for (auto& r : running) {
      if (!r.prefilled && r.state.req.prompt_tokens <= prefill_budget) {
        prefill_budget -= r.state.req.prompt_tokens;
        prefill_tokens_per_model[r.state.req.model_id] += r.state.req.prompt_tokens;
        prefilling.push_back(&r);
      }
    }
    std::map<int, std::pair<int, double>> decode_per_model;  // model → (batch, ctx sum)
    for (const auto& r : running) {
      if (r.prefilled) {
        auto& [batch, ctx] = decode_per_model[r.state.req.model_id];
        ++batch;
        ctx += r.state.req.prompt_tokens + r.decoded;
      }
    }

    double iter = config_.sched_overhead_s;
    for (const auto& [model, tokens] : prefill_tokens_per_model) {
      iter += exec_.PrefillTime(tokens);
    }
    for (const auto& [model, batch_ctx] : decode_per_model) {
      iter += exec_.DecodeIterTime(batch_ctx.first,
                                   batch_ctx.second / batch_ctx.first);
    }
    if (config_.speed_factor != 1.0) {
      iter /= config_.speed_factor;  // slow-node fault: everything stretches
    }
    if (recorder.enabled()) {
      TraceEvent round;
      round.type = TraceEventType::kBatchRound;
      round.ts_s = now;
      round.dur_s = iter;
      round.aux = static_cast<int>(running.size());
      recorder.Emit(round);
    }
    now += iter;

    for (auto* r : prefilling) {
      r->prefilled = true;
      r->decoded = 1;
      if (!r->has_first_token) {
        r->has_first_token = true;
        r->first_token_s = now;
        emit_req(TraceEventType::kRequestFirstToken, now, r->state.req);
      }
    }
    for (auto& r : running) {
      if (r.prefilled &&
          std::find(prefilling.begin(), prefilling.end(), &r) == prefilling.end()) {
        r.decoded += 1;
      }
    }
    for (auto it = running.begin(); it != running.end();) {
      if (it->prefilled && it->decoded >= it->state.req.output_tokens) {
        RequestRecord rec;
        rec.id = it->state.req.id;
        rec.model_id = it->state.req.model_id;
        rec.tenant_id = it->state.req.tenant_id;
        rec.slo = it->state.req.slo;
        rec.prompt_tokens = it->state.req.prompt_tokens;
        rec.output_tokens = it->state.req.output_tokens;
        // Latency/SLO clocks run from the original arrival for re-enqueued
        // (crash-rerouted) requests; identical to arrival_s on plain traces.
        rec.arrival_s = it->state.req.SloArrival();
        rec.sched_attempt_s = it->state.sched_attempt_s < 0 ? it->state.req.arrival_s
                                                            : it->state.sched_attempt_s;
        rec.start_s = it->start_s;
        rec.first_token_s = it->first_token_s;
        rec.finish_s = now;
        const int cls = static_cast<int>(rec.slo);
        completed_count[cls]->Inc();
        e2e_hist[cls]->Record(rec.E2eLatency());
        ttft_hist[cls]->Record(rec.Ttft());
        queue_hist->Record(rec.QueueingTime());
        load_hist->Record(rec.LoadingTime());
        tokens_out->Inc(static_cast<double>(rec.output_tokens));
        tokens_prompt->Inc(static_cast<double>(rec.prompt_tokens));
        report.records.push_back(rec);
        emit_req(TraceEventType::kRequestDone, now, it->state.req);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Requests the halt cut off: still queued, still running (their partial
  // progress is lost — the elastic layer re-serves them from scratch), and
  // never-arrived trace requests. All three sets are empty on a natural run.
  for (const auto& p : queue) {
    report.unfinished.push_back(p.req);
  }
  for (const auto& r : running) {
    report.unfinished.push_back(r.state.req);
  }
  for (size_t i = next_arrival; i < trace.requests.size(); ++i) {
    report.unfinished.push_back(trace.requests[i]);
  }
  // Parked unavailable requests: carried as unfinished on halted (epoch) runs
  // (the next epoch may see recovered holders or completed repairs), declared
  // terminally unavailable on natural runs.
  const bool halted = config_.halt_s < std::numeric_limits<double>::infinity();
  for (const auto& p : blocked_unavailable) {
    (halted ? report.unfinished : report.unavailable).push_back(p.req);
  }
  if (config_.registry != nullptr) {
    report.cached_artifacts = store.LocallyCached();
  }

  for (const auto& r : report.records) {
    report.makespan_s = std::max(report.makespan_s, r.finish_s);
  }
  report.n_tenants = std::max(1, trace.n_tenants);
  report.slo_spec = config_.scheduler.slo;
  FinalizeServeMetrics(registry, report);
  if (recorder.enabled()) {
    report.trace_events = recorder.Drain();
    report.trace_events_dropped = recorder.dropped();
    report.path_by_class = BuildClassAttribution(ComputeCriticalPaths(report));
  }
  return report;
}

}  // namespace

std::unique_ptr<ServingEngine> MakeVllmScbEngine(const EngineConfig& config) {
  return std::make_unique<VllmScbEngine>(config);
}

}  // namespace dz
