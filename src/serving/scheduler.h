// Pluggable request-scheduling policies and admission control for the serving
// engines (beyond the paper, which is FCFS-only in §5.4): multi-tenant traffic
// with per-class SLOs needs to decide *which* waiting request to consider first
// and *whether* a request is still worth serving at all.
//
//   * kFcfs     — arrival order (the paper's §5.4 scheduler; the default, and
//                 bit-identical to the pre-scheduler engines, golden-enforced).
//   * kPriority — strict priority by SLO class (interactive > standard >
//                 batch), FCFS within a class.
//   * kDwfq     — deficit-weighted fair queueing across tenants: each request
//                 is stamped with a virtual finish tag, tokens/weight past its
//                 tenant's virtual time, and the queue is served in tag order —
//                 a flooding tenant's tags race ahead while a light tenant's
//                 stay near the global virtual time, so floods cannot starve
//                 other tenants (classic fair-queueing behavior).
//
// Admission control (off by default) sheds requests whose class E2E deadline is
// already unmeetable under an optimistic service estimate, instead of letting
// doomed work consume batch slots and KV memory.
//
// Header-only ordering machinery: both engines keep their own anonymous
// PendingReq types, so the queue-ordering entry point is a template over any
// element exposing `.req` (TraceRequest) and `.fair_tag` (double, < 0 until the
// scheduler assigns one), mirroring src/serving/prefetcher.h.
#ifndef SRC_SERVING_SCHEDULER_H_
#define SRC_SERVING_SCHEDULER_H_

#include <algorithm>
#include <map>
#include <string>

#include "src/workload/trace.h"

namespace dz {

enum class SchedPolicy {
  kFcfs,
  kPriority,
  kDwfq,
};

// Stable CLI/report name of a policy ("fcfs", "priority", "dwfq").
const char* SchedPolicyName(SchedPolicy policy);
// Parses the names printed by SchedPolicyName. Returns false on unknown names.
bool ParseSchedPolicy(const std::string& name, SchedPolicy& out);

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFcfs;
  // kDwfq class weights (interactive, standard, batch): a token of interactive
  // work advances its tenant's virtual time 4× slower than a batch token, so
  // interactive requests sort earlier at equal backlog.
  double class_weight[kNumSloClasses] = {4.0, 2.0, 1.0};
  // Shed requests whose class E2E deadline is already unmeetable even under an
  // optimistic service estimate (scaled by admission_headroom; > 1 sheds more
  // aggressively). Shed requests complete nothing and are counted per class.
  bool admission_control = false;
  double admission_headroom = 1.0;
  // Let blocked interactive requests preempt running batch-class skippers,
  // reusing the parent-finish preemption machinery (DeltaZip engine only — the
  // vLLM baseline has no skippers to preempt). Honored only under kPriority /
  // kDwfq: FCFS re-sorts the evicted (earlier-arrival) skipper ahead of the
  // interactive request it was evicted for, which would livelock admit/evict.
  bool class_preemption = false;
  // Per-class deadlines used for admission control (and copied into the report
  // for per-class attainment).
  SloSpecs slo;
};

// Per-tenant virtual-time state for kDwfq. Persists across scheduling rounds
// inside one Serve() call; a fresh engine run starts from zero, keeping runs
// deterministic.
class FairQueue {
 public:
  explicit FairQueue(const SchedulerConfig& config) : config_(config) {}

  // Stamps a newly queued request: its virtual finish tag is tokens/weight past
  // its tenant's virtual time, floored at the global virtual time so an idle
  // tenant re-enters at "now" rather than cashing in banked credit.
  double TagFor(const TraceRequest& req) {
    const double weight =
        std::max(config_.class_weight[static_cast<int>(req.slo)], 1e-9);
    const double cost =
        static_cast<double>(req.prompt_tokens + req.output_tokens) / weight;
    double& tenant_vtime = tenant_vtime_[req.tenant_id];
    const double tag = std::max(tenant_vtime, global_vtime_) + cost;
    tenant_vtime = tag;
    return tag;
  }

  // Advances the global virtual time to the tag of an admitted request.
  void OnAdmit(double tag) { global_vtime_ = std::max(global_vtime_, tag); }

  // Refunds a shed request's virtual-time charge for the `unserved_tokens` it
  // will never receive (a preempted request that already decoded part of its
  // output keeps being charged for the served part — the tenant consumed that
  // GPU time). Leaving the full charge in place would deprioritize the
  // tenant's surviving traffic — the opposite of fair queueing. (Going below
  // the global virtual time is harmless: TagFor floors the next start at
  // global_vtime_, so no credit can be banked.)
  void OnShed(const TraceRequest& req, int unserved_tokens) {
    const double weight =
        std::max(config_.class_weight[static_cast<int>(req.slo)], 1e-9);
    const auto it = tenant_vtime_.find(req.tenant_id);
    if (it != tenant_vtime_.end()) {
      it->second -= static_cast<double>(std::max(0, unserved_tokens)) / weight;
    }
  }

 private:
  SchedulerConfig config_;
  double global_vtime_ = 0.0;
  std::map<int, double> tenant_vtime_;  // tenant id → virtual time
};

// Reorders the engine's waiting queue into this round's admission-consideration
// order. kFcfs is exactly the pre-scheduler stable sort by arrival, so
// default-config runs are bit-identical (golden-enforced); the other policies
// stable-sort on their keys, so ties preserve arrival order.
template <typename Queue>
void OrderQueueForPolicy(const SchedulerConfig& config, FairQueue& fair_queue,
                         Queue& queue) {
  switch (config.policy) {
    case SchedPolicy::kFcfs:
      std::stable_sort(queue.begin(), queue.end(),
                       [](const auto& a, const auto& b) {
                         return a.req.arrival_s < b.req.arrival_s;
                       });
      break;
    case SchedPolicy::kPriority:
      // SloClass values are already priority-ranked (interactive = 0 first).
      std::stable_sort(queue.begin(), queue.end(),
                       [](const auto& a, const auto& b) {
                         if (a.req.slo != b.req.slo) {
                           return static_cast<int>(a.req.slo) <
                                  static_cast<int>(b.req.slo);
                         }
                         return a.req.arrival_s < b.req.arrival_s;
                       });
      break;
    case SchedPolicy::kDwfq:
      // New arrivals sit untagged at the back in arrival order; stamp them in
      // that order, then serve by virtual finish tag. Re-queued (preempted)
      // requests keep their original tag — their service was already charged.
      for (auto& pending : queue) {
        if (pending.fair_tag < 0.0) {
          pending.fair_tag = fair_queue.TagFor(pending.req);
        }
      }
      std::stable_sort(queue.begin(), queue.end(),
                       [](const auto& a, const auto& b) {
                         return a.fair_tag < b.fair_tag;
                       });
      break;
  }
}

// True when the request's class E2E deadline can no longer be met, even if the
// engine served it immediately at the optimistic service estimate. The
// deadline is anchored at SloArrival(): a re-enqueued (crash-rerouted)
// request has already burned queue time between its original arrival and the
// re-enqueue, and anchoring at the re-enqueue arrival_s would ignore that
// elapsed time and over-admit doomed post-crash retries (regression-tested).
inline bool DeadlineUnmeetable(const SchedulerConfig& config, const TraceRequest& req,
                               double now, double optimistic_service_s) {
  const SloSpec& spec = config.slo.Of(req.slo);
  return now + config.admission_headroom * optimistic_service_s >
         req.SloArrival() + spec.e2e_s;
}

// The per-round admission-control pass shared by both engines: sheds every
// queued request whose deadline is already unmeetable and refunds its tenant's
// DWFQ virtual time for the unserved tokens. `min_service_s(elem)` returns the
// engine's optimistic service estimate; `unserved_tokens(elem)` the tokens the
// request will now never receive (everything for a fresh request, the
// remaining output for a resumed one). Per-request accounting is the caller's:
// `on_shed(const TraceRequest&)` fires once per shed request, and the engines
// route it into their "sched.shed{class=...}" registry counters and (when
// tracing) an admission.shed trace event — the scheduler keeps no counters of
// its own. No-op unless `config.admission_control`.
template <typename Queue, typename Estimator, typename Unserved, typename OnShed>
void ShedUnmeetable(const SchedulerConfig& config, FairQueue& fair_queue,
                    Queue& queue, double now, Estimator&& min_service_s,
                    Unserved&& unserved_tokens, OnShed&& on_shed) {
  if (!config.admission_control) {
    return;
  }
  for (auto it = queue.begin(); it != queue.end();) {
    if (DeadlineUnmeetable(config, it->req, now, min_service_s(*it))) {
      if (config.policy == SchedPolicy::kDwfq && it->fair_tag >= 0.0) {
        fair_queue.OnShed(it->req, unserved_tokens(*it));
      }
      on_shed(it->req);
      it = queue.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dz

#endif  // SRC_SERVING_SCHEDULER_H_
