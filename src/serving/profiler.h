// Offline profiling utilities (paper §5.4): picking N, the number of co-resident
// deltas, by replaying a short trace prefix for each candidate and choosing the lowest
// mean time-per-token; and partitioning a GPU cluster across multiple base models
// (paper §5.1: M base models → M serving groups).
#ifndef SRC_SERVING_PROFILER_H_
#define SRC_SERVING_PROFILER_H_

#include <vector>

#include "src/serving/engine.h"

namespace dz {

struct NProfileResult {
  int best_n = 0;
  // (candidate N, mean time per token) in candidate order.
  std::vector<std::pair<int, double>> samples;
};

// Runs the first `profile_seconds` of `trace` under each candidate N and returns the
// winner. The short-trace profile transfers to the full workload (paper Fig. 10).
NProfileResult ProfileConcurrentDeltas(const EngineConfig& config, const Trace& trace,
                                       const std::vector<int>& candidates,
                                       double profile_seconds);

// Cluster partitioning across base models: splits `total_gpus` proportionally to each
// group's expected load, honoring a per-group minimum of min_gpus[i] (the model's
// tensor-parallel footprint). Returns GPUs per group; check-fails if the minimums alone
// exceed the cluster.
std::vector<int> PartitionGpus(int total_gpus, const std::vector<double>& load,
                               const std::vector<int>& min_gpus);

}  // namespace dz

#endif  // SRC_SERVING_PROFILER_H_
