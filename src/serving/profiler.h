// Offline profiling utilities (paper §5.4): picking N, the number of co-resident
// deltas, by replaying a short trace prefix for each candidate and choosing the lowest
// mean time-per-token; and partitioning a GPU cluster across multiple base models
// (paper §5.1: M base models → M serving groups).
#ifndef SRC_SERVING_PROFILER_H_
#define SRC_SERVING_PROFILER_H_

#include <vector>

#include "src/serving/engine.h"

namespace dz {

// Outcome of the N-profiling sweep (paper §5.4 / Fig. 10).
struct NProfileResult {
  int best_n = 0;  // candidate N with the lowest mean time per token
  // (candidate N, mean time per token in simulated seconds) in candidate order.
  std::vector<std::pair<int, double>> samples;
};

// Runs the first `profile_seconds` (simulated seconds) of `trace` under each
// candidate N and returns the winner. The short-trace profile transfers to the
// full workload (paper Fig. 10).
NProfileResult ProfileConcurrentDeltas(const EngineConfig& config, const Trace& trace,
                                       const std::vector<int>& candidates,
                                       double profile_seconds);

// Cluster partitioning across base models (paper §5.1: M base models → M serving
// groups): splits `total_gpus` proportionally to each group's expected load
// (relative weights, any unit), honoring a per-group minimum of min_gpus[i] (the
// model's tensor-parallel footprint in GPUs). Returns GPUs per group; check-fails
// if the minimums alone exceed the cluster.
std::vector<int> PartitionGpus(int total_gpus, const std::vector<double>& load,
                               const std::vector<int>& min_gpus);

}  // namespace dz

#endif  // SRC_SERVING_PROFILER_H_
