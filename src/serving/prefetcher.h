// Shared prefetch driver for the serving engines (the async artifact-prefetch
// pipeline): warm-hint staging and the per-round lookahead pass both engines run,
// plus the ServeReport counter hand-off. Header-only so each engine's anonymous
// PendingReq type can flow through the template without a shared base class.
#ifndef SRC_SERVING_PREFETCHER_H_
#define SRC_SERVING_PREFETCHER_H_

#include <deque>
#include <set>
#include <vector>

#include "src/serving/artifact_store.h"
#include "src/serving/engine.h"

namespace dz {

// Filters `config.warm_hints` to valid variant ids and caps the list at the
// store's GPU capacity. The engines drain the result one low-priority transfer
// at a time (as channels go idle) starting at t = 0. Empty when disabled.
inline std::deque<int> PendingWarmHints(const PrefetchConfig& config, int n_models,
                                        int gpu_capacity) {
  std::deque<int> pending;
  if (!config.enabled) {
    return pending;
  }
  for (int hint : config.warm_hints) {
    if (static_cast<int>(pending.size()) >= gpu_capacity) {
      break;
    }
    if (hint >= 0 && hint < n_models) {
      pending.push_back(hint);
    }
  }
  return pending;
}

// One scheduling round of the lookahead pass (paper §8 / MetaSys-style
// pipelining): scans the engine's still-waiting `queue` (each element exposes
// `.req.model_id`) and issues low-priority loads for the next
// `config.lookahead` distinct variants, then drains leftover warm hints.
// `active` holds the variants the scheduler already owns (running, claimed, or
// admitted this round) — they are skipped as targets; `pinned` holds the
// artifact ids a prefetch must never evict (the running batch's artifacts).
// Additionally, the variants inside the speculation window (the first
// `lookahead` distinct waiting variants) are shielded from prefetch eviction:
// a near-head request can be resident-but-blocked (KV or batch-slot limits),
// and evicting its artifact for a speculation would re-pay the very load the
// blocked request was about to skip (priority inversion). The shield is
// deliberately window-bounded — protecting every queued variant would starve
// the prefetcher of eviction candidates under contention.
template <typename PendingQueue>
void RunPrefetchPass(ArtifactStore& store, const PrefetchConfig& config, double now,
                     const PendingQueue& queue, const std::set<int>& active,
                     const std::vector<int>& pinned, std::deque<int>& pending_hints) {
  if (!config.enabled) {
    return;
  }
  // The shield window mirrors the issue loop exactly (first `lookahead`
  // distinct non-active variants), so no prefetch target sits beyond it.
  std::set<int> protect_set(pinned.begin(), pinned.end());
  std::set<int> window;
  for (const auto& waiting : queue) {
    if (static_cast<int>(window.size()) >= config.lookahead) {
      break;
    }
    const int variant = waiting.req.model_id;
    if (active.count(variant) > 0) {
      continue;
    }
    if (window.insert(variant).second) {
      protect_set.insert(variant);
    }
  }
  const std::vector<int> protect(protect_set.begin(), protect_set.end());
  std::set<int> considered;
  for (const auto& waiting : queue) {
    if (static_cast<int>(considered.size()) >= config.lookahead) {
      break;
    }
    const int variant = waiting.req.model_id;
    if (active.count(variant) > 0 || !considered.insert(variant).second) {
      continue;
    }
    if (!store.IsResident(variant, now) && !store.IsLoading(variant, now)) {
      store.Prefetch(variant, now, protect);
    }
  }
  // Queued variants took priority; leftover warm hints use what is left of the
  // idle channel time.
  while (!pending_hints.empty()) {
    const int hint = pending_hints.front();
    if (store.IsResident(hint, now) || store.IsLoading(hint, now) ||
        considered.count(hint) > 0) {
      pending_hints.pop_front();  // already warm (or just attempted)
      continue;
    }
    if (!store.Prefetch(hint, now, protect).ok) {
      break;  // channel busy or no evictable slot: retry next round
    }
    pending_hints.pop_front();
  }
}

}  // namespace dz

#endif  // SRC_SERVING_PREFETCHER_H_
