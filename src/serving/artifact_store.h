// Hierarchical artifact placement: GPU ⇄ CPU ⇄ disk (paper §5.4 "Scalability").
//
// Tracks where each model artifact (compressed delta, LoRA adapter, or full model)
// currently lives, simulates asynchronous promotion through the storage hierarchy on
// shared transfer channels (disk and PCIe serialize independently), and evicts GPU
// residents LRU when space is needed. All times are simulated seconds.
#ifndef SRC_SERVING_ARTIFACT_STORE_H_
#define SRC_SERVING_ARTIFACT_STORE_H_

#include <cstddef>
#include <map>
#include <vector>

namespace dz {

struct ArtifactStoreConfig {
  size_t artifact_bytes = 0;      // per-artifact GPU footprint
  size_t gpu_budget_bytes = 0;    // GPU bytes available for artifacts (after base/kv)
  size_t cpu_budget_bytes = 0;    // host-memory cache capacity
  double disk_read_s = 0.0;       // disk → host time for one artifact
  double h2d_s = 0.0;             // host → device time for one artifact
};

class ArtifactStore {
 public:
  ArtifactStore(const ArtifactStoreConfig& config, int n_artifacts);

  // True when artifact is on the GPU and usable now.
  bool IsResident(int id, double now) const;
  // True when a load has been issued and is still in flight.
  bool IsLoading(int id, double now) const;

  // Outcome of RequestLoad. `ok == false` means no GPU space could be made even
  // after evicting every idle artifact (every slot pinned or mid-transfer);
  // `ready_at` is meaningful only when `ok` is true.
  struct LoadResult {
    bool ok = false;
    double ready_at = 0.0;
  };

  // Ensures a load toward GPU is in flight (no-op if resident/loading). On success
  // returns {true, t} where t is the time the artifact becomes GPU-resident.
  LoadResult RequestLoad(int id, double now, const std::vector<int>& pinned);

  // Marks use for LRU bookkeeping.
  void Touch(int id, double now);

  // Number of artifacts currently on the GPU (resident or arriving).
  int GpuCount(double now) const;

  // Maximum artifacts that fit on the GPU at once.
  int GpuCapacity() const;

  // Earliest pending load completion after `now` (or infinity when none).
  double NextLoadReady(double now) const;

  // Statistics.
  int total_loads() const { return total_loads_; }
  int disk_loads() const { return disk_loads_; }

 private:
  enum class Tier { kDisk, kCpu, kGpu };

  struct Entry {
    Tier tier = Tier::kDisk;
    double ready_at = 0.0;   // when the current (or last) transfer lands
    double last_use = 0.0;
    bool in_flight = false;
  };

  bool EvictOne(double now, const std::vector<int>& pinned);

  ArtifactStoreConfig config_;
  std::vector<Entry> entries_;
  double disk_free_at_ = 0.0;  // disk channel availability
  double pcie_free_at_ = 0.0;  // PCIe channel availability
  int total_loads_ = 0;
  int disk_loads_ = 0;
};

}  // namespace dz

#endif  // SRC_SERVING_ARTIFACT_STORE_H_
