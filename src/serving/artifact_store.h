// Hierarchical artifact placement: GPU ⇄ CPU ⇄ disk (paper §5.4 "Scalability").
//
// Tracks where each model artifact (compressed delta, LoRA adapter, or full model)
// currently lives, simulates asynchronous promotion through the storage hierarchy on
// shared transfer channels (disk and PCIe serialize independently, each a bounded-
// bandwidth queue: a transfer issued at time T starts when its channel frees and
// completes at `ready_at`, never blocking the caller), and evicts GPU residents LRU
// when space is needed. Demand loads (RequestLoad) and speculative prefetches
// (Prefetch) share the same channels, so prefetch traffic realistically delays demand
// traffic; the store additionally accounts prefetch effectiveness (hits / wasted
// evictions / stall seconds hidden) and per-channel busy time. All times are simulated
// seconds; all sizes are bytes.
#ifndef SRC_SERVING_ARTIFACT_STORE_H_
#define SRC_SERVING_ARTIFACT_STORE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/obs/trace_recorder.h"
#include "src/registry/registry.h"

namespace dz {

// A transfer-channel blackout window (transient network/fabric partition,
// fault-injection layer): while [start_s, end_s) covers a channel, no new
// transfer segment may START on it — an affected transfer defers its start to
// end_s (a transfer already in flight when the outage begins is assumed to
// complete; partitions sever new I/O, they do not corrupt it). Times are
// absolute simulated seconds on the trace clock.
struct ChannelOutage {
  TraceChannel channel = TraceChannel::kNone;  // kDisk, kPcie, or kNet
  double start_s = 0.0;
  double end_s = 0.0;
};

struct ArtifactStoreConfig {
  size_t artifact_bytes = 0;      // per-artifact GPU footprint (bytes)
  size_t gpu_budget_bytes = 0;    // GPU bytes available for artifacts (after base/kv)
  size_t cpu_budget_bytes = 0;    // host-memory cache capacity (bytes)
  double disk_read_s = 0.0;       // disk → host time for one artifact (seconds)
  double h2d_s = 0.0;             // host → device time for one artifact (seconds)
  // Channel blackout windows (empty, the default, is bit-identical to the
  // pre-fault store; golden-enforced). Validated and normalized at store
  // construction: end_s < start_s is rejected (DZ_CHECK), zero-length windows
  // are dropped, and overlapping/abutting windows merge per channel into a
  // deterministic sorted list.
  std::vector<ChannelOutage> outages;
  // Cluster-shared artifact registry (null, the default, keeps the PR 8
  // infinite-local-disk model). When attached, artifacts this node does not
  // hold locally are fetched over a bounded-bandwidth net channel from the
  // registry's live holders (possibly degraded through failover replicas or
  // erasure decode) and cached on the local disk tier afterwards.
  const ArtifactRegistry* registry = nullptr;
  int registry_node = 0;  // this store's node id in the registry
  // Artifacts already sitting in this node's local cache tier at t = 0 (the
  // elastic loop carries the previous epoch's cache contents through here).
  std::vector<int> registry_warm;
};

class ArtifactStore {
 public:
  // `n_artifacts` is the number of distinct artifact ids (variants) tracked.
  // All statistics live as "store.*" instruments in `registry` (the unified
  // metrics layer); when the caller passes none, the store owns a private
  // registry so the accessors below keep working stand-alone (tests, ad-hoc
  // use). Engines inject their per-run registry so store counters appear in
  // ServeReport::metrics snapshots alongside engine and scheduler metrics.
  // `recorder` (optional, engine-owned, may be disabled) receives one
  // store.load / store.prefetch span per channel segment of every transfer —
  // channel occupancy as the trace viewer's disk/pcie tracks.
  ArtifactStore(const ArtifactStoreConfig& config, int n_artifacts,
                MetricsRegistry* registry = nullptr,
                TraceRecorder* recorder = nullptr);

  // True when artifact is on the GPU and usable now.
  bool IsResident(int id, double now) const;
  // True when a load has been issued and is still in flight.
  bool IsLoading(int id, double now) const;

  // Outcome of RequestLoad/Prefetch. `ok == false` means no GPU space could be made
  // even after evicting every idle artifact (every slot pinned or mid-transfer);
  // `ready_at` is meaningful only when `ok` is true. `unavailable` is the
  // typed registry failure: too few live holders survive to source the bytes
  // at all — retrying later this epoch cannot succeed (liveness only changes
  // at epoch boundaries), so callers must park the request instead of
  // spinning.
  struct LoadResult {
    bool ok = false;
    double ready_at = 0.0;  // simulated seconds
    bool unavailable = false;
  };

  // Ensures a demand load toward GPU is in flight (no-op if resident/loading). On
  // success returns {true, t} where t is the time the artifact becomes GPU-resident.
  // Artifacts in `pinned` are never evicted to make room. When the request finds an
  // artifact that a prefetch already warmed, the saved wait is credited to
  // stall_hidden_s() and the prefetch counts as a hit.
  LoadResult RequestLoad(int id, double now, const std::vector<int>& pinned);

  // Speculatively warms an artifact on the same transfer channels (paper §8 /
  // MetaSys-style cross-layer pipelining: overlap artifact movement with compute).
  // Identical transfer mechanics to RequestLoad, but low-priority and tracked
  // separately:
  //   * issues only when the needed channels are idle at `now` (spare bandwidth;
  //     a prefetch never queues ahead of demand traffic) — returns {false} when
  //     busy and the caller retries on a later scheduling round;
  //   * never evicts an unused prefetched artifact (speculations do not
  //     cannibalize each other) nor — like demand loads — anything in `pinned`,
  //     so the running batch's artifacts are always safe;
  //   * stays tagged until first demand use; evicting a never-used prefetched
  //     artifact counts as wasted, demand use counts as a hit.
  LoadResult Prefetch(int id, double now, const std::vector<int>& pinned);

  // Marks demand use for LRU bookkeeping; also resolves a pending prefetch tag into
  // a hit (crediting the fully hidden transfer to stall_hidden_s()).
  void Touch(int id, double now);

  // Number of artifacts currently on the GPU (resident or arriving).
  int GpuCount(double now) const;

  // Maximum artifacts that fit on the GPU at once.
  int GpuCapacity() const;

  // Earliest pending load completion after `now` (or infinity when none).
  double NextLoadReady(double now) const;

  // Statistics — thin views over the registry instruments (the store keeps no
  // hand-maintained counters). Loads count PCIe (H2D) transfers; disk_loads the
  // subset that also paid the disk read. Prefetches are included in both (they
  // move real bytes).
  int total_loads() const { return static_cast<int>(loads_total_->value()); }
  int disk_loads() const { return static_cast<int>(loads_disk_->value()); }
  // Prefetch effectiveness: transfers issued speculatively, those demand-used at
  // least once (hits), and those evicted without ever being used (wasted).
  int prefetch_issued() const { return static_cast<int>(prefetch_issued_->value()); }
  int prefetch_hits() const { return static_cast<int>(prefetch_hits_->value()); }
  int prefetch_wasted() const { return static_cast<int>(prefetch_wasted_->value()); }
  // Seconds of artifact wait that demand requests skipped because a prefetch had
  // already (partially) covered the transfer.
  double stall_hidden_s() const { return stall_hidden_s_->value(); }
  // Cumulative busy seconds per transfer channel (for utilization = busy/makespan).
  double disk_busy_s() const { return disk_busy_s_->value(); }
  double pcie_busy_s() const { return pcie_busy_s_->value(); }
  // Registry tier-chain statistics (0 unless a registry is attached).
  int remote_reads() const {
    return reads_remote_ == nullptr ? 0 : static_cast<int>(reads_remote_->value());
  }
  int degraded_reads() const {
    return reads_degraded_ == nullptr ? 0
                                      : static_cast<int>(reads_degraded_->value());
  }
  int local_reads() const {
    return reads_local_ == nullptr ? 0 : static_cast<int>(reads_local_->value());
  }
  int unavailable_loads() const {
    return unavailable_ == nullptr ? 0 : static_cast<int>(unavailable_->value());
  }
  double net_busy_s() const {
    return net_busy_s_ == nullptr ? 0.0 : net_busy_s_->value();
  }

  // Artifact ids currently in this node's local cache tier (registry-attached
  // stores only; empty otherwise). The elastic loop snapshots this at epoch
  // end and replays it into the next epoch's `registry_warm`.
  std::vector<int> LocallyCached() const;

 private:
  enum class Tier { kDisk, kCpu, kGpu };

  struct Entry {
    Tier tier = Tier::kDisk;
    double ready_at = 0.0;   // when the current (or last) transfer lands
    double last_use = 0.0;
    bool in_flight = false;
    bool prefetched = false;       // warmed speculatively, no demand use yet
    double prefetch_cost_s = 0.0;  // transfer seconds the pending prefetch paid
  };

  // Evicts the LRU idle GPU resident not in `pinned`; with `spare_prefetched`,
  // unused prefetched entries are additionally protected (prefetch callers).
  bool EvictOne(double now, const std::vector<int>& pinned, bool spare_prefetched);
  // Earliest time >= t at which `channel` is outside every outage window.
  double DeferPastOutages(TraceChannel channel, double t) const;
  LoadResult IssueLoad(int id, double now, const std::vector<int>& pinned,
                       bool is_prefetch);
  void ResolvePrefetchHit(Entry& e, double now);

  ArtifactStoreConfig config_;
  std::vector<Entry> entries_;
  double disk_free_at_ = 0.0;  // disk channel availability
  double pcie_free_at_ = 0.0;  // PCIe channel availability
  double net_free_at_ = 0.0;   // net (remote-fetch) channel availability
  // Node-local cache tier (registry mode): true once this node holds the full
  // artifact bytes locally — as a registry holder, via registry_warm carry, or
  // after a completed remote fetch. Local artifacts pay disk/PCIe only.
  std::vector<char> local_;
  // Registry-backed statistics ("store.*" instruments, resolved once at
  // construction). `owned_registry_` backs the stand-alone (no injection) case.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  Counter* loads_total_ = nullptr;
  Counter* loads_disk_ = nullptr;
  Counter* prefetch_issued_ = nullptr;
  Counter* prefetch_hits_ = nullptr;
  Counter* prefetch_wasted_ = nullptr;
  Counter* stall_hidden_s_ = nullptr;
  Counter* disk_busy_s_ = nullptr;
  Counter* pcie_busy_s_ = nullptr;
  Gauge* gpu_resident_ = nullptr;
  // Registry instruments — resolved ONLY when a registry is attached, so
  // registry-off snapshots carry no new keys (default-output bit-identity).
  Counter* reads_local_ = nullptr;
  Counter* reads_remote_ = nullptr;
  Counter* reads_degraded_ = nullptr;
  Counter* unavailable_ = nullptr;
  Counter* net_busy_s_ = nullptr;
  Counter* net_bytes_ = nullptr;
  TraceRecorder* recorder_ = nullptr;  // not owned; may be null
};

}  // namespace dz

#endif  // SRC_SERVING_ARTIFACT_STORE_H_
