#include "src/compress/delta.h"

#include <cstring>

#include "src/compress/calibration.h"
#include "src/tensor/half.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace dz {

Matrix CompressedDeltaLayer::Dequantize() const {
  return is_sparse ? sparse.Dequantize() : dense.Dequantize();
}

Matrix CompressedDeltaLayer::MatmulNT(const Matrix& x) const {
  return is_sparse ? sparse.MatmulNT(x) : dense.MatmulNT(x);
}

size_t CompressedDeltaLayer::ByteSize() const {
  return is_sparse ? sparse.ByteSize() : dense.ByteSize();
}

namespace {

size_t Fp16Bytes(const Matrix& m) { return m.size() * 2; }

size_t Fp16Bytes(const std::vector<float>& v) { return v.size() * 2; }

void AppendFp16(ByteBuffer& out, const float* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const uint16_t h = FloatToHalfBits(data[i]);
    out.push_back(static_cast<uint8_t>(h & 0xFF));
    out.push_back(static_cast<uint8_t>(h >> 8));
  }
}

void AppendWords(ByteBuffer& out, const std::vector<uint32_t>& words) {
  for (uint32_t w : words) {
    out.push_back(static_cast<uint8_t>(w & 0xFF));
    out.push_back(static_cast<uint8_t>((w >> 8) & 0xFF));
    out.push_back(static_cast<uint8_t>((w >> 16) & 0xFF));
    out.push_back(static_cast<uint8_t>((w >> 24) & 0xFF));
  }
}

}  // namespace

size_t CompressedDelta::PackedByteSize() const {
  size_t total = 0;
  for (const auto& layer : layers) {
    total += layer.ByteSize();
  }
  // All-zero deltas (e.g. frozen embeddings) collapse to a 1-byte "unchanged" marker.
  total += embedding_delta.FrobeniusNorm() == 0.0 ? 1 : Fp16Bytes(embedding_delta);
  total += lm_head_delta.FrobeniusNorm() == 0.0 ? 1 : Fp16Bytes(lm_head_delta);
  total += Fp16Bytes(final_norm_delta);
  for (const auto& v : attn_norm_deltas) {
    total += Fp16Bytes(v);
  }
  for (const auto& v : mlp_norm_deltas) {
    total += Fp16Bytes(v);
  }
  return total;
}

ByteBuffer CompressedDelta::Serialize() const {
  ByteBuffer out;
  out.reserve(PackedByteSize());
  // Dump codes, indices, and quantization parameters in layer order. The exact field
  // order only needs to be deterministic for the lossless pass to be meaningful.
  for (const auto& layer : layers) {
    if (layer.is_sparse) {
      AppendWords(out, layer.sparse.packed_values());
      AppendWords(out, layer.sparse.packed_indices());
      AppendFp16(out, layer.sparse.scales().data(), layer.sparse.scales().size());
    } else {
      AppendWords(out, layer.dense.packed());
      AppendFp16(out, layer.dense.scales().data(), layer.dense.scales().size());
    }
  }
  if (embedding_delta.FrobeniusNorm() != 0.0) {
    AppendFp16(out, embedding_delta.data().data(), embedding_delta.size());
  } else {
    out.push_back(0);  // "unchanged" marker
  }
  if (lm_head_delta.FrobeniusNorm() != 0.0) {
    AppendFp16(out, lm_head_delta.data().data(), lm_head_delta.size());
  } else {
    out.push_back(0);
  }
  AppendFp16(out, final_norm_delta.data(), final_norm_delta.size());
  for (const auto& v : attn_norm_deltas) {
    AppendFp16(out, v.data(), v.size());
  }
  for (const auto& v : mlp_norm_deltas) {
    AppendFp16(out, v.data(), v.size());
  }
  return out;
}

void CompressedDelta::FinalizeStoredBytes() {
  if (config.lossless) {
    stored_bytes_ = GdeflateCompress(Serialize()).size();
  } else {
    stored_bytes_ = PackedByteSize();
  }
}

LinearOverlay CompressedDelta::MakeOverlay(const ModelWeights& base) const {
  LinearOverlay overlay;
  for (const auto& layer : layers) {
    // Find the matching base weight.
    const Matrix* base_w = nullptr;
    for (const auto& named : base.LinearLayers()) {
      if (named.name == layer.name) {
        base_w = named.weight;
        break;
      }
    }
    DZ_CHECK(base_w != nullptr);
    const CompressedDeltaLayer* delta_layer = &layer;
    overlay.ops[layer.name] = [base_w, delta_layer](const Matrix& x) {
      Matrix y = MatmulNT(x, *base_w);          // batched base-path GEMM
      y.AddInPlace(delta_layer->MatmulNT(x));   // sparse low-precision delta path
      return y;
    };
  }
  return overlay;
}

ModelWeights CompressedDelta::ApplyTo(const ModelWeights& base) const {
  ModelWeights merged = base;
  for (const auto& layer : layers) {
    for (auto& named : merged.LinearLayers()) {
      if (named.name == layer.name) {
        named.weight->AddInPlace(layer.Dequantize());
        break;
      }
    }
  }
  auto add_vec = [](std::vector<float>& dst, const std::vector<float>& delta) {
    DZ_CHECK_EQ(dst.size(), delta.size());
    for (size_t i = 0; i < dst.size(); ++i) {
      dst[i] += delta[i];
    }
  };
  merged.embedding.AddInPlace(embedding_delta);
  merged.lm_head.AddInPlace(lm_head_delta);
  add_vec(merged.final_norm, final_norm_delta);
  DZ_CHECK_EQ(attn_norm_deltas.size(), merged.layers.size());
  for (size_t i = 0; i < merged.layers.size(); ++i) {
    add_vec(merged.layers[i].attn_norm, attn_norm_deltas[i]);
    add_vec(merged.layers[i].mlp_norm, mlp_norm_deltas[i]);
  }
  return merged;
}

namespace {

// The four intra-block groups of Alg. 1's execution order: layers in a group share the
// same input activations, so one capture pass serves the whole group.
struct LayerGroup {
  std::vector<const char*> members;
};

const std::vector<LayerGroup>& BlockGroups() {
  static const std::vector<LayerGroup> groups = {
      {{"wq", "wk", "wv"}},
      {{"wo"}},
      {{"w_gate", "w_up"}},
      {{"w_down"}},
  };
  return groups;
}

Matrix* FindWeight(ModelWeights& w, const std::string& name) {
  for (auto& named : w.LinearLayers()) {
    if (named.name == name) {
      return named.weight;
    }
  }
  DZ_CHECK(false);
  return nullptr;
}

const Matrix* FindWeight(const ModelWeights& w, const std::string& name) {
  return FindWeight(const_cast<ModelWeights&>(w), name);
}

std::vector<float> VecDelta(const std::vector<float>& ft, const std::vector<float>& base) {
  DZ_CHECK_EQ(ft.size(), base.size());
  std::vector<float> d(ft.size());
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = RoundToHalf(ft[i] - base[i]);
  }
  return d;
}

Matrix MatrixDeltaFp16(const Matrix& ft, const Matrix& base) {
  Matrix d = Sub(ft, base);
  d.RoundToHalfInPlace();
  return d;
}

}  // namespace

CompressedDelta DeltaCompress(const ModelWeights& base, const ModelWeights& finetuned,
                              const std::vector<std::vector<int>>& calibration,
                              const DeltaCompressConfig& config,
                              ThreadPool* pool_override) {
  DZ_CHECK_EQ(base.config.n_layers, finetuned.config.n_layers);
  CompressedDelta out;
  out.config = config;

  ObsConfig obs_config;
  obs_config.bits = config.bits;
  obs_config.group_size = config.group_size;
  obs_config.prune24 = config.sparse24;
  obs_config.damp_ratio = config.damp_ratio;

  // Work model starts as the fine-tuned model; every compressed layer is replaced by
  // its reconstruction w_base + Δ̃ before later layers are calibrated (Alg. 1 line 6).
  ModelWeights work = finetuned;

  // Alg. 1 is sequential across groups (each group's calibration inputs depend
  // on the reconstructions of everything before it), but the members of one
  // group share the same input x and are independent of each other — compress
  // them concurrently on the global pool. Results land in per-member slots and
  // are committed in member order, so the artifact is bit-identical for any
  // thread count. The capture itself parallelizes across calibration sequences
  // inside CaptureLayerInput.
  ThreadPool& pool =
      pool_override != nullptr ? *pool_override : ThreadPool::Global();
  for (int li = 0; li < base.config.n_layers; ++li) {
    for (const LayerGroup& group : BlockGroups()) {
      const std::string capture_name = LinearLayerName(li, group.members.front());
      const Transformer snapshot(work);
      const Matrix x = CaptureLayerInput(snapshot, calibration, capture_name, &pool);

      const size_t n_members = group.members.size();
      std::vector<CompressedDeltaLayer> group_layers(n_members);
      std::vector<Matrix> group_reconstructed(n_members);
      pool.ForEachTask(n_members, [&](size_t mi) {
        const std::string name = LinearLayerName(li, group.members[mi]);
        const Matrix* w_base = FindWeight(base, name);
        const Matrix* w_ft = FindWeight(finetuned, name);
        const Matrix delta = Sub(*w_ft, *w_base);

        const Matrix compressed =
            config.use_obs ? ObsCompress(delta, x, obs_config)
                           : RtnCompress(delta, obs_config);

        CompressedDeltaLayer layer;
        layer.name = name;
        layer.is_sparse = config.sparse24;
        if (config.sparse24) {
          layer.sparse =
              Sparse24Matrix::Pack(compressed, config.bits, config.group_size);
        } else {
          layer.dense =
              PackedQuantMatrix::Quantize(compressed, config.bits, config.group_size);
        }
        // Reconstruct with exactly what will be served (packed → dequantized).
        Matrix reconstructed = layer.Dequantize();
        reconstructed.AddInPlace(*w_base);
        group_reconstructed[mi] = std::move(reconstructed);
        group_layers[mi] = std::move(layer);
      });
      for (size_t mi = 0; mi < n_members; ++mi) {
        *FindWeight(work, LinearLayerName(li, group.members[mi])) =
            std::move(group_reconstructed[mi]);
        out.layers.push_back(std::move(group_layers[mi]));
      }
    }
  }

  // Uncompressed fp16 deltas for the non-linear parameter groups.
  out.embedding_delta = MatrixDeltaFp16(finetuned.embedding, base.embedding);
  out.lm_head_delta = MatrixDeltaFp16(finetuned.lm_head, base.lm_head);
  out.final_norm_delta = VecDelta(finetuned.final_norm, base.final_norm);
  for (size_t i = 0; i < base.layers.size(); ++i) {
    out.attn_norm_deltas.push_back(
        VecDelta(finetuned.layers[i].attn_norm, base.layers[i].attn_norm));
    out.mlp_norm_deltas.push_back(
        VecDelta(finetuned.layers[i].mlp_norm, base.layers[i].mlp_norm));
  }
  out.FinalizeStoredBytes();
  return out;
}

ModelWeights SparseGptCompressModel(const ModelWeights& finetuned,
                                    const std::vector<std::vector<int>>& calibration,
                                    const ObsConfig& config, size_t* linear_bytes) {
  ModelWeights work = finetuned;
  size_t bytes = 0;
  for (int li = 0; li < finetuned.config.n_layers; ++li) {
    for (const LayerGroup& group : BlockGroups()) {
      const std::string capture_name = LinearLayerName(li, group.members.front());
      const Transformer snapshot(work);
      const Matrix x = CaptureLayerInput(snapshot, calibration, capture_name);
      for (const char* member : group.members) {
        const std::string name = LinearLayerName(li, member);
        const Matrix compressed = ObsCompress(*FindWeight(work, name), x, config);
        if (config.prune24) {
          const Sparse24Matrix packed =
              Sparse24Matrix::Pack(compressed, config.bits, config.group_size);
          bytes += packed.ByteSize();
          *FindWeight(work, name) = packed.Dequantize();
        } else {
          const PackedQuantMatrix packed =
              PackedQuantMatrix::Quantize(compressed, config.bits, config.group_size);
          bytes += packed.ByteSize();
          *FindWeight(work, name) = packed.Dequantize();
        }
      }
    }
  }
  if (linear_bytes != nullptr) {
    *linear_bytes = bytes;
  }
  return work;
}

ModelWeights AwqCompressModel(const ModelWeights& finetuned,
                              const std::vector<std::vector<int>>& calibration,
                              const AwqConfig& config, size_t* linear_bytes) {
  ModelWeights work = finetuned;
  size_t bytes = 0;
  for (int li = 0; li < finetuned.config.n_layers; ++li) {
    for (const LayerGroup& group : BlockGroups()) {
      const std::string capture_name = LinearLayerName(li, group.members.front());
      const Transformer snapshot(work);
      const Matrix x = CaptureLayerInput(snapshot, calibration, capture_name);
      for (const char* member : group.members) {
        const std::string name = LinearLayerName(li, member);
        AwqResult result = AwqQuantize(*FindWeight(work, name), x, config);
        bytes += result.stored_bytes;
        *FindWeight(work, name) = std::move(result.weights);
      }
    }
  }
  if (linear_bytes != nullptr) {
    *linear_bytes = bytes;
  }
  return work;
}

}  // namespace dz
