#include "src/compress/awq.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/packed_quant.h"
#include "src/util/check.h"

namespace dz {

AwqResult AwqQuantize(const Matrix& w, const Matrix& x, const AwqConfig& config) {
  DZ_CHECK_EQ(w.cols(), x.cols());
  DZ_CHECK_GT(x.rows(), 0);
  const int in = w.cols();

  // Per-channel activation magnitude.
  std::vector<float> act(static_cast<size_t>(in), 0.0f);
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.row(r);
    for (int c = 0; c < in; ++c) {
      act[static_cast<size_t>(c)] += std::abs(row[c]);
    }
  }
  float mean_act = 0.0f;
  for (auto& a : act) {
    a /= static_cast<float>(x.rows());
    mean_act += a;
  }
  mean_act /= static_cast<float>(in);

  std::vector<float> scale(static_cast<size_t>(in), 1.0f);
  for (int c = 0; c < in; ++c) {
    // Normalized so a flat activation profile gives scale 1 everywhere.
    const float rel = act[static_cast<size_t>(c)] / std::max(mean_act, 1e-12f);
    scale[static_cast<size_t>(c)] =
        std::clamp(std::pow(rel, config.alpha), 0.25f, 4.0f);
  }

  Matrix scaled = w;
  for (int r = 0; r < scaled.rows(); ++r) {
    float* row = scaled.row(r);
    for (int c = 0; c < in; ++c) {
      row[c] *= scale[static_cast<size_t>(c)];
    }
  }
  const PackedQuantMatrix packed =
      PackedQuantMatrix::Quantize(scaled, config.bits, config.group_size);
  AwqResult result;
  result.weights = packed.Dequantize();
  for (int r = 0; r < result.weights.rows(); ++r) {
    float* row = result.weights.row(r);
    for (int c = 0; c < in; ++c) {
      row[c] /= scale[static_cast<size_t>(c)];
    }
  }
  result.stored_bytes = packed.ByteSize() + static_cast<size_t>(in) * 2;  // fp16 scales
  return result;
}

}  // namespace dz
