#include "src/compress/calibration.h"

#include "src/util/check.h"

namespace dz {

Matrix CaptureLayerInput(const Transformer& model,
                         const std::vector<std::vector<int>>& calibration,
                         const std::string& layer_name) {
  DZ_CHECK(!calibration.empty());
  // Find the weight so the overlay can still produce the layer's normal output.
  const Matrix* weight = nullptr;
  for (const auto& layer : model.weights().LinearLayers()) {
    if (layer.name == layer_name) {
      weight = layer.weight;
      break;
    }
  }
  DZ_CHECK(weight != nullptr);

  std::vector<Matrix> captured;
  LinearOverlay overlay;
  overlay.ops[layer_name] = [weight, &captured](const Matrix& x) {
    captured.push_back(x);
    return MatmulNT(x, *weight);
  };
  for (const auto& tokens : calibration) {
    model.Forward(tokens, nullptr, &overlay);
  }

  int total_rows = 0;
  for (const Matrix& m : captured) {
    total_rows += m.rows();
  }
  DZ_CHECK_GT(total_rows, 0);
  Matrix stacked(total_rows, captured.front().cols());
  int row = 0;
  for (const Matrix& m : captured) {
    for (int r = 0; r < m.rows(); ++r) {
      std::copy(m.row(r), m.row(r) + m.cols(), stacked.row(row++));
    }
  }
  return stacked;
}

}  // namespace dz
