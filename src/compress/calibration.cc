#include "src/compress/calibration.h"

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace dz {

Matrix CaptureLayerInput(const Transformer& model,
                         const std::vector<std::vector<int>>& calibration,
                         const std::string& layer_name, ThreadPool* pool) {
  DZ_CHECK(!calibration.empty());
  // Find the weight so the overlay can still produce the layer's normal output.
  const Matrix* weight = nullptr;
  for (const auto& layer : model.weights().LinearLayers()) {
    if (layer.name == layer_name) {
      weight = layer.weight;
      break;
    }
  }
  DZ_CHECK(weight != nullptr);

  // Forward passes over the calibration sequences are independent; run them
  // across the pool, each with its own overlay capturing into its own slot so
  // the stacked result is in calibration order regardless of thread count.
  std::vector<std::vector<Matrix>> captured(calibration.size());
  ThreadPool& workers = pool != nullptr ? *pool : ThreadPool::Global();
  workers.ParallelFor(
      calibration.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          std::vector<Matrix>* slot = &captured[i];
          LinearOverlay overlay;
          overlay.ops[layer_name] = [weight, slot](const Matrix& x) {
            slot->push_back(x);
            return MatmulNT(x, *weight);
          };
          model.Forward(calibration[i], nullptr, &overlay);
        }
      });

  int total_rows = 0;
  int cols = 0;
  for (const auto& per_seq : captured) {
    for (const Matrix& m : per_seq) {
      total_rows += m.rows();
      cols = m.cols();
    }
  }
  DZ_CHECK_GT(total_rows, 0);
  Matrix stacked(total_rows, cols);
  int row = 0;
  for (const auto& per_seq : captured) {
    for (const Matrix& m : per_seq) {
      for (int r = 0; r < m.rows(); ++r) {
        std::copy(m.row(r), m.row(r) + m.cols(), stacked.row(row++));
      }
    }
  }
  return stacked;
}

}  // namespace dz
