#include "src/compress/serialize.h"

#include <cstdio>
#include <cstring>

#include "src/tensor/half.h"
#include "src/util/check.h"

namespace dz {

namespace {

constexpr uint32_t kMagic = 0x50495A44;  // "DZIP"
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(ByteBuffer& out) : out_(out) {}

  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
    }
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    U32(bits);
  }
  void Fp16(float v) {
    const uint16_t h = FloatToHalfBits(v);
    out_.push_back(static_cast<uint8_t>(h & 0xFF));
    out_.push_back(static_cast<uint8_t>(h >> 8));
  }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Words(const std::vector<uint32_t>& words) {
    U64(words.size());
    for (uint32_t w : words) {
      U32(w);
    }
  }
  void Fp16Vec(const std::vector<float>& v) {
    U64(v.size());
    for (float x : v) {
      Fp16(x);
    }
  }
  void Bytes(const std::vector<uint8_t>& v) {
    U64(v.size());
    out_.insert(out_.end(), v.begin(), v.end());
  }
  void Fp16Matrix(const Matrix& m) {
    U32(static_cast<uint32_t>(m.rows()));
    U32(static_cast<uint32_t>(m.cols()));
    for (float x : m.data()) {
      Fp16(x);
    }
  }

 private:
  ByteBuffer& out_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  uint8_t U8() { return Take(1) ? data_[pos_ - 1] : 0; }
  uint32_t U32() {
    if (!Take(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }
  float F32() {
    const uint32_t bits = U32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  float Fp16() {
    if (!Take(2)) {
      return 0.0f;
    }
    const uint16_t h = static_cast<uint16_t>(data_[pos_ - 2]) |
                       (static_cast<uint16_t>(data_[pos_ - 1]) << 8);
    return HalfBitsToFloat(h);
  }
  std::string String() {
    const uint32_t n = U32();
    if (!Take(n)) {
      return "";
    }
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }
  std::vector<uint32_t> Words() {
    const uint64_t n = U64();
    std::vector<uint32_t> v;
    if (n > size_) {  // cheap sanity bound for corrupt headers
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (uint64_t i = 0; i < n && ok_; ++i) {
      v.push_back(U32());
    }
    return v;
  }
  std::vector<float> Fp16Vec() {
    const uint64_t n = U64();
    std::vector<float> v;
    if (n > size_) {
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (uint64_t i = 0; i < n && ok_; ++i) {
      v.push_back(Fp16());
    }
    return v;
  }
  std::vector<uint8_t> Bytes() {
    const uint64_t n = U64();
    std::vector<uint8_t> v;
    if (!Take(n)) {
      return v;
    }
    v.assign(data_ + pos_ - n, data_ + pos_);
    return v;
  }
  Matrix Fp16Matrix() {
    const uint32_t rows = U32();
    const uint32_t cols = U32();
    if (static_cast<uint64_t>(rows) * cols * 2 > size_) {
      ok_ = false;
      return Matrix();
    }
    Matrix m(static_cast<int>(rows), static_cast<int>(cols));
    for (auto& x : m.data()) {
      x = Fp16();
    }
    return m;
  }

 private:
  bool Take(size_t n) {
    if (!ok_ || pos_ + n > size_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

ByteBuffer EncodeDelta(const CompressedDelta& delta) {
  ByteBuffer out;
  Writer w(out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(delta.config.bits));
  w.U8(delta.config.sparse24 ? 1 : 0);
  w.U32(static_cast<uint32_t>(delta.config.group_size));
  w.U8(delta.config.lossless ? 1 : 0);
  w.U8(delta.config.use_obs ? 1 : 0);
  w.F32(delta.config.damp_ratio);

  w.U32(static_cast<uint32_t>(delta.layers.size()));
  for (const auto& layer : delta.layers) {
    w.String(layer.name);
    w.U8(layer.is_sparse ? 1 : 0);
    if (layer.is_sparse) {
      w.U32(static_cast<uint32_t>(layer.sparse.rows()));
      w.U32(static_cast<uint32_t>(layer.sparse.cols()));
      w.U32(static_cast<uint32_t>(layer.sparse.bits()));
      w.Words(layer.sparse.packed_values());
      w.Words(layer.sparse.packed_indices());
      w.Fp16Vec(layer.sparse.scales());
      w.Bytes(layer.sparse.zeros());
    } else {
      w.U32(static_cast<uint32_t>(layer.dense.rows()));
      w.U32(static_cast<uint32_t>(layer.dense.cols()));
      w.U32(static_cast<uint32_t>(layer.dense.bits()));
      w.Words(layer.dense.packed());
      w.Fp16Vec(layer.dense.scales());
      w.Bytes(layer.dense.zeros());
    }
  }
  w.Fp16Matrix(delta.embedding_delta);
  w.Fp16Matrix(delta.lm_head_delta);
  w.Fp16Vec(delta.final_norm_delta);
  w.U32(static_cast<uint32_t>(delta.attn_norm_deltas.size()));
  for (size_t i = 0; i < delta.attn_norm_deltas.size(); ++i) {
    w.Fp16Vec(delta.attn_norm_deltas[i]);
    w.Fp16Vec(delta.mlp_norm_deltas[i]);
  }
  return out;
}

bool DecodeDelta(const ByteBuffer& buffer, CompressedDelta& out) {
  Reader r(buffer.data(), buffer.size());
  if (r.U32() != kMagic) {
    return false;
  }
  if (r.U32() != kVersion) {
    return false;
  }
  out = CompressedDelta();
  out.config.bits = static_cast<int>(r.U32());
  out.config.sparse24 = r.U8() != 0;
  out.config.group_size = static_cast<int>(r.U32());
  out.config.lossless = r.U8() != 0;
  out.config.use_obs = r.U8() != 0;
  out.config.damp_ratio = r.F32();

  const uint32_t n_layers = r.U32();
  if (!r.ok() || n_layers > 1u << 20) {
    return false;
  }
  for (uint32_t i = 0; i < n_layers; ++i) {
    CompressedDeltaLayer layer;
    layer.name = r.String();
    layer.is_sparse = r.U8() != 0;
    const int rows = static_cast<int>(r.U32());
    const int cols = static_cast<int>(r.U32());
    const int bits = static_cast<int>(r.U32());
    if (!r.ok()) {
      return false;
    }
    if (layer.is_sparse) {
      auto packed = r.Words();
      auto indices = r.Words();
      auto scales = r.Fp16Vec();
      auto zeros = r.Bytes();
      if (!r.ok()) {
        return false;
      }
      layer.sparse = Sparse24Matrix::FromStorage(rows, cols, bits, out.config.group_size,
                                                 std::move(packed), std::move(indices),
                                                 std::move(scales), std::move(zeros));
    } else {
      auto packed = r.Words();
      auto scales = r.Fp16Vec();
      auto zeros = r.Bytes();
      if (!r.ok()) {
        return false;
      }
      layer.dense = PackedQuantMatrix::FromStorage(rows, cols, bits,
                                                   out.config.group_size,
                                                   std::move(packed), std::move(scales),
                                                   std::move(zeros));
    }
    out.layers.push_back(std::move(layer));
  }
  out.embedding_delta = r.Fp16Matrix();
  out.lm_head_delta = r.Fp16Matrix();
  out.final_norm_delta = r.Fp16Vec();
  const uint32_t blocks = r.U32();
  if (!r.ok() || blocks > 1u << 16) {
    return false;
  }
  for (uint32_t i = 0; i < blocks; ++i) {
    out.attn_norm_deltas.push_back(r.Fp16Vec());
    out.mlp_norm_deltas.push_back(r.Fp16Vec());
  }
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  out.FinalizeStoredBytes();
  return true;
}

bool WriteDeltaFile(const std::string& path, const CompressedDelta& delta) {
  const ByteBuffer buffer = EncodeDelta(delta);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  std::fclose(f);
  return written == buffer.size();
}

bool ReadDeltaFile(const std::string& path, CompressedDelta& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  ByteBuffer buffer(static_cast<size_t>(size));
  const size_t read = std::fread(buffer.data(), 1, buffer.size(), f);
  std::fclose(f);
  if (read != buffer.size()) {
    return false;
  }
  return DecodeDelta(buffer, out);
}

}  // namespace dz
