// AWQ-style activation-aware weight quantization (baseline from paper Table 1).
//
// Per input channel c, a scale s_c = (mean|X_c|)^α is folded into the weights before
// round-to-nearest group quantization and divided back out afterwards:
//     W̃[:,c] = dequant(quant(W[:,c] · s_c)) / s_c
// Salient (high-activation) channels get finer effective resolution. No sparsity, so
// the compression ratio is lower than ΔCompress (as in the paper).
#ifndef SRC_COMPRESS_AWQ_H_
#define SRC_COMPRESS_AWQ_H_

#include "src/tensor/matrix.h"

namespace dz {

struct AwqConfig {
  int bits = 4;
  int group_size = 64;
  float alpha = 0.5f;  // scale exponent; 0 disables activation awareness
};

struct AwqResult {
  Matrix weights;      // effective dense weights after quantize/dequantize
  size_t stored_bytes = 0;  // packed codes + group params + fp16 channel scales
};

AwqResult AwqQuantize(const Matrix& w, const Matrix& x, const AwqConfig& config);

}  // namespace dz

#endif  // SRC_COMPRESS_AWQ_H_
