// Calibration-activation capture: runs token sequences through a model and records the
// inputs that reach a given linear layer. ΔCompress and the SparseGPT/AWQ baselines all
// calibrate on these captured activations (paper Alg. 1's X_n).
#ifndef SRC_COMPRESS_CALIBRATION_H_
#define SRC_COMPRESS_CALIBRATION_H_

#include <string>
#include <vector>

#include "src/nn/transformer.h"
#include "src/tensor/matrix.h"

namespace dz {

class ThreadPool;

// Stacks the activation rows observed at `layer_name` across all calibration
// sequences. The model's own (possibly partially reconstructed) weights produce the
// activations, which is exactly the "reconstruct then recompute inputs" discipline of
// Alg. 1 lines 6–7. Sequences run concurrently on `pool` (ThreadPool::Global()
// when null); the stacked result is in calibration order for any thread count.
Matrix CaptureLayerInput(const Transformer& model,
                         const std::vector<std::vector<int>>& calibration,
                         const std::string& layer_name, ThreadPool* pool = nullptr);

}  // namespace dz

#endif  // SRC_COMPRESS_CALIBRATION_H_
