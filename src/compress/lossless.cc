#include "src/compress/lossless.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>

#include "src/util/check.h"

namespace dz {

namespace {

// ---------------------------------------------------------------------------
// Bit I/O
// ---------------------------------------------------------------------------

class BitWriter {
 public:
  void Put(uint32_t bits, int count) {
    DZ_CHECK_LE(count, 24);
    acc_ |= static_cast<uint64_t>(bits & ((1u << count) - 1u)) << fill_;
    fill_ += count;
    while (fill_ >= 8) {
      out_.push_back(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }
  ByteBuffer Finish() {
    if (fill_ > 0) {
      out_.push_back(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

 private:
  ByteBuffer out_;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint32_t Get(int count) {
    while (fill_ < count) {
      DZ_CHECK_LT(pos_, size_);
      acc_ |= static_cast<uint64_t>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    const uint32_t v = static_cast<uint32_t>(acc_ & ((1ull << count) - 1ull));
    acc_ >>= count;
    fill_ -= count;
    return v;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

// ---------------------------------------------------------------------------
// Canonical Huffman over the token alphabet:
//   0..255  literal bytes
//   256     end-of-block
//   257     match marker (followed by raw length byte and 15-bit distance)
// ---------------------------------------------------------------------------

constexpr int kSymbols = 258;
constexpr int kEob = 256;
constexpr int kMatch = 257;
constexpr int kMaxCodeLen = 15;
constexpr int kMinMatch = 4;
constexpr int kMaxMatch = kMinMatch + 255;
constexpr int kWindow = 1 << 15;

// Computes code lengths with a pairing heap; if the tree gets deeper than kMaxCodeLen,
// frequencies are flattened and the build retried (classic length-limiting trick).
std::vector<uint8_t> BuildCodeLengths(std::vector<uint64_t> freq) {
  for (;;) {
    struct Node {
      uint64_t weight;
      int index;  // < kSymbols: leaf; else internal
    };
    auto cmp = [](const Node& a, const Node& b) { return a.weight > b.weight; };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
    std::vector<int> parent;
    parent.reserve(kSymbols * 2);
    int next_internal = kSymbols;
    std::vector<int> left, right;
    std::vector<uint8_t> depth(static_cast<size_t>(kSymbols), 0);

    int present = 0;
    for (int s = 0; s < kSymbols; ++s) {
      if (freq[static_cast<size_t>(s)] > 0) {
        heap.push({freq[static_cast<size_t>(s)], s});
        ++present;
      }
    }
    if (present == 0) {
      return depth;
    }
    if (present == 1) {
      for (int s = 0; s < kSymbols; ++s) {
        if (freq[static_cast<size_t>(s)] > 0) {
          depth[static_cast<size_t>(s)] = 1;
        }
      }
      return depth;
    }

    struct Internal {
      int a, b;
    };
    std::vector<Internal> internals;
    while (heap.size() > 1) {
      const Node x = heap.top();
      heap.pop();
      const Node y = heap.top();
      heap.pop();
      internals.push_back({x.index, y.index});
      heap.push({x.weight + y.weight, next_internal++});
    }
    // Depth-assign by walking internals from the root down.
    std::vector<uint8_t> idepth(internals.size(), 0);
    bool too_deep = false;
    for (int i = static_cast<int>(internals.size()) - 1; i >= 0; --i) {
      const uint8_t d = idepth[static_cast<size_t>(i)];
      for (int child : {internals[static_cast<size_t>(i)].a,
                        internals[static_cast<size_t>(i)].b}) {
        if (child >= kSymbols) {
          idepth[static_cast<size_t>(child - kSymbols)] = d + 1;
        } else {
          depth[static_cast<size_t>(child)] = d + 1;
          if (d + 1 > kMaxCodeLen) {
            too_deep = true;
          }
        }
      }
    }
    if (!too_deep) {
      return depth;
    }
    for (auto& f : freq) {
      f = (f + 1) / 2;  // flatten and retry
    }
  }
}

// Canonical code assignment from lengths.
std::vector<uint32_t> CanonicalCodes(const std::vector<uint8_t>& lengths) {
  std::vector<uint32_t> codes(lengths.size(), 0);
  std::vector<int> count(kMaxCodeLen + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<uint32_t> next(kMaxCodeLen + 1, 0);
  uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + static_cast<uint32_t>(count[l - 1])) << 1;
    next[static_cast<size_t>(l)] = code;
  }
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = next[lengths[s]]++;
    }
  }
  return codes;
}

// Slow-but-simple canonical decoder.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<uint8_t>& lengths) : lengths_(lengths) {
    codes_ = CanonicalCodes(lengths);
  }

  int Decode(BitReader& reader) const {
    uint32_t code = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      code = (code << 1) | reader.Get(1);
      for (size_t s = 0; s < lengths_.size(); ++s) {
        if (lengths_[s] == len && codes_[s] == code) {
          return static_cast<int>(s);
        }
      }
    }
    DZ_CHECK(false);
    return -1;
  }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> codes_;
};

// Bits are emitted MSB-first for canonical codes.
void PutCode(BitWriter& writer, uint32_t code, int len) {
  for (int i = len - 1; i >= 0; --i) {
    writer.Put((code >> i) & 1u, 1);
  }
}

// ---------------------------------------------------------------------------
// LZ77 with hash chains
// ---------------------------------------------------------------------------

struct Token {
  bool is_match;
  uint8_t literal;
  int length;
  int distance;
};

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit hash
}

std::vector<Token> Lz77Parse(const ByteBuffer& input) {
  std::vector<Token> tokens;
  const size_t n = input.size();
  constexpr uint32_t kHashSize = 1 << 13;
  constexpr int kMaxChain = 32;
  std::vector<int> head(kHashSize, -1);
  std::vector<int> prev(n, -1);

  size_t i = 0;
  while (i < n) {
    int best_len = 0;
    int best_dist = 0;
    if (i + kMinMatch <= n) {
      const uint32_t h = Hash4(input.data() + i);
      int cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain < kMaxChain &&
             static_cast<size_t>(cand) + kWindow > i) {
        int len = 0;
        const int max_len =
            static_cast<int>(std::min<size_t>(kMaxMatch, n - i));
        while (len < max_len && input[static_cast<size_t>(cand) + len] == input[i + len]) {
          ++len;
        }
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = static_cast<int>(i) - cand;
          if (len == kMaxMatch) {
            break;
          }
        }
        cand = prev[static_cast<size_t>(cand)];
        ++chain;
      }
      // Insert current position into the chain.
      prev[i] = head[h];
      head[h] = static_cast<int>(i);
    }
    if (best_len >= kMinMatch) {
      tokens.push_back({true, 0, best_len, best_dist});
      // Insert skipped positions so later matches can reference them.
      const size_t end = i + static_cast<size_t>(best_len);
      for (size_t p = i + 1; p < end && p + kMinMatch <= n; ++p) {
        const uint32_t h = Hash4(input.data() + p);
        prev[p] = head[h];
        head[h] = static_cast<int>(p);
      }
      i = end;
    } else {
      tokens.push_back({false, input[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

void PutU32(ByteBuffer& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ByteBuffer GdeflateCompress(const ByteBuffer& input) {
  const std::vector<Token> tokens = Lz77Parse(input);

  std::vector<uint64_t> freq(static_cast<size_t>(kSymbols), 0);
  for (const Token& t : tokens) {
    ++freq[t.is_match ? kMatch : t.literal];
  }
  ++freq[kEob];
  const std::vector<uint8_t> lengths = BuildCodeLengths(freq);
  const std::vector<uint32_t> codes = CanonicalCodes(lengths);

  ByteBuffer out;
  PutU32(out, static_cast<uint32_t>(input.size()));
  // Header: 4-bit code lengths, two per byte.
  for (int s = 0; s < kSymbols; s += 2) {
    const uint8_t lo = lengths[static_cast<size_t>(s)];
    const uint8_t hi = s + 1 < kSymbols ? lengths[static_cast<size_t>(s + 1)] : 0;
    out.push_back(static_cast<uint8_t>(lo | (hi << 4)));
  }

  BitWriter writer;
  for (const Token& t : tokens) {
    if (t.is_match) {
      PutCode(writer, codes[kMatch], lengths[kMatch]);
      writer.Put(static_cast<uint32_t>(t.length - kMinMatch), 8);
      writer.Put(static_cast<uint32_t>(t.distance - 1), 15);
    } else {
      PutCode(writer, codes[t.literal], lengths[t.literal]);
    }
  }
  PutCode(writer, codes[kEob], lengths[kEob]);
  const ByteBuffer body = writer.Finish();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

ByteBuffer GdeflateDecompress(const ByteBuffer& compressed) {
  DZ_CHECK_GE(compressed.size(), 4u + kSymbols / 2);
  const uint32_t original_size = GetU32(compressed.data());
  std::vector<uint8_t> lengths(static_cast<size_t>(kSymbols), 0);
  for (int s = 0; s < kSymbols; s += 2) {
    const uint8_t packed = compressed[4 + static_cast<size_t>(s / 2)];
    lengths[static_cast<size_t>(s)] = packed & 0x0F;
    if (s + 1 < kSymbols) {
      lengths[static_cast<size_t>(s + 1)] = packed >> 4;
    }
  }
  const HuffmanDecoder decoder(lengths);
  const size_t header = 4 + kSymbols / 2;
  BitReader reader(compressed.data() + header, compressed.size() - header);

  ByteBuffer out;
  out.reserve(original_size);
  for (;;) {
    const int sym = decoder.Decode(reader);
    if (sym == kEob) {
      break;
    }
    if (sym == kMatch) {
      const int length = static_cast<int>(reader.Get(8)) + kMinMatch;
      const int distance = static_cast<int>(reader.Get(15)) + 1;
      DZ_CHECK_LE(static_cast<size_t>(distance), out.size());
      const size_t start = out.size() - static_cast<size_t>(distance);
      for (int k = 0; k < length; ++k) {
        out.push_back(out[start + static_cast<size_t>(k)]);  // may self-overlap
      }
    } else {
      out.push_back(static_cast<uint8_t>(sym));
    }
  }
  DZ_CHECK_EQ(out.size(), original_size);
  return out;
}

namespace {
constexpr uint8_t kRleEscape = 0xE5;
}  // namespace

ByteBuffer RleCompress(const ByteBuffer& input) {
  ByteBuffer out;
  PutU32(out, static_cast<uint32_t>(input.size()));
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t b = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == b && run < 255) {
      ++run;
    }
    if (run >= 4 || b == kRleEscape) {
      out.push_back(kRleEscape);
      out.push_back(static_cast<uint8_t>(run));
      out.push_back(b);
      i += run;
    } else {
      out.push_back(b);
      ++i;
    }
  }
  return out;
}

ByteBuffer RleDecompress(const ByteBuffer& compressed) {
  DZ_CHECK_GE(compressed.size(), 4u);
  const uint32_t original_size = GetU32(compressed.data());
  ByteBuffer out;
  out.reserve(original_size);
  size_t i = 4;
  while (i < compressed.size()) {
    if (compressed[i] == kRleEscape) {
      DZ_CHECK_LE(i + 2, compressed.size() - 1);
      const uint8_t run = compressed[i + 1];
      const uint8_t b = compressed[i + 2];
      out.insert(out.end(), run, b);
      i += 3;
    } else {
      out.push_back(compressed[i]);
      ++i;
    }
  }
  DZ_CHECK_EQ(out.size(), original_size);
  return out;
}

double CompressionRatio(size_t input_bytes, size_t output_bytes) {
  if (output_bytes == 0) {
    return input_bytes == 0 ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(input_bytes) / static_cast<double>(output_bytes);
}

}  // namespace dz
