#include "src/compress/lossless.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>

#include "src/tensor/backend.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace dz {

namespace {

// ---------------------------------------------------------------------------
// Bit I/O
// ---------------------------------------------------------------------------

class BitWriter {
 public:
  void Put(uint32_t bits, int count) {
    DZ_CHECK_LE(count, 24);
    acc_ |= static_cast<uint64_t>(bits & ((1u << count) - 1u)) << fill_;
    fill_ += count;
    while (fill_ >= 8) {
      out_.push_back(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }
  ByteBuffer Finish() {
    if (fill_ > 0) {
      out_.push_back(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

 private:
  ByteBuffer out_;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

// LSB-first bit reader with peek/consume (the LUT decoder speculatively peeks a
// full first-level index). Peeking past the end pads with zero bits: the final
// byte of a well-formed stream is already zero-padded by BitWriter, so the pad
// is only ever consumed as part of the terminal symbol's slack.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint32_t Peek(int count) {
    Fill(count);
    return static_cast<uint32_t>(acc_ & ((1ull << count) - 1ull));
  }

  void Consume(int count) {
    Fill(count);
    acc_ >>= count;
    fill_ -= count;
  }

  uint32_t Get(int count) {
    const uint32_t v = Peek(count);
    Consume(count);
    return v;
  }

 private:
  void Fill(int count) {
    while (fill_ < count) {
      acc_ |= static_cast<uint64_t>(pos_ < size_ ? data_[pos_++] : 0) << fill_;
      fill_ += 8;
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

// ---------------------------------------------------------------------------
// Canonical Huffman over the token alphabet:
//   0..255  literal bytes
//   256     end-of-block
//   257     match marker (followed by raw length byte and 15-bit distance)
// ---------------------------------------------------------------------------

constexpr int kSymbols = 258;
constexpr int kEob = 256;
constexpr int kMatch = 257;
constexpr int kMaxCodeLen = 15;
constexpr int kMinMatch = 4;
constexpr int kMaxMatch = kMinMatch + 255;
constexpr int kWindow = 1 << 15;

// Computes code lengths with a pairing heap; if the tree gets deeper than kMaxCodeLen,
// frequencies are flattened and the build retried (classic length-limiting trick).
std::vector<uint8_t> BuildCodeLengths(std::vector<uint64_t> freq) {
  for (;;) {
    struct Node {
      uint64_t weight;
      int index;  // < kSymbols: leaf; else internal
    };
    auto cmp = [](const Node& a, const Node& b) { return a.weight > b.weight; };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
    int next_internal = kSymbols;
    std::vector<uint8_t> depth(static_cast<size_t>(kSymbols), 0);

    int present = 0;
    for (int s = 0; s < kSymbols; ++s) {
      if (freq[static_cast<size_t>(s)] > 0) {
        heap.push({freq[static_cast<size_t>(s)], s});
        ++present;
      }
    }
    if (present == 0) {
      return depth;
    }
    if (present == 1) {
      for (int s = 0; s < kSymbols; ++s) {
        if (freq[static_cast<size_t>(s)] > 0) {
          depth[static_cast<size_t>(s)] = 1;
        }
      }
      return depth;
    }

    struct Internal {
      int a, b;
    };
    std::vector<Internal> internals;
    while (heap.size() > 1) {
      const Node x = heap.top();
      heap.pop();
      const Node y = heap.top();
      heap.pop();
      internals.push_back({x.index, y.index});
      heap.push({x.weight + y.weight, next_internal++});
    }
    // Depth-assign by walking internals from the root down.
    std::vector<uint8_t> idepth(internals.size(), 0);
    bool too_deep = false;
    for (int i = static_cast<int>(internals.size()) - 1; i >= 0; --i) {
      const uint8_t d = idepth[static_cast<size_t>(i)];
      for (int child : {internals[static_cast<size_t>(i)].a,
                        internals[static_cast<size_t>(i)].b}) {
        if (child >= kSymbols) {
          idepth[static_cast<size_t>(child - kSymbols)] = d + 1;
        } else {
          depth[static_cast<size_t>(child)] = d + 1;
          if (d + 1 > kMaxCodeLen) {
            too_deep = true;
          }
        }
      }
    }
    if (!too_deep) {
      return depth;
    }
    for (auto& f : freq) {
      f = (f + 1) / 2;  // flatten and retry
    }
  }
}

// Canonical code assignment from lengths.
std::vector<uint32_t> CanonicalCodes(const std::vector<uint8_t>& lengths) {
  std::vector<uint32_t> codes(lengths.size(), 0);
  std::vector<int> count(kMaxCodeLen + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++count[l];
    }
  }
  std::vector<uint32_t> next(kMaxCodeLen + 1, 0);
  uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + static_cast<uint32_t>(count[l - 1])) << 1;
    next[static_cast<size_t>(l)] = code;
  }
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = next[lengths[s]]++;
    }
  }
  return codes;
}

// Per-bit canonical tree walk with a linear code scan at every depth. Slow on
// purpose: this is the historical decoder, retained as the parity reference.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<uint8_t>& lengths) : lengths_(lengths) {
    codes_ = CanonicalCodes(lengths);
  }

  int Decode(BitReader& reader) const {
    uint32_t code = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      code = (code << 1) | reader.Get(1);
      for (size_t s = 0; s < lengths_.size(); ++s) {
        if (lengths_[s] == len && codes_[s] == code) {
          return static_cast<int>(s);
        }
      }
    }
    DZ_CHECK(false);
    return -1;
  }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> codes_;
};

// Codes are emitted MSB-first into the LSB-first byte stream, so the bits of a
// code arrive in stream order b0 b1 ... b(len-1) with b0 first. Reversing a
// canonical code therefore yields its bit-stream index prefix.
uint32_t ReverseBits(uint32_t v, int n) {
  uint32_t r = 0;
  for (int i = 0; i < n; ++i) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  return r;
}

// Two-level canonical-code lookup decoder: one 10-bit peek resolves any code of
// length <= 10 directly (>99% of symbols in practice); longer codes indirect
// into a 32-entry second-level table selected by the 10-bit prefix.
class LutDecoder {
 public:
  static constexpr int kLutBits = 10;
  static constexpr int kSubBits = kMaxCodeLen - kLutBits;
  static constexpr size_t kSubSize = 1u << kSubBits;

  explicit LutDecoder(const std::vector<uint8_t>& lengths) {
    const std::vector<uint32_t> codes = CanonicalCodes(lengths);
    primary_.assign(1u << kLutBits, Entry{-1, 0, -1});
    for (size_t s = 0; s < lengths.size(); ++s) {
      const int len = lengths[s];
      if (len == 0) {
        continue;
      }
      const uint32_t rev = ReverseBits(codes[s], len);
      if (len <= kLutBits) {
        // Every index whose low `len` bits equal the reversed code decodes to s.
        for (uint32_t idx = rev; idx < primary_.size(); idx += 1u << len) {
          primary_[idx] = {static_cast<int16_t>(s), static_cast<uint8_t>(len), -1};
        }
      } else {
        const uint32_t prefix = rev & ((1u << kLutBits) - 1u);
        int sub = primary_[prefix].sub;
        if (sub < 0) {
          sub = static_cast<int>(sub_.size() / kSubSize);
          sub_.resize(sub_.size() + kSubSize, Entry{-1, 0, -1});
          primary_[prefix] = {-1, 0, static_cast<int16_t>(sub)};
        }
        const int rem = len - kLutBits;
        Entry* table = sub_.data() + static_cast<size_t>(sub) * kSubSize;
        for (uint32_t idx = rev >> kLutBits; idx < kSubSize; idx += 1u << rem) {
          table[idx] = {static_cast<int16_t>(s), static_cast<uint8_t>(len), -1};
        }
      }
    }
  }

  int Decode(BitReader& reader) const {
    Entry e = primary_[reader.Peek(kLutBits)];
    if (e.sub >= 0) {
      e = sub_[static_cast<size_t>(e.sub) * kSubSize +
               (reader.Peek(kMaxCodeLen) >> kLutBits)];
    }
    DZ_CHECK_GT(e.len, 0);  // unassigned entry ⇒ corrupt stream
    reader.Consume(e.len);
    return e.sym;
  }

 private:
  struct Entry {
    int16_t sym;
    uint8_t len;
    int16_t sub;  // >= 0: second-level table index
  };
  std::vector<Entry> primary_;
  std::vector<Entry> sub_;
};

// Bits are emitted MSB-first for canonical codes.
void PutCode(BitWriter& writer, uint32_t code, int len) {
  for (int i = len - 1; i >= 0; --i) {
    writer.Put((code >> i) & 1u, 1);
  }
}

// ---------------------------------------------------------------------------
// LZ77 with hash chains and optional one-step lazy matching
// ---------------------------------------------------------------------------

struct Token {
  bool is_match;
  uint8_t literal;
  int length;
  int distance;
};

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 19;  // 13-bit hash
}

struct Match {
  int len = 0;
  int dist = 0;
};

// Hash-chain searcher over one chunk. Find() never inserts; InsertUpTo()
// registers positions exactly once, which keeps the chain sane when lazy
// evaluation revisits a position.
class ChainMatcher {
 public:
  ChainMatcher(const uint8_t* data, size_t n, const GdeflateOptions& opts)
      : data_(data), n_(n), opts_(opts), head_(kHashSize, -1), prev_(n, -1) {}

  void InsertUpTo(size_t p) {
    const size_t limit = n_ >= kMinMatch ? n_ - kMinMatch + 1 : 0;
    for (; next_insert_ < std::min(p, limit); ++next_insert_) {
      const uint32_t h = Hash4(data_ + next_insert_);
      prev_[next_insert_] = head_[h];
      head_[h] = static_cast<int>(next_insert_);
    }
    next_insert_ = std::max(next_insert_, std::min(p, n_));
  }

  Match Find(size_t i) const {
    Match best;
    if (i + kMinMatch > n_) {
      return best;
    }
    const int max_len = static_cast<int>(std::min<size_t>(kMaxMatch, n_ - i));
    const uint8_t* cur = data_ + i;
    int cand = head_[Hash4(cur)];
    int chain = 0;
    while (cand >= 0 && chain < opts_.max_chain &&
           static_cast<size_t>(cand) + kWindow > i) {
      const uint8_t* c = data_ + cand;
      // Cheap reject: a longer match must extend past the current best.
      if (best.len == 0 || c[best.len] == cur[best.len]) {
        const int len = static_cast<int>(
            match_len_(c, cur, static_cast<size_t>(max_len)));
        if (len >= kMinMatch && len > best.len) {
          best.len = len;
          best.dist = static_cast<int>(i) - cand;
          if (len == max_len || len >= opts_.nice_length) {
            break;
          }
        }
      }
      cand = prev_[static_cast<size_t>(cand)];
      ++chain;
    }
    return best;
  }

 private:
  static constexpr uint32_t kHashSize = 1 << 13;
  const uint8_t* data_;
  size_t n_;
  const GdeflateOptions& opts_;
  std::vector<int> head_;
  std::vector<int> prev_;
  size_t next_insert_ = 0;
  // Dispatched common-prefix scan (SIMD compare on the vector backends);
  // resolved once per matcher — Find runs per input position.
  size_t (*const match_len_)(const uint8_t*, const uint8_t*, size_t) =
      kernels::ActiveBackend().match_len;
};

std::vector<Token> Lz77Parse(const uint8_t* data, size_t n,
                             const GdeflateOptions& opts) {
  std::vector<Token> tokens;
  ChainMatcher matcher(data, n, opts);
  size_t i = 0;
  while (i < n) {
    matcher.InsertUpTo(i);
    const Match cur = matcher.Find(i);
    if (cur.len >= kMinMatch && opts.lazy && cur.len < opts.nice_length &&
        i + 1 < n) {
      // One-step lazy matching: when the next position hides a strictly longer
      // match, emit a literal and let it win.
      matcher.InsertUpTo(i + 1);
      const Match next = matcher.Find(i + 1);
      if (next.len > cur.len) {
        tokens.push_back({false, data[i], 0, 0});
        ++i;
        continue;
      }
    }
    if (cur.len >= kMinMatch) {
      tokens.push_back({true, 0, cur.len, cur.dist});
      i += static_cast<size_t>(cur.len);
    } else {
      tokens.push_back({false, data[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

void PutU32(ByteBuffer& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

// ---------------------------------------------------------------------------
// Single-block format (the legacy whole-buffer layout, reused per chunk):
//   u32 original_size | 129 bytes of 4-bit code lengths | MSB-first bitstream
// ---------------------------------------------------------------------------

constexpr size_t kBlockHeader = 4 + kSymbols / 2;

void CompressBlock(const uint8_t* data, size_t n, const GdeflateOptions& opts,
                   ByteBuffer& out) {
  const std::vector<Token> tokens = Lz77Parse(data, n, opts);

  std::vector<uint64_t> freq(static_cast<size_t>(kSymbols), 0);
  for (const Token& t : tokens) {
    ++freq[t.is_match ? kMatch : t.literal];
  }
  ++freq[kEob];
  const std::vector<uint8_t> lengths = BuildCodeLengths(freq);
  const std::vector<uint32_t> codes = CanonicalCodes(lengths);

  PutU32(out, static_cast<uint32_t>(n));
  // Header: 4-bit code lengths, two per byte.
  for (int s = 0; s < kSymbols; s += 2) {
    const uint8_t lo = lengths[static_cast<size_t>(s)];
    const uint8_t hi = s + 1 < kSymbols ? lengths[static_cast<size_t>(s + 1)] : 0;
    out.push_back(static_cast<uint8_t>(lo | (hi << 4)));
  }

  BitWriter writer;
  for (const Token& t : tokens) {
    if (t.is_match) {
      PutCode(writer, codes[kMatch], lengths[kMatch]);
      writer.Put(static_cast<uint32_t>(t.length - kMinMatch), 8);
      writer.Put(static_cast<uint32_t>(t.distance - 1), 15);
    } else {
      PutCode(writer, codes[t.literal], lengths[t.literal]);
    }
  }
  PutCode(writer, codes[kEob], lengths[kEob]);
  const ByteBuffer body = writer.Finish();
  out.insert(out.end(), body.begin(), body.end());
}

// Decodes one block into dst (which must hold the block's original size);
// returns the decoded byte count. Decoder is LutDecoder or HuffmanDecoder.
template <typename Decoder>
size_t DecompressBlockTo(const uint8_t* p, size_t size, uint8_t* dst) {
  DZ_CHECK_GE(size, kBlockHeader);
  const uint32_t original_size = GetU32(p);
  std::vector<uint8_t> lengths(static_cast<size_t>(kSymbols), 0);
  for (int s = 0; s < kSymbols; s += 2) {
    const uint8_t packed = p[4 + static_cast<size_t>(s / 2)];
    lengths[static_cast<size_t>(s)] = packed & 0x0F;
    if (s + 1 < kSymbols) {
      lengths[static_cast<size_t>(s + 1)] = packed >> 4;
    }
  }
  const Decoder decoder(lengths);
  BitReader reader(p + kBlockHeader, size - kBlockHeader);

  size_t w = 0;
  for (;;) {
    const int sym = decoder.Decode(reader);
    if (sym == kEob) {
      break;
    }
    if (sym == kMatch) {
      const int length = static_cast<int>(reader.Get(8)) + kMinMatch;
      const int distance = static_cast<int>(reader.Get(15)) + 1;
      DZ_CHECK_LE(static_cast<size_t>(distance), w);
      DZ_CHECK_LE(w + static_cast<size_t>(length), original_size);
      // Dispatched overlapped copy: chunked when distance allows, byte-exact
      // self-overlap replication otherwise.
      kernels::ActiveBackend().copy_match(dst + w,
                                          static_cast<size_t>(distance),
                                          static_cast<size_t>(length));
      w += static_cast<size_t>(length);
    } else {
      DZ_CHECK_LT(w, original_size);
      dst[w++] = static_cast<uint8_t>(sym);
    }
  }
  DZ_CHECK_EQ(w, original_size);
  return w;
}

// ---------------------------------------------------------------------------
// Chunk-framed container for parallel (de)compression:
//   u32 magic "DZGC" | u32 n_chunks | n_chunks x u32 compressed size | blocks
// Each block is an independent single-block stream (own window + code table),
// so chunks compress and decompress in parallel and in any order. Legacy
// whole-buffer streams are detected by the absence of the magic; a legacy
// header starts with the original size, which the chunk_size clamp keeps well
// below the magic value.
// ---------------------------------------------------------------------------

constexpr uint32_t kChunkMagic = 0x43475A44u;  // "DZGC" little-endian
constexpr size_t kMinChunkSize = 4096;
constexpr size_t kMaxChunkSize = (1u << 30) - 1;

template <typename Decoder>
ByteBuffer DecompressImpl(const ByteBuffer& compressed, bool parallel) {
  if (compressed.size() >= 8 && GetU32(compressed.data()) == kChunkMagic) {
    const size_t n_chunks = GetU32(compressed.data() + 4);
    const size_t header = 8 + 4 * n_chunks;
    DZ_CHECK_GE(compressed.size(), header);
    std::vector<size_t> in_off(n_chunks + 1, header);
    for (size_t c = 0; c < n_chunks; ++c) {
      in_off[c + 1] = in_off[c] + GetU32(compressed.data() + 8 + 4 * c);
    }
    DZ_CHECK_EQ(in_off[n_chunks], compressed.size());
    std::vector<size_t> out_off(n_chunks + 1, 0);
    for (size_t c = 0; c < n_chunks; ++c) {
      DZ_CHECK_GE(in_off[c + 1] - in_off[c], kBlockHeader);
      out_off[c + 1] = out_off[c] + GetU32(compressed.data() + in_off[c]);
    }
    ByteBuffer out(out_off[n_chunks]);
    const auto decode_chunk = [&](size_t c) {
      DecompressBlockTo<Decoder>(compressed.data() + in_off[c],
                                 in_off[c + 1] - in_off[c], out.data() + out_off[c]);
    };
    if (parallel && n_chunks > 1) {
      ThreadPool::Global().ForEachTask(n_chunks, decode_chunk);
    } else {
      for (size_t c = 0; c < n_chunks; ++c) {
        decode_chunk(c);
      }
    }
    return out;
  }
  // Legacy single-block stream.
  DZ_CHECK_GE(compressed.size(), kBlockHeader);
  ByteBuffer out(GetU32(compressed.data()));
  DecompressBlockTo<Decoder>(compressed.data(), compressed.size(), out.data());
  return out;
}

}  // namespace

ByteBuffer GdeflateCompress(const ByteBuffer& input, const GdeflateOptions& opts) {
  DZ_CHECK_GE(opts.max_chain, 1);
  const size_t chunk_size =
      std::min(std::max(opts.chunk_size, kMinChunkSize), kMaxChunkSize);
  if (input.size() <= chunk_size) {
    ByteBuffer out;
    CompressBlock(input.data(), input.size(), opts, out);
    return out;
  }
  const size_t n_chunks = (input.size() + chunk_size - 1) / chunk_size;
  std::vector<ByteBuffer> blobs(n_chunks);
  const auto compress_chunk = [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t len = std::min(chunk_size, input.size() - begin);
    CompressBlock(input.data() + begin, len, opts, blobs[c]);
  };
  if (opts.parallel && n_chunks > 1) {
    ThreadPool::Global().ForEachTask(n_chunks, compress_chunk);
  } else {
    for (size_t c = 0; c < n_chunks; ++c) {
      compress_chunk(c);
    }
  }
  ByteBuffer out;
  PutU32(out, kChunkMagic);
  PutU32(out, static_cast<uint32_t>(n_chunks));
  for (const ByteBuffer& b : blobs) {
    PutU32(out, static_cast<uint32_t>(b.size()));
  }
  for (const ByteBuffer& b : blobs) {
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

ByteBuffer GdeflateCompress(const ByteBuffer& input) {
  return GdeflateCompress(input, GdeflateOptions{});
}

ByteBuffer GdeflateDecompress(const ByteBuffer& compressed) {
  return DecompressImpl<LutDecoder>(compressed, /*parallel=*/true);
}

namespace internal {

ByteBuffer GdeflateDecompressReference(const ByteBuffer& compressed) {
  return DecompressImpl<HuffmanDecoder>(compressed, /*parallel=*/false);
}

}  // namespace internal

namespace {
constexpr uint8_t kRleEscape = 0xE5;
}  // namespace

ByteBuffer RleCompress(const ByteBuffer& input) {
  ByteBuffer out;
  PutU32(out, static_cast<uint32_t>(input.size()));
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t b = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == b && run < 255) {
      ++run;
    }
    if (run >= 4 || b == kRleEscape) {
      out.push_back(kRleEscape);
      out.push_back(static_cast<uint8_t>(run));
      out.push_back(b);
      i += run;
    } else {
      out.push_back(b);
      ++i;
    }
  }
  return out;
}

ByteBuffer RleDecompress(const ByteBuffer& compressed) {
  DZ_CHECK_GE(compressed.size(), 4u);
  const uint32_t original_size = GetU32(compressed.data());
  ByteBuffer out;
  out.reserve(original_size);
  size_t i = 4;
  while (i < compressed.size()) {
    if (compressed[i] == kRleEscape) {
      DZ_CHECK_LE(i + 2, compressed.size() - 1);
      const uint8_t run = compressed[i + 1];
      const uint8_t b = compressed[i + 2];
      out.insert(out.end(), run, b);
      i += 3;
    } else {
      out.push_back(compressed[i]);
      ++i;
    }
  }
  DZ_CHECK_EQ(out.size(), original_size);
  return out;
}

double CompressionRatio(size_t input_bytes, size_t output_bytes) {
  if (output_bytes == 0) {
    return input_bytes == 0 ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(input_bytes) / static_cast<double>(output_bytes);
}

}  // namespace dz
