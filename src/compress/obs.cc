#include "src/compress/obs.h"

#include <algorithm>
#include <cmath>

#include "src/compress/linalg.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"
#include "src/util/check.h"

namespace dz {

namespace {

// Computes the damped inverse-Hessian upper factor U (inv(H) = Uᵀ·U) for H = Xᵀ·X.
Matrix InverseHessianUpper(const Matrix& x, int in_dim, float damp_ratio) {
  DZ_CHECK_EQ(x.cols(), in_dim);
  Matrix h = MatmulTN(x, x);  // [in, in]
  double trace = 0.0;
  for (int i = 0; i < in_dim; ++i) {
    trace += h.at(i, i);
  }
  const float damp = std::max(1e-8f, damp_ratio * static_cast<float>(trace / in_dim));
  for (int i = 0; i < in_dim; ++i) {
    h.at(i, i) += damp;
  }
  const Matrix hinv = SpdInverse(h);
  return CholeskyUpperFromLower(CholeskyLower(hinv));
}

}  // namespace

Matrix ObsCompress(const Matrix& w, const Matrix& x, const ObsConfig& config) {
  DZ_CHECK(config.bits == 2 || config.bits == 4 || config.bits == 8);
  const int out = w.rows();
  const int in = w.cols();
  if (config.prune24) {
    DZ_CHECK_EQ(in % 4, 0);
  }
  DZ_CHECK_GT(x.rows(), 0);
  const Matrix u = InverseHessianUpper(x, in, config.damp_ratio);

  Matrix work = w;             // progressively updated weights
  Matrix result(out, in);      // final grid values
  const int group = std::min(config.group_size, in);

  // Per-row quantization parameters for the active group.
  std::vector<QuantParams> params(static_cast<size_t>(out));
  // Per-row prune mask for the active 4-column block (bit c set → prune column j0+c).
  std::vector<uint8_t> prune_mask(static_cast<size_t>(out), 0);

  for (int j = 0; j < in; ++j) {
    const float ujj = u.at(j, j);
    if (j % group == 0) {
      // Entering a new quant group: derive affine params from current values.
      const int j1 = std::min(in, j + group);
      for (int r = 0; r < out; ++r) {
        float lo = work.at(r, j);
        float hi = lo;
        for (int c = j; c < j1; ++c) {
          lo = std::min(lo, work.at(r, c));
          hi = std::max(hi, work.at(r, c));
        }
        params[static_cast<size_t>(r)] = ComputeQuantParams(lo, hi, config.bits);
      }
    }
    if (config.prune24 && j % 4 == 0) {
      // SparseGPT mask selection: within columns j..j+3 prune the two with the lowest
      // saliency w²/U²cc, using the *current* (error-compensated) values.
      for (int r = 0; r < out; ++r) {
        float score[4];
        for (int c = 0; c < 4; ++c) {
          const float ucc = u.at(j + c, j + c);
          const float v = work.at(r, j + c);
          score[c] = (v * v) / (ucc * ucc);
        }
        int order[4] = {0, 1, 2, 3};
        std::sort(order, order + 4, [&](int a, int b) { return score[a] < score[b]; });
        prune_mask[static_cast<size_t>(r)] =
            static_cast<uint8_t>((1u << order[0]) | (1u << order[1]));
      }
    }

    for (int r = 0; r < out; ++r) {
      const float v = work.at(r, j);
      float q = 0.0f;
      const bool pruned =
          config.prune24 && (prune_mask[static_cast<size_t>(r)] >> (j % 4)) & 1u;
      if (!pruned) {
        q = QuantizeValue(v, params[static_cast<size_t>(r)]);
      }
      result.at(r, j) = q;
      // OBS error propagation: w[j+1:] -= err · U[j, j+1:] with err = (v − q)/Ujj.
      const float err = (v - q) / ujj;
      float* wrow = work.row(r);
      const float* urow = u.row(j);
      for (int c = j + 1; c < in; ++c) {
        wrow[c] -= err * urow[c];
      }
    }
  }
  return result;
}

Matrix RtnCompress(const Matrix& w, const ObsConfig& config) {
  const int out = w.rows();
  const int in = w.cols();
  Matrix source = w;
  if (config.prune24) {
    DZ_CHECK_EQ(in % 4, 0);
    source = MagnitudePrune24(source);
  }
  const int group = std::min(config.group_size, in);
  Matrix result(out, in);
  for (int r = 0; r < out; ++r) {
    for (int j0 = 0; j0 < in; j0 += group) {
      const int j1 = std::min(in, j0 + group);
      float lo = source.at(r, j0);
      float hi = lo;
      for (int c = j0; c < j1; ++c) {
        lo = std::min(lo, source.at(r, c));
        hi = std::max(hi, source.at(r, c));
      }
      const QuantParams p = ComputeQuantParams(lo, hi, config.bits);
      for (int c = j0; c < j1; ++c) {
        const float v = source.at(r, c);
        result.at(r, c) = v == 0.0f ? 0.0f : QuantizeValue(v, p);
      }
    }
  }
  return result;
}

double LayerOutputError(const Matrix& w, const Matrix& w_compressed, const Matrix& x) {
  const Matrix y_ref = MatmulNT(x, w);
  const Matrix y_cmp = MatmulNT(x, w_compressed);
  const Matrix diff = Sub(y_cmp, y_ref);
  const double n = static_cast<double>(diff.rows());
  const double fro = diff.FrobeniusNorm();
  return fro * fro / std::max(n, 1.0);
}

}  // namespace dz
