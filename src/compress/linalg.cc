#include "src/compress/linalg.h"

#include <cmath>

#include "src/util/check.h"

namespace dz {

Matrix CholeskyLower(const Matrix& a) {
  DZ_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (int k = 0; k < j; ++k) {
        sum -= static_cast<double>(l.at(i, k)) * l.at(j, k);
      }
      if (i == j) {
        DZ_CHECK_GT(sum, 0.0);  // not positive definite — caller must damp
        l.at(i, j) = static_cast<float>(std::sqrt(sum));
      } else {
        l.at(i, j) = static_cast<float>(sum / l.at(j, j));
      }
    }
  }
  return l;
}

Matrix SpdInverse(const Matrix& a) {
  const int n = a.rows();
  const Matrix l = CholeskyLower(a);
  Matrix inv(n, n);
  // Solve A x = e_k column by column: forward substitution (L y = e_k), then backward
  // substitution (Lᵀ x = y).
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<double> x(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double sum = (i == k) ? 1.0 : 0.0;
      for (int j = 0; j < i; ++j) {
        sum -= static_cast<double>(l.at(i, j)) * y[static_cast<size_t>(j)];
      }
      y[static_cast<size_t>(i)] = sum / l.at(i, i);
    }
    for (int i = n - 1; i >= 0; --i) {
      double sum = y[static_cast<size_t>(i)];
      for (int j = i + 1; j < n; ++j) {
        sum -= static_cast<double>(l.at(j, i)) * x[static_cast<size_t>(j)];
      }
      x[static_cast<size_t>(i)] = sum / l.at(i, i);
      inv.at(i, k) = static_cast<float>(x[static_cast<size_t>(i)]);
    }
  }
  return inv;
}

Matrix CholeskyUpperFromLower(const Matrix& lower) { return lower.Transposed(); }

}  // namespace dz
