// SparseGPT-style one-shot compression solver (paper §4.2, Alg. 1 line 5).
//
// Given a weight matrix W [out, in] and calibration activations X [samples, in], finds
// quantized (and optionally 2:4-pruned) weights minimizing ||W·X − W̃·X||² following the
// optimal-brain-surgeon recipe: process input columns left→right; after quantizing /
// pruning column j, distribute its error over the remaining columns through the inverse
// Hessian's Cholesky factor. This is the same math as GPTQ with SparseGPT's mask
// selection (score wᶜ²/U²cc per 4-column group).
//
// ΔCompress calls this on the *delta*; the SparseGPT baseline calls it directly on the
// fine-tuned weights.
#ifndef SRC_COMPRESS_OBS_H_
#define SRC_COMPRESS_OBS_H_

#include "src/tensor/matrix.h"

namespace dz {

struct ObsConfig {
  int bits = 4;
  int group_size = 64;      // input-columns per quantization group
  bool prune24 = true;      // structured 2:4 sparsity
  float damp_ratio = 0.01f;  // Hessian damping as a fraction of mean(diag(H))
};

// Returns W̃: every element is either 0 (pruned) or a value on the affine quant grid of
// its group; pattern is 2:4 along input columns when prune24 is set. The result can be
// packed losslessly by Sparse24Matrix::Pack / PackedQuantMatrix::Quantize with the same
// bits and group_size (up to one re-quantization step; see DESIGN.md).
Matrix ObsCompress(const Matrix& w, const Matrix& x, const ObsConfig& config);

// Round-to-nearest baseline (no error propagation) — used in ablations to show the OBS
// update matters.
Matrix RtnCompress(const Matrix& w, const ObsConfig& config);

// Mean squared output error ||W·Xᵀ − W̃·Xᵀ||²/n — the objective Eq. (1) optimizes.
double LayerOutputError(const Matrix& w, const Matrix& w_compressed, const Matrix& x);

}  // namespace dz

#endif  // SRC_COMPRESS_OBS_H_
