// Lossless byte codecs for the optional step-4 of the compression pipeline
// (paper Fig. 5). The paper uses nvcomp's GDeflate for GPU-side decompression; we
// implement the same algorithmic family from scratch:
//
//   * LZ77 matching (32 KiB window, min match 4) over the input, producing a
//     literal/match token stream,
//   * a canonical Huffman code over the token alphabet (deflate-style),
//   * a byte-oriented RLE codec as a cheap alternative for ablations.
//
// Compress functions return a self-describing buffer; Decompress inverts exactly.
#ifndef SRC_COMPRESS_LOSSLESS_H_
#define SRC_COMPRESS_LOSSLESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dz {

using ByteBuffer = std::vector<uint8_t>;

// Deflate-family codec (LZ77 + canonical Huffman).
ByteBuffer GdeflateCompress(const ByteBuffer& input);
ByteBuffer GdeflateDecompress(const ByteBuffer& compressed);

// Run-length codec (escape-based).
ByteBuffer RleCompress(const ByteBuffer& input);
ByteBuffer RleDecompress(const ByteBuffer& compressed);

// Convenience: achieved ratio (input / output). Conventions for the degenerate
// cases: 0/0 (nothing in, nothing out) is 0.0, not parity; a non-empty input
// that compresses to zero bytes is +infinity, since any finite value would
// understate the (unbounded) ratio.
double CompressionRatio(size_t input_bytes, size_t output_bytes);

}  // namespace dz

#endif  // SRC_COMPRESS_LOSSLESS_H_
