// Lossless byte codecs for the optional step-4 of the compression pipeline
// (paper Fig. 5). The paper uses nvcomp's GDeflate for GPU-side decompression; we
// implement the same algorithmic family from scratch:
//
//   * LZ77 matching (32 KiB window, min match 4, hash chains with optional
//     one-step lazy matching) over the input, producing a literal/match token
//     stream,
//   * a canonical Huffman code over the token alphabet (deflate-style), decoded
//     through a two-level (10-bit first level) lookup table,
//   * a chunk-framed container so large buffers compress and decompress with
//     one independent LZ window per chunk, in parallel across the thread pool,
//   * a byte-oriented RLE codec as a cheap alternative for ablations.
//
// Compress functions return a self-describing buffer; Decompress inverts exactly.
#ifndef SRC_COMPRESS_LOSSLESS_H_
#define SRC_COMPRESS_LOSSLESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dz {

using ByteBuffer = std::vector<uint8_t>;

// Tuning knobs for the LZ77 stage and the parallel chunk framing. The defaults
// match the serving-path tradeoff: spend a little more compress-side effort
// (lazy matching) for a denser stream, and never let one giant artifact
// serialize the pipeline.
struct GdeflateOptions {
  // Hash-chain search depth per position. Larger = denser output, slower
  // compression. Must be >= 1.
  int max_chain = 32;
  // One-step lazy matching: before emitting a match, peek at the next position
  // and prefer a literal when the deferred match is strictly longer.
  bool lazy = true;
  // Stop extending the chain search once a match of this length is found.
  int nice_length = 64;
  // Inputs larger than this are split into independently-compressed chunks
  // (own LZ window + Huffman table each) framed in a chunked container, so
  // both directions can run across the thread pool. Must be >= 4 KiB; clamped
  // below 1 GiB so the chunk magic cannot collide with a legacy size header.
  // 256 KiB (8x the LZ window) keeps the density loss from per-chunk windows
  // small while giving mid-sized tensor deltas enough chunks to spread across
  // the pool — sub-MiB buffers used to decode on one thread.
  size_t chunk_size = 1u << 18;
  // Use the global thread pool for chunked compress/decompress.
  bool parallel = true;
};

// Deflate-family codec (LZ77 + canonical Huffman).
ByteBuffer GdeflateCompress(const ByteBuffer& input);
ByteBuffer GdeflateCompress(const ByteBuffer& input, const GdeflateOptions& opts);
ByteBuffer GdeflateDecompress(const ByteBuffer& compressed);

namespace internal {

// Retained per-bit canonical-tree decoder (the pre-LUT implementation), kept as
// the bit-exactness reference for tests/tensor/kernel_parity_test.cc. Accepts
// both the legacy single-block format and the chunked container.
ByteBuffer GdeflateDecompressReference(const ByteBuffer& compressed);

}  // namespace internal

// Run-length codec (escape-based).
ByteBuffer RleCompress(const ByteBuffer& input);
ByteBuffer RleDecompress(const ByteBuffer& compressed);

// Convenience: achieved ratio (input / output). Conventions for the degenerate
// cases: 0/0 (nothing in, nothing out) is 0.0, not parity; a non-empty input
// that compresses to zero bytes is +infinity, since any finite value would
// understate the (unbounded) ratio.
double CompressionRatio(size_t input_bytes, size_t output_bytes);

}  // namespace dz

#endif  // SRC_COMPRESS_LOSSLESS_H_
