// ΔCompress: the paper's core algorithm (§4) and the compressed-delta artifact.
//
// DeltaCompress() implements Algorithm 1: for each linear layer in execution order,
// extract Δ = w_ft − w_base, compress it against calibration activations with the OBS
// solver (structured 2:4 sparsity + 2/4-bit group quantization), then *reconstruct*
// w̃ = pack(Δ̃) + w_base before computing inputs for subsequent layers — the detail that
// prevents vanishing activations and distinguishes ΔCompress from naive per-layer delta
// quantization.
//
// The resulting CompressedDelta is the serving artifact: it knows its exact serialized
// byte size (optionally after lossless compression), can execute the decoupled form
// y = x·w_baseᵀ + x·Δ̃ᵀ via a LinearOverlay, and can be merged back into full weights.
//
// Non-linear parameters (embeddings, norms, LM head) are stored as fp16 deltas, matching
// the paper's note that embedding layers are not compressed (§6.2).
#ifndef SRC_COMPRESS_DELTA_H_
#define SRC_COMPRESS_DELTA_H_

#include <string>
#include <vector>

#include "src/compress/awq.h"
#include "src/compress/lossless.h"
#include "src/compress/obs.h"
#include "src/nn/transformer.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"

namespace dz {

class ThreadPool;

struct DeltaCompressConfig {
  int bits = 4;
  bool sparse24 = true;   // structured 2:4 pruning (step 2)
  int group_size = 64;    // quantization group size (step 3)
  bool lossless = false;  // GDeflate-style lossless pass (step 4)
  bool use_obs = true;    // false → round-to-nearest (ablation)
  float damp_ratio = 0.01f;
};

// One compressed linear-layer delta in packed storage.
struct CompressedDeltaLayer {
  std::string name;
  bool is_sparse = false;
  Sparse24Matrix sparse;
  PackedQuantMatrix dense;

  Matrix Dequantize() const;
  // y = x·Δ̃ᵀ straight from packed storage.
  Matrix MatmulNT(const Matrix& x) const;
  size_t ByteSize() const;
};

struct CompressedDelta {
  DeltaCompressConfig config;
  std::vector<CompressedDeltaLayer> layers;

  // fp16 deltas of the uncompressed parameter groups.
  Matrix embedding_delta;
  Matrix lm_head_delta;
  std::vector<float> final_norm_delta;
  std::vector<std::vector<float>> attn_norm_deltas;  // per block
  std::vector<std::vector<float>> mlp_norm_deltas;

  // Packed size before any lossless pass.
  size_t PackedByteSize() const;
  // Actual stored size: equals PackedByteSize() unless config.lossless, in which case
  // it is the measured size of the losslessly compressed serialized artifact.
  size_t StoredByteSize() const { return stored_bytes_; }

  // Deterministic binary serialization of the whole artifact.
  ByteBuffer Serialize() const;

  // Decoupled execution against `base` (must outlive the overlay): every compressed
  // layer computes x·w_baseᵀ + x·Δ̃ᵀ.
  LinearOverlay MakeOverlay(const ModelWeights& base) const;

  // Merged full-precision weights (base + all deltas) — the "add delta back" path.
  ModelWeights ApplyTo(const ModelWeights& base) const;

  // Set by DeltaCompress; exposed for tests constructing artifacts manually.
  void FinalizeStoredBytes();

 private:
  size_t stored_bytes_ = 0;
};

// Runs the ΔCompress pipeline. `calibration` holds token sequences (the paper uses a
// few hundred samples of the fine-tuning data). Per-group layer compression and
// calibration capture fan out across `pool` (ThreadPool::Global() when null); the
// artifact is bit-identical for any thread count.
CompressedDelta DeltaCompress(const ModelWeights& base, const ModelWeights& finetuned,
                              const std::vector<std::vector<int>>& calibration,
                              const DeltaCompressConfig& config,
                              ThreadPool* pool = nullptr);

// Baselines (paper Table 1): compress the fine-tuned model itself, layer by layer with
// reconstruction, no delta. Returns the resulting effective weights; the compressed
// byte count of the linear layers is written to *linear_bytes.
ModelWeights SparseGptCompressModel(const ModelWeights& finetuned,
                                    const std::vector<std::vector<int>>& calibration,
                                    const ObsConfig& config, size_t* linear_bytes);

ModelWeights AwqCompressModel(const ModelWeights& finetuned,
                              const std::vector<std::vector<int>>& calibration,
                              const AwqConfig& config, size_t* linear_bytes);

}  // namespace dz

#endif  // SRC_COMPRESS_DELTA_H_
