// Binary (de)serialization of compressed-delta artifacts — the persistence layer of
// the paper's Model Manager / delta zoo (Fig. 4). The format is versioned and
// self-describing so artifacts written by one process can be registered by another:
//
//   [magic "DZIP"] [version u32] [config] [n_layers u32]
//   per layer: [name] [kind u8] [dims] [packed words] [indices] [scales fp16] [zeros]
//   [embedding delta | marker] [lm_head delta | marker] [norm deltas]
//
// Unlike CompressedDelta::Serialize() (payload-only dump feeding the lossless codec),
// this format round-trips the complete artifact.
#ifndef SRC_COMPRESS_SERIALIZE_H_
#define SRC_COMPRESS_SERIALIZE_H_

#include <string>

#include "src/compress/delta.h"

namespace dz {

// Encodes the artifact (including structure/metadata) into a self-describing buffer.
ByteBuffer EncodeDelta(const CompressedDelta& delta);

// Decodes a buffer produced by EncodeDelta. Check-fails on malformed input with a
// wrong magic/version; returns false on truncated payloads.
bool DecodeDelta(const ByteBuffer& buffer, CompressedDelta& out);

// File helpers (binary). Return false on I/O failure.
bool WriteDeltaFile(const std::string& path, const CompressedDelta& delta);
bool ReadDeltaFile(const std::string& path, CompressedDelta& out);

}  // namespace dz

#endif  // SRC_COMPRESS_SERIALIZE_H_
