// Dense symmetric linear algebra for the OBS (optimal brain surgeon) solvers:
// Cholesky factorization and SPD inverse. Matrices here are small (hidden-dim sized).
#ifndef SRC_COMPRESS_LINALG_H_
#define SRC_COMPRESS_LINALG_H_

#include "src/tensor/matrix.h"

namespace dz {

// Lower Cholesky factor L of an SPD matrix A = L·Lᵀ. Check-fails if A is not positive
// definite (callers add damping first).
Matrix CholeskyLower(const Matrix& a);

// Inverse of an SPD matrix via its Cholesky factor.
Matrix SpdInverse(const Matrix& a);

// Upper factor U with A = Uᵀ·U (i.e., transpose of the lower Cholesky factor).
// This is the "Hinv in upper-Cholesky form" object the GPTQ/SparseGPT update uses.
Matrix CholeskyUpperFromLower(const Matrix& lower);

}  // namespace dz

#endif  // SRC_COMPRESS_LINALG_H_
