// Critical-path attribution: explains each request's measured TTFT and E2E
// latency as a sum of queue / load / compute / preempt segments derived from
// its trace events (paper Fig. 13/16 — where requests actually spend time).
//
// Segmentation (all boundaries are recorded timestamps, so the segments
// telescope and their sum reproduces the measured latency to ~1e-12 relative):
//   queue   = [arrival, first scheduler consideration]
//   load    = [first consideration, first dispatch]      (artifact wait)
//   compute = [dispatch_i, preempt_i] ... [last dispatch, finish]  (in-batch)
//   preempt = [preempt_i, dispatch_{i+1}]                (evicted, re-queued)
// "compute" is time spent IN the running batch, which for the vLLM baseline
// includes stalls behind other models' blocking demand swaps — that is the
// engine's cost model, and exactly what the paper's breakdown charges it.
// TTFT attribution clips every segment at the first-token timestamp.
//
// Flight-recorder rings drop old events, so a request's dispatch/preempt chain
// may be incomplete; such requests fall back to the RequestRecord-only split
// (queue/load from the record, preempt folded into compute) — still summing
// exactly — and are counted in PathAttribution::incomplete.
#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <array>
#include <vector>

#include "src/obs/trace_recorder.h"
#include "src/workload/trace.h"

namespace dz {

// The timestamps the analyzer needs from a served request — a view over
// serving's RequestRecord (dz_obs sits below dz_serving in the link graph, so
// it cannot see the real struct; report.cc adapts).
struct RequestTimes {
  int id = -1;
  SloClass slo = SloClass::kStandard;
  double arrival_s = 0.0;
  double sched_attempt_s = 0.0;
  double start_s = 0.0;  // first dispatch (admission into the batch)
  double first_token_s = 0.0;
  double finish_s = 0.0;
  int preemptions = 0;
};

struct PathSegments {
  double queue_s = 0.0;
  double load_s = 0.0;
  double compute_s = 0.0;
  double preempt_s = 0.0;

  double Sum() const { return queue_s + load_s + compute_s + preempt_s; }

  void Add(const PathSegments& other) {
    queue_s += other.queue_s;
    load_s += other.load_s;
    compute_s += other.compute_s;
    preempt_s += other.preempt_s;
  }
};

// One request's attribution. `complete` is false when the event chain did not
// match the record (ring-dropped events) and the record-only fallback was used.
struct RequestPathBreakdown {
  int id = -1;
  SloClass slo = SloClass::kStandard;
  PathSegments e2e;   // sums to finish - arrival
  PathSegments ttft;  // sums to first_token - arrival
  bool complete = true;
};

// Per-class rollup of breakdowns; Merge preserves GPU-order addition like the
// metrics snapshot merge.
struct PathAttribution {
  long long n = 0;           // requests attributed
  long long incomplete = 0;  // of which used the record-only fallback
  PathSegments e2e;          // summed seconds across requests
  PathSegments ttft;

  void Add(const RequestPathBreakdown& b) {
    ++n;
    if (!b.complete) {
      ++incomplete;
    }
    e2e.Add(b.e2e);
    ttft.Add(b.ttft);
  }

  void Merge(const PathAttribution& other) {
    n += other.n;
    incomplete += other.incomplete;
    e2e.Add(other.e2e);
    ttft.Add(other.ttft);
  }
};

using ClassPathAttribution = std::array<PathAttribution, kNumSloClasses>;

// Attributes every request in `requests` using its sched.dispatch / kv.preempt
// events from `events` (which must be timestamp-ordered, as Drain() returns
// them). Returns one breakdown per request, in `requests` order.
std::vector<RequestPathBreakdown> AttributeRequests(
    const std::vector<RequestTimes>& requests,
    const std::vector<TraceEvent>& events);

// Rolls per-request breakdowns up into the per-class table embedded in
// ServeReport/ClusterReport.
ClassPathAttribution BuildClassAttribution(
    const std::vector<RequestPathBreakdown>& breakdowns);

}  // namespace dz

#endif  // SRC_OBS_CRITICAL_PATH_H_
