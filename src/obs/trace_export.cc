#include "src/obs/trace_export.h"

#include <cstdio>
#include <set>
#include <string>

#include "src/util/json.h"

namespace dz {

namespace {

// Track (tid) layout inside each GPU process. Values are arbitrary but stable;
// metadata events below give them human names in the viewer.
enum Track : int {
  kTrackRequests = 0,  // async request spans render on their own track group
  kTrackRounds = 1,
  kTrackDisk = 2,
  kTrackPcie = 3,
  kTrackSched = 4,
  kTrackRouter = 5,
  kTrackNet = 6,
};

int PidOf(const TraceEvent& e) { return e.gpu < 0 ? 0 : e.gpu; }

void AppendCommon(std::string& out, const TraceEvent& e, const char* ph,
                  int tid) {
  out += "{\"name\":\"";
  out += TraceEventTypeName(e.type);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":" + JsonNum(e.ts_s * 1e6);
  out += ",\"pid\":" + std::to_string(PidOf(e));
  out += ",\"tid\":" + std::to_string(tid);
}

void AppendArgs(std::string& out, const TraceEvent& e) {
  out += ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* k, const std::string& v) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    out += k;
    out += "\":" + v;
  };
  if (e.request_id >= 0) {
    arg("request", std::to_string(e.request_id));
  }
  if (e.model_id >= 0) {
    arg("model", std::to_string(e.model_id));
  }
  if (e.tenant_id >= 0) {
    arg("tenant", std::to_string(e.tenant_id));
  }
  if (e.request_id >= 0) {
    arg("class", std::string("\"") + JsonEscape(SloClassName(e.slo)) + "\"");
  }
  if (e.bytes > 0.0) {
    arg("bytes", JsonNum(e.bytes));
  }
  if (e.type == TraceEventType::kBatchRound) {
    arg("batch", std::to_string(e.aux));
  }
  if (e.type == TraceEventType::kKvSwap) {
    arg("direction", e.aux == 0 ? "\"out\"" : "\"restore\"");
  }
  if (e.type == TraceEventType::kRouterWarmHint) {
    arg("rank", std::to_string(e.aux));
  }
  if (e.type == TraceEventType::kRouterReroute) {
    arg("rerouted", std::to_string(e.aux));
  }
  if (e.type == TraceEventType::kScaleUp || e.type == TraceEventType::kScaleDown) {
    arg("workers", std::to_string(e.aux));
  }
  out += "}";
}

void AppendMeta(std::string& out, int pid, int tid, const char* what,
                const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":" + std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":" + std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"" + JsonEscape(name) + "\"}},\n";
}

// Complete span ("X": ts + dur) on a named track.
void AppendSpan(std::string& out, const TraceEvent& e, int tid) {
  AppendCommon(out, e, "X", tid);
  out += ",\"dur\":" + JsonNum(e.dur_s * 1e6);
  AppendArgs(out, e);
  out += "},\n";
}

// Thread-scoped instant ("i").
void AppendInstant(std::string& out, const TraceEvent& e, int tid) {
  AppendCommon(out, e, "i", tid);
  out += ",\"s\":\"t\"";
  AppendArgs(out, e);
  out += "},\n";
}

// Async nestable event ("b"/"n"/"e") keyed by request id: Perfetto draws one
// bar per id from its "b" to its "e", with "n" marks inside.
void AppendAsync(std::string& out, const TraceEvent& e, const char* ph) {
  AppendCommon(out, e, ph, kTrackRequests);
  out += ",\"cat\":\"request\",\"id\":" + std::to_string(e.request_id);
  AppendArgs(out, e);
  out += "},\n";
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";

  // Process/thread name metadata first: one process per GPU seen in the
  // stream (plus GPU 0 for unattributed single-engine runs).
  std::set<int> pids;
  for (const TraceEvent& e : events) {
    pids.insert(PidOf(e));
  }
  if (pids.empty()) {
    pids.insert(0);
  }
  for (int pid : pids) {
    AppendMeta(out, pid, -1, "process_name", "GPU " + std::to_string(pid));
    AppendMeta(out, pid, kTrackRounds, "thread_name", "batch rounds");
    AppendMeta(out, pid, kTrackDisk, "thread_name", "disk channel");
    AppendMeta(out, pid, kTrackPcie, "thread_name", "pcie channel");
    AppendMeta(out, pid, kTrackSched, "thread_name", "scheduler");
    AppendMeta(out, pid, kTrackRouter, "thread_name", "router");
    AppendMeta(out, pid, kTrackNet, "thread_name", "net channel");
  }

  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kBatchRound:
        AppendSpan(out, e, kTrackRounds);
        break;
      case TraceEventType::kStoreLoad:
      case TraceEventType::kStorePrefetch:
        AppendSpan(out, e,
                   e.channel == TraceChannel::kDisk ? kTrackDisk : kTrackPcie);
        break;
      case TraceEventType::kKvSwap:
        AppendSpan(out, e, kTrackPcie);
        break;
      case TraceEventType::kStoreRemote:
        AppendSpan(out, e, kTrackNet);
        break;
      case TraceEventType::kRepair:
        // Repair completions are boundary-stamped instants on the receiving
        // node's net track.
        AppendInstant(out, e, kTrackNet);
        break;
      case TraceEventType::kSchedDispatch:
      case TraceEventType::kKvPreempt:
        AppendInstant(out, e, kTrackSched);
        break;
      case TraceEventType::kRouterPlace:
      case TraceEventType::kRouterWarmHint:
      case TraceEventType::kFaultCrash:
      case TraceEventType::kFaultDetect:
      case TraceEventType::kFaultRecover:
      case TraceEventType::kRouterReroute:
      case TraceEventType::kScaleUp:
      case TraceEventType::kScaleDown:
      case TraceEventType::kScaleDrainStart:
      case TraceEventType::kScaleDrainDone:
      case TraceEventType::kScaleRemove:
        AppendInstant(out, e, kTrackRouter);
        break;
      case TraceEventType::kFaultSlow:
      case TraceEventType::kFaultPartition:
        // Fault windows render as spans on the affected worker's router track.
        AppendSpan(out, e, kTrackRouter);
        break;
      case TraceEventType::kRequestQueued:
        AppendAsync(out, e, "b");
        break;
      case TraceEventType::kRequestFirstToken:
        AppendAsync(out, e, "n");
        break;
      case TraceEventType::kRequestDone:
        AppendAsync(out, e, "e");
        break;
      case TraceEventType::kAdmissionShed:
        // A shed both marks the scheduler decision and terminates the
        // request's async span (it will never emit request.done).
        AppendInstant(out, e, kTrackSched);
        AppendAsync(out, e, "e");
        break;
    }
  }

  // Trailing ",\n" → close the array. Every Append helper emits at least the
  // metadata lines, so the trim is always safe.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ChromeTraceJson(events);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fclose(f) == 0;
  return written == json.size() && flushed;
}

}  // namespace dz
