#include "src/obs/critical_path.h"

#include <algorithm>
#include <map>

namespace dz {

namespace {

// A labeled closed interval of one request's lifetime.
struct Interval {
  double begin = 0.0;
  double end = 0.0;
  // Which PathSegments field the interval charges.
  double PathSegments::* field = nullptr;
};

// Builds the interval chain for one request from its dispatch/preempt
// timestamps. Returns false when the chain does not match the record (events
// dropped by a flight-recorder ring): a valid chain has exactly
// preemptions + 1 dispatches interleaved d0 <= p0 <= d1 <= ... <= d_last,
// with d0 == start_s and every timestamp inside [arrival, finish].
bool BuildIntervals(const RequestTimes& r, const std::vector<double>& dispatches,
                    const std::vector<double>& preempts,
                    std::vector<Interval>& out) {
  if (dispatches.size() != preempts.size() + 1 ||
      static_cast<int>(preempts.size()) != r.preemptions) {
    return false;
  }
  if (dispatches.front() != r.start_s) {
    return false;
  }
  out.push_back({r.arrival_s, r.sched_attempt_s, &PathSegments::queue_s});
  out.push_back({r.sched_attempt_s, dispatches.front(), &PathSegments::load_s});
  for (size_t i = 0; i < preempts.size(); ++i) {
    if (preempts[i] < dispatches[i] || dispatches[i + 1] < preempts[i]) {
      return false;
    }
    out.push_back({dispatches[i], preempts[i], &PathSegments::compute_s});
    out.push_back({preempts[i], dispatches[i + 1], &PathSegments::preempt_s});
  }
  out.push_back({dispatches.back(), r.finish_s, &PathSegments::compute_s});
  return true;
}

// Record-only fallback (also the exact split when a request was never
// preempted): queue/load from the record, everything after admission counted
// as compute. Telescopes to E2E just like the event-derived chain.
void BuildFallbackIntervals(const RequestTimes& r, std::vector<Interval>& out) {
  out.push_back({r.arrival_s, r.sched_attempt_s, &PathSegments::queue_s});
  out.push_back({r.sched_attempt_s, r.start_s, &PathSegments::load_s});
  out.push_back({r.start_s, r.finish_s, &PathSegments::compute_s});
}

}  // namespace

std::vector<RequestPathBreakdown> AttributeRequests(
    const std::vector<RequestTimes>& requests,
    const std::vector<TraceEvent>& events) {
  // Collect each request's dispatch and preempt timestamps. `events` is
  // timestamp-ordered, so per-request vectors come out sorted.
  std::map<int, std::vector<double>> dispatches;
  std::map<int, std::vector<double>> preempts;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kSchedDispatch) {
      dispatches[e.request_id].push_back(e.ts_s);
    } else if (e.type == TraceEventType::kKvPreempt) {
      preempts[e.request_id].push_back(e.ts_s);
    }
  }

  std::vector<RequestPathBreakdown> out;
  out.reserve(requests.size());
  static const std::vector<double> kNone;
  for (const RequestTimes& r : requests) {
    RequestPathBreakdown b;
    b.id = r.id;
    b.slo = r.slo;

    const auto dit = dispatches.find(r.id);
    const auto pit = preempts.find(r.id);
    std::vector<Interval> intervals;
    b.complete = BuildIntervals(r, dit != dispatches.end() ? dit->second : kNone,
                                pit != preempts.end() ? pit->second : kNone,
                                intervals);
    if (!b.complete) {
      intervals.clear();
      BuildFallbackIntervals(r, intervals);
    }

    // E2E charges each interval whole; TTFT clips at the first-token stamp.
    // Summing interval lengths telescopes back to the measured latencies
    // (every boundary appears once as an end and once as the next begin).
    for (const Interval& iv : intervals) {
      b.e2e.*(iv.field) += iv.end - iv.begin;
      const double clipped_end = std::min(iv.end, r.first_token_s);
      if (clipped_end > iv.begin) {
        b.ttft.*(iv.field) += clipped_end - iv.begin;
      }
    }
    out.push_back(b);
  }
  return out;
}

ClassPathAttribution BuildClassAttribution(
    const std::vector<RequestPathBreakdown>& breakdowns) {
  ClassPathAttribution by_class = {};
  for (const RequestPathBreakdown& b : breakdowns) {
    by_class[static_cast<size_t>(b.slo)].Add(b);
  }
  return by_class;
}

}  // namespace dz
