#include "src/obs/trace_recorder.h"

#include <algorithm>

namespace dz {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kRequestQueued:
      return "request.queued";
    case TraceEventType::kAdmissionShed:
      return "admission.shed";
    case TraceEventType::kSchedDispatch:
      return "sched.dispatch";
    case TraceEventType::kStoreLoad:
      return "store.load";
    case TraceEventType::kStorePrefetch:
      return "store.prefetch";
    case TraceEventType::kBatchRound:
      return "batch.round";
    case TraceEventType::kKvPreempt:
      return "kv.preempt";
    case TraceEventType::kKvSwap:
      return "kv.swap";
    case TraceEventType::kRequestFirstToken:
      return "request.first_token";
    case TraceEventType::kRequestDone:
      return "request.done";
    case TraceEventType::kRouterPlace:
      return "router.place";
    case TraceEventType::kRouterWarmHint:
      return "router.warm_hint";
    case TraceEventType::kFaultCrash:
      return "fault.crash";
    case TraceEventType::kFaultDetect:
      return "fault.detect";
    case TraceEventType::kFaultRecover:
      return "fault.recover";
    case TraceEventType::kFaultSlow:
      return "fault.slow";
    case TraceEventType::kFaultPartition:
      return "fault.partition";
    case TraceEventType::kRouterReroute:
      return "router.reroute";
    case TraceEventType::kScaleUp:
      return "scale.up";
    case TraceEventType::kScaleDown:
      return "scale.down";
    case TraceEventType::kScaleDrainStart:
      return "scale.drain.start";
    case TraceEventType::kScaleDrainDone:
      return "scale.drain.done";
    case TraceEventType::kScaleRemove:
      return "scale.remove";
    case TraceEventType::kStoreRemote:
      return "store.remote";
    case TraceEventType::kRepair:
      return "repair";
  }
  return "unknown";
}

const char* TraceChannelName(TraceChannel channel) {
  switch (channel) {
    case TraceChannel::kNone:
      return "none";
    case TraceChannel::kDisk:
      return "disk";
    case TraceChannel::kPcie:
      return "pcie";
    case TraceChannel::kNet:
      return "net";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(const TracingConfig& config)
    : enabled_(config.enabled), ring_capacity_(config.ring_capacity) {
  if (enabled_ && ring_capacity_ > 0) {
    events_.reserve(ring_capacity_);
  }
}

void TraceRecorder::EmitEnabled(const TraceEvent& event) {
  if (ring_capacity_ == 0 || events_.size() < ring_capacity_) {
    events_.push_back(event);
    return;
  }
  // Ring full: overwrite the oldest-emitted slot, which sits at ring_next_.
  // (Emission order tracks simulated time up to in-flight transfer spans
  // stamped slightly ahead; Drain() re-sorts by timestamp.)
  events_[ring_next_] = event;
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> out;
  out.swap(events_);
  // Unwrap the ring: entries [ring_next_, end) are older than [0, ring_next_).
  if (ring_next_ > 0 && ring_next_ < out.size()) {
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(ring_next_),
                out.end());
  }
  ring_next_ = 0;
  // Stable by timestamp: engines emit in time order already, but cluster-
  // tagged merges and ring unwraps rely on the invariant being re-established
  // here, and stability keeps same-instant events in emission order (e.g. a
  // dispatch followed by a same-round preempt).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_s < b.ts_s;
                   });
  return out;
}

}  // namespace dz
