// Chrome trace_event JSON exporter: serializes a drained TraceEvent stream
// into the format chrome://tracing and Perfetto (ui.perfetto.dev) load
// natively — `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
//
// Layout: one process (pid) per GPU, with named threads (tids) as tracks —
// batch rounds, the disk and PCIe transfer channels, scheduler decisions, and
// router placement. Each request additionally becomes an async nestable span
// ("b"/"e" with id = request id) from queued to done/shed, with first-token
// and preemption instants nested inside, so a request's whole life reads as
// one horizontal bar across the timeline. Timestamps are simulated
// microseconds (ts_s * 1e6).
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/trace_recorder.h"

namespace dz {

// Renders `events` (timestamp-ordered, as TraceRecorder::Drain returns them)
// as a Chrome trace JSON document.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// Writes ChromeTraceJson(events) to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceEvent>& events);

}  // namespace dz

#endif  // SRC_OBS_TRACE_EXPORT_H_
