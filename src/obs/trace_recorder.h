// Per-request tracing substrate (dz_obs): typed lifecycle events on the
// simulated clock, collected by a low-overhead per-worker recorder.
//
// The serving engines, the ArtifactStore, and the cluster Router emit
// TraceEvents at every decision point of a request's life — queued, shed,
// dispatched, artifact transfers with channel + bytes, batch rounds, KV
// preemptions/swaps, first token, done — each stamped with request / model /
// tenant / SLO-class / GPU attribution. Aggregates (src/metrics/) answer "how
// much"; these events answer "why did THIS request stall", and they feed the
// Chrome-trace exporter (trace_export.h) and the critical-path analyzer
// (critical_path.h).
//
// Recorders are share-nothing like the PR 6 metrics registries: one per
// Serve() call, merged at the cluster layer in GPU order. Two modes:
//   * full trace (ring_capacity == 0): every event is kept, for --trace-out
//     exports and the critical-path attribution;
//   * flight recorder (ring_capacity > 0): a fixed-size ring of the most
//     recent events — bounded memory, cheap enough to leave always-on in long
//     soaks, dumped as a postmortem when a health gate trips.
// Disabled (the default) every Emit is a single predicted branch, and engine
// behavior is bit-identical to a build without tracing (golden-enforced).
#ifndef SRC_OBS_TRACE_RECORDER_H_
#define SRC_OBS_TRACE_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/workload/trace.h"

namespace dz {

// Span/event taxonomy of the request path. Names (TraceEventTypeName) are the
// stable strings documented in ARCHITECTURE.md and emitted into trace JSON.
enum class TraceEventType {
  kRequestQueued,      // request entered a worker's waiting queue (ts = arrival)
  kAdmissionShed,      // admission control dropped the request (unmeetable SLO)
  kSchedDispatch,      // scheduler admitted the request into the running batch
  kStoreLoad,          // demand artifact transfer on a channel (span, bytes)
  kStorePrefetch,      // speculative artifact transfer on a channel (span, bytes)
  kBatchRound,         // one continuous-batching iteration (span; aux = batch size)
  kKvPreempt,          // request evicted from the running batch (class or
                       // parent-finish preemption); re-queued for resume
  kKvSwap,             // KV state moved across PCIe (span; aux: 0 = out, 1 = restore)
  kRequestFirstToken,  // end of the request's prefill iteration
  kRequestDone,        // request completed; record finalized
  kRouterPlace,        // cluster router assigned the request to a GPU shard
  kRouterWarmHint,     // router predicted a variant home; hint sent to a worker
  // Fault-injection / elasticity events (cluster layer, gpu = worker id):
  kFaultCrash,         // worker died (instant, at the injected crash time)
  kFaultDetect,        // router detected the death (crash + detection delay)
  kFaultRecover,       // worker came back and rejoined the routable set
  kFaultSlow,          // degraded-throughput window (span; dur = window length)
  kFaultPartition,     // disk/PCIe partition window (span; dur = window length)
  kRouterReroute,      // dead worker's backlog re-enqueued (aux = request count)
  kScaleUp,            // autoscaler added a worker (aux = new active count)
  kScaleDown,          // autoscaler chose a victim to remove (aux = new count)
  kScaleDrainStart,    // victim stopped receiving new requests
  kScaleDrainDone,     // victim's last in-flight request finished
  kScaleRemove,        // victim retired from the cluster
  // Artifact-registry events (replication / erasure coding, PR 9):
  kStoreRemote,        // remote registry fetch over the net channel (span, bytes;
                       // aux = 1 when the read was degraded: failover replica or
                       // parity decode)
  kRepair,             // background repair installed a fragment/replica copy
                       // (gpu = target node, model_id = artifact, aux = fragment)
};

// Stable dotted name of an event type ("request.queued", "store.load", ...).
const char* TraceEventTypeName(TraceEventType type);

// Transfer channel a store span occupied (kNone for non-store events).
enum class TraceChannel { kNone, kDisk, kPcie, kNet };

const char* TraceChannelName(TraceChannel channel);

// One typed event. Instant events have dur_s == 0; spans carry their length.
// Attribution fields default to "not applicable" (-1) — store spans have a
// model but no request; batch rounds have neither. `gpu` is stamped by the
// cluster merge (single-engine runs leave -1, rendered as GPU 0).
struct TraceEvent {
  TraceEventType type = TraceEventType::kBatchRound;
  double ts_s = 0.0;   // simulated seconds (trace global clock)
  double dur_s = 0.0;  // span length; 0 for instant events
  int request_id = -1;
  int model_id = -1;
  int tenant_id = -1;
  SloClass slo = SloClass::kStandard;
  int gpu = -1;
  TraceChannel channel = TraceChannel::kNone;
  double bytes = 0.0;  // payload moved (store spans)
  int aux = 0;         // batch size (rounds), swap direction (kv.swap), hint rank
};

// Tracing configuration carried in EngineConfig (named TracingConfig — the
// workload layer already owns `TraceConfig` for trace *generation*).
struct TracingConfig {
  // Off by default: Emit() is a no-op and engine behavior is bit-identical to
  // PR 6 (golden-enforced).
  bool enabled = false;
  // 0 keeps every event (full trace, unbounded memory ~ O(requests)).
  // > 0 switches to flight-recorder mode: a ring of the most recent
  // `ring_capacity` events; older events are overwritten and counted in
  // dropped(). Memory is fixed at ring_capacity * sizeof(TraceEvent).
  size_t ring_capacity = 0;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;  // disabled recorder
  explicit TraceRecorder(const TracingConfig& config);

  bool enabled() const { return enabled_; }

  // Records one event. No-op (one branch) when disabled; in ring mode the
  // oldest event is overwritten once the ring is full.
  void Emit(const TraceEvent& event) {
    if (!enabled_) {
      return;
    }
    EmitEnabled(event);
  }

  // Events currently held (<= ring_capacity in ring mode).
  size_t size() const { return events_.size(); }

  // Events overwritten in ring mode (0 in full mode).
  long long dropped() const { return dropped_; }

  // Returns the held events oldest-first (ring unwrapped), stable-sorted by
  // timestamp so same-instant events keep their emission order, and leaves the
  // recorder empty. Engines call this once at the end of Serve().
  std::vector<TraceEvent> Drain();

 private:
  void EmitEnabled(const TraceEvent& event);

  bool enabled_ = false;
  size_t ring_capacity_ = 0;  // 0 = unbounded
  size_t ring_next_ = 0;      // next overwrite position once the ring is full
  long long dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dz

#endif  // SRC_OBS_TRACE_RECORDER_H_
