// Unified metrics layer (cf. YTsaurus profiling/ + monitoring/): a registry of
// named, labeled counters, gauges, and log-bucketed histograms shared by every
// layer of the serving stack (store, engines, scheduler, cluster, benches).
//
// Design:
//   * Share-nothing, merge-at-snapshot: each worker (engine run) owns one
//     MetricsRegistry; instrument updates are plain stores by a single writer,
//     so the hot path pays one pointer deref + add and no lock or atomic RMW.
//     Cross-worker aggregation happens on immutable MetricsSnapshot values
//     (MergeFrom), exactly like ClusterReport merges per-GPU ServeReports.
//   * The registry mutex guards only registration/lookup and Snapshot(); callers
//     resolve instruments once (construction time) and keep the pointer, which
//     stays valid for the registry's lifetime.
//   * Instruments are identified by name + ordered label pairs; the canonical
//     key is "name{k=v,k2=v2}" (FormatMetricKey). Keep label cardinality low:
//     a label is a dimension ("class", "channel"), not a per-request id.
//   * Snapshot() materializes every instrument into a MetricPoint list sorted
//     by key (deterministic), which serializes to one JSON object per snapshot
//     (MetricsJsonlWriter appends snapshot lines => a JSONL time series).
//
// All counter/gauge values are doubles: integer counts stay exact far past any
// realistic request count (2^53), and time totals (busy seconds) accumulate in
// the same order as the pre-registry hand-maintained members, so reports
// materialized from snapshots are bit-identical to the legacy counters
// (golden-enforced).
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dz {

// Ordered label pairs, e.g. {{"class", "interactive"}}. Order is part of the
// identity (callers use a fixed order per metric name).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Canonical instrument key: "name" or "name{k=v,k2=v2}".
std::string FormatMetricKey(const std::string& name, const MetricLabels& labels);

enum class MetricKind { kCounter, kGauge, kHistogram };

// Monotonically increasing total. Single-writer (per-registry) by design.
class Counter {
 public:
  void Inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Last-write-wins instantaneous value (queue depth, resident artifacts, RSS).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log-bucketed histogram for latency-scale values: geometric buckets with ratio
// 2^(1/4) (~19% wide) spanning [1e-6 s, ~1e6 s), plus an underflow bucket for
// values <= 1e-6 (including 0 and negatives) and an overflow bucket above the
// span. Mergeable across workers (bucket-wise add); quantiles interpolate
// inside the landing bucket and clamp to the observed [min, max], so they are
// total functions: never NaN, 0 for an empty histogram, exactly the sample for
// a single-sample histogram.
class LogHistogram {
 public:
  static constexpr double kMinValue = 1e-6;
  static constexpr int kBucketsPerOctave = 4;
  // log2(1e6 / 1e-6) = ~39.9 octaves of span; 160 geometric buckets.
  static constexpr int kGeometricBuckets = 160;
  // +2: underflow (index 0) and overflow (last index).
  static constexpr int kNumBuckets = kGeometricBuckets + 2;

  void Record(double v);
  void Merge(const LogHistogram& other);

  long long count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  // q in [0, 1] (0.5 = p50). Defined for every state (see class comment).
  double Quantile(double q) const;

  // Raw bucket access (tests, sparse serialization). Bucket i spans
  // [BucketLowerBound(i), BucketUpperBound(i)).
  long long bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  static double BucketLowerBound(int i);
  static double BucketUpperBound(int i);

 private:
  static int BucketIndex(double v);

  std::vector<long long> counts_ = std::vector<long long>(kNumBuckets, 0);
  long long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One instrument materialized at snapshot time. For histograms `value` is the
// count and `hist` carries the full distribution.
struct MetricPoint {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  LogHistogram hist;

  std::string Key() const { return FormatMetricKey(name, labels); }
};

// Immutable view of a registry at one instant, tagged with the simulated time
// it was taken. Mergeable across workers: counters and gauges add (gauges are
// per-worker quantities whose cluster-wide total is the sum), histograms merge
// bucket-wise. Points are sorted by key, so identical registries on different
// workers merge positionally-stable and serialize deterministically.
struct MetricsSnapshot {
  double sim_time_s = 0.0;
  std::vector<MetricPoint> points;

  const MetricPoint* Find(const std::string& name,
                          const MetricLabels& labels = {}) const;
  // Counter/gauge value by name (+labels); `fallback` when absent.
  double Value(const std::string& name, const MetricLabels& labels = {},
               double fallback = 0.0) const;
  // Histogram by name (+labels); nullptr when absent or not a histogram.
  const LogHistogram* Hist(const std::string& name,
                           const MetricLabels& labels = {}) const;

  // Adds `other` into this snapshot: matching keys combine per kind, unmatched
  // points are inserted (key order preserved). sim_time_s takes the max.
  void MergeFrom(const MetricsSnapshot& other);

  // Upserts a scalar point (benches attach derived values, e.g. process RSS).
  void SetValue(const std::string& name, MetricKind kind, double value,
                const MetricLabels& labels = {});

  // One JSON object, no trailing newline:
  //   {"t_s":<sim_time_s>,...context...,"metrics":{"key":<num>,
  //    "hist.key":{"count":..,"sum":..,"min":..,"max":..,"p50":..,"p99":..,
  //                "p999":..},...}}
  // `context` pairs are emitted as top-level string fields (window id, engine).
  std::string ToJsonLine(
      const std::vector<std::pair<std::string, std::string>>& context = {}) const;
};

// Named-instrument registry. Get* registers on first use and returns a stable
// pointer; the mutex covers registration and Snapshot() only (see file header
// for the single-writer hot-path contract).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  LogHistogram* GetHistogram(const std::string& name,
                             const MetricLabels& labels = {});

  MetricsSnapshot Snapshot(double sim_time_s = 0.0) const;

 private:
  struct Instrument {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    LogHistogram hist;
  };

  Instrument* Resolve(const std::string& name, const MetricLabels& labels,
                      MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;  // by key
};

// Appends MetricsSnapshot lines to a JSONL file (one snapshot per line). The
// file is truncated at construction; ok() reports open/write failures.
class MetricsJsonlWriter {
 public:
  explicit MetricsJsonlWriter(const std::string& path);
  ~MetricsJsonlWriter();
  MetricsJsonlWriter(const MetricsJsonlWriter&) = delete;
  MetricsJsonlWriter& operator=(const MetricsJsonlWriter&) = delete;

  bool ok() const { return ok_; }
  int lines_written() const { return lines_; }
  bool Append(const MetricsSnapshot& snapshot,
              const std::vector<std::pair<std::string, std::string>>& context = {});

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = false;
  int lines_ = 0;
};

}  // namespace dz

#endif  // SRC_METRICS_METRICS_H_
