#include "src/metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/util/check.h"
#include "src/util/json.h"

namespace dz {

std::string FormatMetricKey(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      key += ",";
    }
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

// ---- LogHistogram ----------------------------------------------------------

int LogHistogram::BucketIndex(double v) {
  if (!(v > kMinValue)) {  // NaN, negatives, 0, and sub-resolution values
    return 0;
  }
  const int geometric = static_cast<int>(
      std::log2(v / kMinValue) * static_cast<double>(kBucketsPerOctave));
  if (geometric >= kGeometricBuckets) {
    return kNumBuckets - 1;  // overflow
  }
  return 1 + std::max(0, geometric);
}

double LogHistogram::BucketLowerBound(int i) {
  if (i <= 0) {
    return 0.0;
  }
  return kMinValue *
         std::exp2(static_cast<double>(i - 1) / static_cast<double>(kBucketsPerOctave));
}

double LogHistogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kMinValue *
         std::exp2(static_cast<double>(i) / static_cast<double>(kBucketsPerOctave));
}

void LogHistogram::Record(double v) {
  ++counts_[static_cast<size_t>(BucketIndex(v))];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;  // empty: defined, never NaN
  }
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in [0, count-1]; walk the cumulative bucket counts to the
  // bucket that contains it.
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(counts_[static_cast<size_t>(i)]);
    if (in_bucket <= 0.0) {
      continue;
    }
    if (rank < cumulative + in_bucket) {
      double estimate;
      if (i == 0) {
        estimate = min_;  // underflow bucket: no finite lower bound to lerp from
      } else if (i == kNumBuckets - 1) {
        estimate = max_;  // overflow bucket: no finite upper bound
      } else {
        const double lo = BucketLowerBound(i);
        const double hi = BucketUpperBound(i);
        const double frac = (rank - cumulative + 0.5) / in_bucket;
        estimate = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      }
      // Clamp to the observed range: a single sample (or a single-bucket
      // population) reports the exact extremes instead of a bucket bound.
      return std::min(max_, std::max(min_, estimate));
    }
    cumulative += in_bucket;
  }
  return max_;  // numeric slack: rank beyond the last counted bucket
}

// ---- MetricsSnapshot -------------------------------------------------------

const MetricPoint* MetricsSnapshot::Find(const std::string& name,
                                         const MetricLabels& labels) const {
  const std::string key = FormatMetricKey(name, labels);
  for (const MetricPoint& p : points) {
    if (p.Key() == key) {
      return &p;
    }
  }
  return nullptr;
}

double MetricsSnapshot::Value(const std::string& name, const MetricLabels& labels,
                              double fallback) const {
  const MetricPoint* p = Find(name, labels);
  return p == nullptr ? fallback : p->value;
}

const LogHistogram* MetricsSnapshot::Hist(const std::string& name,
                                          const MetricLabels& labels) const {
  const MetricPoint* p = Find(name, labels);
  return p != nullptr && p->kind == MetricKind::kHistogram ? &p->hist : nullptr;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  sim_time_s = std::max(sim_time_s, other.sim_time_s);
  for (const MetricPoint& theirs : other.points) {
    const std::string key = theirs.Key();
    // Points are few (tens) and merges are per-window, so the linear probe
    // beats maintaining a side index.
    auto it = std::find_if(points.begin(), points.end(), [&](const MetricPoint& p) {
      return p.Key() == key;
    });
    if (it == points.end()) {
      // Keep global key order so merged snapshots serialize deterministically
      // regardless of which worker contributed which instrument.
      auto pos = std::find_if(points.begin(), points.end(), [&](const MetricPoint& p) {
        return p.Key() > key;
      });
      points.insert(pos, theirs);
      continue;
    }
    DZ_CHECK(it->kind == theirs.kind);
    switch (theirs.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        it->value += theirs.value;  // gauges sum: per-worker totals aggregate
        break;
      case MetricKind::kHistogram:
        it->hist.Merge(theirs.hist);
        it->value = static_cast<double>(it->hist.count());
        break;
    }
  }
}

void MetricsSnapshot::SetValue(const std::string& name, MetricKind kind, double value,
                               const MetricLabels& labels) {
  const std::string key = FormatMetricKey(name, labels);
  for (MetricPoint& p : points) {
    if (p.Key() == key) {
      p.kind = kind;
      p.value = value;
      return;
    }
  }
  MetricPoint p;
  p.name = name;
  p.labels = labels;
  p.kind = kind;
  p.value = value;
  auto pos = std::find_if(points.begin(), points.end(), [&](const MetricPoint& q) {
    return q.Key() > key;
  });
  points.insert(pos, p);
}

std::string MetricsSnapshot::ToJsonLine(
    const std::vector<std::pair<std::string, std::string>>& context) const {
  std::string line = "{\"t_s\":" + JsonNum(sim_time_s);
  for (const auto& [k, v] : context) {
    line += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  line += ",\"metrics\":{";
  bool first = true;
  for (const MetricPoint& p : points) {
    if (!first) {
      line += ",";
    }
    first = false;
    line += "\"" + JsonEscape(p.Key()) + "\":";
    if (p.kind == MetricKind::kHistogram) {
      line += "{\"count\":" + JsonNum(static_cast<double>(p.hist.count())) +
              ",\"sum\":" + JsonNum(p.hist.sum()) +
              ",\"min\":" + JsonNum(p.hist.min()) +
              ",\"max\":" + JsonNum(p.hist.max()) +
              ",\"p50\":" + JsonNum(p.hist.Quantile(0.50)) +
              ",\"p99\":" + JsonNum(p.hist.Quantile(0.99)) +
              ",\"p999\":" + JsonNum(p.hist.Quantile(0.999)) + "}";
    } else {
      line += JsonNum(p.value);
    }
  }
  line += "}}";
  return line;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Instrument* MetricsRegistry::Resolve(const std::string& name,
                                                      const MetricLabels& labels,
                                                      MetricKind kind) {
  const std::string key = FormatMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    // Re-registering a key as a different kind is a programming error.
    DZ_CHECK(it->second->kind == kind);
    return it->second.get();
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = labels;
  inst->kind = kind;
  Instrument* raw = inst.get();
  instruments_.emplace(key, std::move(inst));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  return &Resolve(name, labels, MetricKind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  return &Resolve(name, labels, MetricKind::kGauge)->gauge;
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                            const MetricLabels& labels) {
  return &Resolve(name, labels, MetricKind::kHistogram)->hist;
}

MetricsSnapshot MetricsRegistry::Snapshot(double sim_time_s) const {
  MetricsSnapshot snap;
  snap.sim_time_s = sim_time_s;
  std::lock_guard<std::mutex> lock(mu_);
  snap.points.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {  // map order == key order
    MetricPoint p;
    p.name = inst->name;
    p.labels = inst->labels;
    p.kind = inst->kind;
    switch (inst->kind) {
      case MetricKind::kCounter:
        p.value = inst->counter.value();
        break;
      case MetricKind::kGauge:
        p.value = inst->gauge.value();
        break;
      case MetricKind::kHistogram:
        p.hist = inst->hist;
        p.value = static_cast<double>(p.hist.count());
        break;
    }
    snap.points.push_back(std::move(p));
  }
  return snap;
}

// ---- MetricsJsonlWriter ----------------------------------------------------

MetricsJsonlWriter::MetricsJsonlWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  ok_ = file_ != nullptr;
}

MetricsJsonlWriter::~MetricsJsonlWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool MetricsJsonlWriter::Append(
    const MetricsSnapshot& snapshot,
    const std::vector<std::pair<std::string, std::string>>& context) {
  if (!ok_) {
    return false;
  }
  const std::string line = snapshot.ToJsonLine(context) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    ok_ = false;
    return false;
  }
  std::fflush(file_);  // snapshots are progress evidence; do not buffer them away
  ++lines_;
  return true;
}

}  // namespace dz
