// Synthetic downstream tasks standing in for the paper's evaluation suites.
//
// The paper evaluates fine-tuned-model quality on natural-instruction tasks (Amazon
// Review, Palindrome, Yes/No; paper Table 1) and harder suites (GSM8K math, BoolQ, NLI;
// paper Table 2, Fig. 2). We have no datasets offline, so each task is a *generative*
// synthetic analogue with a controllable difficulty profile:
//
//   kSentiment  — majority-vote sentiment of word tokens (≈ Amazon Review; "easy",
//                 learnable by near-low-rank updates, the regime where LoRA ≈ FMT).
//   kPalindrome — palindrome detection over digit strings (≈ Synthetic Palindrome).
//   kNli        — 3-way relation between two segments: copy / reversal / random
//                 (≈ NLI classification).
//   kTeacher    — binary labels produced by a frozen random transformer teacher
//                 (≈ BoolQ/LogiQA; requires full-rank adaptation, where FMT > LoRA).
//   kArithmetic — (a + b) mod 10 over digit operands (≈ GSM8K math; memorization-heavy,
//                 the paper's canonical "complex task" where LoRA lags FMT).
//
// Every task formats an example as a token sequence whose *last* position is supervised
// with a label token; accuracy is argmax-over-label-tokens at that position, mirroring
// multiple-choice scoring in lm-eval-harness.
#ifndef SRC_TRAIN_TASK_H_
#define SRC_TRAIN_TASK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/config.h"
#include "src/util/rng.h"

namespace dz {

struct Example {
  std::vector<int> tokens;  // includes a trailing query position
  int target = 0;           // label token expected at the last position
};

enum class TaskKind {
  kSentiment,
  kPalindrome,
  kNli,
  kTeacher,
  kArithmetic,
};

const char* TaskKindName(TaskKind kind);

class Task {
 public:
  virtual ~Task() = default;

  virtual Example Sample(Rng& rng) const = 0;
  virtual std::vector<int> label_tokens() const = 0;
  virtual std::string name() const = 0;

  // Deterministic evaluation set.
  std::vector<Example> MakeEvalSet(int n, uint64_t seed) const;
};

// Vocabulary layout shared by all tasks (within ModelConfig::vocab_size >= 128):
//   0..9     digit tokens
//   20..39   positive-sentiment words     40..59  negative-sentiment words
//   60..79   neutral filler words
//   100      SEP    101 QUERY (the supervised position reads this token)
//   110..119 label tokens (yes/no/neutral/entail/contra/...)
struct Vocab {
  static constexpr int kDigit0 = 0;
  static constexpr int kPositive0 = 20;
  static constexpr int kNegative0 = 40;
  static constexpr int kNeutral0 = 60;
  static constexpr int kSep = 100;
  static constexpr int kQuery = 101;
  static constexpr int kLabelYes = 110;
  static constexpr int kLabelNo = 111;
  static constexpr int kLabelNeutral = 112;
  static constexpr int kLabelEntail = 113;
  static constexpr int kLabelContra = 114;
};

// Creates a task. `config` sizes the teacher for kTeacher; `seed` fixes any internal
// task parameters (e.g., teacher weights) so train and eval see the same task.
std::unique_ptr<Task> MakeTask(TaskKind kind, const ModelConfig& config, uint64_t seed);

}  // namespace dz

#endif  // SRC_TRAIN_TASK_H_
