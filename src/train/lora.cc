#include "src/train/lora.h"

#include <cmath>

#include "src/util/check.h"

namespace dz {

LoraAdapter LoraAdapter::Init(const ModelWeights& base, int rank, float alpha, Rng& rng) {
  DZ_CHECK_GT(rank, 0);
  LoraAdapter adapter;
  adapter.rank = rank;
  adapter.alpha = alpha;
  for (const auto& layer : base.LinearLayers()) {
    LoraFactors f;
    const float a_std = 1.0f / std::sqrt(static_cast<float>(rank));
    f.a = Matrix::Random(rank, layer.weight->cols(), rng, a_std);
    f.b = Matrix(layer.weight->rows(), rank);  // zero → identity at init
    adapter.factors.emplace(layer.name, std::move(f));
  }
  return adapter;
}

ModelWeights LoraAdapter::MergedWith(const ModelWeights& base) const {
  ModelWeights merged = base;
  const float s = scale();
  for (auto& layer : merged.LinearLayers()) {
    const auto it = factors.find(layer.name);
    if (it == factors.end()) {
      continue;
    }
    // W += s · B · A.
    const Matrix ba = Matmul(it->second.b, it->second.a);
    Axpy(s, ba, *layer.weight);
  }
  return merged;
}

LinearOverlay LoraAdapter::MakeOverlay(const ModelWeights& base) const {
  LinearOverlay overlay;
  const float s = scale();
  for (const auto& layer : base.LinearLayers()) {
    const auto it = factors.find(layer.name);
    if (it == factors.end()) {
      continue;
    }
    const Matrix* w = layer.weight;
    const LoraFactors* f = &it->second;
    overlay.ops[layer.name] = [w, f, s](const Matrix& x) {
      Matrix y = MatmulNT(x, *w);
      const Matrix xa = MatmulNT(x, f->a);  // [tokens, rank]
      const Matrix delta = MatmulNT(xa, f->b);  // xa·Bᵀ → [tokens, out]
      Matrix out = std::move(y);
      Axpy(s, delta, out);
      return out;
    };
  }
  return overlay;
}

size_t LoraAdapter::Fp16ByteSize() const {
  size_t params = 0;
  for (const auto& [name, f] : factors) {
    params += f.a.size() + f.b.size();
  }
  return params * 2;
}

}  // namespace dz
