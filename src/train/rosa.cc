#include "src/train/rosa.h"

#include <algorithm>
#include <cmath>

#include "src/nn/ops.h"
#include "src/train/optimizer.h"
#include "src/util/check.h"

namespace dz {

Matrix CooMatrix::ToDense() const {
  Matrix m(rows, cols);
  for (size_t i = 0; i < values.size(); ++i) {
    m.at(row_idx[i], col_idx[i]) = values[i];
  }
  return m;
}

Matrix CooMatrix::MatmulNT(const Matrix& x) const {
  DZ_CHECK_EQ(x.cols(), cols);
  Matrix y(x.rows(), rows);
  for (size_t i = 0; i < values.size(); ++i) {
    const int out_row = row_idx[i];
    const int in_col = col_idx[i];
    const float v = values[i];
    for (int b = 0; b < x.rows(); ++b) {
      y.at(b, out_row) += x.at(b, in_col) * v;
    }
  }
  return y;
}

ModelWeights RosaAdapter::MergedWith(const ModelWeights& base) const {
  ModelWeights merged = lora.MergedWith(base);
  for (auto& layer : merged.LinearLayers()) {
    const auto it = sparse.find(layer.name);
    if (it != sparse.end()) {
      layer.weight->AddInPlace(it->second.ToDense());
    }
  }
  return merged;
}

LinearOverlay RosaAdapter::MakeOverlay(const ModelWeights& base) const {
  LinearOverlay overlay = lora.MakeOverlay(base);
  for (const auto& layer : base.LinearLayers()) {
    const auto it = sparse.find(layer.name);
    if (it == sparse.end()) {
      continue;
    }
    const CooMatrix* coo = &it->second;
    // Wrap the LoRA op (or the plain dense op) with the sparse term.
    auto inner = overlay.ops.count(layer.name) > 0
                     ? overlay.ops[layer.name]
                     : [w = layer.weight](const Matrix& x) { return MatmulNT(x, *w); };
    overlay.ops[layer.name] = [inner, coo](const Matrix& x) {
      Matrix y = inner(x);
      y.AddInPlace(coo->MatmulNT(x));
      return y;
    };
  }
  return overlay;
}

size_t RosaAdapter::Fp16ByteSize() const {
  size_t bytes = lora.Fp16ByteSize();
  for (const auto& [name, coo] : sparse) {
    bytes += coo.nnz() * (2 + 4 + 4);  // fp16 value + two int32 coordinates
  }
  return bytes;
}

namespace {

// One gradient probe on the frozen base to select the sparse support.
ModelWeights ProbeGradients(const Transformer& base, const Task& task, int batch,
                            Rng& rng) {
  ModelWeights grads = ModelWeights::ZerosLike(base.weights());
  for (int b = 0; b < batch; ++b) {
    const Example ex = task.Sample(rng);
    ForwardCache cache;
    const Matrix logits = base.Forward(ex.tokens, &cache);
    std::vector<int> targets(ex.tokens.size(), -1);
    targets.back() = ex.target;
    Matrix dlogits;
    CrossEntropy(logits, targets, dlogits);
    base.Backward(cache, dlogits, grads);
  }
  return grads;
}

}  // namespace

RosaAdapter FineTuneRosa(const Transformer& base, const Task& task, int rank, float alpha,
                         double density, const FineTuneConfig& config, Rng& rng) {
  DZ_CHECK_GT(density, 0.0);
  DZ_CHECK_LT(density, 1.0);
  RosaAdapter adapter;
  adapter.density = density;
  adapter.lora = LoraAdapter::Init(base.weights(), rank, alpha, rng);

  // Support selection: largest |grad| coordinates per layer.
  const ModelWeights probe = ProbeGradients(base, task, 16, rng);
  for (const auto& layer : probe.LinearLayers()) {
    const Matrix& g = *layer.weight;
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(density * static_cast<double>(g.size())));
    std::vector<size_t> order(g.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k), order.end(),
                      [&](size_t a, size_t b) {
                        return std::abs(g.data()[a]) > std::abs(g.data()[b]);
                      });
    CooMatrix coo;
    coo.rows = g.rows();
    coo.cols = g.cols();
    for (size_t i = 0; i < k; ++i) {
      coo.row_idx.push_back(static_cast<int>(order[i] / g.cols()));
      coo.col_idx.push_back(static_cast<int>(order[i] % g.cols()));
      coo.values.push_back(0.0f);  // starts as identity
    }
    adapter.sparse.emplace(layer.name, std::move(coo));
  }

  // Joint training: dense grads of the merged model project onto LoRA factors and
  // scatter onto the sparse support.
  std::map<std::string, std::pair<AdamMatrix, AdamMatrix>> lora_opt;
  std::map<std::string, AdamMatrix> sparse_opt;
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  for (const auto& [name, f] : adapter.lora.factors) {
    lora_opt.emplace(name,
                     std::make_pair(AdamMatrix(f.a.rows(), f.a.cols(), adam_config),
                                    AdamMatrix(f.b.rows(), f.b.cols(), adam_config)));
    sparse_opt.emplace(
        name, AdamMatrix(1, static_cast<int>(adapter.sparse.at(name).nnz()), adam_config));
  }
  const float s = adapter.lora.scale();

  for (int step = 0; step < config.steps; ++step) {
    Transformer merged(adapter.MergedWith(base.weights()));
    ModelWeights grads = ModelWeights::ZerosLike(merged.weights());
    for (int b = 0; b < config.batch; ++b) {
      const Example ex = task.Sample(rng);
      ForwardCache cache;
      const Matrix logits = merged.Forward(ex.tokens, &cache);
      std::vector<int> targets(ex.tokens.size(), -1);
      targets.back() = ex.target;
      Matrix dlogits;
      CrossEntropy(logits, targets, dlogits);
      merged.Backward(cache, dlogits, grads);
    }
    grads.Scale(1.0f / static_cast<float>(config.batch));

    for (auto& grad_layer : grads.LinearLayers()) {
      const auto lit = adapter.lora.factors.find(grad_layer.name);
      if (lit == adapter.lora.factors.end()) {
        continue;
      }
      LoraFactors& f = lit->second;
      const Matrix& dw = *grad_layer.weight;
      Matrix db = MatmulNT(dw, f.a);
      db.ScaleInPlace(s);
      Matrix da = Matmul(f.b.Transposed(), dw);
      da.ScaleInPlace(s);
      auto& [opt_a, opt_b] = lora_opt.at(grad_layer.name);
      opt_a.Step(f.a, da);
      opt_b.Step(f.b, db);

      CooMatrix& coo = adapter.sparse.at(grad_layer.name);
      Matrix vals(1, static_cast<int>(coo.nnz()));
      Matrix gvals(1, static_cast<int>(coo.nnz()));
      for (size_t i = 0; i < coo.nnz(); ++i) {
        vals.at(0, static_cast<int>(i)) = coo.values[i];
        gvals.at(0, static_cast<int>(i)) = dw.at(coo.row_idx[i], coo.col_idx[i]);
      }
      sparse_opt.at(grad_layer.name).Step(vals, gvals);
      for (size_t i = 0; i < coo.nnz(); ++i) {
        coo.values[i] = vals.at(0, static_cast<int>(i));
      }
    }
  }
  return adapter;
}

}  // namespace dz
