// Low-rank adapters (LoRA) over the transformer's linear layers.
//
// W_eff = W + (alpha / r) · B · A  with A ∈ [r, in], B ∈ [out, r]. B starts at zero so
// the adapter is a no-op before training (as in the LoRA paper). Serving attaches the
// adapter through a LinearOverlay, computing  y = x·Wᵀ + s·(x·Aᵀ)·Bᵀ  — the Punica /
// S-LoRA decoupled form the paper's engine inherits for PEFT models.
#ifndef SRC_TRAIN_LORA_H_
#define SRC_TRAIN_LORA_H_

#include <map>
#include <string>

#include "src/nn/transformer.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace dz {

struct LoraFactors {
  Matrix a;  // [rank, in]
  Matrix b;  // [out, rank]
};

struct LoraAdapter {
  int rank = 8;
  float alpha = 16.0f;
  std::map<std::string, LoraFactors> factors;  // keyed by linear-layer name

  float scale() const { return alpha / static_cast<float>(rank); }

  // Fresh adapter covering every linear layer of `base` (A ~ N(0, 1/r), B = 0).
  static LoraAdapter Init(const ModelWeights& base, int rank, float alpha, Rng& rng);

  // Materializes base + adapter into a full-weight copy (used for training and for
  // equivalence tests).
  ModelWeights MergedWith(const ModelWeights& base) const;

  // Overlay computing the decoupled form  x·Wᵀ + s·(x·Aᵀ)·Bᵀ  against `base`.
  // `base` must outlive the overlay.
  LinearOverlay MakeOverlay(const ModelWeights& base) const;

  // fp16 footprint of the adapter parameters (the LoRA serving artifact size).
  size_t Fp16ByteSize() const;
};

}  // namespace dz

#endif  // SRC_TRAIN_LORA_H_
