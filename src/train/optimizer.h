// Adam optimizer over whole models and over individual matrices (for LoRA factors).
#ifndef SRC_TRAIN_OPTIMIZER_H_
#define SRC_TRAIN_OPTIMIZER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/nn/transformer.h"
#include "src/tensor/matrix.h"

namespace dz {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
};

// Enumerates every trainable float span of a model (weights and norm gains) in a fixed
// order; the optimizer walks parameter/gradient/moment structures in lockstep.
std::vector<std::pair<float*, size_t>> ParamSpans(ModelWeights& w);

class AdamModel {
 public:
  AdamModel(const ModelWeights& shape, const AdamConfig& config);

  // One update: w -= lr * m̂ / (sqrt(v̂) + eps), with bias correction.
  void Step(ModelWeights& weights, ModelWeights& grads);

  int step_count() const { return t_; }

 private:
  AdamConfig config_;
  ModelWeights m_;
  ModelWeights v_;
  int t_ = 0;
};

class AdamMatrix {
 public:
  AdamMatrix(int rows, int cols, const AdamConfig& config);

  void Step(Matrix& w, const Matrix& grad);

 private:
  AdamConfig config_;
  Matrix m_;
  Matrix v_;
  int t_ = 0;
};

}  // namespace dz

#endif  // SRC_TRAIN_OPTIMIZER_H_
