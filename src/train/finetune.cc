#include "src/train/finetune.h"

#include <algorithm>
#include <cmath>

#include "src/nn/ops.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace dz {

namespace {

// Synthetic pre-training corpus: a seeded Markov chain over the vocabulary. The chain
// gives the base model generic sequence structure to learn, so fine-tuning sits on top
// of real learned weights (not noise) — important for the delta-statistics claims.
class MarkovCorpus {
 public:
  MarkovCorpus(int vocab, Rng& rng) : vocab_(vocab) {
    transitions_.reserve(static_cast<size_t>(vocab));
    for (int i = 0; i < vocab; ++i) {
      std::vector<double> row(static_cast<size_t>(vocab));
      for (auto& w : row) {
        const double u = rng.NextDouble();
        w = u < 0.9 ? 0.01 : rng.Uniform(0.5, 4.0);  // sparse transitions
      }
      transitions_.push_back(std::move(row));
    }
  }

  std::vector<int> Sample(int len, Rng& rng) const {
    std::vector<int> seq(static_cast<size_t>(len));
    seq[0] = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(vocab_)));
    for (int i = 1; i < len; ++i) {
      seq[static_cast<size_t>(i)] =
          rng.Categorical(transitions_[static_cast<size_t>(seq[static_cast<size_t>(i - 1)])]);
    }
    return seq;
  }

 private:
  int vocab_;
  std::vector<std::vector<double>> transitions_;
};

// Runs forward+backward on one example; returns loss. Targets: next-token for
// pretraining sequences, last-position-only for task examples.
double AccumulateGrads(const Transformer& model, const std::vector<int>& tokens,
                       const std::vector<int>& targets, ModelWeights& grads) {
  ForwardCache cache;
  const Matrix logits = model.Forward(tokens, &cache);
  Matrix dlogits;
  const double loss = CrossEntropy(logits, targets, dlogits);
  model.Backward(cache, dlogits, grads);
  return loss;
}

std::vector<int> LastPositionTargets(const Example& ex) {
  std::vector<int> targets(ex.tokens.size(), -1);
  targets.back() = ex.target;
  return targets;
}

}  // namespace

double Pretrain(Transformer& model, const PretrainConfig& config, Rng& rng) {
  const ModelConfig& cfg = model.config();
  MarkovCorpus corpus(cfg.vocab_size, rng);
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  AdamModel adam(model.weights(), adam_config);

  // Mix in task-formatted examples so the label-token subspace is pre-trained too
  // (analogous to instruction data in a real pre-training mix).
  std::vector<std::unique_ptr<Task>> mix;
  for (TaskKind kind : {TaskKind::kSentiment, TaskKind::kPalindrome, TaskKind::kNli,
                        TaskKind::kArithmetic}) {
    mix.push_back(MakeTask(kind, cfg, rng.NextU64()));
  }

  double last_loss = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    ModelWeights grads = ModelWeights::ZerosLike(model.weights());
    double loss = 0.0;
    for (int b = 0; b < config.batch; ++b) {
      if (b % 4 == 3) {  // 25% task-formatted data
        const auto& task = mix[rng.NextBelow(mix.size())];
        const Example ex = task->Sample(rng);
        loss += AccumulateGrads(model, ex.tokens, LastPositionTargets(ex), grads);
      } else {
        const std::vector<int> seq = corpus.Sample(config.seq_len, rng);
        std::vector<int> targets(seq.begin() + 1, seq.end());
        targets.push_back(-1);  // nothing to predict after the last token
        loss += AccumulateGrads(model, seq, targets, grads);
      }
    }
    grads.Scale(1.0f / static_cast<float>(config.batch));
    adam.Step(model.mutable_weights(), grads);
    last_loss = loss / config.batch;
  }
  return last_loss;
}

double FineTuneFmt(Transformer& model, const Task& task, const FineTuneConfig& config,
                   Rng& rng) {
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  adam_config.weight_decay = config.weight_decay;
  AdamModel adam(model.weights(), adam_config);
  const Matrix frozen_embedding = model.weights().embedding;
  const Matrix frozen_lm_head = model.weights().lm_head;
  double last_loss = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    ModelWeights grads = ModelWeights::ZerosLike(model.weights());
    double loss = 0.0;
    for (int b = 0; b < config.batch; ++b) {
      const Example ex = task.Sample(rng);
      loss += AccumulateGrads(model, ex.tokens, LastPositionTargets(ex), grads);
    }
    grads.Scale(1.0f / static_cast<float>(config.batch));
    adam.Step(model.mutable_weights(), grads);
    if (config.freeze_embeddings) {
      // Keeping the restore inside the loop (rather than zeroing grads) also blocks
      // the optimizer's decoupled weight decay from drifting these tensors.
      model.mutable_weights().embedding = frozen_embedding;
      model.mutable_weights().lm_head = frozen_lm_head;
    }
    last_loss = loss / config.batch;
  }
  return last_loss;
}

LoraAdapter FineTuneLora(const Transformer& base, const Task& task, int rank, float alpha,
                         const FineTuneConfig& config, Rng& rng) {
  LoraAdapter adapter = LoraAdapter::Init(base.weights(), rank, alpha, rng);
  const float s = adapter.scale();

  // Per-factor Adam states.
  std::map<std::string, std::pair<AdamMatrix, AdamMatrix>> opt;
  AdamConfig adam_config;
  adam_config.lr = config.lr;
  for (const auto& [name, f] : adapter.factors) {
    opt.emplace(name, std::make_pair(AdamMatrix(f.a.rows(), f.a.cols(), adam_config),
                                     AdamMatrix(f.b.rows(), f.b.cols(), adam_config)));
  }

  for (int step = 0; step < config.steps; ++step) {
    // Materialize W_eff = W + s·B·A, take dense gradients, then project them onto the
    // factors: dB = s·dW·Aᵀ, dA = s·Bᵀ·dW. Exact because the loss depends only on W_eff.
    Transformer merged(adapter.MergedWith(base.weights()));
    ModelWeights grads = ModelWeights::ZerosLike(merged.weights());
    for (int b = 0; b < config.batch; ++b) {
      const Example ex = task.Sample(rng);
      AccumulateGrads(merged, ex.tokens, LastPositionTargets(ex), grads);
    }
    grads.Scale(1.0f / static_cast<float>(config.batch));

    for (auto& grad_layer : grads.LinearLayers()) {
      auto it = adapter.factors.find(grad_layer.name);
      if (it == adapter.factors.end()) {
        continue;
      }
      LoraFactors& f = it->second;
      const Matrix& dw = *grad_layer.weight;                // [out, in]
      Matrix db = MatmulNT(dw, f.a);                        // dW·Aᵀ → [out, r]
      db.ScaleInPlace(s);
      Matrix da = Matmul(f.b.Transposed(), dw);             // Bᵀ·dW → [r, in]
      da.ScaleInPlace(s);
      auto& [opt_a, opt_b] = opt.at(grad_layer.name);
      opt_a.Step(f.a, da);
      opt_b.Step(f.b, db);
    }
  }
  return adapter;
}

double EvaluateAccuracy(const Transformer& model, const Task& task, int n_examples,
                        uint64_t eval_seed, const LinearOverlay* overlay) {
  const std::vector<Example> eval_set = task.MakeEvalSet(n_examples, eval_seed);
  const std::vector<int> labels = task.label_tokens();
  DZ_CHECK(!labels.empty());
  int correct = 0;
  for (const Example& ex : eval_set) {
    const Matrix logits = model.Forward(ex.tokens, nullptr, overlay);
    const float* last = logits.row(logits.rows() - 1);
    int best = labels[0];
    for (int t : labels) {
      if (last[t] > last[best]) {
        best = t;
      }
    }
    if (best == ex.target) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / n_examples;
}

VariantSuite BuildVariantSuite(const ModelConfig& config, const std::vector<TaskKind>& tasks,
                               const PretrainConfig& pretrain_config,
                               const FineTuneConfig& finetune_config, uint64_t seed) {
  Rng rng(seed);
  VariantSuite suite;
  suite.base = std::make_unique<Transformer>(ModelWeights::RandomInit(config, rng));
  const double pre_loss = Pretrain(*suite.base, pretrain_config, rng);
  DZ_LOG(kInfo) << "pretrained base: loss=" << pre_loss;
  for (TaskKind kind : tasks) {
    const auto task = MakeTask(kind, config, seed ^ static_cast<uint64_t>(kind));
    FineTunedVariant variant;
    variant.task = kind;
    variant.model = std::make_unique<Transformer>(suite.base->weights());
    Rng ft_rng = rng.Fork();
    const double ft_loss = FineTuneFmt(*variant.model, *task, finetune_config, ft_rng);
    DZ_LOG(kInfo) << "fine-tuned variant on " << task->name() << ": loss=" << ft_loss;
    suite.variants.push_back(std::move(variant));
  }
  return suite;
}

}  // namespace dz
