#include "src/train/task.h"

#include <algorithm>

#include "src/nn/transformer.h"
#include "src/util/check.h"

namespace dz {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kSentiment:
      return "sentiment-review";
    case TaskKind::kPalindrome:
      return "palindrome";
    case TaskKind::kNli:
      return "nli-classification";
    case TaskKind::kTeacher:
      return "boolq-teacher";
    case TaskKind::kArithmetic:
      return "math-mod-arith";
  }
  return "?";
}

std::vector<Example> Task::MakeEvalSet(int n, uint64_t seed) const {
  Rng rng(seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Sample(rng));
  }
  return out;
}

namespace {

class SentimentTask : public Task {
 public:
  Example Sample(Rng& rng) const override {
    Example ex;
    const int len = 9;  // odd so majority is never tied
    int positive = 0;
    for (int i = 0; i < len; ++i) {
      // ~40% positive, ~40% negative, 20% neutral filler.
      const double u = rng.NextDouble();
      int tok = 0;
      if (u < 0.4) {
        tok = Vocab::kPositive0 + static_cast<int>(rng.NextBelow(20));
        ++positive;
      } else if (u < 0.8) {
        tok = Vocab::kNegative0 + static_cast<int>(rng.NextBelow(20));
        --positive;
      } else {
        tok = Vocab::kNeutral0 + static_cast<int>(rng.NextBelow(20));
      }
      ex.tokens.push_back(tok);
    }
    if (positive == 0) {  // break ties with one more positive word
      ex.tokens.push_back(Vocab::kPositive0);
      positive = 1;
    }
    ex.tokens.push_back(Vocab::kQuery);
    ex.target = positive > 0 ? Vocab::kLabelYes : Vocab::kLabelNo;
    return ex;
  }

  std::vector<int> label_tokens() const override {
    return {Vocab::kLabelYes, Vocab::kLabelNo};
  }
  std::string name() const override { return TaskKindName(TaskKind::kSentiment); }
};

class PalindromeTask : public Task {
 public:
  Example Sample(Rng& rng) const override {
    Example ex;
    const int half = 3 + static_cast<int>(rng.NextBelow(2));  // 3..4
    std::vector<int> digits;
    for (int i = 0; i < half; ++i) {
      digits.push_back(Vocab::kDigit0 + static_cast<int>(rng.NextBelow(10)));
    }
    const bool is_pal = rng.NextDouble() < 0.5;
    std::vector<int> tail(digits.rbegin(), digits.rend());
    if (!is_pal) {
      // Corrupt one mirrored digit so it is definitely not a palindrome.
      const size_t idx = rng.NextBelow(tail.size());
      tail[idx] = Vocab::kDigit0 + ((tail[idx] - Vocab::kDigit0 + 1 +
                                     static_cast<int>(rng.NextBelow(9))) %
                                    10);
    }
    ex.tokens = digits;
    ex.tokens.insert(ex.tokens.end(), tail.begin(), tail.end());
    ex.tokens.push_back(Vocab::kQuery);
    // Re-derive the label (corruption could accidentally form another palindrome for
    // even lengths — the +1..9 shift guarantees mismatch at that index, so it cannot).
    ex.target = is_pal ? Vocab::kLabelYes : Vocab::kLabelNo;
    return ex;
  }

  std::vector<int> label_tokens() const override {
    return {Vocab::kLabelYes, Vocab::kLabelNo};
  }
  std::string name() const override { return TaskKindName(TaskKind::kPalindrome); }
};

class NliTask : public Task {
 public:
  Example Sample(Rng& rng) const override {
    Example ex;
    const int len = 5;
    std::vector<int> premise;
    for (int i = 0; i < len; ++i) {
      premise.push_back(Vocab::kNeutral0 + static_cast<int>(rng.NextBelow(20)));
    }
    const int relation = static_cast<int>(rng.NextBelow(3));
    std::vector<int> hypothesis;
    switch (relation) {
      case 0:  // entailment: exact copy
        hypothesis = premise;
        ex.target = Vocab::kLabelEntail;
        break;
      case 1:  // contradiction: reversal
        hypothesis.assign(premise.rbegin(), premise.rend());
        ex.target = Vocab::kLabelContra;
        break;
      default: {  // neutral: fresh random segment
        for (int i = 0; i < len; ++i) {
          hypothesis.push_back(Vocab::kNeutral0 + static_cast<int>(rng.NextBelow(20)));
        }
        ex.target = Vocab::kLabelNeutral;
        break;
      }
    }
    ex.tokens = premise;
    ex.tokens.push_back(Vocab::kSep);
    ex.tokens.insert(ex.tokens.end(), hypothesis.begin(), hypothesis.end());
    ex.tokens.push_back(Vocab::kQuery);
    return ex;
  }

  std::vector<int> label_tokens() const override {
    return {Vocab::kLabelEntail, Vocab::kLabelContra, Vocab::kLabelNeutral};
  }
  std::string name() const override { return TaskKindName(TaskKind::kNli); }
};

class TeacherTask : public Task {
 public:
  TeacherTask(const ModelConfig& config, uint64_t seed) {
    // A frozen random transformer defines the labeling function. Its decision boundary
    // is a generic full-rank function of the input, which is what makes this the
    // "complex" regime where low-rank adaptation underperforms (paper Fig. 2).
    ModelConfig tc = config;
    tc.n_layers = 2;
    Rng rng(seed ^ 0x7E4CE201ull);
    teacher_ = std::make_unique<Transformer>(ModelWeights::RandomInit(tc, rng));
  }

  Example Sample(Rng& rng) const override {
    Example ex;
    const int len = 8;
    for (int i = 0; i < len; ++i) {
      ex.tokens.push_back(Vocab::kNeutral0 + static_cast<int>(rng.NextBelow(20)));
    }
    ex.tokens.push_back(Vocab::kQuery);
    const Matrix logits = teacher_->Forward(ex.tokens);
    const float* last = logits.row(logits.rows() - 1);
    ex.target =
        last[Vocab::kLabelYes] >= last[Vocab::kLabelNo] ? Vocab::kLabelYes : Vocab::kLabelNo;
    return ex;
  }

  std::vector<int> label_tokens() const override {
    return {Vocab::kLabelYes, Vocab::kLabelNo};
  }
  std::string name() const override { return TaskKindName(TaskKind::kTeacher); }

 private:
  std::unique_ptr<Transformer> teacher_;
};

class ArithmeticTask : public Task {
 public:
  Example Sample(Rng& rng) const override {
    Example ex;
    const int a = static_cast<int>(rng.NextBelow(10));
    const int b = static_cast<int>(rng.NextBelow(10));
    ex.tokens = {Vocab::kDigit0 + a, Vocab::kSep, Vocab::kDigit0 + b, Vocab::kQuery};
    ex.target = Vocab::kDigit0 + (a + b) % 10;
    return ex;
  }

  std::vector<int> label_tokens() const override {
    std::vector<int> labels(10);
    for (int i = 0; i < 10; ++i) {
      labels[static_cast<size_t>(i)] = Vocab::kDigit0 + i;
    }
    return labels;
  }
  std::string name() const override { return TaskKindName(TaskKind::kArithmetic); }
};

}  // namespace

std::unique_ptr<Task> MakeTask(TaskKind kind, const ModelConfig& config, uint64_t seed) {
  DZ_CHECK_GE(config.vocab_size, 120);
  switch (kind) {
    case TaskKind::kSentiment:
      return std::make_unique<SentimentTask>();
    case TaskKind::kPalindrome:
      return std::make_unique<PalindromeTask>();
    case TaskKind::kNli:
      return std::make_unique<NliTask>();
    case TaskKind::kTeacher:
      return std::make_unique<TeacherTask>(config, seed);
    case TaskKind::kArithmetic:
      return std::make_unique<ArithmeticTask>();
  }
  return nullptr;
}

}  // namespace dz
