#include "src/train/optimizer.h"

#include <cmath>

#include "src/util/check.h"

namespace dz {

std::vector<std::pair<float*, size_t>> ParamSpans(ModelWeights& w) {
  std::vector<std::pair<float*, size_t>> spans;
  auto add_matrix = [&spans](Matrix& m) {
    spans.emplace_back(m.data().data(), m.data().size());
  };
  auto add_vec = [&spans](std::vector<float>& v) { spans.emplace_back(v.data(), v.size()); };
  add_matrix(w.embedding);
  for (auto& layer : w.layers) {
    add_matrix(layer.wq);
    add_matrix(layer.wk);
    add_matrix(layer.wv);
    add_matrix(layer.wo);
    add_matrix(layer.w_gate);
    add_matrix(layer.w_up);
    add_matrix(layer.w_down);
    add_vec(layer.attn_norm);
    add_vec(layer.mlp_norm);
  }
  add_vec(w.final_norm);
  add_matrix(w.lm_head);
  return spans;
}

AdamModel::AdamModel(const ModelWeights& shape, const AdamConfig& config)
    : config_(config),
      m_(ModelWeights::ZerosLike(shape)),
      v_(ModelWeights::ZerosLike(shape)) {}

void AdamModel::Step(ModelWeights& weights, ModelWeights& grads) {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  auto w_spans = ParamSpans(weights);
  auto g_spans = ParamSpans(grads);
  auto m_spans = ParamSpans(m_);
  auto v_spans = ParamSpans(v_);
  DZ_CHECK_EQ(w_spans.size(), g_spans.size());
  for (size_t s = 0; s < w_spans.size(); ++s) {
    float* w = w_spans[s].first;
    const float* g = g_spans[s].first;
    float* m = m_spans[s].first;
    float* v = v_spans[s].first;
    const size_t n = w_spans[s].second;
    DZ_CHECK_EQ(n, g_spans[s].second);
    for (size_t i = 0; i < n; ++i) {
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                            config_.weight_decay * w[i]);
    }
  }
}

AdamMatrix::AdamMatrix(int rows, int cols, const AdamConfig& config)
    : config_(config), m_(rows, cols), v_(rows, cols) {}

void AdamMatrix::Step(Matrix& w, const Matrix& grad) {
  DZ_CHECK_EQ(w.rows(), m_.rows());
  DZ_CHECK_EQ(w.cols(), m_.cols());
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < w.data().size(); ++i) {
    const float g = grad.data()[i];
    m_.data()[i] = config_.beta1 * m_.data()[i] + (1.0f - config_.beta1) * g;
    v_.data()[i] = config_.beta2 * v_.data()[i] + (1.0f - config_.beta2) * g * g;
    const float mhat = m_.data()[i] / bc1;
    const float vhat = v_.data()[i] / bc2;
    w.data()[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                                 config_.weight_decay * w.data()[i]);
  }
}

}  // namespace dz
