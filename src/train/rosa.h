// RoSA-style robust adaptation: a low-rank adapter plus a *sparse* full-rank component
// (Nikdan et al., cited by the paper in §8 as a PEFT method existing LoRA-only serving
// systems cannot handle). DeltaZip's decoupled-overlay architecture serves it directly:
//     y = x·Wᵀ + s·(x·Aᵀ)·Bᵀ + x·Sᵀ
// where S is a coordinate-sparse matrix whose support is picked from the largest
// task-gradient magnitudes and whose values are trained.
#ifndef SRC_TRAIN_ROSA_H_
#define SRC_TRAIN_ROSA_H_

#include <map>
#include <string>
#include <vector>

#include "src/train/finetune.h"
#include "src/train/lora.h"
#include "src/train/task.h"

namespace dz {

// Coordinate-list sparse matrix, the adapter's full-rank component.
struct CooMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_idx;
  std::vector<int> col_idx;
  std::vector<float> values;

  size_t nnz() const { return values.size(); }
  Matrix ToDense() const;
  // y = x·Sᵀ touching only stored coordinates.
  Matrix MatmulNT(const Matrix& x) const;
};

struct RosaAdapter {
  LoraAdapter lora;
  std::map<std::string, CooMatrix> sparse;  // keyed by linear-layer name
  double density = 0.0;

  ModelWeights MergedWith(const ModelWeights& base) const;
  LinearOverlay MakeOverlay(const ModelWeights& base) const;
  // fp16 values + 2x int32 coordinates per nonzero, plus the LoRA factors.
  size_t Fp16ByteSize() const;
};

// Trains a RoSA adapter: support selection from one gradient probe on the frozen base,
// then joint training of LoRA factors and sparse values (materialize-and-project, like
// FineTuneLora).
RosaAdapter FineTuneRosa(const Transformer& base, const Task& task, int rank, float alpha,
                         double density, const FineTuneConfig& config, Rng& rng);

}  // namespace dz

#endif  // SRC_TRAIN_ROSA_H_
