// Pre-training, full-model fine-tuning (FMT), LoRA fine-tuning, and accuracy
// evaluation — the pipeline that manufactures the base models and genuinely fine-tuned
// variants whose deltas ΔCompress operates on.
#ifndef SRC_TRAIN_FINETUNE_H_
#define SRC_TRAIN_FINETUNE_H_

#include <memory>
#include <vector>

#include "src/nn/transformer.h"
#include "src/train/lora.h"
#include "src/train/optimizer.h"
#include "src/train/task.h"

namespace dz {

struct PretrainConfig {
  int steps = 200;
  int batch = 8;
  int seq_len = 24;
  float lr = 3e-3f;
};

// "Pre-trains" a randomly initialized model as a next-token predictor on a synthetic
// Markov-chain corpus (seeded by `rng`), plus a light mixture of all downstream task
// formats so label tokens are in-distribution. Returns final training loss.
double Pretrain(Transformer& model, const PretrainConfig& config, Rng& rng);

struct FineTuneConfig {
  int steps = 120;
  int batch = 8;
  float lr = 1e-3f;
  // Small LR + few steps keeps deltas small-magnitude, matching the paper's key
  // observation (Fig. 3). weight_decay gently anchors weights near the base.
  float weight_decay = 0.01f;
  // Keep embedding and LM-head at base values (a common FMT recipe; it also makes the
  // variant's delta zero on those tensors, so the artifact stores only linear deltas —
  // the regime behind the paper's headline compression ratios).
  bool freeze_embeddings = false;
};

// Full-model fine-tuning on `task`. Updates all parameters in place.
// Returns final training loss.
double FineTuneFmt(Transformer& model, const Task& task, const FineTuneConfig& config,
                   Rng& rng);

// LoRA fine-tuning: base weights stay frozen; only adapter factors train.
LoraAdapter FineTuneLora(const Transformer& base, const Task& task, int rank, float alpha,
                         const FineTuneConfig& config, Rng& rng);

// Accuracy on a deterministic eval set: argmax over the task's label tokens at the
// final position. `overlay` lets callers score compressed / adapter-backed variants.
double EvaluateAccuracy(const Transformer& model, const Task& task, int n_examples,
                        uint64_t eval_seed, const LinearOverlay* overlay = nullptr);

// Convenience container produced by fine-tuning runs.
struct FineTunedVariant {
  std::unique_ptr<Transformer> model;  // FMT weights
  TaskKind task;
};

// Builds one base model plus one FMT variant per task in `tasks`. All variants share
// the base, mirroring the paper's multi-variant serving setup.
struct VariantSuite {
  std::unique_ptr<Transformer> base;
  std::vector<FineTunedVariant> variants;
};
VariantSuite BuildVariantSuite(const ModelConfig& config, const std::vector<TaskKind>& tasks,
                               const PretrainConfig& pretrain_config,
                               const FineTuneConfig& finetune_config, uint64_t seed);

}  // namespace dz

#endif  // SRC_TRAIN_FINETUNE_H_
