// DeltaZip public facade — the paper's end-to-end system (Fig. 4) in one API.
//
// A DeltaZipService owns one base model plus any number of registered variants:
//   * full-model-tuned (FMT) checkpoints, which are ΔCompressed at registration time
//     (the Delta Compressor + Model Manager halves of Fig. 4), and
//   * LoRA adapters, stored as-is.
// Inference requests against a variant run the decoupled computation
// (base GEMM + compressed-delta / adapter path) through a LinearOverlay, and the
// serving-performance side is exposed through SimulateServing(), which runs a trace
// against the iteration-level engine in simulated time.
//
// Example:
//   DeltaZipService service(base_transformer, options);
//   int vid = service.RegisterFmtModel(finetuned_weights, calibration_tokens);
//   auto tokens = service.Generate(vid, prompt, 16);
//   ServeReport report = service.SimulateServing(trace, engine_config);
#ifndef SRC_CORE_DELTAZIP_H_
#define SRC_CORE_DELTAZIP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/compress/delta.h"
#include "src/nn/transformer.h"
#include "src/serving/engine.h"
#include "src/train/lora.h"
#include "src/workload/trace.h"

namespace dz {

struct DeltaZipOptions {
  DeltaCompressConfig compress;
};

struct VariantInfo {
  int id = 0;
  std::string name;
  bool is_lora = false;
  size_t artifact_bytes = 0;   // stored size of the delta / adapter
  double compression_ratio = 0.0;  // fine-tuned fp16 size / artifact size (FMT only)
};

class DeltaZipService {
 public:
  DeltaZipService(Transformer base, const DeltaZipOptions& options);

  // Registers a fine-tuned model: extracts and compresses the delta against the given
  // calibration sequences. Returns the variant id.
  int RegisterFmtModel(const ModelWeights& finetuned,
                       const std::vector<std::vector<int>>& calibration,
                       const std::string& name = "");

  // Registers a LoRA adapter directly (PEFT path).
  int RegisterLora(LoraAdapter adapter, const std::string& name = "");

  // Registers an already-compressed delta (e.g. loaded from the on-disk delta zoo via
  // src/compress/serialize.h). The artifact must have been produced against this
  // service's base model.
  int RegisterCompressedDelta(CompressedDelta delta, const std::string& name = "");

  int variant_count() const { return static_cast<int>(variants_.size()); }
  VariantInfo variant_info(int id) const;
  const CompressedDelta& delta(int id) const;

  const Transformer& base() const { return base_; }

  // Greedy generation against a variant (id < 0 → the base model itself), executing
  // the decoupled base+delta (or base+adapter) computation.
  std::vector<int> Generate(int variant_id, const std::vector<int>& prompt, int max_new,
                            int eos_token = -1) const;

  // Full-sequence logits for a variant (for evaluation harnesses).
  Matrix Forward(int variant_id, const std::vector<int>& tokens) const;

  // Serving-performance simulation of a multi-variant trace (paper §6.3).
  ServeReport SimulateServing(const Trace& trace, const EngineConfig& config) const;

 private:
  struct Variant {
    VariantInfo info;
    std::unique_ptr<CompressedDelta> delta;
    std::unique_ptr<LoraAdapter> lora;
    LinearOverlay overlay;
    // FMT variants need the fp16 non-linear deltas applied; we keep a host model with
    // merged embeddings/norms but *base* linear weights, so the overlay supplies Δ.
    std::unique_ptr<Transformer> host;
  };

  Transformer base_;
  DeltaZipOptions options_;
  std::vector<Variant> variants_;
};

}  // namespace dz

#endif  // SRC_CORE_DELTAZIP_H_
