#include "src/core/deltazip.h"

#include "src/util/check.h"
#include "src/util/logging.h"

namespace dz {

DeltaZipService::DeltaZipService(Transformer base, const DeltaZipOptions& options)
    : base_(std::move(base)), options_(options) {}

int DeltaZipService::RegisterFmtModel(const ModelWeights& finetuned,
                                      const std::vector<std::vector<int>>& calibration,
                                      const std::string& name) {
  // DeltaCompress fans per-group layer compression and calibration capture out
  // across ThreadPool::Global(); registration scales with cores (DZ_THREADS
  // overrides) and the artifact is bit-identical for any thread count.
  CompressedDelta delta =
      DeltaCompress(base_.weights(), finetuned, calibration, options_.compress);
  return RegisterCompressedDelta(std::move(delta), name);
}

int DeltaZipService::RegisterCompressedDelta(CompressedDelta delta,
                                             const std::string& name) {
  const int id = static_cast<int>(variants_.size());
  Variant v;
  v.info.id = id;
  v.info.name = name.empty() ? "fmt-variant-" + std::to_string(id) : name;
  v.info.is_lora = false;
  v.delta = std::make_unique<CompressedDelta>(std::move(delta));
  v.info.artifact_bytes = v.delta->StoredByteSize();
  v.info.compression_ratio = static_cast<double>(base_.weights().Fp16ByteSize()) /
                             static_cast<double>(v.info.artifact_bytes);

  // Host model: fp16 non-linear deltas applied, linear weights kept at base so the
  // overlay's decoupled base+Δ path supplies the fine-tuned behaviour.
  ModelWeights host = v.delta->ApplyTo(base_.weights());
  for (auto& layer : host.LinearLayers()) {
    for (const auto& base_layer : base_.weights().LinearLayers()) {
      if (base_layer.name == layer.name) {
        *layer.weight = *base_layer.weight;
        break;
      }
    }
  }
  v.host = std::make_unique<Transformer>(std::move(host));
  v.overlay = v.delta->MakeOverlay(v.host->weights());
  DZ_LOG(kInfo) << "registered " << v.info.name << ": artifact "
                << v.info.artifact_bytes << " B, ratio "
                << v.info.compression_ratio << "x";
  variants_.push_back(std::move(v));
  return id;
}

int DeltaZipService::RegisterLora(LoraAdapter adapter, const std::string& name) {
  const int id = static_cast<int>(variants_.size());
  Variant v;
  v.info.id = id;
  v.info.name = name.empty() ? "lora-variant-" + std::to_string(id) : name;
  v.info.is_lora = true;
  v.lora = std::make_unique<LoraAdapter>(std::move(adapter));
  v.info.artifact_bytes = v.lora->Fp16ByteSize();
  v.overlay = v.lora->MakeOverlay(base_.weights());
  variants_.push_back(std::move(v));
  return id;
}

VariantInfo DeltaZipService::variant_info(int id) const {
  DZ_CHECK_GE(id, 0);
  DZ_CHECK_LT(id, variant_count());
  return variants_[static_cast<size_t>(id)].info;
}

const CompressedDelta& DeltaZipService::delta(int id) const {
  DZ_CHECK_GE(id, 0);
  DZ_CHECK_LT(id, variant_count());
  DZ_CHECK(!variants_[static_cast<size_t>(id)].info.is_lora);
  return *variants_[static_cast<size_t>(id)].delta;
}

std::vector<int> DeltaZipService::Generate(int variant_id, const std::vector<int>& prompt,
                                           int max_new, int eos_token) const {
  if (variant_id < 0) {
    return base_.GenerateGreedy(prompt, max_new, eos_token);
  }
  DZ_CHECK_LT(variant_id, variant_count());
  const Variant& v = variants_[static_cast<size_t>(variant_id)];
  const Transformer& host = v.info.is_lora ? base_ : *v.host;
  return host.GenerateGreedy(prompt, max_new, eos_token, &v.overlay);
}

Matrix DeltaZipService::Forward(int variant_id, const std::vector<int>& tokens) const {
  if (variant_id < 0) {
    return base_.Forward(tokens);
  }
  DZ_CHECK_LT(variant_id, variant_count());
  const Variant& v = variants_[static_cast<size_t>(variant_id)];
  const Transformer& host = v.info.is_lora ? base_ : *v.host;
  return host.Forward(tokens, nullptr, &v.overlay);
}

ServeReport DeltaZipService::SimulateServing(const Trace& trace,
                                             const EngineConfig& config) const {
  const auto engine = config.artifact == ArtifactKind::kFullModel
                          ? MakeVllmScbEngine(config)
                          : MakeDeltaZipEngine(config);
  return engine->Serve(trace);
}

}  // namespace dz
