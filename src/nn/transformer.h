// Llama-style transformer with explicit forward/backward passes.
//
// The model is the substrate for reproducing the paper's quality experiments: base
// models are randomly initialized, "pre-trained" and "fine-tuned" with real gradient
// descent (src/train), and the resulting weight deltas feed ΔCompress (src/compress).
//
// Linear layers can be rerouted through a LinearOverlay, which is how the serving
// engine's decoupled computation  (w_base + Δ)·x = w_base·x + Δ·x  (paper Eq. 2) is
// executed and validated numerically: the overlay supplies a function per named layer
// that computes y = x·Wᵀ from base weights plus a compressed delta.
#ifndef SRC_NN_TRANSFORMER_H_
#define SRC_NN_TRANSFORMER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nn/config.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace dz {

struct LayerWeights {
  Matrix wq, wk, wv, wo;  // [d_model, d_model]
  Matrix w_gate, w_up;    // [d_ff, d_model]
  Matrix w_down;          // [d_model, d_ff]
  std::vector<float> attn_norm, mlp_norm;  // [d_model]
};

// A named reference to one linear weight matrix — the unit of delta compression.
struct NamedLayer {
  std::string name;
  Matrix* weight;
};
struct NamedLayerConst {
  std::string name;
  const Matrix* weight;
};

struct ModelWeights {
  ModelConfig config;
  Matrix embedding;  // [vocab, d_model]
  std::vector<LayerWeights> layers;
  std::vector<float> final_norm;
  Matrix lm_head;  // [vocab, d_model]

  static ModelWeights RandomInit(const ModelConfig& config, Rng& rng);
  // Same shapes, all zeros — used as a gradient container.
  static ModelWeights ZerosLike(const ModelWeights& other);

  // All delta-compressible linear layers (q/k/v/o/gate/up/down per block).
  // Embeddings, norms, and the LM head are excluded, mirroring the paper (§6.2 notes
  // the embedding layers are not compressed).
  std::vector<NamedLayer> LinearLayers();
  std::vector<NamedLayerConst> LinearLayers() const;

  size_t ParamCount() const;
  // fp16 serialized size of all parameters (the paper's FP16 baseline footprint).
  size_t Fp16ByteSize() const;
  // fp16 size of just the delta-compressible linear layers.
  size_t LinearFp16ByteSize() const;

  // this += alpha * other (all tensors).
  void Axpy(float alpha, const ModelWeights& other);
  void Scale(float s);
};

// Reroutes named linear layers through custom functions computing y = x·Wᵀ.
struct LinearOverlay {
  std::unordered_map<std::string, std::function<Matrix(const Matrix&)>> ops;

  bool Has(const std::string& name) const { return ops.count(name) > 0; }
};

// Per-layer KV cache for incremental decoding.
struct KVCache {
  std::vector<Matrix> k;  // per layer, [len, d_model]
  std::vector<Matrix> v;
  int len = 0;
};

// Activation cache captured by Forward for use by Backward.
struct ForwardCache {
  std::vector<int> tokens;
  Matrix embedded;
  struct Layer {
    Matrix attn_in;
    std::vector<float> attn_inv_rms;
    Matrix attn_normed;
    Matrix q_rope, k_rope, v;
    std::vector<Matrix> probs;
    Matrix attn_out;  // pre-wo
    Matrix mlp_in;
    std::vector<float> mlp_inv_rms;
    Matrix mlp_normed;
    Matrix gate, up, swiglu;
  };
  std::vector<Layer> layers;
  Matrix final_in;
  std::vector<float> final_inv_rms;
  Matrix final_normed;
};

class Transformer {
 public:
  explicit Transformer(ModelWeights weights);

  const ModelConfig& config() const { return weights_.config; }
  const ModelWeights& weights() const { return weights_; }
  ModelWeights& mutable_weights() { return weights_; }

  // Full-sequence forward. Returns logits [seq, vocab]. If cache != nullptr the
  // activations needed by Backward are recorded. If overlay != nullptr, matching
  // linear layers are computed through it.
  Matrix Forward(const std::vector<int>& tokens, ForwardCache* cache = nullptr,
                 const LinearOverlay* overlay = nullptr) const;

  // Accumulates parameter gradients into `grads` given d(loss)/d(logits).
  void Backward(const ForwardCache& cache, const Matrix& dlogits,
                ModelWeights& grads) const;

  // Incremental decoding: feeds one token, appends to the KV cache, and returns the
  // next-token logits [1, vocab].
  Matrix DecodeStep(int token, KVCache& kv, const LinearOverlay* overlay = nullptr) const;

  KVCache MakeKVCache() const;

  // Greedy generation: prefills `prompt`, then decodes up to max_new tokens (stops at
  // eos_token if >= 0). Returns only the generated tokens.
  std::vector<int> GenerateGreedy(const std::vector<int>& prompt, int max_new,
                                  int eos_token = -1,
                                  const LinearOverlay* overlay = nullptr) const;

 private:
  Matrix ApplyLinear(const std::string& name, const Matrix& w, const Matrix& x,
                     const LinearOverlay* overlay) const;

  ModelWeights weights_;
};

// Canonical layer names: "layer{i}.wq" ... "layer{i}.w_down".
std::string LinearLayerName(int layer, const char* which);

}  // namespace dz

#endif  // SRC_NN_TRANSFORMER_H_
