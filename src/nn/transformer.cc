#include "src/nn/transformer.h"

#include <cmath>

#include "src/nn/ops.h"
#include "src/tensor/kernels.h"

namespace dz {

std::string LinearLayerName(int layer, const char* which) {
  return "layer" + std::to_string(layer) + "." + which;
}

ModelWeights ModelWeights::RandomInit(const ModelConfig& config, Rng& rng) {
  config.Validate();
  ModelWeights w;
  w.config = config;
  const float emb_std = 0.8f / std::sqrt(static_cast<float>(config.d_model));
  const float proj_std = 0.8f / std::sqrt(static_cast<float>(config.d_model));
  const float ff_std = 0.8f / std::sqrt(static_cast<float>(config.d_ff));
  w.embedding = Matrix::Random(config.vocab_size, config.d_model, rng, emb_std);
  w.layers.resize(static_cast<size_t>(config.n_layers));
  for (auto& layer : w.layers) {
    layer.wq = Matrix::Random(config.d_model, config.d_model, rng, proj_std);
    layer.wk = Matrix::Random(config.d_model, config.d_model, rng, proj_std);
    layer.wv = Matrix::Random(config.d_model, config.d_model, rng, proj_std);
    layer.wo = Matrix::Random(config.d_model, config.d_model, rng, proj_std);
    layer.w_gate = Matrix::Random(config.d_ff, config.d_model, rng, proj_std);
    layer.w_up = Matrix::Random(config.d_ff, config.d_model, rng, proj_std);
    layer.w_down = Matrix::Random(config.d_model, config.d_ff, rng, ff_std);
    layer.attn_norm.assign(static_cast<size_t>(config.d_model), 1.0f);
    layer.mlp_norm.assign(static_cast<size_t>(config.d_model), 1.0f);
  }
  w.final_norm.assign(static_cast<size_t>(config.d_model), 1.0f);
  w.lm_head = Matrix::Random(config.vocab_size, config.d_model, rng, proj_std);
  return w;
}

ModelWeights ModelWeights::ZerosLike(const ModelWeights& other) {
  ModelWeights w;
  w.config = other.config;
  w.embedding = Matrix(other.embedding.rows(), other.embedding.cols());
  w.layers.resize(other.layers.size());
  for (size_t i = 0; i < w.layers.size(); ++i) {
    const auto& src = other.layers[i];
    auto& dst = w.layers[i];
    dst.wq = Matrix(src.wq.rows(), src.wq.cols());
    dst.wk = Matrix(src.wk.rows(), src.wk.cols());
    dst.wv = Matrix(src.wv.rows(), src.wv.cols());
    dst.wo = Matrix(src.wo.rows(), src.wo.cols());
    dst.w_gate = Matrix(src.w_gate.rows(), src.w_gate.cols());
    dst.w_up = Matrix(src.w_up.rows(), src.w_up.cols());
    dst.w_down = Matrix(src.w_down.rows(), src.w_down.cols());
    dst.attn_norm.assign(src.attn_norm.size(), 0.0f);
    dst.mlp_norm.assign(src.mlp_norm.size(), 0.0f);
  }
  w.final_norm.assign(other.final_norm.size(), 0.0f);
  w.lm_head = Matrix(other.lm_head.rows(), other.lm_head.cols());
  return w;
}

std::vector<NamedLayer> ModelWeights::LinearLayers() {
  std::vector<NamedLayer> out;
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    auto& l = layers[static_cast<size_t>(i)];
    out.push_back({LinearLayerName(i, "wq"), &l.wq});
    out.push_back({LinearLayerName(i, "wk"), &l.wk});
    out.push_back({LinearLayerName(i, "wv"), &l.wv});
    out.push_back({LinearLayerName(i, "wo"), &l.wo});
    out.push_back({LinearLayerName(i, "w_gate"), &l.w_gate});
    out.push_back({LinearLayerName(i, "w_up"), &l.w_up});
    out.push_back({LinearLayerName(i, "w_down"), &l.w_down});
  }
  return out;
}

std::vector<NamedLayerConst> ModelWeights::LinearLayers() const {
  std::vector<NamedLayerConst> out;
  for (const auto& layer : const_cast<ModelWeights*>(this)->LinearLayers()) {
    out.push_back({layer.name, layer.weight});
  }
  return out;
}

size_t ModelWeights::ParamCount() const {
  size_t n = embedding.size() + lm_head.size() + final_norm.size();
  for (const auto& l : layers) {
    n += l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() + l.w_gate.size() +
         l.w_up.size() + l.w_down.size() + l.attn_norm.size() + l.mlp_norm.size();
  }
  return n;
}

size_t ModelWeights::Fp16ByteSize() const { return ParamCount() * 2; }

size_t ModelWeights::LinearFp16ByteSize() const {
  size_t n = 0;
  for (const auto& layer : LinearLayers()) {
    n += layer.weight->size();
  }
  return n * 2;
}

namespace {

void AxpyVec(float alpha, const std::vector<float>& x, std::vector<float>& y) {
  DZ_CHECK_EQ(x.size(), y.size());
  kernels::AxpySpan(alpha, x.data(), y.data(), x.size());
}

}  // namespace

void ModelWeights::Axpy(float alpha, const ModelWeights& other) {
  dz::Axpy(alpha, other.embedding, embedding);
  dz::Axpy(alpha, other.lm_head, lm_head);
  AxpyVec(alpha, other.final_norm, final_norm);
  DZ_CHECK_EQ(layers.size(), other.layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    dz::Axpy(alpha, other.layers[i].wq, layers[i].wq);
    dz::Axpy(alpha, other.layers[i].wk, layers[i].wk);
    dz::Axpy(alpha, other.layers[i].wv, layers[i].wv);
    dz::Axpy(alpha, other.layers[i].wo, layers[i].wo);
    dz::Axpy(alpha, other.layers[i].w_gate, layers[i].w_gate);
    dz::Axpy(alpha, other.layers[i].w_up, layers[i].w_up);
    dz::Axpy(alpha, other.layers[i].w_down, layers[i].w_down);
    AxpyVec(alpha, other.layers[i].attn_norm, layers[i].attn_norm);
    AxpyVec(alpha, other.layers[i].mlp_norm, layers[i].mlp_norm);
  }
}

void ModelWeights::Scale(float s) {
  embedding.ScaleInPlace(s);
  lm_head.ScaleInPlace(s);
  for (auto& g : final_norm) {
    g *= s;
  }
  for (auto& l : layers) {
    l.wq.ScaleInPlace(s);
    l.wk.ScaleInPlace(s);
    l.wv.ScaleInPlace(s);
    l.wo.ScaleInPlace(s);
    l.w_gate.ScaleInPlace(s);
    l.w_up.ScaleInPlace(s);
    l.w_down.ScaleInPlace(s);
    for (auto& g : l.attn_norm) {
      g *= s;
    }
    for (auto& g : l.mlp_norm) {
      g *= s;
    }
  }
}

Transformer::Transformer(ModelWeights weights) : weights_(std::move(weights)) {
  weights_.config.Validate();
}

Matrix Transformer::ApplyLinear(const std::string& name, const Matrix& w, const Matrix& x,
                                const LinearOverlay* overlay) const {
  if (overlay != nullptr) {
    auto it = overlay->ops.find(name);
    if (it != overlay->ops.end()) {
      return it->second(x);
    }
  }
  return MatmulNT(x, w);
}

Matrix Transformer::Forward(const std::vector<int>& tokens, ForwardCache* cache,
                            const LinearOverlay* overlay) const {
  const ModelConfig& cfg = weights_.config;
  const int seq = static_cast<int>(tokens.size());
  DZ_CHECK_GT(seq, 0);
  DZ_CHECK_LE(seq, cfg.max_seq);

  Matrix x(seq, cfg.d_model);
  for (int i = 0; i < seq; ++i) {
    const int t = tokens[static_cast<size_t>(i)];
    DZ_CHECK_GE(t, 0);
    DZ_CHECK_LT(t, cfg.vocab_size);
    const float* emb = weights_.embedding.row(t);
    std::copy(emb, emb + cfg.d_model, x.row(i));
  }
  if (cache != nullptr) {
    cache->tokens = tokens;
    cache->embedded = x;
    cache->layers.assign(static_cast<size_t>(cfg.n_layers), ForwardCache::Layer{});
  }

  for (int li = 0; li < cfg.n_layers; ++li) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(li)];
    ForwardCache::Layer* lc = cache != nullptr ? &cache->layers[static_cast<size_t>(li)]
                                               : nullptr;
    // Attention block (pre-norm).
    std::vector<float> inv_rms;
    const Matrix normed = RmsNormForward(x, lw.attn_norm, cfg.norm_eps, inv_rms);
    Matrix q = ApplyLinear(LinearLayerName(li, "wq"), lw.wq, normed, overlay);
    Matrix k = ApplyLinear(LinearLayerName(li, "wk"), lw.wk, normed, overlay);
    const Matrix v = ApplyLinear(LinearLayerName(li, "wv"), lw.wv, normed, overlay);
    RopeApply(q, cfg.n_heads, cfg.rope_theta, 0);
    RopeApply(k, cfg.n_heads, cfg.rope_theta, 0);
    std::vector<Matrix> probs;
    const Matrix attn = AttentionForward(q, k, v, cfg.n_heads, probs);
    const Matrix o = ApplyLinear(LinearLayerName(li, "wo"), lw.wo, attn, overlay);
    if (lc != nullptr) {
      lc->attn_in = x;
      lc->attn_inv_rms = inv_rms;
      lc->attn_normed = normed;
      lc->q_rope = q;
      lc->k_rope = k;
      lc->v = v;
      lc->probs = probs;
      lc->attn_out = attn;
    }
    x.AddInPlace(o);

    // MLP block.
    std::vector<float> mlp_inv_rms;
    const Matrix mlp_normed = RmsNormForward(x, lw.mlp_norm, cfg.norm_eps, mlp_inv_rms);
    const Matrix gate =
        ApplyLinear(LinearLayerName(li, "w_gate"), lw.w_gate, mlp_normed, overlay);
    const Matrix up =
        ApplyLinear(LinearLayerName(li, "w_up"), lw.w_up, mlp_normed, overlay);
    const Matrix h = SwiGluForward(gate, up);
    const Matrix down = ApplyLinear(LinearLayerName(li, "w_down"), lw.w_down, h, overlay);
    if (lc != nullptr) {
      lc->mlp_in = x;
      lc->mlp_inv_rms = mlp_inv_rms;
      lc->mlp_normed = mlp_normed;
      lc->gate = gate;
      lc->up = up;
      lc->swiglu = h;
    }
    x.AddInPlace(down);
  }

  std::vector<float> final_inv_rms;
  const Matrix final_normed = RmsNormForward(x, weights_.final_norm, cfg.norm_eps,
                                             final_inv_rms);
  if (cache != nullptr) {
    cache->final_in = x;
    cache->final_inv_rms = final_inv_rms;
    cache->final_normed = final_normed;
  }
  return MatmulNT(final_normed, weights_.lm_head);
}

void Transformer::Backward(const ForwardCache& cache, const Matrix& dlogits,
                           ModelWeights& grads) const {
  const ModelConfig& cfg = weights_.config;
  DZ_CHECK_EQ(static_cast<int>(cache.layers.size()), cfg.n_layers);

  // LM head: logits = final_normed · lm_headᵀ.
  grads.lm_head.AddInPlace(MatmulTN(dlogits, cache.final_normed));
  Matrix dfinal_normed = Matmul(dlogits, weights_.lm_head);
  Matrix dx = RmsNormBackward(cache.final_in, weights_.final_norm, cache.final_inv_rms,
                              dfinal_normed, grads.final_norm);

  for (int li = cfg.n_layers - 1; li >= 0; --li) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(li)];
    LayerWeights& gw = grads.layers[static_cast<size_t>(li)];
    const ForwardCache::Layer& lc = cache.layers[static_cast<size_t>(li)];

    // MLP block backward: x_out = mlp_in + w_down(swiglu(gate, up)).
    const Matrix& ddown = dx;  // gradient flowing into the w_down output
    gw.w_down.AddInPlace(MatmulTN(ddown, lc.swiglu));
    const Matrix dh = Matmul(ddown, lw.w_down);
    Matrix dgate, dup;
    SwiGluBackward(lc.gate, lc.up, dh, dgate, dup);
    gw.w_gate.AddInPlace(MatmulTN(dgate, lc.mlp_normed));
    gw.w_up.AddInPlace(MatmulTN(dup, lc.mlp_normed));
    Matrix dmlp_normed = Matmul(dgate, lw.w_gate);
    dmlp_normed.AddInPlace(Matmul(dup, lw.w_up));
    const Matrix dmlp_in = RmsNormBackward(lc.mlp_in, lw.mlp_norm, lc.mlp_inv_rms,
                                           dmlp_normed, gw.mlp_norm);
    dx.AddInPlace(dmlp_in);  // residual: d(mlp_in) = dx(out) + d(norm path)

    // Attention block backward: x_mid = attn_in + wo(attn(...)).
    const Matrix& do_ = dx;
    gw.wo.AddInPlace(MatmulTN(do_, lc.attn_out));
    const Matrix dattn = Matmul(do_, lw.wo);
    Matrix dq, dk, dv;
    AttentionBackward(lc.q_rope, lc.k_rope, lc.v, cfg.n_heads, lc.probs, dattn, dq, dk,
                      dv);
    RopeApplyInverse(dq, cfg.n_heads, cfg.rope_theta, 0);
    RopeApplyInverse(dk, cfg.n_heads, cfg.rope_theta, 0);
    gw.wq.AddInPlace(MatmulTN(dq, lc.attn_normed));
    gw.wk.AddInPlace(MatmulTN(dk, lc.attn_normed));
    gw.wv.AddInPlace(MatmulTN(dv, lc.attn_normed));
    Matrix dattn_normed = Matmul(dq, lw.wq);
    dattn_normed.AddInPlace(Matmul(dk, lw.wk));
    dattn_normed.AddInPlace(Matmul(dv, lw.wv));
    const Matrix dattn_in = RmsNormBackward(lc.attn_in, lw.attn_norm, lc.attn_inv_rms,
                                            dattn_normed, gw.attn_norm);
    dx.AddInPlace(dattn_in);
  }

  // Embedding rows.
  for (int i = 0; i < static_cast<int>(cache.tokens.size()); ++i) {
    const int t = cache.tokens[static_cast<size_t>(i)];
    float* grow = grads.embedding.row(t);
    const float* dxr = dx.row(i);
    for (int j = 0; j < cfg.d_model; ++j) {
      grow[j] += dxr[j];
    }
  }
}

KVCache Transformer::MakeKVCache() const {
  KVCache kv;
  kv.k.assign(static_cast<size_t>(weights_.config.n_layers), Matrix());
  kv.v.assign(static_cast<size_t>(weights_.config.n_layers), Matrix());
  kv.len = 0;
  return kv;
}

namespace {

// Appends a single row to a [len, d] matrix.
void AppendRow(Matrix& m, const Matrix& row, int d) {
  Matrix grown(m.rows() + 1, d);
  if (m.rows() > 0) {
    std::copy(m.data().begin(), m.data().end(), grown.data().begin());
  }
  std::copy(row.row(0), row.row(0) + d, grown.row(m.rows()));
  m = std::move(grown);
}

}  // namespace

Matrix Transformer::DecodeStep(int token, KVCache& kv,
                               const LinearOverlay* overlay) const {
  const ModelConfig& cfg = weights_.config;
  DZ_CHECK_GE(token, 0);
  DZ_CHECK_LT(token, cfg.vocab_size);
  DZ_CHECK_LT(kv.len, cfg.max_seq);
  const int pos = kv.len;

  Matrix x(1, cfg.d_model);
  const float* emb = weights_.embedding.row(token);
  std::copy(emb, emb + cfg.d_model, x.row(0));

  for (int li = 0; li < cfg.n_layers; ++li) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(li)];
    std::vector<float> inv_rms;
    const Matrix normed = RmsNormForward(x, lw.attn_norm, cfg.norm_eps, inv_rms);
    Matrix q = ApplyLinear(LinearLayerName(li, "wq"), lw.wq, normed, overlay);
    Matrix k = ApplyLinear(LinearLayerName(li, "wk"), lw.wk, normed, overlay);
    const Matrix v = ApplyLinear(LinearLayerName(li, "wv"), lw.wv, normed, overlay);
    RopeApply(q, cfg.n_heads, cfg.rope_theta, pos);
    RopeApply(k, cfg.n_heads, cfg.rope_theta, pos);
    AppendRow(kv.k[static_cast<size_t>(li)], k, cfg.d_model);
    AppendRow(kv.v[static_cast<size_t>(li)], v, cfg.d_model);
    const Matrix attn = AttentionDecodeStep(q, kv.k[static_cast<size_t>(li)],
                                            kv.v[static_cast<size_t>(li)], cfg.n_heads);
    const Matrix o = ApplyLinear(LinearLayerName(li, "wo"), lw.wo, attn, overlay);
    x.AddInPlace(o);

    std::vector<float> mlp_inv_rms;
    const Matrix mlp_normed = RmsNormForward(x, lw.mlp_norm, cfg.norm_eps, mlp_inv_rms);
    const Matrix gate =
        ApplyLinear(LinearLayerName(li, "w_gate"), lw.w_gate, mlp_normed, overlay);
    const Matrix up =
        ApplyLinear(LinearLayerName(li, "w_up"), lw.w_up, mlp_normed, overlay);
    const Matrix h = SwiGluForward(gate, up);
    const Matrix down = ApplyLinear(LinearLayerName(li, "w_down"), lw.w_down, h, overlay);
    x.AddInPlace(down);
  }
  ++kv.len;

  std::vector<float> final_inv_rms;
  const Matrix final_normed = RmsNormForward(x, weights_.final_norm, cfg.norm_eps,
                                             final_inv_rms);
  return MatmulNT(final_normed, weights_.lm_head);
}

std::vector<int> Transformer::GenerateGreedy(const std::vector<int>& prompt, int max_new,
                                             int eos_token,
                                             const LinearOverlay* overlay) const {
  DZ_CHECK(!prompt.empty());
  KVCache kv = MakeKVCache();
  Matrix logits;
  for (int t : prompt) {
    logits = DecodeStep(t, kv, overlay);
  }
  std::vector<int> out;
  for (int step = 0; step < max_new && kv.len < weights_.config.max_seq; ++step) {
    int best = 0;
    const float* row = logits.row(0);
    for (int j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) {
        best = j;
      }
    }
    out.push_back(best);
    if (best == eos_token) {
      break;
    }
    if (kv.len < weights_.config.max_seq) {
      logits = DecodeStep(best, kv, overlay);
    }
  }
  return out;
}

}  // namespace dz
