#include "src/nn/ops.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace dz {

Matrix RmsNormForward(const Matrix& x, const std::vector<float>& gain, float eps,
                      std::vector<float>& inv_rms) {
  const int seq = x.rows();
  const int d = x.cols();
  DZ_CHECK_EQ(static_cast<int>(gain.size()), d);
  inv_rms.assign(static_cast<size_t>(seq), 0.0f);
  Matrix y(seq, d);
  for (int i = 0; i < seq; ++i) {
    const float* xr = x.row(i);
    double ss = 0.0;
    for (int j = 0; j < d; ++j) {
      ss += static_cast<double>(xr[j]) * xr[j];
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(ss / d) + eps);
    inv_rms[static_cast<size_t>(i)] = inv;
    float* yr = y.row(i);
    for (int j = 0; j < d; ++j) {
      yr[j] = xr[j] * inv * gain[static_cast<size_t>(j)];
    }
  }
  return y;
}

Matrix RmsNormBackward(const Matrix& x, const std::vector<float>& gain,
                       const std::vector<float>& inv_rms, const Matrix& dy,
                       std::vector<float>& dgain) {
  const int seq = x.rows();
  const int d = x.cols();
  DZ_CHECK_EQ(dy.rows(), seq);
  DZ_CHECK_EQ(dy.cols(), d);
  if (dgain.size() != gain.size()) {
    dgain.assign(gain.size(), 0.0f);
  }
  Matrix dx(seq, d);
  for (int i = 0; i < seq; ++i) {
    const float* xr = x.row(i);
    const float* dyr = dy.row(i);
    float* dxr = dx.row(i);
    const float inv = inv_rms[static_cast<size_t>(i)];
    // dgain_j += dy_j * x_j * inv ; dx = inv*(g⊙dy) - x * inv^3/d * sum(g⊙dy⊙x)
    double dot = 0.0;
    for (int j = 0; j < d; ++j) {
      const float gdy = gain[static_cast<size_t>(j)] * dyr[j];
      dot += static_cast<double>(gdy) * xr[j];
      dgain[static_cast<size_t>(j)] += dyr[j] * xr[j] * inv;
    }
    const float coeff = static_cast<float>(dot) * inv * inv * inv / static_cast<float>(d);
    for (int j = 0; j < d; ++j) {
      const float gdy = gain[static_cast<size_t>(j)] * dyr[j];
      dxr[j] = gdy * inv - xr[j] * coeff;
    }
  }
  return dx;
}

namespace {

// Rotates pairs within each head: (a, b) → (a cosθ - b sinθ, a sinθ + b cosθ).
void RopeRotate(Matrix& x, int n_heads, float theta, int pos_offset, float direction) {
  const int seq = x.rows();
  const int d = x.cols();
  DZ_CHECK_EQ(d % n_heads, 0);
  const int hd = d / n_heads;
  DZ_CHECK_EQ(hd % 2, 0);
  for (int i = 0; i < seq; ++i) {
    float* row = x.row(i);
    const float pos = static_cast<float>(pos_offset + i);
    for (int h = 0; h < n_heads; ++h) {
      float* head = row + h * hd;
      for (int p = 0; p < hd / 2; ++p) {
        const float freq =
            std::pow(theta, -2.0f * static_cast<float>(p) / static_cast<float>(hd));
        const float angle = direction * pos * freq;
        const float c = std::cos(angle);
        const float s = std::sin(angle);
        const float a = head[2 * p];
        const float b = head[2 * p + 1];
        head[2 * p] = a * c - b * s;
        head[2 * p + 1] = a * s + b * c;
      }
    }
  }
}

}  // namespace

void RopeApply(Matrix& x, int n_heads, float theta, int pos_offset) {
  RopeRotate(x, n_heads, theta, pos_offset, 1.0f);
}

void RopeApplyInverse(Matrix& x, int n_heads, float theta, int pos_offset) {
  RopeRotate(x, n_heads, theta, pos_offset, -1.0f);
}

Matrix AttentionForward(const Matrix& q, const Matrix& k, const Matrix& v, int n_heads,
                        std::vector<Matrix>& probs) {
  const int seq = q.rows();
  const int d = q.cols();
  const int hd = d / n_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  probs.assign(static_cast<size_t>(n_heads), Matrix());
  Matrix out(seq, d);
  for (int h = 0; h < n_heads; ++h) {
    Matrix p(seq, seq);
    for (int i = 0; i < seq; ++i) {
      const float* qr = q.row(i) + h * hd;
      float* pr = p.row(i);
      float max_s = -1e30f;
      for (int j = 0; j <= i; ++j) {
        const float* kr = k.row(j) + h * hd;
        float s = 0.0f;
        for (int t = 0; t < hd; ++t) {
          s += qr[t] * kr[t];
        }
        s *= scale;
        pr[j] = s;
        max_s = std::max(max_s, s);
      }
      float denom = 0.0f;
      for (int j = 0; j <= i; ++j) {
        pr[j] = std::exp(pr[j] - max_s);
        denom += pr[j];
      }
      for (int j = 0; j <= i; ++j) {
        pr[j] /= denom;
      }
      // j > i stays zero (causal mask).
      float* orow = out.row(i) + h * hd;
      for (int j = 0; j <= i; ++j) {
        const float* vr = v.row(j) + h * hd;
        const float pj = pr[j];
        for (int t = 0; t < hd; ++t) {
          orow[t] += pj * vr[t];
        }
      }
    }
    probs[static_cast<size_t>(h)] = std::move(p);
  }
  return out;
}

void AttentionBackward(const Matrix& q, const Matrix& k, const Matrix& v, int n_heads,
                       const std::vector<Matrix>& probs, const Matrix& dout, Matrix& dq,
                       Matrix& dk, Matrix& dv) {
  const int seq = q.rows();
  const int d = q.cols();
  const int hd = d / n_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  dq = Matrix(seq, d);
  dk = Matrix(seq, d);
  dv = Matrix(seq, d);
  for (int h = 0; h < n_heads; ++h) {
    const Matrix& p = probs[static_cast<size_t>(h)];
    for (int i = 0; i < seq; ++i) {
      const float* dor = dout.row(i) + h * hd;
      const float* pr = p.row(i);
      // dV[j] += p[i][j] * dout[i];  dP[i][j] = dout[i] · v[j]
      // dS = P ⊙ (dP - sum_j dP*P)   (softmax Jacobian), then dq/dk from S = qk^T*scale.
      float dp_dot = 0.0f;
      std::vector<float> dp(static_cast<size_t>(i) + 1);
      for (int j = 0; j <= i; ++j) {
        const float* vr = v.row(j) + h * hd;
        float acc = 0.0f;
        for (int t = 0; t < hd; ++t) {
          acc += dor[t] * vr[t];
        }
        dp[static_cast<size_t>(j)] = acc;
        dp_dot += acc * pr[j];
        float* dvr = dv.row(j) + h * hd;
        for (int t = 0; t < hd; ++t) {
          dvr[t] += pr[j] * dor[t];
        }
      }
      float* dqr = dq.row(i) + h * hd;
      const float* qr = q.row(i) + h * hd;
      for (int j = 0; j <= i; ++j) {
        const float ds = pr[j] * (dp[static_cast<size_t>(j)] - dp_dot) * scale;
        const float* kr = k.row(j) + h * hd;
        float* dkr = dk.row(j) + h * hd;
        for (int t = 0; t < hd; ++t) {
          dqr[t] += ds * kr[t];
          dkr[t] += ds * qr[t];
        }
      }
    }
  }
}

Matrix AttentionDecodeStep(const Matrix& q_row, const Matrix& k_cache,
                           const Matrix& v_cache, int n_heads) {
  DZ_CHECK_EQ(q_row.rows(), 1);
  const int d = q_row.cols();
  const int hd = d / n_heads;
  const int len = k_cache.rows();
  DZ_CHECK_GT(len, 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  Matrix out(1, d);
  std::vector<float> scores(static_cast<size_t>(len));
  for (int h = 0; h < n_heads; ++h) {
    const float* qr = q_row.row(0) + h * hd;
    float max_s = -1e30f;
    for (int j = 0; j < len; ++j) {
      const float* kr = k_cache.row(j) + h * hd;
      float s = 0.0f;
      for (int t = 0; t < hd; ++t) {
        s += qr[t] * kr[t];
      }
      s *= scale;
      scores[static_cast<size_t>(j)] = s;
      max_s = std::max(max_s, s);
    }
    float denom = 0.0f;
    for (int j = 0; j < len; ++j) {
      scores[static_cast<size_t>(j)] = std::exp(scores[static_cast<size_t>(j)] - max_s);
      denom += scores[static_cast<size_t>(j)];
    }
    float* orow = out.row(0) + h * hd;
    for (int j = 0; j < len; ++j) {
      const float pj = scores[static_cast<size_t>(j)] / denom;
      const float* vr = v_cache.row(j) + h * hd;
      for (int t = 0; t < hd; ++t) {
        orow[t] += pj * vr[t];
      }
    }
  }
  return out;
}

namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Matrix SwiGluForward(const Matrix& gate, const Matrix& up) {
  DZ_CHECK_EQ(gate.rows(), up.rows());
  DZ_CHECK_EQ(gate.cols(), up.cols());
  Matrix h(gate.rows(), gate.cols());
  for (size_t i = 0; i < h.data().size(); ++i) {
    const float g = gate.data()[i];
    h.data()[i] = g * Sigmoid(g) * up.data()[i];
  }
  return h;
}

void SwiGluBackward(const Matrix& gate, const Matrix& up, const Matrix& dh, Matrix& dgate,
                    Matrix& dup) {
  dgate = Matrix(gate.rows(), gate.cols());
  dup = Matrix(up.rows(), up.cols());
  for (size_t i = 0; i < dh.data().size(); ++i) {
    const float g = gate.data()[i];
    const float sg = Sigmoid(g);
    const float silu = g * sg;
    const float dsilu = sg * (1.0f + g * (1.0f - sg));
    dgate.data()[i] = dh.data()[i] * up.data()[i] * dsilu;
    dup.data()[i] = dh.data()[i] * silu;
  }
}

void SoftmaxRows(Matrix& x) {
  for (int i = 0; i < x.rows(); ++i) {
    float* row = x.row(i);
    float max_v = row[0];
    for (int j = 1; j < x.cols(); ++j) {
      max_v = std::max(max_v, row[j]);
    }
    float denom = 0.0f;
    for (int j = 0; j < x.cols(); ++j) {
      row[j] = std::exp(row[j] - max_v);
      denom += row[j];
    }
    for (int j = 0; j < x.cols(); ++j) {
      row[j] /= denom;
    }
  }
}

double CrossEntropy(const Matrix& logits, const std::vector<int>& targets,
                    Matrix& dlogits) {
  DZ_CHECK_EQ(logits.rows(), static_cast<int>(targets.size()));
  Matrix probs = logits;
  SoftmaxRows(probs);
  dlogits = Matrix(logits.rows(), logits.cols());
  int counted = 0;
  for (int i = 0; i < logits.rows(); ++i) {
    if (targets[static_cast<size_t>(i)] >= 0) {
      ++counted;
    }
  }
  if (counted == 0) {
    return 0.0;
  }
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(counted);
  for (int i = 0; i < logits.rows(); ++i) {
    const int t = targets[static_cast<size_t>(i)];
    if (t < 0) {
      continue;  // masked position
    }
    DZ_CHECK_LT(t, logits.cols());
    const float* pr = probs.row(i);
    loss -= std::log(std::max(pr[t], 1e-12f));
    float* dr = dlogits.row(i);
    for (int j = 0; j < logits.cols(); ++j) {
      dr[j] = (pr[j] - (j == t ? 1.0f : 0.0f)) * inv_n;
    }
  }
  return loss / counted;
}

double CrossEntropyLoss(const Matrix& logits, const std::vector<int>& targets) {
  Matrix scratch;
  return CrossEntropy(logits, targets, scratch);
}

}  // namespace dz
