// Differentiable primitives for the transformer: RMSNorm, RoPE, causal softmax
// attention, SiLU/SwiGLU, softmax cross-entropy. Each op has a Forward that stores what
// its Backward needs; activations use [seq, dim] row-major matrices.
#ifndef SRC_NN_OPS_H_
#define SRC_NN_OPS_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace dz {

// y = x * g / rms(x), per row. Returns y; saves inverse-rms per row into inv_rms.
Matrix RmsNormForward(const Matrix& x, const std::vector<float>& gain, float eps,
                      std::vector<float>& inv_rms);

// Backprop through RMSNorm. Accumulates gain gradient into dgain.
Matrix RmsNormBackward(const Matrix& x, const std::vector<float>& gain,
                       const std::vector<float>& inv_rms, const Matrix& dy,
                       std::vector<float>& dgain);

// Applies rotary position embeddings in place to a [seq, d_model] matrix interpreted as
// n_heads blocks of head_dim; position of row i is (pos_offset + i).
void RopeApply(Matrix& x, int n_heads, float theta, int pos_offset);

// Inverse rotation (RoPE is orthogonal, so backward = rotate gradients by -angle).
void RopeApplyInverse(Matrix& x, int n_heads, float theta, int pos_offset);

// Causal multi-head attention forward.
//   q, k, v: [seq, d_model] (already RoPE'd q/k).
// Saves per-head softmax probabilities (n_heads matrices of [seq, seq]) for backward.
Matrix AttentionForward(const Matrix& q, const Matrix& k, const Matrix& v, int n_heads,
                        std::vector<Matrix>& probs);

// Backprop through attention. Outputs dq, dk, dv.
void AttentionBackward(const Matrix& q, const Matrix& k, const Matrix& v, int n_heads,
                       const std::vector<Matrix>& probs, const Matrix& dout, Matrix& dq,
                       Matrix& dk, Matrix& dv);

// Incremental decode attention: the query is a single row at position `pos`, attending
// over k_cache/v_cache rows [0, pos]. Returns [1, d_model].
Matrix AttentionDecodeStep(const Matrix& q_row, const Matrix& k_cache,
                           const Matrix& v_cache, int n_heads);

// h = silu(gate) * up, elementwise.
Matrix SwiGluForward(const Matrix& gate, const Matrix& up);

// Backprop: given dh, produce dgate and dup.
void SwiGluBackward(const Matrix& gate, const Matrix& up, const Matrix& dh, Matrix& dgate,
                    Matrix& dup);

// Row-wise softmax (in place).
void SoftmaxRows(Matrix& x);

// Mean cross-entropy over rows of logits vs target token ids; also emits dlogits
// (already divided by the number of rows). Rows with target < 0 are ignored.
double CrossEntropy(const Matrix& logits, const std::vector<int>& targets,
                    Matrix& dlogits);

// Loss only (no gradient) — used by evaluation.
double CrossEntropyLoss(const Matrix& logits, const std::vector<int>& targets);

}  // namespace dz

#endif  // SRC_NN_OPS_H_
