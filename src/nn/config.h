// Transformer architecture configuration (Llama-family layout: RMSNorm, RoPE
// attention, SwiGLU MLP, untied LM head).
#ifndef SRC_NN_CONFIG_H_
#define SRC_NN_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/util/check.h"

namespace dz {

struct ModelConfig {
  int vocab_size = 128;
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 4;
  int d_ff = 172;        // SwiGLU hidden dim (~8/3 * d_model, like Llama)
  int max_seq = 64;
  float rope_theta = 10000.0f;
  float norm_eps = 1e-5f;

  int head_dim() const { return d_model / n_heads; }

  void Validate() const {
    DZ_CHECK_GT(vocab_size, 0);
    DZ_CHECK_GT(d_model, 0);
    DZ_CHECK_GT(n_layers, 0);
    DZ_CHECK_GT(n_heads, 0);
    DZ_CHECK_EQ(d_model % n_heads, 0);
    DZ_CHECK_EQ(head_dim() % 2, 0);  // RoPE rotates pairs
    DZ_CHECK_GT(d_ff, 0);
    DZ_CHECK_GT(max_seq, 0);
  }

  // Named presets sized so the full experiment suite runs on a laptop. The suffixes
  // mirror the paper's model families (Pythia-2.8B, Llama 7B/13B/70B, Gemma-2) but at
  // simulation scale; the *serving-side* footprint of the paper-scale models is handled
  // separately by simgpu::ModelShape.
  static ModelConfig Tiny();     // unit tests
  static ModelConfig Small();    // "pythia-sim"
  static ModelConfig Medium();   // "llama-sim"
  static ModelConfig Large();    // "llama-13b-sim" class
};

inline ModelConfig ModelConfig::Tiny() {
  ModelConfig c;
  c.vocab_size = 128;  // big enough for the shared task vocabulary layout
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.d_ff = 64;
  c.max_seq = 32;
  return c;
}

inline ModelConfig ModelConfig::Small() {
  ModelConfig c;
  c.vocab_size = 128;
  c.d_model = 64;
  c.n_layers = 3;
  c.n_heads = 4;
  c.d_ff = 172;
  c.max_seq = 64;
  return c;
}

inline ModelConfig ModelConfig::Medium() {
  ModelConfig c;
  c.vocab_size = 128;
  c.d_model = 96;
  c.n_layers = 4;
  c.n_heads = 6;
  c.d_ff = 256;
  c.max_seq = 64;
  return c;
}

inline ModelConfig ModelConfig::Large() {
  ModelConfig c;
  c.vocab_size = 128;
  c.d_model = 128;
  c.n_layers = 6;
  c.n_heads = 8;
  c.d_ff = 344;
  c.max_seq = 64;
  return c;
}

}  // namespace dz

#endif  // SRC_NN_CONFIG_H_
