#include "src/cluster/router.h"

#include <algorithm>
#include <memory>

#include "src/cluster/elastic.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace dz {

Router::Router(const PlacerConfig& config) : config_(config) {
  DZ_CHECK_GT(config_.n_gpus, 0);
}

std::vector<int> Router::Assign(const Trace& trace) const {
  return AssignTrace(trace, config_);
}

std::vector<Trace> Router::Split(const Trace& trace) const {
  return SplitTrace(trace, Assign(trace), config_.n_gpus);
}

std::vector<std::vector<int>> Router::WarmHints(const Trace& trace) const {
  if (config_.policy == PlacementPolicy::kDeltaAffinity) {
    return WarmHints(trace, {});
  }
  return WarmHints(trace, Assign(trace));
}

std::vector<std::vector<int>> Router::WarmHints(const Trace& trace,
                                                const std::vector<int>& shard_of) const {
  std::vector<std::vector<int>> hints(static_cast<size_t>(config_.n_gpus));
  if (config_.policy == PlacementPolicy::kDeltaAffinity) {
    // Predict from the ring: a variant's delta belongs on its home GPU
    // (assignments are not needed).
    const Placer placer(config_);
    std::vector<bool> seen(static_cast<size_t>(trace.n_models), false);
    for (const TraceRequest& req : trace.requests) {
      if (seen[static_cast<size_t>(req.model_id)]) {
        continue;
      }
      seen[static_cast<size_t>(req.model_id)] = true;
      hints[static_cast<size_t>(placer.HomeGpu(req.model_id))].push_back(req.model_id);
    }
  } else {
    // Load-based / oblivious policies have no stable variant→GPU mapping; hint
    // each worker with its own shard's variants.
    DZ_CHECK_EQ(shard_of.size(), trace.requests.size());
    std::vector<std::vector<bool>> seen_on(
        static_cast<size_t>(config_.n_gpus),
        std::vector<bool>(static_cast<size_t>(trace.n_models), false));
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      const int gpu = shard_of[i];
      const int model = trace.requests[i].model_id;
      if (seen_on[static_cast<size_t>(gpu)][static_cast<size_t>(model)]) {
        continue;
      }
      seen_on[static_cast<size_t>(gpu)][static_cast<size_t>(model)] = true;
      hints[static_cast<size_t>(gpu)].push_back(model);
    }
  }
  // Most-likely-first (the contract engines truncate against): descending
  // request count, first appearance breaking ties.
  const std::vector<int> counts = trace.ModelCounts();
  for (std::vector<int>& per_gpu : hints) {
    std::stable_sort(per_gpu.begin(), per_gpu.end(), [&](int a, int b) {
      return counts[static_cast<size_t>(a)] > counts[static_cast<size_t>(b)];
    });
  }
  return hints;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DZ_CHECK_GT(config_.placer.n_gpus, 0);
}

std::string Cluster::name() const {
  const char* engine = config_.vllm_baseline ? "vllm-scb" : "deltazip";
  return std::string(engine) + " x" + std::to_string(config_.placer.n_gpus) + " [" +
         PlacementPolicyName(config_.placer.policy) + "]";
}

ClusterReport Cluster::Serve(const Trace& trace) const {
  trace.CheckWellFormed();
  if (config_.faults.Enabled() || config_.autoscale.Enabled()) {
    return ServeElastic(config_, trace);
  }
  const Router router(config_.placer);
  const std::vector<int> shard_of = router.Assign(trace);
  const std::vector<Trace> shards = SplitTrace(trace, shard_of, config_.placer.n_gpus);

  // With prefetch on, feed each worker the router's placement prediction so it
  // warms the artifacts it is about to own before their requests arrive (the
  // assignments above are reused, not recomputed).
  std::vector<std::vector<int>> warm_hints;
  if (config_.engine.prefetch.enabled) {
    warm_hints = router.WarmHints(trace, shard_of);
  }

  // Static-path registry: all nodes stay live for the whole run (faults would
  // have dispatched to ServeElastic above), so reads resolve to local or
  // healthy remote fetches — never degraded or unavailable. Workers share the
  // registry const (placement is immutable; liveness never changes here).
  std::unique_ptr<ArtifactRegistry> artifact_registry;
  if (config_.registry.enabled) {
    artifact_registry = std::make_unique<ArtifactRegistry>(
        config_.registry, trace.n_models, config_.placer.n_gpus);
  }

  std::vector<ServeReport> reports(static_cast<size_t>(config_.placer.n_gpus));
  auto run_worker = [&](size_t gpu) {
    EngineConfig worker_config = config_.engine;
    if (!warm_hints.empty()) {
      worker_config.prefetch.warm_hints = warm_hints[gpu];
    }
    if (artifact_registry != nullptr) {
      worker_config.registry = artifact_registry.get();
      worker_config.registry_node = static_cast<int>(gpu);
    }
    std::unique_ptr<ServingEngine> engine =
        config_.vllm_baseline ? MakeVllmScbEngine(worker_config)
                              : MakeDeltaZipEngine(worker_config);
    reports[gpu] = engine->Serve(shards[gpu]);
  };
  if (config_.parallel_workers && reports.size() > 1) {
    ThreadPool::Global().ForEachTask(reports.size(), run_worker);
  } else {
    for (size_t gpu = 0; gpu < reports.size(); ++gpu) {
      run_worker(gpu);
    }
  }
  ClusterReport report =
      BuildClusterReport(name(), config_.placer.policy, std::move(reports));

  // Router-side tracing: one router.place per request (the placement decision,
  // stamped at the request's arrival) and one router.warm_hint per predicted
  // variant home (stamped at t = 0 — hints are computed before serving starts).
  // Recorded through the same TraceRecorder as the workers so flight-recorder
  // ring bounds apply uniformly.
  if (config_.engine.tracing.enabled) {
    TraceRecorder recorder(config_.engine.tracing);
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      const TraceRequest& req = trace.requests[i];
      TraceEvent ev;
      ev.type = TraceEventType::kRouterPlace;
      ev.ts_s = req.arrival_s;
      ev.request_id = req.id;
      ev.model_id = req.model_id;
      ev.tenant_id = req.tenant_id;
      ev.slo = req.slo;
      ev.gpu = shard_of[i];
      recorder.Emit(ev);
    }
    for (size_t gpu = 0; gpu < warm_hints.size(); ++gpu) {
      for (size_t rank = 0; rank < warm_hints[gpu].size(); ++rank) {
        TraceEvent ev;
        ev.type = TraceEventType::kRouterWarmHint;
        ev.ts_s = 0.0;
        ev.model_id = warm_hints[gpu][rank];
        ev.gpu = static_cast<int>(gpu);
        ev.aux = static_cast<int>(rank);
        recorder.Emit(ev);
      }
    }
    report.router_events = recorder.Drain();
  }
  return report;
}

}  // namespace dz
