#include "src/cluster/router.h"

#include <memory>

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace dz {

Router::Router(const PlacerConfig& config) : config_(config) {
  DZ_CHECK_GT(config_.n_gpus, 0);
}

std::vector<int> Router::Assign(const Trace& trace) const {
  return AssignTrace(trace, config_);
}

std::vector<Trace> Router::Split(const Trace& trace) const {
  return SplitTrace(trace, Assign(trace), config_.n_gpus);
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DZ_CHECK_GT(config_.placer.n_gpus, 0);
}

std::string Cluster::name() const {
  const char* engine = config_.vllm_baseline ? "vllm-scb" : "deltazip";
  return std::string(engine) + " x" + std::to_string(config_.placer.n_gpus) + " [" +
         PlacementPolicyName(config_.placer.policy) + "]";
}

ClusterReport Cluster::Serve(const Trace& trace) const {
  trace.CheckWellFormed();
  const Router router(config_.placer);
  const std::vector<Trace> shards = router.Split(trace);

  std::vector<ServeReport> reports(static_cast<size_t>(config_.placer.n_gpus));
  auto run_worker = [&](size_t gpu) {
    std::unique_ptr<ServingEngine> engine =
        config_.vllm_baseline ? MakeVllmScbEngine(config_.engine)
                              : MakeDeltaZipEngine(config_.engine);
    reports[gpu] = engine->Serve(shards[gpu]);
  };
  if (config_.parallel_workers && reports.size() > 1) {
    ThreadPool::Global().ForEachTask(reports.size(), run_worker);
  } else {
    for (size_t gpu = 0; gpu < reports.size(); ++gpu) {
      run_worker(gpu);
    }
  }
  return BuildClusterReport(name(), config_.placer.policy, std::move(reports));
}

}  // namespace dz
