#include "src/cluster/autoscaler.h"

namespace dz {

ScaleDecision ClusterAutoscaler::Decide(const AutoscalerStats& stats) {
  if (!config_.enabled) {
    return ScaleDecision::kHold;
  }
  // Cooldown gate first: no decision, in either direction, inside the quiet
  // period after the previous action.
  if (stats.t - last_action_t_ < config_.cooldown_s) {
    return ScaleDecision::kHold;
  }
  const bool overloaded =
      stats.backlog_per_worker > config_.scale_up_backlog_per_worker ||
      stats.interactive_ttft_p99_s > config_.target_ttft_p99_s;
  if (overloaded && stats.active_workers < config_.max_workers) {
    last_action_t_ = stats.t;
    return ScaleDecision::kUp;
  }
  const bool comfortable =
      stats.backlog_per_worker < config_.scale_down_backlog_per_worker &&
      stats.interactive_ttft_p99_s < 0.5 * config_.target_ttft_p99_s;
  if (comfortable && stats.active_workers > config_.min_workers) {
    last_action_t_ = stats.t;
    return ScaleDecision::kDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace dz
