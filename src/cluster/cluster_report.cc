#include "src/cluster/cluster_report.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace dz {

std::vector<GpuLoadStats> ClusterReport::PerGpuStats() const {
  std::vector<GpuLoadStats> stats;
  stats.reserve(per_gpu.size());
  for (size_t g = 0; g < per_gpu.size(); ++g) {
    const ServeReport& r = per_gpu[g];
    GpuLoadStats s;
    s.gpu = static_cast<int>(g);
    s.requests = r.records.size();
    for (const RequestRecord& rec : r.records) {
      s.output_tokens += rec.output_tokens;
    }
    s.busy_span_s = r.makespan_s;
    s.utilization = merged.makespan_s > 0.0 ? r.makespan_s / merged.makespan_s : 0.0;
    s.total_loads = r.total_loads;
    s.disk_loads = r.disk_loads;
    s.prefetch_issued = r.prefetch_issued;
    s.prefetch_hits = r.prefetch_hits;
    s.prefetch_wasted = r.prefetch_wasted;
    s.stall_hidden_s = r.stall_hidden_s;
    stats.push_back(s);
  }
  return stats;
}

namespace {

double LoadImbalanceOf(const std::vector<GpuLoadStats>& stats) {
  if (stats.empty()) {
    return 0.0;
  }
  double max_tokens = 0.0;
  double total_tokens = 0.0;
  for (const GpuLoadStats& s : stats) {
    max_tokens = std::max(max_tokens, static_cast<double>(s.output_tokens));
    total_tokens += static_cast<double>(s.output_tokens);
  }
  if (total_tokens <= 0.0) {
    return 0.0;
  }
  return max_tokens / (total_tokens / static_cast<double>(stats.size()));
}

double MeanUtilizationOf(const std::vector<GpuLoadStats>& stats) {
  if (stats.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const GpuLoadStats& s : stats) {
    sum += s.utilization;
  }
  return sum / static_cast<double>(stats.size());
}

}  // namespace

double ClusterReport::LoadImbalance() const { return LoadImbalanceOf(PerGpuStats()); }

double ClusterReport::MeanUtilization() const {
  return MeanUtilizationOf(PerGpuStats());
}

// BuildClusterReport merges the per-GPU metrics snapshots into `merged` and
// materializes its scalar fields from them; these accessors just name that
// single source of truth.
int ClusterReport::TotalLoads() const { return merged.total_loads; }

int ClusterReport::TotalDiskLoads() const { return merged.disk_loads; }

int ClusterReport::TotalPrefetchIssued() const { return merged.prefetch_issued; }

int ClusterReport::TotalPrefetchHits() const { return merged.prefetch_hits; }

int ClusterReport::TotalPrefetchWasted() const { return merged.prefetch_wasted; }

double ClusterReport::TotalStallHiddenS() const { return merged.stall_hidden_s; }

std::string ClusterReport::Summary(double slo_e2e_s, double slo_ttft_s) const {
  const std::vector<GpuLoadStats> stats = PerGpuStats();
  Table agg({"metric", "value"});
  agg.AddRow({"cluster", cluster_name});
  agg.AddRow({"policy", PlacementPolicyName(policy)});
  agg.AddRow({"GPUs", std::to_string(n_gpus)});
  agg.AddRow({"requests", std::to_string(completed())});
  agg.AddRow({"makespan (s)", Table::Num(makespan_s(), 1)});
  agg.AddRow({"throughput (req/s)", Table::Num(AggregateThroughputRps(), 3)});
  agg.AddRow({"token throughput (tok/s)", Table::Num(AggregateTokenThroughput(), 1)});
  agg.AddRow({"mean E2E (s)", Table::Num(MeanE2e(), 2)});
  agg.AddRow({"P90 E2E (s)", Table::Num(Percentile(merged.E2es(), 90), 2)});
  agg.AddRow({"mean TTFT (s)", Table::Num(MeanTtft(), 3)});
  agg.AddRow({"SLO attain E2E<=" + Table::Num(slo_e2e_s, 0) + "s",
              Table::Num(SloAttainmentE2e(slo_e2e_s), 3)});
  agg.AddRow({"SLO attain TTFT<=" + Table::Num(slo_ttft_s, 0) + "s",
              Table::Num(SloAttainmentTtft(slo_ttft_s), 3)});
  agg.AddRow({"load imbalance (max/mean)", Table::Num(LoadImbalanceOf(stats), 2)});
  agg.AddRow({"mean GPU utilization", Table::Num(MeanUtilizationOf(stats), 3)});
  agg.AddRow({"artifact loads (PCIe)", std::to_string(TotalLoads())});
  agg.AddRow({"artifact loads (disk)", std::to_string(TotalDiskLoads())});
  if (TotalPrefetchIssued() > 0) {
    agg.AddRow({"prefetch issued/hits/wasted",
                std::to_string(TotalPrefetchIssued()) + "/" +
                    std::to_string(TotalPrefetchHits()) + "/" +
                    std::to_string(TotalPrefetchWasted())});
    agg.AddRow({"stall hidden by prefetch (s)", Table::Num(TotalStallHiddenS(), 1)});
  }
  // Fault/elasticity rows appear only for elastic runs, following the
  // prefetch-row gating above, so static output matches the pre-fault
  // rendering.
  if (elastic.active) {
    agg.AddRow({"offered/completed/shed/failed",
                std::to_string(elastic.offered) + "/" +
                    std::to_string(elastic.completed) + "/" +
                    std::to_string(elastic.shed) + "/" +
                    std::to_string(elastic.failed)});
    agg.AddRow({"re-routed retries", std::to_string(elastic.retried)});
    agg.AddRow({"crashes/recoveries", std::to_string(elastic.crashes) + "/" +
                                          std::to_string(elastic.recoveries)});
    agg.AddRow({"scale ups/downs", std::to_string(elastic.scale_ups) + "/" +
                                       std::to_string(elastic.scale_downs)});
    agg.AddRow({"workers peak/final", std::to_string(elastic.peak_workers) + "/" +
                                          std::to_string(elastic.final_workers)});
    if (elastic.rewarm_loads > 0) {
      agg.AddRow({"re-warm prefetches", std::to_string(elastic.rewarm_loads)});
      agg.AddRow({"re-warm stall hidden (s)", Table::Num(elastic.rewarm_s, 1)});
    }
    // Registry rows only when a registry actually saw action, and the fault
    // plan only when one was injected — registry-off / fault-free elastic
    // output keeps the PR 8 rendering.
    if (elastic.unavailable > 0) {
      agg.AddRow({"unavailable (no live holder)",
                  std::to_string(elastic.unavailable)});
    }
    if (elastic.repair_jobs > 0 || elastic.repair_bytes > 0.0) {
      agg.AddRow({"repair jobs/GB",
                  std::to_string(elastic.repair_jobs) + "/" +
                      Table::Num(elastic.repair_bytes / 1e9, 2)});
    }
    if (!elastic.fault_spec.empty()) {
      agg.AddRow({"fault plan", elastic.fault_spec});
    }
  }
  // Tenant/class rows appear only for multi-tenant traffic or when admission
  // control actually shed something (AppendTenantRows gates internally), so
  // single-tenant output matches the pre-tenant rendering.
  AppendTenantRows(agg, merged);
  // Critical-path attribution rows appear only for traced runs (the gate lives
  // in AppendAttributionRows), so untraced output is unchanged.
  AppendAttributionRows(agg, merged);

  // The per-GPU prefetch column appears only when prefetch actually ran, like
  // the aggregate rows above, so prefetch-off output matches the pre-prefetch
  // rendering.
  const bool show_prefetch = TotalPrefetchIssued() > 0;
  std::vector<std::string> header = {"gpu",  "requests", "out tokens", "busy (s)",
                                     "util", "loads",    "disk"};
  if (show_prefetch) {
    header.push_back("pf hits");
    header.push_back("pf wasted");
  }
  Table per(header);
  for (const GpuLoadStats& s : stats) {
    std::vector<std::string> row = {
        std::to_string(s.gpu),          std::to_string(s.requests),
        std::to_string(s.output_tokens), Table::Num(s.busy_span_s, 1),
        Table::Num(s.utilization, 3),   std::to_string(s.total_loads),
        std::to_string(s.disk_loads)};
    if (show_prefetch) {
      row.push_back(std::to_string(s.prefetch_hits));
      row.push_back(std::to_string(s.prefetch_wasted));
    }
    per.AddRow(row);
  }
  return agg.ToAscii() + "\n" + per.ToAscii();
}

ClusterReport BuildClusterReport(std::string cluster_name, PlacementPolicy policy,
                                 std::vector<ServeReport> per_gpu) {
  DZ_CHECK(!per_gpu.empty());
  ClusterReport report;
  report.cluster_name = std::move(cluster_name);
  report.policy = policy;
  report.n_gpus = static_cast<int>(per_gpu.size());
  report.merged.engine_name = per_gpu.front().engine_name;

  // Merge the per-GPU records by finish time: concatenate in GPU order, then
  // stable-sort, so ties resolve to the lowest GPU index and each worker's
  // finish order is preserved — a single-GPU cluster reproduces its worker's
  // report verbatim.
  report.merged.slo_spec = per_gpu.front().slo_spec;
  size_t total = 0;
  for (const ServeReport& r : per_gpu) {
    total += r.records.size();
    report.merged.makespan_s = std::max(report.merged.makespan_s, r.makespan_s);
    report.merged.n_tenants = std::max(report.merged.n_tenants, r.n_tenants);
    // Snapshot-level merge in GPU order: counters add in the same order the old
    // per-field `+=` loop did, so the materialized scalars below stay
    // bit-identical (golden-enforced); histograms merge bucket-wise.
    report.merged.metrics.MergeFrom(r.metrics);
  }
  report.merged.metrics.sim_time_s = report.merged.makespan_s;
  MaterializeReportFromSnapshot(report.merged);
  report.merged.records.reserve(total);
  for (const ServeReport& r : per_gpu) {
    report.merged.records.insert(report.merged.records.end(), r.records.begin(),
                                 r.records.end());
  }
  std::stable_sort(report.merged.records.begin(), report.merged.records.end(),
                   [](const RequestRecord& a, const RequestRecord& b) {
                     return a.finish_s < b.finish_s;
                   });
  report.per_gpu = std::move(per_gpu);
  // Trace views: each worker ran share-nothing with gpu left -1; stamp the
  // owning GPU now, and fold per-GPU critical-path attributions and ring-drop
  // counts into the merged view in GPU order (deterministic like the snapshot
  // merge above). Events themselves stay per-GPU; MergedTraceEvents() builds
  // the flat stream on demand so merged reports don't double the event memory.
  for (size_t g = 0; g < report.per_gpu.size(); ++g) {
    ServeReport& r = report.per_gpu[g];
    for (TraceEvent& e : r.trace_events) {
      e.gpu = static_cast<int>(g);
    }
    report.merged.trace_events_dropped += r.trace_events_dropped;
    for (int c = 0; c < kNumSloClasses; ++c) {
      report.merged.path_by_class[static_cast<size_t>(c)].Merge(
          r.path_by_class[static_cast<size_t>(c)]);
    }
  }
  return report;
}

std::vector<TraceEvent> ClusterReport::MergedTraceEvents() const {
  std::vector<TraceEvent> out;
  size_t total = router_events.size();
  for (const ServeReport& r : per_gpu) {
    total += r.trace_events.size();
  }
  out.reserve(total);
  out.insert(out.end(), router_events.begin(), router_events.end());
  for (const ServeReport& r : per_gpu) {
    out.insert(out.end(), r.trace_events.begin(), r.trace_events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_s < b.ts_s;
                   });
  return out;
}

}  // namespace dz
