#include "src/cluster/elastic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/registry/registry.h"
#include "src/simgpu/exec_model.h"
#include "src/util/check.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace dz {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lifecycle of one worker slot. Global ids are stable forever; a retired slot
// can be reactivated by a later scale-up (lowest retired id first).
enum class WState {
  kActive,          // serving and routable
  kDeadUndetected,  // crashed, router unaware: routable, NOT serving
  kDeadDetected,    // crashed, router aware. reroute=true: out of the ring,
                    // backlog re-enqueued. reroute=false: keeps its ring arcs,
                    // backlog waits for a recover event.
  kDraining,        // scale-down victim: serving its backlog, not routable
  kRetired,         // removed; may be reactivated by a scale-up
};

struct WorkerSlot {
  int id = 0;
  WState s = WState::kActive;
  double speed = 1.0;        // slow-node throughput factor (1 = healthy)
  bool partitioned = false;  // disk+PCIe blackout; serving but not routable
  // Requests currently homed on this worker and not yet resolved: carried
  // engine-unfinished work plus arrivals routed while it was not serving.
  std::vector<TraceRequest> carry;
  // Scale-down drain bookkeeping.
  double drain_start_t = 0.0;
  double drain_last_finish = -1.0;
  // Node-local cache tier carried between epochs (registry runs only): the
  // artifacts this node held locally at its last epoch end. Survives crashes —
  // it models durable node-local disk, not the process's GPU/host state.
  std::vector<int> cached;
  // Committed results accumulated across this worker's epochs.
  ServeReport acc;
};

bool Serving(const WorkerSlot& w) {
  return w.s == WState::kActive || w.s == WState::kDraining;
}

bool Routable(const WorkerSlot& w, bool reroute) {
  if (w.partitioned) {
    return false;
  }
  return w.s == WState::kActive || w.s == WState::kDeadUndetected ||
         (w.s == WState::kDeadDetected && !reroute);
}

// Result of running one epoch [t0, t1) against a snapshot of the cluster
// state. Pure: computing an attempt mutates nothing, so the autoscaler can
// discard an optimistic run and re-run a shorter prefix (see elastic.h).
struct Attempt {
  Attempt(size_t n_workers, const Placer& placer_copy)
      : reports(n_workers), carry(n_workers), placer(placer_copy) {}

  std::vector<ServeReport> reports;                  // indexed like workers
  std::vector<std::vector<TraceRequest>> carry;      // post-epoch carry
  std::vector<std::pair<TraceRequest, int>> placed;  // routed (request, worker)
  std::vector<TraceRequest> unrouted;  // nobody routable: held for later
  Placer placer;                       // post-routing placer state
  bool routable = false;               // whether `placer` is meaningful
  size_t next_arrival = 0;             // global trace cursor after the epoch
};

// One queued background rebuild of a fragment/replica lost to a crash. FIFO
// byte-metered against each epoch's spare net bandwidth (AdvanceRepairs).
struct RepairJob {
  int artifact = 0;
  int frag = 0;
  int target = 0;     // live node receiving the rebuilt copy
  int dead_node = 0;  // holder whose detected death triggered the job
  double bytes_needed = 0.0;
  double bytes_done = 0.0;
};

struct ElasticRun {
  const ClusterConfig& cfg;
  const Trace& trace;
  std::vector<WorkerSlot> workers;
  std::unique_ptr<Placer> placer;  // routes across the current routable set
  size_t next_arrival = 0;
  std::vector<TraceRequest> retry_pool;  // re-enqueue at the next epoch start
  TraceRecorder recorder;  // cluster-side events (router.*, fault.*, scale.*)
  ElasticStats stats;
  std::vector<double> committed_finishes;  // sorted finish_s of all records
  double max_finish = 0.0;
  // Artifact registry (null unless cfg.registry.enabled). Mutated ONLY between
  // epochs: liveness at boundaries, extra holders after committed repairs —
  // RunEpoch (and any rollback re-run) sees one constant registry state.
  std::unique_ptr<ArtifactRegistry> registry;
  double artifact_bytes = 0.0;    // per-worker artifact payload (repair meter)
  std::vector<RepairJob> repairs;  // FIFO repair queue

  ElasticRun(const ClusterConfig& c, const Trace& t)
      : cfg(c), trace(t), recorder(c.engine.tracing) {}

  std::vector<int> RoutableIds() const {
    std::vector<int> ids;
    for (const WorkerSlot& w : workers) {
      if (Routable(w, cfg.faults.reroute)) {
        ids.push_back(w.id);
      }
    }
    return ids;
  }

  int ActiveCount() const {
    int n = 0;
    for (const WorkerSlot& w : workers) {
      n += w.s == WState::kActive ? 1 : 0;
    }
    return n;
  }

  void EmitCluster(TraceEventType type, double ts, int gpu, double dur = 0.0,
                   int aux = 0) {
    if (!recorder.enabled()) {
      return;
    }
    TraceEvent ev;
    ev.type = type;
    ev.ts_s = ts;
    ev.dur_s = dur;
    ev.gpu = gpu;
    ev.aux = aux;
    recorder.Emit(ev);
  }

  // Rebuilds the placer iff the routable membership changed. Backlogs reset on
  // a rebuild — accepted: a membership change invalidates the old load picture
  // anyway, and ring arcs (the part that matters for affinity) are keyed by
  // global id so they survive (bounded churn). Returns true on a rebuild,
  // which marks the following epoch as a re-warm epoch for the attribution
  // counters.
  bool SyncPlacer() {
    const std::vector<int> ids = RoutableIds();
    if (ids.empty()) {
      placer.reset();
      return false;
    }
    if (placer != nullptr && placer->worker_ids() == ids) {
      return false;
    }
    placer = std::make_unique<Placer>(cfg.placer, ids);
    return true;
  }

  // One epoch [t0, t1) against the current state: route retries + window
  // arrivals, run every serving worker on carry + routed input, collect each
  // engine's unfinished requests as next-epoch carry. Mutates nothing.
  Attempt RunEpoch(double t0, double t1) const {
    Attempt a(workers.size(),
              placer != nullptr ? *placer : Placer(cfg.placer));
    a.routable = placer != nullptr;
    a.next_arrival = next_arrival;
    std::vector<std::vector<TraceRequest>> routed(workers.size());
    auto route = [&](const TraceRequest& req) {
      if (!a.routable) {
        a.unrouted.push_back(req);
        return;
      }
      const int gpu = a.placer.Assign(req);
      routed[static_cast<size_t>(gpu)].push_back(req);
      a.placed.emplace_back(req, gpu);
    };
    for (const TraceRequest& r : retry_pool) {
      route(r);
    }
    while (a.next_arrival < trace.requests.size() &&
           trace.requests[a.next_arrival].arrival_s < t1) {
      route(trace.requests[a.next_arrival++]);
    }

    // Assemble per-worker inputs; non-serving workers just accumulate theirs.
    std::vector<size_t> to_run;
    for (size_t i = 0; i < workers.size(); ++i) {
      const WorkerSlot& w = workers[i];
      std::vector<TraceRequest> input = w.carry;
      input.insert(input.end(), routed[i].begin(), routed[i].end());
      if (!Serving(w) || input.empty()) {
        a.carry[i] = std::move(input);
        continue;
      }
      // Engines require arrival order; re-stamped carry and fresh arrivals
      // interleave.
      std::stable_sort(input.begin(), input.end(),
                       [](const TraceRequest& x, const TraceRequest& y) {
                         return x.arrival_s < y.arrival_s;
                       });
      a.carry[i] = std::move(input);  // replaced by `unfinished` after the run
      to_run.push_back(i);
    }
    auto run_one = [&](size_t k) {
      const size_t i = to_run[k];
      const WorkerSlot& w = workers[i];
      Trace shard;
      shard.requests = a.carry[i];
      shard.n_models = trace.n_models;
      shard.n_tenants = trace.n_tenants;
      shard.duration_s = trace.duration_s;
      EngineConfig ec = cfg.engine;
      ec.start_s = t0;
      ec.halt_s = t1;
      ec.speed_factor = w.speed;
      ec.metrics.interval_s = 0.0;  // per-worker timelines: not in elastic mode
      if (w.partitioned) {
        ChannelOutage disk;
        disk.channel = TraceChannel::kDisk;
        disk.start_s = t0;
        disk.end_s = t1;
        ChannelOutage pcie = disk;
        pcie.channel = TraceChannel::kPcie;
        ChannelOutage net = disk;
        net.channel = TraceChannel::kNet;
        ec.outages.push_back(disk);
        ec.outages.push_back(pcie);
        ec.outages.push_back(net);
      }
      if (registry != nullptr) {
        ec.registry = registry.get();
        ec.registry_node = w.id;
        ec.registry_warm = w.cached;
      }
      if (ec.prefetch.enabled) {
        // Warm hints from this epoch's own input, most-frequent-first — the
        // re-warm path a re-homed tenant's requests ride after a membership
        // change (the router's trace-wide prediction is stale by then).
        std::map<int, int> counts;
        std::vector<int> order;
        for (const TraceRequest& r : shard.requests) {
          if (counts[r.model_id]++ == 0) {
            order.push_back(r.model_id);
          }
        }
        std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
          return counts[x] > counts[y];
        });
        ec.prefetch.warm_hints = order;
      }
      std::unique_ptr<ServingEngine> engine =
          cfg.vllm_baseline ? MakeVllmScbEngine(ec) : MakeDeltaZipEngine(ec);
      a.reports[i] = engine->Serve(shard);
      a.carry[i] = a.reports[i].unfinished;
    };
    if (cfg.parallel_workers && to_run.size() > 1) {
      ThreadPool::Global().ForEachTask(to_run.size(), run_one);
    } else {
      for (size_t k = 0; k < to_run.size(); ++k) {
        run_one(k);
      }
    }
    return a;
  }

  // Applies an epoch's results: accumulate per-worker reports, swap in the
  // new carries, advance the cursors, emit router.place events. `boundary_t`
  // is the committed epoch end (re-stamps unrouted requests so the next
  // epoch's placer sees non-decreasing arrivals).
  void Commit(Attempt& a, double boundary_t, bool rewarm_epoch) {
    for (size_t i = 0; i < workers.size(); ++i) {
      WorkerSlot& w = workers[i];
      ServeReport& r = a.reports[i];
      if (!r.engine_name.empty()) {  // this worker actually ran
        w.acc.records.insert(w.acc.records.end(), r.records.begin(),
                             r.records.end());
        w.acc.metrics.MergeFrom(r.metrics);
        w.acc.makespan_s = std::max(w.acc.makespan_s, r.makespan_s);
        w.acc.trace_events.insert(w.acc.trace_events.end(),
                                  r.trace_events.begin(),
                                  r.trace_events.end());
        w.acc.trace_events_dropped += r.trace_events_dropped;
        for (int c = 0; c < kNumSloClasses; ++c) {
          w.acc.path_by_class[static_cast<size_t>(c)].Merge(
              r.path_by_class[static_cast<size_t>(c)]);
        }
        stats.shed += r.TotalShed();
        if (rewarm_epoch) {
          stats.rewarm_loads += r.prefetch_issued;
          stats.rewarm_s += r.stall_hidden_s;
        }
        // Typed registry unavailability is terminal: engines only fill this on
        // a natural (final-epoch) run — earlier epochs carry parked requests
        // forward as `unfinished` so repairs/recoveries can still save them.
        stats.failed += static_cast<long long>(r.unavailable.size());
        stats.unavailable += static_cast<long long>(r.unavailable.size());
        if (registry != nullptr) {
          w.cached = std::move(r.cached_artifacts);
        }
        for (const RequestRecord& rec : r.records) {
          committed_finishes.push_back(rec.finish_s);
          max_finish = std::max(max_finish, rec.finish_s);
          if (w.s == WState::kDraining) {
            w.drain_last_finish = std::max(w.drain_last_finish, rec.finish_s);
          }
        }
      }
      w.carry = std::move(a.carry[i]);
    }
    std::sort(committed_finishes.begin(), committed_finishes.end());
    if (placer != nullptr && a.routable) {
      *placer = std::move(a.placer);
    }
    next_arrival = a.next_arrival;
    retry_pool.clear();
    for (TraceRequest r : a.unrouted) {
      // Never routed this epoch — every worker was dead or partitioned.
      // Preserve the SLO clock, re-enqueue at the boundary.
      r.first_arrival_s = r.SloArrival();
      if (boundary_t < kInf) {
        r.arrival_s = boundary_t;
      }
      retry_pool.push_back(r);
    }
    if (recorder.enabled()) {
      for (const auto& pr : a.placed) {
        TraceEvent ev;
        ev.type = TraceEventType::kRouterPlace;
        ev.ts_s = pr.first.arrival_s;
        ev.request_id = pr.first.id;
        ev.model_id = pr.first.model_id;
        ev.tenant_id = pr.first.tenant_id;
        ev.slo = pr.first.slo;
        ev.gpu = pr.second;
        recorder.Emit(ev);
      }
    }
  }

  // Retires every draining worker whose backlog is fully served, emitting the
  // drain protocol's completion events (drain start ≤ done ≤ remove — the
  // ordering the autoscaler property test enforces).
  void FinishDrains() {
    for (WorkerSlot& w : workers) {
      if (w.s != WState::kDraining || !w.carry.empty()) {
        continue;
      }
      const double done_t = std::max(w.drain_start_t, w.drain_last_finish);
      EmitCluster(TraceEventType::kScaleDrainDone, done_t, w.id);
      EmitCluster(TraceEventType::kScaleRemove, done_t, w.id);
      w.s = WState::kRetired;
    }
  }

  // Pushes worker liveness into the registry: a node is a usable chunk source
  // iff it is serving and not partitioned. Boundary-only mutation.
  void SyncRegistryLiveness() {
    if (registry == nullptr) {
      return;
    }
    for (const WorkerSlot& w : workers) {
      if (w.id >= registry->n_nodes()) {
        continue;  // late scale-ups hold no fragments; default-live is right
      }
      registry->SetNodeLive(w.id, Serving(w) && !w.partitioned);
    }
  }

  // Queues a rebuild for every fragment the detected-dead node held that is
  // still reconstructible. Target: the best-ranked live node not already
  // holding the fragment. Rebuilding reads one full artifact's worth of bytes
  // either way (a surviving full copy, or any k erasure fragments of B/k).
  void EnqueueRepairs(int dead_id) {
    if (registry == nullptr) {
      return;
    }
    const int frags = registry->config().redundancy.FragmentCount();
    for (int a = 0; a < registry->n_artifacts(); ++a) {
      for (int f = 0; f < frags; ++f) {
        if (!registry->NodeHoldsFragment(a, f, dead_id) ||
            !registry->CanRepair(a, f, dead_id)) {
          continue;
        }
        bool pending = false;
        for (const RepairJob& j : repairs) {
          pending = pending || (j.artifact == a && j.frag == f);
        }
        if (pending) {
          continue;
        }
        int target = -1;
        for (int n : registry->RankedNodes(a)) {
          if (n != dead_id && registry->IsNodeLive(n) &&
              !registry->NodeHoldsFragment(a, f, n)) {
            target = n;
            break;
          }
        }
        if (target < 0) {
          continue;  // every live node already holds it: nothing to rebuild
        }
        RepairJob j;
        j.artifact = a;
        j.frag = f;
        j.target = target;
        j.dead_node = dead_id;
        j.bytes_needed = artifact_bytes;
        repairs.push_back(j);
      }
    }
  }

  // Low-priority background repair: spends the committed epoch's spare net
  // bandwidth (live NIC-seconds minus what foreground remote reads used) on
  // the FIFO queue, byte-metered with partial progress across epochs. A
  // finished rebuild installs its extra holder for subsequent epochs and emits
  // a repair trace event at the epoch boundary (completion times inside the
  // epoch are not resolved — a documented approximation). The final (t1 = inf)
  // epoch meters up to the last committed finish.
  void AdvanceRepairs(double t0, double t1, const Attempt& a) {
    if (registry == nullptr || repairs.empty()) {
      return;
    }
    const double t_end = t1 == kInf ? std::max(t0, max_finish) : t1;
    int live = 0;
    for (const WorkerSlot& w : workers) {
      live += (Serving(w) && !w.partitioned) ? 1 : 0;
    }
    double busy_s = 0.0;
    for (const ServeReport& r : a.reports) {
      busy_s += r.metrics.Value("registry.net.busy_s");
    }
    const double spare_s =
        std::max(0.0, static_cast<double>(live) * (t_end - t0) - busy_s);
    double budget = spare_s * registry->config().net_gbps * 1e9 / 8.0;
    size_t done = 0;
    for (RepairJob& j : repairs) {
      if (budget <= 0.0) {
        break;
      }
      const double take = std::min(budget, j.bytes_needed - j.bytes_done);
      j.bytes_done += take;
      budget -= take;
      stats.repair_bytes += take;
      if (j.bytes_done < j.bytes_needed) {
        break;  // FIFO: only the queue head makes partial progress
      }
      registry->AddHolder(j.artifact, j.frag, j.target);
      ++stats.repair_jobs;
      ++done;
      if (recorder.enabled()) {
        TraceEvent ev;
        ev.type = TraceEventType::kRepair;
        ev.ts_s = t_end;
        ev.gpu = j.target;
        ev.model_id = j.artifact;
        ev.aux = j.frag;
        ev.bytes = j.bytes_needed;
        recorder.Emit(ev);
      }
    }
    repairs.erase(repairs.begin(),
                  repairs.begin() + static_cast<std::ptrdiff_t>(done));
  }

  // Applies every fault event and crash detection due at or before `t0`.
  void ProcessBoundary(double t0, size_t& fault_idx,
                       std::vector<double>& detections,
                       std::vector<int>& detect_worker) {
    const std::vector<FaultEvent>& evs = cfg.faults.events;
    while (fault_idx < evs.size() && evs[fault_idx].t_s <= t0) {
      const FaultEvent& ev = evs[fault_idx++];
      if (ev.worker < 0 || ev.worker >= static_cast<int>(workers.size())) {
        continue;  // plans may address workers the run never created
      }
      WorkerSlot& w = workers[static_cast<size_t>(ev.worker)];
      switch (ev.type) {
        case FaultType::kCrash:
          // Killing a draining victim is legal chaos: the death path wins
          // (no drain-done; its backlog fails or re-routes like any crash).
          if (w.s == WState::kActive || w.s == WState::kDraining) {
            w.s = WState::kDeadUndetected;
            ++stats.crashes;
            EmitCluster(TraceEventType::kFaultCrash, ev.t_s, w.id);
            detections.push_back(ev.t_s + cfg.faults.detection_delay_s);
            detect_worker.push_back(w.id);
          }
          break;
        case FaultType::kRecover:
          if (w.s == WState::kDeadUndetected || w.s == WState::kDeadDetected) {
            w.s = WState::kActive;
            ++stats.recoveries;
            EmitCluster(TraceEventType::kFaultRecover, ev.t_s, w.id);
            // Repair-vs-recovery race: the recovered node still has its chunks
            // (node-local disk survives a process crash), so rebuilds queued
            // against its death are moot — cancel the pending ones. Already
            // completed rebuilds stay: an extra holder is harmless redundancy.
            repairs.erase(
                std::remove_if(repairs.begin(), repairs.end(),
                               [&](const RepairJob& j) {
                                 return j.dead_node == w.id;
                               }),
                repairs.end());
          }
          break;
        case FaultType::kSlowStart: {
          w.speed = ev.multiplier;
          // The window length is known from the matching end event; emit the
          // whole span now so the trace viewer shows the degraded region.
          double end = ev.t_s;
          for (size_t j = fault_idx; j < evs.size(); ++j) {
            if (evs[j].type == FaultType::kSlowEnd &&
                evs[j].worker == ev.worker) {
              end = evs[j].t_s;
              break;
            }
          }
          EmitCluster(TraceEventType::kFaultSlow, ev.t_s, w.id, end - ev.t_s);
          break;
        }
        case FaultType::kSlowEnd:
          w.speed = 1.0;
          break;
        case FaultType::kPartitionStart: {
          w.partitioned = true;
          double end = ev.t_s;
          for (size_t j = fault_idx; j < evs.size(); ++j) {
            if (evs[j].type == FaultType::kPartitionEnd &&
                evs[j].worker == ev.worker) {
              end = evs[j].t_s;
              break;
            }
          }
          EmitCluster(TraceEventType::kFaultPartition, ev.t_s, w.id,
                      end - ev.t_s);
          break;
        }
        case FaultType::kPartitionEnd:
          w.partitioned = false;
          break;
      }
    }
    // Crash detections due now: the router notices the death, and with
    // rerouting the dead worker's whole backlog is re-enqueued across the
    // survivors (SLO clocks keep the original arrivals — re-served requests
    // still answer for their full wait).
    for (size_t d = 0; d < detections.size();) {
      if (detections[d] > t0) {
        ++d;
        continue;
      }
      const int id = detect_worker[d];
      detections.erase(detections.begin() + static_cast<std::ptrdiff_t>(d));
      detect_worker.erase(detect_worker.begin() +
                          static_cast<std::ptrdiff_t>(d));
      WorkerSlot& w = workers[static_cast<size_t>(id)];
      if (w.s != WState::kDeadUndetected) {
        continue;  // recovered before detection: nothing to do
      }
      w.s = WState::kDeadDetected;
      EmitCluster(TraceEventType::kFaultDetect, t0, w.id);
      // Detection is also when repair planning starts: queue rebuilds for the
      // dead node's fragments (partitions never enqueue — the data is intact
      // behind the partition and comes back with it).
      EnqueueRepairs(w.id);
      if (cfg.faults.reroute) {
        EmitCluster(TraceEventType::kRouterReroute, t0, w.id, /*dur=*/0.0,
                    static_cast<int>(w.carry.size()));
        for (TraceRequest r : w.carry) {
          r.first_arrival_s = r.SloArrival();
          r.arrival_s = t0;
          retry_pool.push_back(r);
          ++stats.retried;
        }
        w.carry.clear();
      }
    }
    // Every state change above feeds the registry's source-liveness view
    // before the next epoch runs.
    SyncRegistryLiveness();
  }

  // Autoscaler observation at time t over committed state + the optimistic
  // attempt: offered-but-unfinished backlog per active worker (admission sheds
  // are invisible here — the backlog reads conservatively high on shedding
  // clusters) and the interactive TTFT p99 over the trailing decision window.
  AutoscalerStats ObserveAt(double t, const Attempt& a) const {
    AutoscalerStats s;
    s.t = t;
    s.active_workers = std::max(1, ActiveCount());
    long long arrived = 0;
    for (const TraceRequest& r : trace.requests) {
      if (r.arrival_s > t) {
        break;  // arrival-sorted
      }
      ++arrived;
    }
    long long finished = static_cast<long long>(
        std::upper_bound(committed_finishes.begin(), committed_finishes.end(),
                         t) -
        committed_finishes.begin());
    std::vector<double> ttfts;
    const double window = cfg.autoscale.decision_interval_s;
    auto scan_window = [&](const std::vector<RequestRecord>& recs) {
      for (const RequestRecord& rec : recs) {
        if (rec.slo == SloClass::kInteractive && rec.finish_s <= t &&
            rec.finish_s > t - window) {
          ttfts.push_back(rec.Ttft());
        }
      }
    };
    for (const ServeReport& r : a.reports) {
      for (const RequestRecord& rec : r.records) {
        if (rec.finish_s <= t) {
          ++finished;
        }
      }
      scan_window(r.records);
    }
    for (const WorkerSlot& w : workers) {
      scan_window(w.acc.records);
    }
    const double backlog = static_cast<double>(arrived - finished);
    s.backlog_per_worker =
        std::max(0.0, backlog) / static_cast<double>(s.active_workers);
    s.interactive_ttft_p99_s = ttfts.empty() ? 0.0 : Percentile(ttfts, 99);
    return s;
  }
};

}  // namespace

ClusterReport ServeElastic(const ClusterConfig& cfg, const Trace& trace) {
  DZ_CHECK(cfg.faults.Enabled() || cfg.autoscale.Enabled());
  DZ_CHECK_GT(cfg.placer.n_gpus, 0);
  if (cfg.autoscale.enabled) {
    DZ_CHECK_GE(cfg.autoscale.min_workers, 1);
    DZ_CHECK_GE(cfg.autoscale.max_workers, cfg.autoscale.min_workers);
    DZ_CHECK_GT(cfg.autoscale.decision_interval_s, 0.0);
  }

  ElasticRun run(cfg, trace);
  run.stats.active = true;
  run.stats.offered = static_cast<long long>(trace.requests.size());
  run.workers.resize(static_cast<size_t>(cfg.placer.n_gpus));
  for (size_t i = 0; i < run.workers.size(); ++i) {
    run.workers[i].id = static_cast<int>(i);
  }
  run.stats.peak_workers = run.ActiveCount();
  run.SyncPlacer();  // initial build; not a re-warm epoch
  if (cfg.faults.Enabled()) {
    run.stats.fault_spec = FaultPlanToSpec(cfg.faults);
  }
  if (cfg.registry.enabled) {
    run.registry = std::make_unique<ArtifactRegistry>(
        cfg.registry, trace.n_models, cfg.placer.n_gpus);
    // Per-worker artifact payload, mirroring the engines' own
    // store_config.artifact_bytes computation (repair jobs meter against it).
    const ExecModel exec(cfg.engine.exec);
    const size_t per_gpu =
        cfg.vllm_baseline
            ? exec.BaseWeightBytesPerGpu()
            : (cfg.engine.artifact == ArtifactKind::kLoraAdapter
                   ? exec.LoraBytesPerGpu(cfg.engine.lora_rank)
                   : exec.DeltaBytesPerGpu());
    run.artifact_bytes = static_cast<double>(
        per_gpu * static_cast<size_t>(cfg.engine.exec.tp));
  }

  ClusterAutoscaler autoscaler(cfg.autoscale);
  const double interval = cfg.autoscale.decision_interval_s;
  const double last_arrival =
      trace.requests.empty() ? 0.0 : trace.requests.back().arrival_s;

  size_t fault_idx = 0;
  std::vector<double> detections;
  std::vector<int> detect_worker;
  double t0 = 0.0;
  bool done = false;
  while (!done) {
    run.ProcessBoundary(t0, fault_idx, detections, detect_worker);
    const bool rewarm_epoch = run.SyncPlacer();

    // Next externally scheduled boundary (fault event or crash detection).
    double t_fault = kInf;
    if (fault_idx < cfg.faults.events.size()) {
      t_fault = cfg.faults.events[fault_idx].t_s;
    }
    for (double d : detections) {
      t_fault = std::min(t_fault, d);
    }

    Attempt a = run.RunEpoch(t0, t_fault);
    if (cfg.autoscale.enabled) {
      // Replay the decision rule over the optimistic run. The grid extends
      // past the last activity by one cooldown + interval so trailing
      // scale-downs can chain all the way back to min_workers.
      double attempt_max_finish = run.max_finish;
      for (const ServeReport& r : a.reports) {
        for (const RequestRecord& rec : r.records) {
          attempt_max_finish = std::max(attempt_max_finish, rec.finish_s);
        }
      }
      const double activity = std::max(last_arrival, attempt_max_finish);
      const double bound = std::min(
          t_fault, std::max(activity, autoscaler.last_action_t() +
                                          cfg.autoscale.cooldown_s) +
                       interval);
      double action_t = -1.0;
      ScaleDecision action = ScaleDecision::kHold;
      for (double tk = (std::floor(t0 / interval) + 1.0) * interval;
           tk <= bound; tk += interval) {
        const ScaleDecision d = autoscaler.Decide(run.ObserveAt(tk, a));
        if (d != ScaleDecision::kHold) {
          action = d;
          action_t = tk;
          break;
        }
      }
      if (action != ScaleDecision::kHold) {
        // Roll back: re-run the (deterministic) prefix and commit the action
        // as a new boundary at the decision time.
        a = run.RunEpoch(t0, action_t);
        run.Commit(a, action_t, rewarm_epoch);
        run.FinishDrains();
        run.AdvanceRepairs(t0, action_t, a);
        if (action == ScaleDecision::kUp) {
          WorkerSlot* slot = nullptr;
          for (WorkerSlot& w : run.workers) {  // lowest retired id first
            if (w.s == WState::kRetired) {
              slot = &w;
              break;
            }
          }
          if (slot == nullptr) {
            WorkerSlot fresh;
            fresh.id = static_cast<int>(run.workers.size());
            run.workers.push_back(fresh);
            slot = &run.workers.back();
          }
          slot->s = WState::kActive;
          slot->speed = 1.0;
          slot->partitioned = false;
          ++run.stats.scale_ups;
          run.stats.peak_workers =
              std::max(run.stats.peak_workers, run.ActiveCount());
          run.EmitCluster(TraceEventType::kScaleUp, action_t, slot->id,
                          /*dur=*/0.0, run.ActiveCount());
        } else {
          WorkerSlot* victim = nullptr;  // highest-id active worker
          for (WorkerSlot& w : run.workers) {
            if (w.s == WState::kActive) {
              victim = &w;
            }
          }
          DZ_CHECK(victim != nullptr);
          victim->s = WState::kDraining;
          victim->drain_start_t = action_t;
          victim->drain_last_finish = -1.0;
          ++run.stats.scale_downs;
          run.EmitCluster(TraceEventType::kScaleDown, action_t, victim->id,
                          /*dur=*/0.0, run.ActiveCount());
          run.EmitCluster(TraceEventType::kScaleDrainStart, action_t,
                          victim->id);
        }
        t0 = action_t;
        continue;
      }
    }
    run.Commit(a, t_fault, rewarm_epoch);
    run.FinishDrains();
    run.AdvanceRepairs(t0, t_fault, a);
    if (t_fault == kInf) {
      done = true;
    } else {
      t0 = t_fault;
    }
  }

  // Terminal accounting: whatever is still stranded on never-recovered dead
  // workers (reroute=false) or was unroutable while every worker was down has
  // failed — it will never be served.
  for (WorkerSlot& w : run.workers) {
    if (!Serving(w)) {
      run.stats.failed += static_cast<long long>(w.carry.size());
      w.carry.clear();
    } else {
      // A serving worker's final epoch ran to halt = inf: nothing may remain.
      DZ_CHECK_EQ(w.carry.size(), 0u);
    }
  }
  run.stats.failed += static_cast<long long>(run.retry_pool.size());
  run.retry_pool.clear();
  for (const WorkerSlot& w : run.workers) {
    run.stats.completed += static_cast<long long>(w.acc.records.size());
  }
  run.stats.final_workers = run.ActiveCount();
  DZ_CHECK_EQ(run.stats.completed + run.stats.shed + run.stats.failed,
              run.stats.offered);

  // Assemble the cluster report: per-worker accumulated reports in global-id
  // order (BuildClusterReport stamps gpu = index, which equals the id here).
  const char* engine_name =
      cfg.vllm_baseline
          ? "vllm-scb"
          : (cfg.engine.artifact == ArtifactKind::kLoraAdapter ? "deltazip-lora"
                                                               : "deltazip");
  std::vector<ServeReport> per_gpu;
  per_gpu.reserve(run.workers.size());
  for (WorkerSlot& w : run.workers) {
    w.acc.engine_name = engine_name;
    w.acc.n_tenants = std::max(1, trace.n_tenants);
    w.acc.slo_spec = cfg.engine.scheduler.slo;
    w.acc.metrics.sim_time_s = w.acc.makespan_s;
    MaterializeReportFromSnapshot(w.acc);
    per_gpu.push_back(std::move(w.acc));
  }
  const char* base = cfg.vllm_baseline ? "vllm-scb" : "deltazip";
  const std::string name = std::string(base) + " x" +
                           std::to_string(cfg.placer.n_gpus) + " [" +
                           PlacementPolicyName(cfg.placer.policy) + "]";
  ClusterReport report =
      BuildClusterReport(name, cfg.placer.policy, std::move(per_gpu));
  report.elastic = run.stats;

  // Cluster-level counters join the merged snapshot so the metrics layer
  // (JSONL export, bench gates) sees the fault/elasticity ledger.
  MetricsRegistry cluster_reg;
  cluster_reg.GetCounter("cluster.retried")
      ->Inc(static_cast<double>(run.stats.retried));
  cluster_reg.GetCounter("cluster.failed")
      ->Inc(static_cast<double>(run.stats.failed));
  cluster_reg.GetCounter("cluster.crashes")
      ->Inc(static_cast<double>(run.stats.crashes));
  cluster_reg.GetCounter("cluster.recoveries")
      ->Inc(static_cast<double>(run.stats.recoveries));
  cluster_reg.GetCounter("cluster.scale_ups")
      ->Inc(static_cast<double>(run.stats.scale_ups));
  cluster_reg.GetCounter("cluster.scale_downs")
      ->Inc(static_cast<double>(run.stats.scale_downs));
  cluster_reg.GetCounter("cluster.rewarm.loads")
      ->Inc(static_cast<double>(run.stats.rewarm_loads));
  cluster_reg.GetCounter("cluster.rewarm.stall_hidden_s")
      ->Inc(run.stats.rewarm_s);
  // Registry-run-only keys: a registry-off elastic snapshot keeps the PR 8
  // key set exactly.
  if (run.registry != nullptr) {
    cluster_reg.GetCounter("cluster.unavailable")
        ->Inc(static_cast<double>(run.stats.unavailable));
    cluster_reg.GetCounter("registry.repair.jobs")
        ->Inc(static_cast<double>(run.stats.repair_jobs));
    cluster_reg.GetCounter("registry.repair.bytes")->Inc(run.stats.repair_bytes);
  }
  report.merged.metrics.MergeFrom(
      cluster_reg.Snapshot(report.merged.makespan_s));

  if (run.recorder.enabled()) {
    report.router_events = run.recorder.Drain();
  }
  return report;
}

}  // namespace dz
