#include "src/cluster/placement.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace dz {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstanding:
      return "least-outstanding";
    case PlacementPolicy::kDeltaAffinity:
      return "delta-affinity";
    case PlacementPolicy::kTenantAffinity:
      return "tenant-affinity";
  }
  return "?";
}

bool ParsePlacementPolicy(const std::string& name, PlacementPolicy& out) {
  for (PlacementPolicy p :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastOutstanding,
        PlacementPolicy::kDeltaAffinity, PlacementPolicy::kTenantAffinity}) {
    if (name == PlacementPolicyName(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

namespace {

// SplitMix64 — cheap, well-mixed 64-bit hash; the standard choice for seeding
// and consistent-hash rings.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Placer::Placer(const PlacerConfig& config)
    : config_(config), backlog_(static_cast<size_t>(config.n_gpus), 0.0) {
  DZ_CHECK_GT(config_.n_gpus, 0);
  DZ_CHECK_GE(config_.drain_tokens_per_s, 0.0);
  if (config_.policy == PlacementPolicy::kDeltaAffinity ||
      config_.policy == PlacementPolicy::kTenantAffinity) {
    DZ_CHECK_GT(config_.virtual_nodes, 0);
    DZ_CHECK_GE(config_.bounded_load_factor, 1.0);
    ring_.reserve(static_cast<size_t>(config_.n_gpus) *
                  static_cast<size_t>(config_.virtual_nodes));
    for (int gpu = 0; gpu < config_.n_gpus; ++gpu) {
      for (int v = 0; v < config_.virtual_nodes; ++v) {
        const uint64_t point = SplitMix64(
            config_.hash_seed ^
            (static_cast<uint64_t>(gpu) * 0x10001ULL + static_cast<uint64_t>(v) + 1));
        ring_.push_back({point, gpu});
      }
    }
    std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
      return a.hash != b.hash ? a.hash < b.hash : a.gpu < b.gpu;
    });
  }
}

void Placer::DrainBacklogs(double now) {
  DZ_CHECK_GE(now, last_now_);
  const double drained = (now - last_now_) * config_.drain_tokens_per_s;
  if (drained > 0.0) {
    for (double& b : backlog_) {
      b = std::max(0.0, b - drained);
    }
  }
  last_now_ = now;
}

size_t Placer::RingHomeOfKey(uint64_t salted_key) const {
  // Home position: the first ring point at or after the key's hash.
  const uint64_t h = SplitMix64(config_.hash_seed ^ salted_key);
  size_t idx = std::lower_bound(ring_.begin(), ring_.end(), h,
                                [](const RingPoint& p, uint64_t key) {
                                  return p.hash < key;
                                }) -
               ring_.begin();
  if (idx == ring_.size()) {
    idx = 0;  // wrap
  }
  return idx;
}

size_t Placer::RingHome(int model_id) const {
  return RingHomeOfKey(0xD000000000000000ULL | static_cast<uint64_t>(model_id));
}

size_t Placer::RingHomeTenant(int tenant_id) const {
  // Distinct salt from the variant keyspace, so tenant t and variant t never
  // collide on the same ring position.
  return RingHomeOfKey(0xA000000000000000ULL | static_cast<uint64_t>(tenant_id));
}

int Placer::HomeGpu(int model_id) const {
  DZ_CHECK(config_.policy == PlacementPolicy::kDeltaAffinity);
  return ring_[RingHome(model_id)].gpu;
}

int Placer::HomeGpuForTenant(int tenant_id) const {
  DZ_CHECK(config_.policy == PlacementPolicy::kTenantAffinity);
  return ring_[RingHomeTenant(tenant_id)].gpu;
}

int Placer::AssignAffinity(size_t idx, double cost) {
  // Bounded load: walk the ring until a GPU whose *existing* backlog is under
  // c × cluster-mean (mean includes the new request, so the least-loaded GPU
  // always qualifies and an idle cluster never spills).
  double total = cost;
  for (double b : backlog_) {
    total += b;
  }
  const double bound =
      config_.bounded_load_factor * total / static_cast<double>(config_.n_gpus);
  int tried = 0;
  std::vector<bool> seen(static_cast<size_t>(config_.n_gpus), false);
  for (size_t step = 0; step < ring_.size() && tried < config_.n_gpus; ++step) {
    const int gpu = ring_[(idx + step) % ring_.size()].gpu;
    if (seen[static_cast<size_t>(gpu)]) {
      continue;
    }
    seen[static_cast<size_t>(gpu)] = true;
    ++tried;
    if (backlog_[static_cast<size_t>(gpu)] <= bound) {
      return gpu;
    }
  }
  // Unreachable in practice (the argmin backlog is always ≤ mean ≤ bound), but
  // keep a deterministic fallback rather than an invariant crash.
  return static_cast<int>(std::min_element(backlog_.begin(), backlog_.end()) -
                          backlog_.begin());
}

int Placer::Assign(const TraceRequest& req) {
  DrainBacklogs(req.arrival_s);
  const double cost = static_cast<double>(req.prompt_tokens + req.output_tokens);
  int gpu = 0;
  switch (config_.policy) {
    case PlacementPolicy::kRoundRobin:
      gpu = rr_next_;
      rr_next_ = (rr_next_ + 1) % config_.n_gpus;
      break;
    case PlacementPolicy::kLeastOutstanding:
      gpu = static_cast<int>(std::min_element(backlog_.begin(), backlog_.end()) -
                             backlog_.begin());
      break;
    case PlacementPolicy::kDeltaAffinity:
      gpu = AssignAffinity(RingHome(req.model_id), cost);
      break;
    case PlacementPolicy::kTenantAffinity:
      gpu = AssignAffinity(RingHomeTenant(req.tenant_id), cost);
      break;
  }
  backlog_[static_cast<size_t>(gpu)] += cost;
  return gpu;
}

std::vector<int> AssignTrace(const Trace& trace, const PlacerConfig& config) {
  DZ_CHECK(trace.IsArrivalSorted());
  Placer placer(config);
  std::vector<int> shard_of;
  shard_of.reserve(trace.requests.size());
  for (const TraceRequest& req : trace.requests) {
    shard_of.push_back(placer.Assign(req));
  }
  return shard_of;
}

}  // namespace dz
