#include "src/cluster/placement.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace dz {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstanding:
      return "least-outstanding";
    case PlacementPolicy::kDeltaAffinity:
      return "delta-affinity";
    case PlacementPolicy::kTenantAffinity:
      return "tenant-affinity";
  }
  return "?";
}

bool ParsePlacementPolicy(const std::string& name, PlacementPolicy& out) {
  for (PlacementPolicy p :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastOutstanding,
        PlacementPolicy::kDeltaAffinity, PlacementPolicy::kTenantAffinity}) {
    if (name == PlacementPolicyName(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

namespace {

// SplitMix64 — cheap, well-mixed 64-bit hash; the standard choice for seeding
// and consistent-hash rings.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace {

std::vector<int> IotaIds(int n) {
  std::vector<int> ids(static_cast<size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = i;
  }
  return ids;
}

}  // namespace

Placer::Placer(const PlacerConfig& config)
    : Placer(config, IotaIds(config.n_gpus)) {}

Placer::Placer(const PlacerConfig& config, const std::vector<int>& worker_ids)
    : config_(config), ids_(worker_ids), backlog_(worker_ids.size(), 0.0) {
  DZ_CHECK_GT(ids_.size(), 0u);
  DZ_CHECK_GE(ids_.front(), 0);
  for (size_t i = 1; i < ids_.size(); ++i) {
    DZ_CHECK_GT(ids_[i], ids_[i - 1]);  // strictly ascending → slots well-defined
  }
  DZ_CHECK_GE(config_.drain_tokens_per_s, 0.0);
  if (config_.policy == PlacementPolicy::kDeltaAffinity ||
      config_.policy == PlacementPolicy::kTenantAffinity) {
    DZ_CHECK_GT(config_.virtual_nodes, 0);
    DZ_CHECK_GE(config_.bounded_load_factor, 1.0);
    ring_.reserve(ids_.size() * static_cast<size_t>(config_.virtual_nodes));
    // Ring points hash the GLOBAL worker id: a worker contributes the same
    // virtual nodes whatever the rest of the membership, so adding/removing a
    // worker only moves the keys that hashed to its arcs (bounded churn), and
    // ids {0..n-1} reproduce the static ring bit-for-bit.
    for (int gpu : ids_) {
      for (int v = 0; v < config_.virtual_nodes; ++v) {
        const uint64_t point = SplitMix64(
            config_.hash_seed ^
            (static_cast<uint64_t>(gpu) * 0x10001ULL + static_cast<uint64_t>(v) + 1));
        ring_.push_back({point, gpu});
      }
    }
    std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
      return a.hash != b.hash ? a.hash < b.hash : a.gpu < b.gpu;
    });
  }
}

size_t Placer::SlotOf(int gpu) const {
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == gpu) {
      return i;
    }
  }
  DZ_CHECK(false);  // ring/backlog only ever hold known members
  return 0;
}

void Placer::DrainBacklogs(double now) {
  DZ_CHECK_GE(now, last_now_);
  const double drained = (now - last_now_) * config_.drain_tokens_per_s;
  if (drained > 0.0) {
    for (double& b : backlog_) {
      b = std::max(0.0, b - drained);
    }
  }
  last_now_ = now;
}

size_t Placer::RingHomeOfKey(uint64_t salted_key) const {
  // Home position: the first ring point at or after the key's hash.
  const uint64_t h = SplitMix64(config_.hash_seed ^ salted_key);
  size_t idx = std::lower_bound(ring_.begin(), ring_.end(), h,
                                [](const RingPoint& p, uint64_t key) {
                                  return p.hash < key;
                                }) -
               ring_.begin();
  if (idx == ring_.size()) {
    idx = 0;  // wrap
  }
  return idx;
}

size_t Placer::RingHome(int model_id) const {
  return RingHomeOfKey(0xD000000000000000ULL | static_cast<uint64_t>(model_id));
}

size_t Placer::RingHomeTenant(int tenant_id) const {
  // Distinct salt from the variant keyspace, so tenant t and variant t never
  // collide on the same ring position.
  return RingHomeOfKey(0xA000000000000000ULL | static_cast<uint64_t>(tenant_id));
}

int Placer::HomeGpu(int model_id) const {
  DZ_CHECK(config_.policy == PlacementPolicy::kDeltaAffinity);
  return ring_[RingHome(model_id)].gpu;
}

int Placer::HomeGpuForTenant(int tenant_id) const {
  DZ_CHECK(config_.policy == PlacementPolicy::kTenantAffinity);
  return ring_[RingHomeTenant(tenant_id)].gpu;
}

int Placer::AssignAffinity(size_t idx, double cost) {
  // Bounded load: walk the ring until a GPU whose *existing* backlog is under
  // c × cluster-mean (mean includes the new request, so the least-loaded GPU
  // always qualifies and an idle cluster never spills).
  const int n = static_cast<int>(ids_.size());
  double total = cost;
  for (double b : backlog_) {
    total += b;
  }
  const double bound = config_.bounded_load_factor * total / static_cast<double>(n);
  int tried = 0;
  std::vector<bool> seen(ids_.size(), false);
  for (size_t step = 0; step < ring_.size() && tried < n; ++step) {
    const int gpu = ring_[(idx + step) % ring_.size()].gpu;
    const size_t slot = SlotOf(gpu);
    if (seen[slot]) {
      continue;
    }
    seen[slot] = true;
    ++tried;
    if (backlog_[slot] <= bound) {
      return gpu;
    }
  }
  // Unreachable in practice (the argmin backlog is always ≤ mean ≤ bound), but
  // keep a deterministic fallback rather than an invariant crash.
  return ids_[static_cast<size_t>(
      std::min_element(backlog_.begin(), backlog_.end()) - backlog_.begin())];
}

int Placer::Assign(const TraceRequest& req) {
  DrainBacklogs(req.arrival_s);
  const double cost = static_cast<double>(req.prompt_tokens + req.output_tokens);
  int gpu = 0;
  switch (config_.policy) {
    case PlacementPolicy::kRoundRobin:
      gpu = ids_[static_cast<size_t>(rr_next_)];
      rr_next_ = (rr_next_ + 1) % static_cast<int>(ids_.size());
      break;
    case PlacementPolicy::kLeastOutstanding:
      // Slot order is ascending-id order, so ties pick the lowest worker id —
      // the static behavior, independent of membership history.
      gpu = ids_[static_cast<size_t>(
          std::min_element(backlog_.begin(), backlog_.end()) - backlog_.begin())];
      break;
    case PlacementPolicy::kDeltaAffinity:
      gpu = AssignAffinity(RingHome(req.model_id), cost);
      break;
    case PlacementPolicy::kTenantAffinity:
      gpu = AssignAffinity(RingHomeTenant(req.tenant_id), cost);
      break;
  }
  backlog_[SlotOf(gpu)] += cost;
  return gpu;
}

std::vector<int> AssignTrace(const Trace& trace, const PlacerConfig& config) {
  DZ_CHECK(trace.IsArrivalSorted());
  Placer placer(config);
  std::vector<int> shard_of;
  shard_of.reserve(trace.requests.size());
  for (const TraceRequest& req : trace.requests) {
    shard_of.push_back(placer.Assign(req));
  }
  return shard_of;
}

}  // namespace dz
