#include "src/cluster/fault_model.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace dz {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kRecover:
      return "recover";
    case FaultType::kSlowStart:
      return "slow.start";
    case FaultType::kSlowEnd:
      return "slow.end";
    case FaultType::kPartitionStart:
      return "part.start";
    case FaultType::kPartitionEnd:
      return "part.end";
  }
  return "?";
}

namespace {

// Parses a strictly formatted non-negative double, advancing `pos` past it.
bool ParseNum(const std::string& s, size_t& pos, double& out) {
  size_t end = pos;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '.')) {
    ++end;
  }
  if (end == pos) {
    return false;
  }
  out = std::atof(s.substr(pos, end - pos).c_str());
  pos = end;
  return true;
}

// One spec token, e.g. "crash@30:w2" or "slow@10-50:w1x0.5".
bool ParseToken(const std::string& tok, FaultPlan& plan) {
  if (tok.rfind("detect=", 0) == 0) {
    size_t pos = 7;
    double v = 0.0;
    if (!ParseNum(tok, pos, v) || pos != tok.size()) {
      return false;
    }
    plan.detection_delay_s = v;
    return true;
  }
  if (tok == "reroute=0" || tok == "reroute=1") {
    plan.reroute = tok.back() == '1';
    return true;
  }
  const size_t at = tok.find('@');
  if (at == std::string::npos) {
    return false;
  }
  const std::string kind = tok.substr(0, at);
  size_t pos = at + 1;
  double t1 = 0.0;
  if (!ParseNum(tok, pos, t1)) {
    return false;
  }
  double t2 = t1;
  const bool window = pos < tok.size() && tok[pos] == '-';
  if (window) {
    ++pos;
    if (!ParseNum(tok, pos, t2) || t2 <= t1) {
      return false;
    }
  }
  if (pos + 1 >= tok.size() || tok[pos] != ':' || tok[pos + 1] != 'w') {
    return false;
  }
  pos += 2;
  double worker_num = 0.0;
  if (!ParseNum(tok, pos, worker_num)) {
    return false;
  }
  const int worker = static_cast<int>(worker_num);
  double mult = 1.0;
  if (pos < tok.size() && tok[pos] == 'x') {
    ++pos;
    if (!ParseNum(tok, pos, mult) || mult <= 0.0 || mult > 1.0) {
      return false;
    }
  }
  if (pos != tok.size()) {
    return false;
  }
  if (kind == "crash" && !window) {
    plan.events.push_back({t1, FaultType::kCrash, worker, 1.0});
  } else if (kind == "recover" && !window) {
    plan.events.push_back({t1, FaultType::kRecover, worker, 1.0});
  } else if (kind == "slow" && window) {
    plan.events.push_back({t1, FaultType::kSlowStart, worker, mult});
    plan.events.push_back({t2, FaultType::kSlowEnd, worker, 1.0});
  } else if (kind == "part" && window) {
    plan.events.push_back({t1, FaultType::kPartitionStart, worker, 1.0});
    plan.events.push_back({t2, FaultType::kPartitionEnd, worker, 1.0});
  } else {
    return false;
  }
  return true;
}

// Plain decimal (ParseNum accepts only digits and '.', never exponents),
// trailing zeros trimmed so "30.000000000" prints as the "30" a user wrote.
std::string FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') {
    s.pop_back();
  }
  if (!s.empty() && s.back() == '.') {
    s.pop_back();
  }
  return s.empty() ? "0" : s;
}

}  // namespace

bool ParseFaultPlan(const std::string& spec, FaultPlan& out) {
  FaultPlan plan;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string tok = spec.substr(start, comma - start);
    if (!tok.empty() && !ParseToken(tok, plan)) {
      return false;
    }
    start = comma + 1;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
  out = std::move(plan);
  return true;
}

std::string FaultPlanToSpec(const FaultPlan& plan) {
  std::string spec;
  const auto append = [&spec](const std::string& tok) {
    if (!spec.empty()) {
      spec += ',';
    }
    spec += tok;
  };
  // Pair each window-start with the first unconsumed matching end for the same
  // worker (events are time-sorted, so this undoes ParseFaultPlan's expansion).
  std::vector<char> consumed(plan.events.size(), 0);
  for (size_t i = 0; i < plan.events.size(); ++i) {
    if (consumed[i]) {
      continue;
    }
    const FaultEvent& ev = plan.events[i];
    if (ev.type == FaultType::kCrash) {
      append("crash@" + FormatNum(ev.t_s) + ":w" + std::to_string(ev.worker));
    } else if (ev.type == FaultType::kRecover) {
      append("recover@" + FormatNum(ev.t_s) + ":w" + std::to_string(ev.worker));
    } else if (ev.type == FaultType::kSlowStart ||
               ev.type == FaultType::kPartitionStart) {
      const FaultType end_type = ev.type == FaultType::kSlowStart
                                     ? FaultType::kSlowEnd
                                     : FaultType::kPartitionEnd;
      size_t j = i + 1;
      while (j < plan.events.size() &&
             !(consumed[j] == 0 && plan.events[j].type == end_type &&
               plan.events[j].worker == ev.worker)) {
        ++j;
      }
      if (j == plan.events.size()) {
        continue;  // unmatched start: not representable in the grammar
      }
      consumed[j] = 1;
      std::string tok = (ev.type == FaultType::kSlowStart ? "slow@" : "part@");
      tok += FormatNum(ev.t_s) + "-" + FormatNum(plan.events[j].t_s) + ":w" +
             std::to_string(ev.worker);
      if (ev.type == FaultType::kSlowStart) {
        tok += "x" + FormatNum(ev.multiplier);
      }
      append(tok);
    }
    // Bare kSlowEnd/kPartitionEnd events (unmatched) are unrepresentable and
    // dropped; ParseFaultPlan never produces them.
  }
  append("detect=" + FormatNum(plan.detection_delay_s));
  if (!plan.reroute) {
    append("reroute=0");
  }
  return spec;
}

FaultPlan RandomFaultPlan(uint64_t seed, int n_workers, double duration_s,
                          int n_events) {
  DZ_CHECK_GT(n_workers, 0);
  DZ_CHECK_GT(duration_s, 0.0);
  Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < n_events; ++i) {
    FaultEvent ev;
    ev.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n_workers)));
    // Leave the tail of the run fault-free so late faults cannot strand work
    // past the last arrival forever (recoveries land within the duration too).
    ev.t_s = rng.Uniform(0.05, 0.7) * duration_s;
    const double kind = rng.NextDouble();
    if (kind < 0.4) {
      ev.type = FaultType::kCrash;
      plan.events.push_back(ev);
      if (rng.NextDouble() < 0.5) {
        FaultEvent rec = ev;
        rec.type = FaultType::kRecover;
        rec.t_s = ev.t_s + rng.Uniform(0.05, 0.2) * duration_s;
        plan.events.push_back(rec);
      }
    } else if (kind < 0.7) {
      ev.type = FaultType::kSlowStart;
      ev.multiplier = rng.Uniform(0.25, 0.75);
      plan.events.push_back(ev);
      FaultEvent end = ev;
      end.type = FaultType::kSlowEnd;
      end.multiplier = 1.0;
      end.t_s = ev.t_s + rng.Uniform(0.05, 0.25) * duration_s;
      plan.events.push_back(end);
    } else {
      ev.type = FaultType::kPartitionStart;
      plan.events.push_back(ev);
      FaultEvent end = ev;
      end.type = FaultType::kPartitionEnd;
      end.t_s = ev.t_s + rng.Uniform(0.02, 0.15) * duration_s;
      plan.events.push_back(end);
    }
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return plan;
}

}  // namespace dz
