#include "src/cluster/fault_model.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace dz {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kRecover:
      return "recover";
    case FaultType::kSlowStart:
      return "slow.start";
    case FaultType::kSlowEnd:
      return "slow.end";
    case FaultType::kPartitionStart:
      return "part.start";
    case FaultType::kPartitionEnd:
      return "part.end";
  }
  return "?";
}

namespace {

// Parses a strictly formatted non-negative double, advancing `pos` past it.
bool ParseNum(const std::string& s, size_t& pos, double& out) {
  size_t end = pos;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '.')) {
    ++end;
  }
  if (end == pos) {
    return false;
  }
  out = std::atof(s.substr(pos, end - pos).c_str());
  pos = end;
  return true;
}

// One spec token, e.g. "crash@30:w2" or "slow@10-50:w1x0.5".
bool ParseToken(const std::string& tok, FaultPlan& plan) {
  if (tok.rfind("detect=", 0) == 0) {
    size_t pos = 7;
    double v = 0.0;
    if (!ParseNum(tok, pos, v) || pos != tok.size()) {
      return false;
    }
    plan.detection_delay_s = v;
    return true;
  }
  if (tok == "reroute=0" || tok == "reroute=1") {
    plan.reroute = tok.back() == '1';
    return true;
  }
  const size_t at = tok.find('@');
  if (at == std::string::npos) {
    return false;
  }
  const std::string kind = tok.substr(0, at);
  size_t pos = at + 1;
  double t1 = 0.0;
  if (!ParseNum(tok, pos, t1)) {
    return false;
  }
  double t2 = t1;
  const bool window = pos < tok.size() && tok[pos] == '-';
  if (window) {
    ++pos;
    if (!ParseNum(tok, pos, t2) || t2 <= t1) {
      return false;
    }
  }
  if (pos + 1 >= tok.size() || tok[pos] != ':' || tok[pos + 1] != 'w') {
    return false;
  }
  pos += 2;
  double worker_num = 0.0;
  if (!ParseNum(tok, pos, worker_num)) {
    return false;
  }
  const int worker = static_cast<int>(worker_num);
  double mult = 1.0;
  if (pos < tok.size() && tok[pos] == 'x') {
    ++pos;
    if (!ParseNum(tok, pos, mult) || mult <= 0.0 || mult > 1.0) {
      return false;
    }
  }
  if (pos != tok.size()) {
    return false;
  }
  if (kind == "crash" && !window) {
    plan.events.push_back({t1, FaultType::kCrash, worker, 1.0});
  } else if (kind == "recover" && !window) {
    plan.events.push_back({t1, FaultType::kRecover, worker, 1.0});
  } else if (kind == "slow" && window) {
    plan.events.push_back({t1, FaultType::kSlowStart, worker, mult});
    plan.events.push_back({t2, FaultType::kSlowEnd, worker, 1.0});
  } else if (kind == "part" && window) {
    plan.events.push_back({t1, FaultType::kPartitionStart, worker, 1.0});
    plan.events.push_back({t2, FaultType::kPartitionEnd, worker, 1.0});
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool ParseFaultPlan(const std::string& spec, FaultPlan& out) {
  FaultPlan plan;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string tok = spec.substr(start, comma - start);
    if (!tok.empty() && !ParseToken(tok, plan)) {
      return false;
    }
    start = comma + 1;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
  out = std::move(plan);
  return true;
}

FaultPlan RandomFaultPlan(uint64_t seed, int n_workers, double duration_s,
                          int n_events) {
  DZ_CHECK_GT(n_workers, 0);
  DZ_CHECK_GT(duration_s, 0.0);
  Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < n_events; ++i) {
    FaultEvent ev;
    ev.worker = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n_workers)));
    // Leave the tail of the run fault-free so late faults cannot strand work
    // past the last arrival forever (recoveries land within the duration too).
    ev.t_s = rng.Uniform(0.05, 0.7) * duration_s;
    const double kind = rng.NextDouble();
    if (kind < 0.4) {
      ev.type = FaultType::kCrash;
      plan.events.push_back(ev);
      if (rng.NextDouble() < 0.5) {
        FaultEvent rec = ev;
        rec.type = FaultType::kRecover;
        rec.t_s = ev.t_s + rng.Uniform(0.05, 0.2) * duration_s;
        plan.events.push_back(rec);
      }
    } else if (kind < 0.7) {
      ev.type = FaultType::kSlowStart;
      ev.multiplier = rng.Uniform(0.25, 0.75);
      plan.events.push_back(ev);
      FaultEvent end = ev;
      end.type = FaultType::kSlowEnd;
      end.multiplier = 1.0;
      end.t_s = ev.t_s + rng.Uniform(0.05, 0.25) * duration_s;
      plan.events.push_back(end);
    } else {
      ev.type = FaultType::kPartitionStart;
      plan.events.push_back(ev);
      FaultEvent end = ev;
      end.type = FaultType::kPartitionEnd;
      end.t_s = ev.t_s + rng.Uniform(0.02, 0.15) * duration_s;
      plan.events.push_back(end);
    }
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return plan;
}

}  // namespace dz
