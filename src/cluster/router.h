// Multi-GPU cluster serving simulator (paper §5.4 "Scalability" scaled out).
//
// A Router splits one incoming Trace across n_gpus worker engines under a
// pluggable placement policy; each worker replays its shard on the global clock
// with its own ServingEngine (DeltaZipEngine or VllmScbEngine) and its own
// ArtifactStore, and the per-GPU ServeReports merge into a ClusterReport.
// Workers are independent simulations, so the cluster result is deterministic
// regardless of how many threads run them.
#ifndef SRC_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_ROUTER_H_

#include <string>
#include <vector>

#include "src/cluster/autoscaler.h"
#include "src/cluster/cluster_report.h"
#include "src/cluster/fault_model.h"
#include "src/cluster/placement.h"
#include "src/registry/registry.h"
#include "src/serving/engine.h"
#include "src/workload/trace.h"

namespace dz {

// Stateless request router: assigns/shards a trace across n_gpus workers under
// the configured placement policy and predicts per-worker tenants for prefetch.
class Router {
 public:
  explicit Router(const PlacerConfig& config);

  // Per-request GPU assignments for the trace (arrival order, online policy state).
  std::vector<int> Assign(const Trace& trace) const;
  // Assigns and shards in one step: result[g] is GPU g's sub-trace, with ids and
  // absolute arrival times preserved.
  std::vector<Trace> Split(const Trace& trace) const;
  // Placement-aware prefetch hints: hints[g] lists the variant ids the router
  // predicts GPU g will serve, most-likely-first, for the workers' artifact
  // warm-up (PrefetchConfig::warm_hints). Delta-affinity predicts from the
  // consistent-hash ring homes (where each variant lands absent backlog spill);
  // the other policies fall back to each shard's variants in first-appearance
  // order. Purely advisory — routing itself is unchanged.
  std::vector<std::vector<int>> WarmHints(const Trace& trace) const;
  // Same, reusing per-request assignments already computed via Assign(trace)
  // (required — and checked — for the non-affinity policies; ignored under
  // delta-affinity, where the ring alone decides).
  std::vector<std::vector<int>> WarmHints(const Trace& trace,
                                          const std::vector<int>& shard_of) const;

  const PlacerConfig& config() const { return config_; }

 private:
  PlacerConfig config_;
};

struct ClusterConfig {
  // Cluster size, policy, and placement knobs (placer.n_gpus is the worker count).
  PlacerConfig placer;
  // Per-worker engine configuration. `engine.exec.tp` is the model-parallel
  // degree *within* one worker (paper Fig. 18); placer.n_gpus counts workers, so
  // the hardware total is n_gpus × tp GPUs. When `engine.prefetch.enabled`, the
  // cluster overwrites each worker's `prefetch.warm_hints` with the router's
  // placement prediction (Router::WarmHints).
  EngineConfig engine;
  bool vllm_baseline = false;    // use the vLLM+SCB engine instead of DeltaZip
  bool parallel_workers = true;  // simulate workers on the global thread pool
  // Fault injection and elastic autoscaling (src/cluster/elastic.cc). Both off
  // by default, which keeps Serve() on the static path below — byte-identical
  // behavior to the pre-fault cluster (golden-enforced).
  FaultPlan faults;
  AutoscalerConfig autoscale;
  // Cluster-shared artifact registry (src/registry/): when enabled, artifact
  // bytes live as replicated / erasure-coded chunks across the worker nodes
  // and every worker's ArtifactStore sources non-local artifacts over the net
  // channel (degraded reads under faults, background repair in elastic runs).
  // Off by default: no registry is constructed and every worker keeps its
  // infinite-local-disk store — bit-identical output (golden-enforced).
  RegistryConfig registry;
};

// Runs a trace through Router + per-worker ServingEngines and merges reports.

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  // Routes the trace, runs every worker engine on its shard, merges the reports.
  ClusterReport Serve(const Trace& trace) const;

  // e.g. "deltazip x4 [delta-affinity]".
  std::string name() const;

 private:
  ClusterConfig config_;
};

}  // namespace dz

#endif  // SRC_CLUSTER_ROUTER_H_
