// Request → GPU placement policies for the cluster router (paper §5.4
// "Scalability": serving many variants behind one endpoint means deciding which
// replica owns which delta).
//
// Three policies, in increasing awareness of the delta-swap cost the paper
// measures:
//   * kRoundRobin        — oblivious cycling; every GPU ends up serving every
//                          variant, so every ArtifactStore churns.
//   * kLeastOutstanding  — classic least-outstanding-work: per-GPU token backlog
//                          (drained at a configurable rate between arrivals),
//                          assign to the argmin. Balances load, ignores affinity.
//   * kDeltaAffinity     — consistent hashing of the variant id onto a virtual-
//                          node ring with bounded load (CH-BL): a variant's
//                          compressed delta stays hot on one (or few) GPUs, and a
//                          GPU whose backlog exceeds c × cluster mean is skipped
//                          so a bursting variant spills instead of hotspotting.
//   * kTenantAffinity    — the same CH-BL ring keyed by tenant id: a tenant's
//                          whole traffic (often a handful of variants) lands on
//                          one GPU, giving per-tenant performance isolation and
//                          keeping that tenant's deltas co-resident.
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/trace.h"

namespace dz {

enum class PlacementPolicy {
  kRoundRobin,
  kLeastOutstanding,
  kDeltaAffinity,
  kTenantAffinity,
};

// Stable CLI/report name of a policy ("round-robin", "least-outstanding",
// "delta-affinity", "tenant-affinity").
const char* PlacementPolicyName(PlacementPolicy policy);
// Parses the names printed by PlacementPolicyName. Returns false on unknown
// names.
bool ParsePlacementPolicy(const std::string& name, PlacementPolicy& out);

struct PlacerConfig {
  int n_gpus = 1;
  PlacementPolicy policy = PlacementPolicy::kRoundRobin;
  // Load-aware policies model each GPU's backlog in token units, drained at this
  // rate between arrivals — a coarse stand-in for per-GPU decode throughput.
  double drain_tokens_per_s = 1000.0;
  // Delta-affinity knobs: ring replicas per GPU, the bounded-load factor c
  // (a GPU is skipped while its backlog exceeds c × cluster-mean backlog), and
  // the hash-stream seed.
  int virtual_nodes = 64;
  double bounded_load_factor = 1.25;
  uint64_t hash_seed = 0x5EED5EEDULL;
};

// Online request→GPU placement: keeps per-GPU token-backlog estimates and, for
// delta-affinity, the virtual-node consistent-hash ring (paper §5.4 scaled out).
class Placer {
 public:
  // Places across GPUs [0, n_gpus) — the static-cluster case.
  explicit Placer(const PlacerConfig& config);

  // Places across an explicit set of global worker ids (elastic clusters:
  // membership changes as workers crash, drain, or scale in/out, but ids are
  // stable for a worker's lifetime). `worker_ids` must be non-empty, strictly
  // ascending, and non-negative; config.n_gpus is ignored. Ring points hash
  // the GLOBAL id, so a worker keeps its ring positions across membership
  // changes (consistent hashing's bounded-churn property), and
  // Placer(cfg, {0..n-1}) is bit-identical to Placer(cfg) (test-enforced).
  Placer(const PlacerConfig& config, const std::vector<int>& worker_ids);

  // Assigns one request to a worker, returning its GLOBAL id (one of
  // worker_ids; [0, n_gpus) for the static ctor). Must be called in trace
  // order (non-decreasing arrival_s): the placer maintains backlog online.
  int Assign(const TraceRequest& req);

  // The variant's home GPU on the consistent-hash ring, ignoring bounded load —
  // i.e. where delta-affinity places it in the absence of backlog spill. Only
  // meaningful for kDeltaAffinity (check-fails otherwise). Stateless: does not
  // consume or update backlog, so it is safe to call for prefetch hinting.
  int HomeGpu(int model_id) const;

  // The tenant's home GPU on the ring, ignoring bounded load. Only meaningful
  // for kTenantAffinity (check-fails otherwise). Stateless, like HomeGpu.
  int HomeGpuForTenant(int tenant_id) const;

  // Current per-worker backlog estimates (token units), aligned with
  // worker_ids(); exposed for tests and for elastic rebuild seeding.
  const std::vector<double>& backlogs() const { return backlog_; }
  // The global worker ids this placer routes across, ascending.
  const std::vector<int>& worker_ids() const { return ids_; }

 private:
  struct RingPoint {
    uint64_t hash = 0;
    int gpu = 0;  // GLOBAL worker id
  };

  void DrainBacklogs(double now);
  // backlog_/seen slot of a global worker id (linear scan; membership is tiny).
  size_t SlotOf(int gpu) const;
  size_t RingHomeOfKey(uint64_t salted_key) const;
  size_t RingHome(int model_id) const;
  size_t RingHomeTenant(int tenant_id) const;
  int AssignAffinity(size_t home_idx, double cost);

  PlacerConfig config_;
  std::vector<int> ids_;         // global worker ids, ascending
  std::vector<double> backlog_;  // token units per slot, decayed between arrivals
  double last_now_ = 0.0;
  int rr_next_ = 0;              // round-robin cursor over slots
  std::vector<RingPoint> ring_;  // sorted by hash; empty unless affinity policies
};

// Convenience: per-request GPU assignments for a whole trace, aligned with
// trace.requests (the shard_of vector SplitTrace expects).
std::vector<int> AssignTrace(const Trace& trace, const PlacerConfig& config);

}  // namespace dz

#endif  // SRC_CLUSTER_PLACEMENT_H_
