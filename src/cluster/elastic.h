// Elastic cluster serving: the fault-injection / autoscaling execution path of
// Cluster::Serve (dispatched when ClusterConfig::faults or ::autoscale is
// enabled; the default static path never reaches this file).
//
// Execution model — epochs between boundaries. The run is cut at every fault
// event time, every crash-detection time (crash + detection_delay_s), and
// every committed autoscaler action; inside one epoch membership, speeds, and
// partitions are constant, so each serving worker replays its input on a
// fresh engine clocked [t0, t1) (EngineConfig::start_s / halt_s) and hands
// its unfinished requests forward as next-epoch carry. Worker engines stay
// completely unaware of the cluster: faults reach them only through the four
// EngineConfig hooks (start/halt/speed/outages).
//
// Autoscaling uses optimistic-run + rollback: the loop first runs the epoch
// to the next fault boundary, then replays the autoscaler's decision rule at
// its grid points against the observed (offered − finished) backlog and the
// windowed interactive TTFT p99; the first non-hold decision at t_a discards
// the optimistic run, re-runs the (deterministic) prefix [t0, t_a), and
// commits the action as a new boundary — so decisions take effect exactly
// when a live controller would have made them, not at epoch granularity.
//
// Approximations (documented, uniform): completions of the iteration in
// flight when a boundary lands still count (engines check halt at loop top
// only); a crashed worker's partial decode progress is lost (re-serving pays
// the full re-warm, prefill, and decode again); per-worker metrics timelines
// are not collected in elastic mode.
#ifndef SRC_CLUSTER_ELASTIC_H_
#define SRC_CLUSTER_ELASTIC_H_

#include "src/cluster/cluster_report.h"
#include "src/cluster/router.h"
#include "src/workload/trace.h"

namespace dz {

// Runs `trace` through the elastic cluster loop. Requires
// cfg.faults.Enabled() || cfg.autoscale.Enabled(). The returned report's
// `elastic` ledger satisfies completed + shed + failed == offered
// (DZ_CHECK-enforced before returning).
ClusterReport ServeElastic(const ClusterConfig& cfg, const Trace& trace);

}  // namespace dz

#endif  // SRC_CLUSTER_ELASTIC_H_
