// Reactive cluster autoscaler: watches windowed load statistics (backlog per
// active worker, interactive TTFT p99) on the simulated clock and grows or
// shrinks the worker set between min_workers and max_workers. Scale-down is
// graceful: the victim stops receiving new requests, drains its in-flight
// work, and only then retires (drain-before-remove, property-tested). The
// decision rule itself is a pure function (Decide) so tests can drive it with
// arbitrary load envelopes; the elastic serving loop (src/cluster/elastic.cc)
// owns the clock, the stats, and the drain protocol.
#ifndef SRC_CLUSTER_AUTOSCALER_H_
#define SRC_CLUSTER_AUTOSCALER_H_

namespace dz {

struct AutoscalerConfig {
  // Off by default: Cluster::Serve stays on the fault-free static path,
  // bit-identical to the pre-autoscaler cluster (golden-enforced).
  bool enabled = false;
  int min_workers = 1;
  int max_workers = 8;
  // Seconds between decisions, and the minimum quiet period after any action
  // (booting a worker / completing a drain is not free; the cooldown stops
  // decision flapping on a load edge).
  double decision_interval_s = 15.0;
  double cooldown_s = 30.0;
  // Scale up when the interactive TTFT p99 of the last window exceeds this...
  double target_ttft_p99_s = 5.0;
  // ...or when outstanding requests per active worker exceed this.
  double scale_up_backlog_per_worker = 8.0;
  // Scale down only when backlog per worker is below this AND p99 is under
  // half the target (comfortably healthy, not merely borderline).
  double scale_down_backlog_per_worker = 2.0;
  // Workers added/removed per decision.
  int step = 1;

  bool Enabled() const { return enabled; }
};

// One decision window's inputs, as the elastic loop measures them at time t.
struct AutoscalerStats {
  double t = 0.0;
  int active_workers = 1;
  // Outstanding (arrived, not finished) requests per active worker at t.
  double backlog_per_worker = 0.0;
  // p99 TTFT over interactive requests that finished in the last window
  // (0 when none finished — treated as healthy, backlog still speaks).
  double interactive_ttft_p99_s = 0.0;
};

enum class ScaleDecision { kHold, kUp, kDown };

class ClusterAutoscaler {
 public:
  explicit ClusterAutoscaler(const AutoscalerConfig& config)
      : config_(config) {}

  // The reactive rule. Pure in the stats; the only internal state is the
  // cooldown clock (last action time), advanced when a decision fires.
  ScaleDecision Decide(const AutoscalerStats& stats);

  // Time of the last non-hold decision (-inf before any).
  double last_action_t() const { return last_action_t_; }

  const AutoscalerConfig& config() const { return config_; }

 private:
  AutoscalerConfig config_;
  double last_action_t_ = -1e300;
};

}  // namespace dz

#endif  // SRC_CLUSTER_AUTOSCALER_H_
