// Cluster-level serving metrics: the per-GPU ServeReports merged into one view
// (aggregate throughput, SLO attainment over all requests, per-GPU utilization,
// load imbalance, and total artifact-movement traffic).
#ifndef SRC_CLUSTER_CLUSTER_REPORT_H_
#define SRC_CLUSTER_CLUSTER_REPORT_H_

#include <string>
#include <vector>

#include "src/cluster/placement.h"
#include "src/serving/report.h"

namespace dz {

// Per-GPU load summary derived from that GPU's ServeReport. Times in simulated
// seconds; loads count artifact transfers.
struct GpuLoadStats {
  int gpu = 0;
  size_t requests = 0;
  long long output_tokens = 0;
  double busy_span_s = 0.0;  // when this GPU finished its last request (s)
  double utilization = 0.0;  // busy_span_s / cluster makespan (0 when idle cluster)
  int total_loads = 0;       // PCIe (H2D) artifact transfers on this GPU
  int disk_loads = 0;        // loads that additionally paid the disk read
  int prefetch_issued = 0;   // speculative transfers issued on this GPU
  int prefetch_hits = 0;     // prefetched artifacts later used by a demand request
  int prefetch_wasted = 0;   // prefetched artifacts evicted without any use
  double stall_hidden_s = 0.0;  // artifact-wait seconds prefetch removed
};

// Conservation ledger and churn counters of an elastic (faults and/or
// autoscaling enabled) cluster run. Invariant, DZ_CHECK-enforced at the end of
// every elastic run and asserted by the chaos tests:
//   completed + shed + failed == offered
// i.e. every offered request is accounted for exactly once — nothing is lost
// or double-completed, however the membership churned.
struct ElasticStats {
  bool active = false;      // false on the static (fault-free) path
  long long offered = 0;    // trace requests the router accepted
  long long completed = 0;  // finished with a RequestRecord
  long long shed = 0;       // dropped by admission control
  // Stranded on a crashed worker that never recovered (reroute=false only;
  // with rerouting every stranded request is retried instead).
  long long failed = 0;
  // Re-enqueue episodes (a request re-routed twice counts twice); retried
  // requests still end in exactly one of the three buckets above.
  long long retried = 0;
  int crashes = 0;
  int recoveries = 0;
  int scale_ups = 0;
  int scale_downs = 0;
  int peak_workers = 0;
  int final_workers = 0;
  // Re-warm attribution: artifact prefetches issued (and stall seconds hidden)
  // in epochs that began with a membership change — the cost of re-warming
  // caches after a crash/reroute/scale event rather than steady-state traffic.
  long long rewarm_loads = 0;
  double rewarm_s = 0.0;
  // Requests whose artifact the registry could not source at all (every
  // holder dead — the store's typed `unavailable`). A subset of `failed` in
  // the conservation ledger; always 0 without a registry.
  long long unavailable = 0;
  // Background-repair totals (0 without a registry): fragment/replica copies
  // fully rebuilt, and repair bytes moved on spare net bandwidth.
  long long repair_jobs = 0;
  double repair_bytes = 0.0;
  // The active fault schedule serialized back to spec form (FaultPlanToSpec),
  // so reports and flight-recorder dumps record what was injected. Empty when
  // the run had no fault plan.
  std::string fault_spec;
};

struct ClusterReport {
  std::string cluster_name;  // e.g. "deltazip x4 [delta-affinity]"
  PlacementPolicy policy = PlacementPolicy::kRoundRobin;
  int n_gpus = 1;
  // Fault/elasticity ledger; `elastic.active` is false (and every field 0) on
  // the default static path, which leaves Summary() output unchanged.
  ElasticStats elastic;
  std::vector<ServeReport> per_gpu;  // indexed by GPU id
  // All per-GPU records merged by finish time (stable by GPU at ties). For a
  // 1-GPU cluster this is exactly the worker's report, so cluster and direct
  // engine runs compare bit-identically.
  ServeReport merged;
  // Router-side trace events (router.place / router.warm_hint), empty unless
  // tracing is on. Worker events stay in per_gpu[g].trace_events (tagged with
  // gpu = g by BuildClusterReport); MergedTraceEvents() combines both views.
  std::vector<TraceEvent> router_events;

  // One cluster-wide event stream: every worker's events (in GPU order) plus
  // the router's, re-sorted by timestamp (stable, so same-instant events keep
  // GPU order). This is what --trace-out exports.
  std::vector<TraceEvent> MergedTraceEvents() const;

  size_t completed() const { return merged.records.size(); }
  double makespan_s() const { return merged.makespan_s; }
  double AggregateThroughputRps() const { return merged.ThroughputRps(); }
  double AggregateTokenThroughput() const { return merged.TokenThroughput(); }
  double MeanE2e() const { return merged.MeanE2e(); }
  double MeanTtft() const { return merged.MeanTtft(); }
  double SloAttainmentE2e(double slo_s) const { return merged.SloAttainmentE2e(slo_s); }
  double SloAttainmentTtft(double slo_s) const {
    return merged.SloAttainmentTtft(slo_s);
  }

  // --- multi-tenant / per-class views (all delegate to `merged`) ------------
  // Admission-control sheds summed over GPUs (0 when shedding is disabled).
  int TotalShed() const { return merged.TotalShed(); }
  // Cluster-wide per-class SLO attainment against the classes' own deadlines.
  double ClassAttainment(SloClass slo) const { return merged.ClassAttainment(slo); }
  // Jain fairness over per-tenant served tokens, cluster-wide.
  double JainFairnessIndex() const { return merged.JainFairnessIndex(); }

  std::vector<GpuLoadStats> PerGpuStats() const;
  // max / mean per-GPU served output tokens; 1.0 is perfectly balanced. GPUs that
  // served nothing count toward the mean. 0 when the cluster served nothing.
  double LoadImbalance() const;
  double MeanUtilization() const;
  int TotalLoads() const;      // PCIe (H2D) artifact transfers, summed over GPUs
  int TotalDiskLoads() const;  // disk→host artifact reads, summed over GPUs
  // Prefetch effectiveness summed over GPUs (all 0 when prefetch is disabled).
  int TotalPrefetchIssued() const;
  int TotalPrefetchHits() const;
  int TotalPrefetchWasted() const;
  double TotalStallHiddenS() const;  // artifact-wait seconds hidden cluster-wide

  // Aligned ASCII rendering: cluster aggregates plus a per-GPU breakdown
  // (shared by `dzip_cli cluster` and the scaling bench).
  std::string Summary(double slo_e2e_s, double slo_ttft_s) const;
};

// Builds the merged view from per-GPU worker reports (per_gpu[i] belongs to GPU i).
ClusterReport BuildClusterReport(std::string cluster_name, PlacementPolicy policy,
                                 std::vector<ServeReport> per_gpu);

}  // namespace dz

#endif  // SRC_CLUSTER_CLUSTER_REPORT_H_
