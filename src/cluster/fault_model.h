// Typed fault injection for the cluster layer: a FaultPlan schedules worker
// crashes, recoveries, degraded-throughput (slow-node) windows, and transient
// disk/PCIe partitions on the simulated clock. The elastic serving loop
// (src/cluster/elastic.cc) consumes the plan as epoch boundaries: a crash
// kills a worker mid-run (its in-flight requests are lost and re-routed after
// the router's detection delay), a slow window stretches every iteration by
// the multiplier, and a partition blacks out the worker's transfer channels
// without killing it. An empty plan (the default) keeps Cluster::Serve on the
// fault-free code path, bit-identical to the pre-fault cluster
// (golden-enforced).
#ifndef SRC_CLUSTER_FAULT_MODEL_H_
#define SRC_CLUSTER_FAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dz {

enum class FaultType {
  kCrash,           // worker dies at t_s; serving stops, backlog strands
  kRecover,         // crashed worker rejoins at t_s (fresh engine, cold store)
  kSlowStart,       // iteration times divided by `multiplier` from t_s...
  kSlowEnd,         // ...until the matching end event
  kPartitionStart,  // disk+PCIe channel blackout on the worker from t_s...
  kPartitionEnd,    // ...until the matching end event
};

// Stable spec/trace name ("crash", "recover", "slow.start", ...).
const char* FaultTypeName(FaultType type);

struct FaultEvent {
  double t_s = 0.0;
  FaultType type = FaultType::kCrash;
  int worker = 0;           // global worker id the fault targets
  double multiplier = 1.0;  // kSlowStart only: throughput factor in (0, 1]
};

// A schedule of fault events plus the router's failure-handling knobs.
struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by t_s (ParseFaultPlan sorts)
  // Seconds between a crash and the router noticing (health-check period): the
  // dead worker keeps receiving arrivals until detection, and those requests
  // join the re-routed backlog.
  double detection_delay_s = 0.5;
  // When true (default) a detected-dead worker's backlog is re-enqueued across
  // the survivors and the placement ring is rebuilt without it. When false the
  // dead worker keeps its ring arcs and its backlog waits for a recover event;
  // requests stranded on a never-recovered worker count as failed.
  bool reroute = true;

  bool Enabled() const { return !events.empty(); }
};

// Parses a comma-separated fault spec (the `dzip_cli cluster --faults` value):
//   crash@T:wK        — worker K dies at T seconds
//   recover@T:wK      — worker K rejoins at T
//   slow@T1-T2:wKxM   — worker K runs at throughput factor M in [T1, T2)
//   part@T1-T2:wK     — worker K's disk+PCIe channels black out in [T1, T2)
//   detect=X          — set detection_delay_s
//   reroute=0|1       — set reroute
// Window specs expand to the matching start/end event pair. Events are sorted
// by time. Returns false (leaving `out` untouched) on malformed specs.
bool ParseFaultPlan(const std::string& spec, FaultPlan& out);

// Serializes a plan back to the spec grammar above, pairing each slow/part
// start event with its matching end into the window form. The round trip
// ParseFaultPlan(FaultPlanToSpec(plan)) reproduces `plan` exactly for any plan
// ParseFaultPlan or RandomFaultPlan can produce (test-enforced, up to 1e-9
// timestamp formatting). Elastic runs stamp this into their report so the
// active schedule survives into logs and flight-recorder dumps.
std::string FaultPlanToSpec(const FaultPlan& plan);

// A seeded random schedule of `n_events` faults over [0, duration_s) against
// workers [0, n_workers): a mix of crash (with a later recover for some),
// slow, and partition windows. Deterministic per seed — the chaos test's
// schedule generator.
FaultPlan RandomFaultPlan(uint64_t seed, int n_workers, double duration_s,
                          int n_events);

}  // namespace dz

#endif  // SRC_CLUSTER_FAULT_MODEL_H_
