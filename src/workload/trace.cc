#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace dz {

const char* PopularityDistName(PopularityDist dist) {
  switch (dist) {
    case PopularityDist::kUniform:
      return "uniform";
    case PopularityDist::kZipf:
      return "zipf";
    case PopularityDist::kAzure:
      return "azure";
  }
  return "?";
}

std::vector<int> Trace::ModelCounts() const {
  std::vector<int> counts(static_cast<size_t>(n_models), 0);
  for (const auto& r : requests) {
    ++counts[static_cast<size_t>(r.model_id)];
  }
  return counts;
}

bool Trace::IsArrivalSorted() const {
  for (size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_s < requests[i - 1].arrival_s) {
      return false;
    }
  }
  return true;
}

void Trace::CheckWellFormed() const {
  DZ_CHECK(IsArrivalSorted());
  std::vector<int> ids;
  ids.reserve(requests.size());
  for (const auto& r : requests) {
    DZ_CHECK_GE(r.model_id, 0);
    DZ_CHECK_LT(r.model_id, n_models);
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  DZ_CHECK(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

namespace {

int SampleLognormalTokens(Rng& rng, double mean_tokens, double sigma, int max_tokens) {
  // Parameterize so the lognormal's mean equals mean_tokens: mu = ln(m) - sigma²/2.
  const double mu = std::log(mean_tokens) - sigma * sigma / 2.0;
  const double v = std::exp(rng.Normal(mu, sigma));
  return std::clamp(static_cast<int>(v), 4, max_tokens);
}

// Azure-like per-model bursty arrival schedule: models alternate ON/OFF phases; while
// ON their rate is boosted. Popularity across models is heavy-tailed (zipf-2).
struct BurstSchedule {
  std::vector<std::pair<double, double>> on_windows;  // [start, end)

  bool IsOn(double t) const {
    for (const auto& [s, e] : on_windows) {
      if (t >= s && t < e) {
        return true;
      }
    }
    return false;
  }
};

BurstSchedule MakeBurstSchedule(const TraceConfig& config, Rng& rng) {
  BurstSchedule sched;
  double t = -rng.Exponential(1.0 / config.burst_off_mean_s);  // random phase offset
  while (t < config.duration_s) {
    const double on = rng.Exponential(1.0 / config.burst_on_mean_s);
    sched.on_windows.emplace_back(std::max(0.0, t), t + on);
    t += on + rng.Exponential(1.0 / config.burst_off_mean_s);
  }
  return sched;
}

}  // namespace

Trace GenerateTrace(const TraceConfig& config) {
  DZ_CHECK_GT(config.n_models, 0);
  DZ_CHECK_GT(config.arrival_rate, 0.0);
  DZ_CHECK_GT(config.duration_s, 0.0);
  Rng rng(config.seed);

  Trace trace;
  trace.n_models = config.n_models;
  trace.duration_s = config.duration_s;

  // Static popularity weights.
  std::vector<double> popularity(static_cast<size_t>(config.n_models), 1.0);
  if (config.dist == PopularityDist::kZipf) {
    for (int i = 0; i < config.n_models; ++i) {
      popularity[static_cast<size_t>(i)] =
          1.0 / std::pow(static_cast<double>(i + 1), config.zipf_alpha);
    }
  } else if (config.dist == PopularityDist::kAzure) {
    for (int i = 0; i < config.n_models; ++i) {
      popularity[static_cast<size_t>(i)] =
          1.0 / std::pow(static_cast<double>(i + 1), 2.0);
    }
  }

  std::vector<BurstSchedule> bursts;
  if (config.dist == PopularityDist::kAzure) {
    bursts.reserve(static_cast<size_t>(config.n_models));
    for (int i = 0; i < config.n_models; ++i) {
      bursts.push_back(MakeBurstSchedule(config, rng));
    }
  }

  // Aggregate Poisson process; each arrival is assigned to a model by (possibly
  // time-varying) weights. Model ranks are shuffled so model_id 0 is not always hot.
  std::vector<int> rank_of(static_cast<size_t>(config.n_models));
  for (int i = 0; i < config.n_models; ++i) {
    rank_of[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(rank_of);

  double t = 0.0;
  int next_id = 0;
  while (true) {
    t += rng.Exponential(config.arrival_rate);
    if (t >= config.duration_s) {
      break;
    }
    std::vector<double> weights(static_cast<size_t>(config.n_models));
    for (int m = 0; m < config.n_models; ++m) {
      const int rank = rank_of[static_cast<size_t>(m)];
      double w = popularity[static_cast<size_t>(rank)];
      if (config.dist == PopularityDist::kAzure) {
        w *= bursts[static_cast<size_t>(rank)].IsOn(t) ? config.burst_boost : 1.0;
      }
      weights[static_cast<size_t>(m)] = w;
    }
    TraceRequest req;
    req.id = next_id++;
    req.model_id = rng.Categorical(weights);
    req.arrival_s = t;
    req.prompt_tokens = SampleLognormalTokens(rng, config.prompt_mean_tokens,
                                              config.prompt_sigma, config.prompt_max_tokens);
    req.output_tokens = SampleLognormalTokens(rng, config.output_mean_tokens,
                                              config.output_sigma, config.output_max_tokens);
    trace.requests.push_back(req);
  }
  // Arrival times are generated increasing, but guarantee it regardless of the
  // arrival process (a stable sort of sorted input is the identity, so this is
  // bit-identical for the Poisson path) and enforce the shared invariants.
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  trace.CheckWellFormed();
  return trace;
}

std::vector<Trace> SplitTrace(const Trace& trace, const std::vector<int>& shard_of,
                              int n_shards) {
  DZ_CHECK_GT(n_shards, 0);
  DZ_CHECK_EQ(shard_of.size(), trace.requests.size());
  DZ_CHECK(trace.IsArrivalSorted());
  std::vector<Trace> shards(static_cast<size_t>(n_shards));
  for (Trace& shard : shards) {
    shard.n_models = trace.n_models;
    shard.duration_s = trace.duration_s;
  }
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const int s = shard_of[i];
    DZ_CHECK_GE(s, 0);
    DZ_CHECK_LT(s, n_shards);
    shards[static_cast<size_t>(s)].requests.push_back(trace.requests[i]);
  }
  for (const Trace& shard : shards) {
    shard.CheckWellFormed();
  }
  return shards;
}

Trace MergeTraces(const std::vector<Trace>& shards) {
  DZ_CHECK(!shards.empty());
  Trace merged;
  merged.n_models = shards.front().n_models;
  size_t total = 0;
  for (const Trace& shard : shards) {
    DZ_CHECK_EQ(shard.n_models, merged.n_models);
    DZ_CHECK(shard.IsArrivalSorted());
    merged.duration_s = std::max(merged.duration_s, shard.duration_s);
    total += shard.requests.size();
  }
  merged.requests.reserve(total);
  // Concatenate in shard order, then stable-sort by arrival: ties resolve to the
  // lowest shard index and each shard's internal order is preserved.
  for (const Trace& shard : shards) {
    merged.requests.insert(merged.requests.end(), shard.requests.begin(),
                           shard.requests.end());
  }
  std::stable_sort(merged.requests.begin(), merged.requests.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  merged.CheckWellFormed();
  return merged;
}

std::vector<std::vector<int>> InvocationMatrix(const Trace& trace, double window_s) {
  DZ_CHECK_GT(window_s, 0.0);
  const int windows =
      static_cast<int>(std::ceil(trace.duration_s / window_s));
  std::vector<std::vector<int>> counts(
      static_cast<size_t>(trace.n_models),
      std::vector<int>(static_cast<size_t>(std::max(windows, 1)), 0));
  for (const auto& r : trace.requests) {
    const int w = std::min(windows - 1, static_cast<int>(r.arrival_s / window_s));
    ++counts[static_cast<size_t>(r.model_id)][static_cast<size_t>(w)];
  }
  return counts;
}

std::vector<int> ModelsByPopularity(const Trace& trace) {
  const std::vector<int> counts = trace.ModelCounts();
  std::vector<int> order(counts.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return counts[static_cast<size_t>(a)] > counts[static_cast<size_t>(b)];
  });
  return order;
}

std::vector<int> ModelsByPopularity(const Trace& trace, int k) {
  std::vector<int> order = ModelsByPopularity(trace);
  order.resize(std::min(order.size(), static_cast<size_t>(std::max(0, k))));
  return order;
}

}  // namespace dz
