#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace dz {

const char* PopularityDistName(PopularityDist dist) {
  switch (dist) {
    case PopularityDist::kUniform:
      return "uniform";
    case PopularityDist::kZipf:
      return "zipf";
    case PopularityDist::kAzure:
      return "azure";
  }
  return "?";
}

const char* SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBatch:
      return "batch";
  }
  return "?";
}

bool ParseSloClass(const std::string& name, SloClass& out) {
  for (SloClass s : {SloClass::kInteractive, SloClass::kStandard, SloClass::kBatch}) {
    if (name == SloClassName(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

const char* TenantScenarioName(TenantScenario scenario) {
  switch (scenario) {
    case TenantScenario::kSteady:
      return "steady";
    case TenantScenario::kDiurnal:
      return "diurnal";
    case TenantScenario::kFlashCrowd:
      return "flash-crowd";
    case TenantScenario::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

bool ParseTenantScenario(const std::string& name, TenantScenario& out) {
  for (TenantScenario s :
       {TenantScenario::kSteady, TenantScenario::kDiurnal, TenantScenario::kFlashCrowd,
        TenantScenario::kHeavyTail}) {
    if (name == TenantScenarioName(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

std::vector<int> Trace::ModelCounts() const {
  std::vector<int> counts(static_cast<size_t>(n_models), 0);
  for (const auto& r : requests) {
    ++counts[static_cast<size_t>(r.model_id)];
  }
  return counts;
}

std::vector<int> Trace::TenantCounts() const {
  std::vector<int> counts(static_cast<size_t>(std::max(1, n_tenants)), 0);
  for (const auto& r : requests) {
    ++counts[static_cast<size_t>(r.tenant_id)];
  }
  return counts;
}

bool Trace::IsArrivalSorted() const {
  for (size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_s < requests[i - 1].arrival_s) {
      return false;
    }
  }
  return true;
}

void Trace::CheckWellFormed() const {
  DZ_CHECK(IsArrivalSorted());
  std::vector<int> ids;
  ids.reserve(requests.size());
  for (const auto& r : requests) {
    DZ_CHECK_GE(r.model_id, 0);
    DZ_CHECK_LT(r.model_id, n_models);
    DZ_CHECK_GE(r.tenant_id, 0);
    DZ_CHECK_LT(r.tenant_id, std::max(1, n_tenants));
    DZ_CHECK_GE(static_cast<int>(r.slo), 0);
    DZ_CHECK_LT(static_cast<int>(r.slo), kNumSloClasses);
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  DZ_CHECK(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

namespace {

int SampleLognormalTokens(Rng& rng, double mean_tokens, double sigma, int max_tokens) {
  // Parameterize so the lognormal's mean equals mean_tokens: mu = ln(m) - sigma²/2.
  const double mu = std::log(mean_tokens) - sigma * sigma / 2.0;
  const double v = std::exp(rng.Normal(mu, sigma));
  return std::clamp(static_cast<int>(v), 4, max_tokens);
}

// Azure-like per-model bursty arrival schedule: models alternate ON/OFF phases; while
// ON their rate is boosted. Popularity across models is heavy-tailed (zipf-2).
struct BurstSchedule {
  std::vector<std::pair<double, double>> on_windows;  // [start, end)

  bool IsOn(double t) const {
    for (const auto& [s, e] : on_windows) {
      if (t >= s && t < e) {
        return true;
      }
    }
    return false;
  }
};

BurstSchedule MakeBurstSchedule(const TraceConfig& config, Rng& rng) {
  BurstSchedule sched;
  double t = -rng.Exponential(1.0 / config.burst_off_mean_s);  // random phase offset
  while (t < config.duration_s) {
    const double on = rng.Exponential(1.0 / config.burst_on_mean_s);
    sched.on_windows.emplace_back(std::max(0.0, t), t + on);
    t += on + rng.Exponential(1.0 / config.burst_off_mean_s);
  }
  return sched;
}

// Per-tenant traffic shares: ∝ 1/(rank+1)^alpha, normalized to sum 1. Equal
// shares when alpha == 0.
std::vector<double> TenantShares(const TenantConfig& config) {
  const double alpha = EffectiveHeavyTailAlpha(config);
  std::vector<double> shares(static_cast<size_t>(config.n_tenants));
  double total = 0.0;
  for (int t = 0; t < config.n_tenants; ++t) {
    shares[static_cast<size_t>(t)] = 1.0 / std::pow(static_cast<double>(t + 1), alpha);
    total += shares[static_cast<size_t>(t)];
  }
  for (double& s : shares) {
    s /= total;
  }
  return shares;
}

// Time-varying rate multiplier of the scenario envelope for one tenant (1.0 for
// steady/heavy-tail; the peak of this function is RatePeakMultiplier).
double RateMultiplierAt(const TenantConfig& config, int tenant, double t,
                        double duration_s) {
  switch (config.scenario) {
    case TenantScenario::kSteady:
    case TenantScenario::kHeavyTail:
      return 1.0;
    case TenantScenario::kDiurnal: {
      constexpr double kTwoPi = 6.283185307179586;
      const double phase = kTwoPi * t / config.diurnal_period_s;
      return std::max(0.0, 1.0 + config.diurnal_amplitude * std::sin(phase));
    }
    case TenantScenario::kFlashCrowd: {
      if (tenant != config.flash_tenant) {
        return 1.0;
      }
      const double start = config.flash_start_frac * duration_s;
      const double end = start + config.flash_duration_frac * duration_s;
      return (t >= start && t < end) ? config.flash_boost : 1.0;
    }
  }
  return 1.0;
}

double RatePeakMultiplier(const TenantConfig& config, int tenant) {
  switch (config.scenario) {
    case TenantScenario::kSteady:
    case TenantScenario::kHeavyTail:
      return 1.0;
    case TenantScenario::kDiurnal:
      return 1.0 + std::max(0.0, config.diurnal_amplitude);
    case TenantScenario::kFlashCrowd:
      return tenant == config.flash_tenant ? std::max(1.0, config.flash_boost) : 1.0;
  }
  return 1.0;
}

}  // namespace

double EffectiveHeavyTailAlpha(const TenantConfig& config) {
  if (config.heavy_tail_alpha > 0.0) {
    return config.heavy_tail_alpha;
  }
  return config.scenario == TenantScenario::kHeavyTail ? 1.2 : 0.0;
}

double TenantRateAt(const TraceConfig& config, int tenant, double t) {
  DZ_CHECK_GE(tenant, 0);
  DZ_CHECK_LT(tenant, config.tenants.n_tenants);
  const std::vector<double> shares = TenantShares(config.tenants);
  return config.arrival_rate * shares[static_cast<size_t>(tenant)] *
         RateMultiplierAt(config.tenants, tenant, t, config.duration_s);
}

Trace GenerateTrace(const TraceConfig& config) {
  DZ_CHECK_GT(config.n_models, 0);
  DZ_CHECK_GT(config.arrival_rate, 0.0);
  DZ_CHECK_GT(config.duration_s, 0.0);
  DZ_CHECK_GT(config.tenants.n_tenants, 0);
  Rng rng(config.seed);

  Trace trace;
  trace.n_models = config.n_models;
  trace.n_tenants = config.tenants.n_tenants;
  trace.duration_s = config.duration_s;

  // Static popularity weights.
  std::vector<double> popularity(static_cast<size_t>(config.n_models), 1.0);
  if (config.dist == PopularityDist::kZipf) {
    for (int i = 0; i < config.n_models; ++i) {
      popularity[static_cast<size_t>(i)] =
          1.0 / std::pow(static_cast<double>(i + 1), config.zipf_alpha);
    }
  } else if (config.dist == PopularityDist::kAzure) {
    for (int i = 0; i < config.n_models; ++i) {
      popularity[static_cast<size_t>(i)] =
          1.0 / std::pow(static_cast<double>(i + 1), 2.0);
    }
  }

  std::vector<BurstSchedule> bursts;
  if (config.dist == PopularityDist::kAzure) {
    bursts.reserve(static_cast<size_t>(config.n_models));
    for (int i = 0; i < config.n_models; ++i) {
      bursts.push_back(MakeBurstSchedule(config, rng));
    }
  }

  // Aggregate Poisson process; each arrival is assigned to a model by (possibly
  // time-varying) weights. Model ranks are shuffled so model_id 0 is not always hot.
  std::vector<int> rank_of(static_cast<size_t>(config.n_models));
  for (int i = 0; i < config.n_models; ++i) {
    rank_of[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(rank_of);

  // Model choice at time t: static popularity, with Azure burst boosts applied
  // on top. Shared by the single-tenant and multi-tenant arrival processes.
  auto model_weights_at = [&](double t) {
    std::vector<double> weights(static_cast<size_t>(config.n_models));
    for (int m = 0; m < config.n_models; ++m) {
      const int rank = rank_of[static_cast<size_t>(m)];
      double w = popularity[static_cast<size_t>(rank)];
      if (config.dist == PopularityDist::kAzure) {
        w *= bursts[static_cast<size_t>(rank)].IsOn(t) ? config.burst_boost : 1.0;
      }
      weights[static_cast<size_t>(m)] = w;
    }
    return weights;
  };

  if (!config.tenants.Enabled()) {
    // Single-tenant path: bit-identical to the pre-tenant generator (the RNG
    // consumption sequence is unchanged; test- and golden-enforced).
    double t = 0.0;
    int next_id = 0;
    while (true) {
      t += rng.Exponential(config.arrival_rate);
      if (t >= config.duration_s) {
        break;
      }
      TraceRequest req;
      req.id = next_id++;
      req.model_id = rng.Categorical(model_weights_at(t));
      req.arrival_s = t;
      req.prompt_tokens = SampleLognormalTokens(
          rng, config.prompt_mean_tokens, config.prompt_sigma, config.prompt_max_tokens);
      req.output_tokens = SampleLognormalTokens(
          rng, config.output_mean_tokens, config.output_sigma, config.output_max_tokens);
      trace.requests.push_back(req);
    }
  } else {
    // Multi-tenant path: each tenant is an independent Poisson process thinned
    // against its scenario envelope (generate at the peak rate, accept with
    // probability multiplier(t)/peak), so per-window arrival counts track
    // TenantRateAt within sampling noise. Per-tenant forked RNG streams keep the
    // result deterministic under a fixed seed regardless of tenant count order.
    const TenantConfig& tc = config.tenants;
    DZ_CHECK_GE(tc.flash_tenant, 0);
    DZ_CHECK_LT(tc.flash_tenant, tc.n_tenants);
    DZ_CHECK_GE(tc.interactive_frac, 0.0);
    DZ_CHECK_GE(tc.batch_frac, 0.0);
    DZ_CHECK_LE(tc.interactive_frac + tc.batch_frac, 1.0);
    // The thinning acceptance probability multiplier(t)/peak must stay ≤ 1, so
    // the envelope parameters are bounded to where RatePeakMultiplier is the
    // true maximum of RateMultiplierAt.
    DZ_CHECK_GE(tc.diurnal_amplitude, 0.0);
    DZ_CHECK_LE(tc.diurnal_amplitude, 1.0);
    DZ_CHECK_GT(tc.flash_boost, 0.0);
    const std::vector<double> shares = TenantShares(tc);
    for (int tenant = 0; tenant < tc.n_tenants; ++tenant) {
      Rng trng = rng.Fork();
      const double peak = RatePeakMultiplier(tc, tenant);
      const double peak_rate =
          config.arrival_rate * shares[static_cast<size_t>(tenant)] * peak;
      double t = 0.0;
      while (true) {
        t += trng.Exponential(peak_rate);
        if (t >= config.duration_s) {
          break;
        }
        const double accept =
            RateMultiplierAt(tc, tenant, t, config.duration_s) / peak;
        if (trng.NextDouble() >= accept) {
          continue;  // thinned: outside the envelope's share of the peak rate
        }
        TraceRequest req;
        req.tenant_id = tenant;
        req.model_id = trng.Categorical(model_weights_at(t));
        req.arrival_s = t;
        const double cls = trng.NextDouble();
        req.slo = cls < tc.interactive_frac ? SloClass::kInteractive
                  : cls < tc.interactive_frac + tc.batch_frac ? SloClass::kBatch
                                                              : SloClass::kStandard;
        req.prompt_tokens = SampleLognormalTokens(
            trng, config.prompt_mean_tokens, config.prompt_sigma, config.prompt_max_tokens);
        req.output_tokens = SampleLognormalTokens(
            trng, config.output_mean_tokens, config.output_sigma, config.output_max_tokens);
        trace.requests.push_back(req);
      }
    }
  }
  // Arrival times are generated increasing (per tenant in the multi-tenant
  // path), but guarantee global order regardless of the arrival process (a
  // stable sort of sorted input is the identity, so this is bit-identical for
  // the single-tenant Poisson path) and enforce the shared invariants. Ties
  // resolve to the lower tenant id (concatenation order).
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  if (config.tenants.Enabled()) {
    // Ids are assigned 0..n-1 in (merged) arrival order, matching the
    // single-tenant generator's contract.
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      trace.requests[i].id = static_cast<int>(i);
    }
  }
  trace.CheckWellFormed();
  return trace;
}

std::vector<Trace> SplitTrace(const Trace& trace, const std::vector<int>& shard_of,
                              int n_shards) {
  DZ_CHECK_GT(n_shards, 0);
  DZ_CHECK_EQ(shard_of.size(), trace.requests.size());
  DZ_CHECK(trace.IsArrivalSorted());
  std::vector<Trace> shards(static_cast<size_t>(n_shards));
  for (Trace& shard : shards) {
    shard.n_models = trace.n_models;
    shard.n_tenants = trace.n_tenants;
    shard.duration_s = trace.duration_s;
  }
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const int s = shard_of[i];
    DZ_CHECK_GE(s, 0);
    DZ_CHECK_LT(s, n_shards);
    shards[static_cast<size_t>(s)].requests.push_back(trace.requests[i]);
  }
  for (const Trace& shard : shards) {
    shard.CheckWellFormed();
  }
  return shards;
}

Trace MergeTraces(const std::vector<Trace>& shards) {
  DZ_CHECK(!shards.empty());
  Trace merged;
  merged.n_models = shards.front().n_models;
  merged.n_tenants = shards.front().n_tenants;
  size_t total = 0;
  for (const Trace& shard : shards) {
    DZ_CHECK_EQ(shard.n_models, merged.n_models);
    DZ_CHECK_EQ(shard.n_tenants, merged.n_tenants);
    DZ_CHECK(shard.IsArrivalSorted());
    merged.duration_s = std::max(merged.duration_s, shard.duration_s);
    total += shard.requests.size();
  }
  merged.requests.reserve(total);
  // Concatenate in shard order, then stable-sort by arrival: ties resolve to the
  // lowest shard index and each shard's internal order is preserved.
  for (const Trace& shard : shards) {
    merged.requests.insert(merged.requests.end(), shard.requests.begin(),
                           shard.requests.end());
  }
  std::stable_sort(merged.requests.begin(), merged.requests.end(),
                   [](const TraceRequest& a, const TraceRequest& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  merged.CheckWellFormed();
  return merged;
}

std::vector<std::vector<int>> InvocationMatrix(const Trace& trace, double window_s) {
  DZ_CHECK_GT(window_s, 0.0);
  const int windows =
      static_cast<int>(std::ceil(trace.duration_s / window_s));
  std::vector<std::vector<int>> counts(
      static_cast<size_t>(trace.n_models),
      std::vector<int>(static_cast<size_t>(std::max(windows, 1)), 0));
  for (const auto& r : trace.requests) {
    const int w = std::min(windows - 1, static_cast<int>(r.arrival_s / window_s));
    ++counts[static_cast<size_t>(r.model_id)][static_cast<size_t>(w)];
  }
  return counts;
}

std::vector<std::vector<int>> TenantInvocationMatrix(const Trace& trace,
                                                     double window_s) {
  DZ_CHECK_GT(window_s, 0.0);
  const int windows = static_cast<int>(std::ceil(trace.duration_s / window_s));
  std::vector<std::vector<int>> counts(
      static_cast<size_t>(std::max(1, trace.n_tenants)),
      std::vector<int>(static_cast<size_t>(std::max(windows, 1)), 0));
  for (const auto& r : trace.requests) {
    const int w = std::min(windows - 1, static_cast<int>(r.arrival_s / window_s));
    ++counts[static_cast<size_t>(r.tenant_id)][static_cast<size_t>(w)];
  }
  return counts;
}

std::vector<int> ModelsByPopularity(const Trace& trace) {
  const std::vector<int> counts = trace.ModelCounts();
  std::vector<int> order(counts.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return counts[static_cast<size_t>(a)] > counts[static_cast<size_t>(b)];
  });
  return order;
}

std::vector<int> ModelsByPopularity(const Trace& trace, int k) {
  std::vector<int> order = ModelsByPopularity(trace);
  order.resize(std::min(order.size(), static_cast<size_t>(std::max(0, k))));
  return order;
}

}  // namespace dz
