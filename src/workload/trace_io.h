// Trace (de)serialization in a JSONL format compatible in spirit with the paper
// artifact's workload files (e.g. azure.ar=0.5.jsonl): one request per line,
//   {"id":0,"model":3,"arrival":1.25,"prompt":160,"output":210}
// plus a leading header line carrying trace-level metadata. Parsing is intentionally
// strict: unknown layouts are rejected rather than guessed at.
#ifndef SRC_WORKLOAD_TRACE_IO_H_
#define SRC_WORKLOAD_TRACE_IO_H_

#include <string>

#include "src/workload/trace.h"

namespace dz {

// Renders the trace to JSONL text.
std::string TraceToJsonl(const Trace& trace);

// Parses JSONL text produced by TraceToJsonl (or hand-written in the same schema).
// Returns false on malformed input; on success the requests are sorted by arrival.
bool TraceFromJsonl(const std::string& text, Trace& out);

// File helpers. Return false on I/O or parse failure.
bool WriteTraceFile(const std::string& path, const Trace& trace);
bool ReadTraceFile(const std::string& path, Trace& out);

}  // namespace dz

#endif  // SRC_WORKLOAD_TRACE_IO_H_
