#include "src/workload/trace_io.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace dz {

namespace {

// Minimal field extractor for our flat one-line JSON objects: finds "key": and parses
// the number after it. Returns false if the key is absent or malformed.
bool ExtractNumber(const std::string& line, const std::string& key, double& value) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  value = std::strtod(start, &end);
  return end != start;
}

}  // namespace

std::string TraceToJsonl(const Trace& trace) {
  // Tenant/class fields are emitted only when the trace actually uses them, so
  // single-tenant all-standard traces serialize byte-identically to the
  // pre-tenant format (and remain readable by older parsers).
  bool tenanted = trace.n_tenants > 1;
  for (const auto& r : trace.requests) {
    tenanted = tenanted || r.tenant_id != 0 || r.slo != SloClass::kStandard;
  }
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"type\":\"dz-trace\",\"version\":1,\"n_models\":" << trace.n_models;
  if (tenanted) {
    os << ",\"n_tenants\":" << trace.n_tenants;
  }
  os << ",\"duration\":" << trace.duration_s << "}\n";
  for (const auto& r : trace.requests) {
    os << "{\"id\":" << r.id << ",\"model\":" << r.model_id;
    if (tenanted) {
      os << ",\"tenant\":" << r.tenant_id << ",\"class\":" << static_cast<int>(r.slo);
    }
    os << ",\"arrival\":" << r.arrival_s << ",\"prompt\":" << r.prompt_tokens
       << ",\"output\":" << r.output_tokens << "}\n";
  }
  return os.str();
}

bool TraceFromJsonl(const std::string& text, Trace& out) {
  std::istringstream is(text);
  std::string line;
  bool have_header = false;
  out = Trace();
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (!have_header) {
      if (line.find("\"dz-trace\"") == std::string::npos) {
        return false;
      }
      double version = 0;
      double n_models = 0;
      double duration = 0;
      if (!ExtractNumber(line, "version", version) || version != 1.0 ||
          !ExtractNumber(line, "n_models", n_models) ||
          !ExtractNumber(line, "duration", duration)) {
        return false;
      }
      out.n_models = static_cast<int>(n_models);
      out.duration_s = duration;
      // Optional multi-tenant header field (absent in pre-tenant files).
      double n_tenants = 1;
      if (ExtractNumber(line, "n_tenants", n_tenants) && n_tenants < 1) {
        return false;
      }
      out.n_tenants = static_cast<int>(n_tenants);
      have_header = true;
      continue;
    }
    double id = 0;
    double model = 0;
    double arrival = 0;
    double prompt = 0;
    double output = 0;
    if (!ExtractNumber(line, "id", id) || !ExtractNumber(line, "model", model) ||
        !ExtractNumber(line, "arrival", arrival) ||
        !ExtractNumber(line, "prompt", prompt) ||
        !ExtractNumber(line, "output", output)) {
      return false;
    }
    if (model < 0 || model >= out.n_models || prompt < 1 || output < 1 || arrival < 0) {
      return false;
    }
    // Optional per-request tenant/class fields (default: tenant 0, standard).
    double tenant = 0;
    double slo_class = static_cast<double>(SloClass::kStandard);
    if (ExtractNumber(line, "tenant", tenant) &&
        (tenant < 0 || tenant >= out.n_tenants)) {
      return false;
    }
    if (ExtractNumber(line, "class", slo_class) &&
        (slo_class < 0 || slo_class >= kNumSloClasses)) {
      return false;
    }
    TraceRequest r;
    r.id = static_cast<int>(id);
    r.model_id = static_cast<int>(model);
    r.tenant_id = static_cast<int>(tenant);
    r.slo = static_cast<SloClass>(static_cast<int>(slo_class));
    r.arrival_s = arrival;
    r.prompt_tokens = static_cast<int>(prompt);
    r.output_tokens = static_cast<int>(output);
    out.requests.push_back(r);
  }
  if (!have_header) {
    return false;
  }
  std::sort(out.requests.begin(), out.requests.end(),
            [](const TraceRequest& a, const TraceRequest& b) {
              return a.arrival_s < b.arrival_s;
            });
  // Ids must be unique: downstream consumers (shard merging, report joins) key
  // on them, and the serving/cluster layers DZ_CHECK the invariant.
  std::vector<int> ids;
  ids.reserve(out.requests.size());
  for (const auto& r : out.requests) {
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    return false;
  }
  return true;
}

bool WriteTraceFile(const std::string& path, const Trace& trace) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text = TraceToJsonl(trace);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

bool ReadTraceFile(const std::string& path, Trace& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string text(static_cast<size_t>(std::max(0L, size)), '\0');
  const size_t read = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (read != text.size()) {
    return false;
  }
  return TraceFromJsonl(text, out);
}

}  // namespace dz
