// Multi-variant serving traces (paper §6.1 "Workload traces").
//
// The paper drives its serving experiments with LMSys Chatbot-Arena prompts/responses
// and uses Azure serverless-function traces as a proxy for bursty multi-model traffic.
// Neither dataset ships offline, so this module generates statistically matched
// synthetic traces:
//   * kUniform — all variants equally popular,
//   * kZipf    — popularity ∝ 1/rank^α (paper uses α = 1.5),
//   * kAzure   — heavy-tailed popularity with Markov-modulated on/off bursts per model,
//                matching the sporadic/dense invocation patterns in paper Fig. 1.
// Prompt / output lengths follow clamped lognormals fit to LMSys-like conversational
// traffic (~ hundreds of prompt tokens, ~200 output tokens).
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace dz {

struct TraceRequest {
  int id = 0;
  int model_id = 0;       // which fine-tuned variant
  double arrival_s = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 0;
};

struct Trace {
  std::vector<TraceRequest> requests;  // sorted by arrival
  int n_models = 0;
  double duration_s = 0.0;

  double TotalRequests() const { return static_cast<double>(requests.size()); }
  // Requests per model (histogram over model ids).
  std::vector<int> ModelCounts() const;
  // True when requests are non-decreasing in arrival time.
  bool IsArrivalSorted() const;
  // DZ_CHECKs the trace invariants every producer must uphold: arrival-sorted,
  // model ids in [0, n_models), and ids unique. Splitting/merging preserves them.
  void CheckWellFormed() const;
};

enum class PopularityDist {
  kUniform,
  kZipf,
  kAzure,
};

const char* PopularityDistName(PopularityDist dist);

struct TraceConfig {
  int n_models = 32;
  double arrival_rate = 1.0;  // aggregate Poisson rate (req/s), as in §6.1
  double duration_s = 300.0;
  PopularityDist dist = PopularityDist::kZipf;
  double zipf_alpha = 1.5;
  // Azure-like burst parameters.
  double burst_on_mean_s = 20.0;
  double burst_off_mean_s = 60.0;
  double burst_boost = 20.0;  // rate multiplier while a model is bursting
  // Length distributions (lognormal, clamped).
  double prompt_mean_tokens = 160.0;
  double prompt_sigma = 0.8;
  int prompt_max_tokens = 1024;
  double output_mean_tokens = 200.0;
  double output_sigma = 0.7;
  int output_max_tokens = 768;
  uint64_t seed = 0xDECAF;
};

Trace GenerateTrace(const TraceConfig& config);

// Invocation counts per model per time window — regenerates the paper's Fig. 1 view.
std::vector<std::vector<int>> InvocationMatrix(const Trace& trace, double window_s);

// All model ids ordered by descending request count (stable: ties keep id order).
// The head of this list is the "operator-known hot set" used as single-engine
// prefetch warm hints; a cluster derives hints from the router instead.
std::vector<int> ModelsByPopularity(const Trace& trace);
// The k most popular model ids (clamped to n_models).
std::vector<int> ModelsByPopularity(const Trace& trace, int k);

// Splits `trace` into `n_shards` sub-traces; request i goes to shard_of[i]
// (shard_of is aligned with trace.requests and every value is in [0, n_shards)).
// Requests keep their original ids and absolute arrival times, and each shard
// inherits the trace's n_models/duration, so per-shard replay stays on the global
// clock and shard reports can be merged back by id. Relative order is preserved,
// hence every shard is arrival-sorted by construction (checked).
std::vector<Trace> SplitTrace(const Trace& trace, const std::vector<int>& shard_of,
                              int n_shards);

// Merges arrival-sorted shards (as produced by SplitTrace) back into one
// arrival-sorted trace with the original ids untouched. All shards must agree on
// n_models; the merge is stable across shards at equal arrival times.
Trace MergeTraces(const std::vector<Trace>& shards);

}  // namespace dz

#endif  // SRC_WORKLOAD_TRACE_H_
