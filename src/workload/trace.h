// Multi-variant serving traces (paper §6.1 "Workload traces").
//
// The paper drives its serving experiments with LMSys Chatbot-Arena prompts/responses
// and uses Azure serverless-function traces as a proxy for bursty multi-model traffic.
// Neither dataset ships offline, so this module generates statistically matched
// synthetic traces:
//   * kUniform — all variants equally popular,
//   * kZipf    — popularity ∝ 1/rank^α (paper uses α = 1.5),
//   * kAzure   — heavy-tailed popularity with Markov-modulated on/off bursts per model,
//                matching the sporadic/dense invocation patterns in paper Fig. 1.
// Prompt / output lengths follow clamped lognormals fit to LMSys-like conversational
// traffic (~ hundreds of prompt tokens, ~200 output tokens).
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace dz {

// Service-level objective class a tenant buys for a request. Classes carry
// per-class TTFT/E2E deadlines (SloSpec); the scheduler policies and the
// per-class attainment metrics are keyed on them.
enum class SloClass {
  kInteractive = 0,  // chat-style: tight TTFT, tight E2E
  kStandard = 1,     // default API traffic
  kBatch = 2,        // offline/bulk: loose deadlines, lowest priority
};
inline constexpr int kNumSloClasses = 3;

// Stable CLI/report name ("interactive", "standard", "batch").
const char* SloClassName(SloClass slo);
// Parses the names printed by SloClassName. Returns false on unknown names.
bool ParseSloClass(const std::string& name, SloClass& out);

// Per-class deadlines, in simulated seconds from arrival.
struct SloSpec {
  double ttft_s = 30.0;  // first token due within this
  double e2e_s = 120.0;  // full response due within this
};

// Deadlines for all classes, indexed by SloClass. Defaults follow the paper's
// §6.1 SLO scales: interactive is an order tighter than batch.
struct SloSpecs {
  SloSpec per_class[kNumSloClasses] = {
      {5.0, 60.0},     // kInteractive
      {30.0, 120.0},   // kStandard
      {120.0, 600.0},  // kBatch
  };
  const SloSpec& Of(SloClass slo) const {
    return per_class[static_cast<int>(slo)];
  }
};

struct TraceRequest {
  int id = 0;
  int model_id = 0;       // which fine-tuned variant
  int tenant_id = 0;      // who is asking (0 in single-tenant traces)
  SloClass slo = SloClass::kStandard;  // what they were promised
  double arrival_s = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 0;
  // Original arrival of a re-enqueued (crash-rerouted / drain-migrated)
  // request. The cluster fault layer re-offers such requests with arrival_s
  // set to the re-enqueue time (placement and engines require non-decreasing
  // arrivals), but the SLO clock keeps running from the request's first
  // arrival. < 0 (the default) means "never re-enqueued": SloArrival() then
  // equals arrival_s, so plain traces are unaffected. Never serialized —
  // retries exist only inside a cluster run.
  double first_arrival_s = -1.0;

  // The arrival the request's SLO deadlines (and latency metrics) are
  // measured from: the original arrival for re-enqueued requests, arrival_s
  // otherwise.
  double SloArrival() const {
    return first_arrival_s >= 0.0 ? first_arrival_s : arrival_s;
  }
};

struct Trace {
  std::vector<TraceRequest> requests;  // sorted by arrival
  int n_models = 0;
  int n_tenants = 1;
  double duration_s = 0.0;

  double TotalRequests() const { return static_cast<double>(requests.size()); }
  // Requests per model (histogram over model ids).
  std::vector<int> ModelCounts() const;
  // Requests per tenant (histogram over tenant ids).
  std::vector<int> TenantCounts() const;
  // True when requests are non-decreasing in arrival time.
  bool IsArrivalSorted() const;
  // DZ_CHECKs the trace invariants every producer must uphold: arrival-sorted,
  // model ids in [0, n_models), tenant ids in [0, n_tenants), valid SLO class,
  // and ids unique. Splitting/merging preserves them.
  void CheckWellFormed() const;
};

enum class PopularityDist {
  kUniform,
  kZipf,
  kAzure,
};

const char* PopularityDistName(PopularityDist dist);

// Multi-tenant traffic shape layered on top of the per-model popularity
// distribution (paper Fig. 1 regime: bursty traffic from many parties with
// different promises). Scenarios modulate each tenant's arrival rate over time:
//   * kSteady     — constant per-tenant rates (tenant split only),
//   * kDiurnal    — all tenants follow a sinusoidal day/night rate curve,
//   * kFlashCrowd — one tenant's rate is boosted `flash_boost`× inside a window
//                   while everyone else stays steady,
//   * kHeavyTail  — steady rates, but tenant shares follow a Zipf over tenant
//                   rank (a few whales, many minnows).
enum class TenantScenario {
  kSteady,
  kDiurnal,
  kFlashCrowd,
  kHeavyTail,
};

// Stable CLI/report name ("steady", "diurnal", "flash-crowd", "heavy-tail").
const char* TenantScenarioName(TenantScenario scenario);
// Parses the names printed by TenantScenarioName. Returns false on unknowns.
bool ParseTenantScenario(const std::string& name, TenantScenario& out);

struct TenantConfig {
  int n_tenants = 1;
  TenantScenario scenario = TenantScenario::kSteady;
  // Tenant share skew: share ∝ 1/(rank+1)^heavy_tail_alpha (0 = equal shares).
  // kHeavyTail defaults it to 1.2 when left at 0 (see EffectiveHeavyTailAlpha).
  double heavy_tail_alpha = 0.0;
  // kDiurnal: rate multiplier 1 + amplitude·sin(2π·t/period), clamped at ≥ 0.
  double diurnal_period_s = 240.0;
  double diurnal_amplitude = 0.8;  // in [0, 1]
  // kFlashCrowd: `flash_tenant`'s rate × flash_boost during
  // [flash_start_frac, flash_start_frac + flash_duration_frac) × duration_s.
  int flash_tenant = 0;
  double flash_start_frac = 0.4;
  double flash_duration_frac = 0.25;
  double flash_boost = 8.0;
  // SLO class mix, identical across tenants: fractions of interactive and batch
  // requests (the rest is standard). Both 0 keeps every request kStandard.
  double interactive_frac = 0.0;
  double batch_frac = 0.0;

  // True when any multi-tenant machinery is active. False (the default) keeps
  // GenerateTrace on the single-tenant code path, bit-identical to the
  // pre-tenant generator (test-enforced).
  bool Enabled() const {
    return n_tenants > 1 || scenario != TenantScenario::kSteady ||
           heavy_tail_alpha > 0.0 || interactive_frac > 0.0 || batch_frac > 0.0;
  }
};

struct TraceConfig {
  int n_models = 32;
  double arrival_rate = 1.0;  // aggregate Poisson rate (req/s), as in §6.1
  double duration_s = 300.0;
  PopularityDist dist = PopularityDist::kZipf;
  double zipf_alpha = 1.5;
  // Azure-like burst parameters.
  double burst_on_mean_s = 20.0;
  double burst_off_mean_s = 60.0;
  double burst_boost = 20.0;  // rate multiplier while a model is bursting
  // Length distributions (lognormal, clamped).
  double prompt_mean_tokens = 160.0;
  double prompt_sigma = 0.8;
  int prompt_max_tokens = 1024;
  double output_mean_tokens = 200.0;
  double output_sigma = 0.7;
  int output_max_tokens = 768;
  uint64_t seed = 0xDECAF;
  // Multi-tenant layering (single tenant, steady, all-standard by default).
  TenantConfig tenants;
};

Trace GenerateTrace(const TraceConfig& config);

// The heavy-tail exponent the generator actually uses: heavy_tail_alpha, or 1.2
// when the kHeavyTail scenario is selected with the exponent left at 0.
double EffectiveHeavyTailAlpha(const TenantConfig& config);

// Expected instantaneous arrival rate (req/s) of `tenant` at time `t` under the
// configured scenario — the envelope the generated trace's per-window counts
// must match (test-enforced within sampling tolerance).
double TenantRateAt(const TraceConfig& config, int tenant, double t);

// Invocation counts per tenant per time window (the tenant-axis sibling of
// InvocationMatrix), for envelope checks and the fairness bench.
std::vector<std::vector<int>> TenantInvocationMatrix(const Trace& trace,
                                                     double window_s);

// Invocation counts per model per time window — regenerates the paper's Fig. 1 view.
std::vector<std::vector<int>> InvocationMatrix(const Trace& trace, double window_s);

// All model ids ordered by descending request count (stable: ties keep id order).
// The head of this list is the "operator-known hot set" used as single-engine
// prefetch warm hints; a cluster derives hints from the router instead.
std::vector<int> ModelsByPopularity(const Trace& trace);
// The k most popular model ids (clamped to n_models).
std::vector<int> ModelsByPopularity(const Trace& trace, int k);

// Splits `trace` into `n_shards` sub-traces; request i goes to shard_of[i]
// (shard_of is aligned with trace.requests and every value is in [0, n_shards)).
// Requests keep their original ids and absolute arrival times, and each shard
// inherits the trace's n_models/duration, so per-shard replay stays on the global
// clock and shard reports can be merged back by id. Relative order is preserved,
// hence every shard is arrival-sorted by construction (checked).
std::vector<Trace> SplitTrace(const Trace& trace, const std::vector<int>& shard_of,
                              int n_shards);

// Merges arrival-sorted shards (as produced by SplitTrace) back into one
// arrival-sorted trace with the original ids untouched. All shards must agree on
// n_models; the merge is stable across shards at equal arrival times.
Trace MergeTraces(const std::vector<Trace>& shards);

}  // namespace dz

#endif  // SRC_WORKLOAD_TRACE_H_
