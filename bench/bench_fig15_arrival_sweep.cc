// Reproduces paper Fig. 15: mean E2E latency and TTFT vs arrival rate for compressed
// delta serving, full-model (vLLM+SCB) serving, and LoRA adapter serving at ranks 16
// and 64. Expected shape: full-model swapping departs to 100s+ almost immediately;
// LoRA ≤ compressed delta < full model across the sweep.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1515;
  Banner("Figure 15 — latency vs arrival rate by artifact kind", "Fig. 15", seed);

  EngineConfig node;
  node.exec.shape = ModelShape::Llama7B();
  node.exec.gpu = GpuSpec::A800();
  node.exec.tp = 1;
  node.max_concurrent_deltas = 8;

  Table e2e({"rate (req/s)", "Compressed Delta", "Full Model", "LoRA r=16", "LoRA r=64"});
  Table ttft({"rate (req/s)", "Compressed Delta", "Full Model", "LoRA r=16", "LoRA r=64"});
  for (double rate : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    TraceConfig tc;
    tc.n_models = 16;
    tc.arrival_rate = rate;
    tc.duration_s = 150.0;
    tc.dist = PopularityDist::kZipf;
    tc.seed = seed;
    const Trace trace = GenerateTrace(tc);

    EngineConfig delta_cfg = node;
    const ServeReport r_delta = MakeDeltaZipEngine(delta_cfg)->Serve(trace);
    EngineConfig full_cfg = node;
    full_cfg.artifact = ArtifactKind::kFullModel;
    const ServeReport r_full = MakeVllmScbEngine(full_cfg)->Serve(trace);
    EngineConfig l16 = node;
    l16.artifact = ArtifactKind::kLoraAdapter;
    l16.lora_rank = 16;
    const ServeReport r_l16 = MakeDeltaZipEngine(l16)->Serve(trace);
    EngineConfig l64 = node;
    l64.artifact = ArtifactKind::kLoraAdapter;
    l64.lora_rank = 64;
    const ServeReport r_l64 = MakeDeltaZipEngine(l64)->Serve(trace);

    e2e.AddRow({Table::Num(rate, 2), Table::Num(r_delta.MeanE2e(), 2),
                Table::Num(r_full.MeanE2e(), 2), Table::Num(r_l16.MeanE2e(), 2),
                Table::Num(r_l64.MeanE2e(), 2)});
    ttft.AddRow({Table::Num(rate, 2), Table::Num(r_delta.MeanTtft(), 3),
                 Table::Num(r_full.MeanTtft(), 3), Table::Num(r_l16.MeanTtft(), 3),
                 Table::Num(r_l64.MeanTtft(), 3)});
  }
  std::printf("Mean E2E latency (s):\n\n%s\n", e2e.ToAscii().c_str());
  std::printf("Mean TTFT (s):\n\n%s\n", ttft.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 15): full-model swapping saturates first;\n"
              "LoRA is lightest; compressed deltas sit slightly above LoRA.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
