// Reproduces paper Fig. 12: average end-to-end latency and TTFT for vLLM+SCB vs
// DeltaZip (N=8, N=12) on the Fig. 11 grid. Expected shape: 1.6-16x E2E improvements
// and even larger TTFT improvements (queuing collapses when variants share batches).
#include "bench/bench_common.h"

namespace dz {
namespace {

EngineConfig BaseEngineConfig() {
  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama13B();
  cfg.exec.gpu = GpuSpec::A800();
  cfg.exec.tp = 4;
  cfg.max_batch = 32;
  return cfg;
}

void Run() {
  const uint64_t seed = 1212;
  Banner("Figure 12 — average E2E latency and TTFT", "Fig. 12", seed);

  Table e2e({"dist", "rate", "vLLM+SCB (s)", "DZ N=8 (s)", "DZ N=12 (s)"});
  Table ttft({"dist", "rate", "vLLM+SCB (s)", "DZ N=8 (s)", "DZ N=12 (s)"});
  for (PopularityDist dist :
       {PopularityDist::kAzure, PopularityDist::kUniform, PopularityDist::kZipf}) {
    for (double rate : {0.5, 1.0}) {
      TraceConfig tc;
      tc.n_models = 32;
      tc.arrival_rate = rate;
      tc.duration_s = 300.0;
      tc.dist = dist;
      tc.seed = seed;
      const Trace trace = GenerateTrace(tc);

      EngineConfig scb = BaseEngineConfig();
      scb.artifact = ArtifactKind::kFullModel;
      const ServeReport r_scb = MakeVllmScbEngine(scb)->Serve(trace);
      EngineConfig dz8 = BaseEngineConfig();
      dz8.max_concurrent_deltas = 8;
      const ServeReport r8 = MakeDeltaZipEngine(dz8)->Serve(trace);
      EngineConfig dz12 = BaseEngineConfig();
      dz12.max_concurrent_deltas = 12;
      const ServeReport r12 = MakeDeltaZipEngine(dz12)->Serve(trace);

      e2e.AddRow({PopularityDistName(dist), Table::Num(rate, 1),
                  Table::Num(r_scb.MeanE2e(), 1), Table::Num(r8.MeanE2e(), 1),
                  Table::Num(r12.MeanE2e(), 1)});
      ttft.AddRow({PopularityDistName(dist), Table::Num(rate, 1),
                   Table::Num(r_scb.MeanTtft(), 1), Table::Num(r8.MeanTtft(), 1),
                   Table::Num(r12.MeanTtft(), 1)});
    }
  }
  std::printf("Average E2E latency:\n\n%s\n", e2e.ToAscii().c_str());
  std::printf("Average TTFT:\n\n%s\n", ttft.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 12): DeltaZip improves E2E by 1.6-16x and\n"
              "TTFT by more; N has visible impact under load.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
