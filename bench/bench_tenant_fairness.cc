// Multi-tenant SLO/fairness sweep (beyond the paper, which serves every request
// FCFS in §5.4): scheduler policies × tenant traffic scenarios on the DeltaZip
// engine. For each scenario the sweep compares
//   * fcfs          — the paper's arrival-order scheduler (baseline),
//   * priority      — strict priority by SLO class + class preemption,
//   * dwfq          — deficit-weighted fair queueing across tenants + class
//                     preemption,
//   * fcfs+shed     — FCFS plus admission control (deadline-dead requests are
//                     shed instead of occupying queue slots and KV).
// Expected shape: under the flash-crowd scenario the class-aware policies hold
// interactive-class SLO attainment well above FCFS at near-unchanged aggregate
// token throughput (the work is reordered, not removed), and DWFQ keeps the
// Jain fairness index over per-tenant served tokens near 1 while the flooding
// tenant's tags race ahead.
//
// `--quick 1` runs the flash-crowd scenario only on a shorter trace (CI smoke).
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serving/engine.h"
#include "src/util/stats.h"

namespace dz {
namespace {

struct PolicyVariant {
  const char* label;
  SchedPolicy policy;
  bool class_preemption;
  bool admission_control;
};

double ClassP90Ttft(const ServeReport& r, SloClass slo) {
  std::vector<double> ttfts;
  for (const auto& rec : r.records) {
    if (rec.slo == slo) {
      ttfts.push_back(rec.Ttft());
    }
  }
  return ttfts.empty() ? 0.0 : Percentile(ttfts, 90);
}

// Returns false when the flash-crowd acceptance gate fails (other scenarios
// are informational and always pass).
bool RunScenario(TenantScenario scenario, bool quick, uint64_t seed) {
  TraceConfig tc;
  tc.n_models = 32;
  tc.arrival_rate = 6.0;
  tc.duration_s = quick ? 150.0 : 400.0;
  tc.dist = PopularityDist::kAzure;
  tc.output_mean_tokens = 120.0;
  tc.output_max_tokens = 400;
  tc.seed = seed;
  tc.tenants.n_tenants = 6;
  tc.tenants.scenario = scenario;
  tc.tenants.interactive_frac = 0.25;
  tc.tenants.batch_frac = 0.35;
  tc.tenants.flash_boost = 25.0;
  const Trace trace = GenerateTrace(tc);

  EngineConfig base;
  base.exec.shape = ModelShape::Llama13B();
  base.exec.gpu = GpuSpec::A800();
  base.exec.tp = 4;
  base.max_concurrent_deltas = 8;
  // One worker serving interactive chat: deadlines an order tighter than the
  // library defaults, so a flash crowd actually endangers them.
  base.scheduler.slo.per_class[static_cast<int>(SloClass::kInteractive)] = {1.0, 20.0};
  base.scheduler.slo.per_class[static_cast<int>(SloClass::kStandard)] = {10.0, 90.0};

  const std::vector<PolicyVariant> variants = {
      {"fcfs", SchedPolicy::kFcfs, false, false},
      {"priority", SchedPolicy::kPriority, true, false},
      {"dwfq", SchedPolicy::kDwfq, true, false},
      {"fcfs+shed", SchedPolicy::kFcfs, false, true},
  };

  std::printf("--- scenario %s (%zu reqs, %d tenants) ---\n",
              TenantScenarioName(scenario), trace.requests.size(), trace.n_tenants);
  Table t({"policy", "att inter", "att std", "att batch", "Jain", "shed i/s/b",
           "tok/s", "P90 TTFT inter (s)"});
  double fcfs_inter = 0.0;
  double fcfs_tokps = 0.0;
  double best_inter = 0.0;
  double best_tokps = 0.0;
  for (const PolicyVariant& v : variants) {
    EngineConfig cfg = base;
    cfg.scheduler.policy = v.policy;
    cfg.scheduler.class_preemption = v.class_preemption;
    cfg.scheduler.admission_control = v.admission_control;
    const ServeReport r = MakeDeltaZipEngine(cfg)->Serve(trace);
    t.AddRow({v.label, Pct(r.ClassAttainment(SloClass::kInteractive)),
              Pct(r.ClassAttainment(SloClass::kStandard)),
              Pct(r.ClassAttainment(SloClass::kBatch)),
              Table::Num(r.JainFairnessIndex(), 3),
              std::to_string(r.shed_by_class[0]) + "/" +
                  std::to_string(r.shed_by_class[1]) + "/" +
                  std::to_string(r.shed_by_class[2]),
              Table::Num(r.TokenThroughput(), 1),
              Table::Num(ClassP90Ttft(r, SloClass::kInteractive), 3)});
    const double inter = r.ClassAttainment(SloClass::kInteractive);
    if (v.policy == SchedPolicy::kFcfs && !v.admission_control) {
      fcfs_inter = inter;
      fcfs_tokps = r.TokenThroughput();
    } else if (!v.admission_control && inter > best_inter) {
      best_inter = inter;
      best_tokps = r.TokenThroughput();
    }
  }
  std::printf("%s\n", t.ToAscii().c_str());
  if (scenario == TenantScenario::kFlashCrowd) {
    // The acceptance gate this bench exists for: class-aware scheduling must
    // beat FCFS on interactive attainment without giving up aggregate tok/s.
    // A failed gate fails the process, so the CI smoke run actually bites.
    const bool attain_ok = best_inter > fcfs_inter;
    const bool tokps_ok = best_tokps >= 0.9 * fcfs_tokps;
    std::printf("flash-crowd verdict: interactive attainment %.3f -> %.3f, "
                "tok/s %.1f -> %.1f (%s)\n\n",
                fcfs_inter, best_inter, fcfs_tokps, best_tokps,
                attain_ok && tokps_ok ? "class-aware scheduling wins"
                                      : "NO IMPROVEMENT — regression!");
    return attain_ok && tokps_ok;
  }
  std::printf("\n");
  return true;
}

int Run(bool quick) {
  const uint64_t seed = 2121;
  Banner("Tenant fairness — SLO classes x scheduler policies", "beyond §5.4", seed);
  std::vector<TenantScenario> scenarios = {TenantScenario::kFlashCrowd};
  if (!quick) {
    scenarios.push_back(TenantScenario::kDiurnal);
    scenarios.push_back(TenantScenario::kHeavyTail);
  }
  bool ok = true;
  for (TenantScenario s : scenarios) {
    ok = RunScenario(s, quick, seed) && ok;
  }
  std::printf("Expected shape: priority/dwfq lift interactive-class attainment over\n"
              "fcfs under bursty multi-tenant load at <=10%% aggregate tok/s cost;\n"
              "admission control converts hopeless requests into per-class sheds.\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  return dz::Run(dz::ParseQuickFlag(argc, argv));
}
