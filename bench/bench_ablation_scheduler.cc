// Scheduler ablation (paper §5.4 design choices): strict FCFS vs +skip-the-line vs
// +preemption, and the OBS-vs-RTN compression ablation (Alg. 1's error propagation).
// Expected shape: skip-the-line is the big batching win; preemption trims the tail it
// creates; OBS beats round-to-nearest on layer output error.
#include "bench/bench_common.h"
#include "src/compress/obs.h"
#include "src/util/stats.h"

namespace dz {
namespace {

void SchedulerPart(uint64_t seed) {
  // Single saturated A800 so scheduling policy is the binding constraint.
  TraceConfig tc;
  tc.n_models = 20;
  tc.arrival_rate = 2.0;
  tc.duration_s = 150.0;
  tc.dist = PopularityDist::kZipf;
  tc.zipf_alpha = 1.8;
  tc.output_mean_tokens = 300;
  tc.output_max_tokens = 600;
  tc.seed = seed;
  const Trace trace = GenerateTrace(tc);

  EngineConfig base;
  base.exec.shape = ModelShape::Llama13B();
  base.exec.gpu = GpuSpec::A800();
  base.exec.tp = 1;
  base.max_batch = 16;
  base.max_concurrent_deltas = 4;

  Table table({"policy", "thr (req/s)", "mean E2E (s)", "mean TTFT (s)", "P90 TTFT (s)"});
  struct Policy {
    const char* name;
    bool skip;
    bool preempt;
  };
  for (const Policy p : {Policy{"strict FCFS", false, false},
                         Policy{"+skip-the-line", true, false},
                         Policy{"+preemption", true, true}}) {
    EngineConfig cfg = base;
    cfg.skip_the_line = p.skip;
    cfg.preemption = p.preempt;
    const ServeReport r = MakeDeltaZipEngine(cfg)->Serve(trace);
    table.AddRow({p.name, Table::Num(r.ThroughputRps(), 3), Table::Num(r.MeanE2e(), 1),
                  Table::Num(r.MeanTtft(), 1), Table::Num(Percentile(r.Ttfts(), 90), 1)});
  }
  std::printf("scheduling policies (13B, 1xA800, zipf-1.8, 2 req/s):\n\n%s\n",
              table.ToAscii().c_str());
}

void ObsPart(uint64_t seed) {
  Rng rng(seed);
  const Matrix w = Matrix::Random(64, 128, rng, 0.02f);
  const Matrix basis = Matrix::Random(16, 128, rng, 1.0f);
  const Matrix coef = Matrix::Random(256, 16, rng, 1.0f);
  const Matrix x = Matmul(coef, basis);  // correlated calibration activations

  Table table({"bits", "solver", "layer output MSE"});
  for (int bits : {4, 2}) {
    ObsConfig cfg;
    cfg.bits = bits;
    cfg.prune24 = true;
    const double err_obs = LayerOutputError(w, ObsCompress(w, x, cfg), x);
    const double err_rtn = LayerOutputError(w, RtnCompress(w, cfg), x);
    table.AddRow({std::to_string(bits), "OBS (Alg. 1)", Table::Num(err_obs, 6)});
    table.AddRow({std::to_string(bits), "round-to-nearest", Table::Num(err_rtn, 6)});
  }
  std::printf("compression-solver ablation (Eq. 1 objective, lower is better):\n\n%s\n",
              table.ToAscii().c_str());
}

void Run() {
  const uint64_t seed = 505;
  Banner("Ablation — scheduler policies & OBS solver", "§5.4 / §4.2", seed);
  SchedulerPart(seed);
  ObsPart(seed);
  std::printf("Expected shape: each scheduler stage improves throughput/tails; OBS\n"
              "beats RTN at every bit width on correlated activations.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
