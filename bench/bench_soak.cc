// Million-request soak of the serving stack through the unified metrics layer:
// streams a multi-tenant trace through an 8-GPU cluster in windowed segments,
// emits one merged MetricsSnapshot per window as a JSONL time series
// (p50/p99/p999 per SLO class from the latency histograms), and gates on
// process health across the run:
//   * RSS stability — resident memory of later windows must stay within a
//     tolerance band of the early-window baseline (leaks in the registry,
//     engines, or store would compound across ~10^6 requests);
//   * latency-histogram drift — per-window p99 E2E must stay within a factor
//     of the early-window baseline (windows are statistically identical, so
//     sustained drift means state is leaking across Serve() calls).
// Exit code 1 on either gate failing, so CI can run it directly.
//
// Every worker additionally runs a flight recorder: a bounded TraceEvent ring
// (fixed memory, always-on) whose most recent merged contents are dumped as a
// Chrome trace JSON postmortem (`--flightrec-out`, default soak_flightrec.json)
// when a health gate trips — the "what was the cluster doing right before it
// went bad" view CI attaches as a failure artifact.
//
// `--quick` (CI smoke, ASan-friendly) still streams >= 1M requests; the full
// run is 5M. `--metrics-out <path>` selects the JSONL path, `--json <path>`
// writes the bench-summary JSON (dz-bench-v1 schema).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/router.h"
#include "src/metrics/metrics.h"
#include "src/obs/trace_export.h"

namespace dz {
namespace {

// Resident set size in MB from /proc/self/status (0 when unavailable, which
// disables the RSS gate — e.g. non-Linux dev machines).
double RssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0.0;
  }
  double rss_kb = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss_kb = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return rss_kb / 1024.0;
}

long long ParseCountFlag(int argc, char** argv, const char* flag, long long fallback) {
  const char* v = ParseStringFlag(argc, argv, flag);
  return v != nullptr ? std::strtoll(v, nullptr, 10) : fallback;
}

struct WindowResult {
  double completed = 0.0;
  double shed = 0.0;
  double rss_mb = 0.0;
  double p99_e2e_s = 0.0;
  double wall_s = 0.0;
};

void Run(int argc, char** argv) {
  const bool quick = ParseQuickFlag(argc, argv);
  const uint64_t seed = 909;
  Banner("Soak — 1M+ requests, 8-GPU cluster, windowed metrics time series",
         "observability layer", seed);

  // Window sizing: each window is an independent Serve() over a fresh trace
  // slice (engines and stores are per-call, so cross-window growth can only
  // come from leaks). 20 x 50k = 1M requests even in --quick; the full soak
  // runs 40 x 125k = 5M.
  const int n_windows =
      static_cast<int>(ParseCountFlag(argc, argv, "--windows", quick ? 20 : 40));
  const long long requests_per_window = ParseCountFlag(
      argc, argv, "--requests-per-window", quick ? 50000 : 125000);
  const char* metrics_path_flag = ParseStringFlag(argc, argv, "--metrics-out");
  const std::string metrics_path =
      metrics_path_flag != nullptr ? metrics_path_flag : "soak_metrics.jsonl";
  const char* flightrec_flag = ParseStringFlag(argc, argv, "--flightrec-out");
  const std::string flightrec_path =
      flightrec_flag != nullptr ? flightrec_flag : "soak_flightrec.json";
  // Flight-recorder ring per worker: 4096 events bound each worker's tracing
  // memory to ~hundreds of KB regardless of how many requests stream through.
  constexpr size_t kFlightRingCapacity = 4096;
  // Aggregate arrival rate an 8-GPU cluster absorbs without unbounded backlog
  // (the golden cluster scenario sustains 6 req/s; short outputs raise capacity).
  const double rate = 24.0;
  const int n_gpus = 8;

  MetricsJsonlWriter writer(metrics_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "bench_soak: cannot open %s\n", metrics_path.c_str());
  }

  std::vector<WindowResult> windows;
  std::vector<TraceEvent> last_flight;  // most recent window's merged rings
  long long flight_dropped = 0;
  double cumulative_requests = 0.0;
  const SteadyTimer total_timer;
  for (int w = 0; w < n_windows; ++w) {
    TraceConfig tc;
    tc.n_models = 32;
    tc.arrival_rate = rate;
    tc.duration_s = static_cast<double>(requests_per_window) / rate;
    tc.dist = PopularityDist::kAzure;
    tc.output_mean_tokens = 30.0;
    tc.output_max_tokens = 120;
    tc.prompt_mean_tokens = 120.0;
    tc.seed = seed + static_cast<uint64_t>(w) * 7919;  // fresh slice per window
    // Multi-tenant traffic exercising all three SLO classes, so the per-class
    // latency histograms in every snapshot are populated.
    tc.tenants.n_tenants = 8;
    tc.tenants.scenario = TenantScenario::kHeavyTail;
    tc.tenants.interactive_frac = 0.2;
    tc.tenants.batch_frac = 0.2;

    ClusterConfig cfg;
    cfg.placer.n_gpus = n_gpus;
    cfg.placer.policy = PlacementPolicy::kDeltaAffinity;
    cfg.engine.exec.shape = ModelShape::Llama13B();
    cfg.engine.exec.gpu = GpuSpec::A800();
    cfg.engine.exec.tp = 4;
    cfg.engine.max_concurrent_deltas = 8;
    cfg.engine.scheduler.policy = SchedPolicy::kPriority;
    cfg.engine.scheduler.slo = SloSpecs();
    cfg.engine.tracing.enabled = true;
    cfg.engine.tracing.ring_capacity = kFlightRingCapacity;

    const SteadyTimer window_timer;
    const Trace trace = GenerateTrace(tc);
    const ClusterReport report = Cluster(cfg).Serve(trace);
    // Postmortem view: keep only the most recent window's merged rings (a gate
    // trip dumps "what the cluster was doing right before the end").
    last_flight = report.MergedTraceEvents();
    flight_dropped = report.merged.trace_events_dropped;

    WindowResult res;
    res.wall_s = window_timer.Seconds();
    res.completed = static_cast<double>(report.merged.records.size());
    res.shed = static_cast<double>(report.merged.TotalShed());
    res.rss_mb = RssMb();
    const LogHistogram* e2e =
        report.merged.metrics.Hist("latency.e2e_s", {{"class", "standard"}});
    res.p99_e2e_s = e2e != nullptr ? e2e->Quantile(0.99) : 0.0;
    cumulative_requests += static_cast<double>(trace.requests.size());
    windows.push_back(res);

    // One JSONL line per window: the merged cluster snapshot plus soak-level
    // derived health values.
    MetricsSnapshot snap = report.merged.metrics;
    snap.SetValue("soak.rss_mb", MetricKind::kGauge, res.rss_mb);
    snap.SetValue("soak.window_wall_s", MetricKind::kGauge, res.wall_s);
    snap.SetValue("soak.requests.cumulative", MetricKind::kCounter,
                  cumulative_requests);
    snap.sim_time_s = static_cast<double>(w) * tc.duration_s + report.makespan_s();
    writer.Append(snap, {{"window", std::to_string(w)},
                         {"engine", report.merged.engine_name}});

    std::printf(
        "  window %2d/%d: %lld reqs (%.0f served, %.0f shed), p99 E2E %.2fs, "
        "RSS %.1f MB, %.1fs wall\n",
        w + 1, n_windows, static_cast<long long>(trace.requests.size()),
        res.completed, res.shed, res.p99_e2e_s, res.rss_mb, res.wall_s);
    std::fflush(stdout);
  }

  // ---- health gates -------------------------------------------------------
  // Baseline = worst (max) of the first quarter of windows: the allocator is
  // still warming up there, so using the max keeps the gate about growth, not
  // about steady-state noise.
  const size_t baseline_n = windows.size() >= 4 ? windows.size() / 4 : 1;
  double rss_baseline = 0.0;
  double p99_baseline = 0.0;
  for (size_t i = 0; i < baseline_n; ++i) {
    rss_baseline = std::max(rss_baseline, windows[i].rss_mb);
    p99_baseline = std::max(p99_baseline, windows[i].p99_e2e_s);
  }
  // Generous bands: ASan roughly doubles allocation overhead and arena reuse
  // is nondeterministic, so the gate only trips on sustained growth.
  const double rss_limit = rss_baseline * 1.35 + 64.0;
  const double p99_limit = p99_baseline * 2.5 + 1.0;
  bool ok = true;
  double rss_peak = 0.0;
  double p99_peak = 0.0;
  double total_completed = 0.0;
  double total_shed = 0.0;
  for (size_t i = 0; i < windows.size(); ++i) {
    rss_peak = std::max(rss_peak, windows[i].rss_mb);
    p99_peak = std::max(p99_peak, windows[i].p99_e2e_s);
    total_completed += windows[i].completed;
    total_shed += windows[i].shed;
    if (i >= baseline_n && windows[i].rss_mb > rss_limit) {
      std::fprintf(stderr,
                   "bench_soak: FAIL rss growth: window %zu RSS %.1f MB > limit "
                   "%.1f MB (baseline %.1f)\n",
                   i, windows[i].rss_mb, rss_limit, rss_baseline);
      ok = false;
    }
    if (i >= baseline_n && windows[i].p99_e2e_s > p99_limit) {
      std::fprintf(stderr,
                   "bench_soak: FAIL latency drift: window %zu p99 E2E %.2fs > "
                   "limit %.2fs (baseline %.2f)\n",
                   i, windows[i].p99_e2e_s, p99_limit, p99_baseline);
      ok = false;
    }
  }
  const double total_wall = total_timer.Seconds();

  Table summary({"metric", "value"});
  summary.AddRow({"windows", std::to_string(n_windows)});
  summary.AddRow({"requests streamed", Table::Num(cumulative_requests, 0)});
  summary.AddRow({"requests served", Table::Num(total_completed, 0)});
  summary.AddRow({"requests shed", Table::Num(total_shed, 0)});
  summary.AddRow({"throughput (req/s wall)",
                  Table::Num(cumulative_requests / std::max(total_wall, 1e-9), 0)});
  summary.AddRow({"RSS baseline/peak (MB)", Table::Num(rss_baseline, 1) + " / " +
                                                Table::Num(rss_peak, 1)});
  summary.AddRow({"p99 E2E baseline/peak (s)", Table::Num(p99_baseline, 2) +
                                                   " / " + Table::Num(p99_peak, 2)});
  summary.AddRow({"metrics JSONL lines", std::to_string(writer.lines_written())});
  summary.AddRow({"flight recorder events (ring)",
                  std::to_string(last_flight.size()) + " (+" +
                      std::to_string(flight_dropped) + " overwritten)"});
  summary.AddRow({"health gates", ok ? "PASS" : "FAIL"});
  std::printf("\n%s\n", summary.ToAscii().c_str());

  if (const char* json_path = ParseStringFlag(argc, argv, "--json")) {
    BenchJson json("bench_soak");
    json.Add("requests_streamed", cumulative_requests, "req");
    json.Add("wall_throughput", cumulative_requests / std::max(total_wall, 1e-9),
             "req/s");
    json.Add("rss_peak", rss_peak, "MB", /*higher_is_better=*/false);
    json.Add("p99_e2e_peak", p99_peak, "s", /*higher_is_better=*/false);
    json.Add("health_ok", ok ? 1.0 : 0.0, "bool");
    json.WriteFile(json_path);
  }

  if (!ok) {
    // Postmortem: dump the flight-recorder rings of the last window so CI can
    // attach them (Perfetto-loadable) next to the failing log.
    if (WriteChromeTrace(flightrec_path, last_flight)) {
      std::fprintf(stderr,
                   "bench_soak: dumped %zu flight-recorder events (last window, "
                   "%lld overwritten) to %s\n",
                   last_flight.size(), flight_dropped, flightrec_path.c_str());
    } else {
      std::fprintf(stderr, "bench_soak: cannot write flight recorder dump to %s\n",
                   flightrec_path.c_str());
    }
    std::exit(1);
  }
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(argc, argv);
  return 0;
}
