// Reproduces paper Fig. 19: starvation handling — SLO attainment of E2E latency and
// TTFT with FCFS+skip-the-line alone vs with parent-finish preemption. Expected shape:
// preemption improves tail (P90) SLOs, especially for TTFT.
#include "bench/bench_common.h"
#include "src/util/stats.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1919;
  Banner("Figure 19 — preemption (starvation handling)", "Fig. 19", seed);

  TraceConfig tc;
  tc.n_models = 16;
  tc.arrival_rate = 2.0;  // high-but-stable load so skip-the-line can starve cold variants
  tc.duration_s = 150.0;
  tc.dist = PopularityDist::kZipf;
  tc.zipf_alpha = 2.0;  // hot variants keep skipping the line
  tc.output_mean_tokens = 300;
  tc.output_max_tokens = 600;
  tc.seed = seed;
  const Trace trace = GenerateTrace(tc);

  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama13B();
  cfg.exec.gpu = GpuSpec::A800();
  cfg.exec.tp = 1;  // a single saturated GPU, as in the paper's small-scale ablation
  cfg.max_batch = 16;
  cfg.max_concurrent_deltas = 4;
  cfg.preemption = false;
  const ServeReport r_skip = MakeDeltaZipEngine(cfg)->Serve(trace);
  cfg.preemption = true;
  const ServeReport r_preempt = MakeDeltaZipEngine(cfg)->Serve(trace);

  Table table({"SLO (s)", "E2E skip-only", "E2E +preempt", "TTFT skip-only",
               "TTFT +preempt"});
  for (double slo : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 150.0}) {
    table.AddRow({Table::Num(slo, 0), Pct(r_skip.SloAttainmentE2e(slo)),
                  Pct(r_preempt.SloAttainmentE2e(slo)), Pct(r_skip.SloAttainmentTtft(slo)),
                  Pct(r_preempt.SloAttainmentTtft(slo))});
  }
  std::printf("SLO attainment (%%):\n\n%s\n", table.ToAscii().c_str());

  const double p90_e2e_skip = Percentile(r_skip.E2es(), 90);
  const double p90_e2e_pre = Percentile(r_preempt.E2es(), 90);
  const double p90_ttft_skip = Percentile(r_skip.Ttfts(), 90);
  const double p90_ttft_pre = Percentile(r_preempt.Ttfts(), 90);
  int preemptions = 0;
  for (const auto& r : r_preempt.records) {
    preemptions += r.preemptions;
  }
  std::printf("P90 E2E: %.1fs -> %.1fs (%.1f%% better); P90 TTFT: %.1fs -> %.1fs "
              "(%.1f%% better); %d preemptions fired\n",
              p90_e2e_skip, p90_e2e_pre, 100.0 * (1.0 - p90_e2e_pre / p90_e2e_skip),
              p90_ttft_skip, p90_ttft_pre,
              100.0 * (1.0 - p90_ttft_pre / p90_ttft_skip), preemptions);
  std::printf("Expected shape (paper Fig. 19): preemption improves P90 SLOs (paper:\n"
              "18.8%% E2E, 49%% TTFT), with the bigger win on TTFT.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
