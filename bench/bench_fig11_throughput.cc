// Reproduces paper Fig. 11: serving throughput of vLLM+SCB vs DeltaZip (N=8, N=12)
// across arrival rates {0.5, 1.0} and model-popularity distributions
// {azure, uniform, zipf-1.5}, 32 variants of a 13B-class model on 4xA800 (TP=4).
// Expected shape: DeltaZip wins 2-12x, with the largest gains on skewed/bursty traces;
// the uniform high-rate corner narrows due to prefill cost.
#include "bench/bench_common.h"

namespace dz {
namespace {

EngineConfig BaseEngineConfig() {
  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama13B();
  cfg.exec.gpu = GpuSpec::A800();
  cfg.exec.tp = 4;
  cfg.max_batch = 32;
  return cfg;
}

void Run() {
  const uint64_t seed = 1111;
  Banner("Figure 11 — end-to-end serving throughput", "Fig. 11", seed);

  Table table({"dist", "rate", "vLLM+SCB (req/s)", "DZ N=8 (req/s)", "DZ N=12 (req/s)",
               "best speedup"});
  for (PopularityDist dist :
       {PopularityDist::kAzure, PopularityDist::kUniform, PopularityDist::kZipf}) {
    for (double rate : {0.5, 1.0}) {
      TraceConfig tc;
      tc.n_models = 32;
      tc.arrival_rate = rate;
      tc.duration_s = 300.0;
      tc.dist = dist;
      tc.seed = seed;
      const Trace trace = GenerateTrace(tc);

      EngineConfig scb = BaseEngineConfig();
      scb.artifact = ArtifactKind::kFullModel;
      const double thr_scb = MakeVllmScbEngine(scb)->Serve(trace).ThroughputRps();

      EngineConfig dz8 = BaseEngineConfig();
      dz8.max_concurrent_deltas = 8;
      const double thr_dz8 = MakeDeltaZipEngine(dz8)->Serve(trace).ThroughputRps();

      EngineConfig dz12 = BaseEngineConfig();
      dz12.max_concurrent_deltas = 12;
      const double thr_dz12 = MakeDeltaZipEngine(dz12)->Serve(trace).ThroughputRps();

      const double speedup = std::max(thr_dz8, thr_dz12) / std::max(thr_scb, 1e-9);
      table.AddRow({PopularityDistName(dist), Table::Num(rate, 1),
                    Table::Num(thr_scb, 3), Table::Num(thr_dz8, 3),
                    Table::Num(thr_dz12, 3), Table::Num(speedup, 1) + "x"});
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 11): DeltaZip 2-12x over vLLM+SCB; biggest\n"
              "gains on skewed (zipf/azure) traces, smaller under uniform high load.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
