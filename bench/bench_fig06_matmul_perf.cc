// Reproduces paper Fig. 6: (compressed) matrix-multiplication performance — normalized
// achieved FLOPs vs input size for fp16 / int1 / int2 / int4 / sparse-int4 weights.
// Expected shape: at small inputs (decode) all compressed formats beat fp16 in
// proportion to bytes moved; at large inputs (prefill) quantized-dense formats saturate
// at dense-fp16 peak while 2:4 sparse exceeds it (~1.6x).
#include "bench/bench_common.h"
#include "src/simgpu/kernel_model.h"

namespace dz {
namespace {

void Run() {
  Banner("Figure 6 — compressed matmul performance", "Fig. 6", 0);
  const KernelModel km{GpuSpec::A800()};
  const long long n = 4096;
  const long long k = 4096;
  const double peak = km.spec().peak_fp16_tflops * 1e12;

  const std::vector<WeightFormat> formats = {
      WeightFormat::kSparseInt4, WeightFormat::kFp16, WeightFormat::kInt1,
      WeightFormat::kInt2, WeightFormat::kInt4};

  std::vector<std::string> header = {"input size"};
  for (WeightFormat f : formats) {
    header.push_back(WeightFormatName(f));
  }
  Table table(header);
  for (long long m = 2; m <= 4096; m *= 2) {
    std::vector<std::string> row = {std::to_string(m)};
    for (WeightFormat f : formats) {
      const double norm = km.AchievedFlops(m, n, k, f) / peak;
      row.push_back(Table::Num(norm * 100.0, 1));
    }
    table.AddRow(row);
  }
  std::printf("normalized achieved FLOPs (%% of dense fp16 peak), W = %lldx%lld:\n\n%s\n",
              n, k, table.ToAscii().c_str());
  const double sparse_peak =
      km.AchievedFlops(4096, n, k, WeightFormat::kSparseInt4) / peak;
  std::printf("sparse-int4 at large input: %.2fx dense peak (paper: ~1.6x)\n",
              sparse_peak);
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
