// Reproduces paper Fig. 6: (compressed) matrix-multiplication performance — normalized
// achieved FLOPs vs input size for fp16 / int1 / int2 / int4 / sparse-int4 weights.
// Expected shape: at small inputs (decode) all compressed formats beat fp16 in
// proportion to bytes moved; at large inputs (prefill) quantized-dense formats saturate
// at dense-fp16 peak while 2:4 sparse exceeds it (~1.6x).
//
// A second section measures THIS library's CPU kernels (blocked kernel layer vs
// the retained naive reference) — dense NT, fused packed-quant, 2:4 sparse —
// and, with `--json <path>`, emits the numbers for the perf trajectory
// (tools/bench_json.sh; the CI gate compares the speedup ratios).
#include "bench/bench_common.h"
#include "src/simgpu/kernel_model.h"
#include "src/tensor/kernels.h"

namespace dz {
namespace {

void RunMeasuredKernels(bool quick, BenchJson* json) {
  std::printf("\nmeasured CPU kernels (blocked kernel layer vs naive reference):\n\n");
  Rng rng(606);
  const int k = quick ? 256 : 1024;
  const int n = quick ? 256 : 1024;
  Table table({"kernel", "m", "blocked GFLOP/s", "naive GFLOP/s", "speedup"});
  const auto add_row = [&](const std::string& kernel, int m, double flops,
                           double blocked_s, double naive_s) {
    table.AddRow({kernel, std::to_string(m), Table::Num(flops / blocked_s / 1e9, 2),
                  Table::Num(flops / naive_s / 1e9, 2),
                  Table::Num(naive_s / blocked_s, 2)});
    if (json != nullptr) {
      const std::string base = kernel + "_m" + std::to_string(m);
      json->Add(base + "_gflops", flops / blocked_s / 1e9, "GFLOP/s");
      json->Add(base + "_speedup", naive_s / blocked_s, "x");
    }
  };

  const double window = quick ? 0.05 : 0.2;
  for (int m : {quick ? 4 : 8, quick ? 64 : 512}) {
    const double flops = 2.0 * m * k * n;

    const Matrix x = Matrix::Random(m, k, rng, 1.0f);
    const Matrix w = Matrix::Random(n, k, rng, 0.02f);
    MatmulNT(x, w);  // warm
    const double blocked_s = TimeSecsStable([&] { MatmulNT(x, w); }, window);
    const double naive_s = TimeSecsStable([&] { kernels::ref::GemmNT(x, w); }, window);
    add_row("dense_nt", m, flops, blocked_s, naive_s);

    const auto q = PackedQuantMatrix::Quantize(w, 4, 128);
    q.MatmulNT(x);  // warm
    const double q_blocked_s = TimeSecsStable([&] { q.MatmulNT(x); }, window);
    const double q_naive_s =
        TimeSecsStable([&] { kernels::ref::QuantGemmNT(x, q); }, window);
    add_row("quant4_nt", m, flops, q_blocked_s, q_naive_s);

    const auto sp = Sparse24Matrix::Pack(MagnitudePrune24(w), 4, 128);
    sp.MatmulNT(x);  // warm
    const double s_blocked_s = TimeSecsStable([&] { sp.MatmulNT(x); }, window);
    const double s_naive_s =
        TimeSecsStable([&] { kernels::ref::Sparse24GemmNT(x, sp); }, window);
    // Counted at dense FLOPs so throughput is comparable with the dense rows.
    add_row("sparse24_nt", m, flops, s_blocked_s, s_naive_s);
  }
  std::printf("W = %dx%d (quant/sparse 4-bit, group 128)\n\n%s\n", n, k,
              table.ToAscii().c_str());
}

void Run(bool quick, const char* json_path) {
  Banner("Figure 6 — compressed matmul performance", "Fig. 6", 0);
  const KernelModel km{GpuSpec::A800()};
  const long long n = 4096;
  const long long k = 4096;
  const double peak = km.spec().peak_fp16_tflops * 1e12;

  const std::vector<WeightFormat> formats = {
      WeightFormat::kSparseInt4, WeightFormat::kFp16, WeightFormat::kInt1,
      WeightFormat::kInt2, WeightFormat::kInt4};

  std::vector<std::string> header = {"input size"};
  for (WeightFormat f : formats) {
    header.push_back(WeightFormatName(f));
  }
  Table table(header);
  for (long long m = 2; m <= 4096; m *= 2) {
    std::vector<std::string> row = {std::to_string(m)};
    for (WeightFormat f : formats) {
      const double norm = km.AchievedFlops(m, n, k, f) / peak;
      row.push_back(Table::Num(norm * 100.0, 1));
    }
    table.AddRow(row);
  }
  std::printf("normalized achieved FLOPs (%% of dense fp16 peak), W = %lldx%lld:\n\n%s\n",
              n, k, table.ToAscii().c_str());
  const double sparse_peak =
      km.AchievedFlops(4096, n, k, WeightFormat::kSparseInt4) / peak;
  std::printf("sparse-int4 at large input: %.2fx dense peak (paper: ~1.6x)\n",
              sparse_peak);

  BenchJson json("bench_fig06_matmul_perf");
  RunMeasuredKernels(quick, json_path != nullptr ? &json : nullptr);
  if (json_path != nullptr && json.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(dz::ParseQuickFlag(argc, argv), dz::ParseStringFlag(argc, argv, "--json"));
  return 0;
}
