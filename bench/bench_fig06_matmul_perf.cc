// Reproduces paper Fig. 6: (compressed) matrix-multiplication performance — normalized
// achieved FLOPs vs input size for fp16 / int1 / int2 / int4 / sparse-int4 weights.
// Expected shape: at small inputs (decode) all compressed formats beat fp16 in
// proportion to bytes moved; at large inputs (prefill) quantized-dense formats saturate
// at dense-fp16 peak while 2:4 sparse exceeds it (~1.6x).
//
// A second section measures THIS library's CPU kernels (blocked kernel layer vs
// the retained naive reference) — dense NT, fused packed-quant, 2:4 sparse —
// and, with `--json <path>`, emits the numbers for the perf trajectory
// (tools/bench_json.sh; the CI gate compares the speedup ratios).
#include "bench/bench_common.h"
#include "src/simgpu/kernel_model.h"
#include "src/tensor/kernels.h"

namespace dz {
namespace {

void RunMeasuredKernels(bool quick, BenchJson* json) {
  std::printf(
      "\nmeasured CPU kernels (dispatched kernel layer vs naive reference, "
      "per SIMD backend):\n\n");
  Rng rng(606);
  const int k = quick ? 256 : 1024;
  const int n = quick ? 256 : 1024;
  Table table({"kernel", "m", "isa", "blocked GFLOP/s", "naive GFLOP/s", "speedup"});
  const auto add_row = [&](const std::string& kernel, int m, const std::string& isa,
                           double flops, double blocked_s, double naive_s) {
    table.AddRow({kernel, std::to_string(m), isa,
                  Table::Num(flops / blocked_s / 1e9, 2),
                  Table::Num(flops / naive_s / 1e9, 2),
                  Table::Num(naive_s / blocked_s, 2)});
    if (json != nullptr) {
      // Per-ISA metric names: the gate compares e.g. dense_nt_m4_avx2_speedup
      // only when the current run also measured the avx2 backend.
      const std::string base =
          kernel + "_m" + std::to_string(m) + "_" + isa;
      json->Add(base + "_gflops", flops / blocked_s / 1e9, "GFLOP/s",
                /*higher_is_better=*/true, isa);
      json->Add(base + "_speedup", naive_s / blocked_s, "x",
                /*higher_is_better=*/true, isa);
    }
  };

  // Every backend compiled in AND executable on this CPU; a binary carrying
  // AVX-512 code onto an AVX2-only machine just measures fewer rows.
  std::vector<std::string> isas;
  for (const std::string& name : kernels::CompiledBackends()) {
    if (kernels::BackendSupported(name)) {
      isas.push_back(name);
    }
  }

  const double window = quick ? 0.05 : 0.2;
  for (int m : {quick ? 4 : 8, quick ? 64 : 512}) {
    const double flops = 2.0 * m * k * n;

    const Matrix x = Matrix::Random(m, k, rng, 1.0f);
    const Matrix w = Matrix::Random(n, k, rng, 0.02f);
    const auto q = PackedQuantMatrix::Quantize(w, 4, 128);
    const auto sp = Sparse24Matrix::Pack(MagnitudePrune24(w), 4, 128);

    // The naive references never dispatch, so measure them once per shape and
    // reuse the denominators across every backend's rows.
    const double naive_s = TimeSecsStable([&] { kernels::ref::GemmNT(x, w); }, window);
    const double q_naive_s =
        TimeSecsStable([&] { kernels::ref::QuantGemmNT(x, q); }, window);
    const double s_naive_s =
        TimeSecsStable([&] { kernels::ref::Sparse24GemmNT(x, sp); }, window);

    for (const std::string& isa : isas) {
      kernels::ForceBackend(isa);
      MatmulNT(x, w);  // warm
      const double blocked_s = TimeSecsStable([&] { MatmulNT(x, w); }, window);
      add_row("dense_nt", m, isa, flops, blocked_s, naive_s);

      q.MatmulNT(x);  // warm
      const double q_blocked_s = TimeSecsStable([&] { q.MatmulNT(x); }, window);
      add_row("quant4_nt", m, isa, flops, q_blocked_s, q_naive_s);

      sp.MatmulNT(x);  // warm
      const double s_blocked_s = TimeSecsStable([&] { sp.MatmulNT(x); }, window);
      // Counted at dense FLOPs so throughput is comparable with the dense rows.
      add_row("sparse24_nt", m, isa, flops, s_blocked_s, s_naive_s);
    }
    kernels::ResetBackend();
  }
  std::printf("W = %dx%d (quant/sparse 4-bit, group 128)\n\n%s\n", n, k,
              table.ToAscii().c_str());
}

void Run(bool quick, const char* json_path) {
  Banner("Figure 6 — compressed matmul performance", "Fig. 6", 0);
  const KernelModel km{GpuSpec::A800()};
  const long long n = 4096;
  const long long k = 4096;
  const double peak = km.spec().peak_fp16_tflops * 1e12;

  const std::vector<WeightFormat> formats = {
      WeightFormat::kSparseInt4, WeightFormat::kFp16, WeightFormat::kInt1,
      WeightFormat::kInt2, WeightFormat::kInt4};

  std::vector<std::string> header = {"input size"};
  for (WeightFormat f : formats) {
    header.push_back(WeightFormatName(f));
  }
  Table table(header);
  for (long long m = 2; m <= 4096; m *= 2) {
    std::vector<std::string> row = {std::to_string(m)};
    for (WeightFormat f : formats) {
      const double norm = km.AchievedFlops(m, n, k, f) / peak;
      row.push_back(Table::Num(norm * 100.0, 1));
    }
    table.AddRow(row);
  }
  std::printf("normalized achieved FLOPs (%% of dense fp16 peak), W = %lldx%lld:\n\n%s\n",
              n, k, table.ToAscii().c_str());
  const double sparse_peak =
      km.AchievedFlops(4096, n, k, WeightFormat::kSparseInt4) / peak;
  std::printf("sparse-int4 at large input: %.2fx dense peak (paper: ~1.6x)\n",
              sparse_peak);

  BenchJson json("bench_fig06_matmul_perf");
  RunMeasuredKernels(quick, json_path != nullptr ? &json : nullptr);
  if (json_path != nullptr && json.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(dz::ParseQuickFlag(argc, argv), dz::ParseStringFlag(argc, argv, "--json"));
  return 0;
}
