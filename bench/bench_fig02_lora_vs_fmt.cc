// Reproduces paper Fig. 2: base vs LoRA vs full-model fine-tuning accuracy on tasks of
// increasing complexity. Expected shape: LoRA ≈ FMT on the easy task, FMT clearly ahead
// on the complex (teacher / math) tasks.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 2024;
  Banner("Figure 2 — LoRA vs FMT accuracy", "Fig. 2", seed);

  struct TaskSpec {
    TaskKind kind;
    const char* paper_analog;
  };
  const std::vector<TaskSpec> tasks = {
      {TaskKind::kSentiment, "SQL-gen analog (easy)"},
      {TaskKind::kTeacher, "Code/HumanEval analog (complex)"},
      {TaskKind::kArithmetic, "Math/GSM-8k analog (complex)"},
  };
  struct ModelSpec {
    const char* name;
    ModelConfig config;
  };
  const std::vector<ModelSpec> models = {
      {"llama-sim-S", ModelConfig::Small()},
      {"llama-sim-M", ModelConfig::Medium()},
  };

  Table table({"model", "task", "base%", "lora%", "fmt%"});
  for (const auto& ms : models) {
    for (const auto& ts : tasks) {
      Rng rng(seed ^ static_cast<uint64_t>(ts.kind) ^ (ms.config.d_model * 31ull));
      Transformer base(ModelWeights::RandomInit(ms.config, rng));
      PretrainConfig pre;
      pre.steps = 150;
      pre.batch = 8;
      pre.seq_len = 20;
      Pretrain(base, pre, rng);
      const auto task = MakeTask(ts.kind, ms.config, seed ^ 77);

      const double acc_base = EvaluateAccuracy(base, *task, 200, 9000);

      FineTuneConfig ft;
      ft.steps = 400;
      ft.batch = 8;
      ft.lr = 2e-3f;
      Rng lora_rng = rng.Fork();
      const LoraAdapter lora = FineTuneLora(base, *task, /*rank=*/4, 8.0f, ft, lora_rng);
      const LinearOverlay overlay = lora.MakeOverlay(base.weights());
      const double acc_lora = EvaluateAccuracy(base, *task, 200, 9000, &overlay);

      Transformer fmt(base.weights());
      Rng fmt_rng = rng.Fork();
      FineTuneFmt(fmt, *task, ft, fmt_rng);
      const double acc_fmt = EvaluateAccuracy(fmt, *task, 200, 9000);

      table.AddRow({ms.name, std::string(ts.paper_analog), Pct(acc_base), Pct(acc_lora),
                    Pct(acc_fmt)});
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 2): LoRA ≈ FMT on the easy task; FMT ahead on\n"
              "the complex tasks; both beat the base model.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
