// Reproduces paper Fig. 7: execution-time breakdown of batched matrix-multiplication
// implementations (FP16 for-loop, FP16 bmm, naive low-precision for-loop, SBMM) for
// 16/64 models at 2048x2048 and 4096x4096. The "compute" column corresponds to the
// dark portion of the paper's bars. Expected shape: similar compute across
// low-precision impls, but launch/access overhead dominating everything except SBMM.
#include "bench/bench_common.h"
#include "src/simgpu/kernel_model.h"

namespace dz {
namespace {

void Run() {
  Banner("Figure 7 — SBMM execution-time breakdown", "Fig. 7", 0);
  const KernelModel km{GpuSpec::A800()};

  const std::vector<std::pair<BatchedImpl, const char*>> impls = {
      {BatchedImpl::kFp16ForLoop, "FP16 for-loop"},
      {BatchedImpl::kFp16Bmm, "FP16 bmm"},
      {BatchedImpl::kNaiveForLoop, "Naive for-loop"},
      {BatchedImpl::kSbmm, "SBMM (ours)"},
  };

  Table table({"matrix", "models", "impl", "compute(ms)", "total(ms)", "overhead%"});
  for (long long dim : {2048, 4096}) {
    for (int models : {16, 64}) {
      const std::vector<int> reqs(static_cast<size_t>(models), 2);
      for (const auto& [impl, label] : impls) {
        const WeightFormat fmt = impl == BatchedImpl::kFp16ForLoop ||
                                         impl == BatchedImpl::kFp16Bmm
                                     ? WeightFormat::kFp16
                                     : WeightFormat::kSparseInt4;
        const SbmmBreakdown b = km.BatchedMatmul(reqs, dim, dim, fmt, impl);
        table.AddRow({std::to_string(dim) + "x" + std::to_string(dim),
                      std::to_string(models), label, Table::Num(b.compute_s * 1e3, 3),
                      Table::Num(b.total_s * 1e3, 3),
                      Table::Num(100.0 * (b.total_s - b.compute_s) / b.total_s, 1)});
      }
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 7): low-precision compute is small but the\n"
              "naive for-loop is overhead-dominated; SBMM removes nearly all of it.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
