// Shared helpers for the paper-reproduction bench binaries. Every bench prints a
// banner with its experiment id and fixed seed, regenerates one table or figure of the
// paper, and emits aligned ASCII tables (plus CSV-ready rows) on stdout.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/deltazip.h"
#include "src/tensor/backend.h"
#include "src/train/finetune.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace dz {

inline void Banner(const std::string& experiment, const std::string& paper_ref,
                   uint64_t seed) {
  std::printf("==========================================================\n");
  std::printf("DeltaZip repro | %s  (paper %s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("seed=%llu\n", static_cast<unsigned long long>(seed));
  std::printf("==========================================================\n");
}

// A multi-task fine-tuning "instruction mix", used when a single variant must be
// evaluated on several downstream tasks (paper Table 1 setup).
class TaskMix : public Task {
 public:
  // Optional per-task sampling weights (uniform when empty). Harder tasks typically get
  // more weight, like oversampling hard splits in a real instruction mix.
  explicit TaskMix(std::vector<const Task*> tasks, std::vector<double> weights = {})
      : tasks_(std::move(tasks)), weights_(std::move(weights)) {}

  Example Sample(Rng& rng) const override {
    if (!weights_.empty()) {
      return tasks_[static_cast<size_t>(rng.Categorical(weights_))]->Sample(rng);
    }
    return tasks_[rng.NextBelow(tasks_.size())]->Sample(rng);
  }
  std::vector<int> label_tokens() const override {
    std::vector<int> all;
    for (const Task* t : tasks_) {
      for (int l : t->label_tokens()) {
        all.push_back(l);
      }
    }
    return all;
  }
  std::string name() const override { return "task-mix"; }

 private:
  std::vector<const Task*> tasks_;
  std::vector<double> weights_;
};

// One trained model family: pretrained base + one FMT variant fine-tuned on a task mix.
struct TrainedFamily {
  std::string name;
  ModelConfig config;
  std::unique_ptr<Transformer> base;
  std::unique_ptr<Transformer> finetuned;
  std::vector<std::unique_ptr<Task>> tasks;
  std::vector<std::vector<int>> calibration;
};

inline TrainedFamily BuildFamily(const std::string& name, const ModelConfig& config,
                                 const std::vector<TaskKind>& task_kinds,
                                 int pretrain_steps, int finetune_steps, uint64_t seed,
                                 int calib_samples = 12, bool freeze_embeddings = false,
                                 std::vector<double> task_weights = {}) {
  TrainedFamily family;
  family.name = name;
  family.config = config;
  Rng rng(seed);
  family.base = std::make_unique<Transformer>(ModelWeights::RandomInit(config, rng));
  PretrainConfig pre;
  pre.steps = pretrain_steps;
  pre.batch = 8;
  pre.seq_len = 20;
  Pretrain(*family.base, pre, rng);

  for (TaskKind kind : task_kinds) {
    family.tasks.push_back(MakeTask(kind, config, seed ^ (0x1000u + static_cast<uint64_t>(kind))));
  }
  std::vector<const Task*> raw;
  for (const auto& t : family.tasks) {
    raw.push_back(t.get());
  }
  const TaskMix mix(raw, std::move(task_weights));

  family.finetuned = std::make_unique<Transformer>(family.base->weights());
  FineTuneConfig ft;
  ft.steps = finetune_steps;
  ft.batch = 8;
  ft.lr = 2e-3f;
  ft.freeze_embeddings = freeze_embeddings;
  Rng ft_rng = rng.Fork();
  FineTuneFmt(*family.finetuned, mix, ft, ft_rng);

  Rng calib_rng = rng.Fork();
  for (int i = 0; i < calib_samples; ++i) {
    family.calibration.push_back(mix.Sample(calib_rng).tokens);
  }
  return family;
}

// "gemma-2-sim": same vocabulary but a narrower trunk, so the (uncompressed) embedding
// deltas form a larger share of the artifact — reproducing the paper's observation that
// Gemma-2 compression ratios are lower (§6.2).
inline ModelConfig GemmaSimConfig() {
  ModelConfig c;
  c.vocab_size = 128;
  c.d_model = 48;
  c.n_layers = 2;
  c.n_heads = 4;
  c.d_ff = 128;
  c.max_seq = 64;
  return c;
}

inline std::string Pct(double frac) { return Table::Num(frac * 100.0, 2); }

// Parses the shared `--quick` smoke-mode flag: bare `--quick` (or `--quick`
// followed by another flag) means on; an explicit value ("--quick 0|1")
// overrides. Unrelated arguments are ignored.
inline bool ParseQuickFlag(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = i + 1 >= argc || argv[i + 1][0] == '-' ||
              std::strtol(argv[i + 1], nullptr, 10) != 0;
    }
  }
  return quick;
}

// Returns the value following `flag` (e.g. ParseStringFlag(..., "--json") for
// "--json out.json"), or nullptr when the flag is absent or has no value.
inline const char* ParseStringFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && argv[i + 1][0] != '-') {
      return argv[i + 1];
    }
  }
  return nullptr;
}

// The one wall-clock source for every bench measurement: monotonic
// (steady_clock), so NTP steps or suspend/resume can never produce negative or
// wildly wrong durations mid-measurement. Benches must not touch
// std::chrono::*_clock directly — construct (or Reset) a SteadyTimer and read
// Seconds().
class SteadyTimer {
 public:
  SteadyTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Median-free single timing helper for the measured-kernel bench sections:
// runs fn() `reps` times and returns seconds per rep.
template <typename Fn>
double TimeSecsPerRep(int reps, Fn&& fn) {
  const SteadyTimer timer;
  for (int r = 0; r < reps; ++r) {
    fn();
  }
  return timer.Seconds() / std::max(reps, 1);
}

// Self-calibrating variant: doubles the rep count until the measurement window
// reaches `min_secs`, so microsecond-scale kernels still get a stable number
// (the CI regression gate depends on these being reproducible).
template <typename Fn>
double TimeSecsStable(Fn&& fn, double min_secs = 0.05) {
  constexpr int kMaxReps = 10000000;
  int reps = 1;
  for (;;) {
    const double per_rep = TimeSecsPerRep(reps, fn);
    // A capped-rep window is accepted as-is: near-no-op bodies can never fill
    // min_secs, and re-measuring the same window would loop forever.
    if (per_rep * reps >= min_secs || per_rep * reps >= 2.0 || reps >= kMaxReps) {
      return per_rep;
    }
    const double target = min_secs / std::max(per_rep, 1e-9);
    reps = static_cast<int>(std::min(target * 1.3 + 1.0, double{kMaxReps}));
  }
}

// Machine-readable bench output behind the shared `--json <path>` flag.
// Schema (one object per bench binary, merged by tools/bench_json.sh into a
// dz-bench-v2 trajectory file):
//   {"bench": "<name>", "isa": "<backend at write time>", "threads": N,
//    "metrics": [{"name","value","unit","higher_is_better"[,"isa"]}]}
// The top-level isa/threads record what the process ran with; a metric measured
// under a forced backend (fig06 sweeps every supported one) carries its own
// per-metric "isa" so the regression gate can skip backends the gating machine
// cannot execute. Dimensionless "x" ratio metrics (e.g. blocked-vs-naive
// speedups) are the ones the CI gate compares — they are stable across
// machines, unlike absolute GFLOP/s.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& name, double value, const std::string& unit,
           bool higher_is_better = true, const std::string& isa = "") {
    items_.push_back({name, value, unit, higher_is_better, isa});
  }

  // Writes the JSON file; returns false (with a message on stderr) on failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"isa\": \"%s\",\n"
                 "  \"threads\": %zu,\n  \"metrics\": [\n",
                 bench_.c_str(), kernels::ActiveBackend().name,
                 ThreadPool::Global().thread_count());
    for (size_t i = 0; i < items_.size(); ++i) {
      const Item& it = items_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                   "\"higher_is_better\": %s",
                   it.name.c_str(), it.value, it.unit.c_str(),
                   it.higher_is_better ? "true" : "false");
      if (!it.isa.empty()) {
        std::fprintf(f, ", \"isa\": \"%s\"", it.isa.c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 < items_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Item {
    std::string name;
    double value;
    std::string unit;
    bool higher_is_better;
    std::string isa;
  };
  std::string bench_;
  std::vector<Item> items_;
};

}  // namespace dz

#endif  // BENCH_BENCH_COMMON_H_
