// Reproduces paper Fig. 17: SBMM kernel latency vs number of models at a fixed total
// request count, under uniform and zipf-1.5 request-to-model assignment, for
// FP16 / naive for-loop / reorder-only ("Ours") / full SBMM ("Ours+").
// Expected shape: for-loop latency grows linearly with model count; Ours+ stays flat.
#include "bench/bench_common.h"
#include "src/simgpu/kernel_model.h"
#include "src/util/rng.h"

namespace dz {
namespace {

std::vector<int> AssignRequests(int n_models, int n_requests, bool zipf, Rng& rng) {
  std::vector<int> reqs(static_cast<size_t>(n_models), 0);
  for (int i = 0; i < n_requests; ++i) {
    const int m = zipf ? rng.Zipf(n_models, 1.5)
                       : static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n_models)));
    ++reqs[static_cast<size_t>(m)];
  }
  return reqs;
}

void Run() {
  const uint64_t seed = 1717;
  Banner("Figure 17 — SBMM scaling with number of models", "Fig. 17", seed);
  const KernelModel km{GpuSpec::A800()};
  const long long dim = 4096;
  const int total_requests = 128;

  for (const bool zipf : {false, true}) {
    std::printf("--- distribution: %s ---\n", zipf ? "zipf-1.5" : "uniform");
    Table table({"models", "FP16(ms)", "For-Loop(ms)", "Ours(ms)", "Ours+(ms)"});
    Rng rng(seed);
    for (int models : {1, 2, 4, 8, 16, 32, 64, 128}) {
      const std::vector<int> reqs = AssignRequests(models, total_requests, zipf, rng);
      const double fp16 =
          km.BatchedMatmul(reqs, dim, dim, WeightFormat::kFp16, BatchedImpl::kFp16ForLoop)
              .total_s;
      const double naive = km.BatchedMatmul(reqs, dim, dim, WeightFormat::kSparseInt4,
                                            BatchedImpl::kNaiveForLoop)
                               .total_s;
      const double ours = km.BatchedMatmul(reqs, dim, dim, WeightFormat::kSparseInt4,
                                           BatchedImpl::kSbmmReorder)
                              .total_s;
      const double ours_plus =
          km.BatchedMatmul(reqs, dim, dim, WeightFormat::kSparseInt4, BatchedImpl::kSbmm)
              .total_s;
      table.AddRow({std::to_string(models), Table::Num(fp16 * 1e3, 3),
                    Table::Num(naive * 1e3, 3), Table::Num(ours * 1e3, 3),
                    Table::Num(ours_plus * 1e3, 3)});
    }
    std::printf("%s\n", table.ToAscii().c_str());
  }
  std::printf("Expected shape (paper Fig. 17): for-loop grows with model count; the\n"
              "reordered kernel is ~2x better; Ours+ scales nearly flat.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
