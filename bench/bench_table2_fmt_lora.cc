// Reproduces paper Table 2: FMT vs LoRA vs ΔCompress accuracy per task. Expected
// shape: ΔCompress tracks FMT closely; LoRA trails on the complex tasks (math/teacher)
// while staying competitive on easier classification.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 22;
  Banner("Table 2 — FMT vs LoRA vs ΔCompress", "Tab. 2", seed);

  struct Row {
    const char* base_model;
    ModelConfig config;
    TaskKind task;
    const char* task_label;
  };
  const std::vector<Row> rows = {
      {"llama-sim-7b", ModelConfig::Medium(), TaskKind::kArithmetic, "Math (GSM8K analog)"},
      {"pythia-sim", ModelConfig::Small(), TaskKind::kSentiment, "Amazon Review analog"},
      {"pythia-sim", ModelConfig::Small(), TaskKind::kTeacher, "BoolQ Yes/No analog"},
      {"pythia-sim", ModelConfig::Small(), TaskKind::kNli, "NLI Classification analog"},
      {"openllama-sim", ModelConfig::Medium(), TaskKind::kSentiment, "Amazon Review analog"},
      {"openllama-sim", ModelConfig::Medium(), TaskKind::kNli, "NLI Classification analog"},
  };

  Table table({"base model", "task", "FMT%", "LoRA%", "dCompress%"});
  // Cache one pretrained base per (name, config) pair.
  std::map<std::string, std::unique_ptr<Transformer>> bases;
  for (const auto& row : rows) {
    const std::string key = row.base_model;
    if (bases.count(key) == 0) {
      Rng rng(seed ^ std::hash<std::string>{}(key));
      auto base = std::make_unique<Transformer>(ModelWeights::RandomInit(row.config, rng));
      PretrainConfig pre;
      pre.steps = 200;
      pre.batch = 8;
      pre.seq_len = 20;
      Pretrain(*base, pre, rng);
      bases.emplace(key, std::move(base));
    }
    const Transformer& base = *bases.at(key);
    const auto task = MakeTask(row.task, row.config, seed ^ 5);
    Rng rng(seed ^ static_cast<uint64_t>(row.task) ^ 0xBEEF);

    // Per-method budgets (the paper tunes hyper-parameters per method, §6.4): FMT
    // converges more slowly on the memorization-heavy math task.
    FineTuneConfig ft;
    ft.steps = 400;
    ft.batch = 8;
    ft.lr = 2e-3f;
    FineTuneConfig ft_fmt = ft;
    ft_fmt.steps = row.task == TaskKind::kArithmetic ? 700 : 400;

    Transformer fmt(base.weights());
    Rng fmt_rng = rng.Fork();
    FineTuneFmt(fmt, *task, ft_fmt, fmt_rng);
    const double acc_fmt = EvaluateAccuracy(fmt, *task, 200, 777);

    Rng lora_rng = rng.Fork();
    const LoraAdapter lora = FineTuneLora(base, *task, /*rank=*/4, 8.0f, ft, lora_rng);
    const LinearOverlay overlay = lora.MakeOverlay(base.weights());
    const double acc_lora = EvaluateAccuracy(base, *task, 200, 777, &overlay);

    Rng calib_rng = rng.Fork();
    std::vector<std::vector<int>> calibration;
    for (int i = 0; i < 12; ++i) {
      calibration.push_back(task->Sample(calib_rng).tokens);
    }
    DeltaCompressConfig cfg;
    cfg.bits = 4;
    const CompressedDelta delta =
        DeltaCompress(base.weights(), fmt.weights(), calibration, cfg);
    const Transformer compressed(delta.ApplyTo(base.weights()));
    const double acc_dz = EvaluateAccuracy(compressed, *task, 200, 777);

    table.AddRow({row.base_model, row.task_label, Pct(acc_fmt), Pct(acc_lora),
                  Pct(acc_dz)});
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Tab. 2): ΔCompress ≈ FMT everywhere; LoRA trails\n"
              "on complex tasks (math, teacher) and is closer on simple classification.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
