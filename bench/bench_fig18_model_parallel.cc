// Reproduces paper Fig. 18: end-to-end latency and TTFT of DeltaZip with varying
// tensor-parallel degree — 7B on {1,2}x RTX 3090 and 13B on {2,4}x A800.
// Expected shape: more GPUs reduce latency, with a larger relative gain on the A800
// platform because of its faster interconnect.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1818;
  Banner("Figure 18 — tensor parallelism scaling", "Fig. 18", seed);

  Table table({"platform", "model", "TP", "mean E2E (s)", "mean TTFT (s)"});
  struct Setting {
    const char* platform;
    GpuSpec gpu;
    ModelShape shape;
    int tp;
  };
  const std::vector<Setting> settings = {
      {"RTX 3090", GpuSpec::Rtx3090(), ModelShape::Llama7B(), 1},
      {"RTX 3090", GpuSpec::Rtx3090(), ModelShape::Llama7B(), 2},
      {"A800", GpuSpec::A800(), ModelShape::Llama13B(), 2},
      {"A800", GpuSpec::A800(), ModelShape::Llama13B(), 4},
  };

  for (const auto& s : settings) {
    TraceConfig tc;
    tc.n_models = 16;
    tc.arrival_rate = 1.2;
    tc.duration_s = 150.0;
    tc.dist = PopularityDist::kZipf;
    tc.seed = seed;
    const Trace trace = GenerateTrace(tc);

    EngineConfig cfg;
    cfg.exec.shape = s.shape;
    cfg.exec.gpu = s.gpu;
    cfg.exec.tp = s.tp;
    cfg.max_concurrent_deltas = 8;
    const ServeReport r = MakeDeltaZipEngine(cfg)->Serve(trace);
    table.AddRow({s.platform, s.shape.name, std::to_string(s.tp),
                  Table::Num(r.MeanE2e(), 1), Table::Num(r.MeanTtft(), 1)});
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 18): latency drops with GPU count; the gain\n"
              "is larger on A800 (NVLink) than on RTX 3090 (PCIe peer transfers).\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
