// Cluster scaling sweep (beyond the paper: §5.4 "Scalability" scaled out to a
// multi-GPU serving cluster). Sweeps 1→8 worker GPUs × placement policies
// {round-robin, least-outstanding, delta-affinity} × {Zipf, Azure} traces and
// reports aggregate token throughput, SLO attainment, load imbalance, and
// artifact-swap traffic. Expected shape: delta-affinity routing keeps each
// variant's compressed delta hot on few GPUs, so at high GPU counts it moves far
// fewer artifacts and sustains higher aggregate throughput than round-robin.
//
// `--quick 1` (CI smoke mode) shrinks the sweep to {1,2} GPUs × one trace.
#include <cstring>

#include "bench/bench_common.h"
#include "src/cluster/router.h"

namespace dz {
namespace {

Trace MakeTrace(PopularityDist dist, double rate, double duration, uint64_t seed) {
  TraceConfig tc;
  tc.n_models = 48;
  tc.arrival_rate = rate;
  tc.duration_s = duration;
  tc.dist = dist;
  tc.zipf_alpha = 1.5;
  tc.output_mean_tokens = 120.0;
  tc.output_max_tokens = 400;
  tc.seed = seed;
  return GenerateTrace(tc);
}

void Run(bool quick) {
  const uint64_t seed = 2025;
  Banner("Cluster scaling — GPUs x placement policy x trace", "beyond Fig. 18", seed);

  const std::vector<int> gpu_counts = quick ? std::vector<int>{1, 2}
                                            : std::vector<int>{1, 2, 4, 8};
  const std::vector<PopularityDist> dists =
      quick ? std::vector<PopularityDist>{PopularityDist::kZipf}
            : std::vector<PopularityDist>{PopularityDist::kZipf, PopularityDist::kAzure};
  const double duration = quick ? 40.0 : 120.0;
  // Aggregate arrival rate sized to overload a single worker (~12 req/s) several
  // times over, so small clusters drain a backlog long after the trace ends and
  // aggregate throughput genuinely scales with GPU count.
  const double rate = quick ? 8.0 : 48.0;

  Table table({"trace", "GPUs", "policy", "tok/s", "req/s", "SLO-E2E<=120s",
               "SLO-TTFT<=30s", "imbalance", "loads", "disk loads"});
  for (PopularityDist dist : dists) {
    const Trace trace = MakeTrace(dist, rate, duration, seed);
    for (int n_gpus : gpu_counts) {
      for (PlacementPolicy policy :
           {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastOutstanding,
            PlacementPolicy::kDeltaAffinity}) {
        ClusterConfig cfg;
        cfg.placer.n_gpus = n_gpus;
        cfg.placer.policy = policy;
        cfg.engine.exec.shape = ModelShape::Llama13B();
        cfg.engine.exec.gpu = GpuSpec::A800();
        cfg.engine.exec.tp = 4;
        cfg.engine.max_concurrent_deltas = 8;
        const ClusterReport r = Cluster(cfg).Serve(trace);
        table.AddRow({PopularityDistName(dist), std::to_string(n_gpus),
                      PlacementPolicyName(policy),
                      Table::Num(r.AggregateTokenThroughput(), 1),
                      Table::Num(r.AggregateThroughputRps(), 3),
                      Table::Num(r.SloAttainmentE2e(120.0), 3),
                      Table::Num(r.SloAttainmentTtft(30.0), 3),
                      Table::Num(r.LoadImbalance(), 2),
                      std::to_string(r.TotalLoads()),
                      std::to_string(r.TotalDiskLoads())});
      }
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("csv:\n%s\n", table.ToCsv().c_str());

  // Prefetch ablation at the largest cluster size: delta-affinity routing feeds
  // each worker its ring-predicted tenants as warm hints, and the engines overlap
  // artifact movement with compute (ISSUE 3 tentpole).
  {
    const int n_gpus = gpu_counts.back();
    const Trace trace = MakeTrace(dists.front(), rate, duration, seed);
    Table pf({"prefetch", "stall (s)", "hidden (s)", "issued/hits/wasted",
              "SLO-E2E<=120s", "tok/s"});
    for (int on : {0, 1}) {
      ClusterConfig cfg;
      cfg.placer.n_gpus = n_gpus;
      cfg.placer.policy = PlacementPolicy::kDeltaAffinity;
      cfg.engine.exec.shape = ModelShape::Llama13B();
      cfg.engine.exec.gpu = GpuSpec::A800();
      cfg.engine.exec.tp = 4;
      cfg.engine.max_concurrent_deltas = 8;
      cfg.engine.prefetch.enabled = on != 0;
      const ClusterReport r = Cluster(cfg).Serve(trace);
      pf.AddRow({on ? "on" : "off", Table::Num(r.merged.TotalLoadingTime(), 2),
                 Table::Num(r.TotalStallHiddenS(), 2),
                 std::to_string(r.TotalPrefetchIssued()) + "/" +
                     std::to_string(r.TotalPrefetchHits()) + "/" +
                     std::to_string(r.TotalPrefetchWasted()),
                 Table::Num(r.SloAttainmentE2e(120.0), 3),
                 Table::Num(r.AggregateTokenThroughput(), 1)});
    }
    std::printf("Prefetch ablation (%d GPUs, delta-affinity, %s trace):\n%s\n", n_gpus,
                PopularityDistName(dists.front()), pf.ToAscii().c_str());
  }

  std::printf(
      "Expected shape: aggregate throughput scales with GPU count; at 8 GPUs\n"
      "delta-affinity beats round-robin on tok/s and moves far fewer artifacts,\n"
      "because each variant's delta stays hot on few GPUs instead of thrashing\n"
      "every ArtifactStore (bounded load still spills bursting variants). With\n"
      "prefetch on, ring-driven warm hints hide cold-start stalls on top.\n");
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(dz::ParseQuickFlag(argc, argv));
  return 0;
}
