// Reproduces paper Fig. 13: SLO attainment of E2E latency and TTFT on the azure trace
// at arrival rates 0.5 and 1.0. Expected shape: DeltaZip's curves rise much earlier —
// it reaches high attainment at SLOs an order of magnitude tighter than vLLM+SCB.
//
// Also runs the async-prefetch ablation (beyond the paper, §8): DeltaZip with the
// artifact-prefetch pipeline on vs off. Prefetch must strictly reduce cold-start
// stall seconds (artifact waits after a request reaches the scheduler) without any
// SLO-attainment regression.
//
// `--quick 1` shrinks the sweep to one arrival rate on a shorter trace (CI smoke).
#include <algorithm>
#include <cstring>

#include "bench/bench_common.h"

namespace dz {
namespace {

void PrefetchAblation(const Trace& trace, const EngineConfig& base,
                      const std::vector<double>& slos) {
  EngineConfig off = base;
  EngineConfig on = base;
  // Operator-known hot set as warm hints (a cluster gets hints from the
  // router's consistent-hash ring instead).
  on.prefetch.enabled = true;
  on.prefetch.warm_hints = ModelsByPopularity(trace, 8);
  const ServeReport r_off = MakeDeltaZipEngine(off)->Serve(trace);
  const ServeReport r_on = MakeDeltaZipEngine(on)->Serve(trace);

  Table t({"metric", "prefetch off", "prefetch on"});
  t.AddRow({"cold-start stall seconds", Table::Num(r_off.TotalLoadingTime(), 3),
            Table::Num(r_on.TotalLoadingTime(), 3)});
  t.AddRow({"stall hidden by prefetch (s)", Table::Num(r_off.stall_hidden_s, 3),
            Table::Num(r_on.stall_hidden_s, 3)});
  t.AddRow({"prefetch issued / hits / wasted", "0/0/0",
            std::to_string(r_on.prefetch_issued) + "/" +
                std::to_string(r_on.prefetch_hits) + "/" +
                std::to_string(r_on.prefetch_wasted)});
  t.AddRow({"mean TTFT (s)", Table::Num(r_off.MeanTtft(), 3),
            Table::Num(r_on.MeanTtft(), 3)});
  for (double slo : slos) {
    t.AddRow({"SLO attain E2E<=" + Table::Num(slo, 0) + "s (%)",
              Pct(r_off.SloAttainmentE2e(slo)), Pct(r_on.SloAttainmentE2e(slo))});
  }
  std::printf("Prefetch ablation (DeltaZip N=8, hot-set warm hints):\n%s\n",
              t.ToAscii().c_str());
  std::printf("prefetch stall seconds: off=%.3f on=%.3f (%s)\n\n",
              r_off.TotalLoadingTime(), r_on.TotalLoadingTime(),
              r_on.TotalLoadingTime() < r_off.TotalLoadingTime()
                  ? "strictly fewer with prefetch"
                  : "NO IMPROVEMENT — regression!");
}

void Run(bool quick) {
  const uint64_t seed = 1313;
  Banner("Figure 13 — SLO attainment (azure trace)", "Fig. 13", seed);

  const std::vector<double> rates = quick ? std::vector<double>{1.0}
                                          : std::vector<double>{0.5, 1.0};
  for (double rate : rates) {
    TraceConfig tc;
    tc.n_models = 32;
    tc.arrival_rate = rate;
    tc.duration_s = quick ? 120.0 : 300.0;
    tc.dist = PopularityDist::kAzure;
    if (quick) {
      tc.output_mean_tokens = 80.0;
      tc.output_max_tokens = 250;
    }
    tc.seed = seed;
    const Trace trace = GenerateTrace(tc);

    EngineConfig base;
    base.exec.shape = ModelShape::Llama13B();
    base.exec.gpu = GpuSpec::A800();
    base.exec.tp = 4;
    EngineConfig scb = base;
    scb.artifact = ArtifactKind::kFullModel;
    const ServeReport r_scb = MakeVllmScbEngine(scb)->Serve(trace);
    EngineConfig dz8 = base;
    dz8.max_concurrent_deltas = 8;
    const ServeReport r8 = MakeDeltaZipEngine(dz8)->Serve(trace);
    EngineConfig dz12 = base;
    dz12.max_concurrent_deltas = 12;
    const ServeReport r12 = MakeDeltaZipEngine(dz12)->Serve(trace);

    std::printf("--- arrival rate %.1f req/s ---\n", rate);
    Table e2e({"SLO (s)", "vLLM+SCB", "DZ N=8", "DZ N=12"});
    Table ttft({"SLO (s)", "vLLM+SCB", "DZ N=8", "DZ N=12"});
    for (double slo : {5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0}) {
      e2e.AddRow({Table::Num(slo, 0), Pct(r_scb.SloAttainmentE2e(slo)),
                  Pct(r8.SloAttainmentE2e(slo)), Pct(r12.SloAttainmentE2e(slo))});
      ttft.AddRow({Table::Num(slo, 0), Pct(r_scb.SloAttainmentTtft(slo)),
                   Pct(r8.SloAttainmentTtft(slo)), Pct(r12.SloAttainmentTtft(slo))});
    }
    std::printf("E2E latency SLO attainment (%%):\n%s\n", e2e.ToAscii().c_str());
    std::printf("TTFT SLO attainment (%%):\n%s\n", ttft.ToAscii().c_str());

    PrefetchAblation(trace, dz8, {1.0, 5.0, 30.0, 120.0});
  }
  std::printf("Expected shape (paper Fig. 13): DeltaZip attains any SLO level at a\n"
              "much tighter latency budget than the baseline; with the async\n"
              "artifact-prefetch pipeline on, cold-start stall seconds drop further\n"
              "at unchanged (or better) SLO attainment.\n");
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(dz::ParseQuickFlag(argc, argv));
  return 0;
}
