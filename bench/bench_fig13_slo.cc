// Reproduces paper Fig. 13: SLO attainment of E2E latency and TTFT on the azure trace
// at arrival rates 0.5 and 1.0. Expected shape: DeltaZip's curves rise much earlier —
// it reaches high attainment at SLOs an order of magnitude tighter than vLLM+SCB.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1313;
  Banner("Figure 13 — SLO attainment (azure trace)", "Fig. 13", seed);

  for (double rate : {0.5, 1.0}) {
    TraceConfig tc;
    tc.n_models = 32;
    tc.arrival_rate = rate;
    tc.duration_s = 300.0;
    tc.dist = PopularityDist::kAzure;
    tc.seed = seed;
    const Trace trace = GenerateTrace(tc);

    EngineConfig base;
    base.exec.shape = ModelShape::Llama13B();
    base.exec.gpu = GpuSpec::A800();
    base.exec.tp = 4;
    EngineConfig scb = base;
    scb.artifact = ArtifactKind::kFullModel;
    const ServeReport r_scb = MakeVllmScbEngine(scb)->Serve(trace);
    EngineConfig dz8 = base;
    dz8.max_concurrent_deltas = 8;
    const ServeReport r8 = MakeDeltaZipEngine(dz8)->Serve(trace);
    EngineConfig dz12 = base;
    dz12.max_concurrent_deltas = 12;
    const ServeReport r12 = MakeDeltaZipEngine(dz12)->Serve(trace);

    std::printf("--- arrival rate %.1f req/s ---\n", rate);
    Table e2e({"SLO (s)", "vLLM+SCB", "DZ N=8", "DZ N=12"});
    Table ttft({"SLO (s)", "vLLM+SCB", "DZ N=8", "DZ N=12"});
    for (double slo : {5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0}) {
      e2e.AddRow({Table::Num(slo, 0), Pct(r_scb.SloAttainmentE2e(slo)),
                  Pct(r8.SloAttainmentE2e(slo)), Pct(r12.SloAttainmentE2e(slo))});
      ttft.AddRow({Table::Num(slo, 0), Pct(r_scb.SloAttainmentTtft(slo)),
                   Pct(r8.SloAttainmentTtft(slo)), Pct(r12.SloAttainmentTtft(slo))});
    }
    std::printf("E2E latency SLO attainment (%%):\n%s\n", e2e.ToAscii().c_str());
    std::printf("TTFT SLO attainment (%%):\n%s\n", ttft.ToAscii().c_str());
  }
  std::printf("Expected shape (paper Fig. 13): DeltaZip attains any SLO level at a\n"
              "much tighter latency budget than the baseline.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
