// Availability and cold-start cost of the replicated / erasure-coded artifact
// registry under node loss (beyond-paper robustness bench).
//
// An 8-worker cluster serves the same Zipf trace under four redundancy
// policies — none, replicate(2), replicate(3), erasure(4,2) — across three
// scenarios: fault-free (cold-start TTFT comparison), losing 1 of 8 nodes,
// and losing 2 of 8 nodes (crashes land early, while most artifacts are still
// cold, so the registry really is the only source of non-local bytes).
//
// Gates (exit code 1 on failure, so CI runs this directly):
//   * every faulted run satisfies the conservation ledger;
//   * under 1-of-8 loss, `none` loses requests (its single copies die with
//     the node) while replicate(2), replicate(3), and erasure(4,2) lose ZERO;
//   * under 2-of-8 loss, replicate(3) and erasure(4,2) still lose zero
//     (replicate(2) may legitimately lose doubly-unlucky artifacts);
//   * background repair actually runs (replicate(2), 1-of-8: repair jobs and
//     bytes > 0 on spare net bandwidth).
//
// `--metrics-out` (default registry_metrics.jsonl) writes every run's merged
// snapshot — including the registry.* instrument family — as a JSONL time
// series; `--json` writes the dz-bench-v1 summary; on a gate failure the
// first failing run's flight-recorder ring dumps to `--flightrec-out`
// (default registry_flightrec.json). `--quick` shortens the trace for CI.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/router.h"
#include "src/metrics/metrics.h"
#include "src/obs/trace_export.h"
#include "src/registry/registry.h"

namespace dz {
namespace {

TraceConfig BaseTraffic(double duration_s, uint64_t seed) {
  TraceConfig tc;
  tc.n_models = 32;
  // Comfortably under the 8-worker knee (~80 req/s) AND the 6-worker knee, so
  // losing nodes costs availability, not capacity — failures in this bench
  // mean "no live holder", never "backlog divergence".
  tc.arrival_rate = 40.0;
  tc.duration_s = duration_s;
  tc.dist = PopularityDist::kZipf;
  tc.seed = seed;
  return tc;
}

ClusterConfig BaseCluster(const RedundancyPolicy& redundancy) {
  ClusterConfig cfg;
  cfg.placer.n_gpus = 8;
  cfg.placer.policy = PlacementPolicy::kDeltaAffinity;
  cfg.engine.exec.shape = ModelShape::Llama13B();
  cfg.engine.exec.gpu = GpuSpec::A800();
  cfg.engine.exec.tp = 4;
  cfg.engine.max_concurrent_deltas = 8;
  cfg.engine.tracing.enabled = true;
  cfg.engine.tracing.ring_capacity = 4096;  // bounded flight recorder
  cfg.registry.enabled = true;
  cfg.registry.redundancy = redundancy;
  cfg.registry.net_gbps = 25.0;
  return cfg;
}

struct RunResult {
  std::string policy;
  std::string scenario;
  ClusterReport report;
  double mean_ttft = 0.0;
  long long failed = 0;
  long long remote_reads = 0;
  long long degraded_reads = 0;
};

struct GateState {
  bool ok = true;
  std::vector<TraceEvent> failing_flight;

  void Check(bool cond, const std::string& what, const ClusterReport& report) {
    if (cond) {
      return;
    }
    std::fprintf(stderr, "bench_registry_availability: FAIL %s\n", what.c_str());
    if (ok) {
      failing_flight = report.MergedTraceEvents();
    }
    ok = false;
  }
};

void Run(int argc, char** argv) {
  const bool quick = ParseQuickFlag(argc, argv);
  const uint64_t seed = 2121;
  Banner("Registry availability under node loss (none/R2/R3/EC)",
         "artifact registry (beyond paper scope)", seed);

  const char* metrics_flag = ParseStringFlag(argc, argv, "--metrics-out");
  const std::string metrics_path =
      metrics_flag != nullptr ? metrics_flag : "registry_metrics.jsonl";
  const char* flightrec_flag = ParseStringFlag(argc, argv, "--flightrec-out");
  const std::string flightrec_path =
      flightrec_flag != nullptr ? flightrec_flag : "registry_flightrec.json";
  MetricsJsonlWriter writer(metrics_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "bench_registry_availability: cannot open %s\n",
                 metrics_path.c_str());
  }
  GateState gate;
  const SteadyTimer total_timer;

  const double duration = quick ? 120.0 : 240.0;
  const Trace trace = GenerateTrace(BaseTraffic(duration, seed));

  // Crashes land at 6s/10s — early enough that most Zipf-tail artifacts are
  // still cold everywhere except their registry holders, which is exactly when
  // redundancy earns its keep. Neither node recovers.
  const struct {
    const char* name;
    const char* faults;
  } kScenarios[] = {
      {"fault-free", ""},
      {"1-of-8 loss", "crash@6:w2,detect=2"},
      {"2-of-8 loss", "crash@6:w2,crash@10:w5,detect=2"},
  };
  const struct {
    const char* name;
    const char* spec;
  } kPolicies[] = {
      {"none", "none"},
      {"replicate(2)", "replicate(2)"},
      {"replicate(3)", "replicate(3)"},
      {"erasure(4,2)", "erasure(4,2)"},
  };

  // No-registry reference: the PR 8 infinite-local-disk store, fault-free.
  ClusterConfig base_cfg = BaseCluster(RedundancyPolicy());
  base_cfg.registry.enabled = false;
  const ClusterReport base_run = Cluster(base_cfg).Serve(trace);
  std::printf("  no registry  fault-free   mean TTFT %6.3fs  (reference)\n",
              base_run.MeanTtft());

  std::vector<RunResult> results;
  for (const auto& pol : kPolicies) {
    RedundancyPolicy redundancy;
    if (!ParseRedundancyPolicy(pol.spec, redundancy)) {
      std::fprintf(stderr, "bench_registry_availability: bad policy spec %s\n",
                   pol.spec);
      std::exit(1);
    }
    for (const auto& sc : kScenarios) {
      ClusterConfig cfg = BaseCluster(redundancy);
      if (sc.faults[0] != '\0' && !ParseFaultPlan(sc.faults, cfg.faults)) {
        std::fprintf(stderr,
                     "bench_registry_availability: internal fault spec "
                     "rejected\n");
        std::exit(1);
      }
      RunResult r;
      r.policy = pol.name;
      r.scenario = sc.name;
      r.report = Cluster(cfg).Serve(trace);
      r.mean_ttft = r.report.MeanTtft();
      r.failed = r.report.elastic.failed;
      r.remote_reads = static_cast<long long>(
          r.report.merged.metrics.Value("registry.reads.remote"));
      r.degraded_reads = static_cast<long long>(
          r.report.merged.metrics.Value("registry.reads.degraded"));
      std::printf(
          "  %-12s %-12s mean TTFT %6.3fs  remote %4lld  degraded %3lld  "
          "failed %3lld  repairs %lld\n",
          r.policy.c_str(), r.scenario.c_str(), r.mean_ttft, r.remote_reads,
          r.degraded_reads, r.failed, r.report.elastic.repair_jobs);
      if (writer.ok()) {
        writer.Append(r.report.merged.metrics,
                      {{"policy", r.policy}, {"scenario", r.scenario}});
      }
      results.push_back(std::move(r));
    }
  }
  auto find = [&](const char* policy, const char* scenario) -> const RunResult& {
    for (const RunResult& r : results) {
      if (r.policy == policy && r.scenario == scenario) {
        return r;
      }
    }
    std::fprintf(stderr, "bench_registry_availability: missing run %s/%s\n",
                 policy, scenario);
    std::exit(1);
  };

  // Fault-free sanity: every policy serves the whole trace (the registry only
  // adds transfer cost, never loses anything when all nodes are live).
  for (const auto& pol : kPolicies) {
    const RunResult& r = find(pol.name, "fault-free");
    gate.Check(r.report.completed() == trace.requests.size(),
               std::string(pol.name) + " fault-free dropped requests",
               r.report);
  }
  // Conservation for every faulted run.
  for (const RunResult& r : results) {
    if (r.scenario == "fault-free") {
      continue;
    }
    gate.Check(r.report.elastic.active &&
                   r.report.elastic.completed + r.report.elastic.shed +
                           r.report.elastic.failed ==
                       r.report.elastic.offered,
               r.policy + " " + r.scenario + " conservation", r.report);
  }
  // The availability gates: redundancy keeps every request servable where
  // single copies strand them.
  const RunResult& none_1 = find("none", "1-of-8 loss");
  gate.Check(none_1.failed > 0,
             "none/1-of-8: expected lost requests (single copies died with "
             "the node) — scenario too easy to gate redundancy",
             none_1.report);
  for (const char* p : {"replicate(2)", "replicate(3)", "erasure(4,2)"}) {
    const RunResult& r = find(p, "1-of-8 loss");
    gate.Check(r.failed == 0, std::string(p) + "/1-of-8: lost requests",
               r.report);
  }
  for (const char* p : {"replicate(3)", "erasure(4,2)"}) {
    const RunResult& r = find(p, "2-of-8 loss");
    gate.Check(r.failed == 0, std::string(p) + "/2-of-8: lost requests",
               r.report);
  }
  // Degraded reads must actually happen for erasure under loss (parity was
  // exercised, not just lucky data-fragment survival).
  const RunResult& ec_2 = find("erasure(4,2)", "2-of-8 loss");
  gate.Check(ec_2.degraded_reads > 0 || ec_2.remote_reads == 0,
             "erasure(4,2)/2-of-8: no degraded read ever happened", ec_2.report);
  // Background repair ran on spare bandwidth.
  const RunResult& r2_1 = find("replicate(2)", "1-of-8 loss");
  gate.Check(r2_1.report.elastic.repair_jobs > 0,
             "replicate(2)/1-of-8: background repair never completed a job",
             r2_1.report);

  const double total_wall = total_timer.Seconds();
  Table summary({"metric", "value"});
  summary.AddRow({"cold-start mean TTFT, no registry (s)",
                  Table::Num(base_run.MeanTtft(), 3)});
  for (const auto& pol : kPolicies) {
    summary.AddRow({"cold-start mean TTFT, " + std::string(pol.name) + " (s)",
                    Table::Num(find(pol.name, "fault-free").mean_ttft, 3)});
  }
  summary.AddRow({"none lost (1-of-8)", std::to_string(none_1.failed)});
  summary.AddRow({"replicate(2) lost (1-of-8)", std::to_string(r2_1.failed)});
  summary.AddRow(
      {"replicate(3) lost (2-of-8)",
       std::to_string(find("replicate(3)", "2-of-8 loss").failed)});
  summary.AddRow({"erasure(4,2) lost (2-of-8)", std::to_string(ec_2.failed)});
  summary.AddRow({"erasure(4,2) degraded reads (2-of-8)",
                  std::to_string(ec_2.degraded_reads)});
  summary.AddRow({"repair jobs (R2, 1-of-8)",
                  std::to_string(r2_1.report.elastic.repair_jobs)});
  summary.AddRow({"repair GB (R2, 1-of-8)",
                  Table::Num(r2_1.report.elastic.repair_bytes / 1e9, 2)});
  summary.AddRow({"metrics JSONL lines", std::to_string(writer.lines_written())});
  summary.AddRow({"wall time (s)", Table::Num(total_wall, 1)});
  summary.AddRow({"availability gates", gate.ok ? "PASS" : "FAIL"});
  std::printf("\n%s\n", summary.ToAscii().c_str());

  if (const char* json_path = ParseStringFlag(argc, argv, "--json")) {
    BenchJson json("bench_registry_availability");
    json.Add("ttft_no_registry", base_run.MeanTtft(), "s",
             /*higher_is_better=*/false);
    json.Add("ttft_replicate2", find("replicate(2)", "fault-free").mean_ttft,
             "s", /*higher_is_better=*/false);
    json.Add("lost_none_1of8", static_cast<double>(none_1.failed), "req");
    json.Add("lost_replicate2_1of8", static_cast<double>(r2_1.failed), "req",
             /*higher_is_better=*/false);
    json.Add("lost_erasure42_2of8", static_cast<double>(ec_2.failed), "req",
             /*higher_is_better=*/false);
    json.Add("degraded_erasure42_2of8", static_cast<double>(ec_2.degraded_reads),
             "req");
    json.Add("repair_jobs_replicate2_1of8",
             static_cast<double>(r2_1.report.elastic.repair_jobs), "jobs");
    json.Add("gates_ok", gate.ok ? 1.0 : 0.0, "bool");
    json.WriteFile(json_path);
  }

  if (!gate.ok) {
    if (WriteChromeTrace(flightrec_path, gate.failing_flight)) {
      std::fprintf(stderr,
                   "bench_registry_availability: dumped %zu flight-recorder "
                   "events (first failing run) to %s\n",
                   gate.failing_flight.size(), flightrec_path.c_str());
    } else {
      std::fprintf(stderr,
                   "bench_registry_availability: cannot write flight recorder "
                   "dump to %s\n",
                   flightrec_path.c_str());
    }
    std::exit(1);
  }
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(argc, argv);
  return 0;
}
