// Regenerates the view of paper Fig. 1 (motivation): invocation counts per time window
// for many model variants under the azure-like bursty trace generator. Expected shape:
// a few dense, persistently popular variants and a long tail of sporadic ones, with
// idle (zero-count) windows even for popular variants.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 101;
  Banner("Figure 1 — invocation burstiness per variant", "Fig. 1", seed);

  TraceConfig tc;
  tc.n_models = 20;
  tc.arrival_rate = 4.0;
  tc.duration_s = 600.0;
  tc.dist = PopularityDist::kAzure;
  tc.seed = seed;
  const Trace trace = GenerateTrace(tc);
  const auto matrix = InvocationMatrix(trace, 30.0);

  std::printf("requests per 30 s window (columns = time; '.'=0, digits clipped at 9):\n\n");
  // Order models by total volume so the heavy head prints first.
  std::vector<std::pair<int, int>> order;  // (total, model)
  for (int m = 0; m < trace.n_models; ++m) {
    int total = 0;
    for (int c : matrix[static_cast<size_t>(m)]) {
      total += c;
    }
    order.emplace_back(total, m);
  }
  std::sort(order.rbegin(), order.rend());
  for (const auto& [total, m] : order) {
    std::printf("model-%02d |", m);
    int idle = 0;
    for (int c : matrix[static_cast<size_t>(m)]) {
      if (c == 0) {
        std::printf(".");
        ++idle;
      } else {
        std::printf("%d", std::min(c, 9));
      }
    }
    std::printf("| total=%4d idle-windows=%d\n", total, idle);
  }
  std::printf("\nExpected shape (paper Fig. 1): mixed dense and sporadic variants; the\n"
              "yellow idle stretches are the wasted capacity motivating DeltaZip.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
