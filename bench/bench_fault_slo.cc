// SLO attainment through faults and elasticity, versus a static cluster.
//
// Two scenarios, both gated (exit code 1 on failure, so CI runs this directly):
//   1. 1-of-8 worker loss — an 8-GPU cluster runs near capacity; worker 2
//      crashes and never recovers, its in-flight and homed traffic re-routed
//      to survivors. Static baseline (autoscaler off): the 7 survivors run
//      over capacity and the interactive backlog grows for the rest of the
//      run. Elastic (autoscaler on): the scaler detects the TTFT/backlog
//      breach and boots replacement capacity. Gate: elastic interactive-class
//      SLO attainment >= 2x the static baseline, and neither run loses a
//      request (conservation ledger).
//   2. 4 -> 8 -> 4 diurnal cycle — a 4-GPU cluster under a sinusoidal load
//      envelope whose peak needs ~8 workers. Gate: the scaler reaches
//      max_workers at the peak, drains back to min_workers after the trough,
//      and the cycle completes with zero lost requests (completed + shed ==
//      offered, failed == 0).
//
// Every worker runs a bounded flight-recorder ring; when a gate trips, the
// failing run's merged ring is dumped as a Chrome trace JSON
// (`--flightrec-out`, default fault_flightrec.json) for CI to attach next to
// the log. `--metrics-out` writes each run's merged cluster snapshot as a
// JSONL time series (dz metrics schema); `--json` writes the bench-summary
// JSON (dz-bench-v1 schema). `--quick` shortens both scenarios for CI smoke.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/router.h"
#include "src/metrics/metrics.h"
#include "src/obs/trace_export.h"

namespace dz {
namespace {

// Default-length conversational traffic. Calibration (CLI probe, priority
// scheduler): an 8-GPU cluster's continuous-batching knee sits near 80 req/s
// and a 7-GPU cluster's near 70 — so rates in the low 70s are healthy with 8
// workers and divergent (growing backlog) with 7.
TraceConfig BaseTraffic(double rate, double duration_s, uint64_t seed) {
  TraceConfig tc;
  tc.n_models = 32;
  tc.arrival_rate = rate;
  tc.duration_s = duration_s;
  tc.dist = PopularityDist::kZipf;
  tc.seed = seed;
  tc.tenants.n_tenants = 6;
  tc.tenants.interactive_frac = 0.3;
  tc.tenants.batch_frac = 0.1;
  return tc;
}

ClusterConfig BaseCluster(int n_gpus) {
  ClusterConfig cfg;
  cfg.placer.n_gpus = n_gpus;
  cfg.placer.policy = PlacementPolicy::kDeltaAffinity;
  cfg.engine.exec.shape = ModelShape::Llama13B();
  cfg.engine.exec.gpu = GpuSpec::A800();
  cfg.engine.exec.tp = 4;
  cfg.engine.max_concurrent_deltas = 8;
  // FCFS, not priority: this bench measures what capacity loss does to the
  // interactive class. The priority scheduler would shield interactive by
  // sacrificing standard/batch (bench_ablation_scheduler's story); FCFS lets
  // a growing backlog hit every class, so attainment tracks capacity.
  cfg.engine.scheduler.policy = SchedPolicy::kFcfs;
  cfg.engine.scheduler.slo = SloSpecs();
  // Prefetch on so membership changes re-warm caches through the router's
  // warm-hint path (the elastic loop attributes those loads as rewarm_*).
  cfg.engine.prefetch.enabled = true;
  cfg.engine.tracing.enabled = true;
  cfg.engine.tracing.ring_capacity = 4096;  // bounded flight recorder
  return cfg;
}

// Interactive-class TTFT attainment over OFFERED interactive requests: a
// request stranded/failed by a fault has no record and counts as a miss, so
// losing capacity cannot inflate the score.
double InteractiveAttainment(const Trace& trace, const ClusterReport& report,
                             const SloSpecs& slo, long long* offered_out) {
  long long offered = 0;
  for (const TraceRequest& req : trace.requests) {
    offered += req.slo == SloClass::kInteractive ? 1 : 0;
  }
  const double ttft_slo = slo.Of(SloClass::kInteractive).ttft_s;
  long long hit = 0;
  for (const RequestRecord& rec : report.merged.records) {
    if (rec.slo == SloClass::kInteractive && rec.Ttft() <= ttft_slo) {
      ++hit;
    }
  }
  if (offered_out != nullptr) {
    *offered_out = offered;
  }
  return offered > 0 ? static_cast<double>(hit) / static_cast<double>(offered)
                     : 1.0;
}

bool ConservationHolds(const ClusterReport& r) {
  return r.elastic.active &&
         r.elastic.completed + r.elastic.shed + r.elastic.failed ==
             r.elastic.offered &&
         static_cast<long long>(r.merged.records.size()) == r.elastic.completed;
}

struct GateState {
  bool ok = true;
  std::vector<TraceEvent> failing_flight;  // first failing run's merged rings

  void Check(bool cond, const char* what, const ClusterReport& report) {
    if (cond) {
      return;
    }
    std::fprintf(stderr, "bench_fault_slo: FAIL %s\n", what);
    if (ok) {
      failing_flight = report.MergedTraceEvents();
    }
    ok = false;
  }
};

void Run(int argc, char** argv) {
  const bool quick = ParseQuickFlag(argc, argv);
  const uint64_t seed = 1313;
  Banner("Fault injection + elastic autoscaling vs a static cluster",
         "cluster layer (beyond paper scope)", seed);

  const char* metrics_flag = ParseStringFlag(argc, argv, "--metrics-out");
  const std::string metrics_path =
      metrics_flag != nullptr ? metrics_flag : "fault_metrics.jsonl";
  const char* flightrec_flag = ParseStringFlag(argc, argv, "--flightrec-out");
  const std::string flightrec_path =
      flightrec_flag != nullptr ? flightrec_flag : "fault_flightrec.json";
  MetricsJsonlWriter writer(metrics_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "bench_fault_slo: cannot open %s\n",
                 metrics_path.c_str());
  }
  GateState gate;
  const SteadyTimer total_timer;

  // ---- scenario 1: 1-of-8 worker loss ------------------------------------
  // Rate 72 on 8 workers: just under the 8-worker knee, over the 7-worker one,
  // so the static baseline's backlog — and its interactive TTFT — grows from
  // the crash until the trace ends while the elastic run restores capacity.
  const double crash_duration = quick ? 200.0 : 400.0;
  const TraceConfig crash_tc = BaseTraffic(76.0, crash_duration, seed);
  const Trace crash_trace = GenerateTrace(crash_tc);

  ClusterConfig static_cfg = BaseCluster(8);
  const bool parsed = ParseFaultPlan("crash@20:w2,detect=3", static_cfg.faults);
  if (!parsed) {
    std::fprintf(stderr, "bench_fault_slo: internal fault spec rejected\n");
    std::exit(1);
  }
  ClusterConfig elastic_cfg = static_cfg;
  elastic_cfg.autoscale.enabled = true;
  elastic_cfg.autoscale.min_workers = 4;
  elastic_cfg.autoscale.max_workers = 10;  // headroom to drain the crash backlog
  elastic_cfg.autoscale.decision_interval_s = 5.0;
  elastic_cfg.autoscale.cooldown_s = 10.0;
  elastic_cfg.autoscale.target_ttft_p99_s =
      static_cfg.engine.scheduler.slo.Of(SloClass::kInteractive).ttft_s;
  elastic_cfg.autoscale.scale_up_backlog_per_worker = 4.0;
  elastic_cfg.autoscale.scale_down_backlog_per_worker = 0.5;

  std::printf("  scenario 1: 1-of-8 loss, %zu requests over %.0fs, crash@20s\n",
              crash_trace.requests.size(), crash_duration);
  const ClusterReport static_run = Cluster(static_cfg).Serve(crash_trace);
  const ClusterReport elastic_run = Cluster(elastic_cfg).Serve(crash_trace);
  long long interactive_offered = 0;
  const double static_attain =
      InteractiveAttainment(crash_trace, static_run,
                            static_cfg.engine.scheduler.slo, &interactive_offered);
  const double elastic_attain = InteractiveAttainment(
      crash_trace, elastic_run, elastic_cfg.engine.scheduler.slo, nullptr);
  const double ratio = elastic_attain / std::max(static_attain, 1e-9);
  std::printf(
      "    static : attainment %.3f (%lld interactive), makespan %.0fs, "
      "retried %lld\n",
      static_attain, interactive_offered, static_run.makespan_s(),
      static_run.elastic.retried);
  std::printf(
      "    elastic: attainment %.3f, makespan %.0fs, retried %lld, "
      "scale ups/downs %d/%d, workers peak/final %d/%d\n",
      elastic_attain, elastic_run.makespan_s(), elastic_run.elastic.retried,
      elastic_run.elastic.scale_ups, elastic_run.elastic.scale_downs,
      elastic_run.elastic.peak_workers, elastic_run.elastic.final_workers);

  gate.Check(ConservationHolds(static_run), "scenario 1 static conservation",
             static_run);
  gate.Check(ConservationHolds(elastic_run), "scenario 1 elastic conservation",
             elastic_run);
  gate.Check(static_run.elastic.failed == 0 && elastic_run.elastic.failed == 0,
             "scenario 1 lost requests (reroute must strand nothing)",
             elastic_run);
  gate.Check(elastic_run.elastic.scale_ups > 0,
             "scenario 1 elastic run never scaled up", elastic_run);
  gate.Check(ratio >= 2.0,
             "scenario 1 attainment: elastic < 2x static baseline",
             elastic_run);
  if (writer.ok()) {
    writer.Append(static_run.merged.metrics,
                  {{"scenario", "crash-1of8"}, {"mode", "static"}});
    writer.Append(elastic_run.merged.metrics,
                  {{"scenario", "crash-1of8"}, {"mode", "elastic"}});
  }

  // ---- scenario 2: 4 -> 8 -> 4 diurnal cycle -----------------------------
  // Peak demand 40 * (1 + 0.9) = 76 req/s needs the full 8-worker ceiling;
  // the trough and the post-trace tail need only the 4-worker floor, so the
  // trailing decision grid must drain the cluster back down.
  const double cycle_duration = quick ? 240.0 : 480.0;
  TraceConfig cycle_tc = BaseTraffic(40.0, cycle_duration, seed + 1);
  cycle_tc.tenants.scenario = TenantScenario::kDiurnal;
  cycle_tc.tenants.diurnal_period_s = cycle_duration;
  cycle_tc.tenants.diurnal_amplitude = 0.9;
  const Trace cycle_trace = GenerateTrace(cycle_tc);

  ClusterConfig cycle_cfg = BaseCluster(4);
  cycle_cfg.autoscale.enabled = true;
  cycle_cfg.autoscale.min_workers = 4;
  cycle_cfg.autoscale.max_workers = 8;
  cycle_cfg.autoscale.decision_interval_s = 5.0;
  cycle_cfg.autoscale.cooldown_s = 10.0;
  cycle_cfg.autoscale.target_ttft_p99_s =
      cycle_cfg.engine.scheduler.slo.Of(SloClass::kInteractive).ttft_s;
  cycle_cfg.autoscale.scale_up_backlog_per_worker = 4.0;
  cycle_cfg.autoscale.scale_down_backlog_per_worker = 0.5;

  std::printf("  scenario 2: 4->8->4 diurnal cycle, %zu requests over %.0fs\n",
              cycle_trace.requests.size(), cycle_duration);
  const ClusterReport cycle_run = Cluster(cycle_cfg).Serve(cycle_trace);
  std::printf(
      "    elastic: makespan %.0fs, scale ups/downs %d/%d, workers "
      "peak/final %d/%d, offered/completed/shed/failed %lld/%lld/%lld/%lld\n",
      cycle_run.makespan_s(), cycle_run.elastic.scale_ups,
      cycle_run.elastic.scale_downs, cycle_run.elastic.peak_workers,
      cycle_run.elastic.final_workers, cycle_run.elastic.offered,
      cycle_run.elastic.completed, cycle_run.elastic.shed,
      cycle_run.elastic.failed);

  gate.Check(ConservationHolds(cycle_run), "scenario 2 conservation", cycle_run);
  gate.Check(cycle_run.elastic.failed == 0, "scenario 2 lost requests",
             cycle_run);
  gate.Check(cycle_run.elastic.peak_workers == 8,
             "scenario 2 never reached the 8-worker peak", cycle_run);
  gate.Check(cycle_run.elastic.final_workers == 4,
             "scenario 2 never drained back to the 4-worker floor", cycle_run);
  gate.Check(cycle_run.elastic.scale_downs > 0,
             "scenario 2 never scaled down", cycle_run);
  if (writer.ok()) {
    writer.Append(cycle_run.merged.metrics,
                  {{"scenario", "diurnal-4-8-4"}, {"mode", "elastic"}});
  }

  const double total_wall = total_timer.Seconds();
  Table summary({"metric", "value"});
  summary.AddRow({"interactive attainment (static, 1-of-8 loss)",
                  Table::Num(static_attain, 3)});
  summary.AddRow({"interactive attainment (elastic, 1-of-8 loss)",
                  Table::Num(elastic_attain, 3)});
  summary.AddRow({"attainment ratio (gate >= 2.0)", Table::Num(ratio, 2)});
  summary.AddRow({"crash re-routes (elastic)",
                  std::to_string(elastic_run.elastic.retried)});
  summary.AddRow({"re-warm loads / stall hidden (s)",
                  std::to_string(elastic_run.elastic.rewarm_loads) + " / " +
                      Table::Num(elastic_run.elastic.rewarm_s, 1)});
  summary.AddRow({"cycle workers peak/final",
                  std::to_string(cycle_run.elastic.peak_workers) + " / " +
                      std::to_string(cycle_run.elastic.final_workers)});
  summary.AddRow({"cycle lost requests",
                  std::to_string(cycle_run.elastic.failed)});
  summary.AddRow({"metrics JSONL lines", std::to_string(writer.lines_written())});
  summary.AddRow({"wall time (s)", Table::Num(total_wall, 1)});
  summary.AddRow({"SLO gates", gate.ok ? "PASS" : "FAIL"});
  std::printf("\n%s\n", summary.ToAscii().c_str());

  if (const char* json_path = ParseStringFlag(argc, argv, "--json")) {
    BenchJson json("bench_fault_slo");
    json.Add("attainment_static", static_attain, "frac");
    json.Add("attainment_elastic", elastic_attain, "frac");
    json.Add("attainment_ratio", ratio, "x");
    json.Add("cycle_peak_workers",
             static_cast<double>(cycle_run.elastic.peak_workers), "workers");
    json.Add("cycle_lost", static_cast<double>(cycle_run.elastic.failed), "req",
             /*higher_is_better=*/false);
    json.Add("gates_ok", gate.ok ? 1.0 : 0.0, "bool");
    json.WriteFile(json_path);
  }

  if (!gate.ok) {
    if (WriteChromeTrace(flightrec_path, gate.failing_flight)) {
      std::fprintf(stderr,
                   "bench_fault_slo: dumped %zu flight-recorder events (first "
                   "failing run) to %s\n",
                   gate.failing_flight.size(), flightrec_path.c_str());
    } else {
      std::fprintf(stderr,
                   "bench_fault_slo: cannot write flight recorder dump to %s\n",
                   flightrec_path.c_str());
    }
    std::exit(1);
  }
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) {
  dz::Run(argc, argv);
  return 0;
}
