// Google-benchmark microbenchmarks of the real (CPU-executed) primitives: dense GEMM,
// packed dequant-GEMM, 2:4 sparse GEMM, the OBS solver, and the lossless codec. These
// measure this library's own kernels (not the simulated GPU model) and back the
// relative-cost assumptions used elsewhere.
//
// Flags (shared bench conventions, translated to Google Benchmark flags by the
// custom main below):
//   --quick        short measuring time (CI smoke / tools/bench_json.sh)
//   --json <path>  write Google Benchmark JSON to <path>, console output stays
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/compress/lossless.h"
#include "src/compress/obs.h"
#include "src/tensor/backend.h"
#include "src/tensor/packed_quant.h"
#include "src/tensor/sparse24.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dz {
namespace {

void BM_DenseGemmNT(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix x = Matrix::Random(m, 256, rng, 1.0f);
  const Matrix w = Matrix::Random(256, 256, rng, 0.02f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatmulNT(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * m * 256 * 256);
}
BENCHMARK(BM_DenseGemmNT)->Arg(1)->Arg(8)->Arg(64);

void BM_PackedQuantGemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(2);
  const Matrix x = Matrix::Random(m, 256, rng, 1.0f);
  const auto w = PackedQuantMatrix::Quantize(Matrix::Random(256, 256, rng, 0.02f), 4, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.MatmulNT(x));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * m * 256 * 256);
}
BENCHMARK(BM_PackedQuantGemm)->Arg(1)->Arg(8)->Arg(64);

void BM_Sparse24Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(3);
  const Matrix x = Matrix::Random(m, 256, rng, 1.0f);
  const auto w =
      Sparse24Matrix::Pack(MagnitudePrune24(Matrix::Random(256, 256, rng, 0.02f)), 4, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.MatmulNT(x));
  }
  // Counted at dense FLOPs so throughput is comparable with the dense kernels.
  state.SetItemsProcessed(state.iterations() * 2ll * m * 256 * 256);
}
BENCHMARK(BM_Sparse24Gemm)->Arg(1)->Arg(8)->Arg(64);

void BM_ObsCompress(benchmark::State& state) {
  Rng rng(4);
  const Matrix w = Matrix::Random(64, 128, rng, 0.02f);
  const Matrix x = Matrix::Random(256, 128, rng, 1.0f);
  ObsConfig cfg;
  cfg.bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObsCompress(w, x, cfg));
  }
}
BENCHMARK(BM_ObsCompress)->Arg(2)->Arg(4);

void BM_GdeflateRoundTrip(benchmark::State& state) {
  Rng rng(5);
  ByteBuffer input(static_cast<size_t>(state.range(0)));
  for (auto& b : input) {
    b = rng.NextDouble() < 0.7 ? 0 : static_cast<uint8_t>(rng.NextBelow(32));
  }
  for (auto _ : state) {
    const ByteBuffer z = GdeflateCompress(input);
    benchmark::DoNotOptimize(GdeflateDecompress(z));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GdeflateRoundTrip)->Arg(1 << 14)->Arg(1 << 17);

// Decompress alone — the serving-side hot path (paper's GPU-side step 4).
void BM_GdeflateDecompress(benchmark::State& state) {
  Rng rng(5);
  ByteBuffer input(static_cast<size_t>(state.range(0)));
  for (auto& b : input) {
    b = rng.NextDouble() < 0.7 ? 0 : static_cast<uint8_t>(rng.NextBelow(32));
  }
  const ByteBuffer z = GdeflateCompress(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GdeflateDecompress(z));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GdeflateDecompress)->Arg(1 << 17)->Arg(1 << 20);

// Large prefill-shaped dense GEMM — the blocked kernel layer's tentpole shape.
void BM_DenseGemmNTLarge(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(7);
  const Matrix x = Matrix::Random(m, 1024, rng, 1.0f);
  const Matrix w = Matrix::Random(1024, 1024, rng, 0.02f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatmulNT(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * m * 1024 * 1024);
}
BENCHMARK(BM_DenseGemmNTLarge)->Arg(256);

void BM_Transpose(benchmark::State& state) {
  Rng rng(8);
  const Matrix m = Matrix::Random(2048, 1024, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Transposed());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(m.size()));
}
BENCHMARK(BM_Transpose);

void BM_QuantizePack(benchmark::State& state) {
  Rng rng(6);
  const Matrix w = Matrix::Random(256, 512, rng, 0.02f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackedQuantMatrix::Quantize(w, 4, 128));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(w.size()));
}
BENCHMARK(BM_QuantizePack);

}  // namespace
}  // namespace dz

// Custom main: maps the repo-wide `--quick` / `--json <path>` conventions onto
// Google Benchmark's flags, passing anything else through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      // Shared ParseQuickFlag syntax: bare flag means on, an explicit 0/1
      // value overrides.
      bool quick = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        quick = std::strtol(argv[i + 1], nullptr, 10) != 0;
        ++i;
      }
      if (quick) {
        // Plain-double form: the "0.02s" suffix syntax needs benchmark >= 1.8.
        args.push_back("--benchmark_min_time=0.02");
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      args.push_back("--benchmark_out_format=json");
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::vector<char*> cargs;
  for (auto& a : args) {
    cargs.push_back(a.data());
  }
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) {
    return 1;
  }
  // Recorded into the Google Benchmark JSON "context" object; bench_json.sh
  // lifts these into the merged dz-bench-v2 trajectory file so a measurement is
  // never divorced from the SIMD backend and pool size it ran with.
  benchmark::AddCustomContext("isa", dz::kernels::ActiveBackend().name);
  benchmark::AddCustomContext(
      "threads", std::to_string(dz::ThreadPool::Global().thread_count()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
