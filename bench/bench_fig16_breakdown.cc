// Reproduces paper Fig. 16: per-request latency breakdown (queuing / loading /
// inference) on a small trace — 12 models, 0.5 req/s for 60 s, 2x RTX 3090 (TP=2).
// Expected shape: vLLM+SCB requests are dominated by queuing with substantial loading;
// DeltaZip collapses both by loading only small deltas and batching across variants.
//
// Both runs execute with tracing enabled, and the hand-rolled per-record sums
// are cross-checked against the dz_obs critical-path attribution computed from
// the same run's trace events (queue ↔ queue, loading ↔ load, inference ↔
// compute + preempt). Disagreement beyond float tolerance exits 1, so the two
// breakdown paths can never silently diverge.
#include <cmath>
#include <cstdlib>

#include "bench/bench_common.h"

namespace dz {
namespace {

// The record accessors and the event-derived attribution segment the same
// boundaries, so their per-run sums must agree to telescoping float error.
void CheckAttribution(const ServeReport& report, double q_sum, double l_sum,
                      double i_sum) {
  PathSegments total;
  for (const PathAttribution& a : report.path_by_class) {
    total.Add(a.e2e);
  }
  const double tol = 1e-6;
  const bool ok = std::abs(total.queue_s - q_sum) <= tol &&
                  std::abs(total.load_s - l_sum) <= tol &&
                  std::abs(total.compute_s + total.preempt_s - i_sum) <= tol;
  std::printf(
      "attribution cross-check (record / trace): queuing %.3f/%.3f, "
      "loading %.3f/%.3f, inference %.3f/%.3f -> %s\n\n",
      q_sum, total.queue_s, l_sum, total.load_s, i_sum,
      total.compute_s + total.preempt_s, ok ? "OK" : "MISMATCH");
  if (!ok) {
    std::fprintf(stderr,
                 "bench_fig16_breakdown: FAIL hand-rolled breakdown disagrees "
                 "with critical-path attribution\n");
    std::exit(1);
  }
}

void PrintBreakdown(const ServeReport& report) {
  Table table({"req", "model", "queuing(s)", "loading(s)", "inference(s)", "e2e(s)"});
  std::vector<RequestRecord> recs = report.records;
  std::sort(recs.begin(), recs.end(),
            [](const RequestRecord& a, const RequestRecord& b) { return a.id < b.id; });
  double q_sum = 0.0;
  double l_sum = 0.0;
  double i_sum = 0.0;
  const size_t show = std::min<size_t>(recs.size(), 22);
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    q_sum += r.QueueingTime();
    l_sum += r.LoadingTime();
    i_sum += r.InferenceTime();
    if (i < show) {
      table.AddRow({std::to_string(r.id), "#" + std::to_string(r.model_id + 1),
                    Table::Num(r.QueueingTime(), 2), Table::Num(r.LoadingTime(), 2),
                    Table::Num(r.InferenceTime(), 2), Table::Num(r.E2eLatency(), 2)});
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  const double n = static_cast<double>(recs.size());
  std::printf("... (%zu requests total)\n", recs.size());
  std::printf("averages: queuing %.2fs, loading %.2fs, inference %.2fs; makespan %.1fs\n",
              q_sum / n, l_sum / n, i_sum / n, report.makespan_s);
  CheckAttribution(report, q_sum, l_sum, i_sum);
}

void Run() {
  const uint64_t seed = 1616;
  Banner("Figure 16 — serving latency breakdown", "Fig. 16", seed);

  TraceConfig tc;
  tc.n_models = 12;
  tc.arrival_rate = 0.5;
  tc.duration_s = 60.0;
  tc.dist = PopularityDist::kUniform;
  tc.output_mean_tokens = 100;
  tc.seed = seed;
  const Trace trace = GenerateTrace(tc);

  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama7B();
  cfg.exec.gpu = GpuSpec::Rtx3090();
  cfg.exec.tp = 2;
  cfg.max_concurrent_deltas = 6;
  // Tracing on for both runs: the cross-check needs the event-derived
  // attribution (tracing never changes scheduling, golden-enforced).
  cfg.tracing.enabled = true;

  std::printf("--- (a) vLLM+SCB ---\n");
  EngineConfig scb = cfg;
  scb.artifact = ArtifactKind::kFullModel;
  PrintBreakdown(MakeVllmScbEngine(scb)->Serve(trace));

  std::printf("--- (b) DeltaZip ---\n");
  PrintBreakdown(MakeDeltaZipEngine(cfg)->Serve(trace));

  std::printf("Expected shape (paper Fig. 16): the baseline is queuing/loading bound\n"
              "(full-model swaps); DeltaZip requests spend their time in inference.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
