// Reproduces paper Fig. 10: mean time-per-token as a function of N, the number of
// deltas co-resident in GPU memory, across arrival rates and zipf skews (RTX 3090
// scale). Expected shape: N=1 serializes variants and is worst; performance improves
// with N and flattens or regresses once KV memory pressure bites — a short profiling
// trace identifies a near-optimal N that transfers across settings.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1010;
  Banner("Figure 10 — tuning N (concurrent deltas)", "Fig. 10", seed);

  struct Setting {
    double ar;
    double alpha;
  };
  const std::vector<Setting> settings = {
      {3.0, 4.0}, {3.5, 4.0}, {4.0, 3.0}, {4.0, 3.5}, {4.0, 4.0},
      {4.0, 4.5}, {4.0, 5.0}, {4.5, 4.0}, {5.0, 4.0},
  };

  std::vector<std::string> header = {"config \\ N"};
  const std::vector<int> n_values = {1, 2, 3, 4, 5, 6, 7};
  for (int n : n_values) {
    header.push_back("N=" + std::to_string(n));
  }
  Table table(header);

  for (const auto& s : settings) {
    TraceConfig tc;
    tc.n_models = 12;
    tc.arrival_rate = s.ar;
    tc.duration_s = 25.0;
    tc.dist = PopularityDist::kZipf;
    tc.zipf_alpha = s.alpha;
    tc.prompt_mean_tokens = 256;
    tc.prompt_max_tokens = 448;
    tc.output_mean_tokens = 200;
    tc.output_max_tokens = 400;
    tc.seed = seed;
    const Trace trace = GenerateTrace(tc);

    std::vector<std::string> row = {"ar=" + Table::Num(s.ar, 1) +
                                    ",zipf:" + Table::Num(s.alpha, 1)};
    double best = 1e18;
    int best_n = 0;
    for (int n : n_values) {
      // 7B on a 24 GB RTX 3090 with 2-bit deltas: every additional co-resident delta
      // visibly shrinks the KV pool, which is the tension Fig. 10 studies.
      EngineConfig cfg;
      cfg.exec.shape = ModelShape::Llama7B();
      cfg.exec.gpu = GpuSpec::Rtx3090();
      cfg.exec.tp = 1;
      cfg.exec.delta_format = WeightFormat::kSparseInt2;
      cfg.max_concurrent_deltas = n;
      cfg.max_batch = 32;
      const ServeReport report = MakeDeltaZipEngine(cfg)->Serve(trace);
      const double tpt = report.MeanTimePerToken();
      if (tpt < best) {
        best = tpt;
        best_n = n;
      }
      row.push_back(Table::Num(tpt, 4));
    }
    row.front() += " (best N=" + std::to_string(best_n) + ")";
    table.AddRow(row);
  }
  std::printf("mean time per token (s/token):\n\n%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 10): a small-to-middle N is (near-)optimal\n"
              "across settings, so short offline profiling transfers.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
