// Ablation of pipeline step 4 (paper §4.1): optional lossless compression of the
// packed delta artifact. Reports artifact sizes, codec ratio, and the disk-read
// break-even: lossless pays off when disk bandwidth (e.g. NFS) is the bottleneck,
// and is neutral-to-negative on fast NVMe — exactly the paper's guidance.
#include "bench/bench_common.h"
#include "src/compress/lossless.h"
#include "src/simgpu/kernel_model.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 404;
  Banner("Ablation — lossless compression (pipeline step 4)", "§4.1 step 4", seed);

  TrainedFamily family = BuildFamily("llama-sim", ModelConfig::Medium(),
                                     {TaskKind::kSentiment, TaskKind::kNli}, 150, 200,
                                     seed);

  Table table({"bits", "packed (B)", "after gdeflate (B)", "codec ratio", "after rle (B)"});
  double measured_ratio = 1.0;
  for (int bits : {4, 2}) {
    DeltaCompressConfig cfg;
    cfg.bits = bits;
    const CompressedDelta delta = DeltaCompress(
        family.base->weights(), family.finetuned->weights(), family.calibration, cfg);
    const ByteBuffer raw = delta.Serialize();
    const SteadyTimer timer;
    const ByteBuffer gz = GdeflateCompress(raw);
    const double secs = timer.Seconds();
    DZ_CHECK(GdeflateDecompress(gz) == raw);
    const ByteBuffer rle = RleCompress(raw);
    measured_ratio = CompressionRatio(raw.size(), gz.size());
    table.AddRow({std::to_string(bits), std::to_string(raw.size()),
                  std::to_string(gz.size()),
                  Table::Num(CompressionRatio(raw.size(), gz.size()), 3),
                  std::to_string(rle.size())});
    std::printf("  [bits=%d] gdeflate throughput %.1f MB/s (host-side; the paper uses "
                "GPU decompression engines)\n",
                bits, raw.size() / 1e6 / std::max(secs, 1e-9));
  }
  std::printf("\n%s\n", table.ToAscii().c_str());

  // Break-even analysis at paper scale: when does the smaller on-disk artifact beat
  // the added decompression step?
  const ModelShape shape = ModelShape::Llama13B();
  const size_t packed = shape.DeltaBytes(2, true, 128);
  Table be({"storage", "bandwidth (GB/s)", "load packed (s)", "load lossless (s)",
            "lossless wins?"});
  for (const auto& [name, gbps] :
       std::vector<std::pair<const char*, double>>{{"NFS", 0.3}, {"NVMe", 3.0},
                                                   {"parallel-FS", 10.0}}) {
    const double codec_ratio = measured_ratio;  // measured above on real artifacts
    const double gpu_decomp_gbps = 50.0;        // nvcomp-class GDeflate on A100
    const double t_packed = packed / (gbps * 1e9);
    const double t_lossless =
        packed / codec_ratio / (gbps * 1e9) + packed / (gpu_decomp_gbps * 1e9);
    be.AddRow({name, Table::Num(gbps, 1), Table::Num(t_packed, 3),
               Table::Num(t_lossless, 3), t_lossless < t_packed ? "yes" : "no"});
  }
  std::printf("disk-read break-even at 13B scale (2-bit delta = %zu MB):\n\n%s\n",
              packed / 1000000, be.ToAscii().c_str());
  std::printf("Expected shape (paper §4.1): opt in to lossless when disk I/O is the\n"
              "bottleneck (NFS); skip it on fast local storage.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
