// Reproduces paper Fig. 3: weight-value distributions of the pre-trained base model,
// the fine-tuned model, and the delta between them, for one attention projection.
// Expected shape: base and fine-tuned weights span a visibly wider range with outliers;
// the delta is concentrated near zero (which is what makes it compressible).
#include "bench/bench_common.h"
#include "src/util/stats.h"

namespace dz {
namespace {

void Describe(const char* label, const Matrix& m, Table& table) {
  RunningStats s;
  for (float v : m.data()) {
    s.Add(v);
  }
  table.AddRow({label, Table::Num(s.mean(), 5), Table::Num(s.stddev(), 5),
                Table::Num(m.MaxAbs(), 5), Table::Num(m.MeanAbs(), 5)});
}

void Run() {
  const uint64_t seed = 303;
  Banner("Figure 3 — delta magnitude distribution", "Fig. 3", seed);

  TrainedFamily family =
      BuildFamily("llama-sim", ModelConfig::Medium(),
                  {TaskKind::kSentiment, TaskKind::kNli}, 200, 200, seed);

  // Middle-layer q-projection, as in the paper (self_attn.q_proj of a mid layer).
  const int mid = family.config.n_layers / 2;
  const Matrix& base_w = family.base->weights().layers[mid].wq;
  const Matrix& fmt_w = family.finetuned->weights().layers[mid].wq;
  const Matrix delta = Sub(fmt_w, base_w);

  Table table({"matrix", "mean", "stddev", "max|w|", "mean|w|"});
  Describe("base (wq)", base_w, table);
  Describe("fine-tuned (wq)", fmt_w, table);
  Describe("delta (fmt-base)", delta, table);
  std::printf("%s\n", table.ToAscii().c_str());

  const double range = std::max(base_w.MaxAbs(), fmt_w.MaxAbs());
  std::printf("value histograms over [%.4f, %.4f]:\n\n", -range, range);
  for (const auto& [label, m] :
       std::vector<std::pair<const char*, const Matrix*>>{
           {"base", &base_w}, {"fine-tuned", &fmt_w}, {"delta", &delta}}) {
    Histogram h(-range, range, 15);
    for (float v : m->data()) {
      h.Add(v);
    }
    std::printf("--- %s ---\n%s\n", label, h.ToAscii(50).c_str());
  }
  std::printf("ratio mean|delta| / mean|base| = %.3f  (expected << 1)\n",
              delta.MeanAbs() / base_w.MeanAbs());
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
