// Reproduces paper Table 1: post-compression model quality (3 downstream tasks) and
// compression ratios for FP16 / SparseGPT-direct / AWQ / ΔCompress(4-bit) /
// ΔCompress(2-bit), across several model families.
//
// Expected shape: ΔCompress ≈ FP16 accuracy at the highest ratios; SparseGPT applied
// directly to the fine-tuned weights drops substantially; AWQ holds accuracy but at a
// much lower ratio; the gemma-sim family shows lower overall ratios because its
// (uncompressed) embedding share is larger.
#include "bench/bench_common.h"

namespace dz {
namespace {

struct MethodResult {
  std::string method;
  double acc[3] = {0, 0, 0};
  double ratio = 1.0;
};

void Run() {
  const uint64_t seed = 11;
  Banner("Table 1 — post-compression model quality", "Tab. 1", seed);

  struct FamilySpec {
    std::string name;
    ModelConfig config;
  };
  const std::vector<FamilySpec> families = {
      {"pythia-sim", ModelConfig::Small()},
      {"llama-sim-7b", ModelConfig::Medium()},
      {"llama-sim-13b", ModelConfig::Large()},
      {"gemma-sim-2b", GemmaSimConfig()},
  };
  // T1 easy classification, T2 memorization-heavy math, T3 teacher-defined yes/no —
  // spanning the capacity-utilization spectrum where direct compression starts to hurt.
  const std::vector<TaskKind> task_kinds = {TaskKind::kSentiment, TaskKind::kArithmetic,
                                            TaskKind::kTeacher};

  Table table({"model", "method", "T1%", "T2%", "T3%", "ratio"});
  const int eval_n = 150;
  const uint64_t eval_seed = 424242;

  for (const auto& spec : families) {
    // Embeddings are frozen during FMT (common practice; see FineTuneConfig), so the
    // delta artifact carries only linear-layer payloads — the regime behind the
    // paper's headline ratios.
    // Task weights oversample the memorization-heavy math task, which otherwise
    // under-trains in a uniform mixture at this scale.
    TrainedFamily family = BuildFamily(spec.name, spec.config, task_kinds, 250, 800,
                                       seed ^ (spec.config.d_model * 131ull),
                                       /*calib_samples=*/12, /*freeze_embeddings=*/true,
                                       /*task_weights=*/{1.0, 2.5, 1.0});
    const size_t fp16_bytes = family.finetuned->weights().Fp16ByteSize();
    const size_t linear_fp16 = family.finetuned->weights().LinearFp16ByteSize();
    const size_t rest_fp16 = fp16_bytes - linear_fp16;

    auto eval3 = [&](const Transformer& model, double out[3]) {
      for (int t = 0; t < 3; ++t) {
        out[t] = EvaluateAccuracy(model, *family.tasks[static_cast<size_t>(t)], eval_n,
                                  eval_seed + t);
      }
    };

    std::vector<MethodResult> results;
    {
      MethodResult r;
      r.method = "FP16";
      eval3(*family.finetuned, r.acc);
      r.ratio = 1.0;
      results.push_back(r);
    }
    {
      MethodResult r;
      r.method = "SparseGPT (4bit*)";
      ObsConfig cfg;
      cfg.bits = 4;
      cfg.prune24 = true;
      size_t linear_bytes = 0;
      const Transformer model(SparseGptCompressModel(family.finetuned->weights(),
                                                     family.calibration, cfg,
                                                     &linear_bytes));
      eval3(model, r.acc);
      r.ratio = static_cast<double>(fp16_bytes) /
                static_cast<double>(linear_bytes + rest_fp16);
      results.push_back(r);
    }
    {
      MethodResult r;
      r.method = "AWQ (4bit)";
      AwqConfig cfg;
      cfg.bits = 4;
      size_t linear_bytes = 0;
      const Transformer model(AwqCompressModel(family.finetuned->weights(),
                                               family.calibration, cfg, &linear_bytes));
      eval3(model, r.acc);
      r.ratio = static_cast<double>(fp16_bytes) /
                static_cast<double>(linear_bytes + rest_fp16);
      results.push_back(r);
    }
    for (int bits : {4, 2}) {
      MethodResult r;
      r.method = "DeltaZip (" + std::to_string(bits) + "bit*)";
      DeltaCompressConfig cfg;
      cfg.bits = bits;
      const CompressedDelta delta = DeltaCompress(
          family.base->weights(), family.finetuned->weights(), family.calibration, cfg);
      const Transformer model(delta.ApplyTo(family.base->weights()));
      eval3(model, r.acc);
      r.ratio = static_cast<double>(fp16_bytes) /
                static_cast<double>(delta.StoredByteSize());
      results.push_back(r);
    }

    for (const auto& r : results) {
      table.AddRow({spec.name, r.method, Pct(r.acc[0]), Pct(r.acc[1]), Pct(r.acc[2]),
                    Table::Num(r.ratio, 2) + "x"});
    }
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf(
      "T1/T2/T3 = sentiment-review / math-mod-arith / boolq-teacher (analogs of the\n"
      "paper's task triples). * = 50%% structured 2:4 pruning on top of quantization.\n"
      "Expected shape (paper Tab. 1): DeltaZip ≈ FP16 at the highest ratio; SparseGPT\n"
      "direct drops hardest; AWQ holds accuracy at a lower ratio; gemma-sim ratios are\n"
      "lower due to its larger embedding share.\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
