// Reproduces paper Fig. 14: co-serving LoRA and FMT models. One "node" serves LoRA
// adapters (DeltaZip inherits Punica-style adapter serving), another serves FMT
// variants. Expected shape: on the LoRA side DeltaZip ≈ vLLM/Punica; on the FMT side
// DeltaZip's compressed deltas crush the full-model-swapping baseline, especially TTFT.
#include "bench/bench_common.h"

namespace dz {
namespace {

void Run() {
  const uint64_t seed = 1414;
  Banner("Figure 14 — LoRA + FMT co-serving", "Fig. 14", seed);

  TraceConfig tc;
  tc.n_models = 16;
  tc.arrival_rate = 1.0;
  tc.duration_s = 180.0;
  tc.dist = PopularityDist::kZipf;
  tc.seed = seed;
  const Trace trace = GenerateTrace(tc);

  EngineConfig node;
  node.exec.shape = ModelShape::Llama7B();
  node.exec.gpu = GpuSpec::A800();
  node.exec.tp = 1;
  node.max_concurrent_deltas = 8;

  // LoRA node: vLLM-with-Punica reference is the same adapter-batched engine; DeltaZip
  // inherits it, so we run the adapter path for both labels (paper reports parity).
  EngineConfig lora_cfg = node;
  lora_cfg.artifact = ArtifactKind::kLoraAdapter;
  lora_cfg.lora_rank = 16;
  const ServeReport lora_vllm = MakeDeltaZipEngine(lora_cfg)->Serve(trace);
  const ServeReport lora_dz = MakeDeltaZipEngine(lora_cfg)->Serve(trace);

  // FMT node: baseline swaps full models; DeltaZip serves compressed deltas.
  EngineConfig fmt_scb = node;
  fmt_scb.artifact = ArtifactKind::kFullModel;
  const ServeReport fmt_vllm = MakeVllmScbEngine(fmt_scb)->Serve(trace);
  EngineConfig fmt_dz = node;
  const ServeReport fmt_dz_r = MakeDeltaZipEngine(fmt_dz)->Serve(trace);

  Table table({"workload", "system", "mean E2E (s)", "mean TTFT (s)"});
  table.AddRow({"LoRA", "vLLM (Punica)", Table::Num(lora_vllm.MeanE2e(), 2),
                Table::Num(lora_vllm.MeanTtft(), 3)});
  table.AddRow({"LoRA", "DeltaZip", Table::Num(lora_dz.MeanE2e(), 2),
                Table::Num(lora_dz.MeanTtft(), 3)});
  table.AddRow({"FMT", "vLLM+SCB", Table::Num(fmt_vllm.MeanE2e(), 2),
                Table::Num(fmt_vllm.MeanTtft(), 3)});
  table.AddRow({"FMT", "DeltaZip", Table::Num(fmt_dz_r.MeanE2e(), 2),
                Table::Num(fmt_dz_r.MeanTtft(), 3)});
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("Expected shape (paper Fig. 14): parity on LoRA serving; DeltaZip far\n"
              "ahead on FMT serving (the paper reports 118s -> 26s E2E, 44s -> 0.2s TTFT).\n");
}

}  // namespace
}  // namespace dz

int main() {
  dz::Run();
  return 0;
}
