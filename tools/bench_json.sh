#!/usr/bin/env bash
# Runs the kernel-layer perf benches with --json and merges their outputs into
# one trajectory file (default BENCH_kernels.json in the repo root). This is
# the entry point the CI perf-smoke step uses; run it locally to refresh the
# checked-in baseline (bench/BENCH_kernels_baseline.json).
#
# Usage: tools/bench_json.sh [build_dir] [out.json]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
out="${2:-$root/BENCH_kernels.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Force a single-threaded pool: the gated blocked-vs-naive speedup ratios must
# measure kernel quality, not how many cores this host happens to have (the
# naive references are serial, so a multi-thread pool would inflate — and
# core-count-skew — every ratio vs the checked-in baseline).
export DZ_THREADS=1

fig06="$build/bench/bench_fig06_matmul_perf"
micro="$build/bench/bench_microkernels"

[ -x "$fig06" ] || { echo "missing $fig06 (build the bench targets first)"; exit 1; }

"$fig06" --quick --json "$tmp/fig06.json" > /dev/null

micro_json=""
if [ -x "$micro" ]; then
  "$micro" --quick --json "$tmp/micro.json" > /dev/null
  micro_json="$tmp/micro.json"
else
  echo "note: bench_microkernels not built (Google Benchmark missing); merging fig06 only"
fi

python3 - "$out" "$tmp/fig06.json" ${micro_json:+"$micro_json"} <<'EOF'
import json, sys

out_path = sys.argv[1]
benches = []
for path in sys.argv[2:]:
    with open(path) as f:
        data = json.load(f)
    if "metrics" in data:  # BenchJson v2 schema: isa/threads already top-level
        benches.append(data)
    elif "benchmarks" in data:  # Google Benchmark schema -> normalize
        metrics = []
        for b in data["benchmarks"]:
            for key, unit in (("items_per_second", "items/s"),
                              ("bytes_per_second", "B/s")):
                if key in b:
                    metrics.append({"name": b["name"], "value": b[key],
                                    "unit": unit, "higher_is_better": True})
        # AddCustomContext entries land in "context" as strings.
        ctx = data.get("context", {})
        bench = {"bench": "bench_microkernels", "metrics": metrics}
        if "isa" in ctx:
            bench["isa"] = ctx["isa"]
        if "threads" in ctx:
            try:
                bench["threads"] = int(ctx["threads"])
            except ValueError:
                pass
        benches.append(bench)
with open(out_path, "w") as f:
    json.dump({"schema": "dz-bench-v2", "benches": benches}, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({sum(len(b['metrics']) for b in benches)} metrics)")
EOF
