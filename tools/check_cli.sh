#!/usr/bin/env bash
# End-to-end CLI flag-validation smoke (tools/check_cli ctest and the CI smoke
# job): malformed --metrics-interval / --trace-out values must fail fast with a
# usage error instead of silently running a misconfigured simulation, and a
# good --trace-out run must produce a Chrome trace JSON that passes
# tools/check_trace.sh.
# Usage: tools/check_cli.sh path/to/dzip_cli [repo-root]
set -u

if [ $# -lt 1 ] || [ ! -x "$1" ]; then
  echo "usage: tools/check_cli.sh path/to/dzip_cli [repo-root]" >&2
  exit 1
fi
cli="$1"
root="${2:-$(cd "$(dirname "$0")/.." && pwd)}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
fail=0

# A small trace every case below replays (2 models, ~20 requests).
if ! "$cli" trace --out "$tmp/t.jsonl" --models 2 --rate 2.0 --duration 10 \
    --seed 7 >/dev/null; then
  echo "FAIL: trace generation"
  exit 1
fi

# Each bad invocation must exit non-zero AND mention the offending flag.
expect_reject() {
  local what="$1" flag="$2"
  shift 2
  if "$cli" "$@" >"$tmp/out" 2>"$tmp/err"; then
    echo "FAIL: $what — expected a usage error, got exit 0"
    fail=1
  elif ! grep -q -- "$flag" "$tmp/err"; then
    echo "FAIL: $what — stderr does not mention $flag:"
    cat "$tmp/err"
    fail=1
  else
    echo "ok: $what rejected"
  fi
}

expect_reject "non-numeric metrics interval" "metrics-interval" \
  simulate --trace "$tmp/t.jsonl" --metrics-interval abc
expect_reject "negative metrics interval" "metrics-interval" \
  simulate --trace "$tmp/t.jsonl" --metrics-interval -5
expect_reject "empty trace-out path" "trace-out" \
  simulate --trace "$tmp/t.jsonl" --trace-out ""
expect_reject "trace-out without a value" "trace-out" \
  simulate --trace "$tmp/t.jsonl" --trace-out
expect_reject "cluster non-numeric metrics interval" "metrics-interval" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --metrics-interval abc
expect_reject "cluster empty trace-out path" "trace-out" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --trace-out ""

# Kernel backend selection: unknown names must fail with the compiled list.
expect_reject "unknown kernel isa" "isa" \
  simulate --trace "$tmp/t.jsonl" --isa bogus
expect_reject "cluster unknown kernel isa" "isa" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --isa bogus

# A forced-scalar run must complete and name the scalar backend in its header
# (scalar is compiled into every binary, so this is machine-independent).
if ! "$cli" simulate --trace "$tmp/t.jsonl" --isa scalar >"$tmp/out" 2>&1; then
  echo "FAIL: forced-scalar simulate run"
  cat "$tmp/out"
  fail=1
elif ! grep -q "kernel backend: scalar" "$tmp/out"; then
  echo "FAIL: forced-scalar run does not report the scalar backend"
  cat "$tmp/out"
  fail=1
else
  echo "ok: forced-scalar simulate run"
fi

# Artifact-registry flags: malformed redundancy / net settings fail fast too.
expect_reject "zero replication factor" "replication" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --replication 0
expect_reject "malformed erasure spec (missing m)" "erasure" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --erasure 4
expect_reject "replication and erasure together" "mutually exclusive" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --replication 2 --erasure 2,1
expect_reject "non-positive net bandwidth" "net-gbps" \
  cluster --trace "$tmp/t.jsonl" --gpus 2 --replication 2 --net-gbps 0

# A good registry run under a worker crash must complete and echo the
# normalized fault plan (the FaultPlanToSpec round-trip) in its report.
if ! "$cli" cluster --trace "$tmp/t.jsonl" --gpus 2 --replication 2 \
    --faults "crash@5:w1,detect=1" >"$tmp/out" 2>&1; then
  echo "FAIL: replicated registry cluster run"
  cat "$tmp/out"
  fail=1
elif ! grep -q "crash@5:w1,detect=1" "$tmp/out"; then
  echo "FAIL: replicated registry run did not echo its fault plan"
  cat "$tmp/out"
  fail=1
else
  echo "ok: replicated registry cluster run"
fi

# Good runs: simulate and cluster each write a validating Chrome trace.
if ! "$cli" simulate --trace "$tmp/t.jsonl" --trace-out "$tmp/sim.json" \
    >"$tmp/out" 2>&1; then
  echo "FAIL: traced simulate run"
  cat "$tmp/out"
  fail=1
elif ! grep -q "trace events" "$tmp/out"; then
  echo "FAIL: traced simulate run did not report its trace export"
  fail=1
else
  "$root/tools/check_trace.sh" "$tmp/sim.json" || fail=1
fi

if ! "$cli" cluster --trace "$tmp/t.jsonl" --gpus 2 --trace-out "$tmp/clu.json" \
    >"$tmp/out" 2>&1; then
  echo "FAIL: traced cluster run"
  cat "$tmp/out"
  fail=1
else
  "$root/tools/check_trace.sh" "$tmp/clu.json" || fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "cli check FAILED"
  exit 1
fi
echo "cli check OK"
