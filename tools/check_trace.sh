#!/usr/bin/env bash
# Validates a Chrome trace_event JSON file produced by `dzip_cli ... --trace-out`
# (CI smoke job and the tools/check_trace ctest). Checks that the file parses,
# the traceEvents array is non-empty, every event carries the required keys
# with sane types, and the async request spans / duration spans the exporter
# promises are actually present — i.e. the file will load in Perfetto or
# chrome://tracing rather than silently rendering nothing.
# Usage: tools/check_trace.sh trace.json
set -u

if [ $# -ne 1 ] || [ ! -f "$1" ]; then
  echo "usage: tools/check_trace.sh trace.json (file must exist)" >&2
  exit 1
fi

python3 - "$1" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

events = doc.get("traceEvents")
if not isinstance(events, list) or not events:
    sys.exit(f"{path}: traceEvents missing or empty")

phases = {}
for i, e in enumerate(events):
    if not isinstance(e, dict):
        sys.exit(f"{path}: event {i} is not an object")
    for key in ("ph", "ts", "pid"):
        if key not in e:
            sys.exit(f"{path}: event {i} lacks required key '{key}'")
    if not isinstance(e["ts"], (int, float)):
        sys.exit(f"{path}: event {i} has non-numeric ts {e['ts']!r}")
    if e["ph"] != "M" and e["ts"] < 0:
        sys.exit(f"{path}: event {i} has negative ts {e['ts']}")
    phases[e["ph"]] = phases.get(e["ph"], 0) + 1

# The exporter always emits process/thread metadata, complete spans (batch
# rounds at minimum), and async begin/end pairs for the request lifecycles.
for ph, what in (("M", "metadata"), ("X", "complete spans"),
                 ("b", "async begins"), ("e", "async ends")):
    if phases.get(ph, 0) == 0:
        sys.exit(f"{path}: no '{ph}' events ({what}) — exporter regression?")
if phases["b"] < phases["e"]:
    sys.exit(f"{path}: more async ends ({phases['e']}) than begins ({phases['b']})")

mix = ", ".join(f"{ph}:{n}" for ph, n in sorted(phases.items()))
print(f"trace check OK: {path} ({len(events)} events; {mix})")
PY
