#!/usr/bin/env bash
# Compares a fresh BENCH_kernels.json against the checked-in baseline and fails
# on >threshold regression. Only dimensionless ratio metrics (unit == "x",
# e.g. blocked-vs-naive kernel speedups) are gated: they are stable across
# machines, unlike absolute GFLOP/s or bytes/s, which are recorded for the
# trajectory but not compared.
#
# Usage: tools/check_bench_regression.sh current.json [baseline.json] [threshold]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
current="${1:?usage: check_bench_regression.sh current.json [baseline.json] [threshold]}"
baseline="${2:-$root/bench/BENCH_kernels_baseline.json}"
threshold="${3:-0.25}"

python3 - "$current" "$baseline" "$threshold" <<'EOF'
import json, sys

cur_path, base_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

def ratio_metrics(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benches", []):
        for m in bench.get("metrics", []):
            if m.get("unit") == "x" and m.get("higher_is_better", True):
                out[f'{bench["bench"]}:{m["name"]}'] = float(m["value"])
    return out

cur = ratio_metrics(cur_path)
base = ratio_metrics(base_path)
if not base:
    sys.exit(f"no gated (unit 'x') metrics in baseline {base_path}")

failures, compared = [], 0
for name, base_v in sorted(base.items()):
    cur_v = cur.get(name)
    if cur_v is None:
        failures.append(f"MISSING  {name} (baseline {base_v:.2f})")
        continue
    compared += 1
    if cur_v < base_v * (1.0 - threshold):
        failures.append(f"REGRESSED {name}: {cur_v:.2f} < {base_v:.2f} * {1-threshold:.2f}")
    else:
        print(f"ok {name}: {cur_v:.2f} (baseline {base_v:.2f})")

if failures:
    print("\n".join(failures))
    sys.exit(f"perf regression gate FAILED ({len(failures)} of {len(base)} metrics)")
print(f"perf gate OK ({compared} ratio metrics within {threshold:.0%} of baseline)")
EOF
