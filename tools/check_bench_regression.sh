#!/usr/bin/env bash
# Compares a fresh BENCH_kernels.json against the checked-in baseline and fails
# on >threshold regression. Only dimensionless ratio metrics (unit == "x",
# e.g. blocked-vs-naive kernel speedups) are gated: they are stable across
# machines, unlike absolute GFLOP/s or bytes/s, which are recorded for the
# trajectory but not compared.
#
# Usage: tools/check_bench_regression.sh current.json [baseline.json] [threshold]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
current="${1:?usage: check_bench_regression.sh current.json [baseline.json] [threshold]}"
baseline="${2:-$root/bench/BENCH_kernels_baseline.json}"
threshold="${3:-0.25}"

python3 - "$current" "$baseline" "$threshold" <<'EOF'
import json, sys

cur_path, base_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    """Returns ({key: value} for gated ratio metrics, {key: isa}, {isas seen})."""
    with open(path) as f:
        data = json.load(f)
    metrics, isa_of, isas = {}, {}, set()
    for bench in data.get("benches", []):
        for m in bench.get("metrics", []):
            isa = m.get("isa", "")
            if isa:
                isas.add(isa)
            if m.get("unit") == "x" and m.get("higher_is_better", True):
                key = f'{bench["bench"]}:{m["name"]}'
                metrics[key] = float(m["value"])
                isa_of[key] = isa
    return metrics, isa_of, isas

cur, _, cur_isas = load(cur_path)
base, base_isa, _ = load(base_path)
if not base:
    sys.exit(f"no gated (unit 'x') metrics in baseline {base_path}")

failures, compared, skipped = [], 0, 0
for name, base_v in sorted(base.items()):
    cur_v = cur.get(name)
    if cur_v is None:
        # A baseline metric tagged with a SIMD backend this machine did not
        # measure (e.g. an avx512 row from the baselining host on an AVX2-only
        # runner) is expected to be absent; anything else missing is a failure.
        isa = base_isa.get(name, "")
        if isa and isa not in cur_isas:
            print(f"skip {name}: backend '{isa}' not measured in current run")
            skipped += 1
            continue
        failures.append(f"MISSING  {name} (baseline {base_v:.2f})")
        continue
    compared += 1
    if cur_v < base_v * (1.0 - threshold):
        failures.append(f"REGRESSED {name}: {cur_v:.2f} < {base_v:.2f} * {1-threshold:.2f}")
    else:
        print(f"ok {name}: {cur_v:.2f} (baseline {base_v:.2f})")

if failures:
    print("\n".join(failures))
    sys.exit(f"perf regression gate FAILED ({len(failures)} of {len(base)} metrics)")
print(f"perf gate OK ({compared} ratio metrics within {threshold:.0%} of baseline,"
      f" {skipped} skipped for unavailable backends)")
EOF
