#!/usr/bin/env sh
# Tier-1 verify: configure + build + test from a clean or incremental tree.
# Exits nonzero on the first failing step or any failing test.
set -eu

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B build -S .
cmake --build build -j "$JOBS"
cd build
ctest --output-on-failure -j "$JOBS"
