// dzip — operator command-line tool for the DeltaZip reproduction.
//
//   dzip trace    --out t.jsonl [--models 32] [--rate 1.0] [--duration 300]
//                 [--dist uniform|zipf|azure] [--alpha 1.5] [--seed 7]
//       Generates a multi-variant serving trace and writes it as JSONL.
//
//   dzip simulate --trace t.jsonl [--engine deltazip|vllm-scb|lora]
//                 [--model 7b|13b|70b|pythia] [--gpu a800|3090] [--tp 4] [--n 8]
//                 [--bits 4|2] [--rank 16]
//       Replays the trace against the serving simulator and prints the report.
//
//   dzip cluster  --trace t.jsonl --gpus 4
//                 [--policy round-robin|least-outstanding|delta-affinity]
//                 [--engine deltazip|vllm-scb|lora] [--model ...] [--gpu ...]
//                 [--tp 4] [--n 8] [--slo-e2e 120] [--slo-ttft 30]
//       Routes the trace across a simulated multi-GPU cluster and prints the
//       merged cluster report plus the per-GPU breakdown.
//
//   dzip inspect  --artifact delta.bin
//       Prints a summary of an on-disk compressed-delta artifact.
//
// Exit status: 0 on success, 1 on usage errors or I/O failures.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/cluster/router.h"
#include "src/compress/serialize.h"
#include "src/serving/engine.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/trace_io.h"

namespace dz {
namespace {

using ArgMap = std::map<std::string, std::string>;

// Parses "--key value" pairs after the subcommand. Returns false on stray tokens.
bool ParseArgs(int argc, char** argv, int start, ArgMap& args) {
  for (int i = start; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "error: expected --key value pairs, got '%s'\n", key.c_str());
      return false;
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return true;
}

std::string Get(const ArgMap& args, const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

double GetNum(const ArgMap& args, const std::string& key, double fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

int CmdTrace(const ArgMap& args) {
  const std::string out = Get(args, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: trace requires --out <file.jsonl>\n");
    return 1;
  }
  TraceConfig cfg;
  cfg.n_models = static_cast<int>(GetNum(args, "models", 32));
  cfg.arrival_rate = GetNum(args, "rate", 1.0);
  cfg.duration_s = GetNum(args, "duration", 300.0);
  cfg.zipf_alpha = GetNum(args, "alpha", 1.5);
  cfg.seed = static_cast<uint64_t>(GetNum(args, "seed", 7));
  const std::string dist = Get(args, "dist", "zipf");
  if (dist == "uniform") {
    cfg.dist = PopularityDist::kUniform;
  } else if (dist == "zipf") {
    cfg.dist = PopularityDist::kZipf;
  } else if (dist == "azure") {
    cfg.dist = PopularityDist::kAzure;
  } else {
    std::fprintf(stderr, "error: unknown --dist '%s'\n", dist.c_str());
    return 1;
  }
  const Trace trace = GenerateTrace(cfg);
  if (!WriteTraceFile(out, trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu requests over %.0f s (%d models, %s) to %s\n",
              trace.requests.size(), trace.duration_s, trace.n_models, dist.c_str(),
              out.c_str());
  return 0;
}

// Shared --model/--gpu/--tp/--n/--rank/--bits/--engine parsing for the simulate
// and cluster subcommands. On success `vllm_baseline` says which engine family
// the name selected (cfg.artifact is set to match).
bool ParseEngineArgs(const ArgMap& args, EngineConfig& cfg, bool& vllm_baseline) {
  const std::string model = Get(args, "model", "13b");
  if (model == "7b") {
    cfg.exec.shape = ModelShape::Llama7B();
  } else if (model == "13b") {
    cfg.exec.shape = ModelShape::Llama13B();
  } else if (model == "70b") {
    cfg.exec.shape = ModelShape::Llama70B();
  } else if (model == "pythia") {
    cfg.exec.shape = ModelShape::Pythia2p8B();
  } else {
    std::fprintf(stderr, "error: unknown --model '%s'\n", model.c_str());
    return false;
  }
  const std::string gpu = Get(args, "gpu", "a800");
  if (gpu == "a800") {
    cfg.exec.gpu = GpuSpec::A800();
  } else if (gpu == "3090") {
    cfg.exec.gpu = GpuSpec::Rtx3090();
  } else {
    std::fprintf(stderr, "error: unknown --gpu '%s'\n", gpu.c_str());
    return false;
  }
  cfg.exec.tp = static_cast<int>(GetNum(args, "tp", 4));
  cfg.max_concurrent_deltas = static_cast<int>(GetNum(args, "n", 8));
  cfg.lora_rank = static_cast<int>(GetNum(args, "rank", 16));
  if (static_cast<int>(GetNum(args, "bits", 4)) == 2) {
    cfg.exec.delta_format = WeightFormat::kSparseInt2;
  }
  const std::string engine_name = Get(args, "engine", "deltazip");
  vllm_baseline = false;
  if (engine_name == "lora") {
    cfg.artifact = ArtifactKind::kLoraAdapter;
  } else if (engine_name == "vllm-scb") {
    cfg.artifact = ArtifactKind::kFullModel;
    vllm_baseline = true;
  } else if (engine_name != "deltazip") {
    std::fprintf(stderr, "error: unknown --engine '%s'\n", engine_name.c_str());
    return false;
  }
  return true;
}

bool LoadTraceArg(const ArgMap& args, const char* subcommand, Trace& trace) {
  const std::string trace_path = Get(args, "trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "error: %s requires --trace <file.jsonl>\n", subcommand);
    return false;
  }
  if (!ReadTraceFile(trace_path, trace)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", trace_path.c_str());
    return false;
  }
  return true;
}

int CmdSimulate(const ArgMap& args) {
  Trace trace;
  if (!LoadTraceArg(args, "simulate", trace)) {
    return 1;
  }
  EngineConfig cfg;
  bool vllm_baseline = false;
  if (!ParseEngineArgs(args, cfg, vllm_baseline)) {
    return 1;
  }
  std::unique_ptr<ServingEngine> engine =
      vllm_baseline ? MakeVllmScbEngine(cfg) : MakeDeltaZipEngine(cfg);

  const ServeReport report = engine->Serve(trace);
  Table table({"metric", "value"});
  table.AddRow({"engine", report.engine_name});
  table.AddRow({"requests", std::to_string(report.completed())});
  table.AddRow({"makespan (s)", Table::Num(report.makespan_s, 1)});
  table.AddRow({"throughput (req/s)", Table::Num(report.ThroughputRps(), 3)});
  table.AddRow({"token throughput (tok/s)", Table::Num(report.TokenThroughput(), 1)});
  table.AddRow({"mean E2E (s)", Table::Num(report.MeanE2e(), 2)});
  table.AddRow({"P90 E2E (s)", Table::Num(Percentile(report.E2es(), 90), 2)});
  table.AddRow({"mean TTFT (s)", Table::Num(report.MeanTtft(), 3)});
  table.AddRow({"P90 TTFT (s)", Table::Num(Percentile(report.Ttfts(), 90), 3)});
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}

int CmdCluster(const ArgMap& args) {
  Trace trace;
  if (!LoadTraceArg(args, "cluster", trace)) {
    return 1;
  }
  ClusterConfig cfg;
  if (!ParseEngineArgs(args, cfg.engine, cfg.vllm_baseline)) {
    return 1;
  }
  cfg.placer.n_gpus = static_cast<int>(GetNum(args, "gpus", 4));
  if (cfg.placer.n_gpus < 1) {
    std::fprintf(stderr, "error: --gpus must be >= 1\n");
    return 1;
  }
  const std::string policy = Get(args, "policy", "delta-affinity");
  if (!ParsePlacementPolicy(policy, cfg.placer.policy)) {
    std::fprintf(stderr,
                 "error: unknown --policy '%s' (round-robin, least-outstanding, "
                 "delta-affinity)\n",
                 policy.c_str());
    return 1;
  }
  const ClusterReport report = Cluster(cfg).Serve(trace);
  std::printf("%s", report.Summary(GetNum(args, "slo-e2e", 120.0),
                                   GetNum(args, "slo-ttft", 30.0)).c_str());
  return 0;
}

int CmdInspect(const ArgMap& args) {
  const std::string path = Get(args, "artifact", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: inspect requires --artifact <file.bin>\n");
    return 1;
  }
  CompressedDelta delta;
  if (!ReadDeltaFile(path, delta)) {
    std::fprintf(stderr, "error: %s is not a valid DeltaZip artifact\n", path.c_str());
    return 1;
  }
  std::printf("artifact: %s\n", path.c_str());
  std::printf("config: %d-bit, %s, group %d, lossless=%s, solver=%s\n", delta.config.bits,
              delta.config.sparse24 ? "2:4 sparse" : "dense", delta.config.group_size,
              delta.config.lossless ? "on" : "off",
              delta.config.use_obs ? "OBS" : "RTN");
  std::printf("layers: %zu compressed linear deltas\n", delta.layers.size());
  size_t layer_bytes = 0;
  for (const auto& layer : delta.layers) {
    layer_bytes += layer.ByteSize();
  }
  std::printf("payload: %zu B linear deltas, %zu B total packed\n", layer_bytes,
              delta.PackedByteSize());
  std::printf("embedding delta: %s\n",
              delta.embedding_delta.FrobeniusNorm() == 0.0 ? "unchanged (elided)"
                                                           : "stored fp16");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dzip <trace|simulate|cluster|inspect> [--key value ...]\n"
               "  dzip trace    --out t.jsonl [--models N] [--rate R] [--dist D]\n"
               "  dzip simulate --trace t.jsonl [--engine E] [--model M] [--gpu G]\n"
               "  dzip cluster  --trace t.jsonl --gpus N [--policy P] [--engine E]\n"
               "  dzip inspect  --artifact delta.bin\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  ArgMap args;
  if (!ParseArgs(argc, argv, 2, args)) {
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "trace") {
    return CmdTrace(args);
  }
  if (cmd == "simulate") {
    return CmdSimulate(args);
  }
  if (cmd == "cluster") {
    return CmdCluster(args);
  }
  if (cmd == "inspect") {
    return CmdInspect(args);
  }
  return Usage();
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) { return dz::Main(argc, argv); }
