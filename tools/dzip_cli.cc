// dzip — operator command-line tool for the DeltaZip reproduction.
//
// Subcommands (each prints its own usage on --help; see README "dzip_cli
// reference" for the full table):
//   dzip trace    — generate a multi-variant serving trace as JSONL
//   dzip simulate — replay a trace against one worker serving engine
//   dzip cluster  — route a trace across a simulated multi-GPU cluster
//   dzip inspect  — summarize an on-disk compressed-delta artifact
//
// Exit status: 0 on success and on explicit --help; 1 on usage errors (unknown
// subcommand/flag, missing required flag, bad value) or I/O failures.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/router.h"
#include "src/compress/serialize.h"
#include "src/metrics/metrics.h"
#include "src/obs/trace_export.h"
#include "src/serving/engine.h"
#include "src/tensor/backend.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/trace_io.h"

namespace dz {
namespace {

using ArgMap = std::map<std::string, std::string>;

// Per-subcommand usage text and flag allowlist. `keys` are the accepted --flag
// names (without the leading dashes); anything else is a usage error.
struct SubcommandSpec {
  const char* name;
  const char* usage;
  std::vector<std::string> keys;
};

const std::vector<SubcommandSpec>& Subcommands() {
  static const std::vector<SubcommandSpec> specs = {
      {"trace",
       "usage: dzip trace --out t.jsonl [--models 32] [--rate 1.0] [--duration 300]\n"
       "                  [--dist uniform|zipf|azure] [--alpha 1.5] [--seed 7]\n"
       "                  [--tenants 1] [--scenario steady|diurnal|flash-crowd|heavy-tail]\n"
       "                  [--interactive-frac 0] [--batch-frac 0] [--flash-boost 8]\n"
       "  Generates a multi-variant serving trace and writes it as JSONL.\n"
       "  --tenants > 1 (or a non-steady --scenario / non-zero class fractions)\n"
       "  layers multi-tenant traffic with per-request SLO classes on top of the\n"
       "  model-popularity distribution.\n",
       {"out", "models", "rate", "duration", "dist", "alpha", "seed", "tenants",
        "scenario", "interactive-frac", "batch-frac", "flash-boost"}},
      {"simulate",
       "usage: dzip simulate --trace t.jsonl [--engine deltazip|vllm-scb|lora]\n"
       "                     [--model 7b|13b|70b|pythia] [--gpu a800|3090] [--tp 4]\n"
       "                     [--n 8] [--bits 4|2] [--rank 16] [--prefetch 0|1]\n"
       "                     [--lookahead 4] [--sched fcfs|priority|dwfq]\n"
       "                     [--admission 0|1] [--class-preempt 0|1]\n"
       "                     [--metrics-out m.jsonl] [--metrics-interval 10]\n"
       "                     [--trace-out trace.json] [--isa scalar|avx2|avx512|neon]\n"
       "  Replays the trace against the serving simulator and prints the report.\n"
       "  --isa forces a compiled-in kernel backend instead of the CPU-probed\n"
       "  one (the report header shows which backend ran); unknown or\n"
       "  unsupported names fail with the compiled list.\n"
       "  --prefetch 1 enables the async artifact-prefetch pipeline (--lookahead\n"
       "  sets W, the number of waiting variants warmed ahead of admission).\n"
       "  --sched picks the scheduler policy (priority = strict by SLO class,\n"
       "  dwfq = fair queueing across tenants); --admission 1 sheds requests whose\n"
       "  class deadline is already unmeetable; --class-preempt 1 lets interactive\n"
       "  requests preempt running batch-class skippers (deltazip engine, takes\n"
       "  effect with --sched priority|dwfq).\n"
       "  --metrics-out writes the run's metrics registry as a JSONL time series\n"
       "  (counters, gauges, latency histograms with p50/p99/p999);\n"
       "  --metrics-interval <secs> adds in-run snapshots every that many\n"
       "  simulated seconds (0 = final snapshot only).\n"
       "  --trace-out enables per-request tracing and writes a Chrome\n"
       "  trace_event JSON (load in Perfetto or chrome://tracing); the report\n"
       "  additionally shows per-class TTFT/E2E critical-path breakdowns.\n",
       {"trace", "engine", "model", "gpu", "tp", "n", "bits", "rank", "prefetch",
        "lookahead", "sched", "admission", "class-preempt", "metrics-out",
        "metrics-interval", "trace-out", "isa"}},
      {"cluster",
       "usage: dzip cluster --trace t.jsonl --gpus 4\n"
       "                    [--policy round-robin|least-outstanding|delta-affinity|\n"
       "                     tenant-affinity]\n"
       "                    [--engine deltazip|vllm-scb|lora] [--model 7b|13b|70b|pythia]\n"
       "                    [--gpu a800|3090] [--tp 4] [--n 8] [--bits 4|2] [--rank 16]\n"
       "                    [--prefetch 0|1] [--lookahead 4] [--slo-e2e 120]\n"
       "                    [--slo-ttft 30] [--sched fcfs|priority|dwfq]\n"
       "                    [--admission 0|1] [--class-preempt 0|1]\n"
       "                    [--metrics-out m.jsonl] [--metrics-interval 10]\n"
       "                    [--trace-out trace.json]\n"
       "                    [--faults spec] [--autoscale 0|1]\n"
       "                    [--min-workers 1] [--max-workers 8]\n"
       "                    [--replication N | --erasure k,m] [--net-gbps 25]\n"
       "                    [--isa scalar|avx2|avx512|neon]\n"
       "  Routes the trace across a simulated multi-GPU cluster and prints the\n"
       "  merged cluster report plus the per-GPU breakdown. With --prefetch 1 the\n"
       "  router feeds each worker ring-predicted warm hints. tenant-affinity\n"
       "  routes each tenant's whole traffic to its ring home GPU; the scheduler\n"
       "  flags configure every worker engine.\n"
       "  --metrics-out writes a JSONL time series: each worker's snapshots\n"
       "  (tagged gpu=<i>) followed by the merged cluster snapshot (gpu=merged);\n"
       "  --metrics-interval <secs> adds per-worker in-run snapshots on the\n"
       "  simulated clock (0 = final snapshots only).\n"
       "  --trace-out enables per-request tracing on every worker and the router\n"
       "  and writes one merged Chrome trace_event JSON (one process per GPU;\n"
       "  load in Perfetto or chrome://tracing).\n"
       "  --faults injects a comma-separated fault schedule on the simulated\n"
       "  clock, e.g. 'crash@30:w1,recover@60:w1,slow@20-50:w0x0.5,\n"
       "  part@40-70:w3,detect=5,reroute=1'. --autoscale 1 enables the elastic\n"
       "  autoscaler between --min-workers and --max-workers (drain before\n"
       "  remove); either flag switches the router onto the epoch-based elastic\n"
       "  path, which re-routes around dead workers and re-enqueues their\n"
       "  in-flight requests on survivors.\n"
       "  --replication N / --erasure k,m (mutually exclusive) enable the\n"
       "  cluster-shared artifact registry: chunks placed across the workers by\n"
       "  rendezvous hashing, non-local reads over a --net-gbps NIC, degraded\n"
       "  reads when holders die, and background repair on spare bandwidth in\n"
       "  elastic runs.\n",
       {"trace", "gpus", "policy", "engine", "model", "gpu", "tp", "n", "bits", "rank",
        "prefetch", "lookahead", "slo-e2e", "slo-ttft", "sched", "admission",
        "class-preempt", "metrics-out", "metrics-interval", "trace-out",
        "faults", "autoscale", "min-workers", "max-workers",
        "replication", "erasure", "net-gbps", "isa"}},
      {"inspect",
       "usage: dzip inspect --artifact delta.bin\n"
       "  Prints a summary of an on-disk compressed-delta artifact.\n",
       {"artifact"}},
  };
  return specs;
}

const SubcommandSpec* FindSubcommand(const std::string& name) {
  for (const SubcommandSpec& spec : Subcommands()) {
    if (name == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

// Parses "--key value" pairs after the subcommand, validating every key against
// the subcommand's allowlist. Returns false (after printing the subcommand's
// usage to stderr) on stray tokens, missing values, or unknown flags. Sets
// `help` instead when --help / -h / help is present anywhere.
bool ParseArgs(int argc, char** argv, int start, const SubcommandSpec& spec,
               ArgMap& args, bool& help) {
  help = false;
  for (int i = start; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h" || key == "help") {
      help = true;
      return true;
    }
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: expected --key value pairs, got '%s'\n%s",
                   key.c_str(), spec.usage);
      return false;
    }
    const std::string name = key.substr(2);
    if (std::find(spec.keys.begin(), spec.keys.end(), name) == spec.keys.end()) {
      std::fprintf(stderr, "error: unknown flag '%s' for 'dzip %s'\n%s", key.c_str(),
                   spec.name, spec.usage);
      return false;
    }
    // A following token that is itself a flag means the value is missing — do
    // not swallow it (otherwise e.g. "--prefetch --help" would silently parse
    // "--help" as the value of --prefetch).
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      std::fprintf(stderr, "error: flag '%s' is missing its value\n%s", key.c_str(),
                   spec.usage);
      return false;
    }
    args[name] = argv[i + 1];
  }
  return true;
}

std::string Get(const ArgMap& args, const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

double GetNum(const ArgMap& args, const std::string& key, double fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

// Strict numeric flag parsing for flags where GetNum's silent strtod fallback
// ("abc" → 0) would mask an operator typo as a valid configuration. The value
// must parse in full as a number and (with `require_positive`) be > 0;
// violations print a usage error and fail the subcommand.
bool GetCheckedNum(const ArgMap& args, const std::string& key, double fallback,
                   bool require_positive, double& out) {
  const auto it = args.find(key);
  if (it == args.end()) {
    out = fallback;
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "error: --%s needs a number, got '%s'\n", key.c_str(),
                 it->second.c_str());
    return false;
  }
  if (require_positive && v <= 0.0) {
    std::fprintf(stderr, "error: --%s must be > 0, got '%s'\n", key.c_str(),
                 it->second.c_str());
    return false;
  }
  out = v;
  return true;
}

// --trace-out: an explicitly passed empty path would silently disable tracing;
// reject it instead. Returns false only on that usage error; `out` is empty
// when the flag is absent (tracing off).
bool GetTraceOut(const ArgMap& args, std::string& out) {
  const auto it = args.find("trace-out");
  if (it == args.end()) {
    out.clear();
    return true;
  }
  if (it->second.empty()) {
    std::fprintf(stderr, "error: --trace-out needs a non-empty path\n");
    return false;
  }
  out = it->second;
  return true;
}

int CmdTrace(const ArgMap& args) {
  const std::string out = Get(args, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: trace requires --out <file.jsonl>\n");
    return 1;
  }
  TraceConfig cfg;
  cfg.n_models = static_cast<int>(GetNum(args, "models", 32));
  cfg.arrival_rate = GetNum(args, "rate", 1.0);
  cfg.duration_s = GetNum(args, "duration", 300.0);
  cfg.zipf_alpha = GetNum(args, "alpha", 1.5);
  cfg.seed = static_cast<uint64_t>(GetNum(args, "seed", 7));
  const std::string dist = Get(args, "dist", "zipf");
  if (dist == "uniform") {
    cfg.dist = PopularityDist::kUniform;
  } else if (dist == "zipf") {
    cfg.dist = PopularityDist::kZipf;
  } else if (dist == "azure") {
    cfg.dist = PopularityDist::kAzure;
  } else {
    std::fprintf(stderr, "error: unknown --dist '%s'\n", dist.c_str());
    return 1;
  }
  cfg.tenants.n_tenants = static_cast<int>(GetNum(args, "tenants", 1));
  if (cfg.tenants.n_tenants < 1) {
    std::fprintf(stderr, "error: --tenants must be >= 1\n");
    return 1;
  }
  const std::string scenario = Get(args, "scenario", "steady");
  if (!ParseTenantScenario(scenario, cfg.tenants.scenario)) {
    std::fprintf(stderr,
                 "error: unknown --scenario '%s' (steady, diurnal, flash-crowd, "
                 "heavy-tail)\n",
                 scenario.c_str());
    return 1;
  }
  cfg.tenants.interactive_frac = GetNum(args, "interactive-frac", 0.0);
  cfg.tenants.batch_frac = GetNum(args, "batch-frac", 0.0);
  cfg.tenants.flash_boost = GetNum(args, "flash-boost", cfg.tenants.flash_boost);
  if (cfg.tenants.interactive_frac < 0.0 || cfg.tenants.batch_frac < 0.0 ||
      cfg.tenants.interactive_frac + cfg.tenants.batch_frac > 1.0) {
    std::fprintf(stderr,
                 "error: --interactive-frac and --batch-frac must be >= 0 and sum "
                 "to <= 1\n");
    return 1;
  }
  if (cfg.tenants.flash_boost <= 0.0) {
    std::fprintf(stderr, "error: --flash-boost must be > 0\n");
    return 1;
  }
  const Trace trace = GenerateTrace(cfg);
  if (!WriteTraceFile(out, trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu requests over %.0f s (%d models, %d tenants, %s, %s) to %s\n",
              trace.requests.size(), trace.duration_s, trace.n_models, trace.n_tenants,
              dist.c_str(), scenario.c_str(), out.c_str());
  return 0;
}

// Shared --model/--gpu/--tp/--n/--rank/--bits/--engine parsing for the simulate
// and cluster subcommands. On success `vllm_baseline` says which engine family
// the name selected (cfg.artifact is set to match).
bool ParseEngineArgs(const ArgMap& args, EngineConfig& cfg, bool& vllm_baseline) {
  const std::string model = Get(args, "model", "13b");
  if (model == "7b") {
    cfg.exec.shape = ModelShape::Llama7B();
  } else if (model == "13b") {
    cfg.exec.shape = ModelShape::Llama13B();
  } else if (model == "70b") {
    cfg.exec.shape = ModelShape::Llama70B();
  } else if (model == "pythia") {
    cfg.exec.shape = ModelShape::Pythia2p8B();
  } else {
    std::fprintf(stderr, "error: unknown --model '%s'\n", model.c_str());
    return false;
  }
  const std::string gpu = Get(args, "gpu", "a800");
  if (gpu == "a800") {
    cfg.exec.gpu = GpuSpec::A800();
  } else if (gpu == "3090") {
    cfg.exec.gpu = GpuSpec::Rtx3090();
  } else {
    std::fprintf(stderr, "error: unknown --gpu '%s'\n", gpu.c_str());
    return false;
  }
  cfg.exec.tp = static_cast<int>(GetNum(args, "tp", 4));
  cfg.max_concurrent_deltas = static_cast<int>(GetNum(args, "n", 8));
  cfg.lora_rank = static_cast<int>(GetNum(args, "rank", 16));
  if (static_cast<int>(GetNum(args, "bits", 4)) == 2) {
    cfg.exec.delta_format = WeightFormat::kSparseInt2;
  }
  const std::string engine_name = Get(args, "engine", "deltazip");
  vllm_baseline = false;
  if (engine_name == "lora") {
    cfg.artifact = ArtifactKind::kLoraAdapter;
  } else if (engine_name == "vllm-scb") {
    cfg.artifact = ArtifactKind::kFullModel;
    vllm_baseline = true;
  } else if (engine_name != "deltazip") {
    std::fprintf(stderr, "error: unknown --engine '%s'\n", engine_name.c_str());
    return false;
  }
  cfg.prefetch.enabled = GetNum(args, "prefetch", 0) != 0;
  cfg.prefetch.lookahead = static_cast<int>(GetNum(args, "lookahead", 4));
  const std::string sched = Get(args, "sched", "fcfs");
  if (!ParseSchedPolicy(sched, cfg.scheduler.policy)) {
    std::fprintf(stderr, "error: unknown --sched '%s' (fcfs, priority, dwfq)\n",
                 sched.c_str());
    return false;
  }
  cfg.scheduler.admission_control = GetNum(args, "admission", 0) != 0;
  cfg.scheduler.class_preemption = GetNum(args, "class-preempt", 0) != 0;
  return true;
}

// Applies --isa by forcing the named kernel backend before any work runs.
// Fails (usage error, exit 1) when the name is not compiled into this binary
// or this CPU cannot run it; the error lists what is available.
bool ApplyIsaFlag(const ArgMap& args) {
  const std::string isa = Get(args, "isa", "");
  if (isa.empty()) {
    return true;
  }
  if (!kernels::ForceBackend(isa)) {
    std::string available;
    for (const std::string& name : kernels::CompiledBackends()) {
      if (!available.empty()) {
        available += ", ";
      }
      available += name;
      if (!kernels::BackendSupported(name)) {
        available += " (unsupported on this CPU)";
      }
    }
    std::fprintf(stderr, "error: unknown or unsupported --isa '%s' (compiled: %s)\n",
                 isa.c_str(), available.c_str());
    return false;
  }
  return true;
}

// Report-header line naming the kernel backend this process is dispatched to.
std::string KernelBackendLine() {
  const kernels::Backend& b = kernels::ActiveBackend();
  char buf[128];
  std::snprintf(buf, sizeof(buf), "kernel backend: %s (%s, %d-wide fp32)",
                b.name, b.isa, b.vector_width);
  return buf;
}

bool LoadTraceArg(const ArgMap& args, const char* subcommand, Trace& trace) {
  const std::string trace_path = Get(args, "trace", "");
  if (trace_path.empty()) {
    std::fprintf(stderr, "error: %s requires --trace <file.jsonl>\n", subcommand);
    return false;
  }
  if (!ReadTraceFile(trace_path, trace)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", trace_path.c_str());
    return false;
  }
  return true;
}

// One run's JSONL export: every in-run timeline snapshot, then the final
// snapshot (tagged phase=final), all with the caller's context labels.
bool AppendRunMetrics(MetricsJsonlWriter& writer, const ServeReport& report,
                      std::vector<std::pair<std::string, std::string>> context) {
  context.emplace_back("phase", "timeline");
  for (const MetricsSnapshot& snap : report.timeline) {
    if (!writer.Append(snap, context)) {
      return false;
    }
  }
  context.back().second = "final";
  return writer.Append(report.metrics, context);
}

int CmdSimulate(const ArgMap& args) {
  if (!ApplyIsaFlag(args)) {
    return 1;
  }
  Trace trace;
  if (!LoadTraceArg(args, "simulate", trace)) {
    return 1;
  }
  EngineConfig cfg;
  bool vllm_baseline = false;
  if (!ParseEngineArgs(args, cfg, vllm_baseline)) {
    return 1;
  }
  const std::string metrics_out = Get(args, "metrics-out", "");
  if (!GetCheckedNum(args, "metrics-interval", 0.0, /*require_positive=*/true,
                     cfg.metrics.interval_s)) {
    return 1;
  }
  std::string trace_out;
  if (!GetTraceOut(args, trace_out)) {
    return 1;
  }
  cfg.tracing.enabled = !trace_out.empty();
  std::unique_ptr<ServingEngine> engine =
      vllm_baseline ? MakeVllmScbEngine(cfg) : MakeDeltaZipEngine(cfg);

  const ServeReport report = engine->Serve(trace);
  if (!trace_out.empty()) {
    if (!WriteChromeTrace(trace_out, report.trace_events)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", report.trace_events.size(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    MetricsJsonlWriter writer(metrics_out);
    if (!writer.ok() ||
        !AppendRunMetrics(writer, report,
                          {{"cmd", "simulate"}, {"engine", report.engine_name}})) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %d metrics snapshots to %s\n", writer.lines_written(),
                metrics_out.c_str());
  }
  std::printf("%s\n", KernelBackendLine().c_str());
  Table table({"metric", "value"});
  table.AddRow({"engine", report.engine_name});
  table.AddRow({"requests", std::to_string(report.completed())});
  table.AddRow({"makespan (s)", Table::Num(report.makespan_s, 1)});
  table.AddRow({"throughput (req/s)", Table::Num(report.ThroughputRps(), 3)});
  table.AddRow({"token throughput (tok/s)", Table::Num(report.TokenThroughput(), 1)});
  table.AddRow({"mean E2E (s)", Table::Num(report.MeanE2e(), 2)});
  table.AddRow({"P90 E2E (s)", Table::Num(Percentile(report.E2es(), 90), 2)});
  table.AddRow({"mean TTFT (s)", Table::Num(report.MeanTtft(), 3)});
  table.AddRow({"P90 TTFT (s)", Table::Num(Percentile(report.Ttfts(), 90), 3)});
  table.AddRow({"artifact loads (PCIe/disk)", std::to_string(report.total_loads) + "/" +
                                                  std::to_string(report.disk_loads)});
  if (cfg.prefetch.enabled) {
    table.AddRow({"prefetch issued/hits/wasted",
                  std::to_string(report.prefetch_issued) + "/" +
                      std::to_string(report.prefetch_hits) + "/" +
                      std::to_string(report.prefetch_wasted)});
    table.AddRow({"stall hidden by prefetch (s)", Table::Num(report.stall_hidden_s, 3)});
  }
  // Tenant/class rows only for multi-tenant traffic or actual sheds, matching
  // the pre-tenant rendering otherwise (AppendTenantRows gates internally).
  AppendTenantRows(table, report);
  // Critical-path breakdown rows only for traced runs (gated internally).
  AppendAttributionRows(table, report);
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}

int CmdCluster(const ArgMap& args) {
  if (!ApplyIsaFlag(args)) {
    return 1;
  }
  Trace trace;
  if (!LoadTraceArg(args, "cluster", trace)) {
    return 1;
  }
  ClusterConfig cfg;
  if (!ParseEngineArgs(args, cfg.engine, cfg.vllm_baseline)) {
    return 1;
  }
  if (args.find("gpus") == args.end()) {
    std::fprintf(stderr, "error: cluster requires --gpus <n>\n");
    return 1;
  }
  cfg.placer.n_gpus = static_cast<int>(GetNum(args, "gpus", 0));
  if (cfg.placer.n_gpus < 1) {
    std::fprintf(stderr, "error: --gpus must be >= 1\n");
    return 1;
  }
  const std::string policy = Get(args, "policy", "delta-affinity");
  if (!ParsePlacementPolicy(policy, cfg.placer.policy)) {
    std::fprintf(stderr,
                 "error: unknown --policy '%s' (round-robin, least-outstanding, "
                 "delta-affinity, tenant-affinity)\n",
                 policy.c_str());
    return 1;
  }
  const std::string fault_spec = Get(args, "faults", "");
  if (!fault_spec.empty() && !ParseFaultPlan(fault_spec, cfg.faults)) {
    std::fprintf(stderr,
                 "error: bad --faults spec '%s' (tokens: crash@T:wI, "
                 "recover@T:wI, slow@A-B:wIxF, part@A-B:wI, detect=S, "
                 "reroute=0|1)\n",
                 fault_spec.c_str());
    return 1;
  }
  cfg.autoscale.enabled = GetNum(args, "autoscale", 0.0) != 0.0;
  cfg.autoscale.min_workers =
      static_cast<int>(GetNum(args, "min-workers", cfg.autoscale.min_workers));
  cfg.autoscale.max_workers =
      static_cast<int>(GetNum(args, "max-workers", cfg.autoscale.max_workers));
  if (cfg.autoscale.enabled &&
      (cfg.autoscale.min_workers < 1 ||
       cfg.autoscale.max_workers < cfg.autoscale.min_workers)) {
    std::fprintf(stderr,
                 "error: need 1 <= --min-workers <= --max-workers (got %d..%d)\n",
                 cfg.autoscale.min_workers, cfg.autoscale.max_workers);
    return 1;
  }
  const std::string replication = Get(args, "replication", "");
  const std::string erasure = Get(args, "erasure", "");
  if (!replication.empty() && !erasure.empty()) {
    std::fprintf(stderr,
                 "error: --replication and --erasure are mutually exclusive\n");
    return 1;
  }
  if (!replication.empty() || !erasure.empty()) {
    // Both route through the registry's spec parser, so the CLI accepts
    // exactly what RedundancyPolicyToSpec prints.
    const std::string spec = !replication.empty()
                                 ? "replicate(" + replication + ")"
                                 : "erasure(" + erasure + ")";
    if (!ParseRedundancyPolicy(spec, cfg.registry.redundancy)) {
      std::fprintf(stderr,
                   "error: bad redundancy spec '%s' (--replication N>=1 or "
                   "--erasure k,m with k>=1, m>=0)\n",
                   spec.c_str());
      return 1;
    }
    cfg.registry.enabled = true;
  }
  cfg.registry.net_gbps = GetNum(args, "net-gbps", cfg.registry.net_gbps);
  if (cfg.registry.net_gbps <= 0.0) {
    std::fprintf(stderr, "error: --net-gbps must be > 0\n");
    return 1;
  }
  const std::string metrics_out = Get(args, "metrics-out", "");
  if (!GetCheckedNum(args, "metrics-interval", 0.0, /*require_positive=*/true,
                     cfg.engine.metrics.interval_s)) {
    return 1;
  }
  std::string trace_out;
  if (!GetTraceOut(args, trace_out)) {
    return 1;
  }
  cfg.engine.tracing.enabled = !trace_out.empty();
  const ClusterReport report = Cluster(cfg).Serve(trace);
  if (!trace_out.empty()) {
    const std::vector<TraceEvent> events = report.MergedTraceEvents();
    if (!WriteChromeTrace(trace_out, events)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", events.size(), trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    MetricsJsonlWriter writer(metrics_out);
    bool ok = writer.ok();
    for (size_t g = 0; ok && g < report.per_gpu.size(); ++g) {
      ok = AppendRunMetrics(writer, report.per_gpu[g],
                            {{"cmd", "cluster"}, {"gpu", std::to_string(g)}});
    }
    ok = ok && writer.Append(report.merged.metrics,
                             {{"cmd", "cluster"}, {"gpu", "merged"},
                              {"phase", "final"}});
    if (!ok) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %d metrics snapshots to %s\n", writer.lines_written(),
                metrics_out.c_str());
  }
  std::printf("%s\n", KernelBackendLine().c_str());
  std::printf("%s", report.Summary(GetNum(args, "slo-e2e", 120.0),
                                   GetNum(args, "slo-ttft", 30.0)).c_str());
  return 0;
}

int CmdInspect(const ArgMap& args) {
  const std::string path = Get(args, "artifact", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: inspect requires --artifact <file.bin>\n");
    return 1;
  }
  CompressedDelta delta;
  if (!ReadDeltaFile(path, delta)) {
    std::fprintf(stderr, "error: %s is not a valid DeltaZip artifact\n", path.c_str());
    return 1;
  }
  std::printf("artifact: %s\n", path.c_str());
  std::printf("config: %d-bit, %s, group %d, lossless=%s, solver=%s\n", delta.config.bits,
              delta.config.sparse24 ? "2:4 sparse" : "dense", delta.config.group_size,
              delta.config.lossless ? "on" : "off",
              delta.config.use_obs ? "OBS" : "RTN");
  std::printf("layers: %zu compressed linear deltas\n", delta.layers.size());
  size_t layer_bytes = 0;
  for (const auto& layer : delta.layers) {
    layer_bytes += layer.ByteSize();
  }
  std::printf("payload: %zu B linear deltas, %zu B total packed\n", layer_bytes,
              delta.PackedByteSize());
  std::printf("embedding delta: %s\n",
              delta.embedding_delta.FrobeniusNorm() == 0.0 ? "unchanged (elided)"
                                                           : "stored fp16");
  return 0;
}

void PrintGlobalUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: dzip <trace|simulate|cluster|inspect> [--key value ...]\n"
               "       dzip <subcommand> --help   (per-subcommand usage)\n\n");
  for (const SubcommandSpec& spec : Subcommands()) {
    std::fprintf(out, "%s\n", spec.usage);
  }
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintGlobalUsage(stderr);
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    // `dzip help <subcommand>` narrows to one usage block.
    if (argc >= 3) {
      if (const SubcommandSpec* spec = FindSubcommand(argv[2])) {
        std::fprintf(stdout, "%s", spec->usage);
        return 0;
      }
      std::fprintf(stderr, "error: unknown subcommand '%s'\n", argv[2]);
      PrintGlobalUsage(stderr);
      return 1;
    }
    PrintGlobalUsage(stdout);
    return 0;
  }
  const SubcommandSpec* spec = FindSubcommand(cmd);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
    PrintGlobalUsage(stderr);
    return 1;
  }
  ArgMap args;
  bool help = false;
  if (!ParseArgs(argc, argv, 2, *spec, args, help)) {
    return 1;
  }
  if (help) {
    std::fprintf(stdout, "%s", spec->usage);
    return 0;
  }
  if (cmd == "trace") {
    return CmdTrace(args);
  }
  if (cmd == "simulate") {
    return CmdSimulate(args);
  }
  if (cmd == "cluster") {
    return CmdCluster(args);
  }
  if (cmd == "inspect") {
    return CmdInspect(args);
  }
  // A subcommand in Subcommands() without a dispatch branch is a programming
  // error, not a user error.
  std::fprintf(stderr, "internal error: no handler for subcommand '%s'\n", cmd.c_str());
  return 1;
}

}  // namespace
}  // namespace dz

int main(int argc, char** argv) { return dz::Main(argc, argv); }
