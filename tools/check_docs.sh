#!/usr/bin/env bash
# Documentation checks (CI "docs" job and the docs/check ctest):
#   1. Every relative markdown link in README.md, ROADMAP.md, and docs/*.md
#      resolves to an existing file.
#   2. docs/REPRODUCE.md mentions every bench target registered in
#      bench/CMakeLists.txt, so a new bench cannot land undocumented.
# Usage: tools/check_docs.sh [repo-root]   (defaults to the script's parent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0

# --- 1. dead relative links -------------------------------------------------
docs=("$root/README.md" "$root/ROADMAP.md")
for f in "$root"/docs/*.md; do
  [ -e "$f" ] && docs+=("$f")
done

for f in "${docs[@]}"; do
  [ -f "$f" ] || { echo "MISSING DOC: $f"; fail=1; continue; }
  dir=$(dirname "$f")
  # Markdown inline links: capture the (target) part, strip anchors/titles.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*|"") continue ;;
    esac
    target="${target%%#*}"          # drop in-page anchors
    target="${target%% *}"          # drop optional "title" part
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "DEAD LINK: $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. REPRODUCE.md covers every bench target ------------------------------
reproduce="$root/docs/REPRODUCE.md"
if [ ! -f "$reproduce" ]; then
  echo "MISSING: docs/REPRODUCE.md"
  fail=1
else
  while IFS= read -r bench; do
    # Word-anchored so e.g. a new target "bench_fig13" is not satisfied by the
    # existing "bench_fig13_slo" row ("_" counts as a word character).
    if ! grep -qE "\b${bench}\b" "$reproduce"; then
      echo "UNDOCUMENTED BENCH: $bench missing from docs/REPRODUCE.md"
      fail=1
    fi
  done < <(grep -oE 'bench_[a-z0-9_]+' "$root/bench/CMakeLists.txt" | sort -u)
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK (${#docs[@]} files, all links resolve, all benches documented)"
