#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dz {
namespace {

TEST(MetricKeyTest, FormatsNameAndLabels) {
  EXPECT_EQ(FormatMetricKey("store.loads.total", {}), "store.loads.total");
  EXPECT_EQ(FormatMetricKey("sched.shed", {{"class", "interactive"}}),
            "sched.shed{class=interactive}");
  EXPECT_EQ(FormatMetricKey("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(RegistryTest, CounterGaugeRoundTrip) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reqs");
  c->Inc();
  c->Inc(2.5);
  EXPECT_DOUBLE_EQ(c->value(), 3.5);
  Gauge* g = registry.GetGauge("depth");
  g->Set(7.0);
  g->Set(4.0);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  // Same name + labels resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("reqs"), c);
  EXPECT_EQ(registry.GetGauge("depth"), g);
  // Different labels are a different instrument.
  EXPECT_NE(registry.GetCounter("reqs", {{"class", "batch"}}), c);
}

TEST(RegistryTest, SnapshotIsSortedByKeyAndCarriesValues) {
  MetricsRegistry registry;
  registry.GetCounter("zz")->Inc(9.0);
  registry.GetCounter("aa")->Inc(1.0);
  registry.GetGauge("mm")->Set(5.0);
  MetricsSnapshot snap = registry.Snapshot(12.5);
  EXPECT_DOUBLE_EQ(snap.sim_time_s, 12.5);
  ASSERT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.points[0].Key(), "aa");
  EXPECT_EQ(snap.points[1].Key(), "mm");
  EXPECT_EQ(snap.points[2].Key(), "zz");
  EXPECT_DOUBLE_EQ(snap.Value("aa"), 1.0);
  EXPECT_DOUBLE_EQ(snap.Value("mm"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Value("zz"), 9.0);
  EXPECT_DOUBLE_EQ(snap.Value("missing", {}, -1.0), -1.0);
}

// ---- LogHistogram edge cases (the satellite checklist) ----------------------

TEST(LogHistogramTest, EmptyHistogramIsAllZeroNeverNan) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_FALSE(std::isnan(h.Quantile(q))) << "q=" << q;
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(LogHistogramTest, SingleSampleQuantilesAreExactlyTheSample) {
  LogHistogram h;
  h.Record(0.125);
  EXPECT_EQ(h.count(), 1);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.125) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  EXPECT_DOUBLE_EQ(h.mean(), 0.125);
}

TEST(LogHistogramTest, UnderflowBucketCatchesZeroAndNegatives) {
  LogHistogram h;
  h.Record(0.0);
  h.Record(-3.0);
  h.Record(1e-9);
  EXPECT_EQ(h.bucket_count(0), 3);
  EXPECT_EQ(h.count(), 3);
  // Quantiles of pure-underflow data clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -3.0);  // clamped to min
  EXPECT_FALSE(std::isnan(h.Quantile(0.999)));
}

TEST(LogHistogramTest, OverflowBucketCatchesHugeValues) {
  LogHistogram h;
  const double huge = 1e12;  // beyond the ~1e6 geometric span
  h.Record(huge);
  EXPECT_EQ(h.bucket_count(LogHistogram::kNumBuckets - 1), 1);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), huge);   // overflow quantile = observed max
  EXPECT_DOUBLE_EQ(h.Quantile(0.999), huge);
  EXPECT_DOUBLE_EQ(h.max(), huge);
}

TEST(LogHistogramTest, QuantilesNeverNanAcrossMixedSigns) {
  LogHistogram h;
  for (double v : {-1.0, 0.0, 1e-7, 1e-3, 1.0, 50.0, 1e9}) {
    h.Record(v);
  }
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double val = h.Quantile(q);
    EXPECT_FALSE(std::isnan(val)) << "q=" << q;
    EXPECT_GE(val, h.min()) << "q=" << q;
    EXPECT_LE(val, h.max()) << "q=" << q;
  }
}

TEST(LogHistogramTest, QuantileAccuracyWithinBucketWidth) {
  // Log buckets are ~19% wide (ratio 2^(1/4)): a quantile estimate must land
  // within one bucket of the exact order statistic.
  LogHistogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    values.push_back(static_cast<double>(i) * 0.001);  // 1ms .. 1s uniform
    h.Record(values.back());
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double est = h.Quantile(q);
    EXPECT_GT(est, exact / 1.2) << "q=" << q;
    EXPECT_LT(est, exact * 1.2) << "q=" << q;
  }
}

TEST(LogHistogramTest, MergeOfDisjointRanges) {
  LogHistogram lo;
  LogHistogram hi;
  for (int i = 0; i < 100; ++i) {
    lo.Record(1e-4);  // 100 samples at 100us
    hi.Record(10.0);  // 100 samples at 10s
  }
  LogHistogram merged = lo;
  merged.Merge(hi);
  EXPECT_EQ(merged.count(), 200);
  EXPECT_DOUBLE_EQ(merged.min(), 1e-4);
  EXPECT_DOUBLE_EQ(merged.max(), 10.0);
  EXPECT_DOUBLE_EQ(merged.sum(), lo.sum() + hi.sum());
  // Median sits in the low cluster, p99 in the high cluster.
  EXPECT_LT(merged.Quantile(0.25), 1e-3);
  EXPECT_GT(merged.Quantile(0.75), 1.0);
  EXPECT_GT(merged.Quantile(0.99), 1.0);
  // Merging an empty histogram changes nothing.
  LogHistogram empty;
  LogHistogram copy = merged;
  copy.Merge(empty);
  EXPECT_EQ(copy.count(), merged.count());
  EXPECT_DOUBLE_EQ(copy.Quantile(0.5), merged.Quantile(0.5));
}

TEST(LogHistogramTest, BucketBoundsAreMonotone) {
  for (int i = 2; i < LogHistogram::kNumBuckets - 1; ++i) {
    EXPECT_GT(LogHistogram::BucketLowerBound(i),
              LogHistogram::BucketLowerBound(i - 1));
    EXPECT_GT(LogHistogram::BucketUpperBound(i), LogHistogram::BucketLowerBound(i));
  }
}

// ---- snapshot merge ---------------------------------------------------------

TEST(SnapshotMergeTest, CountersAddHistogramsMergeUnmatchedInsert) {
  MetricsRegistry a;
  a.GetCounter("loads")->Inc(3.0);
  a.GetHistogram("lat")->Record(0.5);
  a.GetCounter("only_a")->Inc(1.0);

  MetricsRegistry b;
  b.GetCounter("loads")->Inc(4.0);
  b.GetHistogram("lat")->Record(2.0);
  b.GetCounter("only_b")->Inc(7.0);

  MetricsSnapshot merged = a.Snapshot(10.0);
  merged.MergeFrom(b.Snapshot(20.0));
  EXPECT_DOUBLE_EQ(merged.sim_time_s, 20.0);  // max wins
  EXPECT_DOUBLE_EQ(merged.Value("loads"), 7.0);
  EXPECT_DOUBLE_EQ(merged.Value("only_a"), 1.0);
  EXPECT_DOUBLE_EQ(merged.Value("only_b"), 7.0);
  const LogHistogram* h = merged.Hist("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 2.0);
  // Merged points stay key-sorted when both sides were key-sorted.
  for (size_t i = 1; i < merged.points.size(); ++i) {
    EXPECT_LT(merged.points[i - 1].Key(), merged.points[i].Key());
  }
}

TEST(SnapshotMergeTest, MergeOrderMatchesSequentialDoubleAddition) {
  // The cluster merge contract: snapshot-level MergeFrom in worker order must
  // reproduce the exact double sum of the legacy `+=` loop.
  const std::vector<double> parts = {0.1, 0.2, 0.30000000000000004, 1e-9};
  double legacy = 0.0;
  MetricsSnapshot merged;
  for (double p : parts) {
    legacy += p;
    MetricsRegistry r;
    r.GetCounter("busy_s")->Inc(p);
    merged.MergeFrom(r.Snapshot());
  }
  EXPECT_EQ(merged.Value("busy_s"), legacy);  // bit-identical, not just close
}

// ---- JSONL export -----------------------------------------------------------

TEST(JsonlTest, ToJsonLineShapesScalarsAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("loads", {{"tier", "disk"}})->Inc(5.0);
  LogHistogram* h = registry.GetHistogram("lat");
  h->Record(0.25);
  h->Record(0.75);
  MetricsSnapshot snap = registry.Snapshot(3.5);
  const std::string line = snap.ToJsonLine({{"engine", "deltazip"}});
  EXPECT_NE(line.find("\"t_s\":3.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"engine\":\"deltazip\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"loads{tier=disk}\":5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"p50\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"p999\""), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "no newline inside a line";
}

TEST(JsonlTest, WriterAppendsOneLinePerSnapshot) {
  const std::string path = "metrics_test_out.jsonl";
  {
    MetricsJsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    MetricsRegistry registry;
    Counter* c = registry.GetCounter("n");
    for (int i = 0; i < 3; ++i) {
      c->Inc();
      EXPECT_TRUE(writer.Append(registry.Snapshot(static_cast<double>(i)),
                                {{"window", std::to_string(i)}}));
    }
    EXPECT_EQ(writer.lines_written(), 3);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  in.close();
  std::remove(path.c_str());
}

TEST(JsonlTest, WriterReportsUnopenablePath) {
  MetricsJsonlWriter writer("/nonexistent_dir_zz/metrics.jsonl");
  EXPECT_FALSE(writer.ok());
  MetricsRegistry registry;
  EXPECT_FALSE(writer.Append(registry.Snapshot()));
}

TEST(SnapshotTest, SetValueUpsertsDerivedPoints) {
  MetricsSnapshot snap;
  snap.SetValue("soak.rss_mb", MetricKind::kGauge, 123.0);
  EXPECT_DOUBLE_EQ(snap.Value("soak.rss_mb"), 123.0);
  snap.SetValue("soak.rss_mb", MetricKind::kGauge, 150.0);
  EXPECT_DOUBLE_EQ(snap.Value("soak.rss_mb"), 150.0);
  EXPECT_EQ(snap.points.size(), 1u);
}

}  // namespace
}  // namespace dz
