#include "src/train/task.h"

#include <set>

#include <gtest/gtest.h>

namespace dz {
namespace {

class TaskParamTest : public ::testing::TestWithParam<TaskKind> {};

TEST_P(TaskParamTest, SamplesAreWellFormed) {
  const ModelConfig cfg = ModelConfig::Small();
  const auto task = MakeTask(GetParam(), cfg, 42);
  ASSERT_NE(task, nullptr);
  Rng rng(1);
  const auto labels = task->label_tokens();
  ASSERT_GE(labels.size(), 2u);
  const std::set<int> label_set(labels.begin(), labels.end());
  for (int i = 0; i < 200; ++i) {
    const Example ex = task->Sample(rng);
    EXPECT_FALSE(ex.tokens.empty());
    EXPECT_LE(static_cast<int>(ex.tokens.size()), cfg.max_seq);
    for (int t : ex.tokens) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, cfg.vocab_size);
    }
    EXPECT_TRUE(label_set.count(ex.target)) << "target outside label set";
    EXPECT_EQ(ex.tokens.back(), Vocab::kQuery);
  }
}

TEST_P(TaskParamTest, EvalSetIsDeterministic) {
  const ModelConfig cfg = ModelConfig::Small();
  const auto task = MakeTask(GetParam(), cfg, 42);
  const auto a = task->MakeEvalSet(20, 7);
  const auto b = task->MakeEvalSet(20, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens);
    EXPECT_EQ(a[i].target, b[i].target);
  }
}

TEST_P(TaskParamTest, BothClassesAppear) {
  const ModelConfig cfg = ModelConfig::Small();
  const auto task = MakeTask(GetParam(), cfg, 42);
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(task->Sample(rng).target);
  }
  EXPECT_GE(seen.size(), 2u) << "degenerate task: only one label ever sampled";
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskParamTest,
                         ::testing::Values(TaskKind::kSentiment, TaskKind::kPalindrome,
                                           TaskKind::kNli, TaskKind::kTeacher,
                                           TaskKind::kArithmetic));

TEST(TaskTest, SentimentLabelMatchesMajority) {
  const auto task = MakeTask(TaskKind::kSentiment, ModelConfig::Small(), 1);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Example ex = task->Sample(rng);
    int score = 0;
    for (int t : ex.tokens) {
      if (t >= Vocab::kPositive0 && t < Vocab::kPositive0 + 20) {
        ++score;
      } else if (t >= Vocab::kNegative0 && t < Vocab::kNegative0 + 20) {
        --score;
      }
    }
    EXPECT_EQ(ex.target, score > 0 ? Vocab::kLabelYes : Vocab::kLabelNo);
    EXPECT_NE(score, 0);
  }
}

TEST(TaskTest, PalindromeLabelIsCorrect) {
  const auto task = MakeTask(TaskKind::kPalindrome, ModelConfig::Small(), 1);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Example ex = task->Sample(rng);
    // Strip trailing QUERY; check the digit string.
    std::vector<int> digits(ex.tokens.begin(), ex.tokens.end() - 1);
    bool is_pal = true;
    for (size_t a = 0, b = digits.size() - 1; a < b; ++a, --b) {
      if (digits[a] != digits[b]) {
        is_pal = false;
        break;
      }
    }
    EXPECT_EQ(ex.target, is_pal ? Vocab::kLabelYes : Vocab::kLabelNo);
  }
}

TEST(TaskTest, ArithmeticLabelIsSumMod10) {
  const auto task = MakeTask(TaskKind::kArithmetic, ModelConfig::Small(), 1);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Example ex = task->Sample(rng);
    ASSERT_EQ(ex.tokens.size(), 4u);
    const int a = ex.tokens[0] - Vocab::kDigit0;
    const int b = ex.tokens[2] - Vocab::kDigit0;
    EXPECT_EQ(ex.target, Vocab::kDigit0 + (a + b) % 10);
  }
}

TEST(TaskTest, TeacherIsDeterministicGivenSeed) {
  const ModelConfig cfg = ModelConfig::Small();
  const auto t1 = MakeTask(TaskKind::kTeacher, cfg, 99);
  const auto t2 = MakeTask(TaskKind::kTeacher, cfg, 99);
  Rng r1(4);
  Rng r2(4);
  for (int i = 0; i < 50; ++i) {
    const Example a = t1->Sample(r1);
    const Example b = t2->Sample(r2);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.target, b.target);
  }
}

}  // namespace
}  // namespace dz
