#include "src/train/finetune.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/ops.h"
#include "src/train/optimizer.h"

namespace dz {
namespace {

TEST(OptimizerTest, AdamReducesQuadraticLoss) {
  // Minimize ||W||² on a single matrix via AdamMatrix.
  Rng rng(1);
  Matrix w = Matrix::Random(4, 4, rng, 1.0f);
  AdamConfig cfg;
  cfg.lr = 0.05f;
  AdamMatrix opt(4, 4, cfg);
  const double before = w.FrobeniusNorm();
  for (int i = 0; i < 200; ++i) {
    Matrix grad = w;  // d(||W||²/2)/dW = W
    opt.Step(w, grad);
  }
  EXPECT_LT(w.FrobeniusNorm(), before * 0.05);
}

TEST(OptimizerTest, ParamSpansCoverAllParams) {
  Rng rng(2);
  ModelWeights w = ModelWeights::RandomInit(ModelConfig::Tiny(), rng);
  size_t total = 0;
  for (const auto& [ptr, n] : ParamSpans(w)) {
    EXPECT_NE(ptr, nullptr);
    total += n;
  }
  EXPECT_EQ(total, w.ParamCount());
}

TEST(OptimizerTest, AdamModelStepChangesAllSpans) {
  Rng rng(3);
  ModelWeights w = ModelWeights::RandomInit(ModelConfig::Tiny(), rng);
  const ModelWeights before = w;
  ModelWeights grads = ModelWeights::ZerosLike(w);
  // Nonzero gradient everywhere.
  for (auto& [ptr, n] : ParamSpans(grads)) {
    for (size_t i = 0; i < n; ++i) {
      ptr[i] = 0.1f;
    }
  }
  AdamConfig cfg;
  AdamModel adam(w, cfg);
  adam.Step(w, grads);
  auto before_spans = ParamSpans(const_cast<ModelWeights&>(before));
  auto after_spans = ParamSpans(w);
  for (size_t s = 0; s < after_spans.size(); ++s) {
    bool changed = false;
    for (size_t i = 0; i < after_spans[s].second; ++i) {
      if (after_spans[s].first[i] != before_spans[s].first[i]) {
        changed = true;
        break;
      }
    }
    EXPECT_TRUE(changed) << "span " << s << " untouched by optimizer";
  }
}

TEST(TrainTest, PretrainReducesLoss) {
  Rng rng(4);
  Transformer model(ModelWeights::RandomInit(ModelConfig::Tiny(), rng));
  PretrainConfig cfg;
  cfg.steps = 40;
  cfg.batch = 4;
  cfg.seq_len = 12;
  const double final_loss = Pretrain(model, cfg, rng);
  // Random init gives ~log(vocab)=4.16; training must make clear progress.
  EXPECT_LT(final_loss, std::log(model.config().vocab_size) * 0.9);
}

TEST(TrainTest, FmtFineTuningImprovesTaskAccuracy) {
  Rng rng(5);
  const ModelConfig cfg = ModelConfig::Tiny();
  Transformer model(ModelWeights::RandomInit(cfg, rng));
  PretrainConfig pre;
  pre.steps = 30;
  pre.batch = 4;
  pre.seq_len = 12;
  Pretrain(model, pre, rng);
  const auto task = MakeTask(TaskKind::kSentiment, cfg, 77);
  const double before = EvaluateAccuracy(model, *task, 100, 123);
  FineTuneConfig ft;
  ft.steps = 150;
  ft.batch = 8;
  ft.lr = 2e-3f;
  FineTuneFmt(model, *task, ft, rng);
  const double after = EvaluateAccuracy(model, *task, 100, 123);
  EXPECT_GT(after, before + 0.1) << "before=" << before << " after=" << after;
  EXPECT_GT(after, 0.72);
}

TEST(TrainTest, FineTuningKeepsDeltasSmall) {
  // The paper's core observation (Fig. 3): FMT deltas have much smaller magnitude than
  // the weights themselves.
  Rng rng(6);
  const ModelConfig cfg = ModelConfig::Tiny();
  Transformer model(ModelWeights::RandomInit(cfg, rng));
  PretrainConfig pre;
  pre.steps = 30;
  pre.batch = 4;
  pre.seq_len = 12;
  Pretrain(model, pre, rng);
  const ModelWeights base = model.weights();
  const auto task = MakeTask(TaskKind::kSentiment, cfg, 77);
  FineTuneConfig ft;
  ft.steps = 40;
  ft.batch = 8;
  FineTuneFmt(model, *task, ft, rng);
  const Matrix delta = Sub(model.weights().layers[0].wq, base.layers[0].wq);
  EXPECT_LT(delta.MeanAbs(), base.layers[0].wq.MeanAbs());
}

TEST(LoraTest, InitIsIdentity) {
  Rng rng(7);
  const ModelWeights base = ModelWeights::RandomInit(ModelConfig::Tiny(), rng);
  const LoraAdapter adapter = LoraAdapter::Init(base, 4, 8.0f, rng);
  const ModelWeights merged = adapter.MergedWith(base);
  // B = 0 → merged == base.
  EXPECT_EQ(RelativeError(merged.layers[0].wq, base.layers[0].wq), 0.0);
}

TEST(LoraTest, OverlayMatchesMergedWeights) {
  Rng rng(8);
  const ModelWeights base = ModelWeights::RandomInit(ModelConfig::Tiny(), rng);
  LoraAdapter adapter = LoraAdapter::Init(base, 4, 8.0f, rng);
  // Give B nonzero values so the adapter does something.
  for (auto& [name, f] : adapter.factors) {
    f.b = Matrix::Random(f.b.rows(), f.b.cols(), rng, 0.05f);
  }
  const Transformer base_model(base);
  const Transformer merged_model(adapter.MergedWith(base));
  const LinearOverlay overlay = adapter.MakeOverlay(base_model.weights());
  const std::vector<int> tokens = {1, 2, 3, 4};
  const Matrix via_overlay = base_model.Forward(tokens, nullptr, &overlay);
  const Matrix via_merge = merged_model.Forward(tokens);
  EXPECT_LT(RelativeError(via_overlay, via_merge), 1e-4);
}

TEST(LoraTest, ByteSizeScalesWithRank) {
  Rng rng(9);
  const ModelWeights base = ModelWeights::RandomInit(ModelConfig::Tiny(), rng);
  const auto r4 = LoraAdapter::Init(base, 4, 8.0f, rng);
  const auto r16 = LoraAdapter::Init(base, 16, 8.0f, rng);
  EXPECT_EQ(r16.Fp16ByteSize(), r4.Fp16ByteSize() * 4);
  EXPECT_LT(r16.Fp16ByteSize(), base.LinearFp16ByteSize());
}

TEST(LoraTest, TrainingImprovesEasyTask) {
  Rng rng(10);
  const ModelConfig cfg = ModelConfig::Tiny();
  Transformer base(ModelWeights::RandomInit(cfg, rng));
  PretrainConfig pre;
  pre.steps = 30;
  pre.batch = 4;
  pre.seq_len = 12;
  Pretrain(base, pre, rng);
  const auto task = MakeTask(TaskKind::kSentiment, cfg, 55);
  const double before = EvaluateAccuracy(base, *task, 100, 321);
  FineTuneConfig ft;
  ft.steps = 50;
  ft.batch = 8;
  ft.lr = 3e-3f;
  const LoraAdapter adapter = FineTuneLora(base, *task, 8, 16.0f, ft, rng);
  const LinearOverlay overlay = adapter.MakeOverlay(base.weights());
  const double after = EvaluateAccuracy(base, *task, 100, 321, &overlay);
  EXPECT_GT(after, before) << "LoRA training did not improve accuracy";
}

TEST(VariantSuiteTest, BuildsSharedBaseVariants) {
  PretrainConfig pre;
  pre.steps = 10;
  pre.batch = 2;
  pre.seq_len = 8;
  FineTuneConfig ft;
  ft.steps = 5;
  ft.batch = 2;
  const VariantSuite suite = BuildVariantSuite(
      ModelConfig::Tiny(), {TaskKind::kSentiment, TaskKind::kArithmetic}, pre, ft, 42);
  ASSERT_NE(suite.base, nullptr);
  ASSERT_EQ(suite.variants.size(), 2u);
  // Variants share architecture with base but have diverged weights.
  for (const auto& v : suite.variants) {
    EXPECT_GT(
        Sub(v.model->weights().layers[0].wq, suite.base->weights().layers[0].wq)
            .FrobeniusNorm(),
        0.0);
  }
}

}  // namespace
}  // namespace dz

namespace dz {
namespace {

TEST(TrainTest, FreezeEmbeddingsKeepsEmbeddingAndHead) {
  Rng rng(20);
  const ModelConfig cfg = ModelConfig::Tiny();
  Transformer model(ModelWeights::RandomInit(cfg, rng));
  const Matrix emb_before = model.weights().embedding;
  const Matrix head_before = model.weights().lm_head;
  const Matrix wq_before = model.weights().layers[0].wq;
  const auto task = MakeTask(TaskKind::kSentiment, cfg, 7);
  FineTuneConfig ft;
  ft.steps = 10;
  ft.batch = 2;
  ft.freeze_embeddings = true;
  FineTuneFmt(model, *task, ft, rng);
  EXPECT_EQ(RelativeError(model.weights().embedding, emb_before), 0.0);
  EXPECT_EQ(RelativeError(model.weights().lm_head, head_before), 0.0);
  // Trunk weights must still train.
  EXPECT_GT(Sub(model.weights().layers[0].wq, wq_before).FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace dz
