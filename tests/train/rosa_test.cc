#include "src/train/rosa.h"

#include <gtest/gtest.h>

#include "src/train/finetune.h"

namespace dz {
namespace {

TEST(CooMatrixTest, DenseAndSparseMatmulAgree) {
  CooMatrix coo;
  coo.rows = 4;
  coo.cols = 6;
  coo.row_idx = {0, 2, 3};
  coo.col_idx = {1, 5, 0};
  coo.values = {2.0f, -1.5f, 0.5f};
  Rng rng(1);
  const Matrix x = Matrix::Random(3, 6, rng, 1.0f);
  const Matrix via_coo = coo.MatmulNT(x);
  const Matrix via_dense = MatmulNT(x, coo.ToDense());
  EXPECT_LT(RelativeError(via_coo, via_dense), 1e-6);
}

class RosaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ModelConfig cfg = ModelConfig::Tiny();
    Rng rng(77);
    base_ = new Transformer(ModelWeights::RandomInit(cfg, rng));
    PretrainConfig pre;
    pre.steps = 30;
    pre.batch = 4;
    pre.seq_len = 12;
    Pretrain(*base_, pre, rng);
    task_ = MakeTask(TaskKind::kSentiment, cfg, 9).release();
    FineTuneConfig ft;
    ft.steps = 130;
    ft.batch = 8;
    ft.lr = 3e-3f;
    Rng train_rng = rng.Fork();
    adapter_ = new RosaAdapter(
        FineTuneRosa(*base_, *task_, /*rank=*/4, 8.0f, /*density=*/0.05, ft, train_rng));
  }

  static void TearDownTestSuite() {
    delete base_;
    delete task_;
    delete adapter_;
  }

  static Transformer* base_;
  static Task* task_;
  static RosaAdapter* adapter_;
};

Transformer* RosaTest::base_ = nullptr;
Task* RosaTest::task_ = nullptr;
RosaAdapter* RosaTest::adapter_ = nullptr;

TEST_F(RosaTest, SupportRespectsDensity) {
  for (const auto& [name, coo] : adapter_->sparse) {
    const size_t total = static_cast<size_t>(coo.rows) * coo.cols;
    EXPECT_LE(coo.nnz(), total / 10) << name;
    EXPECT_GE(coo.nnz(), 1u) << name;
  }
}

TEST_F(RosaTest, OverlayMatchesMergedWeights) {
  // RoSA adds a full-rank sparse term LoRA-only systems cannot represent; DeltaZip's
  // overlay serves it and must match merged-weight inference.
  const LinearOverlay overlay = adapter_->MakeOverlay(base_->weights());
  const Transformer merged(adapter_->MergedWith(base_->weights()));
  Rng rng(3);
  const Example ex = task_->Sample(rng);
  const Matrix via_overlay = base_->Forward(ex.tokens, nullptr, &overlay);
  const Matrix via_merged = merged.Forward(ex.tokens);
  EXPECT_LT(RelativeError(via_overlay, via_merged), 1e-4);
}

TEST_F(RosaTest, TrainingImprovesTask) {
  const double before = EvaluateAccuracy(*base_, *task_, 150, 42);
  const LinearOverlay overlay = adapter_->MakeOverlay(base_->weights());
  const double after = EvaluateAccuracy(*base_, *task_, 150, 42, &overlay);
  EXPECT_GT(after, before + 0.05) << "RoSA training did not improve the task";
}

TEST_F(RosaTest, ArtifactBiggerThanLoraSmallerThanDelta) {
  // RoSA sits between pure LoRA and a full compressed delta in footprint.
  Rng rng(5);
  const LoraAdapter plain = LoraAdapter::Init(base_->weights(), 4, 8.0f, rng);
  EXPECT_GT(adapter_->Fp16ByteSize(), plain.Fp16ByteSize());
  EXPECT_LT(adapter_->Fp16ByteSize(), base_->weights().LinearFp16ByteSize());
}

}  // namespace
}  // namespace dz
