// Lifecycle invariants of engine-emitted traces (PR 7 satellite): every
// kv.preempt must pair with a later resume dispatch (or nothing after it only
// if the chain ends at the request's completion), every shed request must emit
// exactly one admission.shed carrying its SLO class, and the per-class shed
// event counts must equal the report's shed_by_class registry counters.
#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace_recorder.h"
#include "src/serving/engine.h"
#include "src/workload/trace.h"

namespace dz {
namespace {

EngineConfig SmallEngine() {
  EngineConfig cfg;
  cfg.exec.shape = ModelShape::Llama13B();
  cfg.exec.gpu = GpuSpec::A800();
  cfg.exec.tp = 4;
  cfg.max_concurrent_deltas = 8;
  cfg.tracing.enabled = true;
  return cfg;
}

// Same overload scenario the scheduler tests use: a flash crowd that forces
// class preemptions under kPriority and sheds under admission control.
TraceConfig FlashCrowdConfig() {
  TraceConfig tc;
  tc.n_models = 32;
  tc.arrival_rate = 6.0;
  tc.duration_s = 150.0;
  tc.dist = PopularityDist::kAzure;
  tc.output_mean_tokens = 120.0;
  tc.output_max_tokens = 400;
  tc.seed = 2121;
  tc.tenants.n_tenants = 6;
  tc.tenants.scenario = TenantScenario::kFlashCrowd;
  tc.tenants.interactive_frac = 0.25;
  tc.tenants.batch_frac = 0.35;
  tc.tenants.flash_boost = 25.0;
  return tc;
}

void TightenSlo(SchedulerConfig& sched) {
  sched.slo.per_class[static_cast<int>(SloClass::kInteractive)] = {1.0, 20.0};
  sched.slo.per_class[static_cast<int>(SloClass::kStandard)] = {10.0, 90.0};
}

TEST(PreemptTraceTest, EveryPreemptPairsWithResumeOrNothingDangles) {
  const Trace trace = GenerateTrace(FlashCrowdConfig());
  EngineConfig cfg = SmallEngine();
  TightenSlo(cfg.scheduler);
  cfg.scheduler.policy = SchedPolicy::kPriority;
  cfg.scheduler.class_preemption = true;
  const ServeReport r = MakeDeltaZipEngine(cfg)->Serve(trace);

  // The scenario must actually preempt, or the test is vacuous.
  long long total_preemptions = 0;
  std::map<int, const RequestRecord*> record_of;
  for (const RequestRecord& rec : r.records) {
    total_preemptions += rec.preemptions;
    record_of[rec.id] = &rec;
  }
  ASSERT_GT(total_preemptions, 0) << "flash crowd should force preemptions";

  // Collect each request's dispatch/preempt/done stamps. Drain() order is
  // timestamp-sorted with same-instant emission order preserved, so a
  // same-round dispatch-then-preempt arrives in cause order.
  std::map<int, std::vector<TraceEventType>> lifecycle;
  std::map<int, int> preempt_count;
  std::map<int, int> dispatch_count;
  for (const TraceEvent& e : r.trace_events) {
    switch (e.type) {
      case TraceEventType::kSchedDispatch:
        lifecycle[e.request_id].push_back(e.type);
        ++dispatch_count[e.request_id];
        break;
      case TraceEventType::kKvPreempt:
        lifecycle[e.request_id].push_back(e.type);
        ++preempt_count[e.request_id];
        break;
      case TraceEventType::kRequestDone:
        lifecycle[e.request_id].push_back(e.type);
        break;
      default:
        break;
    }
  }

  long long event_preemptions = 0;
  for (const auto& [id, chain] : lifecycle) {
    const auto rit = record_of.find(id);
    ASSERT_NE(rit, record_of.end()) << "request " << id << " has no record";
    // Counts agree with the record: one dispatch per admission (initial +
    // one resume per preemption), and preempt events match rec.preemptions.
    EXPECT_EQ(preempt_count[id], rit->second->preemptions) << "request " << id;
    EXPECT_EQ(dispatch_count[id], rit->second->preemptions + 1)
        << "request " << id;
    event_preemptions += preempt_count[id];

    // Chain shape: starts with a dispatch, every preempt is followed by a
    // dispatch (the resume), and the chain ends with request.done — no
    // preempt dangles without a later resume or completion.
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front(), TraceEventType::kSchedDispatch) << "request " << id;
    EXPECT_EQ(chain.back(), TraceEventType::kRequestDone) << "request " << id;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] != TraceEventType::kKvPreempt) {
        continue;
      }
      ASSERT_LT(i + 1, chain.size())
          << "request " << id << ": preempt is the last event";
      EXPECT_EQ(chain[i + 1], TraceEventType::kSchedDispatch)
          << "request " << id << ": preempt not followed by a resume";
    }
  }
  EXPECT_EQ(event_preemptions, total_preemptions);
}

TEST(PreemptTraceTest, ShedRequestsEmitOneShedEventWithCorrectClass) {
  const Trace trace = GenerateTrace(FlashCrowdConfig());
  EngineConfig cfg = SmallEngine();
  TightenSlo(cfg.scheduler);
  cfg.scheduler.admission_control = true;
  const ServeReport r = MakeDeltaZipEngine(cfg)->Serve(trace);
  ASSERT_GT(r.TotalShed(), 0) << "this scenario overloads the engine";

  std::set<int> completed;
  for (const RequestRecord& rec : r.records) {
    completed.insert(rec.id);
  }

  std::map<int, int> shed_events_of;  // request id -> admission.shed count
  std::array<int, kNumSloClasses> shed_events_by_class = {0, 0, 0};
  for (const TraceEvent& e : r.trace_events) {
    if (e.type != TraceEventType::kAdmissionShed) {
      continue;
    }
    ++shed_events_of[e.request_id];
    ++shed_events_by_class[static_cast<size_t>(e.slo)];
    // Attribution on the event matches the request that was shed.
    const TraceRequest& req = trace.requests[static_cast<size_t>(e.request_id)];
    EXPECT_EQ(e.slo, req.slo) << "request " << e.request_id;
    EXPECT_EQ(e.model_id, req.model_id);
    EXPECT_EQ(e.tenant_id, req.tenant_id);
    // A shed request never also completes.
    EXPECT_EQ(completed.count(e.request_id), 0u) << "request " << e.request_id;
  }

  // Exactly one shed event per shed request, and the per-class event counts
  // reproduce the report's registry counters.
  long long shed_event_total = 0;
  for (const auto& [id, count] : shed_events_of) {
    EXPECT_EQ(count, 1) << "request " << id << " shed more than once";
    shed_event_total += count;
  }
  EXPECT_EQ(shed_event_total, static_cast<long long>(r.TotalShed()));
  for (int c = 0; c < kNumSloClasses; ++c) {
    EXPECT_EQ(shed_events_by_class[static_cast<size_t>(c)],
              r.shed_by_class[static_cast<size_t>(c)])
        << "class " << c;
  }
}

TEST(PreemptTraceTest, VllmShedEventsMatchRegistryToo) {
  TraceConfig tc = FlashCrowdConfig();
  tc.arrival_rate = 1.0;  // full-model swapping saturates far earlier
  tc.duration_s = 120.0;
  const Trace trace = GenerateTrace(tc);
  EngineConfig cfg = SmallEngine();
  cfg.artifact = ArtifactKind::kFullModel;
  TightenSlo(cfg.scheduler);
  cfg.scheduler.policy = SchedPolicy::kPriority;
  cfg.scheduler.admission_control = true;
  const ServeReport r = MakeVllmScbEngine(cfg)->Serve(trace);
  ASSERT_GT(r.TotalShed(), 0);

  std::array<int, kNumSloClasses> shed_events_by_class = {0, 0, 0};
  int shed_events = 0;
  for (const TraceEvent& e : r.trace_events) {
    if (e.type == TraceEventType::kAdmissionShed) {
      ++shed_events;
      ++shed_events_by_class[static_cast<size_t>(e.slo)];
      EXPECT_EQ(e.slo, trace.requests[static_cast<size_t>(e.request_id)].slo);
    }
  }
  EXPECT_EQ(shed_events, r.TotalShed());
  for (int c = 0; c < kNumSloClasses; ++c) {
    EXPECT_EQ(shed_events_by_class[static_cast<size_t>(c)],
              r.shed_by_class[static_cast<size_t>(c)]);
  }
}

}  // namespace
}  // namespace dz
