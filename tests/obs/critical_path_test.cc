// Critical-path attribution on synthetic dispatch/preempt chains: segments
// telescope to the measured E2E/TTFT latencies, broken chains fall back to the
// record-only split (still telescoping, flagged incomplete), and the per-class
// rollup/merge preserves the sums.
#include "src/obs/critical_path.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dz {
namespace {

TraceEvent Ev(TraceEventType type, double ts, int request_id) {
  TraceEvent e;
  e.type = type;
  e.ts_s = ts;
  e.request_id = request_id;
  return e;
}

RequestTimes Req(int id, double arrival, double sched, double start,
                 double first_token, double finish, int preemptions,
                 SloClass slo = SloClass::kStandard) {
  RequestTimes r;
  r.id = id;
  r.slo = slo;
  r.arrival_s = arrival;
  r.sched_attempt_s = sched;
  r.start_s = start;
  r.first_token_s = first_token;
  r.finish_s = finish;
  r.preemptions = preemptions;
  return r;
}

TEST(CriticalPathTest, NoPreemptionSplitsQueueLoadCompute) {
  const RequestTimes r = Req(1, 10.0, 10.5, 11.25, 11.5, 14.0, 0);
  const std::vector<TraceEvent> events = {
      Ev(TraceEventType::kSchedDispatch, 11.25, 1),
  };
  const auto out = AttributeRequests({r}, events);
  ASSERT_EQ(out.size(), 1u);
  const RequestPathBreakdown& b = out[0];
  EXPECT_TRUE(b.complete);
  EXPECT_DOUBLE_EQ(b.e2e.queue_s, 0.5);
  EXPECT_DOUBLE_EQ(b.e2e.load_s, 0.75);
  EXPECT_DOUBLE_EQ(b.e2e.compute_s, 2.75);
  EXPECT_DOUBLE_EQ(b.e2e.preempt_s, 0.0);
  EXPECT_DOUBLE_EQ(b.e2e.Sum(), r.finish_s - r.arrival_s);
  // TTFT clips compute at the first-token stamp.
  EXPECT_DOUBLE_EQ(b.ttft.queue_s, 0.5);
  EXPECT_DOUBLE_EQ(b.ttft.load_s, 0.75);
  EXPECT_DOUBLE_EQ(b.ttft.compute_s, 0.25);
  EXPECT_DOUBLE_EQ(b.ttft.Sum(), r.first_token_s - r.arrival_s);
}

TEST(CriticalPathTest, PreemptionChainChargesEvictedGaps) {
  // dispatch 2.0, preempted 3.0, resumed 4.5, preempted 5.0, resumed 6.0,
  // finished 8.0 — compute 1.0 + 0.5 + 2.0, preempt 1.5 + 1.0.
  const RequestTimes r = Req(7, 1.0, 1.5, 2.0, 2.5, 8.0, 2);
  const std::vector<TraceEvent> events = {
      Ev(TraceEventType::kSchedDispatch, 2.0, 7),
      Ev(TraceEventType::kKvPreempt, 3.0, 7),
      Ev(TraceEventType::kSchedDispatch, 4.5, 7),
      Ev(TraceEventType::kKvPreempt, 5.0, 7),
      Ev(TraceEventType::kSchedDispatch, 6.0, 7),
  };
  const auto out = AttributeRequests({r}, events);
  ASSERT_EQ(out.size(), 1u);
  const RequestPathBreakdown& b = out[0];
  EXPECT_TRUE(b.complete);
  EXPECT_DOUBLE_EQ(b.e2e.queue_s, 0.5);
  EXPECT_DOUBLE_EQ(b.e2e.load_s, 0.5);
  EXPECT_DOUBLE_EQ(b.e2e.compute_s, 3.5);
  EXPECT_DOUBLE_EQ(b.e2e.preempt_s, 2.5);
  EXPECT_DOUBLE_EQ(b.e2e.Sum(), r.finish_s - r.arrival_s);
  // First token arrived before the first preemption: nothing after it counts.
  EXPECT_DOUBLE_EQ(b.ttft.compute_s, 0.5);
  EXPECT_DOUBLE_EQ(b.ttft.preempt_s, 0.0);
  EXPECT_DOUBLE_EQ(b.ttft.Sum(), r.first_token_s - r.arrival_s);
}

TEST(CriticalPathTest, SameInstantDispatchAndPreemptIsValid) {
  // A request admitted and class-preempted in the same scheduling round shares
  // one timestamp; the chain validation allows d_i <= p_i <= d_{i+1} equality.
  const RequestTimes r = Req(3, 0.0, 0.0, 1.0, 3.5, 4.0, 1);
  const std::vector<TraceEvent> events = {
      Ev(TraceEventType::kSchedDispatch, 1.0, 3),
      Ev(TraceEventType::kKvPreempt, 1.0, 3),
      Ev(TraceEventType::kSchedDispatch, 3.0, 3),
  };
  const auto out = AttributeRequests({r}, events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].complete);
  EXPECT_DOUBLE_EQ(out[0].e2e.compute_s, 1.0);  // 0 at ts 1.0, plus [3, 4]
  EXPECT_DOUBLE_EQ(out[0].e2e.preempt_s, 2.0);  // [1, 3]
  EXPECT_DOUBLE_EQ(out[0].e2e.Sum(), r.finish_s - r.arrival_s);
}

TEST(CriticalPathTest, BrokenChainFallsBackToRecordSplit) {
  // The record says one preemption but the ring kept no events: fall back to
  // queue/load from the record with preempt folded into compute.
  const RequestTimes r = Req(9, 0.0, 1.0, 2.0, 2.25, 6.0, 1);
  const auto out = AttributeRequests({r}, {});
  ASSERT_EQ(out.size(), 1u);
  const RequestPathBreakdown& b = out[0];
  EXPECT_FALSE(b.complete);
  EXPECT_DOUBLE_EQ(b.e2e.queue_s, 1.0);
  EXPECT_DOUBLE_EQ(b.e2e.load_s, 1.0);
  EXPECT_DOUBLE_EQ(b.e2e.compute_s, 4.0);
  EXPECT_DOUBLE_EQ(b.e2e.preempt_s, 0.0);
  EXPECT_DOUBLE_EQ(b.e2e.Sum(), r.finish_s - r.arrival_s);
  EXPECT_DOUBLE_EQ(b.ttft.Sum(), r.first_token_s - r.arrival_s);
}

TEST(CriticalPathTest, MismatchedDispatchCountFallsBack) {
  // Two dispatches but the record claims zero preemptions: invalid chain.
  const RequestTimes r = Req(4, 0.0, 0.5, 1.0, 1.5, 5.0, 0);
  const std::vector<TraceEvent> events = {
      Ev(TraceEventType::kSchedDispatch, 1.0, 4),
      Ev(TraceEventType::kSchedDispatch, 2.0, 4),
  };
  const auto out = AttributeRequests({r}, events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].complete);
  EXPECT_DOUBLE_EQ(out[0].e2e.Sum(), r.finish_s - r.arrival_s);
}

TEST(CriticalPathTest, EventsForOtherRequestsAreIgnored) {
  const RequestTimes r = Req(5, 0.0, 0.0, 1.0, 1.5, 2.0, 0);
  const std::vector<TraceEvent> events = {
      Ev(TraceEventType::kSchedDispatch, 0.5, 99),  // someone else
      Ev(TraceEventType::kSchedDispatch, 1.0, 5),
      Ev(TraceEventType::kKvPreempt, 1.2, 99),
      Ev(TraceEventType::kBatchRound, 1.0, -1),  // non-lifecycle noise
  };
  const auto out = AttributeRequests({r}, events);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].complete);
  EXPECT_DOUBLE_EQ(out[0].e2e.compute_s, 1.0);
}

TEST(CriticalPathTest, ClassRollupAndMergeSumPerClass) {
  const RequestTimes a = Req(1, 0.0, 1.0, 2.0, 2.5, 4.0, 0, SloClass::kInteractive);
  const RequestTimes b = Req(2, 0.0, 2.0, 3.0, 3.5, 7.0, 0, SloClass::kInteractive);
  const RequestTimes c = Req(3, 0.0, 0.5, 1.0, 1.5, 2.0, 1, SloClass::kBatch);
  const auto breakdowns = AttributeRequests({a, b, c}, {
      Ev(TraceEventType::kSchedDispatch, 2.0, 1),
      Ev(TraceEventType::kSchedDispatch, 3.0, 2),
      // request 3 has no events: counted incomplete.
  });
  ClassPathAttribution by_class = BuildClassAttribution(breakdowns);
  const PathAttribution& inter =
      by_class[static_cast<size_t>(SloClass::kInteractive)];
  EXPECT_EQ(inter.n, 2);
  EXPECT_EQ(inter.incomplete, 0);
  EXPECT_DOUBLE_EQ(inter.e2e.queue_s, 3.0);
  EXPECT_DOUBLE_EQ(inter.e2e.Sum(), 4.0 + 7.0);
  const PathAttribution& batch = by_class[static_cast<size_t>(SloClass::kBatch)];
  EXPECT_EQ(batch.n, 1);
  EXPECT_EQ(batch.incomplete, 1);
  EXPECT_EQ(by_class[static_cast<size_t>(SloClass::kStandard)].n, 0);

  // Merge is plain addition per class (cluster merge in GPU order).
  ClassPathAttribution merged = {};
  for (int c2 = 0; c2 < kNumSloClasses; ++c2) {
    merged[static_cast<size_t>(c2)].Merge(by_class[static_cast<size_t>(c2)]);
    merged[static_cast<size_t>(c2)].Merge(by_class[static_cast<size_t>(c2)]);
  }
  EXPECT_EQ(merged[static_cast<size_t>(SloClass::kInteractive)].n, 4);
  EXPECT_DOUBLE_EQ(
      merged[static_cast<size_t>(SloClass::kInteractive)].e2e.Sum(), 22.0);
  EXPECT_EQ(merged[static_cast<size_t>(SloClass::kBatch)].incomplete, 2);
}

}  // namespace
}  // namespace dz
