// TraceRecorder contract: disabled recorders drop everything for one branch,
// full-trace mode keeps every event, flight-recorder mode keeps the most
// recent ring_capacity events (counting overwrites), and Drain() always
// returns a timestamp-ordered stream with same-instant emission order intact.
#include "src/obs/trace_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dz {
namespace {

TraceEvent At(double ts, TraceEventType type = TraceEventType::kBatchRound,
              int request_id = -1) {
  TraceEvent e;
  e.type = type;
  e.ts_s = ts;
  e.request_id = request_id;
  return e;
}

TEST(TraceRecorderTest, DisabledByDefaultAndDropsEverything) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.Emit(At(1.0));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0);
  EXPECT_TRUE(rec.Drain().empty());

  TracingConfig off;  // enabled defaults to false
  TraceRecorder rec2(off);
  EXPECT_FALSE(rec2.enabled());
  rec2.Emit(At(1.0));
  EXPECT_EQ(rec2.size(), 0u);
}

TEST(TraceRecorderTest, FullModeKeepsEveryEvent) {
  TracingConfig cfg;
  cfg.enabled = true;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 100; ++i) {
    rec.Emit(At(static_cast<double>(i)));
  }
  EXPECT_EQ(rec.size(), 100u);
  EXPECT_EQ(rec.dropped(), 0);
  const std::vector<TraceEvent> out = rec.Drain();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<size_t>(i)].ts_s, static_cast<double>(i));
  }
  // Drain leaves the recorder empty but still enabled.
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.enabled());
}

TEST(TraceRecorderTest, RingKeepsMostRecentAndCountsDrops) {
  TracingConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 20; ++i) {
    rec.Emit(At(static_cast<double>(i)));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.dropped(), 12);
  const std::vector<TraceEvent> out = rec.Drain();
  ASSERT_EQ(out.size(), 8u);
  // The last 8 emitted events survive, oldest-first after the unwrap.
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].ts_s, static_cast<double>(12 + i));
  }
}

TEST(TraceRecorderTest, RingDrainAfterPartialFillNeedsNoUnwrap) {
  TracingConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 5; ++i) {
    rec.Emit(At(static_cast<double>(i)));
  }
  EXPECT_EQ(rec.dropped(), 0);
  const std::vector<TraceEvent> out = rec.Drain();
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].ts_s, static_cast<double>(i));
  }
}

TEST(TraceRecorderTest, DrainSortsByTimestampStably) {
  // Store transfer spans can be stamped ahead of the emission clock (busy
  // channels), and same-instant events must keep emission order (a dispatch
  // followed by a same-round preempt).
  TracingConfig cfg;
  cfg.enabled = true;
  TraceRecorder rec(cfg);
  rec.Emit(At(5.0, TraceEventType::kStoreLoad));         // stamped in the future
  rec.Emit(At(1.0, TraceEventType::kSchedDispatch, 7));  // same instant...
  rec.Emit(At(1.0, TraceEventType::kKvPreempt, 7));      // ...keeps this order
  rec.Emit(At(3.0, TraceEventType::kBatchRound));
  const std::vector<TraceEvent> out = rec.Drain();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].type, TraceEventType::kSchedDispatch);
  EXPECT_EQ(out[1].type, TraceEventType::kKvPreempt);
  EXPECT_EQ(out[2].type, TraceEventType::kBatchRound);
  EXPECT_EQ(out[3].type, TraceEventType::kStoreLoad);
}

TEST(TraceRecorderTest, RingContinuesAfterDrain) {
  TracingConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 4;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 6; ++i) {
    rec.Emit(At(static_cast<double>(i)));
  }
  (void)rec.Drain();
  rec.Emit(At(100.0));
  rec.Emit(At(101.0));
  const std::vector<TraceEvent> out = rec.Drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].ts_s, 100.0);
  EXPECT_DOUBLE_EQ(out[1].ts_s, 101.0);
}

TEST(TraceEventNamesTest, TypeNamesAreStableDottedStrings) {
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRequestQueued), "request.queued");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kAdmissionShed), "admission.shed");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kSchedDispatch), "sched.dispatch");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kStoreLoad), "store.load");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kStorePrefetch), "store.prefetch");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kBatchRound), "batch.round");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kKvPreempt), "kv.preempt");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kKvSwap), "kv.swap");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRequestFirstToken),
               "request.first_token");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRequestDone), "request.done");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRouterPlace), "router.place");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRouterWarmHint),
               "router.warm_hint");
  EXPECT_STREQ(TraceChannelName(TraceChannel::kNone), "none");
  EXPECT_STREQ(TraceChannelName(TraceChannel::kDisk), "disk");
  EXPECT_STREQ(TraceChannelName(TraceChannel::kPcie), "pcie");
}

}  // namespace
}  // namespace dz
