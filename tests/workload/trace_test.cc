#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace dz {
namespace {

TraceConfig BaseConfig() {
  TraceConfig cfg;
  cfg.n_models = 16;
  cfg.arrival_rate = 5.0;
  cfg.duration_s = 120.0;
  cfg.seed = 7;
  return cfg;
}

class TraceDistTest : public ::testing::TestWithParam<PopularityDist> {};

TEST_P(TraceDistTest, WellFormedAndSorted) {
  TraceConfig cfg = BaseConfig();
  cfg.dist = GetParam();
  const Trace trace = GenerateTrace(cfg);
  EXPECT_EQ(trace.n_models, cfg.n_models);
  EXPECT_GT(trace.requests.size(), 100u);
  double prev = 0.0;
  for (const auto& r : trace.requests) {
    EXPECT_GE(r.arrival_s, prev);
    prev = r.arrival_s;
    EXPECT_LT(r.arrival_s, cfg.duration_s);
    EXPECT_GE(r.model_id, 0);
    EXPECT_LT(r.model_id, cfg.n_models);
    EXPECT_GE(r.prompt_tokens, 4);
    EXPECT_LE(r.prompt_tokens, cfg.prompt_max_tokens);
    EXPECT_GE(r.output_tokens, 4);
    EXPECT_LE(r.output_tokens, cfg.output_max_tokens);
  }
}

TEST_P(TraceDistTest, DeterministicForSeed) {
  TraceConfig cfg = BaseConfig();
  cfg.dist = GetParam();
  const Trace a = GenerateTrace(cfg);
  const Trace b = GenerateTrace(cfg);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].model_id, b.requests[i].model_id);
    EXPECT_DOUBLE_EQ(a.requests[i].arrival_s, b.requests[i].arrival_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Dists, TraceDistTest,
                         ::testing::Values(PopularityDist::kUniform, PopularityDist::kZipf,
                                           PopularityDist::kAzure));

TEST(TraceTest, ArrivalRateApproximatelyHonored) {
  TraceConfig cfg = BaseConfig();
  cfg.arrival_rate = 3.0;
  cfg.duration_s = 400.0;
  const Trace trace = GenerateTrace(cfg);
  const double rate = trace.requests.size() / cfg.duration_s;
  EXPECT_NEAR(rate, 3.0, 0.35);
}

TEST(TraceTest, UniformIsBalancedZipfIsSkewed) {
  TraceConfig cfg = BaseConfig();
  cfg.duration_s = 600.0;
  cfg.dist = PopularityDist::kUniform;
  const auto uniform_counts = GenerateTrace(cfg).ModelCounts();
  cfg.dist = PopularityDist::kZipf;
  const auto zipf_counts = GenerateTrace(cfg).ModelCounts();

  auto spread = [](std::vector<int> c) {
    std::sort(c.begin(), c.end());
    return static_cast<double>(c.back()) / std::max(1, c.front());
  };
  EXPECT_LT(spread(uniform_counts), 2.0);
  EXPECT_GT(spread(zipf_counts), 5.0);
}

TEST(TraceTest, AzureIsBursty) {
  // Burstiness: the per-window count variance of a hot model should far exceed a
  // Poisson process of the same mean (index of dispersion >> 1).
  TraceConfig cfg = BaseConfig();
  cfg.dist = PopularityDist::kAzure;
  cfg.duration_s = 900.0;
  cfg.arrival_rate = 4.0;
  const Trace trace = GenerateTrace(cfg);
  const auto matrix = InvocationMatrix(trace, 10.0);
  // Find the hottest model.
  size_t hot = 0;
  int best = -1;
  for (size_t m = 0; m < matrix.size(); ++m) {
    int total = 0;
    for (int c : matrix[m]) {
      total += c;
    }
    if (total > best) {
      best = total;
      hot = m;
    }
  }
  double mean = 0.0;
  for (int c : matrix[hot]) {
    mean += c;
  }
  mean /= matrix[hot].size();
  double var = 0.0;
  for (int c : matrix[hot]) {
    var += (c - mean) * (c - mean);
  }
  var /= matrix[hot].size();
  EXPECT_GT(var / std::max(mean, 1e-9), 1.5) << "azure trace should be over-dispersed";
}

TEST(TraceTest, GeneratedTracesAreWellFormed) {
  for (PopularityDist dist :
       {PopularityDist::kUniform, PopularityDist::kZipf, PopularityDist::kAzure}) {
    TraceConfig cfg = BaseConfig();
    cfg.dist = dist;
    const Trace trace = GenerateTrace(cfg);
    EXPECT_TRUE(trace.IsArrivalSorted());
    trace.CheckWellFormed();  // aborts on violation
    // Ids are stable and unique: 0..n-1 in arrival order for generated traces.
    for (size_t i = 0; i < trace.requests.size(); ++i) {
      EXPECT_EQ(trace.requests[i].id, static_cast<int>(i));
    }
  }
}

TEST(TraceTest, SplitPreservesIdsOrderAndMetadata) {
  const Trace trace = GenerateTrace(BaseConfig());
  std::vector<int> shard_of(trace.requests.size());
  for (size_t i = 0; i < shard_of.size(); ++i) {
    shard_of[i] = static_cast<int>(i % 3);
  }
  const std::vector<Trace> shards = SplitTrace(trace, shard_of, 3);
  ASSERT_EQ(shards.size(), 3u);
  size_t total = 0;
  for (const Trace& shard : shards) {
    EXPECT_EQ(shard.n_models, trace.n_models);
    EXPECT_DOUBLE_EQ(shard.duration_s, trace.duration_s);
    EXPECT_TRUE(shard.IsArrivalSorted());
    total += shard.requests.size();
  }
  EXPECT_EQ(total, trace.requests.size());
  // Shard membership and per-request fields are exactly as assigned.
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const Trace& shard = shards[static_cast<size_t>(shard_of[i])];
    const auto it = std::find_if(
        shard.requests.begin(), shard.requests.end(),
        [&](const TraceRequest& r) { return r.id == trace.requests[i].id; });
    ASSERT_NE(it, shard.requests.end());
    EXPECT_DOUBLE_EQ(it->arrival_s, trace.requests[i].arrival_s);
    EXPECT_EQ(it->model_id, trace.requests[i].model_id);
  }
}

TEST(TraceTest, SplitThenMergeRoundTrips) {
  const Trace trace = GenerateTrace(BaseConfig());
  std::vector<int> shard_of(trace.requests.size());
  for (size_t i = 0; i < shard_of.size(); ++i) {
    shard_of[i] = trace.requests[i].model_id % 4;
  }
  const Trace merged = MergeTraces(SplitTrace(trace, shard_of, 4));
  ASSERT_EQ(merged.requests.size(), trace.requests.size());
  EXPECT_EQ(merged.n_models, trace.n_models);
  EXPECT_TRUE(merged.IsArrivalSorted());
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(merged.requests[i].id, trace.requests[i].id) << i;
    EXPECT_DOUBLE_EQ(merged.requests[i].arrival_s, trace.requests[i].arrival_s);
  }
}

TEST(TraceTest, MergeEmptyShardsIsFine) {
  const Trace trace = GenerateTrace(BaseConfig());
  // Everything to shard 0; shards 1..2 stay empty.
  const std::vector<int> shard_of(trace.requests.size(), 0);
  const Trace merged = MergeTraces(SplitTrace(trace, shard_of, 3));
  EXPECT_EQ(merged.requests.size(), trace.requests.size());
}

TEST(TraceTest, InvocationMatrixCountsEverything) {
  const Trace trace = GenerateTrace(BaseConfig());
  const auto matrix = InvocationMatrix(trace, 5.0);
  size_t total = 0;
  for (const auto& row : matrix) {
    for (int c : row) {
      total += static_cast<size_t>(c);
    }
  }
  EXPECT_EQ(total, trace.requests.size());
}

// ---- multi-tenant scenario generators --------------------------------------

TEST(TenantTraceTest, DefaultConfigIsSingleTenantAllStandard) {
  const TraceConfig cfg = BaseConfig();
  EXPECT_FALSE(cfg.tenants.Enabled());
  const Trace trace = GenerateTrace(cfg);
  EXPECT_EQ(trace.n_tenants, 1);
  for (const auto& r : trace.requests) {
    EXPECT_EQ(r.tenant_id, 0);
    EXPECT_EQ(r.slo, SloClass::kStandard);
  }
}

class TenantScenarioTest : public ::testing::TestWithParam<TenantScenario> {
 protected:
  TraceConfig Config() const {
    TraceConfig cfg = BaseConfig();
    cfg.arrival_rate = 8.0;
    cfg.duration_s = 300.0;
    cfg.tenants.n_tenants = 5;
    cfg.tenants.scenario = GetParam();
    cfg.tenants.interactive_frac = 0.3;
    cfg.tenants.batch_frac = 0.3;
    return cfg;
  }
};

TEST_P(TenantScenarioTest, WellFormedTenantsInRangeIdsSequential) {
  const TraceConfig cfg = Config();
  const Trace trace = GenerateTrace(cfg);
  trace.CheckWellFormed();  // aborts on violation
  EXPECT_EQ(trace.n_tenants, cfg.tenants.n_tenants);
  EXPECT_GT(trace.requests.size(), 100u);
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& r = trace.requests[i];
    EXPECT_EQ(r.id, static_cast<int>(i));
    EXPECT_GE(r.tenant_id, 0);
    EXPECT_LT(r.tenant_id, cfg.tenants.n_tenants);
    EXPECT_LT(r.arrival_s, cfg.duration_s);
  }
  // Every tenant shows up, and so does every class of the configured mix.
  for (int count : trace.TenantCounts()) {
    EXPECT_GT(count, 0);
  }
  size_t per_class[kNumSloClasses] = {0, 0, 0};
  for (const auto& r : trace.requests) {
    ++per_class[static_cast<int>(r.slo)];
  }
  const double n = static_cast<double>(trace.requests.size());
  EXPECT_NEAR(per_class[static_cast<int>(SloClass::kInteractive)] / n, 0.3, 0.07);
  EXPECT_NEAR(per_class[static_cast<int>(SloClass::kBatch)] / n, 0.3, 0.07);
}

TEST_P(TenantScenarioTest, DeterministicForSeed) {
  const TraceConfig cfg = Config();
  const Trace a = GenerateTrace(cfg);
  const Trace b = GenerateTrace(cfg);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].tenant_id, b.requests[i].tenant_id);
    EXPECT_EQ(a.requests[i].model_id, b.requests[i].model_id);
    EXPECT_EQ(a.requests[i].slo, b.requests[i].slo);
    EXPECT_DOUBLE_EQ(a.requests[i].arrival_s, b.requests[i].arrival_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, TenantScenarioTest,
                         ::testing::Values(TenantScenario::kSteady,
                                           TenantScenario::kDiurnal,
                                           TenantScenario::kFlashCrowd,
                                           TenantScenario::kHeavyTail));

TEST(TenantTraceTest, DiurnalCountsFollowEnvelope) {
  TraceConfig cfg = BaseConfig();
  cfg.arrival_rate = 10.0;
  cfg.duration_s = 960.0;  // 4 periods
  cfg.tenants.n_tenants = 3;
  cfg.tenants.scenario = TenantScenario::kDiurnal;
  cfg.tenants.diurnal_period_s = 240.0;
  cfg.tenants.diurnal_amplitude = 0.8;
  const Trace trace = GenerateTrace(cfg);

  // Split each period into the sin-positive half (multiplier > 1) and the
  // sin-negative half. Expected count ratio = (1 + 2A/π) / (1 - 2A/π) ≈ 3.1.
  double peak = 0.0;
  double trough = 0.0;
  for (const auto& r : trace.requests) {
    const double phase = std::fmod(r.arrival_s, cfg.tenants.diurnal_period_s) /
                         cfg.tenants.diurnal_period_s;
    (phase < 0.5 ? peak : trough) += 1.0;
  }
  ASSERT_GT(trough, 0.0);
  const double ratio = peak / trough;
  EXPECT_GT(ratio, 2.0) << "peak-half counts should dominate";
  EXPECT_LT(ratio, 4.5);
  // And the aggregate count matches the integral of the envelope (= rate ×
  // duration: the sin integrates away over whole periods).
  EXPECT_NEAR(static_cast<double>(trace.requests.size()),
              cfg.arrival_rate * cfg.duration_s,
              4.0 * std::sqrt(cfg.arrival_rate * cfg.duration_s));
}

TEST(TenantTraceTest, FlashCrowdCountsFollowEnvelope) {
  TraceConfig cfg = BaseConfig();
  cfg.arrival_rate = 8.0;
  cfg.duration_s = 600.0;
  cfg.tenants.n_tenants = 4;
  cfg.tenants.scenario = TenantScenario::kFlashCrowd;
  cfg.tenants.flash_tenant = 1;
  cfg.tenants.flash_start_frac = 0.4;
  cfg.tenants.flash_duration_frac = 0.25;
  cfg.tenants.flash_boost = 8.0;
  const Trace trace = GenerateTrace(cfg);

  const double start = cfg.tenants.flash_start_frac * cfg.duration_s;
  const double end = start + cfg.tenants.flash_duration_frac * cfg.duration_s;
  double flash_in = 0.0;
  double flash_out = 0.0;
  double others_in = 0.0;
  double others_out = 0.0;
  for (const auto& r : trace.requests) {
    const bool inside = r.arrival_s >= start && r.arrival_s < end;
    if (r.tenant_id == cfg.tenants.flash_tenant) {
      (inside ? flash_in : flash_out) += 1.0;
    } else {
      (inside ? others_in : others_out) += 1.0;
    }
  }
  const double in_secs = end - start;
  const double out_secs = cfg.duration_s - in_secs;
  // The flash tenant's in-window per-second rate is ~boost× its baseline.
  const double flash_ratio = (flash_in / in_secs) / (flash_out / out_secs);
  EXPECT_GT(flash_ratio, 0.6 * cfg.tenants.flash_boost);
  EXPECT_LT(flash_ratio, 1.5 * cfg.tenants.flash_boost);
  // Everyone else stays flat across the window.
  const double others_ratio = (others_in / in_secs) / (others_out / out_secs);
  EXPECT_GT(others_ratio, 0.7);
  EXPECT_LT(others_ratio, 1.4);
  // The envelope helper agrees with what the generator did.
  EXPECT_DOUBLE_EQ(TenantRateAt(cfg, cfg.tenants.flash_tenant, (start + end) / 2),
                   cfg.arrival_rate / 4.0 * cfg.tenants.flash_boost);
  EXPECT_DOUBLE_EQ(TenantRateAt(cfg, cfg.tenants.flash_tenant, start - 1.0),
                   cfg.arrival_rate / 4.0);
}

TEST(TenantTraceTest, HeavyTailSharesAreSkewed) {
  TraceConfig cfg = BaseConfig();
  cfg.arrival_rate = 10.0;
  cfg.duration_s = 400.0;
  cfg.tenants.n_tenants = 6;
  cfg.tenants.scenario = TenantScenario::kHeavyTail;
  EXPECT_DOUBLE_EQ(EffectiveHeavyTailAlpha(cfg.tenants), 1.2);
  const Trace trace = GenerateTrace(cfg);
  const std::vector<int> counts = trace.TenantCounts();
  ASSERT_EQ(counts.size(), 6u);
  // Tenant 0 is the whale: zipf-1.2 gives it ~8.6× tenant 5's traffic.
  EXPECT_GT(counts[0], 3 * std::max(1, counts[5]));
  // Shares are (statistically) non-increasing along the rank order.
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[1], counts[5]);
}

TEST(TenantTraceTest, TenantInvocationMatrixCountsEverything) {
  TraceConfig cfg = BaseConfig();
  cfg.tenants.n_tenants = 4;
  cfg.tenants.scenario = TenantScenario::kFlashCrowd;
  const Trace trace = GenerateTrace(cfg);
  const auto matrix = TenantInvocationMatrix(trace, 10.0);
  ASSERT_EQ(matrix.size(), 4u);
  size_t total = 0;
  for (const auto& row : matrix) {
    for (int c : row) {
      total += static_cast<size_t>(c);
    }
  }
  EXPECT_EQ(total, trace.requests.size());
}

TEST(TenantTraceTest, SplitAndMergePreserveTenantFields) {
  TraceConfig cfg = BaseConfig();
  cfg.tenants.n_tenants = 3;
  cfg.tenants.interactive_frac = 0.4;
  const Trace trace = GenerateTrace(cfg);
  std::vector<int> shard_of(trace.requests.size());
  for (size_t i = 0; i < shard_of.size(); ++i) {
    shard_of[i] = trace.requests[i].tenant_id % 2;
  }
  const std::vector<Trace> shards = SplitTrace(trace, shard_of, 2);
  for (const Trace& shard : shards) {
    EXPECT_EQ(shard.n_tenants, 3);
  }
  const Trace merged = MergeTraces(shards);
  EXPECT_EQ(merged.n_tenants, 3);
  ASSERT_EQ(merged.requests.size(), trace.requests.size());
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(merged.requests[i].tenant_id, trace.requests[i].tenant_id);
    EXPECT_EQ(merged.requests[i].slo, trace.requests[i].slo);
  }
}

}  // namespace
}  // namespace dz
